// Package tsperr reproduces "Accurate Estimation of Program Error Rate for
// Timing-Speculative Processors" (Assare & Gupta, DAC 2019): a framework
// that estimates the distribution of the timing-error rate a program
// experiences on a timing-speculative in-order processor, combining
// gate-level dynamic timing analysis under process variation (SSTA), an
// operand-aware instruction error model with error-correction conditioning,
// and Poisson/Normal limit-theorem statistics with Chen-Stein and Stein
// approximation-error bounds.
//
// The implementation lives under internal/; see README.md for the map and
// cmd/ for the tools that regenerate the paper's tables and figures.
package tsperr
