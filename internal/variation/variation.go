// Package variation models within-die process variation with spatial
// correlation using the standard quad-tree (grid hierarchy) model: the die is
// recursively divided into quadrants, each level contributes an independent
// Gaussian component, and gates share components for every level whose cell
// contains both of them. Gate and path delays are carried as canonical
// first-order forms (mean + sensitivities to the grid principal components +
// an independent residual), which is what lets the DTA of Section 3 replace
// STA with SSTA.
package variation

import (
	"fmt"
	"math"

	"tsperr/internal/numeric"
)

// Model describes the variation structure of a manufactured die.
type Model struct {
	// Levels is the number of quad-tree levels beyond the global one.
	// Level 0 is the whole die; level l has 4^l cells.
	Levels int
	// CorrShare is the fraction of delay variance that is spatially
	// correlated; the remainder is gate-local random variation.
	CorrShare float64

	offsets []int // starting PC index of each level
	total   int   // total number of principal components
}

// NewModel builds a variation model. levels must be >= 0 and corrShare in
// [0, 1].
func NewModel(levels int, corrShare float64) (*Model, error) {
	if levels < 0 {
		return nil, fmt.Errorf("variation: negative levels %d", levels)
	}
	if corrShare < 0 || corrShare > 1 {
		return nil, fmt.Errorf("variation: corrShare %v outside [0,1]", corrShare)
	}
	m := &Model{Levels: levels, CorrShare: corrShare}
	m.offsets = make([]int, levels+1)
	for l := 0; l <= levels; l++ {
		m.offsets[l] = m.total
		m.total += 1 << (2 * l)
	}
	return m, nil
}

// NumPCs returns the number of principal components (grid cells over all
// levels).
func (m *Model) NumPCs() int { return m.total }

// cellIndex returns the PC index for level l at normalized die coordinates
// (x, y) in [0, 1).
func (m *Model) cellIndex(l int, x, y float64) int {
	n := 1 << l // cells per side at this level
	cx := int(x * float64(n))
	cy := int(y * float64(n))
	if cx >= n {
		cx = n - 1
	}
	if cy >= n {
		cy = n - 1
	}
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	return m.offsets[l] + cy*n + cx
}

// Canon is a canonical first-order Gaussian form: value = Mean + Sens . Z +
// Rand * xi, where Z is the vector of standard-normal principal components
// shared across the die and xi is an independent standard normal.
type Canon struct {
	Mean float64
	Sens []float64
	Rand float64
}

// Canonical returns the delay canonical form of a gate placed at normalized
// coordinates (x, y) with the given nominal delay and relative sigma
// (sigma = sigmaRel * nominal). The correlated variance share is split
// equally over the quad-tree levels.
func (m *Model) Canonical(x, y, nominal, sigmaRel float64) Canon {
	sigma := sigmaRel * nominal
	c := Canon{Mean: nominal, Sens: make([]float64, m.total)}
	if sigma == 0 {
		return c
	}
	corrVar := m.CorrShare * sigma * sigma
	perLevel := math.Sqrt(corrVar / float64(m.Levels+1))
	for l := 0; l <= m.Levels; l++ {
		c.Sens[m.cellIndex(l, x, y)] = perLevel
	}
	c.Rand = math.Sqrt((1 - m.CorrShare) * sigma * sigma)
	return c
}

// CanonicalScaled is Canonical with an operating-condition scaling applied:
// the nominal delay is multiplied by delayFactor (the V/T delay inflation)
// and the relative sigma by sigmaFactor (droop-driven variability growth).
// It is definitionally Canonical(x, y, nominal*delayFactor,
// sigmaRel*sigmaFactor), so factors of exactly 1.0 reproduce the unscaled
// form bit-identically (multiplication by 1.0 is exact in IEEE 754).
func (m *Model) CanonicalScaled(x, y, nominal, sigmaRel, delayFactor, sigmaFactor float64) Canon {
	return m.Canonical(x, y, nominal*delayFactor, sigmaRel*sigmaFactor)
}

// Zero returns an all-zero canonical form sized for this model.
func (m *Model) Zero() Canon { return Canon{Sens: make([]float64, m.total)} }

// Const returns a deterministic canonical form with the given mean.
func (m *Model) Const(v float64) Canon {
	c := m.Zero()
	c.Mean = v
	return c
}

// Clone returns a deep copy.
func (c Canon) Clone() Canon {
	s := make([]float64, len(c.Sens))
	copy(s, c.Sens)
	return Canon{Mean: c.Mean, Sens: s, Rand: c.Rand}
}

// Add returns the canonical form of the sum c + o (delays along a path add
// exactly in this representation).
func (c Canon) Add(o Canon) Canon {
	r := c.Clone()
	r.Mean += o.Mean
	for i, s := range o.Sens {
		r.Sens[i] += s
	}
	r.Rand = math.Hypot(c.Rand, o.Rand)
	return r
}

// AddConst returns c shifted by v.
func (c Canon) AddConst(v float64) Canon {
	r := c.Clone()
	r.Mean += v
	return r
}

// Neg returns -c.
func (c Canon) Neg() Canon {
	r := c.Clone()
	r.Mean = -r.Mean
	for i := range r.Sens {
		r.Sens[i] = -r.Sens[i]
	}
	return r
}

// Var returns the total variance.
func (c Canon) Var() float64 {
	var k numeric.KahanSum
	for _, s := range c.Sens {
		k.Add(s * s)
	}
	return k.Value() + c.Rand*c.Rand
}

// Std returns the standard deviation.
func (c Canon) Std() float64 { return math.Sqrt(c.Var()) }

// Cov returns the covariance with o (independent residuals do not covary).
func (c Canon) Cov(o Canon) float64 {
	var k numeric.KahanSum
	for i, s := range c.Sens {
		k.Add(s * o.Sens[i])
	}
	return k.Value()
}

// Corr returns the correlation coefficient with o, or 0 when either form is
// deterministic.
func (c Canon) Corr(o Canon) float64 {
	sa, sb := c.Std(), o.Std()
	if sa == 0 || sb == 0 {
		return 0
	}
	return numeric.Clamp(c.Cov(o)/(sa*sb), -1, 1)
}

// Gaussian returns the marginal Gaussian of the form.
func (c Canon) Gaussian() numeric.Gaussian {
	return numeric.Gaussian{Mean: c.Mean, Std: c.Std()}
}

// Percentile returns the p-th percentile of the marginal distribution.
func (c Canon) Percentile(p float64) float64 {
	s := c.Std()
	if s == 0 {
		return c.Mean
	}
	return c.Mean + s*numeric.NormalQuantile(p)
}

// ProbBelow returns P(X < x).
func (c Canon) ProbBelow(x float64) float64 {
	return numeric.NormalCDFMeanStd(x, c.Mean, c.Std())
}

// Min returns the canonical-form approximation of min(c, o) using Clark's
// moment matching: the result keeps tightness-weighted sensitivities so that
// spatial correlation survives chained min operations, and its residual term
// absorbs any variance the linear part cannot express.
func (c Canon) Min(o Canon) Canon {
	rho := c.Corr(o)
	res := numeric.ClarkMin(c.Gaussian(), o.Gaussian(), rho)
	t := res.Tightness // P(c is the minimum)
	r := Canon{Mean: res.Mean, Sens: make([]float64, len(c.Sens))}
	var lin numeric.KahanSum
	for i := range c.Sens {
		s := t*c.Sens[i] + (1-t)*o.Sens[i]
		r.Sens[i] = s
		lin.Add(s * s)
	}
	deficit := res.Std*res.Std - lin.Value()
	if deficit > 0 {
		r.Rand = math.Sqrt(deficit)
	} else {
		// Rescale the linear part so the total variance matches Clark's.
		scale := res.Std / math.Sqrt(lin.Value())
		if !math.IsInf(scale, 0) && !math.IsNaN(scale) {
			for i := range r.Sens {
				r.Sens[i] *= scale
			}
		}
		r.Rand = 0
	}
	return r
}

// Max returns the canonical-form approximation of max(c, o).
func (c Canon) Max(o Canon) Canon { return c.Neg().Min(o.Neg()).Neg() }

// Sample evaluates the form on a chip (PC vector) with the independent
// residual drawn from rng.
func (c Canon) Sample(chip []float64, rng *numeric.RNG) float64 {
	v := c.Mean
	for i, s := range c.Sens {
		if s != 0 {
			v += s * chip[i]
		}
	}
	if c.Rand != 0 {
		v += c.Rand * rng.Norm()
	}
	return v
}

// SampleChip draws a manufactured-die sample: one standard normal value per
// principal component.
func (m *Model) SampleChip(rng *numeric.RNG) []float64 {
	z := make([]float64, m.total)
	for i := range z {
		z[i] = rng.Norm()
	}
	return z
}

// Correlation returns the delay correlation between two gates at the given
// die coordinates implied by the model (equal sigma assumed). It is useful
// for validating the spatial-correlation property: nearby gates correlate
// more strongly.
func (m *Model) Correlation(x1, y1, x2, y2 float64) float64 {
	shared := 0
	for l := 0; l <= m.Levels; l++ {
		if m.cellIndex(l, x1, y1) == m.cellIndex(l, x2, y2) {
			shared++
		}
	}
	return m.CorrShare * float64(shared) / float64(m.Levels+1)
}
