package variation

import (
	"math"
	"testing"
	"testing/quick"

	"tsperr/internal/numeric"
)

func mustModel(t *testing.T, levels int, corr float64) *Model {
	t.Helper()
	m, err := NewModel(levels, corr)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(-1, 0.5); err == nil {
		t.Error("negative levels should fail")
	}
	if _, err := NewModel(2, 1.5); err == nil {
		t.Error("corrShare > 1 should fail")
	}
	m := mustModel(t, 3, 0.5)
	if m.NumPCs() != 1+4+16+64 {
		t.Errorf("NumPCs=%d", m.NumPCs())
	}
}

func TestCanonicalVariance(t *testing.T) {
	m := mustModel(t, 2, 0.6)
	c := m.Canonical(0.3, 0.7, 100, 0.05)
	wantStd := 0.05 * 100
	if math.Abs(c.Std()-wantStd) > 1e-9 {
		t.Errorf("std=%v, want %v", c.Std(), wantStd)
	}
	if c.Mean != 100 {
		t.Errorf("mean=%v", c.Mean)
	}
	// Correlated share check.
	var corrVar float64
	for _, s := range c.Sens {
		corrVar += s * s
	}
	if math.Abs(corrVar-0.6*wantStd*wantStd) > 1e-9 {
		t.Errorf("correlated variance=%v", corrVar)
	}
}

func TestSpatialCorrelationDecaysWithDistance(t *testing.T) {
	m := mustModel(t, 4, 0.8)
	near := m.Correlation(0.1, 0.1, 0.11, 0.11)
	mid := m.Correlation(0.1, 0.1, 0.3, 0.3)
	far := m.Correlation(0.1, 0.1, 0.9, 0.9)
	if !(near >= mid && mid >= far) {
		t.Errorf("correlation should decay: near=%v mid=%v far=%v", near, mid, far)
	}
	if near > m.CorrShare+1e-12 {
		t.Errorf("correlation cannot exceed the correlated share: %v", near)
	}
	if far < m.CorrShare/float64(m.Levels+1)-1e-12 {
		t.Errorf("all gates share the global level: %v", far)
	}
}

func TestCanonCorrMatchesModelCorrelation(t *testing.T) {
	m := mustModel(t, 3, 0.7)
	a := m.Canonical(0.2, 0.2, 50, 0.04)
	b := m.Canonical(0.22, 0.21, 50, 0.04)
	want := m.Correlation(0.2, 0.2, 0.22, 0.21)
	if got := a.Corr(b); math.Abs(got-want) > 1e-9 {
		t.Errorf("corr=%v, want %v", got, want)
	}
}

func TestAddExactness(t *testing.T) {
	m := mustModel(t, 2, 0.5)
	a := m.Canonical(0.1, 0.1, 30, 0.05)
	b := m.Canonical(0.1, 0.1, 40, 0.05) // same cell: fully correlated linear parts
	sum := a.Add(b)
	if math.Abs(sum.Mean-70) > 1e-12 {
		t.Errorf("sum mean=%v", sum.Mean)
	}
	// Var(a+b) = var a + var b + 2 cov.
	want := a.Var() + b.Var() + 2*a.Cov(b)
	if math.Abs(sum.Var()-want) > 1e-9 {
		t.Errorf("sum var=%v, want %v", sum.Var(), want)
	}
}

func TestAddConstNegPercentile(t *testing.T) {
	m := mustModel(t, 1, 0.5)
	c := m.Canonical(0.5, 0.5, 10, 0.1)
	d := c.AddConst(5)
	if d.Mean != 15 || math.Abs(d.Std()-c.Std()) > 1e-12 {
		t.Error("AddConst should shift mean only")
	}
	n := c.Neg()
	if n.Mean != -10 || math.Abs(n.Std()-c.Std()) > 1e-12 {
		t.Error("Neg should flip mean and keep spread")
	}
	p99 := c.Percentile(0.99)
	p01 := c.Percentile(0.01)
	if !(p01 < c.Mean && c.Mean < p99) {
		t.Error("percentile ordering")
	}
	if math.Abs((p99-c.Mean)-(c.Mean-p01)) > 1e-9 {
		t.Error("percentiles should be symmetric")
	}
	if math.Abs(m.Const(3).Percentile(0.99)-3) > 1e-12 {
		t.Error("deterministic percentile should be the mean")
	}
}

func TestProbBelow(t *testing.T) {
	m := mustModel(t, 1, 0.5)
	c := m.Canonical(0.5, 0.5, 10, 0.1)
	if math.Abs(c.ProbBelow(10)-0.5) > 1e-12 {
		t.Error("P(X < mean) should be 0.5")
	}
	if c.ProbBelow(0) > 1e-9 {
		t.Error("deep left tail should be ~0")
	}
}

func TestMinAgainstMonteCarlo(t *testing.T) {
	m := mustModel(t, 2, 0.7)
	rng := numeric.NewRNG(23)
	a := m.Canonical(0.2, 0.3, 100, 0.06)
	b := m.Canonical(0.6, 0.7, 102, 0.05)
	mn := a.Min(b)

	const n = 100000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		chip := m.SampleChip(rng)
		x := a.Sample(chip, rng)
		y := b.Sample(chip, rng)
		v := math.Min(x, y)
		sum += v
		sum2 += v * v
	}
	mcMean := sum / n
	mcStd := math.Sqrt(sum2/n - mcMean*mcMean)
	if math.Abs(mn.Mean-mcMean) > 0.15 {
		t.Errorf("min mean=%v, MC=%v", mn.Mean, mcMean)
	}
	if math.Abs(mn.Std()-mcStd) > 0.15 {
		t.Errorf("min std=%v, MC=%v", mn.Std(), mcStd)
	}
}

func TestMinPreservesCorrelationStructure(t *testing.T) {
	m := mustModel(t, 2, 0.8)
	a := m.Canonical(0.1, 0.1, 100, 0.05)
	b := m.Canonical(0.12, 0.1, 101, 0.05)
	c := m.Canonical(0.11, 0.12, 99, 0.05)
	mn := a.Min(b)
	// The min of two gates near c should still correlate with c strongly.
	if mn.Corr(c) < 0.3 {
		t.Errorf("correlation lost through min: %v", mn.Corr(c))
	}
}

func TestMinDominatedBranch(t *testing.T) {
	m := mustModel(t, 1, 0.5)
	a := m.Canonical(0.5, 0.5, 10, 0.02)
	b := m.Canonical(0.5, 0.5, 1000, 0.02)
	mn := a.Min(b)
	if math.Abs(mn.Mean-10) > 0.01 {
		t.Errorf("min dominated by a, mean=%v", mn.Mean)
	}
}

func TestMaxMinDuality(t *testing.T) {
	m := mustModel(t, 1, 0.5)
	a := m.Canonical(0.2, 0.2, 10, 0.1)
	b := m.Canonical(0.8, 0.8, 12, 0.1)
	mx := a.Max(b)
	mn := a.Min(b)
	if math.Abs((mx.Mean+mn.Mean)-(a.Mean+b.Mean)) > 1e-9 {
		t.Error("E[min]+E[max] should equal E[a]+E[b]")
	}
}

func TestSampleMatchesMoments(t *testing.T) {
	m := mustModel(t, 2, 0.6)
	c := m.Canonical(0.4, 0.4, 200, 0.05)
	rng := numeric.NewRNG(31)
	const n = 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		chip := m.SampleChip(rng)
		v := c.Sample(chip, rng)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-c.Mean) > 0.2 {
		t.Errorf("sample mean=%v", mean)
	}
	if math.Abs(std-c.Std()) > 0.2 {
		t.Errorf("sample std=%v want %v", std, c.Std())
	}
}

func TestCorrelationSymmetryProperty(t *testing.T) {
	m := mustModel(t, 3, 0.9)
	f := func(x1, y1, x2, y2 float64) bool {
		wrap := func(v float64) float64 { return math.Abs(math.Mod(v, 1)) }
		x1, y1, x2, y2 = wrap(x1), wrap(y1), wrap(x2), wrap(y2)
		a := m.Correlation(x1, y1, x2, y2)
		b := m.Correlation(x2, y2, x1, y1)
		//tsperrlint:ignore floatcmp correlation symmetry is exact: both orders evaluate the same expression
		return a == b && a >= 0 && a <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellIndexBoundaries(t *testing.T) {
	m := mustModel(t, 3, 0.5)
	// Coordinates at or beyond 1.0 must clamp, not panic or go out of range.
	for _, xy := range [][2]float64{{0, 0}, {0.9999, 0.9999}, {1, 1}, {1.5, -0.1}} {
		c := m.Canonical(xy[0], xy[1], 10, 0.05)
		if len(c.Sens) != m.NumPCs() {
			t.Fatal("sensitivity vector sized wrong")
		}
	}
}
