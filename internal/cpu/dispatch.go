package cpu

import (
	"sync"

	"tsperr/internal/isa"
)

// The interpreter is threaded-dispatch: the program is decoded once into a
// flat []decoded table (operand register numbers, resolved immediate, control
// target, per-instruction flags, a depth-feature class, and an opcode-indexed
// semantic function), and the run loop executes through the function pointer
// instead of re-matching nested switch chains per retired instruction. All
// per-op predicates (ReadsRs2, WritesRd, adder class, shallow-depth class)
// are folded into the decode, so the hot loop touches only the decoded entry.

// execFn implements the execute stage of one opcode. The operands a, b are
// already resolved (b is the Rs2 register value or the immediate, matching
// the operand the EX stage sees); the function returns the produced value
// (ALU result, loaded value, or effective address for stores) and whether a
// branch was taken, in registers, so the interpreter loop never reloads them
// through memory. pc is the retiring instruction's index (jal links pc+1).
type execFn func(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool)

// Per-instruction flags, fixed at decode time.
const (
	fReadsRs1 = 1 << iota // hazard check consumes Rs1
	fReadsRs2             // operand b is the Rs2 register (else the immediate)
	fWritesRd             // retire writes Rd (already false for r0)
	fLoad                 // memory load (feeds the load-use stall check)
	fJr                   // taken target is the Rs1 register value
	fHalt                 // stop after retiring this instruction
	fBad                  // unknown opcode: executing it is an error
)

// Depth-feature classes (Definition 3.2 / Section 4.1), fixed at decode time.
const (
	classNone     = iota // no datapath activation feature
	classAdder           // carry chain of a+b
	classAdderInv        // carry chain of a+^b+1 (sub/compare/branch forms)
	classShift           // active barrel-shifter layers
	classMul             // array rows carried by the smaller operand
	classLogic           // single-level logic
)

// decoded is one predecoded instruction. The layout is kept small so the
// whole table of a kernel stays cache-resident during simulation.
type decoded struct {
	exec         execFn
	imm          uint32 // immediate as the EX-stage b operand
	target       int32  // resolved control-flow target
	rd, rs1, rs2 uint8
	flags, class uint8
	op           isa.Op
}

func execNop(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) { return 0, false }
func execAdd(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) { return a + b, false }
func execSub(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) { return a - b, false }
func execAnd(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) { return a & b, false }
func execOr(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool)  { return a | b, false }
func execXor(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) { return a ^ b, false }
func execSll(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) { return a << (b & 31), false }
func execSrl(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) { return a >> (b & 31), false }
func execSra(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) {
	return uint32(int32(a) >> (b & 31)), false
}
func execSlt(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) {
	if int32(a) < int32(b) {
		return 1, false
	}
	return 0, false
}
func execMul(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) { return a * b, false }
func execLui(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) { return dc.imm << 16, false }
func execLw(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) {
	return c.mem[(a+dc.imm)&c.memMask], false
}
func execSw(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) {
	addr := a + dc.imm
	c.mem[addr&c.memMask] = b
	return addr, false
}
func execBeq(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) { return 0, a == b }
func execBne(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) { return 0, a != b }
func execBlt(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) {
	return 0, int32(a) < int32(b)
}
func execBge(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) {
	return 0, int32(a) >= int32(b)
}
func execJal(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) {
	return uint32(pc + 1), true
}
func execJr(c *CPU, dc *decoded, a, b uint32, pc int) (uint32, bool) { return 0, true }

// opExec maps opcodes to their semantic functions; a nil slot is an
// unimplemented opcode and fails at execution time, like the old switch.
var opExec = [isa.NumOps]execFn{
	isa.OpNop:  execNop,
	isa.OpHalt: execNop,
	isa.OpAdd:  execAdd, isa.OpAddi: execAdd,
	isa.OpSub: execSub,
	isa.OpAnd: execAnd, isa.OpAndi: execAnd,
	isa.OpOr: execOr, isa.OpOri: execOr,
	isa.OpXor: execXor, isa.OpXori: execXor,
	isa.OpSll: execSll, isa.OpSlli: execSll,
	isa.OpSrl: execSrl, isa.OpSrli: execSrl,
	isa.OpSra: execSra, isa.OpSrai: execSra,
	isa.OpSlt: execSlt, isa.OpSlti: execSlt,
	isa.OpMul: execMul,
	isa.OpLui: execLui,
	isa.OpLw:  execLw,
	isa.OpSw:  execSw,
	isa.OpBeq: execBeq, isa.OpBne: execBne,
	isa.OpBlt: execBlt, isa.OpBge: execBge,
	isa.OpJal: execJal,
	isa.OpJr:  execJr,
}

// depthClass returns the decode-time depth-feature class of an opcode.
func depthClass(op isa.Op) uint8 {
	switch op {
	case isa.OpAdd, isa.OpAddi, isa.OpLw, isa.OpSw:
		return classAdder
	case isa.OpSub, isa.OpSlt, isa.OpSlti, isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		return classAdderInv
	case isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSlli, isa.OpSrli, isa.OpSrai:
		return classShift
	case isa.OpMul:
		return classMul
	case isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpLui:
		return classLogic
	}
	return classNone
}

// decodeInst builds the dispatch entry of one instruction.
func decodeInst(in *isa.Inst) decoded {
	dc := decoded{
		imm:    uint32(in.Imm),
		target: int32(in.Target),
		rd:     in.Rd, rs1: in.Rs1, rs2: in.Rs2,
		class: depthClass(in.Op),
		op:    in.Op,
	}
	if int(in.Op) < len(opExec) {
		dc.exec = opExec[in.Op]
	}
	if dc.exec == nil {
		dc.exec = execNop
		dc.flags |= fBad
	}
	if in.ReadsRs1() {
		dc.flags |= fReadsRs1
	}
	if in.ReadsRs2() {
		dc.flags |= fReadsRs2
	}
	if in.WritesRd() {
		dc.flags |= fWritesRd
	}
	if in.Op.IsLoad() {
		dc.flags |= fLoad
	}
	if in.Op == isa.OpJr {
		dc.flags |= fJr
	}
	if in.Op == isa.OpHalt {
		dc.flags |= fHalt
	}
	return dc
}

// decodeProgram builds the dispatch table of a program.
func decodeProgram(p *isa.Program) []decoded {
	code := make([]decoded, len(p.Insts))
	for i := range p.Insts {
		code[i] = decodeInst(&p.Insts[i])
	}
	return code
}

// memPools recycles data-memory slabs per size class. MemWords is validated
// to be a power of two, so the handful of distinct sizes in use each get one
// pool; a recycled slab is zeroed before reuse, which is cheaper than paging
// in a fresh allocation and keeps per-scenario GC pressure flat.
var memPools sync.Map // map[int]*sync.Pool

func getMem(words int) []uint32 {
	p, ok := memPools.Load(words)
	if !ok {
		p, _ = memPools.LoadOrStore(words, &sync.Pool{})
	}
	if m, ok := p.(*sync.Pool).Get().([]uint32); ok {
		clear(m)
		return m
	}
	return make([]uint32, words)
}

func putMem(m []uint32) {
	if len(m) == 0 {
		return
	}
	if p, ok := memPools.Load(len(m)); ok {
		p.(*sync.Pool).Put(m)
	}
}

// Release returns the machine's data memory to the slab pool. The CPU must
// not be used afterwards; callers that run one scenario per machine (the
// framework's scenario loop, Monte Carlo workers) call it when the run
// retires.
func (c *CPU) Release() {
	m := c.mem
	c.mem = nil
	putMem(m)
}
