package cpu

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"tsperr/internal/isa"
)

func run(t *testing.T, src string) (*CPU, Stats) {
	t.Helper()
	p, err := isa.Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, st
}

func TestArithmetic(t *testing.T) {
	c, st := run(t, `
		li  r1, 7
		li  r2, 5
		add r3, r1, r2
		sub r4, r1, r2
		mul r5, r1, r2
		and r6, r1, r2
		or  r7, r1, r2
		xor r8, r1, r2
		slt r9, r2, r1
		halt
	`)
	if !st.Halted {
		t.Fatal("program should halt")
	}
	checks := map[int]uint32{3: 12, 4: 2, 5: 35, 6: 5, 7: 7, 8: 2, 9: 1}
	for r, want := range checks {
		if got := c.Reg(r); got != want {
			t.Errorf("r%d = %d, want %d", r, got, want)
		}
	}
}

func TestShiftsAndSigned(t *testing.T) {
	c, _ := run(t, `
		li   r1, -8
		srai r2, r1, 1
		srli r3, r1, 1
		slli r4, r1, 2
		slti r5, r1, 0
		halt
	`)
	if got := int32(c.Reg(2)); got != -4 {
		t.Errorf("sra -8 >> 1 = %d", got)
	}
	if got := c.Reg(3); got != 0x7FFFFFFC {
		t.Errorf("srl = %x", got)
	}
	if got := int32(c.Reg(4)); got != -32 {
		t.Errorf("sll = %d", got)
	}
	if c.Reg(5) != 1 {
		t.Error("slti -8 < 0 should be 1")
	}
}

func TestMemoryAndLoop(t *testing.T) {
	// Sum memory[0..4] = 10+20+30+40+50.
	c, _ := run(t, `
		li r1, 0      # index
		li r2, 5      # limit
		li r3, 0      # sum
	loop:
		lw   r4, 100(r1)
		add  r3, r3, r4
		addi r1, r1, 1
		blt  r1, r2, loop
		sw   r3, 200(r0)
		halt
	`)
	// Preload memory before running: need a second run since run() already ran.
	p, _ := isa.Assemble("sum", `
		li r1, 0
		li r2, 5
		li r3, 0
	loop:
		lw   r4, 100(r1)
		add  r3, r3, r4
		addi r1, r1, 1
		blt  r1, r2, loop
		sw   r3, 200(r0)
		halt
	`)
	c2, _ := New(p, DefaultConfig())
	c2.LoadWords(100, []uint32{10, 20, 30, 40, 50})
	if _, err := c2.Run(nil); err != nil {
		t.Fatal(err)
	}
	if got := c2.Mem(200); got != 150 {
		t.Errorf("sum = %d, want 150", got)
	}
	_ = c
}

func TestJalJr(t *testing.T) {
	c, st := run(t, `
		li  r1, 1
		jal r31, sub
		addi r1, r1, 100   # executed after return
		halt
	sub:
		addi r1, r1, 10
		jr  r31
	`)
	if !st.Halted {
		t.Fatal("should halt")
	}
	if got := c.Reg(1); got != 111 {
		t.Errorf("r1 = %d, want 111", got)
	}
}

func TestR0IsZeroSink(t *testing.T) {
	c, _ := run(t, "addi r0, r0, 5\nadd r1, r0, r0\nhalt\n")
	if c.Reg(0) != 0 || c.Reg(1) != 0 {
		t.Error("r0 must stay zero")
	}
}

func TestRunawayGuard(t *testing.T) {
	p, _ := isa.Assemble("spin", "loop: j loop\n")
	cfg := DefaultConfig()
	cfg.MaxInsts = 1000
	c, _ := New(p, cfg)
	if _, err := c.Run(nil); err == nil {
		t.Error("infinite loop should hit the instruction limit")
	}
}

func TestConfigValidation(t *testing.T) {
	p, _ := isa.Assemble("x", "halt\n")
	if _, err := New(p, Config{MemWords: 100, MaxInsts: 10}); err == nil {
		t.Error("non-power-of-two memory should fail")
	}
	if _, err := New(p, Config{MemWords: 64, MaxInsts: 0}); err == nil {
		t.Error("zero MaxInsts should fail")
	}
}

func TestCarryChainLen(t *testing.T) {
	cases := []struct {
		a, b uint32
		cin  bool
		want int
	}{
		{0, 0, false, 0},
		{1, 1, false, 1},           // carry out of bit 0 into bit 1
		{0xFFFFFFFF, 1, false, 31}, // full ripple: carries into bits 1..31
		{0b0101, 0b0011, false, 3}, // 5+3=8: carries into bits 1,2,3
		{0, 0xFFFFFFFF, true, 32},  // carry-in propagates through all bits
	}
	for _, c := range cases {
		if got := CarryChainLen(c.a, c.b, c.cin); got != c.want {
			t.Errorf("CarryChainLen(%x,%x,%v) = %d, want %d", c.a, c.b, c.cin, got, c.want)
		}
	}
}

func TestCarryChainMatchesAdditionProperty(t *testing.T) {
	// The carry chain length is <= 32 and 0 iff no carries occur.
	f := func(a, b uint32) bool {
		l := CarryChainLen(a, b, false)
		carries := uint32((uint64(a) + uint64(b)) ^ uint64(a) ^ uint64(b))
		return l >= 0 && l <= 32 && ((l == 0) == (carries == 0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestObserverFeatures(t *testing.T) {
	p, _ := isa.Assemble("obs", `
		li  r1, 15
		li  r2, 1
		add r3, r1, r2    # 15+1: carry chain of 4
		sll r4, r1, r2    # shift by 1: one active layer + 1
		halt
	`)
	c, _ := New(p, DefaultConfig())
	var dyn []DynInst
	_, err := c.Run(func(d *DynInst) { dyn = append(dyn, *d) })
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn) != 5 {
		t.Fatalf("retired %d instructions", len(dyn))
	}
	addD := dyn[2]
	if addD.Op != isa.OpAdd || addD.Depth != 4 {
		t.Errorf("add depth = %d, want 4", addD.Depth)
	}
	sllD := dyn[3]
	if sllD.Depth != 2 {
		t.Errorf("sll depth = %d, want 2 (1 layer + 1)", sllD.Depth)
	}
	// ToggleFlush of the add: popcount(15)+popcount(1) = 5.
	if addD.ToggleFlush != 5 {
		t.Errorf("toggle-from-flush = %d, want 5", addD.ToggleFlush)
	}
	if addD.DepthFlush != 4 {
		t.Errorf("flush depth = %d, want 4", addD.DepthFlush)
	}
}

func TestDepthRelativeToPreviousCarryState(t *testing.T) {
	// Two identical adds back to back: the second changes no carry bits, so
	// its normal depth is 0 while its flush depth equals the full chain.
	p, _ := isa.Assemble("rep", `
		li  r1, 255
		li  r2, 1
		add r3, r1, r2
		add r4, r1, r2
		halt
	`)
	c, _ := New(p, DefaultConfig())
	var dyn []DynInst
	if _, err := c.Run(func(d *DynInst) { dyn = append(dyn, *d) }); err != nil {
		t.Fatal(err)
	}
	first, second := dyn[2], dyn[3]
	if first.Depth != 8 || first.DepthFlush != 8 {
		t.Errorf("first add depth = %d/%d, want 8/8", first.Depth, first.DepthFlush)
	}
	if second.Depth != 0 {
		t.Errorf("repeated add should activate no carry bits, depth = %d", second.Depth)
	}
	if second.DepthFlush != 8 {
		t.Errorf("after a flush the full chain re-activates, got %d", second.DepthFlush)
	}
}

func TestCycleAccountingHazards(t *testing.T) {
	// Load followed by dependent use incurs a stall; taken branch a penalty.
	pNoHaz, _ := isa.Assemble("a", "lw r1, (r0)\nadd r2, r3, r4\nhalt\n")
	pHaz, _ := isa.Assemble("b", "lw r1, (r0)\nadd r2, r1, r4\nhalt\n")
	ca, _ := New(pNoHaz, DefaultConfig())
	cb, _ := New(pHaz, DefaultConfig())
	sa, _ := ca.Run(nil)
	sb, _ := cb.Run(nil)
	if sb.Cycles != sa.Cycles+1 {
		t.Errorf("load-use hazard should cost 1 cycle: %d vs %d", sb.Cycles, sa.Cycles)
	}
	pBr, _ := isa.Assemble("c", "beq r0, r0, skip\nnop\nskip: halt\n")
	cc, _ := New(pBr, DefaultConfig())
	sc, _ := cc.Run(nil)
	// 2 retired instructions + 2 branch penalty + drain.
	want := int64(2) + 2 + NumStages - 1
	if sc.Cycles != want {
		t.Errorf("taken branch cycles = %d, want %d", sc.Cycles, want)
	}
}

func TestPerfModelAnchors(t *testing.T) {
	m := PaperPerfModel()
	// Paper: 0.4% error rate -> 4.93% improvement.
	if got := m.ImprovementPct(0.004); math.Abs(got-4.93) > 0.02 {
		t.Errorf("improvement at 0.4%% = %v, want ~4.93", got)
	}
	// Paper: gsm.decode 1.068% -> 8.46% degradation.
	if got := m.ImprovementPct(0.01068); math.Abs(got+8.46) > 0.03 {
		t.Errorf("improvement at 1.068%% = %v, want ~-8.46", got)
	}
	// Zero errors: pure frequency gain.
	if got := m.Speedup(0); math.Abs(got-1.15) > 1e-12 {
		t.Errorf("speedup at 0 = %v", got)
	}
	// Break-even at ER = 0.15/24 = 0.625%.
	be := m.BreakEvenErrorRate()
	if math.Abs(be-0.15/24) > 1e-12 {
		t.Errorf("break-even = %v", be)
	}
	if math.Abs(m.Speedup(be)-1) > 1e-9 {
		t.Error("speedup at break-even should be 1")
	}
}

func TestApplyErrors(t *testing.T) {
	st := Stats{Instructions: 100, Cycles: 100}
	out := ApplyErrors(st, 3, ReplayHalfFrequency)
	if out.Cycles != 100+72 {
		t.Errorf("cycles = %d", out.Cycles)
	}
	if out2 := ApplyErrors(st, 3, SingleCycleReplay); out2.Cycles != 103 {
		t.Errorf("single-cycle replay cycles = %d", out2.Cycles)
	}
}

func TestCorrectionSchemes(t *testing.T) {
	if !ReplayHalfFrequency.Flush || ReplayHalfFrequency.PenaltyCycles != 24 {
		t.Error("replay scheme misconfigured")
	}
	if SingleCycleReplay.Flush {
		t.Error("single-cycle replay does not flush")
	}
	if PipelineFlush.PenaltyCycles != float64(NumStages) {
		t.Error("flush penalty should be the pipeline depth")
	}
}

func TestStageNames(t *testing.T) {
	if StageName(0) != "IF" || StageName(NumStages-1) != "WB" {
		t.Error("stage naming")
	}
}

func TestRunawayGuardTypedError(t *testing.T) {
	p, _ := isa.Assemble("spin", "loop: j loop\n")
	cfg := DefaultConfig()
	cfg.MaxInsts = 1000
	c, _ := New(p, cfg)
	st, err := c.Run(nil)
	if !errors.Is(err, ErrInstLimit) {
		t.Fatalf("want ErrInstLimit, got %v", err)
	}
	if st.Instructions < cfg.MaxInsts {
		t.Errorf("guard fired early at %d instructions", st.Instructions)
	}
}

func TestRunContextCancellation(t *testing.T) {
	p, _ := isa.Assemble("spin", "loop: j loop\n")
	cfg := DefaultConfig()
	cfg.MaxInsts = 1 << 62 // limit effectively off: only ctx can stop the loop
	c, _ := New(p, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.RunContext(ctx, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation was not prompt")
	}
}

// Whichever guard fires first yields a typed error, never a hang: with a
// tiny instruction limit and an already-expired context, each run ends with
// exactly one of the two causes.
func TestRunawayGuardVsContextRace(t *testing.T) {
	p, _ := isa.Assemble("spin", "loop: j loop\n")
	cfg := DefaultConfig()
	cfg.MaxInsts = ctxCheckInterval / 2 // limit trips before the first ctx poll
	c, _ := New(p, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.RunContext(ctx, nil)
	if !errors.Is(err, ErrInstLimit) && !errors.Is(err, context.Canceled) {
		t.Fatalf("untyped abort: %v", err)
	}
}

func TestRunContextCompletesNormally(t *testing.T) {
	p, _ := isa.Assemble("ok", "li r1, 3\nhalt\n")
	c, _ := New(p, DefaultConfig())
	if _, err := c.RunContext(context.Background(), nil); err != nil {
		t.Fatalf("normal run under ctx: %v", err)
	}
}
