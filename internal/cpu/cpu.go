// Package cpu implements the in-order TS-V8 pipeline: a functional simulator
// with cycle-accurate in-order timing (load-use stalls, branch penalties), a
// per-retired-instruction observer used to extract datapath activity
// features, the timing-speculative error-correction emulation (instruction
// replay at half frequency, as in the 45 nm resilient Intel core the paper
// adopts), and the resulting performance model.
package cpu

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"tsperr/internal/isa"
)

// ErrInstLimit is the typed cause returned when a run retires MaxInsts
// instructions without halting (a runaway program). Callers distinguish it
// from a context cancellation with errors.Is.
var ErrInstLimit = errors.New("cpu: instruction limit exceeded")

// ctxCheckInterval is how many retired instructions pass between context
// polls in RunContext: frequent enough that cancellation aborts a simulation
// promptly, rare enough that the check cost vanishes in the decode loop.
const ctxCheckInterval = 8192

// Stages of the pipeline, matching the 6-stage integer unit assumed in the
// paper's experimental setup.
const (
	StageIF = iota
	StageID
	StageRA
	StageEX
	StageME
	StageWB
	NumStages
)

// StageName returns a short mnemonic for a stage index.
func StageName(s int) string {
	return [...]string{"IF", "ID", "RA", "EX", "ME", "WB"}[s]
}

// Config parameterizes a simulation run.
type Config struct {
	// MemWords is the data memory size in 32-bit words (power of two).
	MemWords int
	// MaxInsts aborts runaway programs after this many retired instructions.
	MaxInsts int64
	// LoadUseStall is the number of bubbles between a load and a dependent
	// consumer (1 for this pipeline).
	LoadUseStall int64
	// BranchPenalty is the number of fetch bubbles after a taken branch.
	BranchPenalty int64
}

// DefaultConfig returns the standard machine configuration.
func DefaultConfig() Config {
	return Config{MemWords: 1 << 16, MaxInsts: 50_000_000, LoadUseStall: 1, BranchPenalty: 2}
}

// DynInst describes one retired dynamic instruction together with the
// datapath activity features the instruction error model consumes.
type DynInst struct {
	// Index is the static instruction index (program counter).
	Index int
	Op    isa.Op
	// A, B are the operand values seen by the execute stage.
	A, B uint32
	// Result is the value produced (ALU result, loaded value, or effective
	// address for stores).
	Result uint32
	// Taken reports whether a branch was taken.
	Taken bool
	// Depth is the activated-logic-depth feature of the execute stage given
	// normal execution of the previous instruction: for adder-class
	// operations it is the longest run of carry bits that *changed* relative
	// to the previous adder operation (only changing nets activate paths,
	// Definition 3.2); for shifts it is the number of active barrel-shifter
	// layers; shallow logic contributes small constants. It drives the
	// correct-predecessor conditional probability p^c.
	Depth int
	// DepthFlush is the same feature recomputed as if the previous
	// instruction had been squashed into a pipeline bubble (datapath state
	// zero) — the nop-instrumentation trick of Section 4.1 used to extract
	// the error-conditioned probabilities p^e.
	DepthFlush int
	// Toggle is the Hamming distance between this instruction's operand pair
	// and the previous instruction's, i.e. how much of the datapath switches.
	Toggle int
	// ToggleFlush is Toggle recomputed from the flushed (zero) state.
	ToggleFlush int
}

// Observer receives every retired instruction. The pointed-to struct is
// reused; implementations must copy anything they keep.
type Observer func(*DynInst)

// Stats summarizes a run.
type Stats struct {
	Instructions int64
	Cycles       int64
	Halted       bool
}

// CPU is a TS-V8 machine instance.
type CPU struct {
	cfg  Config
	prog *isa.Program
	regs [32]uint32
	mem  []uint32

	prevA, prevB uint32
	prevCarries  uint32
}

// New builds a machine for a program.
func New(prog *isa.Program, cfg Config) (*CPU, error) {
	if cfg.MemWords <= 0 || cfg.MemWords&(cfg.MemWords-1) != 0 {
		return nil, fmt.Errorf("cpu: MemWords must be a positive power of two, got %d", cfg.MemWords)
	}
	if cfg.MaxInsts <= 0 {
		return nil, fmt.Errorf("cpu: MaxInsts must be positive")
	}
	return &CPU{cfg: cfg, prog: prog, mem: make([]uint32, cfg.MemWords)}, nil
}

// Reset clears registers and memory.
func (c *CPU) Reset() {
	c.regs = [32]uint32{}
	for i := range c.mem {
		c.mem[i] = 0
	}
	c.prevA, c.prevB = 0, 0
	c.prevCarries = 0
}

// Reg reads a register.
func (c *CPU) Reg(i int) uint32 { return c.regs[i] }

// SetReg writes a register (r0 writes are ignored).
func (c *CPU) SetReg(i int, v uint32) {
	if i != 0 {
		c.regs[i] = v
	}
}

// Mem reads a data-memory word.
func (c *CPU) Mem(addr uint32) uint32 { return c.mem[addr&uint32(c.cfg.MemWords-1)] }

// SetMem writes a data-memory word.
func (c *CPU) SetMem(addr uint32, v uint32) { c.mem[addr&uint32(c.cfg.MemWords-1)] = v }

// LoadWords copies words into memory starting at addr.
func (c *CPU) LoadWords(addr uint32, words []uint32) {
	for i, w := range words {
		c.SetMem(addr+uint32(i), w)
	}
}

// CarriesMask returns the carry-in bit of every adder position for a+b
// (+carryIn): bit i is set when position i receives a carry.
func CarriesMask(a, b uint32, carryIn bool) uint32 {
	sum := uint64(a) + uint64(b)
	if carryIn {
		sum++
	}
	return uint32(sum ^ uint64(a) ^ uint64(b))
}

// LongestRun returns the length of the longest run of consecutive set bits.
func LongestRun(mask uint32) int {
	best, run := 0, 0
	for i := 0; i < 32; i++ {
		if mask&(1<<uint(i)) != 0 {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	return best
}

// CarryChainLen returns the length of the longest carry-propagation chain in
// the addition a+b (plus carry-in), which is the settle depth of a
// ripple-carry adder starting from a quiescent (zero) state.
func CarryChainLen(a, b uint32, carryIn bool) int {
	return LongestRun(CarriesMask(a, b, carryIn))
}

// AdderClass reports whether the op exercises the adder carry chain.
func AdderClass(op isa.Op) bool {
	switch op {
	case isa.OpAdd, isa.OpAddi, isa.OpLw, isa.OpSw,
		isa.OpSub, isa.OpSlt, isa.OpSlti,
		isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		return true
	}
	return false
}

// adderOperands returns the effective adder inputs of an adder-class op.
func adderOperands(op isa.Op, a, b uint32) (uint32, uint32, bool) {
	switch op {
	case isa.OpSub, isa.OpSlt, isa.OpSlti, isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		return a, ^b, true
	default:
		return a, b, false
	}
}

// shallowDepth computes the state-independent depth feature of non-adder ops.
func shallowDepth(op isa.Op, a, b uint32) int {
	switch op {
	case isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSlli, isa.OpSrli, isa.OpSrai:
		return bits.OnesCount32(b&31) + 1
	case isa.OpMul:
		lo := a
		if b < a {
			lo = b
		}
		return 32 - bits.LeadingZeros32(lo|1)
	case isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpLui:
		return 1
	default:
		return 0
	}
}

// Run executes the program from entry until halt, the end of the program, or
// the instruction limit, invoking obs (if non-nil) per retired instruction.
func (c *CPU) Run(obs Observer) (Stats, error) {
	return c.RunContext(context.Background(), obs)
}

// RunContext is Run under a context: the simulation polls ctx every
// ctxCheckInterval retired instructions and aborts with the context's error,
// so a deadline or cancellation stops even a runaway program promptly. The
// instruction limit and the context race; whichever fires first determines
// the returned error (ErrInstLimit vs. ctx.Err()), never a hang.
func (c *CPU) RunContext(ctx context.Context, obs Observer) (Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var st Stats
	pc := 0
	var d DynInst
	var lastWasLoad bool
	var lastRd uint8
	for pc >= 0 && pc < len(c.prog.Insts) {
		if st.Instructions >= c.cfg.MaxInsts {
			return st, fmt.Errorf("%w: limit %d (runaway program?)", ErrInstLimit, c.cfg.MaxInsts)
		}
		if st.Instructions%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return st, fmt.Errorf("cpu: run aborted after %d instructions: %w", st.Instructions, err)
			}
		}
		in := &c.prog.Insts[pc]
		a := c.regs[in.Rs1]
		var b uint32
		if in.ReadsRs2() {
			b = c.regs[in.Rs2]
		} else {
			b = uint32(in.Imm)
		}

		d = DynInst{Index: pc, Op: in.Op, A: a, B: b}
		next := pc + 1
		switch in.Op {
		case isa.OpNop:
		case isa.OpHalt:
			st.Halted = true
		case isa.OpAdd, isa.OpAddi:
			d.Result = a + b
		case isa.OpSub:
			d.Result = a - b
		case isa.OpAnd, isa.OpAndi:
			d.Result = a & b
		case isa.OpOr, isa.OpOri:
			d.Result = a | b
		case isa.OpXor, isa.OpXori:
			d.Result = a ^ b
		case isa.OpSll, isa.OpSlli:
			d.Result = a << (b & 31)
		case isa.OpSrl, isa.OpSrli:
			d.Result = a >> (b & 31)
		case isa.OpSra, isa.OpSrai:
			d.Result = uint32(int32(a) >> (b & 31))
		case isa.OpSlt, isa.OpSlti:
			if int32(a) < int32(b) {
				d.Result = 1
			}
		case isa.OpMul:
			d.Result = a * b
		case isa.OpLui:
			d.Result = uint32(in.Imm) << 16
		case isa.OpLw:
			addr := a + uint32(in.Imm)
			d.Result = c.Mem(addr)
		case isa.OpSw:
			addr := a + uint32(in.Imm)
			c.SetMem(addr, c.regs[in.Rs2])
			d.Result = addr
		case isa.OpBeq:
			d.Taken = a == b
		case isa.OpBne:
			d.Taken = a != b
		case isa.OpBlt:
			d.Taken = int32(a) < int32(b)
		case isa.OpBge:
			d.Taken = int32(a) >= int32(b)
		case isa.OpJal:
			d.Result = uint32(pc + 1)
			d.Taken = true
		case isa.OpJr:
			d.Taken = true
		default:
			return st, fmt.Errorf("cpu: unimplemented op %v at %d", in.Op, pc)
		}

		if in.WritesRd() {
			c.regs[in.Rd] = d.Result
		}
		if d.Taken {
			switch in.Op {
			case isa.OpJr:
				next = int(c.regs[in.Rs1])
			default:
				next = in.Target
			}
		}

		// Activity features.
		if AdderClass(in.Op) {
			ea, eb, cin := adderOperands(in.Op, a, b)
			carries := CarriesMask(ea, eb, cin)
			d.Depth = LongestRun(carries ^ c.prevCarries)
			d.DepthFlush = LongestRun(carries)
			c.prevCarries = carries
		} else {
			d.Depth = shallowDepth(in.Op, a, b)
			d.DepthFlush = d.Depth
			c.prevCarries = 0 // the ALU computed something else; carry state gone
		}
		d.Toggle = bits.OnesCount32(c.prevA^a) + bits.OnesCount32(c.prevB^b)
		d.ToggleFlush = bits.OnesCount32(a) + bits.OnesCount32(b)
		c.prevA, c.prevB = a, b

		// Cycle accounting: 1 cycle per instruction, plus hazards.
		st.Cycles++
		if lastWasLoad && lastRd != 0 &&
			((in.ReadsRs1() && in.Rs1 == lastRd) || (in.ReadsRs2() && in.Rs2 == lastRd)) {
			st.Cycles += c.cfg.LoadUseStall
		}
		if d.Taken {
			st.Cycles += c.cfg.BranchPenalty
		}
		lastWasLoad = in.Op.IsLoad()
		lastRd = in.Rd

		st.Instructions++
		if obs != nil {
			obs(&d)
		}
		if st.Halted {
			break
		}
		pc = next
	}
	// Drain the pipeline.
	st.Cycles += NumStages - 1
	return st, nil
}
