// Package cpu implements the in-order TS-V8 pipeline: a functional simulator
// with cycle-accurate in-order timing (load-use stalls, branch penalties), a
// per-retired-instruction observer used to extract datapath activity
// features, the timing-speculative error-correction emulation (instruction
// replay at half frequency, as in the 45 nm resilient Intel core the paper
// adopts), and the resulting performance model.
package cpu

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"tsperr/internal/isa"
)

// ErrInstLimit is the typed cause returned when a run retires MaxInsts
// instructions without halting (a runaway program). Callers distinguish it
// from a context cancellation with errors.Is.
var ErrInstLimit = errors.New("cpu: instruction limit exceeded")

// ctxCheckInterval is how many retired instructions pass between context
// polls in RunContext: frequent enough that cancellation aborts a simulation
// promptly, rare enough that the check cost vanishes in the decode loop.
const ctxCheckInterval = 8192

// Stages of the pipeline, matching the 6-stage integer unit assumed in the
// paper's experimental setup.
const (
	StageIF = iota
	StageID
	StageRA
	StageEX
	StageME
	StageWB
	NumStages
)

// StageName returns a short mnemonic for a stage index.
func StageName(s int) string {
	return [...]string{"IF", "ID", "RA", "EX", "ME", "WB"}[s]
}

// Config parameterizes a simulation run.
type Config struct {
	// MemWords is the data memory size in 32-bit words (power of two).
	MemWords int
	// MaxInsts aborts runaway programs after this many retired instructions.
	MaxInsts int64
	// LoadUseStall is the number of bubbles between a load and a dependent
	// consumer (1 for this pipeline).
	LoadUseStall int64
	// BranchPenalty is the number of fetch bubbles after a taken branch.
	BranchPenalty int64
	// SkipToggles leaves DynInst.Toggle and DynInst.ToggleFlush unspecified,
	// saving four population counts per retired instruction. Set it when no
	// observer consumes the toggle features (the error-rate pipeline uses
	// only the depth features); everything else is unaffected.
	SkipToggles bool
}

// DefaultConfig returns the standard machine configuration.
func DefaultConfig() Config {
	return Config{MemWords: 1 << 16, MaxInsts: 50_000_000, LoadUseStall: 1, BranchPenalty: 2}
}

// DynInst describes one retired dynamic instruction together with the
// datapath activity features the instruction error model consumes.
type DynInst struct {
	// Index is the static instruction index (program counter).
	Index int
	Op    isa.Op
	// A, B are the operand values seen by the execute stage.
	A, B uint32
	// Result is the value produced (ALU result, loaded value, or effective
	// address for stores).
	Result uint32
	// Taken reports whether a branch was taken.
	Taken bool
	// Depth is the activated-logic-depth feature of the execute stage given
	// normal execution of the previous instruction: for adder-class
	// operations it is the longest run of carry bits that *changed* relative
	// to the previous adder operation (only changing nets activate paths,
	// Definition 3.2); for shifts it is the number of active barrel-shifter
	// layers; shallow logic contributes small constants. It drives the
	// correct-predecessor conditional probability p^c.
	Depth int
	// DepthFlush is the same feature recomputed as if the previous
	// instruction had been squashed into a pipeline bubble (datapath state
	// zero) — the nop-instrumentation trick of Section 4.1 used to extract
	// the error-conditioned probabilities p^e.
	DepthFlush int
	// Toggle is the Hamming distance between this instruction's operand pair
	// and the previous instruction's, i.e. how much of the datapath switches.
	Toggle int
	// ToggleFlush is Toggle recomputed from the flushed (zero) state.
	ToggleFlush int
}

// Observer receives every retired instruction. The pointed-to struct is
// reused; implementations must copy anything they keep.
type Observer func(*DynInst)

// Stats summarizes a run.
type Stats struct {
	Instructions int64
	Cycles       int64
	Halted       bool
}

// CPU is a TS-V8 machine instance.
type CPU struct {
	cfg     Config
	prog    *isa.Program
	code    []decoded // threaded-dispatch table, built once at New
	memMask uint32
	regs    [32]uint32
	mem     []uint32

	prevA, prevB uint32
	prevCarries  uint32

	// dynBuf is the retirement batch buffer, allocated on first use and
	// reused across runs (see RunBatched).
	dynBuf []DynInst
}

// New builds a machine for a program. The program is predecoded into the
// dispatch table once here; the data memory comes from a per-size slab pool
// (see Release).
func New(prog *isa.Program, cfg Config) (*CPU, error) {
	if cfg.MemWords <= 0 || cfg.MemWords&(cfg.MemWords-1) != 0 {
		return nil, fmt.Errorf("cpu: MemWords must be a positive power of two, got %d", cfg.MemWords)
	}
	if cfg.MaxInsts <= 0 {
		return nil, fmt.Errorf("cpu: MaxInsts must be positive")
	}
	return &CPU{
		cfg:     cfg,
		prog:    prog,
		code:    decodeProgram(prog),
		memMask: uint32(cfg.MemWords - 1),
		mem:     getMem(cfg.MemWords),
	}, nil
}

// Reset clears registers and memory.
func (c *CPU) Reset() {
	c.regs = [32]uint32{}
	clear(c.mem)
	c.prevA, c.prevB = 0, 0
	c.prevCarries = 0
}

// Reg reads a register.
func (c *CPU) Reg(i int) uint32 { return c.regs[i] }

// SetReg writes a register (r0 writes are ignored).
func (c *CPU) SetReg(i int, v uint32) {
	if i != 0 {
		c.regs[i] = v
	}
}

// Mem reads a data-memory word.
func (c *CPU) Mem(addr uint32) uint32 { return c.mem[addr&uint32(c.cfg.MemWords-1)] }

// SetMem writes a data-memory word.
func (c *CPU) SetMem(addr uint32, v uint32) { c.mem[addr&uint32(c.cfg.MemWords-1)] = v }

// LoadWords copies words into memory starting at addr.
func (c *CPU) LoadWords(addr uint32, words []uint32) {
	for i, w := range words {
		c.SetMem(addr+uint32(i), w)
	}
}

// CarriesMask returns the carry-in bit of every adder position for a+b
// (+carryIn): bit i is set when position i receives a carry.
func CarriesMask(a, b uint32, carryIn bool) uint32 {
	sum := uint64(a) + uint64(b)
	if carryIn {
		sum++
	}
	return uint32(sum ^ uint64(a) ^ uint64(b))
}

// LongestRun returns the length of the longest run of consecutive set bits.
// It skips from run to run with trailing-zero counts — align the next run to
// bit 0, measure it as the trailing zeros of the complement, shift it out —
// so the cost is a handful of operations per run rather than per bit. The
// function sits on the per-instruction feature path, where carry masks have
// very few runs: an equality comparison (a + ^a + 1) carries out of every
// position (one 32-bit run), and arithmetic on small operands leaves one or
// two short chains. A naive erase-one-bit loop would spin 32 times exactly
// on the most common branch instructions.
func LongestRun(mask uint32) int {
	n := 0
	x := mask
	for x != 0 {
		x >>= uint(bits.TrailingZeros32(x))
		r := bits.TrailingZeros32(^x) // run length; 32 when x is all ones
		if r > n {
			n = r
		}
		x >>= uint(r)
	}
	return n
}

// CarryChainLen returns the length of the longest carry-propagation chain in
// the addition a+b (plus carry-in), which is the settle depth of a
// ripple-carry adder starting from a quiescent (zero) state.
func CarryChainLen(a, b uint32, carryIn bool) int {
	return LongestRun(CarriesMask(a, b, carryIn))
}

// AdderClass reports whether the op exercises the adder carry chain.
func AdderClass(op isa.Op) bool {
	switch op {
	case isa.OpAdd, isa.OpAddi, isa.OpLw, isa.OpSw,
		isa.OpSub, isa.OpSlt, isa.OpSlti,
		isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		return true
	}
	return false
}

// adderOperands returns the effective adder inputs of an adder-class op.
func adderOperands(op isa.Op, a, b uint32) (uint32, uint32, bool) {
	switch op {
	case isa.OpSub, isa.OpSlt, isa.OpSlti, isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		return a, ^b, true
	default:
		return a, b, false
	}
}

// shallowDepth computes the state-independent depth feature of non-adder ops.
func shallowDepth(op isa.Op, a, b uint32) int {
	switch op {
	case isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSlli, isa.OpSrli, isa.OpSrai:
		return bits.OnesCount32(b&31) + 1
	case isa.OpMul:
		lo := a
		if b < a {
			lo = b
		}
		return 32 - bits.LeadingZeros32(lo|1)
	case isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpLui:
		return 1
	default:
		return 0
	}
}

// Run executes the program from entry until halt, the end of the program, or
// the instruction limit, invoking obs (if non-nil) per retired instruction.
func (c *CPU) Run(obs Observer) (Stats, error) {
	return c.RunContext(context.Background(), obs)
}

// RunContext is Run under a context: the simulation polls ctx every
// ctxCheckInterval retired instructions and aborts with the context's error,
// so a deadline or cancellation stops even a runaway program promptly. The
// instruction limit and the context race; whichever fires first determines
// the returned error (ErrInstLimit vs. ctx.Err()), never a hang.
func (c *CPU) RunContext(ctx context.Context, obs Observer) (Stats, error) {
	if obs == nil {
		return c.RunBatched(ctx, nil)
	}
	return c.RunBatched(ctx, func(ds []DynInst) {
		for i := range ds {
			obs(&ds[i])
		}
	})
}

// BatchObserver receives retired instructions in retirement order, in
// batches of up to batchLen. The backing slice is reused across calls;
// implementations must copy anything they keep. Every retired instruction is
// delivered exactly once, including ahead of an error return, so batch
// consumers see the same stream a per-instruction Observer would.
type BatchObserver func([]DynInst)

// batchLen sizes the retirement buffer: large enough to amortize the
// observer dispatch to nothing, small enough (8 KiB) to stay L1-resident
// between the simulator writing it and the observers reading it back.
const batchLen = 128

// RunBatched is the core interpreter loop; RunContext adapts per-instruction
// observers onto it. Batching exists for the hot consumers (profile and
// feature accumulation) whose per-instruction work is a handful of memory
// operations — delivering them a slice turns three indirect calls per
// retired instruction into plain loop iterations.
func (c *CPU) RunBatched(ctx context.Context, batch BatchObserver) (Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	buf := c.dynBuf
	if buf == nil {
		buf = make([]DynInst, batchLen)
		c.dynBuf = buf
	}
	if batch == nil {
		// No consumer: retire through a single scratch slot, never flushed.
		buf = buf[:1]
	}
	n := 0
	var st Stats
	code := c.code
	regs := &c.regs
	maxInsts := c.cfg.MaxInsts
	loadUseStall, branchPenalty := c.cfg.LoadUseStall, c.cfg.BranchPenalty
	skipToggles := c.cfg.SkipToggles
	// The rolling datapath state lives in locals for the duration of the run
	// (each exit path writes it back, keeping sequential runs on one machine
	// continuous), so the feature extraction below stays register-resident.
	prevA, prevB, prevCarries := c.prevA, c.prevB, c.prevCarries
	var insts, cycles int64
	pc := 0
	var lastWasLoad bool
	var lastRd uint8
	// budget counts instructions until the next poll point; it folds the
	// instruction-limit and context checks into one countdown so the loop
	// body pays a single predictable branch for both.
	budget := int64(0)
	for pc >= 0 && pc < len(code) {
		if budget == 0 {
			if n > 0 {
				batch(buf[:n])
				n = 0
			}
			st.Instructions, st.Cycles = insts, cycles
			c.prevA, c.prevB, c.prevCarries = prevA, prevB, prevCarries
			if insts >= maxInsts {
				return st, fmt.Errorf("%w: limit %d (runaway program?)", ErrInstLimit, maxInsts)
			}
			if err := ctx.Err(); err != nil {
				return st, fmt.Errorf("cpu: run aborted after %d instructions: %w", insts, err)
			}
			budget = ctxCheckInterval
			if rem := maxInsts - insts; rem < budget {
				budget = rem
			}
		}
		budget--
		dc := &code[pc]
		if dc.flags&fBad != 0 {
			if n > 0 {
				batch(buf[:n])
			}
			st.Instructions, st.Cycles = insts, cycles
			c.prevA, c.prevB, c.prevCarries = prevA, prevB, prevCarries
			return st, fmt.Errorf("cpu: unimplemented op %v at %d", dc.op, pc)
		}
		a := regs[dc.rs1]
		b := dc.imm
		if dc.flags&fReadsRs2 != 0 {
			b = regs[dc.rs2]
		}

		res, taken := dc.exec(c, dc, a, b, pc)
		// Field writes instead of a composite literal: every DynInst field is
		// assigned on every path below (Depth/DepthFlush in the class switch,
		// toggles unconditionally), so nothing needs re-zeroing per retire.
		d := &buf[n]
		d.Index = pc
		d.Op = dc.op
		d.A, d.B = a, b
		d.Result = res
		d.Taken = taken
		if dc.flags&fWritesRd != 0 {
			regs[dc.rd] = res
		}
		next := pc + 1
		if taken {
			if dc.flags&fJr != 0 {
				next = int(a)
			} else {
				next = int(dc.target)
			}
		}

		// Activity features, by decode-time class.
		switch dc.class {
		case classAdder, classAdderInv:
			eb, cin := b, false
			if dc.class == classAdderInv {
				eb, cin = ^b, true
			}
			carries := CarriesMask(a, eb, cin)
			d.Depth = LongestRun(carries ^ prevCarries)
			d.DepthFlush = LongestRun(carries)
			prevCarries = carries
		case classShift:
			d.Depth = bits.OnesCount32(b&31) + 1
			d.DepthFlush = d.Depth
			prevCarries = 0 // the ALU computed something else; carry state gone
		case classMul:
			lo := a
			if b < a {
				lo = b
			}
			d.Depth = 32 - bits.LeadingZeros32(lo|1)
			d.DepthFlush = d.Depth
			prevCarries = 0
		case classLogic:
			d.Depth = 1
			d.DepthFlush = 1
			prevCarries = 0
		default:
			d.Depth = 0
			d.DepthFlush = 0
			prevCarries = 0
		}
		if !skipToggles {
			d.Toggle = bits.OnesCount32(prevA^a) + bits.OnesCount32(prevB^b)
			d.ToggleFlush = bits.OnesCount32(a) + bits.OnesCount32(b)
		}
		prevA, prevB = a, b

		// Cycle accounting: 1 cycle per instruction, plus hazards.
		cycles++
		if lastWasLoad && lastRd != 0 &&
			((dc.flags&fReadsRs1 != 0 && dc.rs1 == lastRd) || (dc.flags&fReadsRs2 != 0 && dc.rs2 == lastRd)) {
			cycles += loadUseStall
		}
		if taken {
			cycles += branchPenalty
		}
		lastWasLoad = dc.flags&fLoad != 0
		lastRd = dc.rd

		insts++
		if batch != nil {
			n++
			if n == len(buf) {
				batch(buf)
				n = 0
			}
		}
		if dc.flags&fHalt != 0 {
			st.Halted = true
			break
		}
		pc = next
	}
	if n > 0 {
		batch(buf[:n])
	}
	st.Instructions, st.Cycles = insts, cycles
	c.prevA, c.prevB, c.prevCarries = prevA, prevB, prevCarries
	// Drain the pipeline.
	st.Cycles += NumStages - 1
	return st, nil
}
