package cpu

// Correction describes a timing-error detection/correction scheme and its
// recovery cost, following Section 4.1 and the experimental setup of the
// paper.
type Correction struct {
	Name string
	// PenaltyCycles is the recovery cost charged per timing error, in
	// baseline clock cycles.
	PenaltyCycles float64
	// Flush reports whether recovery squashes the pipeline, which determines
	// how the error-conditioned probabilities p^e are extracted (the nop
	// instrumentation of Section 4.1 applies to flushing schemes).
	Flush bool
}

// The schemes discussed in the paper.
var (
	// ReplayHalfFrequency is the conservative Intel resilient-core scheme
	// the evaluation adopts: on error, halve the frequency, flush the
	// pipeline, and reissue the errant instruction — 24 cycles for the
	// 6-stage pipeline.
	ReplayHalfFrequency = Correction{Name: "replay-half-frequency", PenaltyCycles: 24, Flush: true}
	// PipelineFlush models RazorII-style flush-and-refill recovery.
	PipelineFlush = Correction{Name: "pipeline-flush", PenaltyCycles: float64(NumStages), Flush: true}
	// SingleCycleReplay models iRazor-style one-cycle in-place correction.
	SingleCycleReplay = Correction{Name: "single-cycle-replay", PenaltyCycles: 1, Flush: false}
)

// PerfModel converts a program error rate into timing-speculative
// performance, reproducing the top axis of Figure 3.
type PerfModel struct {
	// FreqRatio is the speculative over baseline frequency ratio
	// (825 MHz / 718 MHz = 1.15 in the paper).
	FreqRatio float64
	// BaseCPI is the baseline cycles per instruction.
	BaseCPI float64
	// Scheme is the error-correction scheme in effect.
	Scheme Correction
}

// PaperPerfModel returns the model of the paper's experimental setup:
// 1.15x frequency, unit base CPI, replay at half frequency.
func PaperPerfModel() PerfModel {
	return PerfModel{FreqRatio: 1.15, BaseCPI: 1, Scheme: ReplayHalfFrequency}
}

// Speedup returns TS performance relative to the non-speculative baseline
// for a given error rate (fraction of instructions that experience a timing
// error): FreqRatio * BaseCPI / (BaseCPI + errRate * penalty).
//
// At the paper's anchors: Speedup(0.004) = 1.0493 (+4.93%) and
// Speedup(0.01068) = 0.9154 (-8.46%).
func (m PerfModel) Speedup(errRate float64) float64 {
	return m.FreqRatio * m.BaseCPI / (m.BaseCPI + errRate*m.Scheme.PenaltyCycles)
}

// ImprovementPct returns the performance improvement in percent (negative
// for degradation).
func (m PerfModel) ImprovementPct(errRate float64) float64 {
	return (m.Speedup(errRate) - 1) * 100
}

// BreakEvenErrorRate returns the error rate at which timing speculation
// stops paying off (Speedup = 1).
func (m PerfModel) BreakEvenErrorRate() float64 {
	return m.BaseCPI * (m.FreqRatio - 1) / m.Scheme.PenaltyCycles
}

// ApplyErrors charges the recovery penalty for a number of timing errors to
// a run's cycle count.
func ApplyErrors(st Stats, errors int64, scheme Correction) Stats {
	st.Cycles += int64(float64(errors) * scheme.PenaltyCycles)
	return st
}
