package cpu

// The threaded-dispatch interpreter (RunBatched) replaced the original
// switch-based decode loop. This file keeps that original loop, ported
// verbatim, as a semantic oracle: every opcode, hazard, and activity feature
// must retire identically through both, instruction by instruction.

import (
	"fmt"
	"math/bits"
	"math/rand"
	"reflect"
	"testing"

	"tsperr/internal/isa"
)

// oracleRun is the seed interpreter: per-instruction switch decode, features
// computed through the exported helper predicates. It intentionally mirrors
// the original code rather than the dispatch table, so a decode-time mistake
// (wrong flag, wrong class, wrong resolved immediate) cannot cancel out.
func oracleRun(c *CPU, obs Observer) (Stats, error) {
	var st Stats
	pc := 0
	var d DynInst
	var lastWasLoad bool
	var lastRd uint8
	for pc >= 0 && pc < len(c.prog.Insts) {
		if st.Instructions >= c.cfg.MaxInsts {
			return st, fmt.Errorf("%w: limit %d (runaway program?)", ErrInstLimit, c.cfg.MaxInsts)
		}
		in := &c.prog.Insts[pc]
		a := c.regs[in.Rs1]
		var b uint32
		if in.ReadsRs2() {
			b = c.regs[in.Rs2]
		} else {
			b = uint32(in.Imm)
		}

		d = DynInst{Index: pc, Op: in.Op, A: a, B: b}
		next := pc + 1
		switch in.Op {
		case isa.OpNop:
		case isa.OpHalt:
			st.Halted = true
		case isa.OpAdd, isa.OpAddi:
			d.Result = a + b
		case isa.OpSub:
			d.Result = a - b
		case isa.OpAnd, isa.OpAndi:
			d.Result = a & b
		case isa.OpOr, isa.OpOri:
			d.Result = a | b
		case isa.OpXor, isa.OpXori:
			d.Result = a ^ b
		case isa.OpSll, isa.OpSlli:
			d.Result = a << (b & 31)
		case isa.OpSrl, isa.OpSrli:
			d.Result = a >> (b & 31)
		case isa.OpSra, isa.OpSrai:
			d.Result = uint32(int32(a) >> (b & 31))
		case isa.OpSlt, isa.OpSlti:
			if int32(a) < int32(b) {
				d.Result = 1
			}
		case isa.OpMul:
			d.Result = a * b
		case isa.OpLui:
			d.Result = uint32(in.Imm) << 16
		case isa.OpLw:
			addr := a + uint32(in.Imm)
			d.Result = c.Mem(addr)
		case isa.OpSw:
			addr := a + uint32(in.Imm)
			c.SetMem(addr, c.regs[in.Rs2])
			d.Result = addr
		case isa.OpBeq:
			d.Taken = a == b
		case isa.OpBne:
			d.Taken = a != b
		case isa.OpBlt:
			d.Taken = int32(a) < int32(b)
		case isa.OpBge:
			d.Taken = int32(a) >= int32(b)
		case isa.OpJal:
			d.Result = uint32(pc + 1)
			d.Taken = true
		case isa.OpJr:
			d.Taken = true
		default:
			return st, fmt.Errorf("cpu: unimplemented op %v at %d", in.Op, pc)
		}

		if in.WritesRd() {
			c.regs[in.Rd] = d.Result
		}
		if d.Taken {
			switch in.Op {
			case isa.OpJr:
				next = int(c.regs[in.Rs1])
			default:
				next = in.Target
			}
		}

		// Activity features.
		if AdderClass(in.Op) {
			ea, eb, cin := adderOperands(in.Op, a, b)
			carries := CarriesMask(ea, eb, cin)
			d.Depth = oracleLongestRun(carries ^ c.prevCarries)
			d.DepthFlush = oracleLongestRun(carries)
			c.prevCarries = carries
		} else {
			d.Depth = shallowDepth(in.Op, a, b)
			d.DepthFlush = d.Depth
			c.prevCarries = 0
		}
		d.Toggle = bits.OnesCount32(c.prevA^a) + bits.OnesCount32(c.prevB^b)
		d.ToggleFlush = bits.OnesCount32(a) + bits.OnesCount32(b)
		c.prevA, c.prevB = a, b

		// Cycle accounting: 1 cycle per instruction, plus hazards.
		st.Cycles++
		if lastWasLoad && lastRd != 0 &&
			((in.ReadsRs1() && in.Rs1 == lastRd) || (in.ReadsRs2() && in.Rs2 == lastRd)) {
			st.Cycles += c.cfg.LoadUseStall
		}
		if d.Taken {
			st.Cycles += c.cfg.BranchPenalty
		}
		lastWasLoad = in.Op.IsLoad()
		lastRd = in.Rd

		st.Instructions++
		if obs != nil {
			obs(&d)
		}
		if st.Halted {
			break
		}
		pc = next
	}
	// Drain the pipeline.
	st.Cycles += NumStages - 1
	return st, nil
}

// oracleLongestRun is the bit-at-a-time reference for the run-skipping
// LongestRun in the hot loop.
func oracleLongestRun(mask uint32) int {
	best, cur := 0, 0
	for i := 0; i < 32; i++ {
		if mask>>uint(i)&1 == 1 {
			cur++
			if cur > best {
				best = cur
			}
		} else {
			cur = 0
		}
	}
	return best
}

func TestLongestRunMatchesReference(t *testing.T) {
	cases := []uint32{0, 1, 0xFFFFFFFF, 0x80000000, 0x7FFFFFFF, 0xFFFF0000,
		0x0000FFFF, 0xAAAAAAAA, 0x55555555, 0xF0F0F0F0, 0x00100400, 0xFFFFFFFE}
	for _, m := range cases {
		if got, want := LongestRun(m), oracleLongestRun(m); got != want {
			t.Errorf("LongestRun(%#08x) = %d, want %d", m, got, want)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		m := rng.Uint32()
		if got, want := LongestRun(m), oracleLongestRun(m); got != want {
			t.Fatalf("LongestRun(%#08x) = %d, want %d", m, got, want)
		}
	}
}

// oracleConfig shrinks memory so address wrap-around is exercised and keeps
// toggles on (the oracle always computes them).
func oracleConfig() Config {
	cfg := DefaultConfig()
	cfg.MemWords = 256
	return cfg
}

// opPatterns are the EX operand values the per-opcode programs cycle
// through: identities, sign boundaries, alternating masks, and values that
// build long and short carry chains.
var opPatterns = []uint32{
	0, 1, 2, 31, 32, 0xFFFFFFFF, 0x80000000, 0x7FFFFFFF,
	0xAAAAAAAA, 0x55555555, 0xDEADBEEF, 0x0000FFFF, 0xFFFF0000, 100, 255,
}

// seedCPU loads the operand patterns into r1..r15 and a recognizable ramp
// into data memory.
func seedCPU(c *CPU) {
	for i, v := range opPatterns {
		c.SetReg(i+1, v)
	}
	for w := 0; w < 256; w++ {
		c.SetMem(uint32(w), uint32(w)*0x01010101)
	}
}

// runEquiv retires prog through both interpreters from identical initial
// state and requires bit-identical DynInst streams, stats, errors, registers,
// and memory.
func runEquiv(t *testing.T, prog *isa.Program, cfg Config) {
	t.Helper()
	collect := func(run func(*CPU, Observer) (Stats, error)) ([]DynInst, Stats, error, *CPU) {
		c, err := New(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		seedCPU(c)
		var ds []DynInst
		st, runErr := run(c, func(d *DynInst) { ds = append(ds, *d) })
		return ds, st, runErr, c
	}
	gotDs, gotSt, gotErr, gotC := collect(func(c *CPU, obs Observer) (Stats, error) { return c.Run(obs) })
	wantDs, wantSt, wantErr, wantC := collect(oracleRun)

	if (gotErr == nil) != (wantErr == nil) ||
		(gotErr != nil && gotErr.Error() != wantErr.Error()) {
		t.Fatalf("error mismatch: dispatch %v, oracle %v", gotErr, wantErr)
	}
	if gotSt != wantSt {
		t.Errorf("stats mismatch: dispatch %+v, oracle %+v", gotSt, wantSt)
	}
	if len(gotDs) != len(wantDs) {
		t.Fatalf("retired %d instructions, oracle retired %d", len(gotDs), len(wantDs))
	}
	for i := range gotDs {
		if gotDs[i] != wantDs[i] {
			t.Fatalf("retire %d diverges:\ndispatch %+v\noracle   %+v", i, gotDs[i], wantDs[i])
		}
	}
	if gotC.regs != wantC.regs {
		t.Errorf("final registers diverge:\ndispatch %v\noracle   %v", gotC.regs, wantC.regs)
	}
	if !reflect.DeepEqual(gotC.mem, wantC.mem) {
		t.Errorf("final memory diverges")
	}
}

// opProgram builds a program that exercises a single opcode across the
// operand patterns, varying rd/rs1/rs2/imm and interleaving adds so the
// rolling carry state (prevCarries, prevA/prevB) is nontrivial.
func opProgram(op isa.Op) *isa.Program {
	p := &isa.Program{Name: "op-" + op.String()}
	emit := func(in isa.Inst) { p.Insts = append(p.Insts, in) }
	for i := range opPatterns {
		rs1 := uint8(1 + i%15)
		rs2 := uint8(1 + (i+3)%15)
		rd := uint8(16 + i%8) // keep the pattern registers stable
		imm := int32(opPatterns[(i+5)%len(opPatterns)])
		switch {
		case op.IsBranch():
			// Branch over a nop so both outcomes are covered; targets are
			// forward, so the program always terminates.
			emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Target: len(p.Insts) + 2})
			emit(isa.Inst{Op: isa.OpNop})
		case op == isa.OpJal:
			emit(isa.Inst{Op: op, Rd: rd, Target: len(p.Insts) + 1})
		case op == isa.OpJr:
			// Jump to the next instruction: rd holds the return target.
			emit(isa.Inst{Op: isa.OpAddi, Rd: 24, Imm: int32(len(p.Insts) + 2)})
			emit(isa.Inst{Op: op, Rs1: 24})
		case op == isa.OpLw, op == isa.OpSw:
			emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm})
		case op.IsRType():
			emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
		default: // I-type and nop/halt-like
			emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
		}
		// Perturb the rolling datapath state between instances.
		emit(isa.Inst{Op: isa.OpAdd, Rd: 25, Rs1: rs1, Rs2: rs2})
	}
	emit(isa.Inst{Op: isa.OpHalt})
	return p
}

// TestDispatchMatchesOraclePerOpcode proves opcode-by-opcode that the
// function-table interpreter preserves the original switch semantics,
// including the Depth/DepthFlush/Toggle features and cycle accounting.
func TestDispatchMatchesOraclePerOpcode(t *testing.T) {
	for op := isa.OpNop; op < isa.NumOps; op++ {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			runEquiv(t, opProgram(op), oracleConfig())
		})
	}
}

// TestDispatchMatchesOracleUnknownOp proves both interpreters reject an
// undecodable opcode with the same error at the same point.
func TestDispatchMatchesOracleUnknownOp(t *testing.T) {
	p := &isa.Program{Name: "bad", Insts: []isa.Inst{
		{Op: isa.OpAdd, Rd: 20, Rs1: 1, Rs2: 2},
		{Op: isa.NumOps}, // not a real opcode
		{Op: isa.OpHalt},
	}}
	runEquiv(t, p, oracleConfig())
}

// TestDispatchMatchesOracleInstLimit proves the budget-countdown limit check
// aborts at exactly the same retire count as the oracle's per-instruction
// check, with identical partial stats.
func TestDispatchMatchesOracleInstLimit(t *testing.T) {
	p := &isa.Program{Name: "spin", Insts: []isa.Inst{
		{Op: isa.OpAddi, Rd: 20, Rs1: 20, Imm: 1},
		{Op: isa.OpJal, Target: 0},
	}}
	for _, limit := range []int64{1, 2, 100, ctxCheckInterval - 1, ctxCheckInterval, ctxCheckInterval + 1, 3*ctxCheckInterval + 7} {
		cfg := oracleConfig()
		cfg.MaxInsts = limit
		runEquiv(t, p, cfg)
	}
}

// TestDispatchMatchesOracleStress runs a combined kernel — nested loops,
// subroutine call/return, memory traffic, load-use hazards, every ALU class —
// through both interpreters.
func TestDispatchMatchesOracleStress(t *testing.T) {
	prog := isa.MustAssemble("stress", `
		li   r1, 0          # i
		li   r2, 24         # trip count
		li   r3, 0          # accumulator
	loop:
		sw   r3, 0(r1)
		lw   r4, 0(r1)      # load-use hazard on the next add
		add  r3, r3, r4
		mul  r5, r1, r3
		xor  r3, r3, r5
		slli r6, r1, 3
		srli r7, r3, 2
		sub  r3, r3, r7
		jal  r31, sub1
		addi r1, r1, 1
		blt  r1, r2, loop
		halt
	sub1:
		and  r8, r3, r6
		or   r3, r8, r1
		slt  r9, r3, r6
		beq  r9, r0, skip
		addi r3, r3, 17
	skip:
		jr   r31
	`)
	runEquiv(t, prog, oracleConfig())
}

// TestDispatchMatchesOracleHalts covers termination without an explicit halt
// (falling off the end of the program).
func TestDispatchMatchesOracleHalts(t *testing.T) {
	p := &isa.Program{Name: "fallthrough", Insts: []isa.Inst{
		{Op: isa.OpAddi, Rd: 20, Rs1: 1, Imm: 42},
		{Op: isa.OpAdd, Rd: 21, Rs1: 20, Rs2: 2},
	}}
	runEquiv(t, p, oracleConfig())
}
