package cpu

import (
	"testing"

	"tsperr/internal/isa"
	"tsperr/internal/numeric"
)

// randomProgram generates a structurally valid random program: arbitrary
// ALU/memory instructions with in-range registers, forward-only branches,
// and a final halt, so every run terminates within the instruction limit.
func randomProgram(rng *numeric.RNG, n int) *isa.Program {
	insts := make([]isa.Inst, 0, n+1)
	ops := []isa.Op{
		isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSll,
		isa.OpSrl, isa.OpSra, isa.OpSlt, isa.OpMul, isa.OpAddi, isa.OpAndi,
		isa.OpOri, isa.OpXori, isa.OpSlli, isa.OpSrli, isa.OpSrai,
		isa.OpSlti, isa.OpLui, isa.OpLw, isa.OpSw, isa.OpBeq, isa.OpBne,
		isa.OpBlt, isa.OpBge, isa.OpNop,
	}
	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		in := isa.Inst{
			Op:  op,
			Rd:  uint8(rng.Intn(32)),
			Rs1: uint8(rng.Intn(32)),
			Rs2: uint8(rng.Intn(32)),
			Imm: int32(rng.Intn(2048) - 1024),
		}
		if op.IsBranch() {
			// Forward target within the program (or the halt).
			in.Target = i + 1 + rng.Intn(n-i)
		}
		insts = append(insts, in)
	}
	insts = append(insts, isa.Inst{Op: isa.OpHalt})
	return &isa.Program{Name: "fuzz", Insts: insts}
}

// TestRandomProgramsTerminateAndDontPanic exercises the simulator over many
// random programs.
func TestRandomProgramsTerminateAndDontPanic(t *testing.T) {
	rng := numeric.NewRNG(99)
	for i := 0; i < 300; i++ {
		p := randomProgram(rng, 2+rng.Intn(60))
		cfg := DefaultConfig()
		cfg.MaxInsts = 10000
		c, err := New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := c.Run(nil)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		if !st.Halted {
			t.Fatalf("program %d did not halt", i)
		}
		if st.Cycles < st.Instructions {
			t.Fatalf("program %d: cycles %d < instructions %d", i, st.Cycles, st.Instructions)
		}
	}
}

// TestSimulationDeterminism: identical program + inputs give identical
// architectural state and identical observer streams.
func TestSimulationDeterminism(t *testing.T) {
	rng := numeric.NewRNG(5)
	p := randomProgram(rng, 50)
	run := func() ([]uint32, []DynInst) {
		cfg := DefaultConfig()
		cfg.MaxInsts = 10000
		c, _ := New(p, cfg)
		c.LoadWords(0, []uint32{7, 11, 13})
		var dyn []DynInst
		if _, err := c.Run(func(d *DynInst) { dyn = append(dyn, *d) }); err != nil {
			t.Fatal(err)
		}
		regs := make([]uint32, 32)
		for i := range regs {
			regs[i] = c.Reg(i)
		}
		return regs, dyn
	}
	r1, d1 := run()
	r2, d2 := run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("register %d differs", i)
		}
	}
	if len(d1) != len(d2) {
		t.Fatal("retire streams differ in length")
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("retire %d differs: %+v vs %+v", i, d1[i], d2[i])
		}
	}
}

// TestFeatureRanges: depth features stay within their documented ranges for
// arbitrary operand values.
func TestFeatureRanges(t *testing.T) {
	rng := numeric.NewRNG(17)
	for i := 0; i < 200; i++ {
		p := randomProgram(rng, 40)
		cfg := DefaultConfig()
		cfg.MaxInsts = 5000
		c, _ := New(p, cfg)
		if _, err := c.Run(func(d *DynInst) {
			if d.Depth < 0 || d.Depth > 32 {
				t.Fatalf("depth out of range: %+v", d)
			}
			if d.DepthFlush < 0 || d.DepthFlush > 32 {
				t.Fatalf("flush depth out of range: %+v", d)
			}
			if d.Toggle < 0 || d.Toggle > 64 || d.ToggleFlush < 0 || d.ToggleFlush > 64 {
				t.Fatalf("toggle out of range: %+v", d)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
}
