package core

import (
	"math"

	"tsperr/internal/cfg"
	"tsperr/internal/isa"
	"tsperr/internal/numeric"
)

// Report tier labels. An empty Tier means the report predates the two-tier
// service (the wire schema omits it), which consumers read as exact.
const (
	// TierExact marks a report computed by the full simulate → activity →
	// DTA → Eq.(14) pipeline.
	TierExact = "exact"
	// TierSurrogate marks a report synthesized from the ML fast tier's
	// prediction; Surrogate carries the prediction metadata and Estimate is
	// nil (the surrogate predicts the headline rate, not the distribution).
	TierSurrogate = "surrogate"
)

// SurrogateMeta is the fast-tier prediction metadata attached to a
// surrogate-tier Report: what was predicted, how uncertain the model was,
// and the gate bound the prediction passed.
type SurrogateMeta struct {
	// PredictedErrorRate is the predicted mean error rate (fraction);
	// PredictedLog10 is its log10, the model's native output space.
	PredictedErrorRate float64 `json:"predicted_error_rate"`
	PredictedLog10     float64 `json:"predicted_log10"`
	// StdLog10 is the prediction's calibrated standard deviation in log10
	// units; Bound is the gate's maximum std for serving. StdLog10 <= Bound
	// by construction on every served prediction.
	StdLog10 float64 `json:"std_log10"`
	Bound    float64 `json:"bound"`
	// ModelVersion and TrainSize identify the forest that answered.
	ModelVersion int `json:"model_version"`
	TrainSize    int `json:"train_size"`
}

// NumSurrogateFeatures is the length of the SurrogateFeatures vector; it is
// part of the surrogate feature schema (bump modelcache's surrogate schema
// version when it changes).
const NumSurrogateFeatures = 18

// surrogateLogFloor bounds safeLog10: probabilities at or below 1e-30 are
// indistinguishable from "never fails" for an estimator whose useful range
// tops out around 1e-12.
const surrogateLogFloor = -30

// safeLog10 is log10 clamped to the feature floor for non-positive inputs,
// keeping the feature space finite where the tables hold exact zeros.
func safeLog10(x float64) float64 {
	if x <= 0 {
		return surrogateLogFloor
	}
	l := math.Log10(x)
	if l < surrogateLogFloor {
		return surrogateLogFloor
	}
	return l
}

// SurrogateFeatures computes the fast-tier feature vector for a program
// analyzed with the given scenario fan-out. Every feature is available
// BEFORE simulation — static program shape, the machine's operating point,
// and the trained per-unit failure tables — which is what makes the fast
// tier fast: a cache miss costs one static pass over the instruction list,
// not a pipeline run. The vector layout is versioned by
// NumSurrogateFeatures plus modelcache.SurrogateSchemaVersion.
func (f *Framework) SurrogateFeatures(prog *isa.Program, scenarios int) []float64 {
	feats := make([]float64, NumSurrogateFeatures)
	if prog == nil || len(prog.Insts) == 0 || scenarios <= 0 {
		return feats
	}
	n := len(prog.Insts)
	blocks := 1
	if g, err := cfg.Build(prog); err == nil {
		blocks = len(g.Blocks)
	}

	adder, shift, logic, mul, worstMean := f.staticOpMix(prog)
	other := n - adder - shift - logic - mul

	dp := f.Datapath
	feats[0] = math.Log10(float64(n))
	feats[1] = math.Log10(float64(scenarios))
	feats[2] = math.Log10(float64(blocks))
	feats[3] = float64(adder) / float64(n)
	feats[4] = float64(shift) / float64(n)
	feats[5] = float64(logic) / float64(n)
	feats[6] = float64(mul) / float64(n)
	feats[7] = float64(other) / float64(n)
	feats[8] = f.Machine.WorkingPeriodPs / 1000
	feats[9] = f.Machine.Opts.WorkingRatio
	feats[10] = safeLog10(dp.LogicFail)
	feats[11] = safeLog10(dp.AdderFail[len(dp.AdderFail)-1])
	feats[12] = safeLog10(dp.ShiftFail[len(dp.ShiftFail)-1])
	feats[13] = safeLog10(dp.MulFail[len(dp.MulFail)-1])
	feats[14] = safeLog10(worstMean)
	feats[15] = dp.AdderSlack[len(dp.AdderSlack)-1].Mean / f.Machine.WorkingPeriodPs
	// The operating condition is part of the feature space: a model trained
	// at one (V, T) point must not silently answer for another — predictions
	// from a differently-conditioned snapshot fail the feature-length or
	// fingerprint check and escalate to the exact tier instead.
	cond := f.Machine.Opts.Cond.Norm()
	feats[16] = cond.VoltageV
	feats[17] = cond.TempC / 100
	return feats
}

// staticOpMix scans the static instruction list once (pure math, no
// simulation — microseconds even for the largest benchmark) and returns the
// op-class counts plus the mean worst-case failure probability. Ops are
// classified the way the datapath model routes failure probabilities:
// adder-served ops (arithmetic, compares, memory addressing, branches),
// shifter, logic unit, multiplier; everything else (jumps, nop, halt) has no
// datapath timing model.
func (f *Framework) staticOpMix(prog *isa.Program) (adder, shift, logic, mul int, worstMean float64) {
	var worst numeric.KahanSum
	for _, in := range prog.Insts {
		switch in.Op {
		case isa.OpMul:
			mul++
		case isa.OpAdd, isa.OpAddi, isa.OpLw, isa.OpSw, isa.OpSub,
			isa.OpSlt, isa.OpSlti, isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
			adder++
		case isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSlli, isa.OpSrli, isa.OpSrai:
			shift++
		case isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpLui:
			logic++
		}
		// Worst-case (deepest-activation) failure probability of each static
		// instruction: an upper envelope of what simulation can observe.
		worst.Add(f.Datapath.FailProb(in.Op, 32))
	}
	return adder, shift, logic, mul, worst.Value() / float64(len(prog.Insts))
}
