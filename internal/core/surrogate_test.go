package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"tsperr/internal/isa"
)

func TestSurrogateFeaturesShapeAndDeterminism(t *testing.T) {
	f := testFramework(t)
	prog := isa.MustAssemble("sumloop", fwProg)

	a := f.SurrogateFeatures(prog, 4)
	if len(a) != NumSurrogateFeatures {
		t.Fatalf("feature count = %d, want %d", len(a), NumSurrogateFeatures)
	}
	for i, v := range a {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %d is not finite: %g", i, v)
		}
	}
	b := f.SurrogateFeatures(prog, 4)
	for i := range a {
		// Determinism is a bit-identity contract, so compare the raw bits.
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("feature %d not deterministic: %g vs %g", i, a[i], b[i])
		}
	}

	// The op-class fractions partition the static instruction mix.
	fracSum := a[3] + a[4] + a[5] + a[6] + a[7]
	if math.Abs(fracSum-1) > 1e-12 {
		t.Errorf("op-class fractions sum to %g, want 1", fracSum)
	}
	// sumloop is adder-heavy (lw/add/addi/blt/sw) with no shifts or muls.
	if a[3] <= 0.4 || a[4] != 0 || a[6] != 0 {
		t.Errorf("op-class mix implausible for sumloop: adder %g shift %g mul %g", a[3], a[4], a[6])
	}

	// Scenario count is a live feature; everything else static stays put.
	c := f.SurrogateFeatures(prog, 8)
	if c[1] <= a[1] {
		t.Errorf("scenario feature did not grow: %g vs %g", c[1], a[1])
	}
	for i := range a {
		if i == 1 {
			continue
		}
		if math.Float64bits(c[i]) != math.Float64bits(a[i]) {
			t.Errorf("feature %d depends on scenario count: %g vs %g", i, c[i], a[i])
		}
	}

	// Degenerate inputs return a zero vector, never panic.
	if z := f.SurrogateFeatures(nil, 4); len(z) != NumSurrogateFeatures {
		t.Error("nil program did not produce the schema-length vector")
	}
	if z := f.SurrogateFeatures(prog, 0); z[0] != 0 {
		t.Error("zero scenarios did not produce a zero vector")
	}
}

func TestSafeLog10Floor(t *testing.T) {
	if got := safeLog10(0); got != surrogateLogFloor {
		t.Errorf("safeLog10(0) = %g", got)
	}
	if got := safeLog10(1e-40); got != surrogateLogFloor {
		t.Errorf("safeLog10(1e-40) = %g, want floor", got)
	}
	if got := safeLog10(0.01); got != -2 {
		t.Errorf("safeLog10(0.01) = %g", got)
	}
}

// TestReportTierJSONRoundTrip pins the two-tier wire annotations: an exact
// report without a tier emits the pre-surrogate bytes (no tier/surrogate
// keys), and a surrogate-tier report round-trips its metadata bit-exactly.
func TestReportTierJSONRoundTrip(t *testing.T) {
	exact := &Report{Name: "bench", Instructions: 100, BasicBlocks: 3}
	b, err := json.Marshal(exact)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "tier") || strings.Contains(string(b), "surrogate") {
		t.Fatalf("tier-less report leaked two-tier keys: %s", b)
	}

	sur := &Report{
		Name: "bench",
		Tier: TierSurrogate,
		Surrogate: &SurrogateMeta{
			PredictedErrorRate: 2.5e-4,
			PredictedLog10:     math.Log10(2.5e-4),
			StdLog10:           0.11,
			Bound:              0.25,
			ModelVersion:       7,
			TrainSize:          96,
		},
	}
	b, err = json.Marshal(sur)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tier != TierSurrogate || back.Surrogate == nil {
		t.Fatalf("tier lost in round trip: %+v", back)
	}
	if *back.Surrogate != *sur.Surrogate {
		t.Errorf("surrogate metadata mangled: %+v vs %+v", back.Surrogate, sur.Surrogate)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b2) != string(b) {
		t.Errorf("re-marshal not byte-identical:\n%s\n%s", b, b2)
	}
}
