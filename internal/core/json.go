package core

import (
	"encoding/json"
	"time"
)

// The JSON encodings below are the one wire schema shared by every consumer
// of a Report: the tsperrd estimation service, `tsperr -json`, and
// `report -json` all emit exactly these bytes, pinned by the golden test in
// json_test.go. The schema is a projection, not a dump: the CFG graph and
// the per-scenario solver state stay out (they are huge and carry unexported
// internals), while everything a client needs to rank, alert on, or re-plot
// a program's error-rate distribution is flattened in.

// reportJSON is the wire form of a Report.
type reportJSON struct {
	Name          string  `json:"name"`
	Instructions  int64   `json:"instructions"`
	BasicBlocks   int     `json:"basic_blocks"`
	TrainingSec   float64 `json:"training_sec"`
	SimulationSec float64 `json:"simulation_sec"`
	// Scenarios is the number of surviving scenarios the estimate is built
	// from (fewer than requested in a degraded run).
	Scenarios int `json:"scenarios"`
	// Degraded/FailedScenarios/Failures carry the graceful-degradation
	// outcome; Failures flattens the errors.Join tree into one string per
	// dropped scenario, phase-tagged like the CLI failure detail.
	Degraded        bool      `json:"degraded,omitempty"`
	FailedScenarios int       `json:"failed_scenarios,omitempty"`
	Failures        []string  `json:"failures,omitempty"`
	Estimate        *Estimate `json:"estimate"`
	// MC is the sharded Monte Carlo validation when one was requested
	// (AnalyzeOpts.MCTrials > 0); its fields carry their own json tags.
	MC *MCValidation `json:"montecarlo,omitempty"`
	// Tier and Surrogate are the two-tier service annotations; both are
	// omitted on reports that predate the surrogate (read as exact), so the
	// pre-surrogate wire bytes are unchanged.
	Tier      string         `json:"tier,omitempty"`
	Surrogate *SurrogateMeta `json:"surrogate,omitempty"`
}

// estimateJSON is the wire form of an Estimate: the lambda distribution, the
// derived error-rate headline numbers, and the Section 5/6.4 approximation
// bounds.
type estimateJSON struct {
	LambdaMean float64 `json:"lambda_mean"`
	LambdaStd  float64 `json:"lambda_std"`
	TotalInsts float64 `json:"total_instructions"`
	// MeanErrorRate/StdErrorRate/quantiles are fractions (0.004 = 0.4%).
	MeanErrorRate float64 `json:"mean_error_rate"`
	StdErrorRate  float64 `json:"std_error_rate"`
	P50           float64 `json:"p50_error_rate"`
	P95           float64 `json:"p95_error_rate"`
	P99           float64 `json:"p99_error_rate"`
	DKLambda      float64 `json:"dk_lambda"`
	DKCount       float64 `json:"dk_count"`
	B1            float64 `json:"b1"`
	B2            float64 `json:"b2"`
}

// MarshalJSON renders the report's stable wire schema.
func (r *Report) MarshalJSON() ([]byte, error) {
	scenarios := len(r.Scenarios)
	if scenarios == 0 {
		scenarios = r.scenarioCount
	}
	failures := failureStrings(r.Failures)
	if failures == nil {
		failures = r.wireFailures
	}
	out := reportJSON{
		Name:            r.Name,
		Instructions:    r.Instructions,
		BasicBlocks:     r.BasicBlocks,
		TrainingSec:     durationSec(r.Training),
		SimulationSec:   durationSec(r.Simulation),
		Scenarios:       scenarios,
		Degraded:        r.Degraded,
		FailedScenarios: r.FailedScenarios,
		Failures:        failures,
		Estimate:        r.Estimate,
		MC:              r.MC,
		Tier:            r.Tier,
		Surrogate:       r.Surrogate,
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the wire schema back into a Report. The projection is
// lossy by design — the CFG graph and per-scenario solver state never leave
// the producing process — so the decoded Report carries the summary fields
// only: Scenarios stays empty (the count lands in the unexported round-trip
// memo) and Failures stays nil (the flattened strings likewise). Re-marshaling
// the decoded Report emits the original bytes, which is what lets a cluster
// coordinator proxy a worker's report without perturbing it.
func (r *Report) UnmarshalJSON(b []byte) error {
	var in reportJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*r = Report{
		Name:            in.Name,
		Instructions:    in.Instructions,
		BasicBlocks:     in.BasicBlocks,
		Training:        secDuration(in.TrainingSec),
		Simulation:      secDuration(in.SimulationSec),
		Estimate:        in.Estimate,
		Degraded:        in.Degraded,
		FailedScenarios: in.FailedScenarios,
		MC:              in.MC,
		Tier:            in.Tier,
		Surrogate:       in.Surrogate,
		scenarioCount:   in.Scenarios,
		wireFailures:    in.Failures,
	}
	return nil
}

// UnmarshalJSON decodes the estimate's wire schema. The lambda distribution
// parameters, instruction total, and approximation bounds are the complete
// inputs of every derived quantity (the Equation 14 quadrature memo is built
// from LambdaMean/LambdaStd on demand), so a decoded estimate answers CDF and
// quantile queries — and re-marshals — bit-identically to the original.
// LambdaSamples is not part of the wire schema and stays nil.
func (e *Estimate) UnmarshalJSON(b []byte) error {
	var in estimateJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*e = Estimate{
		LambdaMean: in.LambdaMean,
		LambdaStd:  in.LambdaStd,
		TotalInsts: in.TotalInsts,
		DKLambda:   in.DKLambda,
		DKCount:    in.DKCount,
		B1:         in.B1,
		B2:         in.B2,
	}
	return nil
}

// MarshalJSON renders the estimate's wire schema, including the derived
// error-rate quantiles so clients never re-implement the Equation (14)
// quadrature.
func (e *Estimate) MarshalJSON() ([]byte, error) {
	out := estimateJSON{
		LambdaMean:    e.LambdaMean,
		LambdaStd:     e.LambdaStd,
		TotalInsts:    e.TotalInsts,
		MeanErrorRate: e.MeanErrorRate(),
		StdErrorRate:  e.StdErrorRate(),
		P50:           e.ErrorRateQuantile(0.50),
		P95:           e.ErrorRateQuantile(0.95),
		P99:           e.ErrorRateQuantile(0.99),
		DKLambda:      e.DKLambda,
		DKCount:       e.DKCount,
		B1:            e.B1,
		B2:            e.B2,
	}
	return json.Marshal(out)
}

// durationSec rounds a phase duration to microsecond granularity — far
// below measurement noise, and it keeps the JSON free of 17-digit float
// artifacts.
func durationSec(d time.Duration) float64 {
	return float64(d.Round(time.Microsecond)) / float64(time.Second)
}

// secDuration inverts durationSec. The float product can land a fraction of a
// nanosecond off the original microsecond multiple; rounding to microseconds
// restores it exactly, so durationSec(secDuration(s)) == s.
func secDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond)
}

// failureStrings flattens a joined failure tree into one line per scenario,
// matching the harness failure-detail wording; a non-scenario error becomes
// a single entry.
func failureStrings(err error) []string {
	if err == nil {
		return nil
	}
	ses := ScenarioErrors(err)
	if len(ses) == 0 {
		return []string{err.Error()}
	}
	out := make([]string, len(ses))
	for i, se := range ses {
		out[i] = se.Error()
	}
	return out
}
