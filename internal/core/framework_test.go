package core

import (
	"context"
	"sync"
	"testing"

	"tsperr/internal/cpu"
	"tsperr/internal/errormodel"
	"tsperr/internal/isa"
	"tsperr/internal/numeric"
)

var (
	fwOnce sync.Once
	fwTest *Framework
	fwErr  error
)

func testFramework(t *testing.T) *Framework {
	t.Helper()
	fwOnce.Do(func() { fwTest, fwErr = NewFramework(errormodel.DefaultOptions()) })
	if fwErr != nil {
		t.Fatal(fwErr)
	}
	return fwTest
}

const fwProg = `
	li   r1, 0
	li   r2, 50
	li   r3, 0
loop:
	lw   r4, 2048(r1)
	add  r3, r3, r4
	addi r1, r1, 1
	blt  r1, r2, loop
	sw   r3, 4096(r0)
	halt
`

func fwSetup(c *cpu.CPU, scenario int) error {
	rng := numeric.NewRNG(uint64(scenario + 1))
	for i := 0; i < 50; i++ {
		c.SetMem(uint32(2048+i), uint32(rng.Intn(1<<(8+4*(scenario%5)))))
	}
	return nil
}

func TestAnalyzeIntegration(t *testing.T) {
	f := testFramework(t)
	prog := isa.MustAssemble("sumloop", fwProg)
	rep, err := f.Analyze(context.Background(), "sumloop", ProgramSpec{
		Prog: prog, Setup: fwSetup, Scenarios: 4, ScaleToInsts: 1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BasicBlocks < 3 {
		t.Errorf("blocks = %d", rep.BasicBlocks)
	}
	if rep.Instructions < 500_000 || rep.Instructions > 1_000_000 {
		t.Errorf("scaled instructions = %d", rep.Instructions)
	}
	e := rep.Estimate
	if e.LambdaMean <= 0 {
		t.Error("expected some errors from the loop's compares and adds")
	}
	if e.MeanErrorRate() > 0.05 {
		t.Errorf("error rate implausibly high: %v", e.MeanErrorRate())
	}
	if e.DKCount <= 0 || e.DKCount > 0.5 {
		t.Errorf("Chen-Stein bound implausible: %v", e.DKCount)
	}
	if len(rep.Scenarios) != 4 {
		t.Errorf("scenarios = %d", len(rep.Scenarios))
	}
	for _, sc := range rep.Scenarios {
		if sc.Features == nil {
			t.Fatal("scenario missing instance features")
		}
	}
	// CDF sanity at the three-sigma points.
	lo := e.ErrorCountCDF(e.LambdaMean - 4*e.LambdaStd - 4*sqrtPos(e.LambdaMean))
	hi := e.ErrorCountCDF(e.LambdaMean + 4*e.LambdaStd + 4*sqrtPos(e.LambdaMean))
	if lo > 0.05 || hi < 0.95 {
		t.Errorf("CDF tails wrong: lo=%v hi=%v", lo, hi)
	}
}

func sqrtPos(x float64) float64 {
	if x < 0 {
		return 0
	}
	s := x
	for i := 0; i < 40; i++ {
		if s <= 0 {
			return 0
		}
		s = 0.5 * (s + x/s)
	}
	return s
}

func TestAnalyzeValidation(t *testing.T) {
	f := testFramework(t)
	prog := isa.MustAssemble("x", "halt\n")
	if _, err := f.Analyze(context.Background(), "x", ProgramSpec{Prog: prog, Scenarios: 0}); err == nil {
		t.Error("zero scenarios should fail")
	}
}

func TestAnalyzeScenarioSetupError(t *testing.T) {
	f := testFramework(t)
	prog := isa.MustAssemble("x", "halt\n")
	boom := func(c *cpu.CPU, scenario int) error {
		return errFixed
	}
	if _, err := f.Analyze(context.Background(), "x", ProgramSpec{Prog: prog, Setup: boom, Scenarios: 1}); err == nil {
		t.Error("setup failure should propagate")
	}
}

var errFixed = &fixedError{}

type fixedError struct{}

func (*fixedError) Error() string { return "boom" }

func TestScaleVsUnscaledSameRate(t *testing.T) {
	// Scaling execution counts must not change the mean error *rate* —
	// only the absolute error count.
	f := testFramework(t)
	prog := isa.MustAssemble("sumloop", fwProg)
	small, err := f.Analyze(context.Background(), "s", ProgramSpec{Prog: prog, Setup: fwSetup, Scenarios: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := f.Analyze(context.Background(), "b", ProgramSpec{Prog: prog, Setup: fwSetup, Scenarios: 2, ScaleToInsts: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	rs, rb := small.Estimate.MeanErrorRate(), big.Estimate.MeanErrorRate()
	if diff := rs - rb; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("scaling changed the error rate: %v vs %v", rs, rb)
	}
	if big.Estimate.LambdaMean <= small.Estimate.LambdaMean {
		t.Error("scaling should raise the absolute error count")
	}
}
