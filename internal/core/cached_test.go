package core

import (
	"os"
	"reflect"
	"testing"

	"tsperr/internal/cell"
	"tsperr/internal/errormodel"
	"tsperr/internal/modelcache"
)

// datapathTablesEqual compares the trained (exported, serialized) tables of
// two datapath models, ignoring the lazily built lookup-table state.
func datapathTablesEqual(a, b *errormodel.DatapathModel) bool {
	return reflect.DeepEqual(a.AdderSlack, b.AdderSlack) &&
		reflect.DeepEqual(a.AdderFail, b.AdderFail) &&
		reflect.DeepEqual(a.ShiftSlack, b.ShiftSlack) &&
		reflect.DeepEqual(a.ShiftFail, b.ShiftFail) &&
		//tsperrlint:ignore floatcmp a cache restore must reproduce the trained scalar bit-identically
		a.LogicFail == b.LogicFail &&
		reflect.DeepEqual(a.MulSlack, b.MulSlack) &&
		reflect.DeepEqual(a.MulFail, b.MulFail)
}

// TestNewFrameworkCachedWarm primes the cache from the shared fixture and
// checks the warm path restores a framework with bit-identical trained
// tables and calibrated scales, without retraining.
func TestNewFrameworkCachedWarm(t *testing.T) {
	f := testFramework(t)
	dir := t.TempDir()
	opts := errormodel.DefaultOptions()
	key := modelcache.Key(opts, cell.Fingerprint())
	if err := modelcache.Save(dir, key, &modelcache.Snapshot{
		Scales:   f.Machine.Scales(),
		Datapath: f.Datapath,
	}); err != nil {
		t.Fatal(err)
	}
	fw, warm, err := NewFrameworkCached(opts, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("primed cache should hit")
	}
	if !datapathTablesEqual(fw.Datapath, f.Datapath) {
		t.Error("restored datapath tables differ from the trained ones")
	}
	if !reflect.DeepEqual(fw.Machine.Scales(), f.Machine.Scales()) {
		t.Errorf("restored scales %v != trained %v", fw.Machine.Scales(), f.Machine.Scales())
	}
	//tsperrlint:ignore floatcmp a cache restore must reproduce the operating point bit-identically
	if fw.Machine.WorkingPeriodPs != f.Machine.WorkingPeriodPs {
		t.Error("operating point differs after restore")
	}
}

// TestNewFrameworkCachedColdPublishes exercises the full cold -> publish ->
// warm cycle on an empty cache directory.
func TestNewFrameworkCachedColdPublishes(t *testing.T) {
	if testing.Short() {
		t.Skip("full framework build in -short mode")
	}
	dir := t.TempDir()
	opts := errormodel.DefaultOptions()
	cold, warm, err := NewFrameworkCached(opts, dir)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("empty directory cannot be warm")
	}
	key := modelcache.Key(opts, cell.Fingerprint())
	if _, err := os.Stat(modelcache.Path(dir, key)); err != nil {
		t.Fatalf("cold build should publish a snapshot: %v", err)
	}
	hot, warm, err := NewFrameworkCached(opts, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("second build should be warm")
	}
	if !datapathTablesEqual(hot.Datapath, cold.Datapath) {
		t.Error("warm datapath tables differ from the cold build")
	}
	if !reflect.DeepEqual(hot.Machine.Scales(), cold.Machine.Scales()) {
		t.Error("warm scales differ from the cold build")
	}
}
