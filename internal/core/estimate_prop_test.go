package core

import (
	"math"
	"testing"

	"tsperr/internal/dist"
	"tsperr/internal/numeric"
)

// The Equation (14) quadrature memo (initMixture) caches the k-independent
// Simpson nodes and Gaussian weights. This property test pins its equivalence
// with a direct, un-memoized composite-Simpson evaluation over seeded random
// lambda distributions and query points: memoization must change the cost of
// the CDF, never its value.
func TestMixtureMemoMatchesDirectSimpson(t *testing.T) {
	rng := numeric.NewRNG(0x51b50)
	for i := 0; i < 60; i++ {
		mean := 0.5 + 200*rng.Float64()
		std := mean / 3 * rng.Float64()
		e := &Estimate{LambdaMean: mean, LambdaStd: std}

		g := numeric.Gaussian{Mean: mean, Std: std}
		lo := math.Max(0, mean-8*std)
		hi := mean + 8*std
		for j := 0; j < 8; j++ {
			k := math.Floor(4 * mean * rng.Float64())
			direct := numeric.Simpson(func(x float64) float64 {
				return g.PDF(x) * dist.Poisson{Lambda: x}.CDF(k)
			}, lo, hi, mixtureIntervals)
			if lo == 0 {
				direct += g.CDF(0)
			}
			direct = numeric.Clamp(direct, 0, 1)
			got := e.ErrorCountCDF(k)
			if d := math.Abs(got - direct); d > 1e-9 {
				t.Fatalf("case %d/%d: memoized CDF(%v) = %v, direct Simpson %v (diff %v, mean %v std %v)",
					i, j, k, got, direct, d, mean, std)
			}
		}
	}
}

// The mixture CDF must behave like a CDF regardless of the lambda
// distribution: within [0, 1], nondecreasing in k, and degenerate to the pure
// Poisson law when the lambda spread vanishes.
func TestMixtureCDFIsACDF(t *testing.T) {
	rng := numeric.NewRNG(0xcdf)
	for i := 0; i < 40; i++ {
		mean := 0.5 + 100*rng.Float64()
		std := mean / 2 * rng.Float64()
		e := &Estimate{LambdaMean: mean, LambdaStd: std}
		prev := 0.0
		for k := 0.0; k <= 4*mean+5; k++ {
			c := e.ErrorCountCDF(k)
			if c < 0 || c > 1 {
				t.Fatalf("case %d: CDF(%v) = %v out of [0,1]", i, k, c)
			}
			if c < prev-1e-12 {
				t.Fatalf("case %d: CDF not monotone at k=%v: %v < %v", i, k, c, prev)
			}
			prev = c
		}
		if c := e.ErrorCountCDF(4*mean + 10*math.Sqrt(mean) + 50); c < 0.999 {
			t.Errorf("case %d: CDF far right tail only %v", i, c)
		}

		degenerate := &Estimate{LambdaMean: mean, LambdaStd: 0}
		k := math.Floor(mean)
		want := dist.Poisson{Lambda: mean}.CDF(k)
		if d := math.Abs(degenerate.ErrorCountCDF(k) - want); d > 1e-12 {
			t.Errorf("case %d: zero-spread mixture differs from Poisson by %v", i, d)
		}
	}
}
