package core

import (
	"errors"
	"fmt"
)

// Phase names the pipeline stage where a failure occurred. The values match
// the hook points of internal/faultinject so injected and organic failures
// carry the same tags.
type Phase string

const (
	// PhaseBuild is CFG construction, before any scenario runs.
	PhaseBuild Phase = "build"
	// PhaseSetup is per-scenario machine seeding (ProgramSpec.Setup).
	PhaseSetup Phase = "setup"
	// PhaseSimulation is the instrumented per-scenario program run.
	PhaseSimulation Phase = "simulation"
	// PhaseControl is the once-per-program control-network characterization.
	PhaseControl Phase = "control"
	// PhaseMarginals is the per-scenario marginal-probability solve.
	PhaseMarginals Phase = "marginals"
	// PhaseEstimate is the final Section 5 statistics.
	PhaseEstimate Phase = "estimate"
	// PhaseMonteCarlo is the optional sharded Monte Carlo validation run.
	PhaseMonteCarlo Phase = "montecarlo"
)

// ScenarioError tags a failure with the benchmark, the scenario index, and
// the pipeline phase where it happened. Scenario is -1 for failures that are
// not specific to one scenario (phase boundaries, control characterization).
// A failed run joins every scenario's ScenarioError with errors.Join instead
// of reporting only the first, so the diagnostics name all failing inputs.
type ScenarioError struct {
	Benchmark string
	Scenario  int
	Phase     Phase
	// Attempts is how many times the scenario was tried (> 1 after retries).
	Attempts int
	Err      error
}

func (e *ScenarioError) Error() string {
	where := fmt.Sprintf("%s [%s]", e.Benchmark, e.Phase)
	if e.Scenario >= 0 {
		where = fmt.Sprintf("%s scenario %d [%s]", e.Benchmark, e.Scenario, e.Phase)
	}
	if e.Attempts > 1 {
		return fmt.Sprintf("core: %s: %v (after %d attempts)", where, e.Err, e.Attempts)
	}
	return fmt.Sprintf("core: %s: %v", where, e.Err)
}

func (e *ScenarioError) Unwrap() error { return e.Err }

// PanicError is a recovered scenario panic converted into an error by the
// worker pool, so one panicking scenario no longer kills the whole process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// ScenarioErrors flattens an error returned by Analyze (possibly an
// errors.Join tree of ScenarioErrors) into the individual per-scenario
// failures, in scenario order as joined. Non-scenario errors in the tree are
// skipped; a nil err yields nil.
func ScenarioErrors(err error) []*ScenarioError {
	var out []*ScenarioError
	var walk func(error)
	walk = func(err error) {
		if err == nil {
			return
		}
		if joined, ok := err.(interface{ Unwrap() []error }); ok {
			for _, sub := range joined.Unwrap() {
				walk(sub)
			}
			return
		}
		var se *ScenarioError
		if errors.As(err, &se) {
			out = append(out, se)
		}
	}
	walk(err)
	return out
}
