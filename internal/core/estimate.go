// Package core implements the paper's primary contribution (Section 5):
// statistical estimation of a program's error count/rate distribution. The
// number of timing errors N_E — a weighted sum of dependent Bernoulli
// indicators — is approximated by a Poisson distribution whose parameter
// lambda is itself approximated by a Gaussian (central limit theorem), with
// Chen-Stein and Stein bounds quantifying both approximation errors,
// including the effect of the inter-instruction correlations introduced by
// the error-correction mechanism and by process variation.
package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"tsperr/internal/cfg"
	"tsperr/internal/dist"
	"tsperr/internal/errormodel"
	"tsperr/internal/numeric"
)

// Scenario couples one input dataset's solved error model with its profile.
type Scenario struct {
	Profile   *cfg.Profile
	Marginals *errormodel.Marginals
	Cond      *errormodel.Conditionals
	// Features, when available, carries the per-dynamic-instance probability
	// moments used by the instance-level Stein bound; without it the bound
	// falls back to static-instruction granularity.
	Features *errormodel.ScenarioFeatures
}

// Estimate is the program error count/rate distribution with its
// approximation-error bounds.
type Estimate struct {
	// LambdaMean and LambdaStd describe the Gaussian approximation of the
	// Poisson parameter (Equation 10 + CLT).
	LambdaMean float64
	LambdaStd  float64
	// LambdaSamples are the per-scenario exact lambda values.
	LambdaSamples []float64
	// TotalInsts is the total dynamic instruction count (the error-rate
	// denominator), averaged over scenarios.
	TotalInsts float64
	// DKLambda bounds d_K(lambda, lambda-bar) via Stein's method (Eq 13).
	DKLambda float64
	// DKCount bounds d_K(N_E, N-bar_E) via the Chen-Stein method (Eq 9),
	// using worst-case (mean + 6 sigma) b1 and b2 as the paper prescribes.
	DKCount float64
	// B1, B2 are the expected Chen-Stein terms (Eqs 7, 8) for diagnostics.
	B1, B2 float64

	// Equation (14) quadrature memo: the Simpson nodes and the Gaussian
	// density weights depend only on the lambda distribution, not on the
	// query point k, so they are computed once per estimate. Figure 3 and
	// the quantile bisection evaluate the CDF hundreds of times.
	mixOnce  sync.Once
	mixNodes []float64
	mixW     []float64
	mixTrunc float64
}

// NewEstimate runs the Section 5 estimation over the scenarios. ctx cancels
// between scenarios — with hundreds of scenario samples over large CFGs the
// moment sums are long-running by the pipeline's standards.
func NewEstimate(ctx context.Context, g *cfg.Graph, scenarios []Scenario) (*Estimate, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("core: no scenarios")
	}
	ns := len(scenarios)
	e := &Estimate{LambdaSamples: make([]float64, ns)}

	b1s := make([]float64, ns)
	b2s := make([]float64, ns)
	var totalInsts numeric.KahanSum

	// Per-instruction scenario samples of the weighted probability
	// e_i * p_ik, used for the Stein moment sums.
	nInst := len(g.Prog.Insts)
	weighted := make([][]float64, nInst)
	for i := range weighted {
		weighted[i] = make([]float64, ns)
	}

	for r, sc := range scenarios {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: estimation aborted at scenario %d: %w", r, err)
		}
		var lam, b1, b2 numeric.KahanSum
		for bi := range g.Blocks {
			blk := &g.Blocks[bi]
			ei := float64(sc.Profile.ExecCount[bi])
			if ei == 0 {
				continue
			}
			prev := sc.Marginals.In[bi]
			for k := blk.Start; k < blk.End; k++ {
				p := sc.Marginals.P[k]
				lam.Add(ei * p)
				weighted[k][r] = ei * p
				// Eq (7): b1 accumulates p_{k-1} p_k per execution;
				// Eq (8): b2 accumulates p_{k-1} p^e_k per execution.
				b1.Add(ei * (prev*p + p*p)) // neighborhood includes alpha itself
				b2.Add(ei * prev * sc.Cond.PE[k])
				prev = p
			}
		}
		e.LambdaSamples[r] = lam.Value()
		b1s[r] = b1.Value()
		b2s[r] = b2.Value()
		totalInsts.Add(float64(sc.Profile.InstCount))
	}
	e.TotalInsts = totalInsts.Value() / float64(ns)
	e.LambdaMean = numeric.Mean(e.LambdaSamples)
	e.LambdaStd = numeric.StdDev(e.LambdaSamples)

	// Chen-Stein bound (Theorem 5.1 / Eq 9) with worst-case b1, b2.
	e.B1 = numeric.Mean(b1s)
	e.B2 = numeric.Mean(b2s)
	wcB1 := e.B1 + 6*numeric.StdDev(b1s)
	wcB2 := e.B2 + 6*numeric.StdDev(b2s)
	lam := e.LambdaMean
	if lam < 1 {
		lam = 1 // the paper assumes lambda > 1
	}
	e.DKCount = numeric.Clamp((wcB1+wcB2)/lam, 0, 1)

	// Stein normal bound (Theorem 5.2 / Eqs 11-13) with dependency
	// neighborhoods of size D = 2 (an instruction and its predecessor).
	// Following Equation (10)'s triple sum, the X_alpha are the
	// per-dynamic-instance error probabilities: every execution of a static
	// instruction contributes its own random variable, whose moments come
	// from the recorded distribution of dynamic-instance probabilities
	// (plus the across-scenario spread of the marginals). When instance
	// features are unavailable the bound degrades to static-instruction
	// granularity using the scenario samples of e_i * p_ik.
	e.DKLambda = steinBound(g, scenarios, weighted)
	return e, nil
}

// steinBound evaluates the Theorem 5.2 bound.
func steinBound(g *cfg.Graph, scenarios []Scenario, weighted [][]float64) float64 {
	const d = 2.0
	nInst := len(g.Prog.Insts)
	haveFeatures := true
	for _, sc := range scenarios {
		if sc.Features == nil {
			haveFeatures = false
			break
		}
	}
	var sigma2, sum3, sum4 numeric.KahanSum
	if haveFeatures {
		for i := 0; i < nInst; i++ {
			bi := g.BlockOf[i]
			// Pool per-instance raw moments across scenarios, each scenario
			// weighted by its (scaled) execution count. The instance value is
			// p = c_s + dp_j with c_s = marginal - mean(dp), so raw power
			// sums of p follow from the recorded power sums of dp by
			// binomial expansion.
			var wTot float64
			var r1, r2, r3, r4 numeric.KahanSum
			for _, sc := range scenarios {
				n, t1, t2, t3, t4 := sc.Features.InstanceMoments(i)
				ei := float64(sc.Profile.ExecCount[bi])
				if n == 0 || ei == 0 {
					continue
				}
				fn := float64(n)
				c := sc.Marginals.P[i] - t1/fn
				w := ei / fn // each recorded instance represents this many
				wTot += ei
				r1.Add(w * (t1 + fn*c))
				r2.Add(w * (t2 + 2*c*t1 + fn*c*c))
				r3.Add(w * (t3 + 3*c*t2 + 3*c*c*t1 + fn*c*c*c))
				r4.Add(w * (t4 + 4*c*t3 + 6*c*c*t2 + 4*c*c*c*t1 + fn*c*c*c*c))
			}
			if wTot == 0 {
				continue
			}
			mu1 := r1.Value() / wTot
			mu2 := r2.Value() / wTot
			mu3 := r3.Value() / wTot
			mu4 := r4.Value() / wTot
			m2 := math.Max(0, mu2-mu1*mu1)
			m3c := mu3 - 3*mu1*mu2 + 2*mu1*mu1*mu1
			m4 := math.Max(0, mu4-4*mu1*mu3+6*mu1*mu1*mu2-3*mu1*mu1*mu1*mu1)
			// E|X - mu|^3 <= sqrt(m2 * m4) by Cauchy-Schwarz; keeps the
			// result a true upper bound without storing signed cubes.
			abs3 := math.Sqrt(m2 * m4)
			if s := m3c; s > abs3 {
				abs3 = s
			}
			sigma2.Add(wTot * m2)
			sum3.Add(wTot * abs3)
			sum4.Add(wTot * m4)
		}
	} else {
		for i := 0; i < nInst; i++ {
			rv := dist.NewDiscreteUniform(weighted[i])
			sigma2.Add(rv.Var())
			sum3.Add(rv.AbsCentralMoment(3))
			sum4.Add(rv.CentralMoment(4))
		}
	}
	sigma := math.Sqrt(sigma2.Value())
	if sigma <= 0 {
		return 0
	}
	b1 := d * d / math.Pow(sigma, 3) * sum3.Value()
	b2 := math.Sqrt(28) * math.Pow(d, 1.5) / (math.Sqrt(math.Pi) * sigma * sigma) *
		math.Sqrt(sum4.Value())
	return numeric.Clamp(math.Pow(2/math.Pi, 0.25)*(b1+b2), 0, 1)
}

// mixtureIntervals is the Simpson interval count of the Equation (14)
// quadrature, matching the pre-memoized implementation.
const mixtureIntervals = 600

// initMixture precomputes the k-independent part of the Equation (14)
// quadrature: node positions and composite-Simpson coefficients folded with
// the Gaussian density of lambda.
func (e *Estimate) initMixture() {
	g := numeric.Gaussian{Mean: e.LambdaMean, Std: e.LambdaStd}
	lo := math.Max(0, e.LambdaMean-8*e.LambdaStd)
	hi := e.LambdaMean + 8*e.LambdaStd
	h := (hi - lo) / mixtureIntervals
	e.mixNodes = make([]float64, mixtureIntervals+1)
	e.mixW = make([]float64, mixtureIntervals+1)
	for i := 0; i <= mixtureIntervals; i++ {
		x := lo + float64(i)*h
		c := 1.0
		if i > 0 && i < mixtureIntervals {
			if i%2 == 1 {
				c = 4
			} else {
				c = 2
			}
		}
		e.mixNodes[i] = x
		e.mixW[i] = c * g.PDF(x) * h / 3
	}
	// Mass truncated below zero behaves as lambda == 0 (CDF = 1 for k >= 0).
	if lo == 0 {
		e.mixTrunc = g.CDF(0)
	}
}

// poissonMixtureCDF evaluates Equation (14): the probability of at most k
// errors, integrating the Poisson CDF against the Gaussian density of
// lambda, clamped to lambda > 0. Only the Poisson CDF factor depends on k;
// the quadrature nodes and Gaussian weights come from the per-estimate memo.
func (e *Estimate) poissonMixtureCDF(k float64) float64 {
	if e.LambdaStd <= 0 {
		return dist.Poisson{Lambda: math.Max(0, e.LambdaMean)}.CDF(k)
	}
	e.mixOnce.Do(e.initMixture)
	var integral float64
	for i, x := range e.mixNodes {
		integral += e.mixW[i] * dist.Poisson{Lambda: x}.CDF(k)
	}
	if k >= 0 {
		integral += e.mixTrunc
	}
	return numeric.Clamp(integral, 0, 1)
}

// ErrorCountCDF returns P(N_E <= k) under the estimated model (Eq 14).
func (e *Estimate) ErrorCountCDF(k float64) float64 { return e.poissonMixtureCDF(k) }

// ErrorCountCDFBounds returns the lower and upper bound CDFs of Section 6.4:
// the estimate shifted by the combined Stein and Chen-Stein bounds.
func (e *Estimate) ErrorCountCDFBounds(k float64) (lo, hi float64) {
	c := e.poissonMixtureCDF(k)
	b := e.DKLambda + e.DKCount
	return numeric.Clamp(c-b, 0, 1), numeric.Clamp(c+b, 0, 1)
}

// ErrorRateCDF returns P(R_E <= rate) where R_E = N_E / TotalInsts; rate is
// a fraction (0.004 = 0.4%).
func (e *Estimate) ErrorRateCDF(rate float64) float64 {
	return e.ErrorCountCDF(rate * e.TotalInsts)
}

// ErrorRateCDFBounds returns the Section 6.4 bound curves at an error rate.
func (e *Estimate) ErrorRateCDFBounds(rate float64) (lo, hi float64) {
	return e.ErrorCountCDFBounds(rate * e.TotalInsts)
}

// MeanErrorRate returns E[R_E].
func (e *Estimate) MeanErrorRate() float64 {
	if e.TotalInsts == 0 {
		return 0
	}
	return e.LambdaMean / e.TotalInsts
}

// StdErrorRate returns the standard deviation of R_E, combining the spread
// of lambda with the Poisson variance (E[Var(N|lambda)] = E[lambda]).
func (e *Estimate) StdErrorRate() float64 {
	if e.TotalInsts == 0 {
		return 0
	}
	v := e.LambdaStd*e.LambdaStd + e.LambdaMean
	return math.Sqrt(v) / e.TotalInsts
}

// ErrorRateQuantile returns the error rate r such that P(R_E <= r) = p,
// found by bisection on the Equation (14) CDF. It answers questions like
// "what error rate will 95 % of (chip, input) pairs stay under?".
func (e *Estimate) ErrorRateQuantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if e.TotalInsts == 0 {
		return 0
	}
	hi := (e.LambdaMean + 10*e.LambdaStd + 10*math.Sqrt(math.Max(1, e.LambdaMean))) / e.TotalInsts
	if p >= 1 {
		return hi
	}
	lo := 0.0
	for i := 0; i < 60 && hi-lo > 1e-12; i++ {
		mid := (lo + hi) / 2
		if e.ErrorRateCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
