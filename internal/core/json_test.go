package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tsperr/internal/numeric"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenReport is a fully populated degraded report with hand-set fields, so
// the golden bytes pin the wire schema itself rather than any pipeline
// output.
func goldenReport() *Report {
	return &Report{
		Name:            "golden",
		Instructions:    120000,
		BasicBlocks:     14,
		Training:        1502300 * time.Microsecond,
		Simulation:      250750 * time.Microsecond,
		Scenarios:       make([]Scenario, 3),
		Degraded:        true,
		FailedScenarios: 1,
		Failures: &ScenarioError{
			Benchmark: "golden", Scenario: 2, Phase: PhaseSimulation,
			Attempts: 2, Err: os.ErrDeadlineExceeded,
		},
		Estimate: &Estimate{
			LambdaMean: 40,
			LambdaStd:  4,
			TotalInsts: 1e6,
			DKLambda:   0.0125,
			DKCount:    0.03,
			B1:         0.5,
			B2:         0.25,
		},
		MC: &MCValidation{
			Trials: 1500, Chunks: 6, Seed: 11,
			Mean: 39.5, Std: 7.1, LambdaRef: 40,
			MaxCDFDistance: 0.031, Bound: 0.107, Within: true,
			UnscaledReference: true,
		},
	}
}

// The report wire schema is shared verbatim by tsperrd, `tsperr -json`, and
// `report -json`; this golden pins it. Regenerate deliberately with
// `go test ./internal/core -run TestReportJSONGolden -update` after a schema
// change, and treat the diff as an API change for every service client.
func TestReportJSONGolden(t *testing.T) {
	raw, err := json.Marshal(goldenReport())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte('\n')
	path := filepath.Join("testdata", "report_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report JSON drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// A clean report omits the degradation fields entirely, and failure trees
// flatten to one line per scenario.
func TestReportJSONDegradationFields(t *testing.T) {
	rep := goldenReport()
	rep.Degraded = false
	rep.FailedScenarios = 0
	rep.Failures = nil
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"degraded", "failed_scenarios", "failures"} {
		if _, ok := m[field]; ok {
			t.Errorf("clean report must omit %q", field)
		}
	}

	deg := goldenReport()
	raw, err = json.Marshal(deg)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	failures, ok := m["failures"].([]any)
	if !ok || len(failures) != 1 {
		t.Fatalf("failures = %v, want one phase-tagged line", m["failures"])
	}
	line, _ := failures[0].(string)
	for _, frag := range []string{"golden", "scenario 2", "simulation", "2 attempts"} {
		if !bytes.Contains([]byte(line), []byte(frag)) {
			t.Errorf("failure line %q missing %q", line, frag)
		}
	}
}

// TestReportJSONRoundTrip pins the proxy invariant the cluster layer leans
// on: decode a report's wire bytes into a Report, re-marshal, and the bytes
// are identical — scenario count, failure lines, durations, estimate, and
// Monte Carlo block all survive even though the decoded Report has no
// Scenario values or error tree.
func TestReportJSONRoundTrip(t *testing.T) {
	for _, rep := range []*Report{goldenReport(), func() *Report {
		r := goldenReport()
		r.Degraded = false
		r.FailedScenarios = 0
		r.Failures = nil
		r.MC = nil
		return r
	}()} {
		first, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		var decoded Report
		if err := json.Unmarshal(first, &decoded); err != nil {
			t.Fatal(err)
		}
		if len(decoded.Scenarios) != 0 {
			t.Fatalf("decode fabricated %d Scenario values", len(decoded.Scenarios))
		}
		second, err := json.Marshal(&decoded)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("round trip drifted.\nfirst:\n%s\nsecond:\n%s", first, second)
		}
	}
}

// A decoded estimate must answer the derived queries identically to the
// original: the wire schema carries the complete inputs of the Equation (14)
// quadrature.
func TestEstimateJSONRoundTripQueries(t *testing.T) {
	orig := goldenReport().Estimate
	raw, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var dec Estimate
	if err := json.Unmarshal(raw, &dec); err != nil {
		t.Fatal(err)
	}
	//tsperrlint:ignore floatcmp the decoded estimate must be bit-identical, not approximate
	if dec.MeanErrorRate() != orig.MeanErrorRate() {
		t.Errorf("decoded mean error rate diverged from original")
	}
	//tsperrlint:ignore floatcmp the decoded estimate must be bit-identical, not approximate
	if dec.ErrorRateQuantile(0.95) != orig.ErrorRateQuantile(0.95) {
		t.Errorf("decoded quantile diverged from original")
	}
	//tsperrlint:ignore floatcmp the decoded estimate must be bit-identical, not approximate
	if dec.ErrorCountCDF(42) != orig.ErrorCountCDF(42) {
		t.Errorf("decoded count CDF diverged from original")
	}
}

// The estimate encoding must agree with the computed accessors, so service
// clients can trust the flattened numbers.
func TestEstimateJSONMatchesAccessors(t *testing.T) {
	e := goldenReport().Estimate
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"lambda_mean":     e.LambdaMean,
		"mean_error_rate": e.MeanErrorRate(),
		"std_error_rate":  e.StdErrorRate(),
		"p95_error_rate":  e.ErrorRateQuantile(0.95),
		"dk_lambda":       e.DKLambda,
	}
	for field, want := range checks {
		if !numeric.ApproxEq(m[field], want, 1e-15) {
			t.Errorf("%s = %v, want %v", field, m[field], want)
		}
	}
	if m["p50_error_rate"] >= m["p95_error_rate"] || m["p95_error_rate"] >= m["p99_error_rate"] {
		t.Errorf("quantiles not increasing: %v / %v / %v",
			m["p50_error_rate"], m["p95_error_rate"], m["p99_error_rate"])
	}
}
