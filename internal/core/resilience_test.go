package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"tsperr/internal/cpu"
	"tsperr/internal/faultinject"
	"tsperr/internal/isa"
)

// hook adapts a faultinject.Injector to the AnalyzeOpts hook signature.
func hook(in *faultinject.Injector) InjectFn {
	return func(ctx context.Context, ph Phase, s int) error {
		return in.Fire(ctx, faultinject.Point(ph), s)
	}
}

func resilienceSpec(t *testing.T, scenarios int) ProgramSpec {
	t.Helper()
	prog := isa.MustAssemble("sumloop", fwProg)
	return ProgramSpec{Prog: prog, Setup: fwSetup, Scenarios: scenarios}
}

// A panicking scenario must be recovered into a typed error and, being
// transient (panic-once), succeed on retry with no degradation.
func TestAnalyzePanicRecoveredAndRetried(t *testing.T) {
	f := testFramework(t)
	inj := faultinject.New(1, faultinject.PanicOnce(faultinject.Simulation, 2))
	rep, err := f.AnalyzeWithOpts(context.Background(), "sumloop", resilienceSpec(t, 4), AnalyzeOpts{
		Retries:      1,
		RetryBackoff: -1,
		Inject:       hook(inj),
	})
	if err != nil {
		t.Fatalf("panic should be recovered and retried, got %v", err)
	}
	if rep.Degraded || rep.FailedScenarios != 0 {
		t.Errorf("retried run must not be degraded: %+v", rep)
	}
	if len(rep.Scenarios) != 4 {
		t.Errorf("scenarios = %d", len(rep.Scenarios))
	}
	if got := inj.Fired(faultinject.Simulation); got != 1 {
		t.Errorf("panic fired %d times", got)
	}
}

// Without a retry budget the recovered panic must surface as a phase-tagged
// ScenarioError carrying the PanicError cause — not kill the process.
func TestAnalyzePanicBecomesTypedError(t *testing.T) {
	f := testFramework(t)
	inj := faultinject.New(1, faultinject.PanicOnce(faultinject.Marginals, 1))
	_, err := f.AnalyzeWithOpts(context.Background(), "sumloop", resilienceSpec(t, 2), AnalyzeOpts{
		Inject: hook(inj),
	})
	if err == nil {
		t.Fatal("unretried panic must fail the run")
	}
	ses := ScenarioErrors(err)
	if len(ses) != 1 {
		t.Fatalf("want 1 scenario error, got %d (%v)", len(ses), err)
	}
	se := ses[0]
	if se.Scenario != 1 || se.Phase != PhaseMarginals {
		t.Errorf("wrong tag: scenario %d phase %s", se.Scenario, se.Phase)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("cause is not a PanicError: %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("recovered panic should carry a stack")
	}
}

// A run with MinScenarios satisfied completes with Degraded == true and the
// joined failures listing every failed scenario.
func TestAnalyzeDegradedRun(t *testing.T) {
	f := testFramework(t)
	inj := faultinject.New(1,
		faultinject.FailAlways(faultinject.Setup, 1),
		faultinject.FailAlways(faultinject.Marginals, 3),
	)
	rep, err := f.AnalyzeWithOpts(context.Background(), "sumloop", resilienceSpec(t, 5), AnalyzeOpts{
		MinScenarios: 2,
		RetryBackoff: -1,
		Inject:       hook(inj),
	})
	if err != nil {
		t.Fatalf("degraded run should succeed: %v", err)
	}
	if !rep.Degraded || rep.FailedScenarios != 2 {
		t.Fatalf("want degraded with 2 failures, got degraded=%v failed=%d", rep.Degraded, rep.FailedScenarios)
	}
	if len(rep.Scenarios) != 3 {
		t.Errorf("survivors = %d", len(rep.Scenarios))
	}
	if rep.Estimate == nil || rep.Estimate.LambdaMean <= 0 {
		t.Error("degraded run must still produce an estimate from survivors")
	}
	ses := ScenarioErrors(rep.Failures)
	if len(ses) != 2 {
		t.Fatalf("joined failures = %d, want 2: %v", len(ses), rep.Failures)
	}
	got := map[int]Phase{}
	for _, se := range ses {
		got[se.Scenario] = se.Phase
	}
	if got[1] != PhaseSetup || got[3] != PhaseMarginals {
		t.Errorf("failure tags wrong: %v", got)
	}
	if !errors.Is(rep.Failures, faultinject.ErrInjected) {
		t.Error("joined failures must preserve the injected cause")
	}
}

// When too few scenarios survive, the run aborts and the error joins every
// failing scenario, not just the first.
func TestAnalyzeMinScenariosUnmetJoinsAll(t *testing.T) {
	f := testFramework(t)
	inj := faultinject.New(1,
		faultinject.FailAlways(faultinject.Simulation, 0),
		faultinject.FailAlways(faultinject.Simulation, 2),
		faultinject.FailAlways(faultinject.Simulation, 3),
	)
	_, err := f.AnalyzeWithOpts(context.Background(), "sumloop", resilienceSpec(t, 4), AnalyzeOpts{
		MinScenarios: 2,
		RetryBackoff: -1,
		Inject:       hook(inj),
	})
	if err == nil {
		t.Fatal("1 survivor < MinScenarios 2 must abort")
	}
	ses := ScenarioErrors(err)
	if len(ses) != 3 {
		t.Fatalf("want all 3 failures joined, got %d: %v", len(ses), err)
	}
	want := map[int]bool{0: true, 2: true, 3: true}
	for _, se := range ses {
		if !want[se.Scenario] {
			t.Errorf("unexpected failing scenario %d", se.Scenario)
		}
		delete(want, se.Scenario)
	}
	if len(want) != 0 {
		t.Errorf("missing failures for scenarios %v", want)
	}
}

// A transient failure is retried within the budget and leaves no trace on
// the report.
func TestAnalyzeTransientRetried(t *testing.T) {
	f := testFramework(t)
	inj := faultinject.New(1, faultinject.FailOnce(faultinject.Setup, 0))
	rep, err := f.AnalyzeWithOpts(context.Background(), "sumloop", resilienceSpec(t, 3), AnalyzeOpts{
		Retries:      2,
		RetryBackoff: -1,
		Inject:       hook(inj),
	})
	if err != nil {
		t.Fatalf("transient failure within retry budget: %v", err)
	}
	if rep.Degraded {
		t.Error("retried transient must not degrade the run")
	}
	// Scenario 0's setup hook ran twice (fail + success), the others once.
	if calls := inj.Calls(faultinject.Setup); calls != 4 {
		t.Errorf("setup hook calls = %d, want 4", calls)
	}
}

// A cancelled context aborts a multi-scenario run promptly with a
// context-tagged error, even while scenarios are held in flight.
func TestAnalyzeCancellationAbortsPromptly(t *testing.T) {
	f := testFramework(t)
	inj := faultinject.New(1, faultinject.DelayEach(faultinject.Simulation, -1, 30*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.AnalyzeWithOpts(ctx, "sumloop", resilienceSpec(t, 6), AnalyzeOpts{
		Inject: hook(inj),
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled run must fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error not context-tagged: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, not prompt", elapsed)
	}
	var se *ScenarioError
	if !errors.As(err, &se) {
		t.Errorf("cancellation should carry a phase tag: %v", err)
	}
}

// Cancellations are never retried, even with a generous retry budget.
func TestAnalyzeCancellationNotRetried(t *testing.T) {
	f := testFramework(t)
	inj := faultinject.New(1, faultinject.DelayEach(faultinject.Simulation, -1, 30*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.AnalyzeWithOpts(ctx, "sumloop", resilienceSpec(t, 2), AnalyzeOpts{
		Retries: 10,
		Inject:  hook(inj),
	})
	if err == nil {
		t.Fatal("cancelled run must fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("retries kept a cancelled run alive for %v", elapsed)
	}
}

// FailFast cancels the remaining scenarios as soon as one fails for real.
func TestAnalyzeFailFast(t *testing.T) {
	f := testFramework(t)
	inj := faultinject.New(1, faultinject.FailAlways(faultinject.Setup, 0))
	_, err := f.AnalyzeWithOpts(context.Background(), "sumloop", resilienceSpec(t, 8), AnalyzeOpts{
		Workers:  1,
		FailFast: true,
		Inject:   hook(inj),
	})
	if err == nil {
		t.Fatal("fail-fast run must fail")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("missing injected cause: %v", err)
	}
	// With one worker and fail-fast, scenario 0 fails first and the pool
	// context is cancelled before later scenarios simulate.
	if calls := inj.Calls(faultinject.Simulation); calls != 0 {
		t.Errorf("later scenarios simulated %d times after fail-fast", calls)
	}
}

// The cpu runaway guard must surface as a typed, phase-tagged error through
// the full pipeline — and so must a context deadline hitting the same loop;
// whichever fires first, the run ends promptly instead of hanging.
func TestAnalyzeRunawayGuardVsCancellation(t *testing.T) {
	f := testFramework(t)
	runaway := isa.MustAssemble("runaway", `
	loop:
		addi r1, r1, 1
		beq  r0, r0, loop
	`)
	spec := ProgramSpec{
		Prog:      runaway,
		Scenarios: 2,
		CPUConfig: cpu.Config{MemWords: 1 << 10, MaxInsts: 20_000, LoadUseStall: 1, BranchPenalty: 2},
	}

	// Instruction limit fires first: typed ErrInstLimit, simulation phase.
	_, err := f.Analyze(context.Background(), "runaway", spec)
	if err == nil {
		t.Fatal("runaway program must fail")
	}
	if !errors.Is(err, cpu.ErrInstLimit) {
		t.Errorf("want ErrInstLimit cause, got %v", err)
	}
	for _, se := range ScenarioErrors(err) {
		if se.Phase != PhaseSimulation {
			t.Errorf("runaway tagged %s, want %s", se.Phase, PhaseSimulation)
		}
	}

	// Context fires first: huge limit, tight deadline.
	spec.CPUConfig.MaxInsts = 1 << 62
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = f.Analyze(ctx, "runaway", spec)
	if err == nil {
		t.Fatal("deadline must abort the unbounded loop")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("want deadline cause, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline abort took %v", elapsed)
	}
}

// The bounded pool must produce results identical to sequential execution
// (determinism does not depend on worker count).
func TestAnalyzeWorkerCountInvariance(t *testing.T) {
	f := testFramework(t)
	seq, err := f.AnalyzeWithOpts(context.Background(), "sumloop", resilienceSpec(t, 4), AnalyzeOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := f.AnalyzeWithOpts(context.Background(), "sumloop", resilienceSpec(t, 4), AnalyzeOpts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	//tsperrlint:ignore floatcmp worker-count invariance is asserted bit-identical, not approximate
	if seq.Estimate.LambdaMean != par.Estimate.LambdaMean || seq.Estimate.LambdaStd != par.Estimate.LambdaStd {
		t.Errorf("worker count changed the estimate: %v/%v vs %v/%v",
			seq.Estimate.LambdaMean, seq.Estimate.LambdaStd,
			par.Estimate.LambdaMean, par.Estimate.LambdaStd)
	}
}
