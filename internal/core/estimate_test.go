package core

import (
	"context"
	"math"
	"testing"

	"tsperr/internal/cfg"
	"tsperr/internal/cpu"
	"tsperr/internal/dist"
	"tsperr/internal/errormodel"
	"tsperr/internal/isa"
	"tsperr/internal/numeric"
)

// synthScenarios builds a straight-line program with hand-set probabilities
// so the statistics can be checked analytically.
func synthScenarios(t *testing.T, perScenarioP [][]float64, execs int64) (*cfg.Graph, []Scenario) {
	t.Helper()
	src := ""
	for range perScenarioP[0] {
		src += "add r1, r1, r2\n"
	}
	src += "halt\n"
	p, err := isa.Assemble("synth", src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	n := len(p.Insts)
	var scenarios []Scenario
	for _, probs := range perScenarioP {
		pr := cfg.NewProfile(g)
		for b := range pr.ExecCount {
			pr.ExecCount[b] = execs
		}
		pr.InstCount = execs * int64(n)
		marg := &errormodel.Marginals{
			P:   make([]float64, n),
			In:  make([]float64, len(g.Blocks)),
			Out: make([]float64, len(g.Blocks)),
		}
		cond := &errormodel.Conditionals{PC: make([]float64, n), PE: make([]float64, n)}
		for i, q := range probs {
			marg.P[i] = q
			cond.PC[i] = q
			cond.PE[i] = q
		}
		scenarios = append(scenarios, Scenario{Profile: pr, Marginals: marg, Cond: cond})
	}
	return g, scenarios
}

func TestEstimateLambdaMoments(t *testing.T) {
	// Two scenarios with different probabilities: lambda = execs * sum(p).
	g, sc := synthScenarios(t, [][]float64{
		{0.001, 0.002, 0.003, 0},
		{0.002, 0.004, 0.006, 0},
	}, 1000)
	e, err := NewEstimate(context.Background(), g, sc)
	if err != nil {
		t.Fatal(err)
	}
	want0 := 1000 * 0.006
	want1 := 1000 * 0.012
	if math.Abs(e.LambdaSamples[0]-want0) > 1e-9 || math.Abs(e.LambdaSamples[1]-want1) > 1e-9 {
		t.Errorf("lambda samples = %v", e.LambdaSamples)
	}
	if math.Abs(e.LambdaMean-9) > 1e-9 {
		t.Errorf("lambda mean = %v", e.LambdaMean)
	}
	if math.Abs(e.LambdaStd-3) > 1e-9 {
		t.Errorf("lambda std = %v", e.LambdaStd)
	}
	if math.Abs(e.MeanErrorRate()-9.0/5000) > 1e-12 {
		t.Errorf("mean error rate = %v", e.MeanErrorRate())
	}
}

func TestEstimateRequiresScenarios(t *testing.T) {
	g, _ := synthScenarios(t, [][]float64{{0.1}}, 10)
	if _, err := NewEstimate(context.Background(), g, nil); err == nil {
		t.Error("empty scenario list should fail")
	}
}

func TestErrorCountCDFDegenerate(t *testing.T) {
	// Single scenario => LambdaStd 0 => pure Poisson CDF.
	g, sc := synthScenarios(t, [][]float64{{0.005, 0.005, 0, 0}}, 2000)
	e, err := NewEstimate(context.Background(), g, sc)
	if err != nil {
		t.Fatal(err)
	}
	want := dist.Poisson{Lambda: 20}.CDF(20)
	if got := e.ErrorCountCDF(20); math.Abs(got-want) > 1e-9 {
		t.Errorf("degenerate CDF = %v, want %v", got, want)
	}
}

func TestErrorCountCDFMixture(t *testing.T) {
	g, sc := synthScenarios(t, [][]float64{
		{0.004, 0, 0, 0}, {0.006, 0, 0, 0}, {0.005, 0, 0, 0},
	}, 10000)
	e, err := NewEstimate(context.Background(), g, sc)
	if err != nil {
		t.Fatal(err)
	}
	// CDF must be monotone from ~0 to ~1.
	prev := -1.0
	for k := 0.0; k <= 120; k += 5 {
		c := e.ErrorCountCDF(k)
		if c < prev-1e-9 {
			t.Fatalf("CDF not monotone at %v", k)
		}
		prev = c
	}
	if e.ErrorCountCDF(0) > 0.01 {
		t.Error("CDF near zero errors should be tiny")
	}
	if e.ErrorCountCDF(120) < 0.99 {
		t.Error("CDF far right should approach 1")
	}
	// At the mean it should be near 0.5.
	if c := e.ErrorCountCDF(e.LambdaMean); math.Abs(c-0.5) > 0.08 {
		t.Errorf("CDF at mean = %v", c)
	}
}

func TestCDFBoundsBracket(t *testing.T) {
	g, sc := synthScenarios(t, [][]float64{
		{0.004, 0.001, 0, 0}, {0.006, 0.002, 0, 0},
	}, 5000)
	e, err := NewEstimate(context.Background(), g, sc)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0.0; k < 80; k += 4 {
		lo, hi := e.ErrorCountCDFBounds(k)
		c := e.ErrorCountCDF(k)
		if !(lo <= c+1e-12 && c <= hi+1e-12) {
			t.Fatalf("bounds do not bracket at %v: %v <= %v <= %v", k, lo, c, hi)
		}
		if lo < 0 || hi > 1 {
			t.Fatal("bounds must clamp to [0,1]")
		}
	}
}

func TestErrorRateCDFMatchesCountCDF(t *testing.T) {
	g, sc := synthScenarios(t, [][]float64{{0.002, 0.004, 0, 0}}, 3000)
	e, _ := NewEstimate(context.Background(), g, sc)
	rate := 0.0015
	if math.Abs(e.ErrorRateCDF(rate)-e.ErrorCountCDF(rate*e.TotalInsts)) > 1e-12 {
		t.Error("rate CDF should be the count CDF at rate*n")
	}
	lo1, hi1 := e.ErrorRateCDFBounds(rate)
	lo2, hi2 := e.ErrorCountCDFBounds(rate * e.TotalInsts)
	//tsperrlint:ignore floatcmp both bounds come from the same computation and must agree bit-exactly
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("rate bounds should match count bounds")
	}
}

func TestChenSteinBoundScalesWithDependence(t *testing.T) {
	// Higher conditional-on-error probabilities inflate b2 and the bound.
	build := func(pe float64) *Estimate {
		g, sc := synthScenarios(t, [][]float64{
			{0.003, 0.003, 0.003, 0.003}, {0.004, 0.004, 0.004, 0.004},
		}, 100000)
		for _, s := range sc {
			for i := range s.Cond.PE {
				s.Cond.PE[i] = pe
			}
		}
		e, err := NewEstimate(context.Background(), g, sc)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	weak := build(0.003)
	strong := build(0.5)
	if strong.DKCount <= weak.DKCount {
		t.Errorf("stronger inter-instruction dependence must widen the bound: %v vs %v",
			strong.DKCount, weak.DKCount)
	}
	if weak.B2 >= strong.B2 {
		t.Error("b2 should grow with p^e")
	}
}

func TestSteinBoundShrinksWithMoreInstructions(t *testing.T) {
	// More (equally-sized) independent contributions => better normal
	// approximation => smaller d_K(lambda, lambda-bar).
	// Each scenario shifts all instructions together (a common data-variation
	// component, as input datasets do in the real model) plus small
	// independent noise.
	mk := func(n int) *Estimate {
		probs := make([][]float64, 8)
		rng := numeric.NewRNG(99)
		for r := range probs {
			base := 0.002 + 0.002*rng.Float64()
			probs[r] = make([]float64, n)
			for i := range probs[r] {
				probs[r][i] = base + 0.0002*rng.Float64()
			}
		}
		g, sc := synthScenarios(t, probs, 1000)
		e, err := NewEstimate(context.Background(), g, sc)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	small := mk(6)
	large := mk(2048)
	if large.DKLambda >= small.DKLambda {
		t.Errorf("Stein bound should shrink with program size: %v vs %v",
			large.DKLambda, small.DKLambda)
	}
	if large.DKLambda >= 1 {
		t.Errorf("large-program Stein bound should be informative, got %v", large.DKLambda)
	}
}

func TestErrorRateQuantileInvertsTheCDF(t *testing.T) {
	g, sc := synthScenarios(t, [][]float64{
		{0.004, 0.001, 0, 0}, {0.005, 0.002, 0, 0}, {0.006, 0.001, 0, 0},
	}, 8000)
	e, err := NewEstimate(context.Background(), g, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		r := e.ErrorRateQuantile(p)
		if got := e.ErrorRateCDF(r); math.Abs(got-p) > 0.03 {
			t.Errorf("CDF(quantile(%v)) = %v", p, got)
		}
	}
	if e.ErrorRateQuantile(0.9) <= e.ErrorRateQuantile(0.1) {
		t.Error("quantiles must be increasing")
	}
	if e.ErrorRateQuantile(0) != 0 {
		t.Error("p=0 quantile should be 0")
	}
	if e.ErrorRateQuantile(1) <= e.MeanErrorRate() {
		t.Error("p=1 quantile should exceed the mean")
	}
}

func TestStdErrorRateIncludesPoissonTerm(t *testing.T) {
	g, sc := synthScenarios(t, [][]float64{{0.004, 0, 0, 0}}, 10000)
	e, _ := NewEstimate(context.Background(), g, sc)
	// Single scenario: LambdaStd = 0, so SD comes from the Poisson variance.
	want := math.Sqrt(e.LambdaMean) / e.TotalInsts
	if math.Abs(e.StdErrorRate()-want) > 1e-15 {
		t.Errorf("std error rate = %v, want %v", e.StdErrorRate(), want)
	}
}

func TestFrameworkPerfModel(t *testing.T) {
	f := &Framework{Machine: &errormodel.Machine{Opts: errormodel.DefaultOptions()}}
	pm := f.PerfModel()
	if pm.FreqRatio != 1.15 || pm.Scheme != cpu.ReplayHalfFrequency {
		t.Errorf("perf model misconfigured: %+v", pm)
	}
}
