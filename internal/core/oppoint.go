package core

import (
	"context"
	"fmt"
	"math"

	"tsperr/internal/cpu"
)

// OperatingPoint is one evaluated frequency setting.
type OperatingPoint struct {
	// Ratio is speculative over baseline frequency.
	Ratio float64
	// ErrorRate is the estimated mean error rate at this frequency.
	ErrorRate float64
	// Speedup is the expected performance relative to baseline.
	Speedup float64
	// CDFBelowBreakEven is the probability the program's error rate stays
	// below this point's break-even (a risk measure: high means speculation
	// is reliably profitable across chips and inputs).
	CDFBelowBreakEven float64
}

// AnalyzeAtRatio analyzes the program with the machine re-targeted at the
// given frequency ratio (speculative over baseline) and the datapath model
// re-trained for that period, then restores the original working period and
// datapath before returning — on success, failure, and cancellation alike —
// so a follow-up Analyze is bit-identical to one on a framework that never
// retargeted. When the requested period is bit-identical to the current
// working period the retarget is skipped entirely (preserving the stimulus
// memo and the exact plain-Analyze path). Not safe for concurrent use with
// other analyses on the same framework: the retarget mutates shared machine
// state.
func (f *Framework) AnalyzeAtRatio(ctx context.Context, name string, spec ProgramSpec, ratio float64, opts AnalyzeOpts) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ratio <= 0 || math.IsInf(ratio, 0) {
		return nil, fmt.Errorf("core: non-positive ratio %v", ratio)
	}
	target := f.Machine.BasePeriodPs / ratio
	if math.Float64bits(target) == math.Float64bits(f.Machine.WorkingPeriodPs) {
		return f.AnalyzeWithOpts(ctx, name, spec, opts)
	}
	origPeriod := f.Machine.WorkingPeriodPs
	origDP := f.Datapath
	defer func() {
		f.Machine.SetWorkingPeriod(origPeriod)
		f.Datapath = origDP
	}()
	f.Machine.SetWorkingPeriod(target)
	dp, err := f.Machine.TrainDatapath(ctx)
	if err != nil {
		return nil, err
	}
	f.Datapath = dp
	return f.AnalyzeWithOpts(ctx, name, spec, opts)
}

// EvaluateOperatingPoint analyzes the program at one frequency ratio and
// summarizes it as an OperatingPoint under the replay-at-half-frequency
// performance model. The machine is restored afterwards (see
// AnalyzeAtRatio).
func (f *Framework) EvaluateOperatingPoint(ctx context.Context, name string, spec ProgramSpec, ratio float64) (OperatingPoint, error) {
	rep, err := f.AnalyzeAtRatio(ctx, name, spec, ratio, AnalyzeOpts{})
	if err != nil {
		return OperatingPoint{}, err
	}
	return reportOperatingPoint(rep, ratio), nil
}

// reportOperatingPoint summarizes one analyzed report at a frequency ratio.
func reportOperatingPoint(rep *Report, ratio float64) OperatingPoint {
	er := rep.Estimate.MeanErrorRate()
	pm := cpu.PerfModel{FreqRatio: ratio, BaseCPI: 1, Scheme: cpu.ReplayHalfFrequency}
	return OperatingPoint{
		Ratio:             ratio,
		ErrorRate:         er,
		Speedup:           pm.Speedup(er),
		CDFBelowBreakEven: rep.Estimate.ErrorRateCDF(pm.BreakEvenErrorRate()),
	}
}

// SelectOperatingPoint evaluates the program at each frequency ratio and
// returns all points plus the index of the best expected speedup — the
// per-application operating point selection of the authors' companion work
// (Assare & Gupta, ICCD 2016), here driven by the error-rate estimator.
// The framework's original working period and datapath are restored on
// exit, so the sweep leaves no trace on subsequent analyses.
func (f *Framework) SelectOperatingPoint(ctx context.Context, name string, spec ProgramSpec, ratios []float64) ([]OperatingPoint, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(ratios) == 0 {
		return nil, 0, fmt.Errorf("core: no ratios to evaluate")
	}
	points := make([]OperatingPoint, len(ratios))
	best := 0
	for i, ratio := range ratios {
		if err := ctx.Err(); err != nil {
			return nil, 0, fmt.Errorf("core: operating-point sweep aborted at ratio %v: %w", ratio, err)
		}
		pt, err := f.EvaluateOperatingPoint(ctx, name, spec, ratio)
		if err != nil {
			return nil, 0, err
		}
		points[i] = pt
		if points[i].Speedup > points[best].Speedup {
			best = i
		}
	}
	return points, best, nil
}

// MaxBisectSteps bounds the quantized ratio grid of BisectRatio; 2^20 grid
// intervals resolve a frequency ratio to ~1e-6, far below model fidelity.
const MaxBisectSteps = 1 << 20

// BisectResult is the outcome of one BisectRatio search.
type BisectResult struct {
	// Feasible reports whether any grid ratio met the target; when false
	// Ratio/ErrorRate describe the infeasible low end of the grid.
	Feasible bool
	// Ratio is the fastest (largest) grid ratio whose error rate meets the
	// target; ErrorRate is the evaluated rate there.
	Ratio     float64
	ErrorRate float64
	// Evals is how many times eval ran (grid endpoints + bisection probes).
	Evals int
}

// BisectRatio finds the fastest frequency ratio meeting a target error rate
// on the quantized grid {lo + i*(hi-lo)/steps : i = 0..steps}, assuming the
// evaluated error rate is monotone non-decreasing in the ratio (physically:
// a shorter clock period can only add timing errors). The search is index
// bisection, so it is deterministic — the probe sequence depends only on
// eval outcomes, which makes the result invariant to caller-side concerns
// like cache warmth or the order a surrounding grid is walked in. eval must
// be deterministic for a given ratio.
func BisectRatio(ctx context.Context, lo, hi float64, steps int, target float64, eval func(context.Context, float64) (float64, error)) (BisectResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !(lo > 0) || !(hi >= lo) || math.IsInf(hi, 0) {
		return BisectResult{}, fmt.Errorf("core: bad bisection range [%v, %v]", lo, hi)
	}
	if steps < 1 || steps > MaxBisectSteps {
		return BisectResult{}, fmt.Errorf("core: bisection steps %d outside [1, %d]", steps, MaxBisectSteps)
	}
	if !(target >= 0 && target <= 1) {
		return BisectResult{}, fmt.Errorf("core: target error rate %v outside [0, 1]", target)
	}
	ratioAt := func(i int) float64 {
		if i == steps {
			return hi
		}
		return lo + (hi-lo)*float64(i)/float64(steps)
	}
	res := BisectResult{}
	evalAt := func(i int) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("core: bisection aborted at ratio %v: %w", ratioAt(i), err)
		}
		res.Evals++
		return eval(ctx, ratioAt(i))
	}
	// The slow end must be feasible for the search to mean anything.
	loRate, err := evalAt(0)
	if err != nil {
		return BisectResult{}, err
	}
	if loRate > target {
		res.Ratio, res.ErrorRate = ratioAt(0), loRate
		return res, nil
	}
	res.Feasible = true
	res.Ratio, res.ErrorRate = ratioAt(0), loRate
	// Fast path: the whole range may be feasible.
	hiRate, err := evalAt(steps)
	if err != nil {
		return BisectResult{}, err
	}
	if hiRate <= target {
		res.Ratio, res.ErrorRate = ratioAt(steps), hiRate
		return res, nil
	}
	// Invariant: grid index good is feasible, bad is not; good < bad.
	good, bad := 0, steps
	for bad-good > 1 {
		mid := good + (bad-good)/2
		rate, err := evalAt(mid)
		if err != nil {
			return BisectResult{}, err
		}
		if rate <= target {
			good = mid
			res.Ratio, res.ErrorRate = ratioAt(mid), rate
		} else {
			bad = mid
		}
	}
	return res, nil
}
