package core

import (
	"context"
	"fmt"

	"tsperr/internal/cpu"
)

// OperatingPoint is one evaluated frequency setting.
type OperatingPoint struct {
	// Ratio is speculative over baseline frequency.
	Ratio float64
	// ErrorRate is the estimated mean error rate at this frequency.
	ErrorRate float64
	// Speedup is the expected performance relative to baseline.
	Speedup float64
	// CDFBelowBreakEven is the probability the program's error rate stays
	// below this point's break-even (a risk measure: high means speculation
	// is reliably profitable across chips and inputs).
	CDFBelowBreakEven float64
}

// SelectOperatingPoint evaluates the program at each frequency ratio and
// returns all points plus the index of the best expected speedup — the
// per-application operating point selection of the authors' companion work
// (Assare & Gupta, ICCD 2016), here driven by the error-rate estimator.
// The framework's machine is re-targeted and re-trained per point and left
// at the last evaluated ratio; callers who need the original working point
// should re-target afterwards.
func (f *Framework) SelectOperatingPoint(ctx context.Context, name string, spec ProgramSpec, ratios []float64) ([]OperatingPoint, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(ratios) == 0 {
		return nil, 0, fmt.Errorf("core: no ratios to evaluate")
	}
	base := f.Machine.BasePeriodPs
	points := make([]OperatingPoint, len(ratios))
	best := 0
	for i, ratio := range ratios {
		if err := ctx.Err(); err != nil {
			return nil, 0, fmt.Errorf("core: operating-point sweep aborted at ratio %v: %w", ratio, err)
		}
		if ratio <= 0 {
			return nil, 0, fmt.Errorf("core: non-positive ratio %v", ratio)
		}
		f.Machine.SetWorkingPeriod(base / ratio)
		dp, err := f.Machine.TrainDatapath(ctx)
		if err != nil {
			return nil, 0, err
		}
		f.Datapath = dp
		rep, err := f.Analyze(ctx, name, spec)
		if err != nil {
			return nil, 0, err
		}
		er := rep.Estimate.MeanErrorRate()
		pm := cpu.PerfModel{FreqRatio: ratio, BaseCPI: 1, Scheme: cpu.ReplayHalfFrequency}
		points[i] = OperatingPoint{
			Ratio:             ratio,
			ErrorRate:         er,
			Speedup:           pm.Speedup(er),
			CDFBelowBreakEven: rep.Estimate.ErrorRateCDF(pm.BreakEvenErrorRate()),
		}
		if points[i].Speedup > points[best].Speedup {
			best = i
		}
	}
	return points, best, nil
}
