package core

import (
	"context"
	"math"
	"testing"

	"tsperr/internal/dist"
)

// TestPoissonMixtureAgainstExactPBD validates the Section 5 approximation
// chain against ground truth on a problem small enough to compute exactly:
// with a single scenario (lambda degenerate) and independent indicators, the
// error count is exactly Poisson binomial, and the framework's CDF must stay
// within the Chen-Stein bound of it.
func TestPoissonMixtureAgainstExactPBD(t *testing.T) {
	// Build per-instruction probabilities: 4 static instructions executed
	// 500 times each (the synthetic program from estimate_test).
	perInst := []float64{0.003, 0.001, 0.004, 0.002}
	const execs = 500
	g, sc := synthScenarios(t, [][]float64{perInst}, execs)
	est, err := NewEstimate(context.Background(), g, sc)
	if err != nil {
		t.Fatal(err)
	}
	// Exact: each instruction contributes `execs` independent indicators.
	var ps []float64
	for _, p := range perInst {
		for j := 0; j < execs; j++ {
			ps = append(ps, p)
		}
	}
	pbd := dist.NewPoissonBinomial(ps)
	if math.Abs(pbd.Mean()-est.LambdaMean) > 1e-9 {
		t.Fatalf("mean mismatch: %v vs %v", pbd.Mean(), est.LambdaMean)
	}
	worst := 0.0
	for k := 0.0; k < est.LambdaMean*4+10; k++ {
		d := math.Abs(pbd.CDF(k) - est.ErrorCountCDF(k))
		if d > worst {
			worst = d
		}
	}
	if worst > est.DKCount {
		t.Errorf("exact PBD distance %v exceeds Chen-Stein bound %v", worst, est.DKCount)
	}
	// The bound should not be absurdly loose either (within ~50x here).
	if est.DKCount > 50*worst+0.05 {
		t.Logf("note: bound %v vs actual %v (loose but valid)", est.DKCount, worst)
	}
	// And Le Cam's classical bound (independent case) must also hold for
	// the pure Poisson part.
	poisson := dist.Poisson{Lambda: pbd.Mean()}
	tv := dist.TotalVariationInt(pbd.PMF, poisson.PMF, len(ps))
	if tv > pbd.LeCamBound() {
		t.Errorf("Le Cam violated: %v > %v", tv, pbd.LeCamBound())
	}
}
