package core

import (
	"context"
	"encoding/json"
	"testing"

	"tsperr/internal/isa"
)

// batchItem builds one suite entry over the shared test fixture program.
func batchItem(name string, scenarios int, opts AnalyzeOpts) BatchItem {
	return BatchItem{
		Name: name,
		Spec: ProgramSpec{Prog: isa.MustAssemble("sumloop", fwProg), Setup: fwSetup, Scenarios: scenarios},
		Opts: opts,
	}
}

// TestBatchMatchesSerialPath pins the tentpole acceptance criterion: for
// every item in the suite the batch report is bit-identical to the serial
// single-scenario path (a direct AnalyzeWithOpts call with the same inputs).
func TestBatchMatchesSerialPath(t *testing.T) {
	f := testFramework(t)
	items := []BatchItem{
		batchItem("a", 2, AnalyzeOpts{}),
		batchItem("b", 3, AnalyzeOpts{MCTrials: 400, MCChunkSize: 64, MCSeed: 7}),
		batchItem("a", 2, AnalyzeOpts{Workers: 3}),
	}
	batch, err := f.EstimateBatch(context.Background(), items, BatchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Computed != 2 {
		// Items 0 and 2 differ only in Workers — a scheduling knob — so they
		// share a key and one computation.
		t.Errorf("computed = %d, want 2", batch.Computed)
	}
	for i, it := range items {
		got := batch.Items[i]
		if got.Err != nil {
			t.Fatalf("item %d: %v", i, got.Err)
		}
		serial, err := f.AnalyzeWithOpts(context.Background(), it.Name, it.Spec, it.Opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Report.Name != it.Name && !got.Dedup {
			t.Errorf("item %d: name %q", i, got.Report.Name)
		}
		// The wire schema is the stable projection both paths share; the
		// lambda samples underneath must also agree exactly.
		gotJSON, _ := json.Marshal(got.Report.Estimate)
		serialJSON, _ := json.Marshal(serial.Estimate)
		if string(gotJSON) != string(serialJSON) {
			t.Errorf("item %d: batch estimate %s\nserial %s", i, gotJSON, serialJSON)
		}
		for s, l := range got.Report.Estimate.LambdaSamples {
			//tsperrlint:ignore floatcmp batch-vs-serial determinism is asserted bit-identical, not approximate
			if l != serial.Estimate.LambdaSamples[s] {
				t.Errorf("item %d scenario %d: lambda %v vs serial %v", i, s, l, serial.Estimate.LambdaSamples[s])
			}
		}
		if (got.Report.MC == nil) != (serial.MC == nil) {
			t.Fatalf("item %d: MC presence differs", i)
		}
		if got.Report.MC != nil {
			//tsperrlint:ignore floatcmp MC determinism is asserted bit-identical, not approximate
			if got.Report.MC.Mean != serial.MC.Mean || got.Report.MC.MaxCDFDistance != serial.MC.MaxCDFDistance {
				t.Errorf("item %d: MC %+v vs serial %+v", i, got.Report.MC, serial.MC)
			}
		}
	}
}

// TestBatchDedupIdenticalItems pins the dedup criterion: N identical items
// perform exactly one computation.
func TestBatchDedupIdenticalItems(t *testing.T) {
	f := testFramework(t)
	const n = 6
	items := make([]BatchItem, n)
	for i := range items {
		items[i] = batchItem("same", 2, AnalyzeOpts{})
	}
	var streamed []BatchItemResult
	batch, err := f.EstimateBatch(context.Background(), items, BatchOpts{
		OnResult: func(r BatchItemResult) { streamed = append(streamed, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Computed != 1 || batch.Deduped != n-1 {
		t.Fatalf("computed %d deduped %d, want 1 and %d", batch.Computed, batch.Deduped, n-1)
	}
	if len(streamed) != n {
		t.Fatalf("streamed %d results, want %d", len(streamed), n)
	}
	for i, r := range streamed {
		if r.Index != i {
			t.Errorf("streamed[%d].Index = %d; results must arrive in suite order", i, r.Index)
		}
		if r.Report != batch.Items[0].Report {
			t.Errorf("item %d: deduped items should share the computed report", i)
		}
		if (i > 0) != r.Dedup {
			t.Errorf("item %d: Dedup = %t", i, r.Dedup)
		}
	}
}

func TestBatchKeyExcludesSchedulingKnobs(t *testing.T) {
	base := batchItem("x", 4, AnalyzeOpts{Retries: 2})
	same := base
	same.Opts.Workers = 7
	same.Opts.RetryBackoff = -1
	if base.Key() != same.Key() {
		t.Error("scheduling knobs must not change the batch key")
	}
	for _, mutate := range []func(*BatchItem){
		func(it *BatchItem) { it.Name = "y" },
		func(it *BatchItem) { it.Spec.Scenarios = 5 },
		func(it *BatchItem) { it.Spec.ScaleToInsts = 1 << 20 },
		func(it *BatchItem) { it.Opts.Retries = 3 },
		func(it *BatchItem) { it.Opts.MinScenarios = 1 },
		func(it *BatchItem) { it.Opts.FailFast = true },
		func(it *BatchItem) { it.Opts.MCTrials = 100 },
		func(it *BatchItem) { it.Opts.MCSeed = 9 },
	} {
		changed := base
		mutate(&changed)
		if base.Key() == changed.Key() {
			t.Errorf("result-determining change did not change the key: %+v", changed)
		}
	}
}

func TestBatchErrorHandling(t *testing.T) {
	f := testFramework(t)
	bad := batchItem("bad", 2, AnalyzeOpts{})
	bad.Spec.Scenarios = 0 // invalid: fails fast in AnalyzeWithOpts
	items := []BatchItem{bad, batchItem("good", 2, AnalyzeOpts{})}

	batch, err := f.EstimateBatch(context.Background(), items, BatchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Items[0].Err == nil || batch.Items[1].Err != nil {
		t.Fatalf("default mode should continue past failures: %v / %v",
			batch.Items[0].Err, batch.Items[1].Err)
	}
	if batch.Failed != 1 {
		t.Errorf("failed = %d", batch.Failed)
	}

	stopped, err := f.EstimateBatch(context.Background(), items, BatchOpts{StopOnError: true})
	if err != nil {
		t.Fatal(err)
	}
	if stopped.Items[1].Err == nil {
		t.Error("StopOnError should mark the remaining items failed")
	}

	if _, err := f.EstimateBatch(context.Background(), nil, BatchOpts{}); err == nil {
		t.Error("empty batch should error")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	aborted, err := f.EstimateBatch(ctx, items, BatchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range aborted.Items {
		if aborted.Items[i].Err == nil {
			t.Errorf("item %d should carry the context error", i)
		}
	}
}

// TestAnalyzeMCValidation exercises the in-pipeline Monte Carlo validation on
// both the plain and the scaled path.
func TestAnalyzeMCValidation(t *testing.T) {
	f := testFramework(t)
	prog := isa.MustAssemble("sumloop", fwProg)
	opts := AnalyzeOpts{MCTrials: 600, MCChunkSize: 64, MCSeed: 3, Workers: 4}

	rep, err := f.AnalyzeWithOpts(context.Background(), "plain", ProgramSpec{
		Prog: prog, Setup: fwSetup, Scenarios: 2,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	mc := rep.MC
	if mc == nil {
		t.Fatal("MC validation missing")
	}
	if mc.Trials != 600 || mc.Chunks != (600+63)/64 {
		t.Errorf("trials %d chunks %d", mc.Trials, mc.Chunks)
	}
	if mc.UnscaledReference {
		t.Error("unscaled run should not rebuild a reference estimate")
	}
	if !mc.Within {
		t.Errorf("MC validation out of bounds: distance %v > bound %v", mc.MaxCDFDistance, mc.Bound)
	}

	scaled, err := f.AnalyzeWithOpts(context.Background(), "scaled", ProgramSpec{
		Prog: prog, Setup: fwSetup, Scenarios: 2, ScaleToInsts: 5_000_000,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.MC == nil || !scaled.MC.UnscaledReference {
		t.Fatal("scaled run must validate against an unscaled reference")
	}
	if !scaled.MC.Within {
		t.Errorf("scaled MC validation out of bounds: distance %v > bound %v",
			scaled.MC.MaxCDFDistance, scaled.MC.Bound)
	}
	// The scaled estimate's lambda is inflated by the scale factor; the
	// reference the simulation is compared against must not be.
	if scaled.MC.LambdaRef >= scaled.Estimate.LambdaMean {
		t.Errorf("reference lambda %v should be far below scaled lambda %v",
			scaled.MC.LambdaRef, scaled.Estimate.LambdaMean)
	}
}
