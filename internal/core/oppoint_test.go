package core

import (
	"context"
	"testing"

	"tsperr/internal/isa"
)

func TestSelectOperatingPoint(t *testing.T) {
	f := testFramework(t)
	origPeriod := f.Machine.WorkingPeriodPs
	defer func() {
		f.Machine.SetWorkingPeriod(origPeriod)
		dp, err := f.Machine.TrainDatapath(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		f.Datapath = dp
	}()

	prog := isa.MustAssemble("sumloop", fwProg)
	spec := ProgramSpec{Prog: prog, Setup: fwSetup, Scenarios: 2}
	ratios := []float64{1.05, 1.13, 1.22}
	points, best, err := f.SelectOperatingPoint(context.Background(), "sumloop", spec, ratios)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Error rate must be nondecreasing in frequency.
	for i := 1; i < len(points); i++ {
		if points[i].ErrorRate < points[i-1].ErrorRate-1e-12 {
			t.Errorf("error rate fell with frequency: %v", points)
		}
	}
	// The best point must not be dominated.
	for i := range points {
		if points[i].Speedup > points[best].Speedup {
			t.Errorf("best index wrong: %v vs %v", points[best], points[i])
		}
	}
	// At the lowest ratio, nearly no errors: speedup ~= ratio.
	if points[0].Speedup < points[0].Ratio*0.99 {
		t.Errorf("low ratio should be almost error-free: %+v", points[0])
	}
	// Risk measure in [0,1].
	for _, p := range points {
		if p.CDFBelowBreakEven < 0 || p.CDFBelowBreakEven > 1 {
			t.Errorf("risk out of range: %+v", p)
		}
	}
}

func TestSelectOperatingPointValidation(t *testing.T) {
	f := testFramework(t)
	prog := isa.MustAssemble("h", "halt\n")
	if _, _, err := f.SelectOperatingPoint(context.Background(), "h", ProgramSpec{Prog: prog, Scenarios: 1}, nil); err == nil {
		t.Error("no ratios should fail")
	}
	if _, _, err := f.SelectOperatingPoint(context.Background(), "h", ProgramSpec{Prog: prog, Scenarios: 1}, []float64{-1}); err == nil {
		t.Error("negative ratio should fail")
	}
}
