package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"tsperr/internal/cell"
	"tsperr/internal/cpu"
	"tsperr/internal/errormodel"
	"tsperr/internal/isa"
)

func TestSelectOperatingPoint(t *testing.T) {
	f := testFramework(t)
	prog := isa.MustAssemble("sumloop", fwProg)
	spec := ProgramSpec{Prog: prog, Setup: fwSetup, Scenarios: 2}
	ratios := []float64{1.05, 1.13, 1.22}
	points, best, err := f.SelectOperatingPoint(context.Background(), "sumloop", spec, ratios)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Error rate must be nondecreasing in frequency.
	for i := 1; i < len(points); i++ {
		if points[i].ErrorRate < points[i-1].ErrorRate-1e-12 {
			t.Errorf("error rate fell with frequency: %v", points)
		}
	}
	// The best point must not be dominated.
	for i := range points {
		if points[i].Speedup > points[best].Speedup {
			t.Errorf("best index wrong: %v vs %v", points[best], points[i])
		}
	}
	// At the lowest ratio, nearly no errors: speedup ~= ratio.
	if points[0].Speedup < points[0].Ratio*0.99 {
		t.Errorf("low ratio should be almost error-free: %+v", points[0])
	}
	// Risk measure in [0,1].
	for _, p := range points {
		if p.CDFBelowBreakEven < 0 || p.CDFBelowBreakEven > 1 {
			t.Errorf("risk out of range: %+v", p)
		}
	}
}

func TestSelectOperatingPointValidation(t *testing.T) {
	f := testFramework(t)
	prog := isa.MustAssemble("h", "halt\n")
	if _, _, err := f.SelectOperatingPoint(context.Background(), "h", ProgramSpec{Prog: prog, Scenarios: 1}, nil); err == nil {
		t.Error("no ratios should fail")
	}
	if _, _, err := f.SelectOperatingPoint(context.Background(), "h", ProgramSpec{Prog: prog, Scenarios: 1}, []float64{-1}); err == nil {
		t.Error("negative ratio should fail")
	}
}

// stableReportJSON marshals a report with the wall-clock timing fields
// zeroed, leaving only the deterministic analysis outputs — the byte string
// two runs of the same deterministic pipeline must agree on exactly.
func stableReportJSON(t *testing.T, rep *Report) string {
	t.Helper()
	c := *rep
	c.Training, c.Simulation = 0, 0
	buf, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestSweepRestoreBitIdentical is the regression test for the sweep leaving
// the machine re-targeted at the last evaluated ratio: an Analyze after a
// SelectOperatingPoint sweep must be bit-identical to one on a framework
// that never swept.
func TestSweepRestoreBitIdentical(t *testing.T) {
	f := testFramework(t)
	ctx := context.Background()
	prog := isa.MustAssemble("sumloop", fwProg)
	spec := ProgramSpec{Prog: prog, Setup: fwSetup, Scenarios: 2}

	before, err := f.Analyze(ctx, "sumloop", spec)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := stableReportJSON(t, before)
	wantPeriod := math.Float64bits(f.Machine.WorkingPeriodPs)
	wantDP := f.Datapath

	if _, _, err := f.SelectOperatingPoint(ctx, "sumloop", spec, []float64{1.05, 1.22}); err != nil {
		t.Fatal(err)
	}

	if got := math.Float64bits(f.Machine.WorkingPeriodPs); got != wantPeriod {
		t.Fatalf("working period not restored: bits %x != %x", got, wantPeriod)
	}
	if f.Datapath != wantDP {
		t.Fatal("datapath model not restored to the pre-sweep instance")
	}
	after, err := f.Analyze(ctx, "sumloop", spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := stableReportJSON(t, after); got != wantJSON {
		t.Errorf("post-sweep report differs from pre-sweep:\n pre: %s\npost: %s", wantJSON, got)
	}
}

// TestAnalyzeAtRatioRestoresOnError pins the restore on the failure path: a
// scenario that fails at the re-targeted ratio must still leave the original
// working period and datapath in place.
func TestAnalyzeAtRatioRestoresOnError(t *testing.T) {
	f := testFramework(t)
	prog := isa.MustAssemble("sumloop", fwProg)
	wantPeriod := math.Float64bits(f.Machine.WorkingPeriodPs)
	wantDP := f.Datapath
	spec := ProgramSpec{
		Prog:      prog,
		Setup:     func(*cpu.CPU, int) error { return errors.New("boom") },
		Scenarios: 1,
	}
	if _, err := f.AnalyzeAtRatio(context.Background(), "sumloop", spec, 1.22, AnalyzeOpts{}); err == nil {
		t.Fatal("want setup failure")
	}
	if got := math.Float64bits(f.Machine.WorkingPeriodPs); got != wantPeriod {
		t.Fatalf("working period not restored after error: bits %x != %x", got, wantPeriod)
	}
	if f.Datapath != wantDP {
		t.Fatal("datapath not restored after error")
	}
}

var (
	droopOnce sync.Once
	droopFW   *Framework
	droopErr  error
)

// droopFramework builds (once) a framework at a drooped, hot operating
// condition; periods and calibration match testFramework's, only the V/T
// delay/sigma factors differ.
func droopFramework(t *testing.T) *Framework {
	t.Helper()
	droopOnce.Do(func() {
		opts := errormodel.DefaultOptions()
		opts.Cond = cell.OperatingCondition{VoltageV: 1.0, TempC: 85}
		droopFW, droopErr = NewFramework(opts)
	})
	if droopErr != nil {
		t.Fatal(droopErr)
	}
	return droopFW
}

// TestErrorRateMonotoneInDroop is the voltage-axis property: at a fixed
// working period, dropping the supply (and heating the die) inflates every
// delay distribution, so the estimated error rate must not decrease.
func TestErrorRateMonotoneInDroop(t *testing.T) {
	nom := testFramework(t)
	droop := droopFramework(t)
	if math.Float64bits(nom.Machine.WorkingPeriodPs) != math.Float64bits(droop.Machine.WorkingPeriodPs) {
		t.Fatalf("working periods differ: %v vs %v",
			nom.Machine.WorkingPeriodPs, droop.Machine.WorkingPeriodPs)
	}
	ctx := context.Background()
	prog := isa.MustAssemble("sumloop", fwProg)
	spec := ProgramSpec{Prog: prog, Setup: fwSetup, Scenarios: 2}
	nomRep, err := nom.Analyze(ctx, "sumloop", spec)
	if err != nil {
		t.Fatal(err)
	}
	droopRep, err := droop.Analyze(ctx, "sumloop", spec)
	if err != nil {
		t.Fatal(err)
	}
	nomRate, droopRate := nomRep.Estimate.MeanErrorRate(), droopRep.Estimate.MeanErrorRate()
	if droopRate < nomRate-1e-12 {
		t.Errorf("error rate fell under droop: nominal %v, drooped %v", nomRate, droopRate)
	}
	// The engines must actually have shifted: mean gate delays inflate by
	// exactly the condition's delay factor (calibration is
	// condition-independent, so the scales match and the factor multiplies
	// on top).
	df := droop.Machine.Opts.Cond.DelayFactor()
	if !(df > 1) {
		t.Fatalf("DelayFactor = %v, want > 1 for droop+heat", df)
	}
	nomD := nom.Machine.AdderEngine.GateDelay(0)
	droopD := droop.Machine.AdderEngine.GateDelay(0)
	if math.Float64bits(droopD.Mean) != math.Float64bits(nomD.Mean*df) {
		t.Errorf("gate delay mean %v != nominal %v * factor %v", droopD.Mean, nomD.Mean, df)
	}
}

// TestBisectRatio checks the quantized-grid search against a brute-force
// scan of the same grid, plus the infeasible and validation paths.
func TestBisectRatio(t *testing.T) {
	ctx := context.Background()
	// A smooth monotone rate curve with a knee.
	rate := func(r float64) float64 { return math.Min(1, math.Pow(math.Max(0, r-1), 3)*2) }
	eval := func(_ context.Context, r float64) (float64, error) { return rate(r), nil }

	// lo and hi are runtime variables so the brute-force grid below folds
	// floats exactly the way BisectRatio's runtime arithmetic does (typed
	// constants would be subtracted in exact precision at compile time).
	lo, hi := 1.0, 1.4
	const steps = 64
	for _, target := range []float64{0, 1e-6, 1e-3, 0.01, 0.1, 1} {
		res, err := BisectRatio(ctx, lo, hi, steps, target, eval)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Fatalf("target %v: infeasible, but rate(lo) = %v", target, rate(lo))
		}
		// Brute force: the largest grid ratio meeting the target.
		want := lo
		for i := 0; i <= steps; i++ {
			r := lo + (hi-lo)*float64(i)/float64(steps)
			if i == steps {
				r = hi
			}
			if rate(r) <= target {
				want = r
			}
		}
		if math.Float64bits(res.Ratio) != math.Float64bits(want) {
			t.Errorf("target %v: ratio %v, brute force %v", target, res.Ratio, want)
		}
		if res.Evals > 10 { // 2 endpoints + ceil(log2(64)) probes
			t.Errorf("target %v: %d evals for %d steps", target, res.Evals, steps)
		}
	}

	// Infeasible: even the slow end misses the target.
	res, err := BisectRatio(ctx, 2, 3, 8, 0.5, eval)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Errorf("want infeasible, got %+v", res)
	}
	if res.Evals != 1 {
		t.Errorf("infeasible should cost exactly one eval, got %d", res.Evals)
	}

	for _, bad := range []struct {
		lo, hi float64
		steps  int
		target float64
	}{
		{0, 1, 4, 0.5},
		{1.2, 1.1, 4, 0.5},
		{1, 1.4, 0, 0.5},
		{1, 1.4, MaxBisectSteps + 1, 0.5},
		{1, 1.4, 4, -0.1},
		{1, 1.4, 4, 1.1},
		{1, 1.4, 4, math.NaN()},
	} {
		if _, err := BisectRatio(ctx, bad.lo, bad.hi, bad.steps, bad.target, eval); err == nil {
			t.Errorf("BisectRatio(%+v) should fail", bad)
		}
	}
}

// TestBisectRatioDeterministic pins the cache-state invariance argument: the
// probe sequence depends only on eval outcomes, so a cold run and a run
// against a pre-warmed memo produce bit-identical results and probes.
func TestBisectRatioDeterministic(t *testing.T) {
	ctx := context.Background()
	rate := func(r float64) float64 { return math.Min(1, math.Pow(math.Max(0, r-1), 3)*2) }

	run := func(warm map[uint64]float64) (BisectResult, []float64, map[uint64]float64) {
		memo := make(map[uint64]float64, len(warm))
		for k, v := range warm {
			memo[k] = v
		}
		var probes []float64
		eval := func(_ context.Context, r float64) (float64, error) {
			probes = append(probes, r)
			k := math.Float64bits(r)
			if v, ok := memo[k]; ok {
				return v, nil
			}
			v := rate(r)
			memo[k] = v
			return v, nil
		}
		res, err := BisectRatio(ctx, 1.0, 1.4, 128, 0.01, eval)
		if err != nil {
			t.Fatal(err)
		}
		return res, probes, memo
	}

	cold, coldProbes, memo := run(nil)
	warm, warmProbes, _ := run(memo)
	if cold != warm {
		t.Errorf("warm result %+v != cold %+v", warm, cold)
	}
	if fmt.Sprint(coldProbes) != fmt.Sprint(warmProbes) {
		t.Errorf("probe sequences differ:\ncold: %v\nwarm: %v", coldProbes, warmProbes)
	}
}

// TestBisectRatioCancel checks context errors surface instead of spinning.
func TestBisectRatioCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BisectRatio(ctx, 1, 1.4, 8, 0.5,
		func(context.Context, float64) (float64, error) { return 0, nil })
	if err == nil {
		t.Fatal("cancelled bisection should fail")
	}
}
