package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"
)

// BatchItem is one entry of an estimation suite: a named program spec plus
// its analysis options, all sharing the batch's framework.
type BatchItem struct {
	Name string
	Spec ProgramSpec
	Opts AnalyzeOpts
}

// Key returns the canonical content hash of the item's result-determining
// inputs. Two items with equal keys produce bit-identical reports, so a batch
// computes each key once and fans the report out (the analysis pipeline is
// deterministic for a fixed spec). The program is identified by Name — the
// same contract the estimation service uses — so a suite must not bind one
// name to two different programs. Scheduling knobs (Workers, backoff) are
// deliberately excluded: they change latency, not results.
func (it BatchItem) Key() string {
	h := sha256.New()
	fmt.Fprintf(h, "name=%s\nscenarios=%d\nscale=%d\nretries=%d\nmin=%d\nfailfast=%t\n",
		it.Name, it.Spec.Scenarios, it.Spec.ScaleToInsts,
		it.Opts.Retries, it.Opts.MinScenarios, it.Opts.FailFast)
	fmt.Fprintf(h, "mc=%d\nmcchunk=%d\nmcseed=%d\n",
		it.Opts.MCTrials, it.Opts.MCChunkSize, it.Opts.MCSeed)
	return hex.EncodeToString(h.Sum(nil))
}

// BatchItemResult is the outcome of one suite entry.
type BatchItemResult struct {
	// Index is the item's position in the submitted suite.
	Index int
	Name  string
	// Key is the item's canonical content hash (shared by deduped items).
	Key    string
	Report *Report
	Err    error
	// Dedup marks a result reused from an identical item earlier in the
	// suite rather than recomputed.
	Dedup bool
	// Elapsed is the computation time (zero for deduped items).
	Elapsed time.Duration
}

// BatchOpts tunes one EstimateBatch run.
type BatchOpts struct {
	// OnResult, when non-nil, streams each item's result as soon as it is
	// known (computation finished, reused, or failed), in suite order. It is
	// called synchronously from the batch loop.
	OnResult func(BatchItemResult)
	// StopOnError aborts the batch at the first failing item; the remaining
	// items carry that item's error context. Default is to keep going so one
	// bad benchmark does not sink a 30-entry sweep.
	StopOnError bool
}

// BatchResult is the outcome of a suite.
type BatchResult struct {
	// Items holds one result per submitted item, in suite order.
	Items []BatchItemResult
	// Computed is the number of distinct computations performed; Deduped is
	// how many items reused an earlier identical item's report.
	Computed int
	Deduped  int
	// Failed counts items that ended in error.
	Failed int
	// Elapsed is the wall-clock time of the whole batch.
	Elapsed time.Duration
}

// EstimateBatch runs a suite of scenarios against this one framework. Items
// run in suite order — each item's internal phases (scenario simulation,
// marginal solves, sharded Monte Carlo chunks) already fan out over the
// bounded worker pool, so batch-level parallelism would only oversubscribe
// it. Identical items (equal Key()) are computed once and fanned out, which
// is what makes a suite of near-duplicate sweep points cheap. Cancellation
// stops between items; completed results are kept and the remaining items
// carry the context error.
func (f *Framework) EstimateBatch(ctx context.Context, items []BatchItem, opts BatchOpts) (*BatchResult, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	res := &BatchResult{Items: make([]BatchItemResult, len(items))}
	byKey := map[string]int{} // key -> index of the item that computed it
	emit := func(r BatchItemResult) {
		res.Items[r.Index] = r
		if r.Err != nil {
			res.Failed++
		}
		if opts.OnResult != nil {
			opts.OnResult(r)
		}
	}
	for i, it := range items {
		r := BatchItemResult{Index: i, Name: it.Name, Key: it.Key()}
		if err := ctx.Err(); err != nil {
			r.Err = fmt.Errorf("core: batch aborted at item %d: %w", i, err)
			emit(r)
			continue
		}
		if first, ok := byKey[r.Key]; ok {
			prev := res.Items[first]
			r.Report, r.Err = prev.Report, prev.Err
			r.Dedup = true
			res.Deduped++
			emit(r)
			continue
		}
		t0 := time.Now()
		rep, err := f.AnalyzeWithOpts(ctx, it.Name, it.Spec, it.Opts)
		r.Report, r.Err = rep, err
		r.Elapsed = time.Since(t0)
		res.Computed++
		byKey[r.Key] = i
		emit(r)
		if err != nil && opts.StopOnError {
			for j := i + 1; j < len(items); j++ {
				rr := BatchItemResult{Index: j, Name: items[j].Name, Key: items[j].Key(),
					Err: fmt.Errorf("core: batch stopped by item %d (%s): %w", i, it.Name, err)}
				emit(rr)
			}
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
