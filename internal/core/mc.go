package core

import (
	"context"
	"math"

	"tsperr/internal/cfg"
	"tsperr/internal/cpu"
	"tsperr/internal/errormodel"
	"tsperr/internal/montecarlo"
)

// MCValidation is the outcome of a sharded Monte Carlo validation run: the
// Kolmogorov distance between the empirical error-count law and the analytic
// Equation (14) CDF, checked against the Section 5 approximation bounds (plus
// a DKW-style sampling-noise allowance). The moments come from the streaming
// per-chunk combiner, not a second pass over the counts.
type MCValidation struct {
	// Trials and Chunks describe the sharded run.
	Trials int    `json:"trials"`
	Chunks int    `json:"chunks"`
	Seed   uint64 `json:"seed"`
	// Mean and Std are the sampled error-count moments (streaming merge).
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	// LambdaRef is the reference estimate's mean error count over the
	// simulated (unscaled) program.
	LambdaRef float64 `json:"lambda_ref"`
	// MaxCDFDistance is the worst |empirical - analytic| over the count range.
	MaxCDFDistance float64 `json:"max_cdf_distance"`
	// Bound is DKLambda + DKCount of the reference estimate plus the
	// sampling-noise slack the comparison allows.
	Bound float64 `json:"bound"`
	// Within reports MaxCDFDistance <= Bound.
	Within bool `json:"within"`
	// UnscaledReference is set when ScaleToInsts scaled the estimate and the
	// comparison therefore rebuilt an unscaled reference estimate.
	UnscaledReference bool `json:"unscaled_reference,omitempty"`
}

// validateMC runs the sharded Monte Carlo validation against the surviving
// scenarios. ref mirrors the surviving scenarios with pre-scaling profiles
// substituted where Scale() was applied (see mcRef in AnalyzeWithOpts); the
// simulation executes the real program, so when scaling inflated the estimate
// an unscaled reference estimate is solved for the comparison, and otherwise
// the already computed estimate is reused.
func (f *Framework) validateMC(ctx context.Context, name string, spec ProgramSpec, cfgCPU cpu.Config, g *cfg.Graph, est *Estimate, ref []Scenario, unscaled, degraded bool, opts AnalyzeOpts) (*MCValidation, error) {
	refEst := est
	if unscaled {
		var err error
		refEst, err = NewEstimate(ctx, g, ref)
		if err != nil {
			return nil, err
		}
	}
	conds := make([]*errormodel.Conditionals, len(ref))
	for i := range ref {
		conds[i] = ref[i].Cond
	}
	mcSpec := montecarlo.Spec{
		Prog:      spec.Prog,
		Setup:     spec.Setup,
		Cond:      conds,
		Trials:    opts.MCTrials,
		Seed:      opts.MCSeed,
		CPUConfig: cfgCPU,
	}
	shard := montecarlo.ShardOpts{ChunkSize: opts.MCChunkSize, Workers: opts.Workers}
	run := montecarlo.RunSharded
	if opts.MCRun != nil {
		chunkSize := opts.MCChunkSize
		if chunkSize <= 0 {
			chunkSize = montecarlo.DefaultChunkSize
		}
		job := MCJob{
			Benchmark: name,
			Scenarios: spec.Scenarios,
			ChunkSize: chunkSize,
			// A degraded run's conditionals cover the survivors only and a
			// fault-injection schedule exists only in this process; a remote
			// rebuild would diverge, so such jobs must stay local.
			LocalOnly: degraded || opts.Inject != nil,
		}
		run = func(ctx context.Context, s montecarlo.Spec, o montecarlo.ShardOpts) (*montecarlo.ShardedResult, error) {
			job.Spec, job.Shard = s, o
			return opts.MCRun(ctx, job)
		}
	}
	res, err := run(ctx, mcSpec, shard)
	if err != nil {
		return nil, err
	}

	ecdf := res.CDF()
	worst := 0.0
	for k := 0.0; k < refEst.LambdaMean*4+10; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if d := math.Abs(ecdf(k) - refEst.ErrorCountCDF(k)); d > worst {
			worst = d
		}
	}
	// DKW-style noise allowance on top of the analytic bounds, matching the
	// montecarlo package's own validation tests.
	slack := 2.5 / math.Sqrt(float64(opts.MCTrials))
	bound := refEst.DKLambda + refEst.DKCount + slack
	return &MCValidation{
		Trials:            opts.MCTrials,
		Chunks:            res.Chunks,
		Seed:              opts.MCSeed,
		Mean:              res.Stats.Mean,
		Std:               res.Stats.Std(),
		LambdaRef:         refEst.LambdaMean,
		MaxCDFDistance:    worst,
		Bound:             bound,
		Within:            worst <= bound,
		UnscaledReference: unscaled,
	}, nil
}

// mcRefScenarios builds the reference scenario list for validateMC from the
// surviving scenarios and their retained pre-scaling profiles. The second
// return reports whether any substitution happened (i.e. the reference
// estimate differs from the report's).
func mcRefScenarios(surviving []Scenario, unscaledProfiles []*cfg.Profile) ([]Scenario, bool) {
	ref := make([]Scenario, len(surviving))
	copy(ref, surviving)
	any := false
	for i, pr := range unscaledProfiles {
		if pr != nil {
			ref[i].Profile = pr
			any = true
		}
	}
	return ref, any
}
