package core

import (
	"fmt"
	"sync"
	"time"

	"tsperr/internal/cfg"
	"tsperr/internal/cpu"
	"tsperr/internal/errormodel"
	"tsperr/internal/isa"
)

// Framework ties the whole flow of Figures 1 and 2 together: netlist
// generation and calibration, datapath model training, per-program control
// characterization, instrumented simulation over input scenarios, marginal
// probability computation, and the Section 5 statistics.
type Framework struct {
	Machine  *errormodel.Machine
	Datapath *errormodel.DatapathModel
}

// NewFramework builds and trains the machine-dependent parts (everything
// that does not depend on the analyzed program).
func NewFramework(opts errormodel.Options) (*Framework, error) {
	m, err := errormodel.NewMachine(opts)
	if err != nil {
		return nil, err
	}
	dp, err := m.TrainDatapath()
	if err != nil {
		return nil, err
	}
	return &Framework{Machine: m, Datapath: dp}, nil
}

// ProgramSpec describes one benchmark to analyze.
type ProgramSpec struct {
	// Prog is the assembled program.
	Prog *isa.Program
	// Setup seeds machine state (memory, registers) for a scenario; the
	// scenario index selects the input dataset.
	Setup func(c *cpu.CPU, scenario int) error
	// Scenarios is the number of input datasets simulated; their spread is
	// the data-variation axis of the error-rate distribution.
	Scenarios int
	// ScaleToInsts, when positive, scales each scenario's execution counts
	// so the total dynamic instruction count approximates this value,
	// emulating the paper's large MiBench datasets (the Section 5
	// statistics consume only the counts, so this is exact, not an
	// approximation, for count-linear workloads).
	ScaleToInsts int64
	// CPUConfig overrides the machine configuration; zero value uses
	// cpu.DefaultConfig().
	CPUConfig cpu.Config
}

// Report is one row of Table 2 plus everything needed to draw the program's
// Figure 3 curve.
type Report struct {
	Name         string
	Instructions int64
	BasicBlocks  int
	Training     time.Duration
	Simulation   time.Duration
	Estimate     *Estimate
	Graph        *cfg.Graph
	Scenarios    []Scenario
}

// Analyze runs the full flow on one program.
func (f *Framework) Analyze(name string, spec ProgramSpec) (*Report, error) {
	if spec.Scenarios <= 0 {
		return nil, fmt.Errorf("core: %s: need at least one scenario", name)
	}
	cfgCPU := spec.CPUConfig
	if cfgCPU.MemWords == 0 {
		cfgCPU = cpu.DefaultConfig()
	}
	g, err := cfg.Build(spec.Prog)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", name, err)
	}

	rep := &Report{Name: name, Graph: g, BasicBlocks: len(g.Blocks)}

	// ---- Simulation phase: instrumented runs over the input scenarios.
	// Scenarios are independent (each gets its own machine, profile, and
	// feature collector), so they run concurrently; results are
	// deterministic because each scenario's seeding depends only on its
	// index. ----
	simStart := time.Now()
	type scenarioRaw struct {
		profile *cfg.Profile
		feats   *errormodel.ScenarioFeatures
	}
	raws := make([]scenarioRaw, spec.Scenarios)
	errs := make([]error, spec.Scenarios)
	var wg sync.WaitGroup
	for s := 0; s < spec.Scenarios; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			machine, err := cpu.New(spec.Prog, cfgCPU)
			if err != nil {
				errs[s] = err
				return
			}
			if spec.Setup != nil {
				if err := spec.Setup(machine, s); err != nil {
					errs[s] = fmt.Errorf("core: %s scenario %d setup: %w", name, s, err)
					return
				}
			}
			pr := cfg.NewProfile(g)
			feats, fobs := errormodel.NewFeatureCollector(len(spec.Prog.Insts), f.Datapath)
			pobs := pr.Observer()
			if _, err := machine.Run(func(d *cpu.DynInst) { pobs(d); fobs(d) }); err != nil {
				errs[s] = fmt.Errorf("core: %s scenario %d: %w", name, s, err)
				return
			}
			if spec.ScaleToInsts > 0 && pr.InstCount > 0 {
				if k := spec.ScaleToInsts / pr.InstCount; k > 1 {
					pr.Scale(k)
				}
			}
			raws[s] = scenarioRaw{profile: pr, feats: feats}
		}(s)
	}
	wg.Wait()
	var totalInsts int64
	for s := range raws {
		if errs[s] != nil {
			return nil, errs[s]
		}
		totalInsts += raws[s].profile.InstCount
	}
	rep.Simulation = time.Since(simStart)
	rep.Instructions = totalInsts / int64(spec.Scenarios)

	// ---- Training phase: control-network DTS characterization (gate level,
	// once per basic block, as the paper emphasizes). ----
	trainStart := time.Now()
	cc, err := f.Machine.CharacterizeControl(g, raws[0].profile, raws[0].feats.Results)
	if err != nil {
		return nil, fmt.Errorf("core: %s: control characterization: %w", name, err)
	}
	rep.Training = time.Since(trainStart)

	// ---- Error model: conditionals and marginals per scenario. ----
	scenarios := make([]Scenario, spec.Scenarios)
	for s, raw := range raws {
		cond := errormodel.BuildConditionals(g, cc, raw.feats)
		scc := cfg.ComputeSCC(g, raw.profile)
		marg, err := errormodel.ComputeMarginals(g, raw.profile, scc, cond)
		if err != nil {
			return nil, fmt.Errorf("core: %s scenario %d: %w", name, s, err)
		}
		scenarios[s] = Scenario{Profile: raw.profile, Marginals: marg, Cond: cond, Features: raw.feats}
	}
	rep.Scenarios = scenarios

	est, err := NewEstimate(g, scenarios)
	if err != nil {
		return nil, err
	}
	rep.Estimate = est
	return rep, nil
}

// PerfModel returns the paper's performance model at this machine's
// operating point.
func (f *Framework) PerfModel() cpu.PerfModel {
	m := cpu.PaperPerfModel()
	m.FreqRatio = f.Machine.Opts.WorkingRatio
	return m
}
