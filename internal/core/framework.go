package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"tsperr/internal/cfg"
	"tsperr/internal/cpu"
	"tsperr/internal/errormodel"
	"tsperr/internal/isa"
	"tsperr/internal/montecarlo"
	"tsperr/internal/pool"
	"tsperr/internal/retry"
)

// Framework ties the whole flow of Figures 1 and 2 together: netlist
// generation and calibration, datapath model training, per-program control
// characterization, instrumented simulation over input scenarios, marginal
// probability computation, and the Section 5 statistics.
type Framework struct {
	Machine  *errormodel.Machine
	Datapath *errormodel.DatapathModel
}

// NewFramework builds and trains the machine-dependent parts (everything
// that does not depend on the analyzed program).
func NewFramework(opts errormodel.Options) (*Framework, error) {
	return NewFrameworkContext(context.Background(), opts)
}

// NewFrameworkContext is NewFramework under a context: cancellation aborts
// between (and inside) the calibration and training phases.
func NewFrameworkContext(ctx context.Context, opts errormodel.Options) (*Framework, error) {
	m, err := errormodel.NewMachineContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	dp, err := m.TrainDatapath(ctx)
	if err != nil {
		return nil, err
	}
	return &Framework{Machine: m, Datapath: dp}, nil
}

// ProgramSpec describes one benchmark to analyze.
type ProgramSpec struct {
	// Prog is the assembled program.
	Prog *isa.Program
	// Setup seeds machine state (memory, registers) for a scenario; the
	// scenario index selects the input dataset.
	Setup func(c *cpu.CPU, scenario int) error
	// Scenarios is the number of input datasets simulated; their spread is
	// the data-variation axis of the error-rate distribution.
	Scenarios int
	// ScaleToInsts, when positive, scales each scenario's execution counts
	// so the total dynamic instruction count approximates this value,
	// emulating the paper's large MiBench datasets (the Section 5
	// statistics consume only the counts, so this is exact, not an
	// approximation, for count-linear workloads).
	ScaleToInsts int64
	// CPUConfig overrides the machine configuration; zero value uses
	// cpu.DefaultConfig().
	CPUConfig cpu.Config
}

// InjectFn is a fault-injection hook evaluated at instrumented pipeline
// points (see internal/faultinject); a non-nil return is treated as that
// phase failing for that scenario, and a panic exercises worker recovery.
// Production runs leave it nil.
type InjectFn func(ctx context.Context, phase Phase, scenario int) error

// AnalyzeOpts tunes the resilience of one Analyze run. The zero value is
// strict: every scenario must succeed, transient failures are retried never,
// and the pool is sized to GOMAXPROCS.
type AnalyzeOpts struct {
	// Workers bounds the number of concurrently simulated scenarios;
	// 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Retries is how many times a failed scenario is re-attempted (on top
	// of the first try) before it counts as failed. Context cancellations
	// are never retried.
	Retries int
	// RetryBackoff is the base delay before the first retry, doubling per
	// attempt and capped at retryBackoffCap. Zero selects a small default;
	// negative disables backoff entirely (tests).
	RetryBackoff time.Duration
	// MinScenarios, when positive, lets a run proceed in degraded mode if
	// at least this many scenarios survive: the Report is computed from the
	// survivors, carries Degraded == true, and joins every scenario failure
	// in Failures. Zero keeps the strict all-must-succeed behavior.
	MinScenarios int
	// FailFast cancels in-flight and pending scenarios as soon as one
	// fails, trading diagnostics breadth for latency.
	FailFast bool
	// Inject is the fault-injection hook (nil in production).
	Inject InjectFn
	// MCTrials, when positive, appends a sharded Monte Carlo validation of
	// the analytic estimate to the report (Report.MC): MCTrials simulated
	// executions, spread round-robin over the surviving scenarios and split
	// into fixed-size chunks over the same bounded worker pool.
	MCTrials int
	// MCChunkSize is the trials-per-chunk of the validation run
	// (0 = montecarlo.DefaultChunkSize).
	MCChunkSize int
	// MCSeed seeds the validation run (the default 0 is a valid seed; the
	// run is deterministic either way).
	MCSeed uint64
	// MCRun, when non-nil, replaces the local sharded execution of the Monte
	// Carlo validation — the cluster coordinator injects its chunk fan-out
	// runner here. The runner must return results bit-identical to
	// montecarlo.RunSharded on the job's spec: distribution is a scheduling
	// choice, never a semantic one. Jobs with LocalOnly set must not leave
	// the process.
	MCRun MCRunner
}

// MCRunner executes one Monte Carlo validation job; the default (nil) runner
// is montecarlo.RunSharded on the job's spec and shard options.
type MCRunner func(ctx context.Context, job MCJob) (*montecarlo.ShardedResult, error)

// MCJob is everything an alternative Monte Carlo runner needs: the resolved
// local spec for any chunks it executes in-process, plus the analytic
// context (benchmark name, requested scenario count, model-independent seed
// and budget) a remote worker needs to rebuild the identical spec on its
// side.
type MCJob struct {
	// Benchmark is the canonical benchmark name the analytic run resolved.
	Benchmark string
	// Scenarios is the scenario fan-out the spec's conditionals were derived
	// from.
	Scenarios int
	// ChunkSize is the resolved trials-per-chunk split (never zero).
	ChunkSize int
	// LocalOnly marks jobs distribution must not touch: a degraded analytic
	// run (a remote rebuild would derive conditionals from the full scenario
	// set, not the survivors) or a fault-injected one (the injection schedule
	// exists only in this process).
	LocalOnly bool
	// Spec is the fully resolved experiment; Spec.Trials and Spec.Seed carry
	// the budget and seed.
	Spec montecarlo.Spec
	// Shard is the local shard configuration (chunk size, worker bound).
	Shard montecarlo.ShardOpts
}

const (
	defaultRetryBackoff = 2 * time.Millisecond
	retryBackoffCap     = 250 * time.Millisecond
)

// Report is one row of Table 2 plus everything needed to draw the program's
// Figure 3 curve.
type Report struct {
	Name         string
	Instructions int64
	BasicBlocks  int
	Training     time.Duration
	Simulation   time.Duration
	Estimate     *Estimate
	Graph        *cfg.Graph
	// Scenarios holds the scenarios that survived; in a degraded run this
	// is fewer than the ProgramSpec requested.
	Scenarios []Scenario
	// Degraded reports that some scenarios failed but AnalyzeOpts
	// permitted the run to proceed on the survivors.
	Degraded bool
	// FailedScenarios is how many scenarios were dropped from the estimate.
	FailedScenarios int
	// Failures joins the ScenarioError of every dropped scenario (nil for
	// a clean run).
	Failures error
	// MC carries the Monte Carlo validation of the estimate when
	// AnalyzeOpts.MCTrials requested one (nil otherwise).
	MC *MCValidation
	// Tier is TierExact or TierSurrogate on reports produced by the two-tier
	// service; the analysis pipeline itself leaves it empty (read as exact)
	// so pre-surrogate wire bytes are unchanged.
	Tier string
	// Surrogate carries the fast-tier prediction metadata on surrogate-tier
	// reports (nil on exact reports).
	Surrogate *SurrogateMeta

	// scenarioCount and wireFailures preserve the wire-schema scenario count
	// and flattened failure strings across a JSON round trip: a coordinator
	// proxying a worker's report cannot reconstruct the Scenario values or the
	// joined error tree, but its re-marshal must still emit the worker's exact
	// bytes. MarshalJSON falls back to them when the rich fields are empty.
	scenarioCount int
	wireFailures  []string
}

// scenarioRaw is the output of one scenario's instrumented simulation.
type scenarioRaw struct {
	profile *cfg.Profile
	feats   *errormodel.ScenarioFeatures
	// unscaled is the pre-Scale() profile, retained only when a Monte Carlo
	// validation was requested on a scaled run: the simulation executes the
	// real (unscaled) program, so its reference estimate must too.
	unscaled *cfg.Profile
}

// Analyze runs the full flow on one program with strict failure semantics
// (any scenario failure aborts). It honors ctx cancellation and deadlines
// between pipeline phases and inside the scenario simulations.
func (f *Framework) Analyze(ctx context.Context, name string, spec ProgramSpec) (*Report, error) {
	return f.AnalyzeWithOpts(ctx, name, spec, AnalyzeOpts{})
}

// AnalyzeWithOpts is Analyze with explicit resilience options: bounded
// worker-pool concurrency, per-scenario retries with backoff, panic
// recovery, fail-fast, and graceful degradation onto surviving scenarios.
func (f *Framework) AnalyzeWithOpts(ctx context.Context, name string, spec ProgramSpec, opts AnalyzeOpts) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if spec.Scenarios <= 0 {
		return nil, fmt.Errorf("core: %s: need at least one scenario", name)
	}
	cfgCPU := spec.CPUConfig
	if cfgCPU.MemWords == 0 {
		cfgCPU = cpu.DefaultConfig()
	}
	if err := ctx.Err(); err != nil {
		return nil, &ScenarioError{Benchmark: name, Scenario: -1, Phase: PhaseBuild, Err: err}
	}
	g, err := cfg.Build(spec.Prog)
	if err != nil {
		return nil, &ScenarioError{Benchmark: name, Scenario: -1, Phase: PhaseBuild, Err: err}
	}

	rep := &Report{Name: name, Graph: g, BasicBlocks: len(g.Blocks)}

	// ---- Simulation phase: instrumented runs over the input scenarios.
	// Scenarios are independent (each gets its own machine, profile, and
	// feature collector), so they run on a bounded worker pool; results are
	// deterministic because each scenario's seeding depends only on its
	// index. Workers recover panics into typed errors and retry transient
	// failures, and every scenario's failure is collected rather than only
	// the first. ----
	simStart := time.Now()
	raws := make([]*scenarioRaw, spec.Scenarios)
	errs := make([]error, spec.Scenarios)
	keepUnscaled := opts.MCTrials > 0
	f.runPool(ctx, spec.Scenarios, opts, errs, func(poolCtx context.Context, s int) error {
		return f.withRetry(poolCtx, opts, func(attempt int) *ScenarioError {
			raw, serr := f.simScenario(poolCtx, name, spec, cfgCPU, g, s, opts.Inject, keepUnscaled)
			if serr != nil {
				serr.Attempts = attempt
				return serr
			}
			raws[s] = raw
			return nil
		})
	})
	rep.Simulation = time.Since(simStart)
	if err := f.gate(ctx, name, spec.Scenarios, errs, opts); err != nil {
		return nil, err
	}

	first := -1
	var totalInsts int64
	survivors := 0
	for s := range raws {
		if errs[s] != nil || raws[s] == nil {
			continue
		}
		if first < 0 {
			first = s
		}
		survivors++
		totalInsts += raws[s].profile.InstCount
	}
	rep.Instructions = totalInsts / int64(survivors)

	// ---- Training phase: control-network DTS characterization (gate level,
	// once per basic block, as the paper emphasizes). ----
	if err := ctx.Err(); err != nil {
		return nil, &ScenarioError{Benchmark: name, Scenario: -1, Phase: PhaseControl, Err: err}
	}
	trainStart := time.Now()
	cc, err := protect(func() (*errormodel.ControlChar, error) {
		return f.Machine.CharacterizeControl(ctx, g, raws[first].profile, raws[first].feats.Results)
	})
	if err != nil {
		return nil, &ScenarioError{Benchmark: name, Scenario: -1, Phase: PhaseControl, Err: err}
	}
	rep.Training = time.Since(trainStart)

	// ---- Error model: conditionals and marginals per surviving scenario,
	// again on the bounded pool (the per-SCC linear solves dominate). ----
	scenarios := make([]*Scenario, spec.Scenarios)
	f.runPool(ctx, spec.Scenarios, opts, errs, func(poolCtx context.Context, s int) error {
		if errs[s] != nil || raws[s] == nil {
			return nil // already failed in simulation; keep the original error
		}
		return f.withRetry(poolCtx, opts, func(attempt int) *ScenarioError {
			sc, serr := f.marginalScenario(poolCtx, name, g, cc, raws[s], s, opts.Inject)
			if serr != nil {
				serr.Attempts = attempt
				return serr
			}
			scenarios[s] = sc
			return nil
		})
	})
	if err := f.gate(ctx, name, spec.Scenarios, errs, opts); err != nil {
		return nil, err
	}

	surviving := make([]Scenario, 0, spec.Scenarios)
	// unscaledProfiles mirrors surviving with each scenario's pre-scaling
	// profile (nil where Scale() did not run), so a requested Monte Carlo
	// validation compares against an estimate of the program that is actually
	// simulated.
	var unscaledProfiles []*cfg.Profile
	var failures []error
	for s := range scenarios {
		if errs[s] != nil {
			failures = append(failures, errs[s])
			continue
		}
		surviving = append(surviving, *scenarios[s])
		if keepUnscaled {
			unscaledProfiles = append(unscaledProfiles, raws[s].unscaled)
		}
	}
	rep.Scenarios = surviving
	if len(failures) > 0 {
		rep.Degraded = true
		rep.FailedScenarios = len(failures)
		rep.Failures = errors.Join(failures...)
		// Recompute the per-scenario instruction average over survivors only.
		totalInsts = 0
		for _, sc := range surviving {
			totalInsts += sc.Profile.InstCount
		}
		rep.Instructions = totalInsts / int64(len(surviving))
	}

	if err := ctx.Err(); err != nil {
		return nil, &ScenarioError{Benchmark: name, Scenario: -1, Phase: PhaseEstimate, Err: err}
	}
	est, err := NewEstimate(ctx, g, surviving)
	if err != nil {
		return nil, &ScenarioError{Benchmark: name, Scenario: -1, Phase: PhaseEstimate, Err: err}
	}
	rep.Estimate = est

	if opts.MCTrials > 0 {
		ref, unscaled := mcRefScenarios(surviving, unscaledProfiles)
		mc, err := f.validateMC(ctx, name, spec, cfgCPU, g, est, ref, unscaled, rep.Degraded, opts)
		if err != nil {
			return nil, &ScenarioError{Benchmark: name, Scenario: -1, Phase: PhaseMonteCarlo, Err: err}
		}
		rep.MC = mc
	}
	return rep, nil
}

// simScenario runs one scenario's instrumented simulation. All failures come
// back as a phase-tagged ScenarioError; panics are recovered by the caller's
// retry wrapper via protectScenario.
func (f *Framework) simScenario(ctx context.Context, name string, spec ProgramSpec, cfgCPU cpu.Config, g *cfg.Graph, s int, inject InjectFn, keepUnscaled bool) (raw *scenarioRaw, serr *ScenarioError) {
	phase := PhaseSetup
	defer recoverScenario(name, s, &phase, &serr)
	fail := func(err error) *ScenarioError {
		return &ScenarioError{Benchmark: name, Scenario: s, Phase: phase, Err: err}
	}
	if err := ctx.Err(); err != nil {
		return nil, fail(err)
	}
	if inject != nil {
		if err := inject(ctx, phase, s); err != nil {
			return nil, fail(err)
		}
	}
	// The error-rate pipeline consumes only the depth features; skip the
	// per-instruction toggle population counts.
	cfgCPU.SkipToggles = true
	machine, err := cpu.New(spec.Prog, cfgCPU)
	if err != nil {
		return nil, fail(err)
	}
	defer machine.Release()
	if spec.Setup != nil {
		if err := spec.Setup(machine, s); err != nil {
			return nil, fail(err)
		}
	}
	phase = PhaseSimulation
	if inject != nil {
		if err := inject(ctx, phase, s); err != nil {
			return nil, fail(err)
		}
	}
	pr := cfg.NewProfile(g)
	feats, _ := errormodel.NewFeatureCollector(len(spec.Prog.Insts), f.Datapath)
	// The fused batch observer hands each retirement batch to the profile and
	// feature accumulators as slices, so their per-instruction work runs as
	// plain loop iterations instead of indirect calls per retirement.
	st, err := machine.RunBatched(ctx, func(ds []cpu.DynInst) { pr.ObserveBatch(ds); feats.ObserveBatch(ds) })
	if err != nil {
		return nil, fail(err)
	}
	// Direct Observe callers own InstCount; the observer fires exactly once
	// per retired instruction, so the run's count is the profile's.
	pr.InstCount = st.Instructions
	var unscaled *cfg.Profile
	if spec.ScaleToInsts > 0 && pr.InstCount > 0 {
		if k := spec.ScaleToInsts / pr.InstCount; k > 1 {
			if keepUnscaled {
				unscaled = pr.Clone()
			}
			pr.Scale(k)
		}
	}
	return &scenarioRaw{profile: pr, feats: feats, unscaled: unscaled}, nil
}

// marginalScenario solves one scenario's conditionals and marginals.
func (f *Framework) marginalScenario(ctx context.Context, name string, g *cfg.Graph, cc *errormodel.ControlChar, raw *scenarioRaw, s int, inject InjectFn) (sc *Scenario, serr *ScenarioError) {
	phase := PhaseMarginals
	defer recoverScenario(name, s, &phase, &serr)
	fail := func(err error) *ScenarioError {
		return &ScenarioError{Benchmark: name, Scenario: s, Phase: phase, Err: err}
	}
	if err := ctx.Err(); err != nil {
		return nil, fail(err)
	}
	if inject != nil {
		if err := inject(ctx, phase, s); err != nil {
			return nil, fail(err)
		}
	}
	cond := errormodel.BuildConditionals(g, cc, raw.feats)
	scc := cfg.ComputeSCC(g, raw.profile)
	marg, err := errormodel.ComputeMarginals(g, raw.profile, scc, cond)
	if err != nil {
		return nil, fail(err)
	}
	return &Scenario{Profile: raw.profile, Marginals: marg, Cond: cond, Features: raw.feats}, nil
}

// recoverScenario converts a scenario panic into a phase-tagged
// ScenarioError carrying the stack, so one bad scenario cannot kill the
// process.
func recoverScenario(name string, s int, phase *Phase, serr **ScenarioError) {
	if r := recover(); r != nil {
		*serr = &ScenarioError{
			Benchmark: name, Scenario: s, Phase: *phase,
			Err: &PanicError{Value: r, Stack: debug.Stack()},
		}
	}
}

// protect runs a non-scenario pipeline step, converting a panic into an
// error.
func protect[T any](fn func() (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// runPool executes work(s) for every scenario index on the shared bounded
// worker pool (internal/pool), recording failures into errs. With FailFast
// set, the first failure cancels the pool context so in-flight simulations
// abort at their next context poll and pending scenarios are marked
// cancelled. Scenario panics are already converted to errors by the per-phase
// recover wrappers, so the pool's own panic recovery is a second line of
// defense only.
func (f *Framework) runPool(ctx context.Context, n int, opts AnalyzeOpts, errs []error, work func(context.Context, int) error) {
	pool.Run(ctx, n, opts.Workers, opts.FailFast, errs, work)
}

// retryPolicy maps AnalyzeOpts onto the shared backoff helper: zero
// RetryBackoff selects the small default, negative disables delays entirely
// (tests), and every schedule clamps at retryBackoffCap. Scenario retries
// stay un-jittered — the delays are per-scenario and never synchronized, and
// a jitter draw would make run timing seed-dependent for no decorrelation
// benefit.
func retryPolicy(opts AnalyzeOpts) retry.Policy {
	base := opts.RetryBackoff
	switch {
	case base < 0:
		base = 0
	case base == 0:
		base = defaultRetryBackoff
	}
	return retry.Policy{Base: base, Cap: retryBackoffCap}
}

// withRetry runs one scenario attempt, retrying transient failures up to
// opts.Retries times with the shared capped-exponential backoff
// (internal/retry). Context cancellations and deadline expiries are terminal
// immediately, including when they interrupt the backoff sleep itself.
func (f *Framework) withRetry(ctx context.Context, opts AnalyzeOpts, attempt func(n int) *ScenarioError) error {
	return retry.Do(ctx, retryPolicy(opts), 0, opts.Retries+1, func(n int) error {
		// Return the typed error through a plain error variable only when
		// non-nil: a nil *ScenarioError stuffed into an error interface would
		// read as a failure.
		if serr := attempt(n); serr != nil {
			return serr
		}
		return nil
	})
}

// gate applies the failure policy between pipeline phases: a clean pass
// proceeds, a cancelled context always aborts, and otherwise the run
// continues only when the surviving-scenario count satisfies
// opts.MinScenarios (strict mode, MinScenarios == 0, tolerates nothing).
// On abort every collected scenario failure is joined, so the caller sees
// all failing scenarios, not just the first.
func (f *Framework) gate(ctx context.Context, name string, n int, errs []error, opts AnalyzeOpts) error {
	var failures []error
	for _, e := range errs {
		if e != nil {
			failures = append(failures, e)
		}
	}
	if err := ctx.Err(); err != nil {
		failures = append(failures,
			&ScenarioError{Benchmark: name, Scenario: -1, Phase: PhaseSimulation, Err: err})
		return errors.Join(failures...)
	}
	if len(failures) == 0 {
		return nil
	}
	survivors := n - len(failures)
	if opts.MinScenarios > 0 && survivors >= opts.MinScenarios {
		return nil // degrade gracefully; the report will carry the failures
	}
	return errors.Join(failures...)
}

// PerfModel returns the paper's performance model at this machine's
// operating point.
func (f *Framework) PerfModel() cpu.PerfModel {
	m := cpu.PaperPerfModel()
	m.FreqRatio = f.Machine.Opts.WorkingRatio
	return m
}
