package core

import (
	"context"

	"tsperr/internal/cell"
	"tsperr/internal/errormodel"
	"tsperr/internal/modelcache"
)

// NewFrameworkCached is NewFramework backed by the persistent model cache in
// dir. On a warm start (a valid snapshot exists for these options and the
// current cell library) the expensive once-per-design work — SSTA calibration
// of every unit and datapath training — is skipped: the machine rebuilds
// from the cached delay scales and the trained tables restore directly. On a
// miss the framework builds normally and its results are published to the
// cache for the next run; a failed cache write is deliberately non-fatal
// (the framework is still correct, the next run just stays cold).
//
// The returned warm flag reports whether the cache was hit.
func NewFrameworkCached(opts errormodel.Options, dir string) (*Framework, bool, error) {
	return NewFrameworkCachedContext(context.Background(), opts, dir)
}

// NewFrameworkCachedContext is NewFrameworkCached with cancellable rebuild
// work (the warm path is cheap; ctx matters on cache misses).
func NewFrameworkCachedContext(ctx context.Context, opts errormodel.Options, dir string) (fw *Framework, warm bool, err error) {
	key := modelcache.Key(opts, cell.Fingerprint())
	if snap, ok := modelcache.Load(dir, key); ok {
		m, merr := errormodel.NewMachineWithScalesContext(ctx, opts, snap.Scales)
		if merr == nil {
			return &Framework{Machine: m, Datapath: snap.Datapath}, true, nil
		}
		// A snapshot that validates but cannot rebuild a machine (e.g. a unit
		// was renamed without a schema bump) falls through to a full rebuild.
	}
	fw, err = NewFrameworkContext(ctx, opts)
	if err != nil {
		return nil, false, err
	}
	_ = modelcache.Save(dir, key, &modelcache.Snapshot{
		Scales:   fw.Machine.Scales(),
		Datapath: fw.Datapath,
	})
	return fw, false, nil
}
