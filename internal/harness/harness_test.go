package harness

import (
	"context"
	"errors"
	"strings"
	"testing"

	"tsperr/internal/core"
	"tsperr/internal/errormodel"
	"tsperr/internal/faultinject"
	"tsperr/internal/mibench"
)

func TestAnalyzeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full framework run")
	}
	rep, err := Analyze(context.Background(), "patricia", 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "patricia" {
		t.Errorf("name = %q", rep.Name)
	}
	e := rep.Estimate
	if e.MeanErrorRate() <= 0 || e.MeanErrorRate() > 0.05 {
		t.Errorf("mean error rate implausible: %v", e.MeanErrorRate())
	}
	if e.LambdaMean <= 0 {
		t.Error("lambda must be positive")
	}
	// The scaled instruction count should be near the paper's target.
	b, _ := mibench.ByName("patricia")
	if rep.Instructions < b.ScaleTo/2 || rep.Instructions > b.ScaleTo {
		t.Errorf("instructions = %d, target %d", rep.Instructions, b.ScaleTo)
	}
}

func TestAnalyzeUnknown(t *testing.T) {
	if _, err := Analyze(context.Background(), "nonesuch", 2); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestTable2Formatting(t *testing.T) {
	if testing.Short() {
		t.Skip("full framework run")
	}
	rep, err := Analyze(context.Background(), "patricia", 2)
	if err != nil {
		t.Fatal(err)
	}
	head := Table2Header()
	row := Table2Row(rep)
	for _, col := range []string{"Benchmark", "Instructions", "dK"} {
		if !strings.Contains(head, col) {
			t.Errorf("header missing %q", col)
		}
	}
	if !strings.Contains(row, "patricia") {
		t.Errorf("row missing name: %q", row)
	}
}

func TestFigure3SeriesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full framework run")
	}
	f, err := SharedFramework()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(context.Background(), "patricia", 2)
	if err != nil {
		t.Fatal(err)
	}
	pts := Figure3Series(rep, f.PerfModel(), 1.6, 17)
	if len(pts) != 17 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].RatePct != 0 || pts[len(pts)-1].RatePct != 1.6 {
		t.Error("axis endpoints wrong")
	}
	for i, p := range pts {
		if p.Lo > p.CDF || p.CDF > p.Hi {
			t.Fatalf("bounds do not bracket at %d", i)
		}
		if i > 0 {
			if p.CDF < pts[i-1].CDF-1e-9 {
				t.Fatal("CDF not monotone")
			}
			if p.ImprovementPct > pts[i-1].ImprovementPct {
				t.Fatal("performance should fall as error rate rises")
			}
		}
	}
	text := RenderFigure3(rep, f.PerfModel(), 1.6, 5)
	if !strings.Contains(text, "patricia") || !strings.Contains(text, "rate(%)") {
		t.Errorf("render missing content:\n%s", text)
	}
}

func TestSpecForDefaults(t *testing.T) {
	b, err := mibench.ByName("bitcount")
	if err != nil {
		t.Fatal(err)
	}
	spec := SpecFor(b, 0)
	if spec.Scenarios != DefaultScenarios {
		t.Errorf("scenarios = %d", spec.Scenarios)
	}
	if spec.ScaleToInsts != b.ScaleTo || spec.Prog != b.Prog {
		t.Error("spec fields wrong")
	}
}

// A degraded report must be visibly flagged in its Table 2 row, and the
// failure detail must name every dropped scenario with its phase tag.
func TestDegradedRowAndFailureDetail(t *testing.T) {
	inj := faultinject.New(1, faultinject.FailAlways(faultinject.Setup, 1))
	rep, err := AnalyzeWithOpts(context.Background(), "stringsearch", 3, core.AnalyzeOpts{
		MinScenarios: 2,
		RetryBackoff: -1,
		Inject: func(ctx context.Context, ph core.Phase, s int) error {
			return inj.Fire(ctx, faultinject.Point(ph), s)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatal("run should be degraded")
	}
	row := Table2Row(rep)
	if !strings.Contains(row, "DEGRADED(1/3 scenarios failed)") {
		t.Errorf("degraded flag missing from row: %q", row)
	}
	detail := FailureDetail(rep.Failures)
	if !strings.Contains(detail, "scenario 1 [setup]") {
		t.Errorf("detail missing scenario tag: %q", detail)
	}
}

// swapBuildHooks snapshots and clears the shared-framework state so a test
// can substitute build hooks, restoring everything on cleanup.
func swapBuildHooks(t *testing.T) {
	t.Helper()
	fwMu.Lock()
	origFw, origEnabled, origDir := fw, cacheEnabled, cacheDir
	fw = nil
	fwMu.Unlock()
	origBuild, origCached := buildFramework, buildFrameworkCached
	t.Cleanup(func() {
		buildFramework, buildFrameworkCached = origBuild, origCached
		fwMu.Lock()
		fw, cacheEnabled, cacheDir = origFw, origEnabled, origDir
		fwMu.Unlock()
	})
}

// Regression: SharedFramework used a sync.Once, so a single failed build
// (e.g. a transient resource problem) was latched and replayed to every
// later caller. A failure must leave the slot empty so the next call
// retries; a success must be latched.
func TestSharedFrameworkRetriesAfterFailure(t *testing.T) {
	swapBuildHooks(t)
	calls := 0
	sentinel := &core.Framework{}
	buildFramework = func(errormodel.Options) (*core.Framework, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient build failure")
		}
		return sentinel, nil
	}
	if _, err := SharedFramework(); err == nil {
		t.Fatal("first build should fail")
	}
	f, err := SharedFramework()
	if err != nil {
		t.Fatalf("second call should retry the build: %v", err)
	}
	if f != sentinel || calls != 2 {
		t.Errorf("framework %p after %d build calls", f, calls)
	}
	if f2, err := SharedFramework(); err != nil || f2 != sentinel || calls != 2 {
		t.Errorf("success should be latched without rebuilding (calls=%d)", calls)
	}
}

func TestSharedFrameworkUsesModelCache(t *testing.T) {
	swapBuildHooks(t)
	dir := t.TempDir()
	sentinel := &core.Framework{}
	var gotDir string
	buildFrameworkCached = func(_ errormodel.Options, d string) (*core.Framework, bool, error) {
		gotDir = d
		return sentinel, true, nil
	}
	buildFramework = func(errormodel.Options) (*core.Framework, error) {
		t.Error("cache-enabled build must go through the cached constructor")
		return nil, errors.New("wrong path")
	}
	SetModelCache(true, dir)
	f, err := SharedFramework()
	if err != nil {
		t.Fatal(err)
	}
	if f != sentinel || gotDir != dir {
		t.Errorf("framework %p via dir %q, want %q", f, gotDir, dir)
	}
}

func TestFailureDetailNilAndPlain(t *testing.T) {
	if FailureDetail(nil) != "" {
		t.Error("nil error should render empty")
	}
	if got := FailureDetail(errors.New("boom")); got != "boom" {
		t.Errorf("plain error should pass through, got %q", got)
	}
}
