// Package harness wires the framework to the Table 2 benchmarks and formats
// the paper's tables and figures. The commands under cmd/ and the repository
// benchmarks are thin wrappers over this package.
package harness

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"tsperr/internal/core"
	"tsperr/internal/cpu"
	"tsperr/internal/errormodel"
	"tsperr/internal/mibench"
	"tsperr/internal/modelcache"
)

// DefaultScenarios is the number of input datasets per benchmark; their
// spread is the data-variation axis of Figure 3.
const DefaultScenarios = 8

var (
	fwMu sync.Mutex
	// fw is the lazily built shared framework; guarded by fwMu.
	fw *core.Framework

	// Model-cache policy for SharedFramework. Disabled by default so
	// library consumers (and `go test ./...`) never touch the filesystem;
	// the CLI commands opt in via SetModelCache before first use.
	cacheEnabled bool   // guarded by fwMu
	cacheDir     string // guarded by fwMu
)

// Build hooks, substituted by tests to exercise failure and retry semantics.
var (
	buildFramework       = core.NewFramework
	buildFrameworkCached = core.NewFrameworkCached
)

// SetModelCache configures whether SharedFramework consults the persistent
// model cache and where; dir == "" selects modelcache.DefaultDir. It only
// affects frameworks built after the call, so commands invoke it before
// their first SharedFramework use.
func SetModelCache(enabled bool, dir string) {
	fwMu.Lock()
	defer fwMu.Unlock()
	cacheEnabled = enabled
	cacheDir = dir
}

// SharedFramework builds (once) the calibrated machine and trained datapath
// model shared by all benchmarks — the machine-dependent "training" the
// paper performs once per design. Concurrent callers during the build wait
// for the single in-flight attempt; unlike a sync.Once, a failed build is
// not latched, so a later call retries instead of replaying the old error
// forever.
func SharedFramework() (*core.Framework, error) {
	fwMu.Lock()
	defer fwMu.Unlock()
	if fw != nil {
		return fw, nil
	}
	opts := errormodel.DefaultOptions()
	opts.Cond = sharedCond
	if cacheEnabled {
		dir := cacheDir
		if dir == "" {
			d, err := modelcache.DefaultDir()
			if err == nil {
				dir = d
			}
			// With no usable cache dir, fall through to an uncached build.
		}
		if dir != "" {
			f, _, err := buildFrameworkCached(opts, dir)
			if err != nil {
				return nil, err
			}
			fw = f
			return fw, nil
		}
	}
	f, err := buildFramework(opts)
	if err != nil {
		return nil, err
	}
	fw = f
	return fw, nil
}

// SpecFor converts a benchmark into an analyzable program spec.
func SpecFor(b mibench.Benchmark, scenarios int) core.ProgramSpec {
	if scenarios <= 0 {
		scenarios = DefaultScenarios
	}
	return core.ProgramSpec{
		Prog:         b.Prog,
		Setup:        b.Setup,
		Scenarios:    scenarios,
		ScaleToInsts: b.ScaleTo,
	}
}

// Analyze runs the full framework on one named benchmark with strict
// failure semantics, honoring ctx cancellation and deadlines.
func Analyze(ctx context.Context, name string, scenarios int) (*core.Report, error) {
	return AnalyzeWithOpts(ctx, name, scenarios, core.AnalyzeOpts{})
}

// AnalyzeWithOpts is Analyze with explicit resilience options (worker
// bound, retries, fail-fast, graceful degradation via MinScenarios).
func AnalyzeWithOpts(ctx context.Context, name string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
	b, err := mibench.ByName(name)
	if err != nil {
		return nil, err
	}
	f, err := SharedFramework()
	if err != nil {
		return nil, err
	}
	return f.AnalyzeWithOpts(ctx, b.Name, SpecFor(b, scenarios), opts)
}

// Table2Header returns the header of the Table 2 reproduction.
func Table2Header() string {
	return fmt.Sprintf("%-13s %15s %7s %10s %10s %8s %8s %8s %8s",
		"Benchmark", "Instructions", "Blocks", "Train(s)", "Sim(s)",
		"Mean(%)", "SD(%)", "dK(l)", "dK(R)")
}

// Table2Row formats one report as a Table 2 row. A degraded run (some
// scenarios dropped, survivors above the MinScenarios floor) is flagged at
// the end of the row so the condition is visible in every table output.
func Table2Row(rep *core.Report) string {
	e := rep.Estimate
	row := fmt.Sprintf("%-13s %15d %7d %10.2f %10.2f %8.3f %8.3f %8.3f %8.3f",
		rep.Name, rep.Instructions, rep.BasicBlocks,
		rep.Training.Seconds(), rep.Simulation.Seconds(),
		100*e.MeanErrorRate(), 100*e.StdErrorRate(),
		e.DKLambda, e.DKCount)
	if rep.Degraded {
		row += fmt.Sprintf("  DEGRADED(%d/%d scenarios failed)",
			rep.FailedScenarios, rep.FailedScenarios+len(rep.Scenarios))
	}
	return row
}

// FailureDetail renders the per-scenario breakdown of an Analyze error or a
// degraded report's Failures: one line per failing scenario with its phase
// tag, ready for CLI stderr. It returns "" for nil.
func FailureDetail(err error) string {
	if err == nil {
		return ""
	}
	ses := core.ScenarioErrors(err)
	if len(ses) == 0 {
		return err.Error()
	}
	var sb strings.Builder
	for i, se := range ses {
		if i > 0 {
			sb.WriteByte('\n')
		}
		if se.Scenario >= 0 {
			fmt.Fprintf(&sb, "scenario %d [%s]: %v", se.Scenario, se.Phase, se.Err)
		} else {
			fmt.Fprintf(&sb, "[%s]: %v", se.Phase, se.Err)
		}
		if se.Attempts > 1 {
			fmt.Fprintf(&sb, " (after %d attempts)", se.Attempts)
		}
	}
	return sb.String()
}

// Figure3Point is one sample of a benchmark's error-rate CDF curve with its
// Section 6.4 bounds and the performance-improvement top-axis label.
type Figure3Point struct {
	RatePct        float64
	CDF, Lo, Hi    float64
	ImprovementPct float64
}

// Figure3Series samples the CDF over [0, maxRatePct] with the given number
// of points.
func Figure3Series(rep *core.Report, pm cpu.PerfModel, maxRatePct float64, points int) []Figure3Point {
	if points < 2 {
		points = 2
	}
	out := make([]Figure3Point, points)
	for i := range out {
		pct := maxRatePct * float64(i) / float64(points-1)
		rate := pct / 100
		c := rep.Estimate.ErrorRateCDF(rate)
		lo, hi := rep.Estimate.ErrorRateCDFBounds(rate)
		out[i] = Figure3Point{
			RatePct:        pct,
			CDF:            c,
			Lo:             lo,
			Hi:             hi,
			ImprovementPct: pm.ImprovementPct(rate),
		}
	}
	return out
}

// RenderFigure3 renders a benchmark's CDF curve as text (estimate with
// bracketing bounds), the textual stand-in for one panel of Figure 3.
func RenderFigure3(rep *core.Report, pm cpu.PerfModel, maxRatePct float64, points int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (mean %.3f%%, sd %.3f%%)\n", rep.Name,
		100*rep.Estimate.MeanErrorRate(), 100*rep.Estimate.StdErrorRate())
	fmt.Fprintf(&sb, "%10s %10s %8s %8s %8s  %s\n",
		"rate(%)", "perf(%)", "lower", "cdf", "upper", "")
	for _, p := range Figure3Series(rep, pm, maxRatePct, points) {
		bar := strings.Repeat("#", int(p.CDF*40+0.5))
		fmt.Fprintf(&sb, "%10.3f %10.2f %8.3f %8.3f %8.3f  |%s\n",
			p.RatePct, p.ImprovementPct, p.Lo, p.CDF, p.Hi, bar)
	}
	return sb.String()
}
