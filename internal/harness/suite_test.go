package harness

import (
	"strings"
	"testing"

	"tsperr/internal/core"
)

func TestParseSuite(t *testing.T) {
	s, err := ParseSuite(strings.NewReader(`{
		"entries": [
			{"benchmark": "typeset"},
			{"benchmark": "typeset", "scenarios": 2, "mc_trials": 100, "mc_seed": 7},
			{"benchmark": "dijkstra", "retries": 1, "min_scenarios": 1, "fail_fast": true}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Entries) != 3 {
		t.Fatalf("entries = %d", len(s.Entries))
	}
	items, err := s.Items(core.AnalyzeOpts{Workers: 4, Retries: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Spec.Scenarios != DefaultScenarios {
		t.Errorf("default scenarios not applied: %d", items[0].Spec.Scenarios)
	}
	if items[0].Opts.Retries != 2 || items[0].Opts.Workers != 4 {
		t.Errorf("suite defaults not inherited: %+v", items[0].Opts)
	}
	if items[1].Spec.Scenarios != 2 || items[1].Opts.MCTrials != 100 || items[1].Opts.MCSeed != 7 {
		t.Errorf("entry knobs not applied: %+v", items[1])
	}
	if items[2].Opts.Retries != 1 || items[2].Opts.MinScenarios != 1 || !items[2].Opts.FailFast {
		t.Errorf("entry overrides not applied: %+v", items[2].Opts)
	}
}

func TestParseSuiteRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown benchmark": `{"entries":[{"benchmark":"nope"}]}`,
		"unknown field":     `{"entries":[{"benchmark":"typeset","bogus":1}]}`,
		"empty":             `{"entries":[]}`,
		"negative knob":     `{"entries":[{"benchmark":"typeset","scenarios":-1}]}`,
		"not json":          `entries: typeset`,
	}
	for name, doc := range cases {
		if _, err := ParseSuite(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestLoadSuiteMissingFile(t *testing.T) {
	if _, err := LoadSuite("testdata/definitely-missing.json"); err == nil {
		t.Error("want error for missing file")
	}
}
