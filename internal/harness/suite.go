package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"tsperr/internal/core"
	"tsperr/internal/mibench"
)

// SuiteEntry is one line of a batch suite file: a benchmark name plus the
// per-entry analysis knobs. The zero values inherit the suite-wide defaults
// supplied to RunSuite.
type SuiteEntry struct {
	Benchmark string `json:"benchmark"`
	// Scenarios is the input-dataset fan-out (0 = the suite default).
	Scenarios int `json:"scenarios,omitempty"`
	// Retries / MinScenarios / FailFast mirror core.AnalyzeOpts.
	Retries      int  `json:"retries,omitempty"`
	MinScenarios int  `json:"min_scenarios,omitempty"`
	FailFast     bool `json:"fail_fast,omitempty"`
	// MCTrials, when positive, appends a sharded Monte Carlo validation to
	// the entry's report; MCSeed seeds it.
	MCTrials int    `json:"mc_trials,omitempty"`
	MCSeed   uint64 `json:"mc_seed,omitempty"`
}

// Suite is a parsed batch suite.
type Suite struct {
	Entries []SuiteEntry `json:"entries"`
}

// maxSuiteBytes bounds a suite document; far above any realistic sweep but
// below anything that could hurt.
const maxSuiteBytes = 1 << 20

// ParseSuite decodes and validates a suite document. Unknown fields are
// rejected so a typo'd knob fails loudly instead of silently running the
// defaults.
func ParseSuite(r io.Reader) (*Suite, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxSuiteBytes))
	dec.DisallowUnknownFields()
	var s Suite
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("harness: parse suite: %w", err)
	}
	if len(s.Entries) == 0 {
		return nil, fmt.Errorf("harness: suite has no entries")
	}
	for i, e := range s.Entries {
		if _, err := mibench.ByName(e.Benchmark); err != nil {
			return nil, fmt.Errorf("harness: suite entry %d: %w", i, err)
		}
		if e.Scenarios < 0 || e.Retries < 0 || e.MinScenarios < 0 || e.MCTrials < 0 {
			return nil, fmt.Errorf("harness: suite entry %d (%s): negative knob", i, e.Benchmark)
		}
	}
	return &s, nil
}

// LoadSuite reads a suite file from disk.
func LoadSuite(path string) (*Suite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseSuite(f)
}

// Items converts the suite into core batch items, folding the suite-wide
// defaults into entries that left a knob at zero. defaults.Workers (and the
// other scheduling knobs) apply to every entry — they are excluded from the
// dedup key, so this cannot split identical entries.
func (s *Suite) Items(defaults core.AnalyzeOpts, defaultScenarios int) ([]core.BatchItem, error) {
	if defaultScenarios <= 0 {
		defaultScenarios = DefaultScenarios
	}
	items := make([]core.BatchItem, len(s.Entries))
	for i, e := range s.Entries {
		b, err := mibench.ByName(e.Benchmark)
		if err != nil {
			return nil, fmt.Errorf("harness: suite entry %d: %w", i, err)
		}
		scenarios := e.Scenarios
		if scenarios == 0 {
			scenarios = defaultScenarios
		}
		opts := defaults
		if e.Retries > 0 {
			opts.Retries = e.Retries
		}
		if e.MinScenarios > 0 {
			opts.MinScenarios = e.MinScenarios
		}
		if e.FailFast {
			opts.FailFast = true
		}
		if e.MCTrials > 0 {
			opts.MCTrials = e.MCTrials
			opts.MCSeed = e.MCSeed
		}
		items[i] = core.BatchItem{Name: b.Name, Spec: SpecFor(b, scenarios), Opts: opts}
	}
	return items, nil
}

// RunSuite runs a suite against the shared framework via core.EstimateBatch.
// onResult, when non-nil, observes each entry's result as it lands (in suite
// order), which is how the CLI streams progress rows.
func RunSuite(ctx context.Context, s *Suite, defaults core.AnalyzeOpts, defaultScenarios int, onResult func(core.BatchItemResult)) (*core.BatchResult, error) {
	items, err := s.Items(defaults, defaultScenarios)
	if err != nil {
		return nil, err
	}
	f, err := SharedFramework()
	if err != nil {
		return nil, err
	}
	return f.EstimateBatch(ctx, items, core.BatchOpts{OnResult: onResult})
}
