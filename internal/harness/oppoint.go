package harness

import (
	"context"
	"fmt"
	"math"
	"sync"

	"tsperr/internal/cell"
	"tsperr/internal/core"
	"tsperr/internal/errormodel"
	"tsperr/internal/mibench"
	"tsperr/internal/modelcache"
)

// Operating-point serving. The shared framework is built at one condition
// (SetOperatingCondition; nominal by default) and answers plain analyses
// concurrently. Requests at OTHER (voltage, temperature) points — the
// oppoint search's sub-requests — go through a small registry of
// per-condition frameworks: each condition gets its own calibrated machine
// (warm from the model cache when enabled, since the condition is part of
// the cache key), and a per-entry mutex serializes analyses on it because
// ratio retargeting mutates shared machine state. Requests at the shared
// framework's own condition and default ratio delegate to the plain path so
// they share its concurrency and exact bytes.

// sharedCond is the condition SharedFramework builds at; guarded by fwMu.
var sharedCond cell.OperatingCondition

// SetOperatingCondition sets the operating condition for frameworks built
// after the call (the -voltage/-temp knobs). Like SetModelCache, commands
// invoke it before their first SharedFramework use; it does not rebuild an
// already-built shared framework.
func SetOperatingCondition(cond cell.OperatingCondition) error {
	if err := cond.Validate(); err != nil {
		return err
	}
	fwMu.Lock()
	defer fwMu.Unlock()
	sharedCond = cond
	return nil
}

// OperatingCondition returns the condition configured for the shared
// framework.
func OperatingCondition() cell.OperatingCondition {
	fwMu.Lock()
	defer fwMu.Unlock()
	return sharedCond
}

// SharedOptions returns the errormodel options the shared framework is (or
// will be) built with, including the configured operating condition — the
// options a daemon must fingerprint under.
func SharedOptions() errormodel.Options {
	opts := errormodel.DefaultOptions()
	fwMu.Lock()
	opts.Cond = sharedCond
	fwMu.Unlock()
	return opts
}

// maxConditionFrameworks bounds the per-condition registry: a calibrated
// machine holds full netlists and engines, so an unbounded V/T grid must
// not accumulate one per point. Eviction is LRU; an evicted condition
// rebuilds (warm from the model cache when enabled) on next use.
const maxConditionFrameworks = 4

type condEntry struct {
	// mu serializes framework build and every analysis at this condition:
	// ratio retargeting mutates the machine, so concurrent analyses on one
	// entry are unsafe.
	mu sync.Mutex
	fw *core.Framework
}

var (
	condMu  sync.Mutex
	condFWs map[string]*condEntry
	condLRU []string // most recently used last
)

// conditionEntry returns (creating if needed) the registry entry for a
// normalized condition, updating LRU order and evicting the coldest entry
// beyond the bound.
func conditionEntry(key string) *condEntry {
	condMu.Lock()
	defer condMu.Unlock()
	if condFWs == nil {
		condFWs = make(map[string]*condEntry)
	}
	for i, k := range condLRU {
		if k == key {
			condLRU = append(append(condLRU[:i:i], condLRU[i+1:]...), key)
			return condFWs[key]
		}
	}
	if len(condLRU) >= maxConditionFrameworks {
		evict := condLRU[0]
		condLRU = condLRU[1:]
		// The entry vanishes from the registry; an in-flight analysis holding
		// its mutex finishes on its private framework unharmed.
		delete(condFWs, evict)
	}
	e := &condEntry{}
	condFWs[key] = e
	condLRU = append(condLRU, key)
	return e
}

// buildAtCondition builds a framework at the given condition, honoring the
// model-cache policy configured via SetModelCache (the condition is part of
// the cache key, so each condition warms independently).
func buildAtCondition(cond cell.OperatingCondition) (*core.Framework, error) {
	opts := errormodel.DefaultOptions()
	opts.Cond = cond
	fwMu.Lock()
	enabled, dir := cacheEnabled, cacheDir
	fwMu.Unlock()
	if enabled {
		if dir == "" {
			if d, err := modelcache.DefaultDir(); err == nil {
				dir = d
			}
		}
		if dir != "" {
			f, _, err := buildFrameworkCached(opts, dir)
			return f, err
		}
	}
	return buildFramework(opts)
}

// AnalyzeAtPoint analyzes one benchmark at an explicit operating point:
// a (voltage, temperature) condition and a frequency ratio (0 means the
// design's configured working ratio). Points matching the shared
// framework's condition and the default ratio delegate to the plain
// AnalyzeWithOpts path — bit-identical reports, full concurrency; all other
// points run serialized on that condition's registry framework with the
// machine re-targeted for the call and restored after it.
func AnalyzeAtPoint(ctx context.Context, name string, scenarios int, opts core.AnalyzeOpts, cond cell.OperatingCondition, ratio float64) (*core.Report, error) {
	if err := cond.Validate(); err != nil {
		return nil, err
	}
	if ratio != 0 && !(ratio > 0 && !math.IsInf(ratio, 0)) {
		return nil, fmt.Errorf("harness: bad frequency ratio %v", ratio)
	}
	defaultRatio := errormodel.DefaultOptions().WorkingRatio
	atDefaultRatio := ratio == 0 ||
		math.Float64bits(ratio) == math.Float64bits(defaultRatio)
	if cond.Equal(OperatingCondition()) && atDefaultRatio {
		return AnalyzeWithOpts(ctx, name, scenarios, opts)
	}
	b, err := mibench.ByName(name)
	if err != nil {
		return nil, err
	}
	e := conditionEntry(cond.String())
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fw == nil {
		f, err := buildAtCondition(cond)
		if err != nil {
			return nil, err
		}
		e.fw = f
	}
	r := ratio
	if r == 0 {
		r = e.fw.Machine.Opts.WorkingRatio
	}
	return e.fw.AnalyzeAtRatio(ctx, b.Name, SpecFor(b, scenarios), r, opts)
}

// EvaluateAtPoint is AnalyzeAtPoint summarized as an error rate — the eval
// function of an operating-point bisection.
func EvaluateAtPoint(ctx context.Context, name string, scenarios int, cond cell.OperatingCondition, ratio float64) (float64, error) {
	rep, err := AnalyzeAtPoint(ctx, name, scenarios, core.AnalyzeOpts{}, cond, ratio)
	if err != nil {
		return 0, err
	}
	return rep.Estimate.MeanErrorRate(), nil
}
