package harness

import (
	"context"
	"fmt"
	"math"

	"tsperr/internal/core"
	"tsperr/internal/mibench"
	"tsperr/internal/server"
	"tsperr/internal/surrogate"
)

// SurrogateAdapter binds the surrogate fast tier to the benchmark suite and
// the shared framework: it resolves a benchmark name to its program, derives
// the pre-simulation feature vector through core.SurrogateFeatures, and
// translates between the tier's feature-space API and the serving layer's
// name-based one. It implements server.SurrogateTier.
type SurrogateAdapter struct {
	fw   *core.Framework
	tier *surrogate.Tier
}

var _ server.SurrogateTier = (*SurrogateAdapter)(nil)

// NewSurrogateAdapter wraps a tier around the shared framework.
func NewSurrogateAdapter(fw *core.Framework, tier *surrogate.Tier) *SurrogateAdapter {
	return &SurrogateAdapter{fw: fw, tier: tier}
}

// Tier exposes the wrapped tier (the daemon quiesces it on shutdown).
func (a *SurrogateAdapter) Tier() *surrogate.Tier { return a.tier }

// features resolves a benchmark name to its fast-tier feature vector; ok is
// false for unknown benchmarks (the exact pipeline will reject them with a
// proper error).
func (a *SurrogateAdapter) features(benchmark string, scenarios int) ([]float64, bool) {
	b, err := mibench.ByName(benchmark)
	if err != nil {
		return nil, false
	}
	if scenarios <= 0 {
		scenarios = DefaultScenarios
	}
	return a.fw.SurrogateFeatures(b.Prog, scenarios), true
}

// Decide runs the confidence gate for one request (server.SurrogateTier).
func (a *SurrogateAdapter) Decide(benchmark string, scenarios int, threshold float64) server.SurrogateDecision {
	feats, ok := a.features(benchmark, scenarios)
	if !ok {
		return server.SurrogateDecision{Reason: surrogate.ReasonUntrained}
	}
	d := a.tier.Decide(feats, threshold)
	out := server.SurrogateDecision{Serve: d.Serve, Reason: d.Reason}
	if d.Pred != nil {
		out.Meta = &core.SurrogateMeta{
			PredictedErrorRate: d.Pred.Rate,
			PredictedLog10:     d.Pred.Log10Rate,
			StdLog10:           d.Pred.Std,
			Bound:              a.tier.Bound(),
			ModelVersion:       d.Pred.ModelVersion,
			TrainSize:          d.Pred.TrainSize,
		}
	}
	return out
}

// Observe feeds one exact report back as a training observation and returns
// the shadow residual (server.SurrogateTier). The label is the report's
// log10 mean error rate; the server has already filtered degraded and
// zero-rate reports.
func (a *SurrogateAdapter) Observe(benchmark string, scenarios int, rep *core.Report) (float64, bool) {
	if rep == nil || rep.Estimate == nil {
		return 0, false
	}
	rate := rep.Estimate.MeanErrorRate()
	if !(rate > 0) {
		return 0, false
	}
	feats, ok := a.features(benchmark, scenarios)
	if !ok {
		return 0, false
	}
	return a.tier.Observe(feats, math.Log10(rate))
}

// Stats snapshots the tier's learning state (server.SurrogateTier).
func (a *SurrogateAdapter) Stats() server.SurrogateStats {
	st := a.tier.Stats()
	return server.SurrogateStats{
		ModelVersion: st.ModelVersion,
		TrainSize:    st.TrainSize,
		Buffered:     st.Buffered,
		Trainings:    st.Trainings,
	}
}

// DefaultEvalScenarioGrid is the scenario fan-out swept per benchmark by
// SurrogateEvalSamples: the spread exercises the scenario-count feature
// without multiplying runtime beyond a few minutes for the full suite.
var DefaultEvalScenarioGrid = []int{1, 2, 3, 4, 6, 8}

// SurrogateEvalSamples runs the exact pipeline over benchmarks x scenario
// grid and returns one labeled sample per run — the dataset behind
// `tsperr -surrogate-eval` and the held-out accuracy acceptance test.
// Benchmarks whose estimate carries a zero mean rate are skipped (no log10
// label). A nil benchmark list selects the full suite; a nil grid selects
// DefaultEvalScenarioGrid.
func SurrogateEvalSamples(ctx context.Context, benchmarks []string, grid []int) ([]surrogate.EvalSample, error) {
	if benchmarks == nil {
		for _, b := range mibench.All() {
			benchmarks = append(benchmarks, b.Name)
		}
	}
	if grid == nil {
		grid = DefaultEvalScenarioGrid
	}
	fw, err := SharedFramework()
	if err != nil {
		return nil, err
	}
	var out []surrogate.EvalSample
	for _, name := range benchmarks {
		b, err := mibench.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, sc := range grid {
			rep, err := fw.AnalyzeWithOpts(ctx, b.Name, SpecFor(b, sc), core.AnalyzeOpts{})
			if err != nil {
				return nil, fmt.Errorf("harness: eval sample %s/%d: %w", name, sc, err)
			}
			rate := rep.Estimate.MeanErrorRate()
			if !(rate > 0) {
				continue
			}
			out = append(out, surrogate.EvalSample{
				Name:      b.Name,
				Scenarios: sc,
				Features:  fw.SurrogateFeatures(b.Prog, sc),
				Log10Rate: math.Log10(rate),
			})
		}
	}
	return out, nil
}
