package harness

import (
	"context"
	"testing"

	"tsperr/internal/surrogate"
)

// evalSamplesOnce caches the exact-pipeline sweep shared by the surrogate
// acceptance tests (48 warm analyses; a few seconds total).
var evalSamplesCache []surrogate.EvalSample

func evalSamples(ctx context.Context, t *testing.T) []surrogate.EvalSample {
	t.Helper()
	if evalSamplesCache == nil {
		samples, err := SurrogateEvalSamples(ctx, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		evalSamplesCache = samples
	}
	return evalSamplesCache
}

// TestSurrogateHeldOutAccuracy is the accuracy acceptance criterion: over
// the benchmark suite's labeled sweep, surrogate answers on a held-out split
// carry a mean absolute log10 error of at most 0.3 (a factor of 2 in rate).
func TestSurrogateHeldOutAccuracy(t *testing.T) {
	samples := evalSamples(context.Background(), t)
	if len(samples) < 24 {
		t.Fatalf("only %d labeled samples from the suite", len(samples))
	}
	res, err := surrogate.Eval(samples, surrogate.Config{Fingerprint: "eval"},
		[]float64{0.1, 0.25, 0.5}, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("train=%d test=%d heldout MAE=%.3f gated MAE=%.3f coverage=%.2f",
		res.TrainN, res.TestN, res.MAE, res.GatedMAE, res.GatedCoverage)
	if res.MAE > 0.3 {
		t.Errorf("held-out MAE = %.3f, want <= 0.3", res.MAE)
	}
	// The gate can only improve accuracy over the ungated model.
	if res.GatedCoverage > 0 && res.GatedMAE > res.MAE+1e-9 {
		t.Errorf("gated MAE %.3f worse than ungated %.3f", res.GatedMAE, res.MAE)
	}
}

// TestSurrogateGateHonestyOnSuite is the gate-honesty acceptance criterion:
// with the gate enabled over the benchmark suite, EVERY request whose
// prediction uncertainty exceeds the bound escalates to the exact tier, and
// every served answer's reported uncertainty is within the bound it claims.
func TestSurrogateGateHonestyOnSuite(t *testing.T) {
	samples := evalSamples(context.Background(), t)
	fw, err := SharedFramework()
	if err != nil {
		t.Fatal(err)
	}
	tier, err := surrogate.New(surrogate.Config{Fingerprint: "honesty", MaxStd: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		tier.Observe(s.Features, s.Log10Rate)
	}
	if err := tier.Retrain(); err != nil {
		t.Fatal(err)
	}
	adapter := NewSurrogateAdapter(fw, tier)

	served, escalated := 0, 0
	// Sweep beyond the training grid (including unseen scenario counts).
	for _, sc := range []int{1, 2, 3, 4, 5, 6, 7, 8, 12, 16} {
		for _, s := range samples {
			if s.Scenarios != samples[0].Scenarios {
				continue // one sweep per benchmark, not per training sample
			}
			d := adapter.Decide(s.Name, sc, 0)
			if d.Serve {
				served++
				if d.Meta == nil {
					t.Fatalf("%s/%d served without metadata", s.Name, sc)
				}
				if !(d.Meta.StdLog10 <= d.Meta.Bound) {
					t.Fatalf("%s/%d served with std %.3f > bound %.3f",
						s.Name, sc, d.Meta.StdLog10, d.Meta.Bound)
				}
			} else {
				escalated++
				if d.Reason == surrogate.ReasonServed {
					t.Fatalf("%s/%d escalated with reason %q", s.Name, sc, d.Reason)
				}
				if d.Reason == surrogate.ReasonUncertain && d.Meta != nil &&
					d.Meta.StdLog10 <= d.Meta.Bound {
					t.Fatalf("%s/%d escalated as uncertain with std %.3f <= bound %.3f",
						s.Name, sc, d.Meta.StdLog10, d.Meta.Bound)
				}
			}
		}
	}
	if served == 0 {
		t.Error("gate served nothing on the training distribution; bound miscalibrated")
	}
	t.Logf("served %d, escalated %d across the sweep", served, escalated)
}

// TestSurrogateAdapterUnknownBenchmark: names the suite does not know
// escalate as untrained and are never observed.
func TestSurrogateAdapterUnknownBenchmark(t *testing.T) {
	fw, err := SharedFramework()
	if err != nil {
		t.Fatal(err)
	}
	tier, err := surrogate.New(surrogate.Config{Fingerprint: "unknown"})
	if err != nil {
		t.Fatal(err)
	}
	adapter := NewSurrogateAdapter(fw, tier)
	if d := adapter.Decide("no-such-benchmark", 4, 0); d.Serve || d.Reason != surrogate.ReasonUntrained {
		t.Errorf("unknown benchmark decision = %+v", d)
	}
	if _, ok := adapter.Observe("no-such-benchmark", 4, nil); ok {
		t.Error("unknown benchmark produced an observation")
	}
	if st := adapter.Stats(); st.Buffered != 0 {
		t.Errorf("unknown benchmark buffered an observation: %+v", st)
	}
}
