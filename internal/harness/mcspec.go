package harness

import (
	"context"
	"fmt"
	"sync"

	"tsperr/internal/core"
	"tsperr/internal/errormodel"
	"tsperr/internal/mibench"
	"tsperr/internal/montecarlo"
)

// specMemo caches rebuilt Monte Carlo specs by "benchmark|scenarios". Each
// entry carries a once so concurrent chunk requests for the same benchmark
// share a single analytic run; a failed build is not latched (the entry is
// dropped), matching SharedFramework's retry semantics.
var (
	specMu   sync.Mutex
	specMemo = map[string]*specEntry{}
)

type specEntry struct {
	once sync.Once
	spec montecarlo.Spec
	err  error
}

// MCSpec rebuilds the Monte Carlo simulation spec for one benchmark — the
// cluster.SpecSource a worker node wires as server.Config.ChunkSource. The
// conditionals are derived by running the analytic pipeline against this
// node's shared framework, exactly as a coordinator derives its own before
// fanning chunks out; with matching model fingerprints (enforced by the chunk
// endpoint) the rebuilt spec is bit-identical to the coordinator's, so
// montecarlo.RunChunk over it returns the same bytes a local execution would
// have produced. Results are memoized per (benchmark, scenarios).
func MCSpec(ctx context.Context, benchmark string, scenarios int) (montecarlo.Spec, error) {
	if scenarios <= 0 {
		scenarios = DefaultScenarios
	}
	key := fmt.Sprintf("%s|%d", benchmark, scenarios)
	specMu.Lock()
	e, ok := specMemo[key]
	if !ok {
		e = &specEntry{}
		specMemo[key] = e
	}
	specMu.Unlock()
	e.once.Do(func() { e.spec, e.err = buildMCSpec(ctx, benchmark, scenarios) })
	if e.err != nil {
		// Do not latch the failure: a context cancellation or a transient
		// framework-build error must not poison every later chunk request.
		specMu.Lock()
		if specMemo[key] == e {
			delete(specMemo, key)
		}
		specMu.Unlock()
	}
	return e.spec, e.err
}

// buildMCSpec runs the strict analytic pipeline and assembles the spec from
// the benchmark's program plus the per-scenario conditionals it derived. A
// strict (non-degraded) run covers every scenario, so the conditionals align
// index-for-index with the coordinator's — coordinators never distribute
// degraded jobs (core marks them LocalOnly).
func buildMCSpec(ctx context.Context, benchmark string, scenarios int) (montecarlo.Spec, error) {
	b, err := mibench.ByName(benchmark)
	if err != nil {
		return montecarlo.Spec{}, err
	}
	rep, err := AnalyzeWithOpts(ctx, benchmark, scenarios, core.AnalyzeOpts{})
	if err != nil {
		return montecarlo.Spec{}, err
	}
	if len(rep.Scenarios) != scenarios {
		return montecarlo.Spec{}, fmt.Errorf("harness: %s: analytic run covered %d/%d scenarios",
			benchmark, len(rep.Scenarios), scenarios)
	}
	conds := make([]*errormodel.Conditionals, len(rep.Scenarios))
	for i := range rep.Scenarios {
		conds[i] = rep.Scenarios[i].Cond
	}
	return montecarlo.Spec{
		Prog:  b.Prog,
		Setup: b.Setup,
		Cond:  conds,
	}, nil
}
