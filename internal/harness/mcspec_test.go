package harness

import (
	"context"
	"testing"

	"tsperr/internal/core"
	"tsperr/internal/montecarlo"
)

// TestMCSpecRebuildsTheCoordinatorSpec proves the worker-side contract of the
// cluster chunk endpoint: a spec rebuilt from nothing but the benchmark
// identity produces chunk results bit-identical to those from the spec a
// coordinator derives during its own analytic run. This is what makes remote
// chunk execution invisible in the assembled statistics.
func TestMCSpecRebuildsTheCoordinatorSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("full framework run")
	}
	ctx := context.Background()

	// Coordinator side: capture the spec core hands its MCRunner.
	var captured montecarlo.Spec
	var chunkSize int
	opts := core.AnalyzeOpts{
		MCTrials:    96,
		MCSeed:      11,
		MCChunkSize: 32,
		MCRun: func(ctx context.Context, job core.MCJob) (*montecarlo.ShardedResult, error) {
			captured = job.Spec
			chunkSize = job.ChunkSize
			return montecarlo.RunSharded(ctx, job.Spec, job.Shard)
		},
	}
	if _, err := AnalyzeWithOpts(ctx, "patricia", 2, opts); err != nil {
		t.Fatal(err)
	}
	if captured.Trials != 96 || chunkSize != 32 {
		t.Fatalf("MCRun hook saw trials=%d chunkSize=%d", captured.Trials, chunkSize)
	}

	// Worker side: rebuild from the benchmark identity alone.
	spec, err := MCSpec(ctx, "patricia", 2)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Trials != 0 || spec.Seed != 0 {
		t.Fatalf("MCSpec must leave Trials/Seed zero, got %d/%d", spec.Trials, spec.Seed)
	}
	spec.Trials, spec.Seed = captured.Trials, captured.Seed

	n := montecarlo.NumChunks(captured.Trials, chunkSize)
	for c := 0; c < n; c++ {
		want, err := montecarlo.RunChunk(ctx, captured, chunkSize, c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := montecarlo.RunChunk(ctx, spec, chunkSize, c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != want.Index || got.Instructions != want.Instructions {
			t.Fatalf("chunk %d: index/instructions %d/%d, want %d/%d",
				c, got.Index, got.Instructions, want.Index, want.Instructions)
		}
		if len(got.Counts) != len(want.Counts) {
			t.Fatalf("chunk %d: %d counts, want %d", c, len(got.Counts), len(want.Counts))
		}
		for i := range want.Counts {
			//tsperrlint:ignore floatcmp bit-identical reproduction is the contract under test
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("chunk %d trial %d: count %v, want %v", c, i, got.Counts[i], want.Counts[i])
			}
		}
	}

	// The second call must come from the memo: same backing conditionals.
	again, err := MCSpec(ctx, "patricia", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Cond) == 0 || &again.Cond[0] != &spec.Cond[0] {
		t.Error("second MCSpec call rebuilt instead of hitting the memo")
	}
}

func TestMCSpecUnknownBenchmarkFails(t *testing.T) {
	if _, err := MCSpec(context.Background(), "nonesuch", 2); err == nil {
		t.Fatal("unknown benchmark should fail")
	}
	// The failure must not be latched: the same key still errors (not a stale
	// zero spec) and the memo does not grow.
	if _, err := MCSpec(context.Background(), "nonesuch", 2); err == nil {
		t.Fatal("failed build must not be cached as success")
	}
}
