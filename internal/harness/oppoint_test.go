package harness

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"tsperr/internal/cell"
	"tsperr/internal/core"
	"tsperr/internal/errormodel"
)

func TestAnalyzeAtPointValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := AnalyzeAtPoint(ctx, "patricia", 2, core.AnalyzeOpts{},
		cell.OperatingCondition{VoltageV: 9}, 0); err == nil {
		t.Error("absurd voltage accepted")
	}
	for _, ratio := range []float64{-1, math.Inf(1), math.NaN()} {
		if _, err := AnalyzeAtPoint(ctx, "patricia", 2, core.AnalyzeOpts{},
			cell.OperatingCondition{}, ratio); err == nil {
			t.Errorf("ratio %v accepted", ratio)
		}
	}
	// Unknown benchmarks fail before any framework is built.
	if _, err := AnalyzeAtPoint(ctx, "nonesuch", 2, core.AnalyzeOpts{},
		cell.OperatingCondition{VoltageV: 0.9}, 1.1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestConditionRegistryLRU pins the registry bound: at most
// maxConditionFrameworks entries live at once, the coldest is evicted, and
// re-access refreshes recency.
func TestConditionRegistryLRU(t *testing.T) {
	condMu.Lock()
	savedFWs, savedLRU := condFWs, condLRU
	condFWs, condLRU = nil, nil
	condMu.Unlock()
	t.Cleanup(func() {
		condMu.Lock()
		condFWs, condLRU = savedFWs, savedLRU
		condMu.Unlock()
	})

	keys := []string{"a", "b", "c", "d"}
	entries := make(map[string]*condEntry)
	for _, k := range keys {
		entries[k] = conditionEntry(k)
	}
	// Touch "a" so "b" becomes the coldest, then overflow the bound.
	if got := conditionEntry("a"); got != entries["a"] {
		t.Fatal("re-access did not return the existing entry")
	}
	conditionEntry("e")
	condMu.Lock()
	_, aLives := condFWs["a"]
	_, bLives := condFWs["b"]
	n := len(condFWs)
	condMu.Unlock()
	if n != maxConditionFrameworks {
		t.Errorf("registry holds %d entries, bound is %d", n, maxConditionFrameworks)
	}
	if !aLives {
		t.Error("recently used entry was evicted")
	}
	if bLives {
		t.Error("coldest entry survived the overflow")
	}
	// An evicted condition transparently gets a fresh entry on next use.
	if got := conditionEntry("b"); got == entries["b"] {
		t.Error("evicted entry was resurrected instead of rebuilt")
	}
}

// TestAnalyzeAtPointDelegatesAtDefaultPoint pins the fast path: the default
// condition at the default working ratio is the plain analysis — bit-for-bit,
// via the shared framework, with no registry machine built.
func TestAnalyzeAtPointDelegatesAtDefaultPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("full framework run")
	}
	ctx := context.Background()
	plain, err := AnalyzeWithOpts(ctx, "patricia", 2, core.AnalyzeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	condMu.Lock()
	before := len(condFWs)
	condMu.Unlock()
	for _, tc := range []struct {
		name  string
		cond  cell.OperatingCondition
		ratio float64
	}{
		{"zero condition, zero ratio", cell.OperatingCondition{}, 0},
		{"explicit nominal, default ratio",
			cell.Nominal(), errormodel.DefaultOptions().WorkingRatio},
	} {
		at, err := AnalyzeAtPoint(ctx, "patricia", 2, core.AnalyzeOpts{}, tc.cond, tc.ratio)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		// Training/Simulation are wall-clock measurements; everything else
		// must agree to the byte.
		a, b := *plain, *at
		a.Training, a.Simulation = 0, 0
		b.Training, b.Simulation = 0, 0
		aj, _ := json.Marshal(&a)
		bj, _ := json.Marshal(&b)
		if string(aj) != string(bj) {
			t.Errorf("%s: report differs from the plain path\nplain: %s\nat:    %s",
				tc.name, aj, bj)
		}
	}
	condMu.Lock()
	after := len(condFWs)
	condMu.Unlock()
	if after != before {
		t.Errorf("default-point analysis built %d registry frameworks", after-before)
	}
}

// TestAnalyzeAtPointDroopRaisesErrorRate runs the registry path end to end:
// a droop-and-heat corner at the same ratio must not lower the error rate
// (the scaling law only inflates delays), and repeated calls reuse the
// registry entry.
func TestAnalyzeAtPointDroopRaisesErrorRate(t *testing.T) {
	if testing.Short() {
		t.Skip("full framework run")
	}
	ctx := context.Background()
	plain, err := AnalyzeWithOpts(ctx, "patricia", 2, core.AnalyzeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	droop := cell.OperatingCondition{VoltageV: 1.0, TempC: 85}
	rep, err := AnalyzeAtPoint(ctx, "patricia", 2, core.AnalyzeOpts{}, droop, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, base := rep.Estimate.MeanErrorRate(), plain.Estimate.MeanErrorRate(); got < base {
		t.Errorf("droop corner lowered the error rate: %v < %v", got, base)
	}
	condMu.Lock()
	entry := condFWs[droop.String()]
	condMu.Unlock()
	if entry == nil || entry.fw == nil {
		t.Fatal("droop analysis did not populate the registry")
	}
	// A second call must reuse the same framework, not rebuild.
	if _, err := AnalyzeAtPoint(ctx, "patricia", 2, core.AnalyzeOpts{}, droop, 1.1); err != nil {
		t.Fatal(err)
	}
	condMu.Lock()
	same := condFWs[droop.String()] == entry
	condMu.Unlock()
	if !same {
		t.Error("second analysis at the same condition rebuilt the registry entry")
	}
}
