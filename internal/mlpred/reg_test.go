package mlpred

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"tsperr/internal/numeric"
)

// regGrid builds a deterministic 2-feature regression set: target is a step
// function of feature 0 with a small feature-1 slope, plus leaf-level spread.
func regGrid(n int) []RegSample {
	rng := numeric.NewRNG(7)
	out := make([]RegSample, n)
	for i := range out {
		x0 := rng.Float64() * 10
		x1 := rng.Float64()
		y := 0.1 * x1
		if x0 > 5 {
			y += 3
		}
		y += (rng.Float64() - 0.5) * 0.2
		out[i] = RegSample{Features: []float64{x0, x1}, Target: y}
	}
	return out
}

func TestRegTreeLearnsStep(t *testing.T) {
	samples := regGrid(400)
	tree, err := TrainRegTree(samples, Config{MaxDepth: 4, MinLeaf: 8})
	if err != nil {
		t.Fatal(err)
	}
	lo, _, _ := tree.Predict([]float64{2, 0.5})
	hi, _, _ := tree.Predict([]float64{8, 0.5})
	if hi-lo < 2.5 {
		t.Fatalf("tree did not learn the step: lo %.3f hi %.3f", lo, hi)
	}
}

func TestRegTreeLeafMoments(t *testing.T) {
	// Two clusters with known mean and variance; MinLeaf large enough that
	// the tree splits once and each leaf holds exactly one cluster.
	var samples []RegSample
	for i := 0; i < 8; i++ {
		y := 1.0
		if i%2 == 0 {
			y = 3.0
		}
		samples = append(samples, RegSample{Features: []float64{0}, Target: y})
		samples = append(samples, RegSample{Features: []float64{10}, Target: 10})
	}
	tree, err := TrainRegTree(samples, Config{MaxDepth: 2, MinLeaf: 4})
	if err != nil {
		t.Fatal(err)
	}
	mean, variance, count := tree.Predict([]float64{0})
	if count != 8 {
		t.Fatalf("left leaf count = %d, want 8", count)
	}
	if math.Abs(mean-2) > 1e-12 {
		t.Errorf("left leaf mean = %g, want 2", mean)
	}
	if math.Abs(variance-1) > 1e-9 {
		t.Errorf("left leaf variance = %g, want 1 (biased)", variance)
	}
	mean, variance, _ = tree.Predict([]float64{10})
	if math.Abs(mean-10) > 1e-12 || variance > 1e-12 {
		t.Errorf("right leaf = (%g, %g), want (10, 0)", mean, variance)
	}
}

func TestRegForestPredictsWithUncertainty(t *testing.T) {
	samples := regGrid(400)
	f, err := TrainRegForest(samples, 16, Config{MaxDepth: 6, MinLeaf: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	mean, std := f.Predict([]float64{8, 0.5})
	if math.Abs(mean-3.05) > 0.5 {
		t.Errorf("forest mean = %g, want ~3.05", mean)
	}
	if std <= 0 || std > 1 {
		t.Errorf("forest std = %g, want small positive", std)
	}
	// Far outside the training support the ensemble should not be MORE
	// confident than at a well-covered point deep inside one plateau.
	if mae := RegMAE(f.Predict, samples); mae > 0.25 {
		t.Errorf("training MAE = %g, want <= 0.25", mae)
	}
}

func TestRegForestDeterministicAcrossRetrains(t *testing.T) {
	samples := regGrid(200)
	a, err := TrainRegForest(samples, 8, Config{MaxDepth: 5, MinLeaf: 4}, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainRegForest(samples, 8, Config{MaxDepth: 5, MinLeaf: 4}, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range [][]float64{{1, 0}, {4.9, 1}, {5.1, 0.3}, {9, 0.9}} {
		ma, sa := a.Predict(x)
		mb, sb := b.Predict(x)
		// Determinism is a bit-identity contract, so compare the raw bits.
		if math.Float64bits(ma) != math.Float64bits(mb) ||
			math.Float64bits(sa) != math.Float64bits(sb) {
			t.Fatalf("same seed diverged at %v: (%g,%g) vs (%g,%g)", x, ma, sa, mb, sb)
		}
	}
}

func TestRegForestGobRoundTrip(t *testing.T) {
	samples := regGrid(200)
	f, err := TrainRegForest(samples, 8, Config{MaxDepth: 5, MinLeaf: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		t.Fatal(err)
	}
	var back RegForest
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("decoded forest invalid: %v", err)
	}
	for _, x := range [][]float64{{1, 0}, {6, 0.5}, {9.5, 1}} {
		m0, s0 := f.Predict(x)
		m1, s1 := back.Predict(x)
		if math.Float64bits(m0) != math.Float64bits(m1) ||
			math.Float64bits(s0) != math.Float64bits(s1) {
			t.Fatalf("gob round trip changed prediction at %v", x)
		}
	}
}

func TestRegForestValidateRejectsCorruption(t *testing.T) {
	samples := regGrid(50)
	f, err := TrainRegForest(samples, 2, Config{MaxDepth: 3, MinLeaf: 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("fresh forest invalid: %v", err)
	}
	var empty RegForest
	if err := empty.Validate(); err == nil {
		t.Error("empty forest passed validation")
	}
	// Corrupt a child index on the first interior node.
	for _, tree := range f.Trees {
		for i := range tree.Nodes {
			if !tree.Nodes[i].Leaf {
				tree.Nodes[i].Lo = int32(len(tree.Nodes) + 5)
				if err := f.Validate(); err == nil {
					t.Error("corrupt child index passed validation")
				}
				return
			}
		}
	}
	t.Skip("no interior node to corrupt")
}

// TestMinLeafContract pins the documented Config.MinLeaf semantics: the
// zero value selects the permissive default of 1 (NOT DefaultConfig's 8),
// negative values are rejected, and DefaultConfig's regularized 8 refuses
// splits a zero-value Config performs on a small set.
func TestMinLeafContract(t *testing.T) {
	// 10 perfectly separable samples: 5 negatives at x=0, 5 positives at x=1.
	var cls []Sample
	var reg []RegSample
	for i := 0; i < 5; i++ {
		cls = append(cls, Sample{Features: []float64{0}, Label: false},
			Sample{Features: []float64{1}, Label: true})
		reg = append(reg, RegSample{Features: []float64{0}, Target: 0},
			RegSample{Features: []float64{1}, Target: 1})
	}

	// Zero-value MinLeaf defaults to 1: the tree splits and classifies
	// perfectly.
	tr, err := Train(cls, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() == 0 {
		t.Error("MinLeaf 0 (default 1) refused a clean split on 10 samples")
	}
	if got := Accuracy(tr.Predict, cls); got != 1 {
		t.Errorf("accuracy = %g, want 1", got)
	}

	// DefaultConfig's MinLeaf 8 cannot put 8 samples on both sides of a
	// 10-sample split, so the regularized tree stays a stump.
	tr, err = Train(cls, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 {
		t.Errorf("DefaultConfig (MinLeaf 8) split 10 samples: depth %d", tr.Depth())
	}

	// Negative MinLeaf is a contract violation, classification and
	// regression alike.
	if _, err := Train(cls, Config{MinLeaf: -1}); err == nil {
		t.Error("Train accepted negative MinLeaf")
	}
	if _, err := TrainRegTree(reg, Config{MinLeaf: -1}); err == nil {
		t.Error("TrainRegTree accepted negative MinLeaf")
	}
	if _, err := TrainForest(cls, 2, Config{MinLeaf: -1}, 1); err == nil {
		t.Error("TrainForest accepted negative MinLeaf")
	}
	if _, err := TrainRegForest(reg, 2, Config{MinLeaf: -1}, 1); err == nil {
		t.Error("TrainRegForest accepted negative MinLeaf")
	}

	// The regression default matches: zero-value MinLeaf splits the same set.
	rt, err := TrainRegTree(reg, Config{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	lo, _, _ := rt.Predict([]float64{0})
	hi, _, _ := rt.Predict([]float64{1})
	if hi-lo < 0.9 {
		t.Errorf("regression tree with default MinLeaf did not split: lo %g hi %g", lo, hi)
	}
}
