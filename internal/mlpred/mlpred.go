// Package mlpred implements the machine-learning timing-error predictors the
// paper's Related Work discusses: decision trees as used for compiler-guided
// clock scheduling (Fan et al., DAC 2018) and random forests as used by the
// CLIM functional-unit models (Jiao et al., IEEE TC 2018). They classify
// whether an instruction will experience a timing error from
// architecturally visible features (operation class, activated depth,
// switching). The paper's criticism — reproduced by the ablation benchmarks
// — is that such classifiers predict errors directly, without estimating
// DTS, so they cannot express the probabilistic behaviour that process
// variation induces near the critical operating point.
package mlpred

import (
	"fmt"
	"math"
	"sort"

	"tsperr/internal/numeric"
)

// Sample is one training observation.
type Sample struct {
	// Features are numeric feature values (the package is agnostic to their
	// meaning; the harness uses op class, depth, flush depth, toggle).
	Features []float64
	// Label is true when the instruction experienced a timing error.
	Label bool
}

// Tree is a CART-style binary decision tree.
type Tree struct {
	root *node
	// NumFeatures is the expected feature vector length.
	NumFeatures int
}

type node struct {
	leaf    bool
	prob    float64 // positive fraction at this node
	feature int
	thresh  float64
	lo, hi  *node
}

// Config controls training.
type Config struct {
	// MaxDepth bounds the tree depth; zero selects 4 (the DefaultConfig
	// value).
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf. Zero selects the
	// permissive CART default of 1 — note this is deliberately NOT the
	// DefaultConfig value: DefaultConfig regularizes at 8, while a
	// zero-value Config grows the deepest tree the data supports. Callers
	// who want the regularized setting must start from DefaultConfig().
	// Negative values are rejected by Train and TrainRegTree.
	MinLeaf int
	// Features, when non-nil, restricts splits to this feature subset
	// (used by the random forest).
	Features []int
}

// DefaultConfig returns a small, well-regularized tree configuration.
func DefaultConfig() Config { return Config{MaxDepth: 4, MinLeaf: 8} }

// resolve validates the config against a feature-vector length and fills the
// documented defaults (MaxDepth 4, MinLeaf 1 — see the Config field docs for
// why the MinLeaf default differs from DefaultConfig's 8).
func (cfg Config) resolve(nf int) (Config, error) {
	if cfg.MinLeaf < 0 {
		return cfg, fmt.Errorf("mlpred: MinLeaf %d is negative (0 selects the default of 1)", cfg.MinLeaf)
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 4
	}
	if cfg.MinLeaf == 0 {
		cfg.MinLeaf = 1
	}
	if cfg.Features == nil {
		feats := make([]int, nf)
		for i := range feats {
			feats[i] = i
		}
		cfg.Features = feats
	}
	return cfg, nil
}

// checkSamples validates a non-empty, rectangular training set and returns
// the feature-vector length.
func checkSamples[S any](samples []S, features func(S) []float64) (int, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("mlpred: no training samples")
	}
	nf := len(features(samples[0]))
	for _, s := range samples {
		if len(features(s)) != nf {
			return 0, fmt.Errorf("mlpred: inconsistent feature lengths")
		}
	}
	return nf, nil
}

// Train fits a tree on the samples.
func Train(samples []Sample, cfg Config) (*Tree, error) {
	nf, err := checkSamples(samples, func(s Sample) []float64 { return s.Features })
	if err != nil {
		return nil, err
	}
	cfg, err = cfg.resolve(nf)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{NumFeatures: nf}
	t.root = build(samples, idx, cfg.Features, cfg, 0)
	return t, nil
}

func posFraction(samples []Sample, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	pos := 0
	for _, i := range idx {
		if samples[i].Label {
			pos++
		}
	}
	return float64(pos) / float64(len(idx))
}

// gini returns the Gini impurity of a binary split characterized by positive
// count p over n samples.
func gini(p, n float64) float64 {
	if n == 0 {
		return 0
	}
	q := p / n
	return 2 * q * (1 - q)
}

func build(samples []Sample, idx []int, feats []int, cfg Config, depth int) *node {
	prob := posFraction(samples, idx)
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf || prob == 0 || prob == 1 {
		return &node{leaf: true, prob: prob}
	}
	bestGain := 0.0
	bestFeat := -1
	bestThresh := 0.0
	n := float64(len(idx))
	var totalPos float64
	for _, i := range idx {
		if samples[i].Label {
			totalPos++
		}
	}
	parent := gini(totalPos, n)
	order := make([]int, len(idx))
	for _, f := range feats {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool {
			return samples[order[a]].Features[f] < samples[order[b]].Features[f]
		})
		var leftPos, leftN float64
		for k := 0; k < len(order)-1; k++ {
			if samples[order[k]].Label {
				leftPos++
			}
			leftN++
			v, next := samples[order[k]].Features[f], samples[order[k+1]].Features[f]
			//tsperrlint:ignore floatcmp adjacent sorted duplicates are bit-identical; no split point exists between equal keys
			if v == next {
				continue // can't split between equal values
			}
			if int(leftN) < cfg.MinLeaf || len(order)-int(leftN) < cfg.MinLeaf {
				continue
			}
			rightPos := totalPos - leftPos
			rightN := n - leftN
			gain := parent - (leftN/n)*gini(leftPos, leftN) - (rightN/n)*gini(rightPos, rightN)
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeat = f
				bestThresh = (v + next) / 2
			}
		}
	}
	if bestFeat < 0 {
		return &node{leaf: true, prob: prob}
	}
	var lo, hi []int
	for _, i := range idx {
		if samples[i].Features[bestFeat] <= bestThresh {
			lo = append(lo, i)
		} else {
			hi = append(hi, i)
		}
	}
	return &node{
		feature: bestFeat,
		thresh:  bestThresh,
		lo:      build(samples, lo, feats, cfg, depth+1),
		hi:      build(samples, hi, feats, cfg, depth+1),
		prob:    prob,
	}
}

// PredictProb returns the positive fraction of the leaf the features land in.
func (t *Tree) PredictProb(features []float64) float64 {
	n := t.root
	for !n.leaf {
		if features[n.feature] <= n.thresh {
			n = n.lo
		} else {
			n = n.hi
		}
	}
	return n.prob
}

// Predict classifies at the 0.5 threshold.
func (t *Tree) Predict(features []float64) bool { return t.PredictProb(features) >= 0.5 }

// Depth returns the tree depth (leaves at depth 0 for a stump).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n.leaf {
		return 0
	}
	lo, hi := depthOf(n.lo), depthOf(n.hi)
	if hi > lo {
		lo = hi
	}
	return lo + 1
}

// Forest is a bagged ensemble of trees (the CLIM-style random forest).
type Forest struct {
	Trees []*Tree
}

// TrainForest fits nTrees trees on bootstrap resamples with random feature
// subsets of size sqrt(numFeatures).
func TrainForest(samples []Sample, nTrees int, cfg Config, seed uint64) (*Forest, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("mlpred: no training samples")
	}
	if nTrees <= 0 {
		nTrees = 10
	}
	nf := len(samples[0].Features)
	sub := int(math.Ceil(math.Sqrt(float64(nf))))
	rng := numeric.NewRNG(seed)
	f := &Forest{}
	for k := 0; k < nTrees; k++ {
		boot := make([]Sample, len(samples))
		for i := range boot {
			boot[i] = samples[rng.Intn(len(samples))]
		}
		perm := rng.Perm(nf)
		c := cfg
		c.Features = perm[:sub]
		t, err := Train(boot, c)
		if err != nil {
			return nil, err
		}
		f.Trees = append(f.Trees, t)
	}
	return f, nil
}

// PredictProb averages the ensemble's leaf probabilities.
func (f *Forest) PredictProb(features []float64) float64 {
	var k numeric.KahanSum
	for _, t := range f.Trees {
		k.Add(t.PredictProb(features))
	}
	return k.Value() / float64(len(f.Trees))
}

// Predict classifies at the 0.5 threshold.
func (f *Forest) Predict(features []float64) bool { return f.PredictProb(features) >= 0.5 }

// Accuracy returns the fraction of samples a predictor classifies correctly.
func Accuracy(pred func([]float64) bool, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	ok := 0
	for _, s := range samples {
		if pred(s.Features) == s.Label {
			ok++
		}
	}
	return float64(ok) / float64(len(samples))
}

// BrierScore returns the mean squared error of probabilistic predictions —
// the calibration metric on which the classifier baselines fall behind the
// analytic DTS-based model under process variation.
func BrierScore(prob func([]float64) float64, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var k numeric.KahanSum
	for _, s := range samples {
		y := 0.0
		if s.Label {
			y = 1
		}
		d := prob(s.Features) - y
		k.Add(d * d)
	}
	return k.Value() / float64(len(samples))
}
