package mlpred

import (
	"fmt"
	"math"
	"sort"

	"tsperr/internal/numeric"
)

// This file extends the package's CART machinery from classification to
// regression, which is what the surrogate fast tier needs: it predicts the
// log10 error rate directly, and — unlike the classifiers — it must come
// with a calibrated uncertainty so a confidence gate can decide when the
// prediction is trustworthy enough to serve. Each leaf therefore stores the
// target variance alongside the mean, and the forest combines leaves by the
// law of total variance: within-leaf spread plus between-tree disagreement.
//
// Unlike Tree, the regression types use exported flat-array nodes so a
// trained forest gob-serializes directly (the surrogate snapshot in
// internal/modelcache).

// RegSample is one regression training observation.
type RegSample struct {
	// Features are numeric feature values, same contract as Sample.Features.
	Features []float64
	// Target is the regressed quantity (the surrogate uses log10 error rate).
	Target float64
}

// RegNode is one node of a flat regression tree. Leaves carry the target
// mean, the biased sample variance, and the training count of the samples
// that landed there; interior nodes carry the split and child indices.
type RegNode struct {
	Leaf    bool
	Feature int
	Thresh  float64
	// Lo and Hi index the tree's Nodes slice (unused on leaves).
	Lo, Hi int32
	Mean   float64
	Var    float64
	Count  int32
}

// RegTree is a CART regression tree over a flat node slice; Nodes[0] is the
// root. The flat layout exists for gob: an exported, pointer-free encoding
// that a different process can decode without this package's internals.
type RegTree struct {
	Nodes       []RegNode
	NumFeatures int
}

// regStats is the sufficient statistics of a sample subset: count, target
// sum, and target square sum. SSE and variance derive from them.
type regStats struct {
	n, sum, sum2 float64
}

func (st regStats) mean() float64 {
	if st.n == 0 {
		return 0
	}
	return st.sum / st.n
}

// sse is the sum of squared errors around the subset mean, clamped at zero
// against cancellation noise.
func (st regStats) sse() float64 {
	if st.n == 0 {
		return 0
	}
	s := st.sum2 - st.sum*st.sum/st.n
	if s < 0 {
		return 0
	}
	return s
}

func statsOf(samples []RegSample, idx []int) regStats {
	var st regStats
	for _, i := range idx {
		y := samples[i].Target
		st.n++
		st.sum += y
		st.sum2 += y * y
	}
	return st
}

// TrainRegTree fits a regression tree by variance reduction (SSE splits),
// mirroring Train's structure: per-feature sort, split candidates only at
// boundaries between distinct values, MinLeaf on both sides.
func TrainRegTree(samples []RegSample, cfg Config) (*RegTree, error) {
	nf, err := checkSamples(samples, func(s RegSample) []float64 { return s.Features })
	if err != nil {
		return nil, err
	}
	cfg, err = cfg.resolve(nf)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	t := &RegTree{NumFeatures: nf}
	t.buildReg(samples, idx, cfg, 0)
	return t, nil
}

// buildReg appends the subtree over idx to t.Nodes and returns its root
// index.
func (t *RegTree) buildReg(samples []RegSample, idx []int, cfg Config, depth int) int32 {
	st := statsOf(samples, idx)
	self := int32(len(t.Nodes))
	leaf := RegNode{
		Leaf:  true,
		Mean:  st.mean(),
		Var:   st.sse() / math.Max(st.n, 1),
		Count: int32(len(idx)),
	}
	t.Nodes = append(t.Nodes, leaf)
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf || leaf.Var <= 0 {
		return self
	}
	parentSSE := st.sse()
	bestGain := 0.0
	bestFeat := -1
	bestThresh := 0.0
	order := make([]int, len(idx))
	for _, f := range cfg.Features {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool {
			return samples[order[a]].Features[f] < samples[order[b]].Features[f]
		})
		var left regStats
		for k := 0; k < len(order)-1; k++ {
			y := samples[order[k]].Target
			left.n++
			left.sum += y
			left.sum2 += y * y
			v, next := samples[order[k]].Features[f], samples[order[k+1]].Features[f]
			if v >= next {
				continue // adjacent equal keys: no split point exists between them
			}
			if int(left.n) < cfg.MinLeaf || len(order)-int(left.n) < cfg.MinLeaf {
				continue
			}
			right := regStats{n: st.n - left.n, sum: st.sum - left.sum, sum2: st.sum2 - left.sum2}
			gain := parentSSE - left.sse() - right.sse()
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeat = f
				bestThresh = (v + next) / 2
			}
		}
	}
	if bestFeat < 0 {
		return self
	}
	var lo, hi []int
	for _, i := range idx {
		if samples[i].Features[bestFeat] <= bestThresh {
			lo = append(lo, i)
		} else {
			hi = append(hi, i)
		}
	}
	// Recurse first, then patch the placeholder: the children's indices are
	// unknown until their subtrees are appended.
	loIdx := t.buildReg(samples, lo, cfg, depth+1)
	hiIdx := t.buildReg(samples, hi, cfg, depth+1)
	t.Nodes[self] = RegNode{
		Feature: bestFeat,
		Thresh:  bestThresh,
		Lo:      loIdx,
		Hi:      hiIdx,
		Mean:    leaf.Mean,
		Var:     leaf.Var,
		Count:   leaf.Count,
	}
	return self
}

// Predict walks the tree and returns the leaf's target mean, biased sample
// variance, and training count.
func (t *RegTree) Predict(features []float64) (mean, variance float64, count int) {
	n := &t.Nodes[0]
	for !n.Leaf {
		if features[n.Feature] <= n.Thresh {
			n = &t.Nodes[n.Lo]
		} else {
			n = &t.Nodes[n.Hi]
		}
	}
	return n.Mean, n.Var, int(n.Count)
}

// RegForest is a bagged regression ensemble with random feature subsets —
// the surrogate's model. Trees is exported for gob.
type RegForest struct {
	Trees       []*RegTree
	NumFeatures int
}

// TrainRegForest fits nTrees regression trees on bootstrap resamples with
// random feature subsets of size sqrt(numFeatures), mirroring TrainForest.
// The seed fully determines the forest.
func TrainRegForest(samples []RegSample, nTrees int, cfg Config, seed uint64) (*RegForest, error) {
	nf, err := checkSamples(samples, func(s RegSample) []float64 { return s.Features })
	if err != nil {
		return nil, err
	}
	if nTrees <= 0 {
		nTrees = 10
	}
	sub := int(math.Ceil(math.Sqrt(float64(nf))))
	rng := numeric.NewRNG(seed)
	f := &RegForest{NumFeatures: nf}
	for k := 0; k < nTrees; k++ {
		boot := make([]RegSample, len(samples))
		for i := range boot {
			boot[i] = samples[rng.Intn(len(samples))]
		}
		perm := rng.Perm(nf)
		c := cfg
		c.Features = perm[:sub]
		t, err := TrainRegTree(boot, c)
		if err != nil {
			return nil, err
		}
		f.Trees = append(f.Trees, t)
	}
	return f, nil
}

// Predict returns the ensemble mean and a calibrated uncertainty: the
// standard deviation combining, by the law of total variance, the mean
// within-leaf variance (aleatoric spread of the training targets) with the
// across-tree variance of the leaf means (epistemic disagreement of the
// bootstrap ensemble). Sparse or contradictory training data widens std;
// dense, consistent data narrows it — which is exactly the signal the
// surrogate's confidence gate thresholds.
func (f *RegForest) Predict(features []float64) (mean, std float64) {
	n := float64(len(f.Trees))
	if n == 0 {
		return 0, math.Inf(1)
	}
	var sumMean, sumMean2, sumVar numeric.KahanSum
	for _, t := range f.Trees {
		m, v, _ := t.Predict(features)
		sumMean.Add(m)
		sumMean2.Add(m * m)
		sumVar.Add(v)
	}
	mean = sumMean.Value() / n
	between := sumMean2.Value()/n - mean*mean
	if between < 0 {
		between = 0
	}
	within := sumVar.Value() / n
	return mean, math.Sqrt(within + between)
}

// RegMAE returns the mean absolute prediction error over samples.
func RegMAE(predict func([]float64) (float64, float64), samples []RegSample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var k numeric.KahanSum
	for _, s := range samples {
		m, _ := predict(s.Features)
		k.Add(math.Abs(m - s.Target))
	}
	return k.Value() / float64(len(samples))
}

// Validate checks a decoded forest for structural integrity (child indices
// in range, a root per tree, a consistent feature count) so a corrupt or
// hand-edited snapshot fails loudly at load instead of panicking at predict.
func (f *RegForest) Validate() error {
	if f == nil || len(f.Trees) == 0 {
		return fmt.Errorf("mlpred: empty forest")
	}
	for ti, t := range f.Trees {
		if t == nil || len(t.Nodes) == 0 {
			return fmt.Errorf("mlpred: forest tree %d is empty", ti)
		}
		if t.NumFeatures != f.NumFeatures {
			return fmt.Errorf("mlpred: forest tree %d expects %d features, forest %d", ti, t.NumFeatures, f.NumFeatures)
		}
		for ni, nd := range t.Nodes {
			if nd.Leaf {
				continue
			}
			if nd.Feature < 0 || nd.Feature >= t.NumFeatures {
				return fmt.Errorf("mlpred: forest tree %d node %d splits on feature %d of %d", ti, ni, nd.Feature, t.NumFeatures)
			}
			if nd.Lo <= int32(ni) || nd.Hi <= int32(ni) ||
				int(nd.Lo) >= len(t.Nodes) || int(nd.Hi) >= len(t.Nodes) {
				return fmt.Errorf("mlpred: forest tree %d node %d has out-of-range children", ti, ni)
			}
		}
	}
	return nil
}
