package mlpred

import (
	"math"
	"testing"

	"tsperr/internal/numeric"
)

// thresholdData: label = feature[0] > 10, with a nuisance feature.
func thresholdData(n int, rng *numeric.RNG) []Sample {
	out := make([]Sample, n)
	for i := range out {
		x := rng.Float64() * 20
		out[i] = Sample{
			Features: []float64{x, rng.Float64()},
			Label:    x > 10,
		}
	}
	return out
}

func TestTreeLearnsThreshold(t *testing.T) {
	rng := numeric.NewRNG(1)
	train := thresholdData(400, rng)
	test := thresholdData(200, rng)
	tree, err := Train(train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(tree.Predict, test); acc < 0.97 {
		t.Errorf("accuracy = %v", acc)
	}
	if d := tree.Depth(); d < 1 || d > 4 {
		t.Errorf("depth = %d", d)
	}
}

func TestTreeLearnsInteraction(t *testing.T) {
	// XOR-like: needs depth 2.
	rng := numeric.NewRNG(3)
	gen := func(n int) []Sample {
		out := make([]Sample, n)
		for i := range out {
			a, b := rng.Float64(), rng.Float64()
			out[i] = Sample{Features: []float64{a, b}, Label: (a > 0.5) != (b > 0.5)}
		}
		return out
	}
	tree, err := Train(gen(800), Config{MaxDepth: 3, MinLeaf: 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(tree.Predict, gen(300)); acc < 0.9 {
		t.Errorf("XOR accuracy = %v", acc)
	}
}

func TestTreePureLeafShortCircuit(t *testing.T) {
	samples := []Sample{
		{Features: []float64{1}, Label: true},
		{Features: []float64{2}, Label: true},
	}
	tree, err := Train(samples, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !tree.root.leaf || tree.root.prob != 1 {
		t.Error("all-positive data should give a pure leaf")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, DefaultConfig()); err == nil {
		t.Error("empty training set should fail")
	}
	bad := []Sample{{Features: []float64{1}}, {Features: []float64{1, 2}}}
	if _, err := Train(bad, DefaultConfig()); err == nil {
		t.Error("ragged features should fail")
	}
}

func TestForestAtLeastAsGoodAsStump(t *testing.T) {
	rng := numeric.NewRNG(9)
	train := thresholdData(500, rng)
	test := thresholdData(300, rng)
	stump, err := Train(train, Config{MaxDepth: 1, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := TrainForest(train, 15, Config{MaxDepth: 4, MinLeaf: 4}, 42)
	if err != nil {
		t.Fatal(err)
	}
	sAcc := Accuracy(stump.Predict, test)
	fAcc := Accuracy(forest.Predict, test)
	if fAcc < sAcc-0.02 {
		t.Errorf("forest %v should not be worse than a stump %v", fAcc, sAcc)
	}
}

func TestProbCalibrationOnDeterministicData(t *testing.T) {
	rng := numeric.NewRNG(5)
	train := thresholdData(600, rng)
	tree, err := Train(train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic labels: Brier score should be near zero.
	if bs := BrierScore(tree.PredictProb, train); bs > 0.03 {
		t.Errorf("Brier score on separable data = %v", bs)
	}
}

func TestClassifierCannotExpressProbabilisticErrors(t *testing.T) {
	// The paper's criticism: near the critical operating point an
	// instruction errs with some mid-range probability (process variation);
	// a classifier trained on error outcomes of ONE chip sample predicts
	// hard 0/1 and is mis-calibrated for the population. Construct
	// observations where identical features carry probabilistic labels.
	rng := numeric.NewRNG(11)
	const p = 0.3 // true error probability at this feature point
	var samples []Sample
	for i := 0; i < 2000; i++ {
		samples = append(samples, Sample{
			Features: []float64{32, 5}, // a full carry chain, some toggles
			Label:    rng.Float64() < p,
		})
	}
	tree, err := Train(samples, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The tree can only output the leaf mean — fine here — but the *hard
	// classifier* view (what the compiler-scheduling baselines consume)
	// collapses it to "no error", under-predicting the error count by 100%.
	if tree.Predict([]float64{32, 5}) {
		t.Error("hard classifier should say 'no error' at p=0.3")
	}
	// The analytic model's Brier score at the true probability is
	// p(1-p); the hard 0/1 prediction's is p. The analytic model wins.
	analytic := p * (1 - p)
	hard := BrierScore(func([]float64) float64 { return 0 }, samples)
	if !(analytic < hard) {
		t.Errorf("probabilistic model should beat the hard classifier: %v vs %v", analytic, hard)
	}
	if math.Abs(tree.PredictProb([]float64{32, 5})-p) > 0.05 {
		t.Errorf("leaf probability should approximate p: %v", tree.PredictProb([]float64{32, 5}))
	}
}

func TestPermCoversAllIndices(t *testing.T) {
	rng := numeric.NewRNG(13)
	p := rng.Perm(10)
	seen := map[int]bool{}
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("perm = %v", p)
	}
}
