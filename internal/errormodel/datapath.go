package errormodel

import (
	"tsperr/internal/activity"
	"tsperr/internal/dta"
	"tsperr/internal/isa"
	"tsperr/internal/netlist"
	"tsperr/internal/variation"
)

// DatapathModel is the higher-level datapath timing model of [2]: it is
// trained by applying Algorithm 1 to the data endpoints of each functional
// unit while special stimulus selectively activates timing paths of a known
// depth, and is then consulted per dynamic instruction using only
// architecturally visible values (the activated-depth features the simulator
// extracts).
type DatapathModel struct {
	// AdderSlack[d] is the canonical DTS form of the adder when a carry
	// chain of exactly d bits is activated; AdderFail[d] = P(DTS < 0).
	AdderSlack []variation.Canon
	AdderFail  []float64
	// ShiftSlack[k]/ShiftFail[k] cover k active barrel-shifter layers
	// (depth feature = k+1).
	ShiftSlack []variation.Canon
	ShiftFail  []float64
	// LogicFail is the (depth-independent) logic-unit failure probability.
	LogicFail float64
	// MulSlack[d]/MulFail[d] cover the array multiplier when the smaller
	// operand has d significant bits (d rows of the array carry).
	MulSlack []variation.Canon
	MulFail  []float64
}

func setWordInputs(in map[netlist.GateID]bool, gates [32]netlist.GateID, w uint32) {
	for i := 0; i < 32; i++ {
		in[gates[i]] = (w>>uint(i))&1 == 1
	}
}

// TrainDatapath measures the per-depth DTS tables. It mirrors the training
// flow of Figure 2: run targeted vectors through the gate-level unit, record
// activity, and apply Algorithm 1 to the data endpoints.
func (m *Machine) TrainDatapath() (*DatapathModel, error) {
	dp := &DatapathModel{}

	// ---- Adder: carry chains of exact length d. ----
	adderSim, err := activity.NewSimulator(m.Adder.N)
	if err != nil {
		return nil, err
	}
	adderEps := m.Adder.N.DataEndpoints(0)
	dp.AdderSlack = make([]variation.Canon, 33)
	dp.AdderFail = make([]float64, 33)
	for d := 1; d <= 32; d++ {
		adderSim.Reset()
		in := map[netlist.GateID]bool{}
		setWordInputs(in, m.Adder.A, 0)
		setWordInputs(in, m.Adder.B, 0)
		in[m.Adder.Cin] = false
		tr := &activity.Trace{NumGates: m.Adder.N.NumGates()}
		tr.Sets = append(tr.Sets, adderSim.Cycle(in))
		var a uint32
		if d == 32 {
			a = 0xFFFFFFFF
		} else {
			a = (uint32(1) << uint(d)) - 1
		}
		setWordInputs(in, m.Adder.A, a)
		setWordInputs(in, m.Adder.B, 1)
		tr.Sets = append(tr.Sets, adderSim.Cycle(in))
		slack, ok := m.AdderDTA.StageDTS(adderEps, 1, tr)
		if !ok {
			continue // no activated path at this depth
		}
		dp.AdderSlack[d] = slack
		dp.AdderFail[d] = dta.ErrorProbability(slack)
	}

	// ---- Shifter: k active layers. ----
	shiftSim, err := activity.NewSimulator(m.Shifter.N)
	if err != nil {
		return nil, err
	}
	shiftEps := m.Shifter.N.DataEndpoints(0)
	dp.ShiftSlack = make([]variation.Canon, 6)
	dp.ShiftFail = make([]float64, 6)
	for k := 1; k <= 5; k++ {
		shiftSim.Reset()
		in := map[netlist.GateID]bool{}
		setWordInputs(in, m.Shifter.In, 0)
		for i := 0; i < 5; i++ {
			in[m.Shifter.Amt[i]] = false
		}
		tr := &activity.Trace{NumGates: m.Shifter.N.NumGates()}
		tr.Sets = append(tr.Sets, shiftSim.Cycle(in))
		setWordInputs(in, m.Shifter.In, 0xFFFFFFFF)
		amt := (uint32(1) << uint(k)) - 1 // k low bits set => k active layers
		for i := 0; i < 5; i++ {
			in[m.Shifter.Amt[i]] = (amt>>uint(i))&1 == 1
		}
		tr.Sets = append(tr.Sets, shiftSim.Cycle(in))
		slack, ok := m.ShifterDTA.StageDTS(shiftEps, 1, tr)
		if !ok {
			continue
		}
		dp.ShiftSlack[k] = slack
		dp.ShiftFail[k] = dta.ErrorProbability(slack)
	}

	// ---- Multiplier: d significant bits in the smaller operand. ----
	mulSim, err := activity.NewSimulator(m.Mult.N)
	if err != nil {
		return nil, err
	}
	mulEps := m.Mult.N.DataEndpoints(0)
	dp.MulSlack = make([]variation.Canon, 17)
	dp.MulFail = make([]float64, 17)
	setMulWord := func(in map[netlist.GateID]bool, gates [16]netlist.GateID, w uint32) {
		for i := 0; i < 16; i++ {
			in[gates[i]] = (w>>uint(i))&1 == 1
		}
	}
	for d := 1; d <= 16; d++ {
		mulSim.Reset()
		in := map[netlist.GateID]bool{}
		setMulWord(in, m.Mult.A, 0)
		setMulWord(in, m.Mult.B, 0)
		tr := &activity.Trace{NumGates: m.Mult.N.NumGates()}
		tr.Sets = append(tr.Sets, mulSim.Cycle(in))
		var bw uint32
		if d == 16 {
			bw = 0xFFFF
		} else {
			bw = (uint32(1) << uint(d)) - 1
		}
		setMulWord(in, m.Mult.A, 0xFFFF)
		setMulWord(in, m.Mult.B, bw)
		tr.Sets = append(tr.Sets, mulSim.Cycle(in))
		slack, ok := m.MultDTA.StageDTS(mulEps, 1, tr)
		if !ok {
			continue
		}
		dp.MulSlack[d] = slack
		dp.MulFail[d] = dta.ErrorProbability(slack)
	}

	// ---- Logic unit: one full-switch measurement. ----
	logicSim, err := activity.NewSimulator(m.Logic.N)
	if err != nil {
		return nil, err
	}
	logicEps := m.Logic.N.DataEndpoints(0)
	{
		in := map[netlist.GateID]bool{}
		setWordInputs(in, m.Logic.A, 0)
		setWordInputs(in, m.Logic.B, 0)
		in[m.Logic.Sel[0]] = false
		in[m.Logic.Sel[1]] = false
		tr := &activity.Trace{NumGates: m.Logic.N.NumGates()}
		tr.Sets = append(tr.Sets, logicSim.Cycle(in))
		setWordInputs(in, m.Logic.A, 0xFFFFFFFF)
		setWordInputs(in, m.Logic.B, 0x55555555)
		in[m.Logic.Sel[1]] = true // xor
		tr.Sets = append(tr.Sets, logicSim.Cycle(in))
		if slack, ok := m.LogicDTA.StageDTS(logicEps, 1, tr); ok {
			dp.LogicFail = dta.ErrorProbability(slack)
		}
	}
	return dp, nil
}

// FailProb returns the datapath timing-error probability of an instruction
// whose activated-depth feature is depth. Monotonicity in depth is inherited
// from the trained tables.
func (dp *DatapathModel) FailProb(op isa.Op, depth int) float64 {
	if depth <= 0 {
		return 0
	}
	switch {
	case op == isa.OpMul:
		// The 32-bit mul's depth feature is the bit length of the smaller
		// operand; the modeled low-half 16x16 array saturates at 16 rows.
		if depth > 16 {
			depth = 16
		}
		return dp.MulFail[depth]
	case op == isa.OpAdd, op == isa.OpAddi, op == isa.OpLw, op == isa.OpSw,
		op == isa.OpSub, op == isa.OpSlt, op == isa.OpSlti,
		op == isa.OpBeq, op == isa.OpBne, op == isa.OpBlt, op == isa.OpBge:
		if depth > 32 {
			depth = 32
		}
		return dp.AdderFail[depth]
	case op == isa.OpSll, op == isa.OpSrl, op == isa.OpSra,
		op == isa.OpSlli, op == isa.OpSrli, op == isa.OpSrai:
		k := depth - 1
		if k < 0 {
			k = 0
		}
		if k > 5 {
			k = 5
		}
		return dp.ShiftFail[k]
	case op == isa.OpAnd, op == isa.OpOr, op == isa.OpXor,
		op == isa.OpAndi, op == isa.OpOri, op == isa.OpXori, op == isa.OpLui:
		return dp.LogicFail
	default:
		return 0
	}
}
