package errormodel

import (
	"context"
	"sync"

	"tsperr/internal/activity"
	"tsperr/internal/dta"
	"tsperr/internal/isa"
	"tsperr/internal/netlist"
	"tsperr/internal/pool"
	"tsperr/internal/variation"
)

// DatapathModel is the higher-level datapath timing model of [2]: it is
// trained by applying Algorithm 1 to the data endpoints of each functional
// unit while special stimulus selectively activates timing paths of a known
// depth, and is then consulted per dynamic instruction using only
// architecturally visible values (the activated-depth features the simulator
// extracts).
type DatapathModel struct {
	// AdderSlack[d] is the canonical DTS form of the adder when a carry
	// chain of exactly d bits is activated; AdderFail[d] = P(DTS < 0).
	AdderSlack []variation.Canon
	AdderFail  []float64
	// ShiftSlack[k]/ShiftFail[k] cover k active barrel-shifter layers
	// (depth feature = k+1).
	ShiftSlack []variation.Canon
	ShiftFail  []float64
	// LogicFail is the (depth-independent) logic-unit failure probability.
	LogicFail float64
	// MulSlack[d]/MulFail[d] cover the array multiplier when the smaller
	// operand has d significant bits (d rows of the array carry).
	MulSlack []variation.Canon
	MulFail  []float64

	// lut flattens the per-class clamping rules of failProbClassify into one
	// depth-indexed table per opcode, built lazily on first FailProb call
	// (after training or cache restore). FailProb runs once or twice per
	// retired instruction, so it must be a pair of loads, not a switch.
	lutOnce sync.Once
	lut     [isa.NumOps]*[maxDepthFeature + 1]float64
	// lutMin[op] is the smallest depth whose LUT entry is nonzero (255 when
	// the whole row is zero or absent). Every column below it is zero by
	// definition, so a single byte compare rules out the overwhelmingly
	// common zero-probability instructions before any row probe.
	lutMin [isa.NumOps]uint8
}

// setWordDense writes a 32-bit word into a dense primary-input slice.
func setWordDense(vals []bool, gates [32]netlist.GateID, w uint32) {
	for i := 0; i < 32; i++ {
		vals[gates[i]] = (w>>uint(i))&1 == 1
	}
}

// setMulWordDense writes a 16-bit word into a dense primary-input slice.
func setMulWordDense(vals []bool, gates [16]netlist.GateID, w uint32) {
	for i := 0; i < 16; i++ {
		vals[gates[i]] = (w>>uint(i))&1 == 1
	}
}

// TrainDatapath measures the per-depth DTS tables. It mirrors the training
// flow of Figure 2: run targeted vectors through the gate-level unit, record
// activity, and apply Algorithm 1 to the data endpoints. Training runs on the
// shared worker pool with GOMAXPROCS workers; ctx cancels between depth
// measurements.
func (m *Machine) TrainDatapath(ctx context.Context) (*DatapathModel, error) {
	return m.TrainDatapathWorkers(ctx, 0)
}

// TrainDatapathWorkers is TrainDatapath on a bounded pool of the given number
// of workers (<= 0 selects runtime.GOMAXPROCS). Every per-depth measurement
// is an independent task: it owns its simulator and trace, writes a distinct
// table slot, and the DTA analyzers it consults are safe for concurrent use,
// so the tables are bit-identical for any worker count.
func (m *Machine) TrainDatapathWorkers(ctx context.Context, workers int) (*DatapathModel, error) {
	dp := &DatapathModel{
		AdderSlack: make([]variation.Canon, 33),
		AdderFail:  make([]float64, 33),
		ShiftSlack: make([]variation.Canon, 6),
		ShiftFail:  make([]float64, 6),
		MulSlack:   make([]variation.Canon, 17),
		MulFail:    make([]float64, 17),
	}
	adderEps := m.Adder.N.DataEndpoints(0)
	shiftEps := m.Shifter.N.DataEndpoints(0)
	mulEps := m.Mult.N.DataEndpoints(0)
	logicEps := m.Logic.N.DataEndpoints(0)

	// Flatten the per-depth sweeps into one task list: 32 adder carry
	// depths, 5 shifter layer counts, 16 multiplier operand widths, and the
	// single logic measurement.
	var tasks []func() error
	for d := 1; d <= 32; d++ {
		d := d
		tasks = append(tasks, func() error { return m.trainAdderDepth(dp, adderEps, d) })
	}
	for k := 1; k <= 5; k++ {
		k := k
		tasks = append(tasks, func() error { return m.trainShiftLayers(dp, shiftEps, k) })
	}
	for d := 1; d <= 16; d++ {
		d := d
		tasks = append(tasks, func() error { return m.trainMulWidth(dp, mulEps, d) })
	}
	tasks = append(tasks, func() error { return m.trainLogic(dp, logicEps) })

	errs := make([]error, len(tasks))
	pool.Run(ctx, len(tasks), workers, false, errs,
		func(_ context.Context, i int) error { return tasks[i]() })
	if err := pool.FirstError(errs); err != nil {
		return nil, err
	}
	return dp, nil
}

// trainAdderDepth measures the adder DTS with a carry chain of exactly d
// bits activated and fills table slot d.
func (m *Machine) trainAdderDepth(dp *DatapathModel, eps []netlist.GateID, d int) error {
	sim, err := activity.NewSimulator(m.Adder.N)
	if err != nil {
		return err
	}
	defer sim.Release()
	vals := make([]bool, m.Adder.N.NumGates())
	setWordDense(vals, m.Adder.A, 0)
	setWordDense(vals, m.Adder.B, 0)
	vals[m.Adder.Cin] = false
	tr := &activity.Trace{NumGates: m.Adder.N.NumGates()}
	tr.Sets = append(tr.Sets, sim.CycleDense(vals))
	a := uint32(0xFFFFFFFF)
	if d < 32 {
		a = (uint32(1) << uint(d)) - 1
	}
	setWordDense(vals, m.Adder.A, a)
	setWordDense(vals, m.Adder.B, 1)
	tr.Sets = append(tr.Sets, sim.CycleDense(vals))
	slack, ok := m.AdderDTA.StageDTS(eps, 1, tr)
	if !ok {
		return nil // no activated path at this depth
	}
	dp.AdderSlack[d] = slack
	dp.AdderFail[d] = dta.ErrorProbability(slack)
	return nil
}

// trainShiftLayers measures the shifter DTS with k active barrel layers and
// fills table slot k.
func (m *Machine) trainShiftLayers(dp *DatapathModel, eps []netlist.GateID, k int) error {
	sim, err := activity.NewSimulator(m.Shifter.N)
	if err != nil {
		return err
	}
	defer sim.Release()
	vals := make([]bool, m.Shifter.N.NumGates())
	setWordDense(vals, m.Shifter.In, 0)
	for i := 0; i < 5; i++ {
		vals[m.Shifter.Amt[i]] = false
	}
	tr := &activity.Trace{NumGates: m.Shifter.N.NumGates()}
	tr.Sets = append(tr.Sets, sim.CycleDense(vals))
	setWordDense(vals, m.Shifter.In, 0xFFFFFFFF)
	amt := (uint32(1) << uint(k)) - 1 // k low bits set => k active layers
	for i := 0; i < 5; i++ {
		vals[m.Shifter.Amt[i]] = (amt>>uint(i))&1 == 1
	}
	tr.Sets = append(tr.Sets, sim.CycleDense(vals))
	slack, ok := m.ShifterDTA.StageDTS(eps, 1, tr)
	if !ok {
		return nil
	}
	dp.ShiftSlack[k] = slack
	dp.ShiftFail[k] = dta.ErrorProbability(slack)
	return nil
}

// trainMulWidth measures the multiplier DTS with d significant bits in the
// smaller operand and fills table slot d.
func (m *Machine) trainMulWidth(dp *DatapathModel, eps []netlist.GateID, d int) error {
	sim, err := activity.NewSimulator(m.Mult.N)
	if err != nil {
		return err
	}
	defer sim.Release()
	vals := make([]bool, m.Mult.N.NumGates())
	setMulWordDense(vals, m.Mult.A, 0)
	setMulWordDense(vals, m.Mult.B, 0)
	tr := &activity.Trace{NumGates: m.Mult.N.NumGates()}
	tr.Sets = append(tr.Sets, sim.CycleDense(vals))
	bw := uint32(0xFFFF)
	if d < 16 {
		bw = (uint32(1) << uint(d)) - 1
	}
	setMulWordDense(vals, m.Mult.A, 0xFFFF)
	setMulWordDense(vals, m.Mult.B, bw)
	tr.Sets = append(tr.Sets, sim.CycleDense(vals))
	slack, ok := m.MultDTA.StageDTS(eps, 1, tr)
	if !ok {
		return nil
	}
	dp.MulSlack[d] = slack
	dp.MulFail[d] = dta.ErrorProbability(slack)
	return nil
}

// trainLogic performs the single full-switch logic-unit measurement.
func (m *Machine) trainLogic(dp *DatapathModel, eps []netlist.GateID) error {
	sim, err := activity.NewSimulator(m.Logic.N)
	if err != nil {
		return err
	}
	defer sim.Release()
	vals := make([]bool, m.Logic.N.NumGates())
	setWordDense(vals, m.Logic.A, 0)
	setWordDense(vals, m.Logic.B, 0)
	vals[m.Logic.Sel[0]] = false
	vals[m.Logic.Sel[1]] = false
	tr := &activity.Trace{NumGates: m.Logic.N.NumGates()}
	tr.Sets = append(tr.Sets, sim.CycleDense(vals))
	setWordDense(vals, m.Logic.A, 0xFFFFFFFF)
	setWordDense(vals, m.Logic.B, 0x55555555)
	vals[m.Logic.Sel[1]] = true // xor
	tr.Sets = append(tr.Sets, sim.CycleDense(vals))
	if slack, ok := m.LogicDTA.StageDTS(eps, 1, tr); ok {
		dp.LogicFail = dta.ErrorProbability(slack)
	}
	return nil
}

// maxDepthFeature bounds the activated-depth feature: carry chains and toggle
// runs on a 32-bit datapath never exceed 32, and the per-class tables saturate
// below that. LUT columns cover [0, maxDepthFeature] and failProbSlow clamps
// anything larger, so a single upper clamp makes the LUT exact.
const maxDepthFeature = 32

// failProbSlow is the reference per-class classification; it seeds the LUT
// and anchors the LUT-equivalence test.
func (dp *DatapathModel) failProbSlow(op isa.Op, depth int) float64 {
	if depth <= 0 {
		return 0
	}
	switch {
	case op == isa.OpMul:
		// The 32-bit mul's depth feature is the bit length of the smaller
		// operand; the modeled low-half 16x16 array saturates at 16 rows.
		if depth > 16 {
			depth = 16
		}
		return dp.MulFail[depth]
	case op == isa.OpAdd, op == isa.OpAddi, op == isa.OpLw, op == isa.OpSw,
		op == isa.OpSub, op == isa.OpSlt, op == isa.OpSlti,
		op == isa.OpBeq, op == isa.OpBne, op == isa.OpBlt, op == isa.OpBge:
		if depth > 32 {
			depth = 32
		}
		return dp.AdderFail[depth]
	case op == isa.OpSll, op == isa.OpSrl, op == isa.OpSra,
		op == isa.OpSlli, op == isa.OpSrli, op == isa.OpSrai:
		k := depth - 1
		if k < 0 {
			k = 0
		}
		if k > 5 {
			k = 5
		}
		return dp.ShiftFail[k]
	case op == isa.OpAnd, op == isa.OpOr, op == isa.OpXor,
		op == isa.OpAndi, op == isa.OpOri, op == isa.OpXori, op == isa.OpLui:
		return dp.LogicFail
	default:
		return 0
	}
}

// buildLUT materializes failProbSlow into per-op depth tables. Ops with no
// datapath model keep a nil row, which the fast path reads as probability 0.
func (dp *DatapathModel) buildLUT() {
	for op := isa.Op(0); op < isa.NumOps; op++ {
		var row [maxDepthFeature + 1]float64
		min := 255
		for d := 0; d <= maxDepthFeature; d++ {
			row[d] = dp.failProbSlow(op, d)
			if row[d] != 0 && min == 255 {
				min = d
			}
		}
		dp.lutMin[op] = uint8(min)
		if min < 255 {
			dp.lut[op] = &row
		}
	}
}

// lutDepth clamps a depth feature into the LUT column range. Column 0 holds
// probability 0, matching failProbSlow's depth <= 0 contract, so callers can
// index a row directly with the clamped value.
func lutDepth(d int) int {
	if d < 0 {
		return 0
	}
	if d > maxDepthFeature {
		return maxDepthFeature
	}
	return d
}

// FailProb returns the datapath timing-error probability of an instruction
// whose activated-depth feature is depth. Monotonicity in depth is inherited
// from the trained tables.
func (dp *DatapathModel) FailProb(op isa.Op, depth int) float64 {
	dp.lutOnce.Do(dp.buildLUT)
	if depth <= 0 || int(op) >= len(dp.lut) {
		return 0
	}
	row := dp.lut[op]
	if row == nil {
		return 0
	}
	if depth > maxDepthFeature {
		depth = maxDepthFeature
	}
	return row[depth]
}
