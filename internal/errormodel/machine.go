// Package errormodel implements the paper's instruction error model
// (Section 4): control-network DTS characterization per basic block and
// incoming edge, the trained higher-level datapath timing model of [2], the
// nop-instrumentation extraction of error-conditioned probabilities (Section
// 4.1), and the marginal error probability computation of Section 4.2
// (recurrence within blocks, linear systems per CFG strongly connected
// component).
package errormodel

import (
	"context"
	"fmt"
	"sync"

	"tsperr/internal/cell"
	"tsperr/internal/dta"
	"tsperr/internal/gen"
	"tsperr/internal/netlist"
	"tsperr/internal/pool"
	"tsperr/internal/sta"
	"tsperr/internal/variation"
)

// Options configure the modeled silicon and operating point, mirroring the
// experimental setup of Section 6.1.
type Options struct {
	// BaseFreqMHz is the non-speculative (STA sign-off) frequency.
	BaseFreqMHz float64
	// PoFFRatio is the point-of-first-failure frequency over base (1.13).
	PoFFRatio float64
	// WorkingRatio is the speculative operating frequency over base (1.15).
	WorkingRatio float64
	// SigmaRel is the per-gate relative delay sigma.
	SigmaRel float64
	// VariationLevels and CorrShare parameterize the quad-tree model.
	VariationLevels int
	CorrShare       float64
	// KPaths is the per-endpoint critical path count for DTA.
	KPaths int
	// Unit delay balancing: each unit's statistically-worst delay is placed
	// at this fraction of the PoFF period (the adder at 1.0 defines PoFF).
	ControlRatio, ShifterRatio, LogicRatio, MultiplierRatio float64
	// CalibrationPercentile is the max-delay quantile pinned to the PoFF
	// period (errors first appear when the clock intrudes into the upper
	// tail of the critical-delay distribution).
	CalibrationPercentile float64
	// Cond is the operating condition (supply voltage, temperature) the
	// machine serves at. The zero value is the nominal condition and
	// reproduces pre-condition behavior bit-exactly. Calibration always
	// runs at the nominal condition — the delay scale is a design
	// property — and the condition's V/T factors multiply on top in the
	// serving engines, so droop and heat shift every DTS distribution.
	// Cond is part of the model-cache key (the cache hashes Options with
	// %+v), so snapshots never mix conditions.
	Cond cell.OperatingCondition
}

// DefaultOptions returns the paper's setup.
func DefaultOptions() Options {
	return Options{
		BaseFreqMHz:           718,
		PoFFRatio:             1.13,
		WorkingRatio:          1.15,
		SigmaRel:              cell.SigmaRel,
		VariationLevels:       2,
		CorrShare:             0.5,
		KPaths:                6,
		ControlRatio:          0.97,
		ShifterRatio:          0.90,
		LogicRatio:            0.85,
		MultiplierRatio:       0.95,
		CalibrationPercentile: 0.99,
	}
}

// Machine bundles the generated netlists, their SSTA engines, and DTA
// analyzers at a chosen operating point.
type Machine struct {
	Opts  Options
	Model *variation.Model

	Ctrl    *gen.ControlNet
	Adder   *gen.AdderNet
	Shifter *gen.ShifterNet
	Logic   *gen.LogicNet
	Mult    *gen.MultiplierNet

	// BasePeriodPs, PoFFPeriodPs and WorkingPeriodPs are the clock periods
	// of the three operating points in picoseconds.
	BasePeriodPs    float64
	PoFFPeriodPs    float64
	WorkingPeriodPs float64

	CtrlEngine    *sta.Engine
	AdderEngine   *sta.Engine
	ShifterEngine *sta.Engine
	LogicEngine   *sta.Engine
	MultEngine    *sta.Engine

	CtrlDTA    *dta.Analyzer
	AdderDTA   *dta.Analyzer
	ShifterDTA *dta.Analyzer
	LogicDTA   *dta.Analyzer
	MultDTA    *dta.Analyzer

	// stim memoizes control-stimulus runs across blocks and programs at the
	// current operating point (see control.go); guarded by stimMu.
	stimMu sync.Mutex
	stim   map[string]*stimEntry

	// ctrlSets holds the per-stage control-only endpoint sets of the control
	// network, computed once so the per-instruction DTS queries of the
	// characterization skip per-call set construction (immutable after
	// newMachine).
	ctrlSets [][]netlist.GateID
}

// NewMachine generates the netlists and calibrates each unit's delay scale
// so that the design's point of first failure and working point sit at the
// configured ratios of the base frequency.
func NewMachine(opts Options) (*Machine, error) {
	return NewMachineContext(context.Background(), opts)
}

// NewMachineContext is NewMachine with cancellable calibration: ctx aborts
// the per-unit SSTA calibration between units.
func NewMachineContext(ctx context.Context, opts Options) (*Machine, error) {
	return newMachine(ctx, opts, nil)
}

// NewMachineWithScales rebuilds a machine from previously calibrated
// per-unit delay scales keyed by netlist name, skipping the expensive SSTA
// calibration of each unit. It is the warm path of the persistent model
// cache: the netlists regenerate deterministically, so a machine restored
// with the scales of an earlier NewMachine call is identical to it. A
// missing or non-positive scale is an error (the caller should fall back to
// full calibration).
func NewMachineWithScales(opts Options, scales map[string]float64) (*Machine, error) {
	return NewMachineWithScalesContext(context.Background(), opts, scales)
}

// NewMachineWithScalesContext is NewMachineWithScales with cancellation.
func NewMachineWithScalesContext(ctx context.Context, opts Options, scales map[string]float64) (*Machine, error) {
	if scales == nil {
		return nil, fmt.Errorf("errormodel: nil scale table")
	}
	return newMachine(ctx, opts, scales)
}

// Scales returns the calibrated per-unit delay scales keyed by netlist name,
// the input NewMachineWithScales needs to reconstruct this machine.
func (m *Machine) Scales() map[string]float64 {
	out := make(map[string]float64, 5)
	for _, e := range []*sta.Engine{
		m.AdderEngine, m.CtrlEngine, m.ShifterEngine, m.LogicEngine, m.MultEngine,
	} {
		out[e.N.Name] = e.DelayScale
	}
	return out
}

func newMachine(ctx context.Context, opts Options, scales map[string]float64) (*Machine, error) {
	if opts.BaseFreqMHz <= 0 || opts.WorkingRatio <= 0 || opts.PoFFRatio <= 0 {
		return nil, fmt.Errorf("errormodel: non-positive frequency configuration")
	}
	// Reject the quantile here, at the input boundary: downstream it feeds
	// NormalQuantile on the calibration path, which must never see an
	// out-of-domain probability.
	if !(opts.CalibrationPercentile > 0 && opts.CalibrationPercentile < 1) {
		return nil, fmt.Errorf("errormodel: CalibrationPercentile %v outside (0, 1)",
			opts.CalibrationPercentile)
	}
	if err := opts.Cond.Validate(); err != nil {
		return nil, err
	}
	model, err := variation.NewModel(opts.VariationLevels, opts.CorrShare)
	if err != nil {
		return nil, err
	}
	m := &Machine{Opts: opts, Model: model}
	m.Ctrl = gen.Control()
	m.Adder = gen.Adder()
	m.Shifter = gen.Shifter()
	m.Logic = gen.Logic()
	m.Mult = gen.Multiplier()

	m.BasePeriodPs = 1e6 / opts.BaseFreqMHz
	m.PoFFPeriodPs = m.BasePeriodPs / opts.PoFFRatio
	m.WorkingPeriodPs = m.BasePeriodPs / opts.WorkingRatio

	type unit struct {
		n     *netlist.Netlist
		ratio float64
		eng   **sta.Engine
		ana   **dta.Analyzer
	}
	units := []unit{
		{m.Adder.N, 1.0, &m.AdderEngine, &m.AdderDTA},
		{m.Ctrl.N, opts.ControlRatio, &m.CtrlEngine, &m.CtrlDTA},
		{m.Shifter.N, opts.ShifterRatio, &m.ShifterEngine, &m.ShifterDTA},
		{m.Logic.N, opts.LogicRatio, &m.LogicEngine, &m.LogicDTA},
		{m.Mult.N, opts.MultiplierRatio, &m.MultEngine, &m.MultDTA},
	}
	// The five units calibrate independently (each owns its netlist, engine,
	// and analyzer slot), so the SSTA calibration — the dominant cost of
	// machine construction — runs on the shared bounded worker pool. A
	// cached scale table (warm start) skips calibration entirely.
	errs := make([]error, len(units))
	pool.Run(ctx, len(units), 0, false, errs, func(_ context.Context, i int) error {
		u := units[i]
		var scale float64
		if scales != nil {
			scale = scales[u.n.Name]
			if scale <= 0 {
				return fmt.Errorf("errormodel: no cached scale for %s", u.n.Name)
			}
		} else {
			target := m.PoFFPeriodPs * u.ratio
			var err error
			scale, err = gen.CalibrateScale([]*netlist.Netlist{u.n}, model,
				opts.SigmaRel, target, opts.CalibrationPercentile, opts.KPaths)
			if err != nil {
				return fmt.Errorf("errormodel: calibrating %s: %w", u.n.Name, err)
			}
		}
		e, err := sta.NewEngineAt(u.n, model, m.WorkingPeriodPs, opts.SigmaRel, scale, opts.Cond)
		if err != nil {
			return err
		}
		*u.eng = e
		*u.ana = dta.New(e, opts.KPaths)
		return nil
	})
	if err := pool.FirstError(errs); err != nil {
		return nil, err
	}
	m.ctrlSets = m.CtrlDTA.StageSets(func(g *netlist.Gate) bool { return !g.Data })
	return m, nil
}

// WorkingFreqMHz returns the speculative operating frequency.
func (m *Machine) WorkingFreqMHz() float64 { return 1e6 / m.WorkingPeriodPs }

// SetWorkingPeriod re-targets all engines at a new clock period, used by the
// operating-point sweep example. The DTA analyzers survive the retarget: the
// clock period enters their memoized reductions only as a final additive
// constant (see package dta), so path enumerations and stage reductions are
// reused across operating points. Only the stimulus memo — which stores
// probabilities, genuinely period-dependent — is dropped. Must not be called
// concurrently with analysis.
func (m *Machine) SetWorkingPeriod(periodPs float64) {
	m.WorkingPeriodPs = periodPs
	m.ClearStimulusMemo() // memoized probabilities are per operating point
	for _, eng := range []*sta.Engine{
		m.CtrlEngine, m.AdderEngine, m.ShifterEngine, m.LogicEngine, m.MultEngine,
	} {
		eng.ClockPeriod = periodPs
	}
}
