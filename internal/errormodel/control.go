package errormodel

import (
	"context"
	"sync"

	"tsperr/internal/activity"
	"tsperr/internal/cfg"
	"tsperr/internal/cpu"
	"tsperr/internal/dta"
	"tsperr/internal/isa"
	"tsperr/internal/pool"
)

// ControlChar is the per-basic-block control-network DTS characterization of
// Section 4: for every block and every instruction position it stores the
// control-path timing-error probability, mixed over the profiled incoming
// edges (the paper characterizes "along all incoming edges" because two
// blocks share the pipeline at block boundaries), plus the flushed-state
// variant extracted with nop instrumentation.
type ControlChar struct {
	// Fail[b][k] is P(control DTS < 0) for the k-th instruction of block b
	// given normal execution of its predecessor.
	Fail [][]float64
	// FailFlush[b][k] is the same probability given the pipeline was flushed
	// before the instruction (previous instruction errored).
	FailFlush [][]float64
	// TrainedBlocks counts blocks that were actually characterized
	// (executed at least once in the training profile).
	TrainedBlocks int
}

// prefixWindow is how many trailing predecessor instructions precede the
// block during characterization, enough to fill the 6-stage pipeline.
const prefixWindow = cpu.NumStages

// stimMemoLimit bounds the stimulus memo; dropping it wholesale on overflow
// keeps memory bounded without affecting results (entries are pure functions
// of their key).
const stimMemoLimit = 1 << 12

// stimEntry is one memoized control-stimulus run. The activation trace is
// simulated once under the once guard; per-position instruction failure
// probabilities fill in lazily as blocks query them.
type stimEntry struct {
	once sync.Once
	tr   *activity.Trace
	err  error

	mu sync.Mutex
	// fail maps sequence position to failure probability; guarded by mu.
	fail map[int]float64
}

// controlStimulus drives the control network for one instruction sequence
// and returns the activation trace. results[i] supplies the representative
// EX result value for static instruction index i (from the training run);
// entries for pseudo-instructions (nops) observe zero.
func (m *Machine) controlStimulus(seq []isa.Inst, seqIdx []int, results []uint32) (*activity.Trace, error) {
	sim, err := activity.NewSimulator(m.Ctrl.N)
	if err != nil {
		return nil, err
	}
	defer sim.Release()
	tr := &activity.Trace{NumGates: m.Ctrl.N.NumGates()}
	total := len(seq) + cpu.NumStages // drain so late stages see the tail
	vals := make([]bool, m.Ctrl.N.NumGates())
	for t := 0; t < total; t++ {
		word, res := m.stimulusCycle(seq, seqIdx, results, t)
		setWordDense(vals, m.Ctrl.Instr, word)
		setWordDense(vals, m.Ctrl.ExResult, res)
		vals[m.Ctrl.Stall] = false
		vals[m.Ctrl.Flush] = false
		tr.Sets = append(tr.Sets, sim.CycleDense(vals))
	}
	return tr, nil
}

// stimulusCycle returns the (instruction word, EX result) pair the control
// network observes at cycle t of a stimulus sequence. The instruction in EX
// at cycle t entered IF at t-StageEX.
func (m *Machine) stimulusCycle(seq []isa.Inst, seqIdx []int, results []uint32, t int) (word, res uint32) {
	if t < len(seq) {
		word = seq[t].Encode()
	}
	if k := t - cpu.StageEX; k >= 0 && k < len(seq) {
		if idx := seqIdx[k]; idx >= 0 && idx < len(results) {
			res = results[idx]
		}
	}
	return word, res
}

// stimulusFails returns the control-path instruction failure probability at
// each queried fetch position of the stimulus defined by (seq, seqIdx,
// results). Both the simulated trace and the per-position probabilities are
// memoized on the exact (instruction word, EX result) stream: different
// blocks and incoming edges frequently replay identical streams (shared
// predecessors, all-nop prefixes), and the probability is a pure function of
// the stream, so reusing the memo is bit-identical to recomputing.
func (m *Machine) stimulusFails(seq []isa.Inst, seqIdx []int, results []uint32, positions []int) ([]float64, error) {
	total := len(seq) + cpu.NumStages
	key := make([]byte, 0, 8*total)
	for t := 0; t < total; t++ {
		word, res := m.stimulusCycle(seq, seqIdx, results, t)
		key = append(key,
			byte(word), byte(word>>8), byte(word>>16), byte(word>>24),
			byte(res), byte(res>>8), byte(res>>16), byte(res>>24))
	}
	m.stimMu.Lock()
	if m.stim == nil {
		m.stim = map[string]*stimEntry{}
	}
	e, ok := m.stim[string(key)]
	if !ok {
		if len(m.stim) >= stimMemoLimit {
			m.stim = map[string]*stimEntry{}
		}
		e = &stimEntry{fail: map[int]float64{}}
		m.stim[string(key)] = e
	}
	m.stimMu.Unlock()
	e.once.Do(func() {
		e.tr, e.err = m.controlStimulus(seq, seqIdx, results)
	})
	if e.err != nil {
		return nil, e.err
	}
	out := make([]float64, len(positions))
	for i, t := range positions {
		e.mu.Lock()
		f, ok := e.fail[t]
		e.mu.Unlock()
		if !ok {
			// Concurrent queries for the same position may both compute; the
			// result is deterministic, so last-write-wins is harmless.
			f = m.instDTSFail(t, e.tr)
			e.mu.Lock()
			e.fail[t] = f
			e.mu.Unlock()
		}
		out[i] = f
	}
	return out, nil
}

// ClearStimulusMemo drops the stimulus memo. SetWorkingPeriod calls it
// because memoized probabilities are per operating point; benchmarks call it
// to measure cold characterization.
func (m *Machine) ClearStimulusMemo() {
	m.stimMu.Lock()
	m.stim = nil
	m.stimMu.Unlock()
}

// instDTSFail returns the control-endpoint instruction error probability for
// the instruction fetched at cycle t of the trace.
func (m *Machine) instDTSFail(t int, tr *activity.Trace) float64 {
	form, ok := m.CtrlDTA.InstDTSSets(t, tr, m.ctrlSets)
	if !ok {
		return 0
	}
	return dta.ErrorProbability(form)
}

// CharacterizeControl performs the control-network DTS characterization for
// every executed basic block of the program. This is the expensive gate-level
// part of the framework, and — as the paper stresses — it runs only once and
// only on short sequences (each block prefixed by a window of its
// predecessor), not on whole program executions. results holds a
// representative EX result value per static instruction, recorded during the
// training run. Blocks characterize on the shared worker pool with
// GOMAXPROCS workers.
func (m *Machine) CharacterizeControl(ctx context.Context, g *cfg.Graph, pr *cfg.Profile, results []uint32) (*ControlChar, error) {
	return m.CharacterizeControlWorkers(ctx, g, pr, results, 0)
}

// CharacterizeControlWorkers is CharacterizeControl on a bounded pool of the
// given number of workers (<= 0 selects runtime.GOMAXPROCS). Blocks are
// independent tasks writing distinct rows of the output tables; per-block
// accumulation preserves the serial edge order and every memoized quantity is
// a pure function of its key, so the tables are bit-identical for any worker
// count.
func (m *Machine) CharacterizeControlWorkers(ctx context.Context, g *cfg.Graph, pr *cfg.Profile, results []uint32, workers int) (*ControlChar, error) {
	nb := len(g.Blocks)
	cc := &ControlChar{
		Fail:      make([][]float64, nb),
		FailFlush: make([][]float64, nb),
	}
	trained := make([]bool, nb)
	errs := make([]error, nb)
	pool.Run(ctx, nb, workers, false, errs, func(_ context.Context, b int) error {
		return m.characterizeBlock(g, pr, results, cc, trained, b)
	})
	if err := pool.FirstError(errs); err != nil {
		return nil, err
	}
	for _, t := range trained {
		if t {
			cc.TrainedBlocks++
		}
	}
	return cc, nil
}

// characterizeBlock fills row b of the characterization tables.
func (m *Machine) characterizeBlock(g *cfg.Graph, pr *cfg.Profile, results []uint32, cc *ControlChar, trained []bool, b int) error {
	blk := &g.Blocks[b]
	n := blk.NumInsts()
	cc.Fail[b] = make([]float64, n)
	cc.FailFlush[b] = make([]float64, n)
	if pr.ExecCount[b] == 0 {
		return nil
	}
	trained[b] = true

	// Incoming edges with activation probabilities; the residual mass is
	// the program-start pseudo-edge, characterized with a nop prefix
	// (flushed processor, as the paper assumes at program entry).
	type incoming struct {
		weight  float64
		prefix  []isa.Inst
		prefIdx []int
	}
	var ins []incoming
	var mass float64
	for _, e := range pr.IncomingEdges(b) {
		w := pr.ActivationProb(e)
		if w <= 0 {
			continue
		}
		mass += w
		pred := &g.Blocks[e.From]
		start := pred.End - prefixWindow
		if start < pred.Start {
			start = pred.Start
		}
		var pfx []isa.Inst
		var idx []int
		for i := start; i < pred.End; i++ {
			pfx = append(pfx, g.Prog.Insts[i])
			idx = append(idx, i)
		}
		ins = append(ins, incoming{weight: w, prefix: pfx, prefIdx: idx})
	}
	if rest := 1 - mass; rest > 1e-9 {
		pfx := make([]isa.Inst, prefixWindow)
		idx := make([]int, prefixWindow)
		for i := range idx {
			idx[i] = -1
		}
		ins = append(ins, incoming{weight: rest, prefix: pfx, prefIdx: idx})
	}

	for _, in := range ins {
		// Normal-execution sequence: prefix ++ block body.
		seq := append([]isa.Inst{}, in.prefix...)
		seqIdx := append([]int{}, in.prefIdx...)
		for i := blk.Start; i < blk.End; i++ {
			seq = append(seq, g.Prog.Insts[i])
			seqIdx = append(seqIdx, i)
		}
		positions := make([]int, n)
		for k := 0; k < n; k++ {
			positions[k] = len(in.prefix) + k
		}
		fails, err := m.stimulusFails(seq, seqIdx, results, positions)
		if err != nil {
			return err
		}
		for k := 0; k < n; k++ {
			cc.Fail[b][k] += in.weight * fails[k]
		}
	}

	// Flushed-state sequence: a nop is inserted before every block
	// instruction (Section 4.1). The conditional p^e does not depend on
	// which edge was taken — the pipeline state is the flush state — so
	// one characterization per block suffices.
	var seq []isa.Inst
	var seqIdx []int
	for i := 0; i < prefixWindow; i++ {
		seq = append(seq, isa.Inst{})
		seqIdx = append(seqIdx, -1)
	}
	pos := make([]int, n)
	for i := blk.Start; i < blk.End; i++ {
		seq = append(seq, isa.Inst{}) // nop mimicking the flush
		seqIdx = append(seqIdx, -1)
		pos[i-blk.Start] = len(seq)
		seq = append(seq, g.Prog.Insts[i])
		seqIdx = append(seqIdx, i)
	}
	fails, err := m.stimulusFails(seq, seqIdx, results, pos)
	if err != nil {
		return err
	}
	copy(cc.FailFlush[b], fails)
	return nil
}
