package errormodel

import (
	"tsperr/internal/activity"
	"tsperr/internal/cfg"
	"tsperr/internal/cpu"
	"tsperr/internal/dta"
	"tsperr/internal/isa"
	"tsperr/internal/netlist"
)

// ControlChar is the per-basic-block control-network DTS characterization of
// Section 4: for every block and every instruction position it stores the
// control-path timing-error probability, mixed over the profiled incoming
// edges (the paper characterizes "along all incoming edges" because two
// blocks share the pipeline at block boundaries), plus the flushed-state
// variant extracted with nop instrumentation.
type ControlChar struct {
	// Fail[b][k] is P(control DTS < 0) for the k-th instruction of block b
	// given normal execution of its predecessor.
	Fail [][]float64
	// FailFlush[b][k] is the same probability given the pipeline was flushed
	// before the instruction (previous instruction errored).
	FailFlush [][]float64
	// TrainedBlocks counts blocks that were actually characterized
	// (executed at least once in the training profile).
	TrainedBlocks int
}

// prefixWindow is how many trailing predecessor instructions precede the
// block during characterization, enough to fill the 6-stage pipeline.
const prefixWindow = cpu.NumStages

// controlStimulus drives the control network for one instruction sequence
// and returns the activation trace. results[i] supplies the representative
// EX result value for static instruction index i (from the training run);
// entries for pseudo-instructions (nops) observe zero.
func (m *Machine) controlStimulus(seq []isa.Inst, seqIdx []int, results []uint32) (*activity.Trace, error) {
	sim, err := activity.NewSimulator(m.Ctrl.N)
	if err != nil {
		return nil, err
	}
	tr := &activity.Trace{NumGates: m.Ctrl.N.NumGates()}
	total := len(seq) + cpu.NumStages // drain so late stages see the tail
	in := map[netlist.GateID]bool{}
	for t := 0; t < total; t++ {
		var word uint32
		if t < len(seq) {
			word = seq[t].Encode()
		}
		setWordInputs(in, m.Ctrl.Instr, word)
		// The instruction in EX at cycle t entered IF at t-StageEX.
		var res uint32
		if k := t - cpu.StageEX; k >= 0 && k < len(seq) {
			if idx := seqIdx[k]; idx >= 0 && idx < len(results) {
				res = results[idx]
			}
		}
		setWordInputs(in, m.Ctrl.ExResult, res)
		in[m.Ctrl.Stall] = false
		in[m.Ctrl.Flush] = false
		tr.Sets = append(tr.Sets, sim.Cycle(in))
	}
	return tr, nil
}

// instDTSFail returns the control-endpoint instruction error probability for
// the instruction fetched at cycle t of the trace.
func (m *Machine) instDTSFail(t int, tr *activity.Trace) float64 {
	form, ok := m.CtrlDTA.InstDTS(t, tr, func(g *netlist.Gate) bool { return !g.Data })
	if !ok {
		return 0
	}
	return dta.ErrorProbability(form)
}

// CharacterizeControl performs the control-network DTS characterization for
// every executed basic block of the program. This is the expensive gate-level
// part of the framework, and — as the paper stresses — it runs only once and
// only on short sequences (each block prefixed by a window of its
// predecessor), not on whole program executions. results holds a
// representative EX result value per static instruction, recorded during the
// training run.
func (m *Machine) CharacterizeControl(g *cfg.Graph, pr *cfg.Profile, results []uint32) (*ControlChar, error) {
	nb := len(g.Blocks)
	cc := &ControlChar{
		Fail:      make([][]float64, nb),
		FailFlush: make([][]float64, nb),
	}
	for b := 0; b < nb; b++ {
		blk := &g.Blocks[b]
		n := blk.NumInsts()
		cc.Fail[b] = make([]float64, n)
		cc.FailFlush[b] = make([]float64, n)
		if pr.ExecCount[b] == 0 {
			continue
		}
		cc.TrainedBlocks++

		// Incoming edges with activation probabilities; the residual mass is
		// the program-start pseudo-edge, characterized with a nop prefix
		// (flushed processor, as the paper assumes at program entry).
		type incoming struct {
			weight  float64
			prefix  []isa.Inst
			prefIdx []int
		}
		var ins []incoming
		var mass float64
		for _, e := range pr.IncomingEdges(b) {
			w := pr.ActivationProb(e)
			if w <= 0 {
				continue
			}
			mass += w
			pred := &g.Blocks[e.From]
			start := pred.End - prefixWindow
			if start < pred.Start {
				start = pred.Start
			}
			var pfx []isa.Inst
			var idx []int
			for i := start; i < pred.End; i++ {
				pfx = append(pfx, g.Prog.Insts[i])
				idx = append(idx, i)
			}
			ins = append(ins, incoming{weight: w, prefix: pfx, prefIdx: idx})
		}
		if rest := 1 - mass; rest > 1e-9 {
			pfx := make([]isa.Inst, prefixWindow)
			idx := make([]int, prefixWindow)
			for i := range idx {
				idx[i] = -1
			}
			ins = append(ins, incoming{weight: rest, prefix: pfx, prefIdx: idx})
		}

		for _, in := range ins {
			// Normal-execution sequence: prefix ++ block body.
			seq := append([]isa.Inst{}, in.prefix...)
			seqIdx := append([]int{}, in.prefIdx...)
			for i := blk.Start; i < blk.End; i++ {
				seq = append(seq, g.Prog.Insts[i])
				seqIdx = append(seqIdx, i)
			}
			tr, err := m.controlStimulus(seq, seqIdx, results)
			if err != nil {
				return nil, err
			}
			for k := 0; k < n; k++ {
				cc.Fail[b][k] += in.weight * m.instDTSFail(len(in.prefix)+k, tr)
			}
		}

		// Flushed-state sequence: a nop is inserted before every block
		// instruction (Section 4.1). The conditional p^e does not depend on
		// which edge was taken — the pipeline state is the flush state — so
		// one characterization per block suffices.
		var seq []isa.Inst
		var seqIdx []int
		for i := 0; i < prefixWindow; i++ {
			seq = append(seq, isa.Inst{})
			seqIdx = append(seqIdx, -1)
		}
		pos := make([]int, n)
		for i := blk.Start; i < blk.End; i++ {
			seq = append(seq, isa.Inst{}) // nop mimicking the flush
			seqIdx = append(seqIdx, -1)
			pos[i-blk.Start] = len(seq)
			seq = append(seq, g.Prog.Insts[i])
			seqIdx = append(seqIdx, i)
		}
		tr, err := m.controlStimulus(seq, seqIdx, results)
		if err != nil {
			return nil, err
		}
		for k := 0; k < n; k++ {
			cc.FailFlush[b][k] = m.instDTSFail(pos[k], tr)
		}
	}
	return cc, nil
}
