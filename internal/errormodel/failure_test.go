package errormodel

import (
	"math"
	"testing"

	"tsperr/internal/cfg"
	"tsperr/internal/cpu"
	"tsperr/internal/isa"
)

// Failure-injection tests: pathological probability configurations must not
// produce NaNs, out-of-range marginals, or silent nonsense.

func loopFixture(t *testing.T) (*cfg.Graph, *cfg.Profile, *cfg.SCC) {
	t.Helper()
	p, err := isa.Assemble("loop", `
	li r1, 5
loop:
	addi r1, r1, -1
	bne  r1, r0, loop
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	pr := cfg.NewProfile(g)
	c, _ := cpu.New(p, cpu.DefaultConfig())
	obs := pr.Observer()
	if _, err := c.Run(obs); err != nil {
		t.Fatal(err)
	}
	return g, pr, cfg.ComputeSCC(g, pr)
}

func uniformCond(n int, pc, pe float64) *Conditionals {
	c := &Conditionals{PC: make([]float64, n), PE: make([]float64, n)}
	for i := range c.PC {
		c.PC[i] = pc
		c.PE[i] = pe
	}
	return c
}

func TestMarginalsExtremeProbabilities(t *testing.T) {
	g, pr, scc := loopFixture(t)
	n := len(g.Prog.Insts)
	cases := []struct {
		name   string
		pc, pe float64
	}{
		{"all-zero", 0, 0},
		{"all-one", 1, 1},
		{"certain-after-error", 0.001, 1},
		{"never-after-error", 0.3, 0},
		{"alternating-extremes", 1, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := ComputeMarginals(g, pr, scc, uniformCond(n, c.pc, c.pe))
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range m.P {
				if math.IsNaN(p) || p < 0 || p > 1 {
					t.Fatalf("marginal[%d] = %v", i, p)
				}
			}
			for b := range m.In {
				if math.IsNaN(m.In[b]) || m.In[b] < 0 || m.In[b] > 1 {
					t.Fatalf("In[%d] = %v", b, m.In[b])
				}
			}
		})
	}
}

func TestMarginalsAllOneIsAbsorbing(t *testing.T) {
	g, pr, scc := loopFixture(t)
	n := len(g.Prog.Insts)
	m, err := ComputeMarginals(g, pr, scc, uniformCond(n, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range m.P {
		if p != 1 {
			t.Errorf("with pc=pe=1 every marginal should be 1, P[%d]=%v", i, p)
		}
	}
}

func TestMarginalsFixedPointOnSelfLoop(t *testing.T) {
	// For the self-looping block with constant pc/pe, the steady-state
	// marginal q solves q = pe*q + pc*(1-q) per Eq (1)+(2); with the loop
	// executed many times the block's output probability should be close to
	// the fixed point q = pc / (1 + pc - pe).
	p, err := isa.Assemble("tight", `
	li r1, 4000
loop:
	addi r1, r1, -1
	bne  r1, r0, loop
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	pr := cfg.NewProfile(g)
	c, _ := cpu.New(p, cpu.DefaultConfig())
	obs := pr.Observer()
	if _, err := c.Run(obs); err != nil {
		t.Fatal(err)
	}
	scc := cfg.ComputeSCC(g, pr)
	pc, pe := 0.01, 0.4
	m, err := ComputeMarginals(g, pr, scc, uniformCond(len(p.Insts), pc, pe))
	if err != nil {
		t.Fatal(err)
	}
	fixed := pc / (1 + pc - pe)
	loopBlock := g.BlockOf[1]
	if math.Abs(m.Out[loopBlock]-fixed) > 0.01 {
		t.Errorf("loop steady state %v, want ~%v", m.Out[loopBlock], fixed)
	}
}

func TestBuildConditionalsZeroCountInstruction(t *testing.T) {
	// Instructions never executed in a scenario must still get well-formed
	// conditionals (control-only contribution).
	g, pr, _ := loopFixture(t)
	_ = pr
	n := len(g.Prog.Insts)
	cc := &ControlChar{
		Fail:      make([][]float64, len(g.Blocks)),
		FailFlush: make([][]float64, len(g.Blocks)),
	}
	for b := range g.Blocks {
		cc.Fail[b] = make([]float64, g.Blocks[b].NumInsts())
		cc.FailFlush[b] = make([]float64, g.Blocks[b].NumInsts())
		for k := range cc.Fail[b] {
			cc.Fail[b][k] = 0.001
			cc.FailFlush[b][k] = 0.002
		}
	}
	feats := &ScenarioFeatures{
		Count:     make([]int64, n),
		sumFailC:  make([]float64, n),
		sumFailE:  make([]float64, n),
		sumFailC2: make([]float64, n),
		sumFailC3: make([]float64, n),
		sumFailC4: make([]float64, n),
		Results:   make([]uint32, n),
	}
	cond := BuildConditionals(g, cc, feats)
	for i := range cond.PC {
		if math.Abs(cond.PC[i]-0.001) > 1e-12 || math.Abs(cond.PE[i]-0.002) > 1e-12 {
			t.Errorf("zero-count instruction %d conditionals = %v/%v", i, cond.PC[i], cond.PE[i])
		}
	}
}
