package errormodel

import (
	"context"
	"math"
	"testing"

	"tsperr/internal/numeric"
)

// TestChipSampleValidatesSSTAProbability closes the loop on the whole SSTA
// chain: the analytic failure probability of the trained datapath model —
// P(DTS < 0) computed from the canonical Gaussian slack form — must match
// the frequency of negative slack over explicitly sampled manufactured dies.
func TestChipSampleValidatesSSTAProbability(t *testing.T) {
	m := testMachine(t)
	dp, err := m.TrainDatapath(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rng := numeric.NewRNG(61)
	for _, depth := range []int{31, 32} {
		slack := dp.AdderSlack[depth]
		want := dp.AdderFail[depth]
		if want == 0 {
			continue
		}
		const chips = 60000
		fails := 0
		for i := 0; i < chips; i++ {
			chip := m.Model.SampleChip(rng)
			if slack.Sample(chip, rng) < 0 {
				fails++
			}
		}
		got := float64(fails) / chips
		se := math.Sqrt(want*(1-want)/chips) + 1e-6
		if math.Abs(got-want) > 6*se+0.002 {
			t.Errorf("depth %d: sampled failure rate %v vs analytic %v (se %v)",
				depth, got, want, se)
		}
	}
}

// TestSpatialCorrelationInflatesJointFailure verifies the property the paper
// names explicitly: nearby paths fail together. Two copies of the deepest
// slack form share principal components, so the joint failure probability
// exceeds the independence product.
func TestSpatialCorrelationInflatesJointFailure(t *testing.T) {
	m := testMachine(t)
	dp, err := m.TrainDatapath(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	slack := dp.AdderSlack[32]
	p := dp.AdderFail[32]
	if p <= 0 {
		t.Skip("full chain does not fail at this operating point")
	}
	rng := numeric.NewRNG(62)
	const chips = 80000
	both := 0
	for i := 0; i < chips; i++ {
		chip := m.Model.SampleChip(rng)
		// Two instructions activating the same chain on the same die: the
		// correlated (PC) part is shared, the residual is redrawn.
		a := slack.Sample(chip, rng) < 0
		b := slack.Sample(chip, rng) < 0
		if a && b {
			both++
		}
	}
	joint := float64(both) / chips
	indep := p * p
	if joint <= indep {
		t.Errorf("joint failure %v should exceed independence product %v", joint, indep)
	}
}
