package errormodel

import (
	"fmt"

	"tsperr/internal/cfg"
	"tsperr/internal/linsys"
)

// Marginals holds the solution of the Section 4.2 problem for one scenario:
// marginal error probabilities per static instruction, plus the block
// input/output error probabilities.
type Marginals struct {
	// P[i] is the marginal error probability of static instruction i.
	P []float64
	// In[b] and Out[b] are the block input/output error probabilities.
	In, Out []float64
}

// blockAffine composes Equation (1) through a block: given the input error
// probability x, the k-th instruction's marginal is p_k where
// p_k = pe_k * p_{k-1} + pc_k * (1 - p_{k-1}), p_0 = x. The block output is
// affine in x: out = A*x + B.
func blockAffine(blk *cfg.Block, pc, pe []float64) (a, b float64) {
	a, b = 1, 0
	for i := blk.Start; i < blk.End; i++ {
		// p = (pe-pc)*prev + pc, with prev = a*x + b.
		d := pe[i] - pc[i]
		a = d * a
		b = d*b + pc[i]
	}
	return a, b
}

// ComputeMarginals solves the marginal error probability problem: the
// recurrence of Equation (1) inside blocks, the mixture of Equation (2) at
// joins, and one linear system per strongly connected component of the CFG,
// processed in condensation topological order (Tarjan). The processor is
// assumed flushed at program start, so the entry pseudo-edge carries an
// output error probability of 1, exactly as the paper sets p^in = 1.
func ComputeMarginals(g *cfg.Graph, pr *cfg.Profile, scc *cfg.SCC, c *Conditionals) (*Marginals, error) {
	nb := len(g.Blocks)
	m := &Marginals{
		P:   make([]float64, len(g.Prog.Insts)),
		In:  make([]float64, nb),
		Out: make([]float64, nb),
	}
	// Affine coefficients per block.
	alpha := make([]float64, nb)
	beta := make([]float64, nb)
	for b := 0; b < nb; b++ {
		alpha[b], beta[b] = blockAffine(&g.Blocks[b], c.PC, c.PE)
	}

	solved := make([]bool, nb)
	for _, comp := range scc.Comps {
		// Executed blocks only; unexecuted blocks keep zero probabilities.
		var active []int
		for _, b := range comp {
			if pr.ExecCount[b] > 0 {
				active = append(active, b)
			}
		}
		if len(active) == 0 {
			for _, b := range comp {
				solved[b] = true
			}
			continue
		}
		index := map[int]int{}
		for i, b := range active {
			index[b] = i
		}
		n := len(active)
		A := make([][]float64, n)
		rhs := make([]float64, n)
		for i, b := range active {
			A[i] = make([]float64, n)
			A[i][i] = 1
			var mass float64
			for _, e := range pr.IncomingEdges(b) {
				w := pr.ActivationProb(e)
				if w <= 0 {
					continue
				}
				mass += w
				src := e.From
				if j, in := index[src]; in {
					// In-component predecessor: out_src = alpha*x_j + beta.
					A[i][j] -= w * alpha[src]
					rhs[i] += w * beta[src]
				} else {
					if !solved[src] && pr.ExecCount[src] > 0 {
						return nil, fmt.Errorf(
							"errormodel: block %d depends on unsolved block %d outside its SCC", b, src)
					}
					rhs[i] += w * m.Out[src]
				}
			}
			// Program-start pseudo-edge: flushed state, error probability 1.
			if rest := 1 - mass; rest > 1e-12 {
				rhs[i] += rest * 1
			}
		}
		var x []float64
		var err error
		if n == 1 && A[0][0] == 1 {
			x = []float64{rhs[0]}
		} else {
			x, err = linsys.Solve(A, rhs)
			if err != nil {
				return nil, fmt.Errorf("errormodel: SCC system: %w", err)
			}
		}
		for i, b := range active {
			m.In[b] = clamp01(x[i])
			m.Out[b] = clamp01(alpha[b]*m.In[b] + beta[b])
			// Instruction marginals via the recurrence.
			prev := m.In[b]
			blk := &g.Blocks[b]
			for k := blk.Start; k < blk.End; k++ {
				p := c.PE[k]*prev + c.PC[k]*(1-prev)
				m.P[k] = clamp01(p)
				prev = p
			}
			solved[b] = true
		}
		for _, b := range comp {
			solved[b] = true
		}
	}
	return m, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
