package errormodel

import (
	"context"
	"math"
	"sync"
	"testing"

	"tsperr/internal/cfg"
	"tsperr/internal/cpu"
	"tsperr/internal/isa"
)

// The machine is expensive to calibrate; share one across the package tests.
var (
	machOnce sync.Once
	mach     *Machine
	machErr  error
)

func testMachine(t *testing.T) *Machine {
	t.Helper()
	machOnce.Do(func() {
		mach, machErr = NewMachine(DefaultOptions())
	})
	if machErr != nil {
		t.Fatal(machErr)
	}
	return mach
}

func TestMachineOperatingPoints(t *testing.T) {
	m := testMachine(t)
	if math.Abs(m.BasePeriodPs-1e6/718) > 1e-9 {
		t.Errorf("base period = %v", m.BasePeriodPs)
	}
	if !(m.WorkingPeriodPs < m.PoFFPeriodPs && m.PoFFPeriodPs < m.BasePeriodPs) {
		t.Errorf("period ordering wrong: work=%v poff=%v base=%v",
			m.WorkingPeriodPs, m.PoFFPeriodPs, m.BasePeriodPs)
	}
	if math.Abs(m.WorkingFreqMHz()-718*1.15) > 1 {
		t.Errorf("working frequency = %v", m.WorkingFreqMHz())
	}
	// Adder calibration: its p99.9 max delay should sit at the PoFF period.
	got := m.AdderEngine.MaxDelayPercentile(m.Opts.CalibrationPercentile, m.Opts.KPaths)
	if math.Abs(got-m.PoFFPeriodPs) > 0.02*m.PoFFPeriodPs {
		t.Errorf("calibrated adder p-tail delay = %v, want ~%v", got, m.PoFFPeriodPs)
	}
}

func TestNewMachineRejectsBadOptions(t *testing.T) {
	o := DefaultOptions()
	o.BaseFreqMHz = 0
	if _, err := NewMachine(o); err == nil {
		t.Error("zero base frequency should fail")
	}
	// Regression: an out-of-domain calibration quantile used to panic deep
	// inside the SSTA percentile; it must be rejected at the input boundary.
	for _, p := range []float64{0, 1, 1.5, -0.1, math.NaN()} {
		o := DefaultOptions()
		o.CalibrationPercentile = p
		if _, err := NewMachine(o); err == nil {
			t.Errorf("CalibrationPercentile %v should fail", p)
		}
	}
}

// TestFailProbLUTMatchesSlow proves the depth-indexed LUT (and the lutMin
// byte gate in front of it) is bit-identical to the reference per-class
// classification for every opcode and every depth, including clamping beyond
// the table edge and the depth <= 0 contract.
func TestFailProbLUTMatchesSlow(t *testing.T) {
	m := testMachine(t)
	dp, err := m.TrainDatapath(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for op := isa.Op(0); op < isa.NumOps; op++ {
		for d := -2; d <= maxDepthFeature+8; d++ {
			want := dp.failProbSlow(op, d)
			//tsperrlint:ignore floatcmp the LUT is a memoized copy of the slow path; it must be bit-identical
			if got := dp.FailProb(op, d); got != want {
				t.Fatalf("FailProb(%v, %d) = %v, want %v", op, d, got, want)
			}
		}
		// The byte gate must never skip a nonzero column: every depth below
		// lutMin[op] has probability exactly 0.
		for d := 0; d < int(dp.lutMin[op]) && d <= maxDepthFeature; d++ {
			if p := dp.failProbSlow(op, d); p != 0 {
				t.Fatalf("lutMin[%v] = %d but depth %d has probability %v", op, dp.lutMin[op], d, p)
			}
		}
	}
}

func TestTrainDatapathMonotone(t *testing.T) {
	m := testMachine(t)
	dp, err := m.TrainDatapath(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Deeper carry chains must not have lower failure probability.
	for d := 2; d <= 32; d++ {
		if dp.AdderFail[d] < dp.AdderFail[d-1]-1e-9 {
			t.Errorf("AdderFail not monotone at depth %d: %v < %v",
				d, dp.AdderFail[d], dp.AdderFail[d-1])
		}
	}
	// The full chain must have a small-but-meaningful failure probability at
	// the working point (this is where timing speculation lives).
	if dp.AdderFail[32] <= 0 || dp.AdderFail[32] > 0.9 {
		t.Errorf("full-chain failure probability = %v", dp.AdderFail[32])
	}
	// Short chains must be safe.
	if dp.AdderFail[4] > 1e-4 {
		t.Errorf("short chains should be safe: %v", dp.AdderFail[4])
	}
	// Shifter and logic are delay-balanced below the adder: rare failures.
	if dp.ShiftFail[5] > dp.AdderFail[32] {
		t.Errorf("shifter should fail less than full adder chain: %v vs %v",
			dp.ShiftFail[5], dp.AdderFail[32])
	}
	if dp.LogicFail > dp.ShiftFail[5]+1e-6 {
		t.Errorf("logic unit should be the safest: %v", dp.LogicFail)
	}
	// The multiplier table must be monotone and balanced below the adder.
	for d := 2; d <= 16; d++ {
		if dp.MulFail[d] < dp.MulFail[d-1]-1e-9 {
			t.Errorf("MulFail not monotone at %d: %v < %v", d, dp.MulFail[d], dp.MulFail[d-1])
		}
	}
	if dp.MulFail[16] > dp.AdderFail[32] {
		t.Errorf("multiplier (ratio 0.95) should fail less than the adder: %v vs %v",
			dp.MulFail[16], dp.AdderFail[32])
	}
}

func TestFailProbDispatch(t *testing.T) {
	dp := &DatapathModel{
		AdderFail: make([]float64, 33),
		ShiftFail: make([]float64, 6),
		MulFail:   make([]float64, 17),
		LogicFail: 0.001,
	}
	for i := range dp.AdderFail {
		dp.AdderFail[i] = float64(i) / 100
	}
	for i := range dp.ShiftFail {
		dp.ShiftFail[i] = float64(i) / 1000
	}
	for i := range dp.MulFail {
		dp.MulFail[i] = float64(i) / 10000
	}
	if got := dp.FailProb(isa.OpAdd, 10); got != 0.10 {
		t.Errorf("add depth 10 = %v", got)
	}
	if got := dp.FailProb(isa.OpAdd, 50); got != 0.32 {
		t.Errorf("depth must clamp at 32: %v", got)
	}
	//tsperrlint:ignore floatcmp dispatch must return the exact stored table entry
	if got := dp.FailProb(isa.OpMul, 9); got != dp.MulFail[9] {
		t.Errorf("mul dispatch = %v", got)
	}
	//tsperrlint:ignore floatcmp dispatch must return the exact stored table entry
	if got := dp.FailProb(isa.OpMul, 30); got != dp.MulFail[16] {
		t.Errorf("mul depth must clamp at 16: %v", got)
	}
	if got := dp.FailProb(isa.OpSub, 0); got != 0 {
		t.Errorf("zero depth must be safe: %v", got)
	}
	//tsperrlint:ignore floatcmp dispatch must return the exact stored table entry
	if got := dp.FailProb(isa.OpSlli, 3); got != dp.ShiftFail[2] {
		t.Errorf("shift dispatch = %v", got)
	}
	//tsperrlint:ignore floatcmp dispatch must return the exact stored table entry
	if got := dp.FailProb(isa.OpXor, 1); got != dp.LogicFail {
		t.Errorf("logic dispatch = %v", got)
	}
	if got := dp.FailProb(isa.OpJal, 5); got != 0 {
		t.Errorf("jal has no datapath = %v", got)
	}
}

const testProg = `
	li r1, 6
	li r2, 0
loop:
	add  r2, r2, r1
	addi r1, r1, -1
	bne  r1, r0, loop
	sw   r2, 10(r0)
	halt
`

// runScenario assembles and executes the loop program, returning graph,
// profile, and features.
func runScenario(t *testing.T, dp *DatapathModel) (*cfg.Graph, *cfg.Profile, *ScenarioFeatures) {
	t.Helper()
	p, err := isa.Assemble("loop", testProg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	pr := cfg.NewProfile(g)
	feats, fobs := NewFeatureCollector(len(p.Insts), dp)
	c, err := cpu.New(p, cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pobs := pr.Observer()
	if _, err := c.Run(func(d *cpu.DynInst) { pobs(d); fobs(d) }); err != nil {
		t.Fatal(err)
	}
	return g, pr, feats
}

func TestCharacterizeControlShapes(t *testing.T) {
	m := testMachine(t)
	dp, err := m.TrainDatapath(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g, pr, feats := runScenario(t, dp)
	cc, err := m.CharacterizeControl(context.Background(), g, pr, feats.Results)
	if err != nil {
		t.Fatal(err)
	}
	if cc.TrainedBlocks == 0 {
		t.Fatal("no blocks characterized")
	}
	for b := range g.Blocks {
		if len(cc.Fail[b]) != g.Blocks[b].NumInsts() {
			t.Errorf("block %d characterization length mismatch", b)
		}
		for k, p := range cc.Fail[b] {
			if p < 0 || p > 1 {
				t.Errorf("Fail[%d][%d]=%v out of range", b, k, p)
			}
		}
		for k, p := range cc.FailFlush[b] {
			if p < 0 || p > 1 {
				t.Errorf("FailFlush[%d][%d]=%v out of range", b, k, p)
			}
		}
	}
}

func TestConditionalsAndMarginals(t *testing.T) {
	m := testMachine(t)
	dp, err := m.TrainDatapath(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g, pr, feats := runScenario(t, dp)
	cc, err := m.CharacterizeControl(context.Background(), g, pr, feats.Results)
	if err != nil {
		t.Fatal(err)
	}
	cond := BuildConditionals(g, cc, feats)
	if len(cond.PC) != len(g.Prog.Insts) {
		t.Fatal("conditionals sized wrong")
	}
	for i := range cond.PC {
		if cond.PC[i] < 0 || cond.PC[i] > 1 || cond.PE[i] < 0 || cond.PE[i] > 1 {
			t.Errorf("conditional probability out of range at %d: %v/%v", i, cond.PC[i], cond.PE[i])
		}
	}
	scc := cfg.ComputeSCC(g, pr)
	marg, err := ComputeMarginals(g, pr, scc, cond)
	if err != nil {
		t.Fatal(err)
	}
	// The bne against r0 compares the countdown register: full borrow chains
	// mean its conditional (and marginal) probability should be the largest
	// in the program and nonzero.
	bneIdx := -1
	for i, in := range g.Prog.Insts {
		if in.Op == isa.OpBne {
			bneIdx = i
		}
	}
	if bneIdx < 0 {
		t.Fatal("no bne in program")
	}
	if marg.P[bneIdx] <= 0 {
		t.Errorf("bne marginal probability should be positive, got %v", marg.P[bneIdx])
	}
	for i, p := range marg.P {
		if p < 0 || p > 1 {
			t.Errorf("marginal[%d]=%v out of range", i, p)
		}
	}
	// Entry: the paper assumes a flushed processor at program start, so the
	// first instruction's marginal must equal its p^e.
	if math.Abs(marg.P[0]-cond.PE[0]) > 1e-9 {
		t.Errorf("first instruction marginal %v should equal PE %v (flushed start)",
			marg.P[0], cond.PE[0])
	}
	// Block input probabilities must be in [0,1] and the loop block's input
	// must mix the entry and back edges.
	for b, in := range marg.In {
		if in < 0 || in > 1 {
			t.Errorf("In[%d]=%v", b, in)
		}
	}
}

func TestMarginalsHandDerivedChain(t *testing.T) {
	// A straight-line program: p_k follows Equation (1) directly.
	p, err := isa.Assemble("straight", "add r1, r2, r3\nadd r4, r1, r2\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	pr := cfg.NewProfile(g)
	c, _ := cpu.New(p, cpu.DefaultConfig())
	obs := pr.Observer()
	if _, err := c.Run(obs); err != nil {
		t.Fatal(err)
	}
	cond := &Conditionals{
		PC: []float64{0.01, 0.02, 0.005},
		PE: []float64{0.5, 0.4, 0.3},
	}
	scc := cfg.ComputeSCC(g, pr)
	m, err := ComputeMarginals(g, pr, scc, cond)
	if err != nil {
		t.Fatal(err)
	}
	// p0 = pe0 (flushed start, p_in = 1).
	want0 := 0.5
	want1 := 0.4*want0 + 0.02*(1-want0)
	want2 := 0.3*want1 + 0.005*(1-want1)
	for i, want := range []float64{want0, want1, want2} {
		if math.Abs(m.P[i]-want) > 1e-12 {
			t.Errorf("P[%d]=%v, want %v", i, m.P[i], want)
		}
	}
}

func TestSetWorkingPeriodRaisesErrorProbability(t *testing.T) {
	m := testMachine(t)
	dpSlow, err := m.TrainDatapath(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	origPeriod := m.WorkingPeriodPs
	defer m.SetWorkingPeriod(origPeriod)
	m.SetWorkingPeriod(origPeriod * 0.95) // higher frequency
	dpFast, err := m.TrainDatapath(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if dpFast.AdderFail[32] <= dpSlow.AdderFail[32] {
		t.Errorf("overclocking should raise failure probability: %v vs %v",
			dpFast.AdderFail[32], dpSlow.AdderFail[32])
	}
}
