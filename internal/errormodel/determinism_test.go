package errormodel

import (
	"context"
	"reflect"
	"testing"

	"tsperr/internal/cfg"
	"tsperr/internal/isa"
)

// seedCharacterizeControl replicates the original serial, memo-free
// characterization loop. It is the reference the parallel implementation must
// match bit-for-bit: same per-block edge ordering, same summation order, one
// fresh stimulus simulation per sequence.
func seedCharacterizeControl(m *Machine, g *cfg.Graph, pr *cfg.Profile, results []uint32) (*ControlChar, error) {
	nb := len(g.Blocks)
	cc := &ControlChar{
		Fail:      make([][]float64, nb),
		FailFlush: make([][]float64, nb),
	}
	for b := 0; b < nb; b++ {
		blk := &g.Blocks[b]
		n := blk.NumInsts()
		cc.Fail[b] = make([]float64, n)
		cc.FailFlush[b] = make([]float64, n)
		if pr.ExecCount[b] == 0 {
			continue
		}
		cc.TrainedBlocks++

		type incoming struct {
			weight  float64
			prefix  []isa.Inst
			prefIdx []int
		}
		var ins []incoming
		var mass float64
		for _, e := range pr.IncomingEdges(b) {
			w := pr.ActivationProb(e)
			if w <= 0 {
				continue
			}
			mass += w
			pred := &g.Blocks[e.From]
			start := pred.End - prefixWindow
			if start < pred.Start {
				start = pred.Start
			}
			var pfx []isa.Inst
			var idx []int
			for i := start; i < pred.End; i++ {
				pfx = append(pfx, g.Prog.Insts[i])
				idx = append(idx, i)
			}
			ins = append(ins, incoming{weight: w, prefix: pfx, prefIdx: idx})
		}
		if rest := 1 - mass; rest > 1e-9 {
			pfx := make([]isa.Inst, prefixWindow)
			idx := make([]int, prefixWindow)
			for i := range idx {
				idx[i] = -1
			}
			ins = append(ins, incoming{weight: rest, prefix: pfx, prefIdx: idx})
		}

		for _, in := range ins {
			seq := append([]isa.Inst{}, in.prefix...)
			seqIdx := append([]int{}, in.prefIdx...)
			for i := blk.Start; i < blk.End; i++ {
				seq = append(seq, g.Prog.Insts[i])
				seqIdx = append(seqIdx, i)
			}
			tr, err := m.controlStimulus(seq, seqIdx, results)
			if err != nil {
				return nil, err
			}
			for k := 0; k < n; k++ {
				cc.Fail[b][k] += in.weight * m.instDTSFail(len(in.prefix)+k, tr)
			}
		}

		var seq []isa.Inst
		var seqIdx []int
		for i := 0; i < prefixWindow; i++ {
			seq = append(seq, isa.Inst{})
			seqIdx = append(seqIdx, -1)
		}
		pos := make([]int, n)
		for i := blk.Start; i < blk.End; i++ {
			seq = append(seq, isa.Inst{})
			seqIdx = append(seqIdx, -1)
			pos[i-blk.Start] = len(seq)
			seq = append(seq, g.Prog.Insts[i])
			seqIdx = append(seqIdx, i)
		}
		tr, err := m.controlStimulus(seq, seqIdx, results)
		if err != nil {
			return nil, err
		}
		for k := 0; k < n; k++ {
			cc.FailFlush[b][k] = m.instDTSFail(pos[k], tr)
		}
	}
	return cc, nil
}

// TestCharacterizeControlDeterministic proves the block-parallel, memoizing
// characterization is bit-identical to the serial reference for any worker
// count, on both cold and warm stimulus memos.
func TestCharacterizeControlDeterministic(t *testing.T) {
	m := testMachine(t)
	dp, err := m.TrainDatapath(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g, pr, feats := runScenario(t, dp)
	want, err := seedCharacterizeControl(m, g, pr, feats.Results)
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, got *ControlChar) {
		t.Helper()
		if !reflect.DeepEqual(got.Fail, want.Fail) {
			t.Errorf("%s: Fail tables differ from serial reference\ngot  %v\nwant %v",
				label, got.Fail, want.Fail)
		}
		if !reflect.DeepEqual(got.FailFlush, want.FailFlush) {
			t.Errorf("%s: FailFlush tables differ from serial reference\ngot  %v\nwant %v",
				label, got.FailFlush, want.FailFlush)
		}
		if got.TrainedBlocks != want.TrainedBlocks {
			t.Errorf("%s: TrainedBlocks = %d, want %d", label, got.TrainedBlocks, want.TrainedBlocks)
		}
	}
	for _, workers := range []int{1, 8} {
		m.ClearStimulusMemo() // cold: every value computed by this run
		got, err := m.CharacterizeControlWorkers(context.Background(), g, pr, feats.Results, workers)
		if err != nil {
			t.Fatal(err)
		}
		check("cold", got)
	}
	// Warm: the memo is primed by the runs above; reuse must not change bits.
	got, err := m.CharacterizeControlWorkers(context.Background(), g, pr, feats.Results, 4)
	if err != nil {
		t.Fatal(err)
	}
	check("warm", got)
}

// TestTrainDatapathDeterministic proves the parallel training sweep produces
// bit-identical tables for any worker count.
func TestTrainDatapathDeterministic(t *testing.T) {
	m := testMachine(t)
	d1, err := m.TrainDatapathWorkers(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := m.TrainDatapathWorkers(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d8) {
		t.Error("datapath model differs between 1 and 8 workers")
	}
}
