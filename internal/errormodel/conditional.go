package errormodel

import (
	"tsperr/internal/cfg"
	"tsperr/internal/cpu"
	"tsperr/internal/isa"
)

// ScenarioFeatures accumulates per-static-instruction datapath failure
// statistics over one program execution (one input scenario).
type ScenarioFeatures struct {
	Count    []int64
	sumFailC []float64 // datapath fail prob, normal predecessor
	sumFailE []float64 // datapath fail prob, flushed predecessor
	// Power sums of the per-instance datapath failure probability, used to
	// reconstruct the instance-level moments the Stein bound needs (the
	// paper records "error probability of all dynamic instances of each
	// instruction and forms a probability distribution of them").
	sumFailC2, sumFailC3, sumFailC4 []float64
	// Results records a representative EX result value per static
	// instruction, needed by the control characterization stimulus.
	Results []uint32

	// lut points at the datapath model's per-op depth tables; it is resolved
	// once at collector creation so Observe indexes it without the once-guard.
	lut *[isa.NumOps]*[maxDepthFeature + 1]float64
	// lutMin mirrors DatapathModel.lutMin: the per-op minimum depth with a
	// nonzero failure probability, gating the row probes with a byte compare.
	lutMin *[isa.NumOps]uint8
}

// InstanceMoments returns the instance count and the first four power sums
// (T1..T4) of the per-instance datapath failure probability of static
// instruction i within this scenario.
func (f *ScenarioFeatures) InstanceMoments(i int) (n int64, t1, t2, t3, t4 float64) {
	return f.Count[i], f.sumFailC[i], f.sumFailC2[i], f.sumFailC3[i], f.sumFailC4[i]
}

// NewFeatureCollector returns a features accumulator and the cpu.Observer
// that feeds it, evaluating the trained datapath model per dynamic
// instruction (this is the "instrumented native execution" of Figure 2: only
// architecturally visible values are consumed).
func NewFeatureCollector(numInsts int, dp *DatapathModel) (*ScenarioFeatures, cpu.Observer) {
	f := &ScenarioFeatures{
		Count:     make([]int64, numInsts),
		sumFailC:  make([]float64, numInsts),
		sumFailE:  make([]float64, numInsts),
		sumFailC2: make([]float64, numInsts),
		sumFailC3: make([]float64, numInsts),
		sumFailC4: make([]float64, numInsts),
		Results:   make([]uint32, numInsts),
	}
	// The observer runs once per retired instruction; evaluate the model
	// through its depth LUT directly, hoisting the once-guard out of the loop.
	dp.lutOnce.Do(dp.buildLUT)
	f.lut = &dp.lut
	f.lutMin = &dp.lutMin
	return f, f.Observe
}

// Observe accumulates one retired instruction. It is the static-dispatch hot
// path behind the Observer returned by NewFeatureCollector; the framework's
// fused observer calls it directly.
func (f *ScenarioFeatures) Observe(d *cpu.DynInst) {
	f.Count[d.Index]++
	f.Results[d.Index] = d.Result
	// Most dynamic instances carry probability exactly 0 (shallow depth,
	// untrained class); a byte compare against the op's minimum nonzero
	// depth skips both row probes then. Skipping the power-sum updates is
	// bit-exact because x + 0 == x for the non-negative accumulators.
	md := int(f.lutMin[d.Op])
	if d.Depth < md && d.DepthFlush < md {
		return
	}
	row := f.lut[d.Op]
	if row == nil {
		return
	}
	if p := row[lutDepth(d.Depth)]; p != 0 {
		f.sumFailC[d.Index] += p
		p2 := p * p
		f.sumFailC2[d.Index] += p2
		f.sumFailC3[d.Index] += p2 * p
		f.sumFailC4[d.Index] += p2 * p2
	}
	if q := row[lutDepth(d.DepthFlush)]; q != 0 {
		f.sumFailE[d.Index] += q
	}
}

// ObserveBatch accumulates a batch of retired instructions, equivalent to
// calling Observe on each in order. The accumulator slices are hoisted out
// of the loop, so the common all-zero-probability instruction costs two
// array updates and a table probe.
func (f *ScenarioFeatures) ObserveBatch(ds []cpu.DynInst) {
	count, results, lut, lutMin := f.Count, f.Results, f.lut, f.lutMin
	for i := range ds {
		d := &ds[i]
		idx := d.Index
		count[idx]++
		results[idx] = d.Result
		md := int(lutMin[d.Op])
		if d.Depth < md && d.DepthFlush < md {
			continue
		}
		row := lut[d.Op]
		if row == nil {
			continue
		}
		if p := row[lutDepth(d.Depth)]; p != 0 {
			f.sumFailC[idx] += p
			p2 := p * p
			f.sumFailC2[idx] += p2
			f.sumFailC3[idx] += p2 * p
			f.sumFailC4[idx] += p2 * p2
		}
		if q := row[lutDepth(d.DepthFlush)]; q != 0 {
			f.sumFailE[idx] += q
		}
	}
}

// Conditionals holds the per-static-instruction conditional error
// probabilities of one scenario: PC[i] = p^c (previous instruction correct)
// and PE[i] = p^e (previous instruction errored), per Section 4.1.
type Conditionals struct {
	PC, PE []float64
}

// BuildConditionals combines the control characterization with the
// scenario's datapath statistics. Control and datapath paths live in
// disjoint logic, so their failure events combine as complements:
// p = 1 - (1-pCtrl)(1-pData).
func BuildConditionals(g *cfg.Graph, cc *ControlChar, f *ScenarioFeatures) *Conditionals {
	n := len(g.Prog.Insts)
	c := &Conditionals{PC: make([]float64, n), PE: make([]float64, n)}
	for i := 0; i < n; i++ {
		b := g.BlockOf[i]
		k := i - g.Blocks[b].Start
		var dpC, dpE float64
		if f.Count[i] > 0 {
			dpC = f.sumFailC[i] / float64(f.Count[i])
			dpE = f.sumFailE[i] / float64(f.Count[i])
		}
		c.PC[i] = 1 - (1-cc.Fail[b][k])*(1-dpC)
		c.PE[i] = 1 - (1-cc.FailFlush[b][k])*(1-dpE)
	}
	return c
}
