// Package gdta implements the graph-based dynamic timing analysis the paper
// contrasts with in Related Work (Cherupalli & Sartori, ICCAD 2017): instead
// of enumerating the k most critical paths per endpoint and testing their
// activation (the path-based method of internal/dta), it propagates arrival
// times over the *activated subgraph* of each cycle — every gate that
// toggled — and reads the stage DTS off the endpoint arrivals directly.
//
// The graph-based method is exact over all activated paths (path-based
// analysis can only consider the k paths it enumerated) and costs O(gates)
// per cycle, but it must re-traverse the whole netlist every cycle, which is
// why the paper's framework reserves gate-level analysis for short
// basic-block sequences and keeps this method as a cross-check. Under SSTA
// arrivals are canonical Gaussian forms merged with Clark's max operator.
package gdta

import (
	"tsperr/internal/activity"
	"tsperr/internal/cell"
	"tsperr/internal/netlist"
	"tsperr/internal/sta"
	"tsperr/internal/variation"
)

// Analyzer performs graph-based DTA using the gate delays and clock period
// of an existing SSTA engine, so results are directly comparable with the
// path-based analyzer built on the same engine.
type Analyzer struct {
	Engine *sta.Engine
	topo   []netlist.GateID
}

// New builds a graph-based analyzer.
func New(e *sta.Engine) (*Analyzer, error) {
	topo, err := e.N.TopoOrder()
	if err != nil {
		return nil, err
	}
	return &Analyzer{Engine: e, topo: topo}, nil
}

// StageDTS returns the canonical DTS form of the given endpoints at cycle t:
// clock period minus setup minus the statistical maximum arrival over
// activated paths into those endpoints. ok is false when no activated path
// reaches any endpoint that cycle.
func (a *Analyzer) StageDTS(eps []netlist.GateID, t int, tr *activity.Trace) (variation.Canon, bool) {
	n := a.Engine.N
	gates := n.Gates()
	// arrival[g] is the canonical arrival of the latest activated path
	// ending at activated gate g (inclusive); valid[g] marks gates reached
	// by an activated path from an activated source.
	arrival := make([]variation.Canon, len(gates))
	valid := make([]bool, len(gates))
	for _, id := range a.topo {
		if !tr.Activated(t, id) {
			continue
		}
		g := &gates[id]
		if g.Kind.IsSource() {
			arrival[id] = a.Engine.GateDelay(id) // clock-to-Q or 0
			valid[id] = true
			continue
		}
		have := false
		var acc variation.Canon
		for _, f := range g.Fanin {
			if !valid[f] {
				continue
			}
			if !have {
				acc = arrival[f]
				have = true
			} else {
				acc = acc.Max(arrival[f])
			}
		}
		if !have {
			continue // activated but no activated fanin path: glitch source
		}
		arrival[id] = acc.Add(a.Engine.GateDelay(id))
		valid[id] = true
	}
	var worst variation.Canon
	found := false
	for _, ep := range eps {
		if gates[ep].Kind != cell.DFF {
			continue
		}
		d := gates[ep].Fanin[0]
		if !valid[d] {
			continue
		}
		if !found {
			worst = arrival[d]
			found = true
		} else {
			worst = worst.Max(arrival[d])
		}
	}
	if !found {
		return variation.Canon{}, false
	}
	return worst.Neg().AddConst(a.Engine.ClockPeriod - cell.Setup), true
}

// InstDTS mirrors Algorithm 2 over the graph-based stage DTS.
func (a *Analyzer) InstDTS(t int, tr *activity.Trace, keep func(*netlist.Gate) bool) (variation.Canon, bool) {
	if keep == nil {
		keep = func(*netlist.Gate) bool { return true }
	}
	var acc variation.Canon
	found := false
	for s := 0; s < a.Engine.N.Stages; s++ {
		eps := a.Engine.N.EndpointsOf(s, keep)
		if len(eps) == 0 {
			continue
		}
		f, ok := a.StageDTS(eps, t+s, tr)
		if !ok {
			continue
		}
		if !found {
			acc = f
			found = true
		} else {
			acc = acc.Min(f)
		}
	}
	return acc, found
}
