package gdta

import (
	"math"
	"testing"

	"tsperr/internal/activity"
	"tsperr/internal/cell"
	"tsperr/internal/dta"
	"tsperr/internal/gen"
	"tsperr/internal/netlist"
	"tsperr/internal/sta"
	"tsperr/internal/variation"
)

func newEngine(t *testing.T, n *netlist.Netlist, period float64) *sta.Engine {
	t.Helper()
	m, err := variation.NewModel(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sta.NewEngine(n, m, period, cell.SigmaRel, 1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func setWord(in map[netlist.GateID]bool, gates [32]netlist.GateID, w uint32) {
	for i := 0; i < 32; i++ {
		in[gates[i]] = (w>>uint(i))&1 == 1
	}
}

// chainFixture: in -> inv x n -> ff. Simple enough that the exact activated
// path delay is known.
func chainFixture(t *testing.T, n int, period float64) (*Analyzer, *dta.Analyzer, *activity.Trace, []netlist.GateID) {
	t.Helper()
	nl := netlist.New("chain", 1)
	in := nl.Add(cell.INPUT, "in", 0)
	prev := in
	for i := 0; i < n; i++ {
		prev = nl.Add(cell.INV, "inv", 0, prev)
	}
	ff := nl.Add(cell.DFF, "ff", 0, prev)
	_ = ff
	gen.Place(nl)
	e := newEngine(t, nl, period)
	ga, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	pa := dta.New(e, 8)
	sim, err := activity.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	tr := &activity.Trace{NumGates: nl.NumGates()}
	tr.Sets = append(tr.Sets, sim.Cycle(map[netlist.GateID]bool{}))
	tr.Sets = append(tr.Sets, sim.Cycle(map[netlist.GateID]bool{in: true}))
	return ga, pa, tr, nl.Endpoints(0)
}

func TestGraphMatchesPathOnChain(t *testing.T) {
	ga, pa, tr, eps := chainFixture(t, 6, 1000)
	g, ok1 := ga.StageDTS(eps, 1, tr)
	p, ok2 := pa.StageDTS(eps, 1, tr)
	if !ok1 || !ok2 {
		t.Fatal("both analyzers should find the activated chain")
	}
	if math.Abs(g.Mean-p.Mean) > 1e-6 {
		t.Errorf("graph %v vs path %v DTS mean", g.Mean, p.Mean)
	}
	if math.Abs(g.Std()-p.Std()) > 1e-6 {
		t.Errorf("graph %v vs path %v DTS sigma", g.Std(), p.Std())
	}
}

func TestGraphNoActivation(t *testing.T) {
	ga, _, tr, eps := chainFixture(t, 4, 1000)
	// Cycle 0 has no input change: nothing activated.
	if _, ok := ga.StageDTS(eps, 0, tr); ok {
		t.Error("quiet cycle should yield no DTS")
	}
	if _, ok := ga.StageDTS(eps, 99, tr); ok {
		t.Error("out-of-range cycle should yield no DTS")
	}
}

func TestGraphAtMostPathDTSOnAdder(t *testing.T) {
	// The graph method sees every activated path; the path method only the
	// K it enumerated. Graph DTS therefore cannot exceed path DTS by more
	// than the Clark-approximation wiggle.
	ad := gen.Adder()
	e := newEngine(t, ad.N, 2400)
	ga, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	pa := dta.New(e, 8)
	sim, _ := activity.NewSimulator(ad.N)
	tr := &activity.Trace{NumGates: ad.N.NumGates()}
	ops := [][2]uint32{{0, 0}, {0xFFFFFFFF, 1}, {3, 5}, {0x0F0F0F0F, 0x00F0F0F1}}
	for _, op := range ops {
		in := map[netlist.GateID]bool{}
		setWord(in, ad.A, op[0])
		setWord(in, ad.B, op[1])
		in[ad.Cin] = false
		tr.Sets = append(tr.Sets, sim.Cycle(in))
	}
	eps := ad.N.Endpoints(0)
	for cyc := 1; cyc < len(ops); cyc++ {
		g, okG := ga.StageDTS(eps, cyc, tr)
		p, okP := pa.StageDTS(eps, cyc, tr)
		// The graph method sees a superset of the enumerated paths: it may
		// report DTS where top-K path enumeration found nothing, never the
		// reverse.
		if okP && !okG {
			t.Fatalf("cycle %d: path-based found activation the graph method missed", cyc)
		}
		if !okP || !okG {
			continue
		}
		if g.Mean > p.Mean+5 {
			t.Errorf("cycle %d: graph DTS %v should not exceed path DTS %v", cyc, g.Mean, p.Mean)
		}
		// And they should agree closely when the critical path is in the
		// enumerated set (full-carry cycle).
		if cyc == 1 && math.Abs(g.Mean-p.Mean) > 40 {
			t.Errorf("cycle 1: graph %v vs path %v too far apart", g.Mean, p.Mean)
		}
	}
}

func TestGraphInstDTSControl(t *testing.T) {
	c := gen.Control()
	e := newEngine(t, c.N, 1500)
	ga, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := activity.NewSimulator(c.N)
	tr := &activity.Trace{NumGates: c.N.NumGates()}
	for i := 0; i < 10; i++ {
		in := map[netlist.GateID]bool{}
		setWord(in, c.Instr, uint32(0x04211000+i*0x5A5A5A5))
		setWord(in, c.ExResult, uint32(i)*0x10101)
		tr.Sets = append(tr.Sets, sim.Cycle(in))
	}
	inst, ok := ga.InstDTS(1, tr, func(g *netlist.Gate) bool { return !g.Data })
	if !ok {
		t.Fatal("expected an instruction DTS")
	}
	if inst.Mean <= 0 || inst.Mean > 1500 {
		t.Errorf("instruction DTS mean %v implausible", inst.Mean)
	}
	if inst.Std() <= 0 {
		t.Error("instruction DTS must carry process variation")
	}
}
