package pool

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueueRunsSubmittedJobs(t *testing.T) {
	q := NewQueue(context.Background(), 4, 16, nil)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		if !q.TrySubmit(func(context.Context) {
			defer wg.Done()
			ran.Add(1)
		}) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	wg.Wait()
	q.Close()
	if ran.Load() != 16 {
		t.Errorf("ran %d jobs, want 16", ran.Load())
	}
}

func TestQueueBackpressureWhenFull(t *testing.T) {
	block := make(chan struct{})
	q := NewQueue(context.Background(), 1, 1, nil)
	started := make(chan struct{})
	if !q.TrySubmit(func(context.Context) { close(started); <-block }) {
		t.Fatal("first submit rejected")
	}
	<-started // the worker is now occupied; the backlog (depth 1) is free
	if !q.TrySubmit(func(context.Context) {}) {
		t.Fatal("backlog slot should accept one job")
	}
	if q.TrySubmit(func(context.Context) {}) {
		t.Error("full backlog must reject")
	}
	if d := q.Depth(); d != 2 {
		t.Errorf("depth = %d, want 2 (1 running + 1 queued)", d)
	}
	close(block)
	q.Close()
}

func TestQueueCloseDrainsPendingJobs(t *testing.T) {
	block := make(chan struct{})
	q := NewQueue(context.Background(), 1, 4, nil)
	var ran atomic.Int64
	started := make(chan struct{})
	q.TrySubmit(func(context.Context) { close(started); <-block; ran.Add(1) })
	<-started
	for i := 0; i < 3; i++ {
		if !q.TrySubmit(func(context.Context) { ran.Add(1) }) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	done := make(chan struct{})
	go func() { q.Close(); close(done) }()
	select {
	case <-done:
		t.Fatal("Close returned while a job was still blocked")
	case <-time.After(20 * time.Millisecond):
	}
	close(block)
	<-done
	if ran.Load() != 4 {
		t.Errorf("drained %d jobs, want all 4", ran.Load())
	}
	if q.TrySubmit(func(context.Context) {}) {
		t.Error("closed queue must reject new jobs")
	}
}

func TestQueueRecoversPanics(t *testing.T) {
	var panics atomic.Int64
	q := NewQueue(context.Background(), 2, 4, func(*PanicError) { panics.Add(1) })
	var wg sync.WaitGroup
	wg.Add(2)
	q.TrySubmit(func(context.Context) { defer wg.Done(); panic("job went bad") })
	q.TrySubmit(func(context.Context) { defer wg.Done() })
	wg.Wait()
	q.Close()
	if panics.Load() != 1 {
		t.Errorf("recovered %d panics, want 1", panics.Load())
	}
}

func TestQueueContextReachesJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	q := NewQueue(ctx, 1, 1, nil)
	got := make(chan error, 1)
	q.TrySubmit(func(jctx context.Context) {
		cancel()
		<-jctx.Done()
		got <- jctx.Err()
	})
	if err := <-got; err != context.Canceled {
		t.Errorf("job ctx err = %v, want Canceled", err)
	}
	q.Close()
}

func TestQueueCloseIdempotent(t *testing.T) {
	q := NewQueue(context.Background(), 2, 2, nil)
	q.Close()
	q.Close()
}
