// Package pool provides the bounded, panic-recovering worker pool shared by
// the estimation pipeline: scenario simulation and marginal solves
// (internal/core), datapath-model training and block-parallel control
// characterization (internal/errormodel). It grew out of the resilient run
// layer of the core package and was lifted here so the once-per-design and
// once-per-program characterization phases can reuse the same bounded
// concurrency and failure semantics.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// PanicError is a worker panic recovered by the pool and converted into an
// error, so one panicking task cannot kill the process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Run executes work(ctx, i) for every index i in [0, n) on a bounded pool of
// min(workers, n) goroutines; workers <= 0 selects runtime.GOMAXPROCS(0). A
// panicking task is recovered into a *PanicError. When errs is non-nil it
// must have length >= n; each task's failure is recorded at its own index
// (distinct slots, so no synchronization is needed by the caller). With
// failFast set, the first failure cancels the pool context so in-flight
// tasks abort at their next context poll and pending tasks observe the
// cancelled context.
//
// Run returns once every dispatched task has finished. Tasks writing to
// distinct elements of shared slices need no further synchronization: the
// pool's WaitGroup establishes the happens-before edge to the caller.
func Run(ctx context.Context, n, workers int, failFast bool, errs []error, work func(ctx context.Context, i int) error) {
	if n <= 0 {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := safeCall(poolCtx, i, work); err != nil {
					if errs != nil {
						errs[i] = err
					}
					if failFast {
						cancel()
					}
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// safeCall invokes one task, recovering a panic into a *PanicError carrying
// the stack.
func safeCall(ctx context.Context, i int, work func(context.Context, int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return work(ctx, i)
}

// FirstError returns the first non-nil error in errs, preserving index order
// (not completion order), or nil when every task succeeded.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
