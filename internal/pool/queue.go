package pool

import (
	"context"
	"sync"
)

// Queue is a bounded job queue with a fixed worker pool, the serving-side
// counterpart of Run: Run fans a known index range out over workers and
// returns when all are done, while Queue accepts jobs that arrive over time
// (an estimation daemon's requests) and applies backpressure once the
// backlog is full. Jobs run with the same panic-recovery semantics as Run's
// tasks, so one bad request cannot kill the process.
type Queue struct {
	ctx     context.Context
	onPanic func(*PanicError)
	tasks   chan func(context.Context)
	wg      sync.WaitGroup

	mu sync.Mutex
	// closed marks the queue as draining; guarded by mu.
	closed bool
	// running counts jobs currently executing on a worker; guarded by mu.
	running int
}

// NewQueue starts workers goroutines (<= 0 selects 1) consuming a backlog of
// at most depth pending jobs (<= 0 selects workers). Jobs receive ctx, the
// queue's base context: cancelling it is the caller's lever for aborting
// everything in flight, while Close alone lets in-flight and queued jobs
// drain.
func NewQueue(ctx context.Context, workers, depth int, onPanic func(*PanicError)) *Queue {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = 1
	}
	if depth <= 0 {
		depth = workers
	}
	q := &Queue{ctx: ctx, onPanic: onPanic, tasks: make(chan func(context.Context), depth)}
	for w := 0; w < workers; w++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

func (q *Queue) worker() {
	defer q.wg.Done()
	for fn := range q.tasks {
		q.mu.Lock()
		q.running++
		q.mu.Unlock()
		err := safeCall(q.ctx, 0, func(ctx context.Context, _ int) error {
			fn(ctx)
			return nil
		})
		q.mu.Lock()
		q.running--
		q.mu.Unlock()
		if pe, ok := err.(*PanicError); ok && q.onPanic != nil {
			q.onPanic(pe)
		}
	}
}

// TrySubmit enqueues fn without blocking. It reports false — the caller's
// backpressure signal — when the backlog is full or the queue is draining.
func (q *Queue) TrySubmit(fn func(context.Context)) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	select {
	case q.tasks <- fn:
		return true
	default:
		return false
	}
}

// Depth returns the pending backlog plus the jobs currently running — the
// /metrics queue-depth gauge.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.tasks) + q.running
}

// Close stops accepting new jobs and blocks until every pending and
// in-flight job has finished — the graceful-shutdown drain. It does not
// cancel anything: to abort instead of drain, cancel the NewQueue context
// first. Close is idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	close(q.tasks)
	q.mu.Unlock()
	q.wg.Wait()
}
