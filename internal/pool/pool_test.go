package pool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndices(t *testing.T) {
	const n = 100
	var count atomic.Int64
	done := make([]bool, n)
	Run(context.Background(), n, 8, false, nil, func(_ context.Context, i int) error {
		count.Add(1)
		done[i] = true
		return nil
	})
	if count.Load() != n {
		t.Fatalf("ran %d tasks, want %d", count.Load(), n)
	}
	for i, d := range done {
		if !d {
			t.Errorf("index %d never ran", i)
		}
	}
}

func TestRunRecordsPerIndexErrors(t *testing.T) {
	const n = 10
	errs := make([]error, n)
	Run(context.Background(), n, 4, false, errs, func(_ context.Context, i int) error {
		if i%3 == 0 {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	})
	for i := 0; i < n; i++ {
		if (i%3 == 0) != (errs[i] != nil) {
			t.Errorf("errs[%d] = %v", i, errs[i])
		}
	}
	if FirstError(errs) == nil || FirstError(errs).Error() != "task 0 failed" {
		t.Errorf("FirstError = %v", FirstError(errs))
	}
}

func TestRunRecoversPanics(t *testing.T) {
	errs := make([]error, 3)
	Run(context.Background(), 3, 2, false, errs, func(_ context.Context, i int) error {
		if i == 1 {
			panic("boom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(errs[1], &pe) {
		t.Fatalf("errs[1] = %v, want PanicError", errs[1])
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Errorf("panic payload = %v (stack %d bytes)", pe.Value, len(pe.Stack))
	}
	if errs[0] != nil || errs[2] != nil {
		t.Errorf("other tasks must not fail: %v %v", errs[0], errs[2])
	}
}

func TestRunFailFastCancelsPending(t *testing.T) {
	const n = 64
	errs := make([]error, n)
	Run(context.Background(), n, 1, true, errs, func(ctx context.Context, i int) error {
		if i == 0 {
			return errors.New("first fails")
		}
		return ctx.Err() // cancelled once the first failure lands
	})
	if errs[0] == nil {
		t.Fatal("first task should fail")
	}
	// With a single worker the remaining tasks all observe the cancellation.
	for i := 1; i < n; i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("errs[%d] = %v, want context.Canceled", i, errs[i])
		}
	}
}

func TestRunZeroTasksAndNilContext(t *testing.T) {
	Run(context.Background(), 0, 4, false, nil, func(context.Context, int) error {
		t.Fatal("must not run")
		return nil
	})
	ran := false
	Run(nil, 1, 0, false, nil, func(ctx context.Context, _ int) error { //nolint:staticcheck
		if ctx == nil {
			t.Error("pool must substitute a background context")
		}
		ran = true
		return nil
	})
	if !ran {
		t.Fatal("task did not run")
	}
	if FirstError(nil) != nil {
		t.Fatal("FirstError(nil) must be nil")
	}
}
