package dta

import (
	"math"
	"sync"
	"testing"

	"tsperr/internal/activity"
	"tsperr/internal/cell"
	"tsperr/internal/gen"
	"tsperr/internal/netlist"
	"tsperr/internal/sta"
	"tsperr/internal/variation"
)

func newModel(t *testing.T) *variation.Model {
	t.Helper()
	m, err := variation.NewModel(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func setWord(in map[netlist.GateID]bool, gates [32]netlist.GateID, w uint32) {
	for i := 0; i < 32; i++ {
		in[gates[i]] = (w>>uint(i))&1 == 1
	}
}

// adderFixture simulates the adder for the given operand sequence and
// returns an analyzer plus the trace.
func adderFixture(t *testing.T, period float64, ops [][2]uint32) (*Analyzer, *activity.Trace, *gen.AdderNet) {
	t.Helper()
	ad := gen.Adder()
	e, err := sta.NewEngine(ad.N, newModel(t), period, cell.SigmaRel, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := activity.NewSimulator(ad.N)
	if err != nil {
		t.Fatal(err)
	}
	tr := &activity.Trace{NumGates: ad.N.NumGates()}
	for _, op := range ops {
		in := map[netlist.GateID]bool{}
		setWord(in, ad.A, op[0])
		setWord(in, ad.B, op[1])
		tr.Sets = append(tr.Sets, sim.Cycle(in))
	}
	return New(e, 8), tr, ad
}

func TestStageDTSTracksActivatedDepth(t *testing.T) {
	// Cycle 0: zeros (settle). Cycle 1: short carry. Cycle 2: zeros.
	// Cycle 3: full-length carry chain.
	a, tr, ad := adderFixture(t, 2500, [][2]uint32{
		{0, 0}, {1, 1}, {0, 0}, {0xFFFFFFFF, 1},
	})
	eps := ad.N.Endpoints(0)
	shortDTS, ok1 := a.StageDTS(eps, 1, tr)
	longDTS, ok2 := a.StageDTS(eps, 3, tr)
	if !ok1 || !ok2 {
		t.Fatal("both cycles should have activated paths")
	}
	if longDTS.Mean >= shortDTS.Mean {
		t.Errorf("full carry chain must have less slack: short=%v long=%v",
			shortDTS.Mean, longDTS.Mean)
	}
}

func TestStageDTSNoActivation(t *testing.T) {
	a, tr, ad := adderFixture(t, 2500, [][2]uint32{
		{0, 0}, {5, 3}, {5, 3}, {5, 3},
	})
	eps := ad.N.Endpoints(0)
	// Cycle 2: identical operands, combinational logic quiet; only sum FFs
	// captured values. Most endpoints should see no activated full path.
	if _, ok := a.StageDTS(eps, 3, tr); ok {
		t.Error("steady-state cycle should have no activated endpoint paths")
	}
}

func TestErrorProbabilityMonotoneInPeriod(t *testing.T) {
	ops := [][2]uint32{{0, 0}, {0xFFFFFFFF, 1}}
	aFast, trFast, adf := adderFixture(t, 1700, ops)
	aSlow, trSlow, ads := adderFixture(t, 2600, ops)
	fast, ok1 := aFast.StageDTS(adf.N.Endpoints(0), 1, trFast)
	slow, ok2 := aSlow.StageDTS(ads.N.Endpoints(0), 1, trSlow)
	if !ok1 || !ok2 {
		t.Fatal("expected activated paths")
	}
	pFast := ErrorProbability(fast)
	pSlow := ErrorProbability(slow)
	if pFast <= pSlow {
		t.Errorf("shorter period must raise error probability: fast=%v slow=%v", pFast, pSlow)
	}
	if pSlow < 0 || pFast > 1 {
		t.Error("probabilities out of range")
	}
}

func TestInstDTSMinOverStages(t *testing.T) {
	// Control network: instruction flows through stages; InstDTS should be
	// at most the minimum of the individual stage DTS values (statistical
	// min can only reduce the mean).
	c := gen.Control()
	e, err := sta.NewEngine(c.N, newModel(t), 1600, cell.SigmaRel, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := activity.NewSimulator(c.N)
	tr := &activity.Trace{NumGates: c.N.NumGates()}
	words := []uint32{0x04211000, 0x58E70FFC, 0x04211000, 0x2C850008, 0x04211000, 0x58E70FFC, 0x04211000}
	for _, w := range words {
		in := map[netlist.GateID]bool{}
		setWord(in, c.Instr, w)
		setWord(in, c.ExResult, w^0x5A5A5A5A)
		tr.Sets = append(tr.Sets, sim.Cycle(in))
	}
	a := New(e, 8)
	inst, ok := a.InstDTS(1, tr, nil)
	if !ok {
		t.Fatal("expected instruction DTS")
	}
	for s := 0; s < c.N.Stages; s++ {
		if f, ok := a.StageDTSAll(s, 1+s, tr); ok {
			if inst.Mean > f.Mean+1 {
				t.Errorf("instruction DTS mean %v exceeds stage %d DTS %v", inst.Mean, s, f.Mean)
			}
		}
	}
	// Control-endpoint restriction must also work.
	if _, ok := a.InstDTS(1, tr, func(g *netlist.Gate) bool { return !g.Data }); !ok {
		t.Error("control-only instruction DTS should exist")
	}
}

func TestAnalyzerCaching(t *testing.T) {
	a, tr, ad := adderFixture(t, 2500, [][2]uint32{{0, 0}, {3, 1}})
	eps := ad.N.Endpoints(0)
	d1, ok1 := a.StageDTS(eps, 1, tr)
	d2, ok2 := a.StageDTS(eps, 1, tr)
	if ok1 != ok2 || math.Abs(d1.Mean-d2.Mean) > 1e-12 {
		t.Error("cached recomputation should be identical")
	}
	a.mu.Lock()
	populated := len(a.cache) > 0
	a.mu.Unlock()
	if !populated {
		t.Error("cache should be populated")
	}
}

func TestNewDefaultK(t *testing.T) {
	a := New(nil, 0)
	if a.K <= 0 {
		t.Error("K must default to a positive value")
	}
}

// memoSize reads the stage-memo size under the analyzer lock.
func memoSize(a *Analyzer) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.stage)
}

// TestStageDTSMemo asserts that the activation-signature memo returns
// bit-identical forms to a fresh analyzer evaluating the same cycle, and
// that distinct activation patterns get distinct entries.
func TestStageDTSMemo(t *testing.T) {
	ops := [][2]uint32{{0, 0}, {0xFFFF, 1}, {0, 0}, {0xFFFF, 1}}
	a, tr, ad := adderFixture(t, 2500, ops)
	eps := ad.N.Endpoints(0)
	// Cycles 1 and 3 apply the same stimulus after a zero cycle, so their
	// activation signatures match and the memo must serve cycle 3.
	d1, ok1 := a.StageDTS(eps, 1, tr)
	before := memoSize(a)
	d3, ok3 := a.StageDTS(eps, 3, tr)
	if !ok1 || !ok3 {
		t.Fatal("expected activated paths at cycles 1 and 3")
	}
	if after := memoSize(a); after != before {
		t.Errorf("identical signature must hit the memo: %d -> %d entries", before, after)
	}
	//tsperrlint:ignore floatcmp a memo hit must be bit-identical to the stored form; tolerance would mask a wrong entry
	if d1.Mean != d3.Mean || d1.Rand != d3.Rand {
		t.Errorf("memoized form differs: %v vs %v", d1.Mean, d3.Mean)
	}
	// A fresh analyzer recomputing cycle 3 from scratch must agree exactly.
	fresh := New(a.Engine, a.K)
	df, okf := fresh.StageDTS(eps, 3, tr)
	//tsperrlint:ignore floatcmp recomputation from scratch is asserted bit-identical, not approximately equal
	if !okf || df.Mean != d3.Mean || df.Rand != d3.Rand {
		t.Errorf("fresh recomputation differs: %v vs %v", df.Mean, d3.Mean)
	}
}

// TestStageDTSMemoHitZeroAlloc pins the packed-key fast path: once a stage
// signature is memoized, re-querying it (same activation pattern, same
// period) must not allocate — the key is built on the stack and the cached
// canonical form is returned as-is.
func TestStageDTSMemoHitZeroAlloc(t *testing.T) {
	ops := [][2]uint32{{0, 0}, {0xFFFF, 1}, {0, 0}, {0xFFFF, 1}}
	a, tr, ad := adderFixture(t, 2500, ops)
	eps := ad.N.Endpoints(0)
	if _, ok := a.StageDTS(eps, 1, tr); !ok {
		t.Fatal("expected activated paths at cycle 1")
	}
	hit := true
	allocs := testing.AllocsPerRun(100, func() {
		_, ok := a.StageDTS(eps, 3, tr)
		hit = hit && ok
	})
	if !hit {
		t.Fatal("memo hit lost the activation result")
	}
	if allocs != 0 {
		t.Errorf("StageDTS memo hit allocates %.1f objects per call, want 0", allocs)
	}
}

// TestAnalyzerConcurrent drives one analyzer from many goroutines (run under
// -race in make check) and checks every goroutine observes identical values.
func TestAnalyzerConcurrent(t *testing.T) {
	ops := [][2]uint32{{0, 0}, {0xFFFFFFFF, 1}, {1, 1}, {0xFF, 0xFF00}}
	a, tr, ad := adderFixture(t, 2500, ops)
	eps := ad.N.Endpoints(0)
	const workers = 8
	means := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, cyc := range []int{1, 2, 3, 1, 2, 3} {
				if f, ok := a.StageDTS(eps, cyc, tr); ok {
					means[w] = append(means[w], f.Mean)
				} else {
					means[w] = append(means[w], math.NaN())
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if len(means[w]) != len(means[0]) {
			t.Fatalf("worker %d saw %d results, want %d", w, len(means[w]), len(means[0]))
		}
		for i := range means[w] {
			//tsperrlint:ignore floatcmp worker determinism is asserted bit-identical across goroutines
			same := means[w][i] == means[0][i] ||
				(math.IsNaN(means[w][i]) && math.IsNaN(means[0][i]))
			if !same {
				t.Errorf("worker %d cycle-slot %d: %v vs %v", w, i, means[w][i], means[0][i])
			}
		}
	}
}
