// Package dta implements the paper's dynamic timing analysis: Algorithm 1
// computes the dynamic timing slack (DTS) of a pipeline stage at a clock
// cycle as the slack of the most critical *activated* path, and Algorithm 2
// computes the DTS of an instruction as the minimum over the stages it
// traverses. Under SSTA, slacks are canonical Gaussian forms: the
// most-critical-path scan runs twice (1st- and 99th-percentile orderings)
// and the result is the statistical minimum over the collected activated
// paths, exactly as Section 3 describes.
//
// The analyzer is safe for concurrent use and memoizes two layers of
// repeated work: the per-endpoint critical-path enumeration (computed once
// per endpoint, shared by every cycle), and full StageDTS results keyed by
// the endpoint set plus the activation signature of its candidate paths —
// two cycles that activate the same subset of candidate paths have, by
// construction, the same DTS form, so the expensive statistical-minimum
// reduction runs once per distinct signature.
package dta

import (
	"sort"
	"sync"

	"tsperr/internal/activity"
	"tsperr/internal/netlist"
	"tsperr/internal/sta"
	"tsperr/internal/variation"
)

// pathSlack couples an enumerated path with its canonical slack form.
type pathSlack struct {
	path  netlist.Path
	slack variation.Canon
	p01   float64 // 1st percentile of slack (worst case)
	p99   float64 // 99th percentile of slack (best case)
}

// epPaths is the lazily computed candidate-path set of one endpoint. The
// once guard lets concurrent callers share a single enumeration without
// holding the analyzer lock during the (expensive) path search.
type epPaths struct {
	once sync.Once
	ps   []pathSlack
}

// stageResult is one memoized StageDTS outcome.
type stageResult struct {
	form variation.Canon
	ok   bool
}

// stageMemoLimit bounds the StageDTS memo; a characterization run over a
// large program can see many distinct activation signatures, and dropping
// the memo wholesale on overflow keeps memory bounded without affecting
// results (entries are pure functions of their key).
const stageMemoLimit = 1 << 16

// Analyzer caches per-endpoint critical-path sets for a netlist and engine,
// plus memoized stage DTS reductions. All methods are safe for concurrent
// use by multiple goroutines.
type Analyzer struct {
	Engine *sta.Engine
	// K is the number of most-critical paths enumerated per endpoint per
	// ranking metric.
	K int

	mu sync.Mutex
	// cache memoizes per-endpoint path enumerations; guarded by mu.
	cache map[netlist.GateID]*epPaths
	// stage memoizes stage-level DTS reductions; guarded by mu.
	stage map[string]stageResult
}

// New builds an analyzer. k must be positive.
func New(e *sta.Engine, k int) *Analyzer {
	if k <= 0 {
		k = 8
	}
	return &Analyzer{
		Engine: e, K: k,
		cache: map[netlist.GateID]*epPaths{},
		stage: map[string]stageResult{},
	}
}

// endpointPaths returns the cached candidate paths of an endpoint,
// enumerating them on first use. Concurrent callers for the same endpoint
// block on the entry's once instead of duplicating the search.
func (a *Analyzer) endpointPaths(ep netlist.GateID) []pathSlack {
	a.mu.Lock()
	e, ok := a.cache[ep]
	if !ok {
		e = &epPaths{}
		a.cache[ep] = e
	}
	a.mu.Unlock()
	e.once.Do(func() {
		for _, p := range a.Engine.CriticalPaths(ep, a.K) {
			s := a.Engine.PathSlack(p)
			e.ps = append(e.ps, pathSlack{
				path:  p,
				slack: s,
				p01:   s.Percentile(0.01),
				p99:   s.Percentile(0.99),
			})
		}
	})
	return e.ps
}

// activated reports whether every gate of the path is in VCD(t)
// (Definition 3.3).
func activated(p netlist.Path, tr *activity.Trace, t int) bool {
	for _, g := range p.Gates {
		if !tr.Activated(t, g) {
			return false
		}
	}
	return true
}

// StageDTS is Algorithm 1 restricted to an endpoint set: it returns the
// canonical DTS form of the given endpoints at cycle t, and false when no
// path is activated (the stage imposes no timing constraint that cycle).
// Results are memoized on the activation signature of the candidate paths,
// so repeated cycles with identical activation patterns cost one map probe.
func (a *Analyzer) StageDTS(eps []netlist.GateID, t int, tr *activity.Trace) (variation.Canon, bool) {
	// Gather candidate paths and their activation bits; together with the
	// endpoint identities (and order, which fixes the reduction order) they
	// fully determine the result.
	type epAct struct {
		ps  []pathSlack
		act []bool
	}
	all := make([]epAct, 0, len(eps))
	key := make([]byte, 0, 8*len(eps))
	for _, ep := range eps {
		ps := a.endpointPaths(ep)
		act := make([]bool, len(ps))
		var bits byte
		key = append(key, byte(ep), byte(ep>>8), byte(ep>>16), byte(ep>>24))
		for i := range ps {
			if activated(ps[i].path, tr, t) {
				act[i] = true
				bits |= 1 << (uint(i) & 7)
			}
			if i&7 == 7 {
				key = append(key, bits)
				bits = 0
			}
		}
		if len(ps)&7 != 0 {
			key = append(key, bits)
		}
		all = append(all, epAct{ps: ps, act: act})
	}
	k := string(key)
	a.mu.Lock()
	if r, ok := a.stage[k]; ok {
		a.mu.Unlock()
		return r.form, r.ok
	}
	a.mu.Unlock()

	var ap []variation.Canon
	for _, ea := range all {
		ps, act := ea.ps, ea.act
		if len(ps) == 0 {
			continue
		}
		// Two scans: worst-case (1st percentile) and best-case (99th
		// percentile) criticality orderings; each contributes the first
		// activated path, ensuring AP contains every path that could be the
		// true most-critical one over process variation.
		idx := make([]int, len(ps))
		for i := range idx {
			idx[i] = i
		}
		found := map[int]bool{}
		for pass := 0; pass < 2; pass++ {
			if pass == 0 {
				sort.SliceStable(idx, func(x, y int) bool { return ps[idx[x]].p01 < ps[idx[y]].p01 })
			} else {
				sort.SliceStable(idx, func(x, y int) bool { return ps[idx[x]].p99 < ps[idx[y]].p99 })
			}
			for _, i := range idx {
				if act[i] {
					found[i] = true
					break
				}
			}
		}
		for i := range ps {
			if found[i] {
				ap = append(ap, ps[i].slack)
			}
		}
	}
	var res stageResult
	if len(ap) > 0 {
		if mn, err := sta.StatMin(ap); err == nil {
			res = stageResult{form: mn, ok: true}
		}
	}
	a.mu.Lock()
	if len(a.stage) >= stageMemoLimit {
		a.stage = map[string]stageResult{}
	}
	a.stage[k] = res
	a.mu.Unlock()
	return res.form, res.ok
}

// StageDTSAll runs StageDTS over all endpoints of a pipeline stage.
func (a *Analyzer) StageDTSAll(stage, t int, tr *activity.Trace) (variation.Canon, bool) {
	return a.StageDTS(a.Engine.N.Endpoints(stage), t, tr)
}

// InstDTS is Algorithm 2: the DTS of the instruction that occupies stage 0
// at cycle t is the minimum over stages s of the stage DTS at cycle t+s.
// keep filters the endpoints considered (e.g. control endpoints only).
func (a *Analyzer) InstDTS(t int, tr *activity.Trace, keep func(*netlist.Gate) bool) (variation.Canon, bool) {
	if keep == nil {
		keep = func(*netlist.Gate) bool { return true }
	}
	var forms []variation.Canon
	for s := 0; s < a.Engine.N.Stages; s++ {
		eps := a.Engine.N.EndpointsOf(s, keep)
		if len(eps) == 0 {
			continue
		}
		if f, ok := a.StageDTS(eps, t+s, tr); ok {
			forms = append(forms, f)
		}
	}
	if len(forms) == 0 {
		return variation.Canon{}, false
	}
	mn, err := sta.StatMin(forms)
	if err != nil {
		return variation.Canon{}, false
	}
	return mn, true
}

// ErrorProbability converts an instruction DTS form into the probability of
// a timing error: P(DTS < 0) under the process-variation model (Section 4.1).
func ErrorProbability(dts variation.Canon) float64 {
	return dts.ProbBelow(0)
}
