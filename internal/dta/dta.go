// Package dta implements the paper's dynamic timing analysis: Algorithm 1
// computes the dynamic timing slack (DTS) of a pipeline stage at a clock
// cycle as the slack of the most critical *activated* path, and Algorithm 2
// computes the DTS of an instruction as the minimum over the stages it
// traverses. Under SSTA, slacks are canonical Gaussian forms: the
// most-critical-path scan runs twice (1st- and 99th-percentile orderings)
// and the result is the statistical minimum over the collected activated
// paths, exactly as Section 3 describes.
//
// The analyzer is safe for concurrent use and memoizes three layers of
// repeated work:
//
//   - per-endpoint critical-path enumeration, computed once per endpoint and
//     shared by every cycle, together with the two criticality orderings the
//     Algorithm 1 scans use (the orderings are period-independent, see below);
//   - full StageDTS reductions, keyed by an interned endpoint-set identity
//     plus a packed activation bitset of its candidate paths — two cycles
//     that activate the same subset of candidate paths have, by
//     construction, the same DTS form, so the expensive statistical-minimum
//     reduction runs once per distinct signature, and the memo probe itself
//     is allocation-free for signatures up to stageKeyBits paths;
//   - the clock period enters only at the very end: path slack is
//     SL(p) = T - delay(p), so the memo stores the statistical minimum of the
//     *negated delays* (period-free) and re-applies +T per operating period.
//     Criticality orderings, Clark pairing (driven by correlations, which
//     live in the sensitivities) and the reduction structure are invariant
//     under the common shift, so retargeting the engine's ClockPeriod reuses
//     every enumeration and reduction instead of rebuilding the analyzer.
package dta

import (
	"encoding/binary"
	"sort"
	"sync"

	"tsperr/internal/activity"
	"tsperr/internal/netlist"
	"tsperr/internal/sta"
	"tsperr/internal/variation"
)

// pathSlack couples an enumerated path with the canonical form of its
// *negated delay*: the slack at clock period T is neg + T, so neg is the
// period-independent part. p01/p99 are percentiles of neg; shifting by T
// moves both by the same constant, so ordering paths by these values is
// identical to ordering by the corresponding slack percentiles at any T.
type pathSlack struct {
	path netlist.Path
	neg  variation.Canon
	p01  float64 // 1st percentile of neg (worst case)
	p99  float64 // 99th percentile of neg (best case)
}

// epPaths is the lazily computed candidate-path set of one endpoint. The
// once guard lets concurrent callers share a single enumeration without
// holding the analyzer lock during the (expensive) path search. ordWorst and
// ordBest are the two criticality orderings of Algorithm 1, precomputed here
// because they are period-independent.
type epPaths struct {
	once     sync.Once
	ps       []pathSlack
	ordWorst []int32 // path indices by p01 ascending (most critical worst-case first)
	ordBest  []int32 // path indices by p99 ascending (most critical best-case first)
}

// stageKeyWords and stageKeyBits size the packed activation signature of the
// allocation-free stage-memo key; endpoint sets whose candidate paths exceed
// stageKeyBits fall back to a byte-string key.
const (
	stageKeyWords = 8
	stageKeyBits  = stageKeyWords * 64
)

// stageKey identifies one StageDTS computation: the interned endpoint-set id
// (which fixes the endpoint sequence and hence the meaning of every bit) and
// the activation bits of the candidate paths in endpoint-major, path-index
// order. It is a comparable value type, so probing the memo allocates nothing.
type stageKey struct {
	set int32
	w   [stageKeyWords]uint64
}

func (k *stageKey) bit(pos int) bool { return k.w[pos>>6]>>(uint(pos)&63)&1 == 1 }

// stageEntry is one memoized StageDTS outcome. neg/ok are the period-free
// reduction (statistical minimum of the activated negated delays); period and
// slack cache the period-applied form for the operating point that last
// queried this entry. All fields are guarded by the owning Analyzer's mu.
type stageEntry struct {
	neg    variation.Canon
	ok     bool
	period float64
	slack  variation.Canon
}

// stageMemoLimit bounds the StageDTS memo; a characterization run over a
// large program can see many distinct activation signatures, and dropping
// the memo wholesale on overflow keeps memory bounded without affecting
// results (entries are pure functions of their key and the period).
const stageMemoLimit = 1 << 16

// setPtrLimit bounds the pointer-identity alias table of the endpoint-set
// interner; callers that pass freshly allocated slices every probe fall back
// to the content lookup instead of growing the table without bound.
const setPtrLimit = 1 << 12

// setRef is the pointer identity of an endpoint slice. Holding the element
// pointer in the map keeps the backing array reachable, so an address is
// never recycled while it is a key.
type setRef struct {
	ptr *netlist.GateID
	n   int
}

// Analyzer caches per-endpoint critical-path sets for a netlist and engine,
// plus memoized stage DTS reductions. All methods are safe for concurrent
// use by multiple goroutines. Endpoint slices passed to StageDTS are
// retained for interning and must not be mutated afterwards.
type Analyzer struct {
	Engine *sta.Engine
	// K is the number of most-critical paths enumerated per endpoint per
	// ranking metric.
	K int

	mu sync.Mutex
	// cache memoizes per-endpoint path enumerations; guarded by mu.
	cache map[netlist.GateID]*epPaths
	// setsByPtr and setsByContent intern endpoint sets: the pointer table is
	// the fast path, the content table the ground truth; guarded by mu.
	setsByPtr     map[setRef]int32
	setsByContent map[string]int32
	// stage and stageBig memoize stage-level DTS reductions for packed and
	// oversized activation signatures respectively; guarded by mu.
	stage    map[stageKey]*stageEntry
	stageBig map[string]*stageEntry
	// allSets lazily caches the unfiltered per-stage endpoint sets used by
	// InstDTS with a nil filter; guarded by mu.
	allSets [][]netlist.GateID
}

// New builds an analyzer. k must be positive.
func New(e *sta.Engine, k int) *Analyzer {
	if k <= 0 {
		k = 8
	}
	return &Analyzer{
		Engine: e, K: k,
		cache:         map[netlist.GateID]*epPaths{},
		setsByPtr:     map[setRef]int32{},
		setsByContent: map[string]int32{},
		stage:         map[stageKey]*stageEntry{},
		stageBig:      map[string]*stageEntry{},
	}
}

// endpointPaths returns the cached candidate paths of an endpoint,
// enumerating them on first use. Concurrent callers for the same endpoint
// block on the entry's once instead of duplicating the search.
func (a *Analyzer) endpointPaths(ep netlist.GateID) *epPaths {
	a.mu.Lock()
	e, ok := a.cache[ep]
	if !ok {
		e = &epPaths{}
		a.cache[ep] = e
	}
	a.mu.Unlock()
	e.once.Do(func() {
		for _, p := range a.Engine.CriticalPaths(ep, a.K) {
			n := a.Engine.PathDelay(p).Neg()
			e.ps = append(e.ps, pathSlack{
				path: p,
				neg:  n,
				p01:  n.Percentile(0.01),
				p99:  n.Percentile(0.99),
			})
		}
		e.ordWorst = make([]int32, len(e.ps))
		e.ordBest = make([]int32, len(e.ps))
		for i := range e.ps {
			e.ordWorst[i] = int32(i)
			e.ordBest[i] = int32(i)
		}
		sort.SliceStable(e.ordWorst, func(x, y int) bool {
			return e.ps[e.ordWorst[x]].p01 < e.ps[e.ordWorst[y]].p01
		})
		sort.SliceStable(e.ordBest, func(x, y int) bool {
			return e.ps[e.ordBest[x]].p99 < e.ps[e.ordBest[y]].p99
		})
	})
	return e
}

// internSet maps an endpoint slice to a stable small integer id, by pointer
// identity when possible and by content otherwise. Two slices with equal
// contents get the same id, so memo entries survive callers that rebuild
// their endpoint sets.
func (a *Analyzer) internSet(eps []netlist.GateID) int32 {
	if len(eps) == 0 {
		return 0
	}
	ref := setRef{&eps[0], len(eps)}
	a.mu.Lock()
	if id, ok := a.setsByPtr[ref]; ok {
		a.mu.Unlock()
		return id
	}
	a.mu.Unlock()

	b := make([]byte, 4*len(eps))
	for i, ep := range eps {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(ep))
	}
	content := string(b)
	a.mu.Lock()
	id, ok := a.setsByContent[content]
	if !ok {
		id = int32(len(a.setsByContent) + 1)
		a.setsByContent[content] = id
	}
	if len(a.setsByPtr) < setPtrLimit {
		a.setsByPtr[ref] = id
	}
	a.mu.Unlock()
	return id
}

// activated reports whether every gate of the path is in VCD(t)
// (Definition 3.3).
func activated(p netlist.Path, tr *activity.Trace, t int) bool {
	for _, g := range p.Gates {
		if !tr.Activated(t, g) {
			return false
		}
	}
	return true
}

// reduce runs the two Algorithm 1 criticality scans per endpoint over the
// activation bits exposed by actAt (positions advance per endpoint in path
// order, matching the key packing) and returns the statistical minimum of
// the collected activated negated-delay forms.
func (a *Analyzer) reduce(eps []netlist.GateID, actAt func(int) bool) *stageEntry {
	var ap []variation.Canon
	pos := 0
	for _, ep := range eps {
		e := a.endpointPaths(ep)
		n := len(e.ps)
		if n == 0 {
			continue
		}
		base := pos
		pos += n
		// Two scans: worst-case (1st percentile) and best-case (99th
		// percentile) criticality orderings; each contributes the first
		// activated path, ensuring AP contains every path that could be the
		// true most-critical one over process variation.
		i0, i1 := -1, -1
		for _, i := range e.ordWorst {
			if actAt(base + int(i)) {
				i0 = int(i)
				break
			}
		}
		for _, i := range e.ordBest {
			if actAt(base + int(i)) {
				i1 = int(i)
				break
			}
		}
		if i0 < 0 {
			continue
		}
		lo, hi := i0, i1
		if hi == lo {
			hi = -1
		}
		if hi >= 0 && hi < lo {
			lo, hi = hi, lo
		}
		ap = append(ap, e.ps[lo].neg)
		if hi >= 0 {
			ap = append(ap, e.ps[hi].neg)
		}
	}
	ent := &stageEntry{}
	if len(ap) > 0 {
		if mn, err := sta.StatMin(ap); err == nil {
			ent.neg, ent.ok = mn, true
		}
	}
	return ent
}

// finishEntry returns the period-applied form of a memo entry, refreshing
// the cached slack when the operating period moved. Callers hold a.mu.
func finishEntry(e *stageEntry, period float64) (variation.Canon, bool) {
	//tsperrlint:ignore floatcmp the period is an exact configuration value, not a computed quantity
	if e.period != period {
		if e.ok {
			e.slack = e.neg.AddConst(period)
		}
		e.period = period
	}
	return e.slack, e.ok
}

// StageDTS is Algorithm 1 restricted to an endpoint set: it returns the
// canonical DTS form of the given endpoints at cycle t, and false when no
// path is activated (the stage imposes no timing constraint that cycle).
// Results are memoized on the activation signature of the candidate paths,
// so repeated cycles with identical activation patterns cost one map probe —
// allocation-free for signatures that fit the packed key.
func (a *Analyzer) StageDTS(eps []netlist.GateID, t int, tr *activity.Trace) (variation.Canon, bool) {
	key := stageKey{set: a.internSet(eps)}
	pos := 0
	for _, ep := range eps {
		e := a.endpointPaths(ep)
		if pos+len(e.ps) > stageKeyBits {
			return a.stageDTSBig(eps, t, tr)
		}
		for i := range e.ps {
			if activated(e.ps[i].path, tr, t) {
				key.w[pos>>6] |= 1 << (uint(pos) & 63)
			}
			pos++
		}
	}

	period := a.Engine.ClockPeriod
	a.mu.Lock()
	if e, ok := a.stage[key]; ok {
		f, ok2 := finishEntry(e, period)
		a.mu.Unlock()
		return f, ok2
	}
	a.mu.Unlock()

	ent := a.reduce(eps, key.bit)
	a.mu.Lock()
	if prev, ok := a.stage[key]; ok {
		ent = prev // a concurrent miss won the race; both computed the same value
	} else {
		if len(a.stage)+len(a.stageBig) >= stageMemoLimit {
			a.stage = map[stageKey]*stageEntry{}
			a.stageBig = map[string]*stageEntry{}
		}
		a.stage[key] = ent
	}
	f, ok := finishEntry(ent, period)
	a.mu.Unlock()
	return f, ok
}

// stageDTSBig is the StageDTS fallback for endpoint sets whose candidate
// paths overflow the packed key: the signature becomes a byte string and the
// probe allocates, but the memoized reduction is shared all the same.
func (a *Analyzer) stageDTSBig(eps []netlist.GateID, t int, tr *activity.Trace) (variation.Canon, bool) {
	var act []bool
	for _, ep := range eps {
		e := a.endpointPaths(ep)
		for i := range e.ps {
			act = append(act, activated(e.ps[i].path, tr, t))
		}
	}
	key := make([]byte, 4, 4+len(act)/8+1)
	binary.LittleEndian.PutUint32(key, uint32(a.internSet(eps)))
	var bits byte
	for i, on := range act {
		if on {
			bits |= 1 << (uint(i) & 7)
		}
		if i&7 == 7 {
			key = append(key, bits)
			bits = 0
		}
	}
	if len(act)&7 != 0 {
		key = append(key, bits)
	}
	k := string(key)

	period := a.Engine.ClockPeriod
	a.mu.Lock()
	if e, ok := a.stageBig[k]; ok {
		f, ok2 := finishEntry(e, period)
		a.mu.Unlock()
		return f, ok2
	}
	a.mu.Unlock()

	ent := a.reduce(eps, func(pos int) bool { return act[pos] })
	a.mu.Lock()
	if prev, ok := a.stageBig[k]; ok {
		ent = prev
	} else {
		if len(a.stage)+len(a.stageBig) >= stageMemoLimit {
			a.stage = map[stageKey]*stageEntry{}
			a.stageBig = map[string]*stageEntry{}
		}
		a.stageBig[k] = ent
	}
	f, ok := finishEntry(ent, period)
	a.mu.Unlock()
	return f, ok
}

// StageDTSAll runs StageDTS over all endpoints of a pipeline stage.
func (a *Analyzer) StageDTSAll(stage, t int, tr *activity.Trace) (variation.Canon, bool) {
	return a.StageDTS(a.Engine.N.Endpoints(stage), t, tr)
}

// StageSets returns the per-stage endpoint sets accepted by keep (nil keeps
// everything), in stage order. Callers on hot paths compute this once and
// pass it to InstDTSSets so the per-call set construction — and the interner
// slow path it would trigger — happens once instead of per instruction.
func (a *Analyzer) StageSets(keep func(*netlist.Gate) bool) [][]netlist.GateID {
	if keep == nil {
		keep = func(*netlist.Gate) bool { return true }
	}
	sets := make([][]netlist.GateID, a.Engine.N.Stages)
	for s := range sets {
		sets[s] = a.Engine.N.EndpointsOf(s, keep)
	}
	return sets
}

// InstDTSSets is Algorithm 2 over precomputed per-stage endpoint sets: the
// DTS of the instruction that occupies stage 0 at cycle t is the minimum
// over stages s of the stage DTS at cycle t+s.
func (a *Analyzer) InstDTSSets(t int, tr *activity.Trace, sets [][]netlist.GateID) (variation.Canon, bool) {
	var forms []variation.Canon
	for s, eps := range sets {
		if len(eps) == 0 {
			continue
		}
		if f, ok := a.StageDTS(eps, t+s, tr); ok {
			forms = append(forms, f)
		}
	}
	if len(forms) == 0 {
		return variation.Canon{}, false
	}
	mn, err := sta.StatMin(forms)
	if err != nil {
		return variation.Canon{}, false
	}
	return mn, true
}

// InstDTS is Algorithm 2 with an endpoint filter: keep selects the endpoints
// considered (e.g. control endpoints only), nil keeps everything. The
// unfiltered sets are cached on the analyzer; filtered calls rebuild the
// sets per call, so hot callers should use StageSets + InstDTSSets.
func (a *Analyzer) InstDTS(t int, tr *activity.Trace, keep func(*netlist.Gate) bool) (variation.Canon, bool) {
	var sets [][]netlist.GateID
	if keep == nil {
		a.mu.Lock()
		sets = a.allSets
		a.mu.Unlock()
		if sets == nil {
			sets = a.StageSets(nil)
			a.mu.Lock()
			a.allSets = sets
			a.mu.Unlock()
		}
	} else {
		sets = a.StageSets(keep)
	}
	return a.InstDTSSets(t, tr, sets)
}

// ErrorProbability converts an instruction DTS form into the probability of
// a timing error: P(DTS < 0) under the process-variation model (Section 4.1).
func ErrorProbability(dts variation.Canon) float64 {
	return dts.ProbBelow(0)
}
