// Package replay simulates a timing-speculative processor's recovery
// machinery cycle by cycle: instructions issue in order at the speculative
// frequency, each may suffer a timing error (per the error model's
// probabilities), and the configured correction scheme charges its recovery
// — for the paper's conservative scheme, halving the frequency, flushing the
// pipeline, and reissuing the errant instruction (24 cycles for the 6-stage
// pipeline). It reproduces the closed-form performance model
// speedup = ratio / (1 + penalty * errorRate) from first principles, and
// exposes the cycle budget breakdown the formula hides.
package replay

import (
	"fmt"

	"tsperr/internal/cpu"
	"tsperr/internal/errormodel"
	"tsperr/internal/isa"
	"tsperr/internal/numeric"
)

// Config describes the speculative machine.
type Config struct {
	// FreqRatio is speculative over baseline frequency (1.15 in the paper).
	FreqRatio float64
	// Scheme is the correction mechanism.
	Scheme cpu.Correction
	// CPUConfig configures the functional simulator (zero = default).
	CPUConfig cpu.Config
}

// Breakdown reports where the speculative cycles went.
type Breakdown struct {
	Instructions int64
	Errors       int64
	// BaseCycles is the baseline machine's cycle count for the same run.
	BaseCycles int64
	// SpecCycles is the speculative machine's total including recovery.
	SpecCycles float64
	// RecoveryCycles is the part spent in error recovery.
	RecoveryCycles float64
}

// ErrorRate returns the measured fraction of instructions that erred.
func (b Breakdown) ErrorRate() float64 {
	if b.Instructions == 0 {
		return 0
	}
	return float64(b.Errors) / float64(b.Instructions)
}

// Speedup returns measured wall-clock speedup over the baseline: cycles are
// divided by frequency, so speculative time = SpecCycles / (f_base * ratio).
func (b Breakdown) Speedup(ratio float64) float64 {
	if b.SpecCycles == 0 {
		return 0
	}
	return float64(b.BaseCycles) / (b.SpecCycles / ratio)
}

// Run executes the program once on the speculative machine, drawing timing
// errors from the per-instruction conditional probabilities (the Markov
// error process of Section 4.1) and charging the scheme's recovery cost per
// error.
func Run(prog *isa.Program, setup func(*cpu.CPU, int) error, scenario int,
	cond *errormodel.Conditionals, cfg Config, rng *numeric.RNG) (Breakdown, error) {
	if cfg.FreqRatio <= 0 {
		return Breakdown{}, fmt.Errorf("replay: non-positive frequency ratio")
	}
	cpuCfg := cfg.CPUConfig
	if cpuCfg.MemWords == 0 {
		cpuCfg = cpu.DefaultConfig()
	}
	machine, err := cpu.New(prog, cpuCfg)
	if err != nil {
		return Breakdown{}, err
	}
	defer machine.Release()
	if setup != nil {
		if err := setup(machine, scenario); err != nil {
			return Breakdown{}, err
		}
	}
	var b Breakdown
	errState := true // flushed at program start
	st, err := machine.Run(func(d *cpu.DynInst) {
		p := cond.PC[d.Index]
		if errState {
			p = cond.PE[d.Index]
		}
		if rng.Float64() < p {
			b.Errors++
			b.RecoveryCycles += cfg.Scheme.PenaltyCycles
			errState = true
		} else {
			errState = false
		}
	})
	if err != nil {
		return Breakdown{}, err
	}
	b.Instructions = st.Instructions
	b.BaseCycles = st.Cycles
	b.SpecCycles = float64(st.Cycles) + b.RecoveryCycles
	return b, nil
}

// Average runs trials executions and averages the breakdowns.
func Average(prog *isa.Program, setup func(*cpu.CPU, int) error,
	conds []*errormodel.Conditionals, cfg Config, trials int, seed uint64) (Breakdown, error) {
	if trials <= 0 {
		return Breakdown{}, fmt.Errorf("replay: non-positive trials")
	}
	if len(conds) == 0 {
		return Breakdown{}, fmt.Errorf("replay: no scenarios")
	}
	rng := numeric.NewRNG(seed)
	var acc Breakdown
	for t := 0; t < trials; t++ {
		s := t % len(conds)
		b, err := Run(prog, setup, s, conds[s], cfg, rng)
		if err != nil {
			return Breakdown{}, err
		}
		acc.Instructions += b.Instructions
		acc.Errors += b.Errors
		acc.BaseCycles += b.BaseCycles
		acc.SpecCycles += b.SpecCycles
		acc.RecoveryCycles += b.RecoveryCycles
	}
	return acc, nil
}
