package replay

import (
	"math"
	"testing"

	"tsperr/internal/cpu"
	"tsperr/internal/errormodel"
	"tsperr/internal/isa"
	"tsperr/internal/numeric"
)

const prog = `
	li r1, 200
	li r2, 0
loop:
	add  r2, r2, r1
	addi r1, r1, -1
	bne  r1, r0, loop
	halt
`

func fixture(t *testing.T, p float64) (*isa.Program, []*errormodel.Conditionals) {
	t.Helper()
	pr, err := isa.Assemble("loop", prog)
	if err != nil {
		t.Fatal(err)
	}
	n := len(pr.Insts)
	cond := &errormodel.Conditionals{PC: make([]float64, n), PE: make([]float64, n)}
	for i := range cond.PC {
		cond.PC[i] = p
		cond.PE[i] = p
	}
	return pr, []*errormodel.Conditionals{cond}
}

func TestMeasuredSpeedupMatchesClosedForm(t *testing.T) {
	// The paper's performance formula assumes one cycle per instruction; the
	// simulator has hazards, so compare against the formula evaluated with
	// the measured base CPI.
	p := 0.004
	pr, conds := fixture(t, p)
	cfg := Config{FreqRatio: 1.15, Scheme: cpu.ReplayHalfFrequency}
	b, err := Average(pr, nil, conds, cfg, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	er := b.ErrorRate()
	if math.Abs(er-p) > 0.001 {
		t.Fatalf("measured error rate %v, want ~%v", er, p)
	}
	cpi := float64(b.BaseCycles) / float64(b.Instructions)
	pm := cpu.PerfModel{FreqRatio: 1.15, BaseCPI: cpi, Scheme: cpu.ReplayHalfFrequency}
	got := b.Speedup(1.15)
	want := pm.Speedup(er)
	if math.Abs(got-want) > 0.002 {
		t.Errorf("measured speedup %v vs closed form %v", got, want)
	}
}

func TestZeroErrorsPureFrequencyGain(t *testing.T) {
	pr, conds := fixture(t, 0)
	b, err := Average(pr, nil, conds, Config{FreqRatio: 1.15, Scheme: cpu.ReplayHalfFrequency}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Errors != 0 || b.RecoveryCycles != 0 {
		t.Fatal("no errors expected")
	}
	if math.Abs(b.Speedup(1.15)-1.15) > 1e-12 {
		t.Errorf("speedup = %v, want exactly the frequency ratio", b.Speedup(1.15))
	}
}

func TestSchemePenaltyOrdering(t *testing.T) {
	pr, conds := fixture(t, 0.01)
	var speeds []float64
	for _, scheme := range []cpu.Correction{
		cpu.ReplayHalfFrequency, cpu.PipelineFlush, cpu.SingleCycleReplay,
	} {
		b, err := Average(pr, nil, conds, Config{FreqRatio: 1.15, Scheme: scheme}, 200, 3)
		if err != nil {
			t.Fatal(err)
		}
		speeds = append(speeds, b.Speedup(1.15))
	}
	if !(speeds[0] < speeds[1] && speeds[1] < speeds[2]) {
		t.Errorf("cheaper recovery must be faster: %v", speeds)
	}
}

func TestBreakEvenCrossoverObserved(t *testing.T) {
	// Below the break-even error rate the speculative machine wins; above it
	// it loses. Use the measured CPI to place the break-even point.
	pr, conds0 := fixture(t, 0.001)
	b0, err := Average(pr, nil, conds0, Config{FreqRatio: 1.15, Scheme: cpu.ReplayHalfFrequency}, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b0.Speedup(1.15) <= 1 {
		t.Errorf("0.1%% error rate should still win: %v", b0.Speedup(1.15))
	}
	_, conds1 := fixture(t, 0.03)
	b1, err := Average(pr, nil, conds1, Config{FreqRatio: 1.15, Scheme: cpu.ReplayHalfFrequency}, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Speedup(1.15) >= 1 {
		t.Errorf("3%% error rate should lose: %v", b1.Speedup(1.15))
	}
}

func TestErrorClusteringWithFlushConditioning(t *testing.T) {
	// p^e >> p^c: errors arrive in bursts; the same mean rate costs the
	// same recovery cycles, but the dependence shows in the error count
	// variance across runs (validated in montecarlo); here we just check
	// the conditional switch is honored by making p^e = 1: after the first
	// error, every subsequent instruction errs.
	pr, _ := fixture(t, 0)
	n := len(pr.Insts)
	cond := &errormodel.Conditionals{PC: make([]float64, n), PE: make([]float64, n)}
	for i := range cond.PE {
		cond.PE[i] = 1
	}
	// p^in = 1 at start, so instruction 0 errs, and then everything does.
	rng := numeric.NewRNG(1)
	b, err := Run(pr, nil, 0, cond, Config{FreqRatio: 1.15, Scheme: cpu.ReplayHalfFrequency}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if b.Errors != b.Instructions {
		t.Errorf("with p^e=1 every instruction should err: %d of %d", b.Errors, b.Instructions)
	}
}

func TestValidation(t *testing.T) {
	pr, conds := fixture(t, 0.01)
	if _, err := Average(pr, nil, conds, Config{FreqRatio: 0, Scheme: cpu.PipelineFlush}, 1, 1); err == nil {
		t.Error("zero ratio should fail")
	}
	if _, err := Average(pr, nil, nil, Config{FreqRatio: 1.1, Scheme: cpu.PipelineFlush}, 1, 1); err == nil {
		t.Error("no scenarios should fail")
	}
	if _, err := Average(pr, nil, conds, Config{FreqRatio: 1.1, Scheme: cpu.PipelineFlush}, 0, 1); err == nil {
		t.Error("zero trials should fail")
	}
}
