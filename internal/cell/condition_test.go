package cell

import (
	"math"
	"testing"
)

// TestConditionNominalExact pins the acceptance-critical identity: both
// scaling factors are bit-exactly 1.0 at the nominal condition (explicit or
// zero-valued), so default-condition engines reproduce pre-condition bytes.
func TestConditionNominalExact(t *testing.T) {
	for _, c := range []OperatingCondition{
		{},
		{VoltageV: NominalVoltageV},
		{TempC: NominalTempC},
		Nominal(),
	} {
		if got := c.DelayFactor(); math.Float64bits(got) != math.Float64bits(1.0) {
			t.Errorf("DelayFactor(%v) = %v (bits %x), want exactly 1.0", c, got, math.Float64bits(got))
		}
		if got := c.SigmaFactor(); math.Float64bits(got) != math.Float64bits(1.0) {
			t.Errorf("SigmaFactor(%v) = %v (bits %x), want exactly 1.0", c, got, math.Float64bits(got))
		}
		if !c.IsNominal() {
			t.Errorf("IsNominal(%v) = false, want true", c)
		}
	}
}

// TestDelayFactorMonotone checks the law's shape: delay inflates
// monotonically as voltage droops at fixed temperature, and as temperature
// rises at fixed voltage.
func TestDelayFactorMonotone(t *testing.T) {
	prev := math.Inf(1)
	for v := MinVoltageV; v <= MaxVoltageV+1e-9; v += 0.05 {
		f := OperatingCondition{VoltageV: v, TempC: NominalTempC}.DelayFactor()
		if f >= prev {
			t.Fatalf("DelayFactor not strictly decreasing in voltage at %.2f V: %v >= %v", v, f, prev)
		}
		if f <= 0 {
			t.Fatalf("DelayFactor(%.2f V) = %v, want positive", v, f)
		}
		prev = f
	}
	prevT := 0.0
	for temp := MinTempC; temp <= MaxTempC+1e-9; temp += 15 {
		f := OperatingCondition{VoltageV: NominalVoltageV, TempC: temp}.DelayFactor()
		if f <= prevT {
			t.Fatalf("DelayFactor not strictly increasing in temperature at %.0f C: %v <= %v", temp, f, prevT)
		}
		prevT = f
	}
}

// TestSigmaFactorDroop checks that variability grows with droop and stays
// positive over the whole validity range.
func TestSigmaFactorDroop(t *testing.T) {
	droop := OperatingCondition{VoltageV: 0.9, TempC: NominalTempC}.SigmaFactor()
	if droop <= 1 {
		t.Fatalf("SigmaFactor at 0.9 V = %v, want > 1", droop)
	}
	over := OperatingCondition{VoltageV: 1.3, TempC: NominalTempC}.SigmaFactor()
	if over >= 1 {
		t.Fatalf("SigmaFactor at 1.3 V = %v, want < 1", over)
	}
	for v := MinVoltageV; v <= MaxVoltageV+1e-9; v += 0.05 {
		if f := (OperatingCondition{VoltageV: v}).SigmaFactor(); f <= 0 {
			t.Fatalf("SigmaFactor(%.2f V) = %v, want positive", v, f)
		}
	}
}

func TestConditionValidate(t *testing.T) {
	cases := []struct {
		c  OperatingCondition
		ok bool
	}{
		{OperatingCondition{}, true},
		{Nominal(), true},
		{OperatingCondition{VoltageV: 0.9, TempC: 85}, true},
		{OperatingCondition{VoltageV: MinVoltageV, TempC: MinTempC}, true},
		{OperatingCondition{VoltageV: MaxVoltageV, TempC: MaxTempC}, true},
		{OperatingCondition{VoltageV: 0.5}, false},
		{OperatingCondition{VoltageV: 1.5}, false},
		{OperatingCondition{TempC: -41}, false},
		{OperatingCondition{TempC: 126}, false},
		{OperatingCondition{VoltageV: math.NaN()}, false},
		{OperatingCondition{TempC: math.Inf(1)}, false},
	}
	for _, tc := range cases {
		err := tc.c.Validate()
		if tc.ok && err != nil {
			t.Errorf("Validate(%v) = %v, want nil", tc.c, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("Validate(%v) = nil, want error", tc.c)
		}
	}
}

func TestConditionString(t *testing.T) {
	if got := (OperatingCondition{}).String(); got != "1.1V/25C" {
		t.Errorf("zero condition String() = %q, want \"1.1V/25C\"", got)
	}
	if got := (OperatingCondition{VoltageV: 0.95, TempC: 85}).String(); got != "0.95V/85C" {
		t.Errorf("String() = %q, want \"0.95V/85C\"", got)
	}
}
