// Package cell defines the standard-cell library used to build processor
// netlists: gate kinds, their logic functions, and 45 nm-like nominal timing
// parameters. Delays are in picoseconds and are deliberately simple (single
// worst-arc number per cell); the SSTA layer adds process variation on top.
package cell

import (
	"fmt"
	"strings"
)

// Kind identifies a standard cell.
type Kind uint8

// The library. INPUT is a primary input or pseudo-source; DFF is a
// flip-flop (a timing endpoint and a cycle boundary in logic simulation).
const (
	INPUT Kind = iota
	CONST0
	CONST1
	BUF
	INV
	AND2
	OR2
	NAND2
	NOR2
	XOR2
	XNOR2
	MUX2 // inputs: a, b, sel; output = sel ? b : a
	DFF  // input: d; output = captured state
	numKinds
)

var names = [numKinds]string{
	"INPUT", "CONST0", "CONST1", "BUF", "INV", "AND2", "OR2", "NAND2",
	"NOR2", "XOR2", "XNOR2", "MUX2", "DFF",
}

func (k Kind) String() string {
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// NumInputs returns the fan-in arity of the cell.
func (k Kind) NumInputs() int {
	switch k {
	case INPUT, CONST0, CONST1:
		return 0
	case BUF, INV, DFF:
		return 1
	case MUX2:
		return 3
	default:
		return 2
	}
}

// Delay returns the nominal propagation delay in picoseconds for a 45 nm-like
// library at the typical corner. DFF returns its clock-to-Q delay; Setup
// below must be added at path ends.
func (k Kind) Delay() float64 {
	switch k {
	case INPUT, CONST0, CONST1:
		return 0
	case BUF:
		return 28
	case INV:
		return 16
	case AND2:
		return 34
	case OR2:
		return 36
	case NAND2:
		return 24
	case NOR2:
		return 26
	case XOR2:
		return 48
	case XNOR2:
		return 50
	case MUX2:
		return 42
	case DFF:
		return 60 // clock-to-Q
	default:
		return 0
	}
}

// Setup is the flip-flop setup time in picoseconds, charged at every path
// endpoint.
const Setup = 35.0

// SigmaRel is the default relative standard deviation of a cell delay under
// process variation (sigma / nominal).
const SigmaRel = 0.045

// Eval computes the cell's output from its input values. DFF is not
// evaluated here (it is a state element handled by the simulator); INPUT
// values are supplied externally.
func (k Kind) Eval(in []bool) bool {
	switch k {
	case CONST0:
		return false
	case CONST1:
		return true
	case BUF:
		return in[0]
	case INV:
		return !in[0]
	case AND2:
		return in[0] && in[1]
	case OR2:
		return in[0] || in[1]
	case NAND2:
		return !(in[0] && in[1])
	case NOR2:
		return !(in[0] || in[1])
	case XOR2:
		return in[0] != in[1]
	case XNOR2:
		return in[0] == in[1]
	case MUX2:
		if in[2] {
			return in[1]
		}
		return in[0]
	default:
		panic(fmt.Sprintf("cell: Eval on non-combinational kind %v", k))
	}
}

// Known reports whether k is a member of the library. Netlists built
// through Add can only hold known kinds, but the structural linter checks
// it anyway so hand-corrupted or future-serialized netlists fail loudly.
func (k Kind) Known() bool {
	return k < numKinds
}

// IsSource reports whether the cell starts timing paths (its output is stable
// at the start of the clock cycle): primary inputs, constants, and flip-flop
// outputs.
func (k Kind) IsSource() bool {
	switch k {
	case INPUT, CONST0, CONST1, DFF:
		return true
	}
	return false
}

// IsCombinational reports whether the cell computes a logic function of its
// inputs within the cycle.
func (k Kind) IsCombinational() bool {
	return !k.IsSource()
}

// Fingerprint returns a stable string capturing the library's timing
// parameters: every cell's nominal delay plus the setup time and relative
// sigma. The persistent model cache folds it into its key, so any edit to
// the library invalidates previously cached trained models.
func Fingerprint() string {
	var b strings.Builder
	for k := Kind(0); k < numKinds; k++ {
		fmt.Fprintf(&b, "%s=%g;", k, k.Delay())
	}
	fmt.Fprintf(&b, "setup=%g;sigma=%g", Setup, SigmaRel)
	return b.String()
}
