package cell

import (
	"fmt"
	"math"
)

// The operating-condition scaling law. Cell delays are functions of the
// supply voltage and die temperature, not just of process variation: the
// alpha-power law models the drive-current collapse as VDD approaches the
// threshold voltage (delay ~ V / (V - Vth)^alpha), and a linear
// temperature coefficient captures mobility degradation at hot corners.
// The library's nominal delays (Kind.Delay) are quoted at the nominal
// condition below; DelayFactor/SigmaFactor express any other condition as
// smooth multipliers on top. Both factors are exactly 1.0 at the nominal
// condition — the identical float expression divides to 1.0 and the
// temperature term adds an exact zero — so a nominal-condition engine is
// bit-identical to one built before conditions existed.
const (
	// NominalVoltageV and NominalTempC define the condition at which the
	// library's delays are quoted (45 nm-like typical corner).
	NominalVoltageV = 1.1
	NominalTempC    = 25.0

	// alphaPower is the velocity-saturation exponent of the alpha-power
	// current law; ~1.3 is typical for short-channel 45 nm devices.
	alphaPower = 1.3
	// thresholdV is the effective device threshold voltage.
	thresholdV = 0.35
	// tempDelayCoeff is the linear delay inflation per degree C above
	// nominal (mobility-dominated regime: hotter is slower).
	tempDelayCoeff = 0.0012
	// sigmaDroopGain scales the relative-sigma inflation per unit of
	// relative voltage droop: variability worsens as VDD drops toward Vth.
	sigmaDroopGain = 0.8

	// MinVoltageV/MaxVoltageV and MinTempC/MaxTempC bound the law's
	// validity range; outside it the alpha-power fit is meaningless.
	MinVoltageV = 0.6
	MaxVoltageV = 1.4
	MinTempC    = -40.0
	MaxTempC    = 125.0
)

// OperatingCondition is a (supply voltage, temperature) point. The zero
// value means "the nominal condition": existing call sites that never set a
// condition keep their exact pre-condition behavior. Per field, a zero is
// normalized to the nominal value (a literal 0 degrees C is therefore not
// representable; use a near-zero temperature if freezing point matters).
type OperatingCondition struct {
	// VoltageV is the supply voltage in volts (0 = nominal).
	VoltageV float64
	// TempC is the die temperature in degrees Celsius (0 = nominal).
	TempC float64
}

// Nominal returns the explicit nominal condition.
func Nominal() OperatingCondition {
	return OperatingCondition{VoltageV: NominalVoltageV, TempC: NominalTempC}
}

// Norm returns the condition with zero fields replaced by their nominal
// values.
func (c OperatingCondition) Norm() OperatingCondition {
	if c.VoltageV == 0 {
		c.VoltageV = NominalVoltageV
	}
	if c.TempC == 0 {
		c.TempC = NominalTempC
	}
	return c
}

// Equal reports whether two conditions normalize to bit-identical values —
// the equivalence the model cache, surrogate gating, and per-condition
// framework registry all key on.
func (c OperatingCondition) Equal(o OperatingCondition) bool {
	cn, on := c.Norm(), o.Norm()
	return math.Float64bits(cn.VoltageV) == math.Float64bits(on.VoltageV) &&
		math.Float64bits(cn.TempC) == math.Float64bits(on.TempC)
}

// IsNominal reports whether the (normalized) condition is bit-identical to
// the nominal one, i.e. whether condition scaling is a guaranteed no-op.
func (c OperatingCondition) IsNominal() bool {
	return c.Equal(OperatingCondition{})
}

// Validate checks the (normalized) condition against the law's validity
// range. NaN and infinities fail the range checks.
func (c OperatingCondition) Validate() error {
	n := c.Norm()
	if !(n.VoltageV >= MinVoltageV && n.VoltageV <= MaxVoltageV) {
		return fmt.Errorf("cell: voltage %v V outside [%g, %g]",
			n.VoltageV, MinVoltageV, MaxVoltageV)
	}
	if !(n.TempC >= MinTempC && n.TempC <= MaxTempC) {
		return fmt.Errorf("cell: temperature %v C outside [%g, %g]",
			n.TempC, MinTempC, MaxTempC)
	}
	return nil
}

// alphaPowerDelay is the un-normalized alpha-power delay shape d(V) =
// V / (V - Vth)^alpha; only ratios of it are meaningful.
func alphaPowerDelay(v float64) float64 {
	return v / math.Pow(v-thresholdV, alphaPower)
}

// DelayFactor returns the multiplier on every nominal cell delay at this
// condition: the alpha-power voltage ratio times the linear temperature
// term. Monotone increasing in droop (lower voltage = slower) and in
// temperature; exactly 1.0 at the nominal condition.
func (c OperatingCondition) DelayFactor() float64 {
	n := c.Norm()
	vf := alphaPowerDelay(n.VoltageV) / alphaPowerDelay(NominalVoltageV)
	tf := 1 + tempDelayCoeff*(n.TempC-NominalTempC)
	return vf * tf
}

// SigmaFactor returns the multiplier on the relative delay sigma at this
// condition: variability grows linearly with relative voltage droop (and
// shrinks mildly under overdrive). Exactly 1.0 at the nominal condition.
func (c OperatingCondition) SigmaFactor() float64 {
	n := c.Norm()
	return 1 + sigmaDroopGain*(NominalVoltageV-n.VoltageV)/NominalVoltageV
}

// String renders the normalized condition for logs and fingerprints.
func (c OperatingCondition) String() string {
	n := c.Norm()
	return fmt.Sprintf("%gV/%gC", n.VoltageV, n.TempC)
}
