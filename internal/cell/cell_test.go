package cell

import (
	"testing"
	"testing/quick"
)

func TestEvalTruthTables(t *testing.T) {
	f, tr := false, true
	cases := []struct {
		k    Kind
		in   []bool
		want bool
	}{
		{CONST0, nil, false},
		{CONST1, nil, true},
		{BUF, []bool{tr}, true},
		{BUF, []bool{f}, false},
		{INV, []bool{tr}, false},
		{AND2, []bool{tr, tr}, true},
		{AND2, []bool{tr, f}, false},
		{OR2, []bool{f, f}, false},
		{OR2, []bool{f, tr}, true},
		{NAND2, []bool{tr, tr}, false},
		{NOR2, []bool{f, f}, true},
		{XOR2, []bool{tr, f}, true},
		{XOR2, []bool{tr, tr}, false},
		{XNOR2, []bool{tr, tr}, true},
		{MUX2, []bool{tr, f, f}, true},   // sel=0 -> a
		{MUX2, []bool{tr, f, tr}, false}, // sel=1 -> b
	}
	for _, c := range cases {
		if got := c.k.Eval(c.in); got != c.want {
			t.Errorf("%v%v = %v, want %v", c.k, c.in, got, c.want)
		}
	}
}

func TestEvalPanicsOnState(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval(DFF) should panic")
		}
	}()
	DFF.Eval([]bool{true})
}

func TestArities(t *testing.T) {
	want := map[Kind]int{
		INPUT: 0, CONST0: 0, CONST1: 0, BUF: 1, INV: 1, DFF: 1,
		AND2: 2, OR2: 2, NAND2: 2, NOR2: 2, XOR2: 2, XNOR2: 2, MUX2: 3,
	}
	for k, n := range want {
		if k.NumInputs() != n {
			t.Errorf("%v arity = %d, want %d", k, k.NumInputs(), n)
		}
	}
}

func TestDelaysArePositiveForLogic(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		d := k.Delay()
		if k.IsCombinational() && k != INPUT && d <= 0 {
			t.Errorf("%v delay = %v", k, d)
		}
		if d < 0 {
			t.Errorf("%v negative delay", k)
		}
	}
	if Setup <= 0 || SigmaRel <= 0 || SigmaRel > 0.2 {
		t.Error("timing constants implausible")
	}
	// Complex gates must be slower than the inverter.
	if XOR2.Delay() <= INV.Delay() || MUX2.Delay() <= BUF.Delay() {
		t.Error("delay ordering implausible")
	}
}

func TestSourceClassification(t *testing.T) {
	for _, k := range []Kind{INPUT, CONST0, CONST1, DFF} {
		if !k.IsSource() || k.IsCombinational() {
			t.Errorf("%v should be a source", k)
		}
	}
	for _, k := range []Kind{BUF, INV, AND2, MUX2} {
		if k.IsSource() || !k.IsCombinational() {
			t.Errorf("%v should be combinational", k)
		}
	}
}

func TestDeMorganProperty(t *testing.T) {
	f := func(a, b bool) bool {
		nand := NAND2.Eval([]bool{a, b})
		orInv := OR2.Eval([]bool{INV.Eval([]bool{a}), INV.Eval([]bool{b})})
		return nand == orInv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringNames(t *testing.T) {
	if INPUT.String() != "INPUT" || DFF.String() != "DFF" {
		t.Error("names wrong")
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should still render")
	}
}
