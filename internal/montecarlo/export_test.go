package montecarlo

// ChunkSeed exposes chunkSeed to the external test package (the tests live
// outside the package so they can build fixtures with internal/core, which
// imports this package).
var ChunkSeed = chunkSeed
