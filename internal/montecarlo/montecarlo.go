// Package montecarlo implements the baseline the paper compares its
// statistical estimator against conceptually: direct Monte Carlo simulation
// of the program's timing-error process. Each trial re-executes the program
// and flips one Bernoulli per retired instruction, with success probability
// p^e or p^c depending on whether the previous instruction erred — the exact
// Markov dependence structure the error-correction mechanism induces (Section
// 4.1). The paper notes this baseline is too slow for large datasets; here it
// validates the Poisson/Normal approximations on small programs, inside the
// Chen-Stein and Stein bounds.
package montecarlo

import (
	"fmt"
	"sort"

	"tsperr/internal/cpu"
	"tsperr/internal/errormodel"
	"tsperr/internal/isa"
	"tsperr/internal/numeric"
)

// Spec describes one Monte Carlo experiment.
type Spec struct {
	Prog *isa.Program
	// Setup seeds machine state for a scenario (input dataset).
	Setup func(c *cpu.CPU, scenario int) error
	// Cond holds the per-scenario conditional probabilities; its length is
	// the number of scenarios.
	Cond []*errormodel.Conditionals
	// Trials is the number of simulated executions (spread round-robin over
	// scenarios).
	Trials int
	// Seed makes the experiment reproducible.
	Seed uint64
	// CPUConfig overrides the machine configuration (zero = default).
	CPUConfig cpu.Config
}

// Result holds the sampled error counts.
type Result struct {
	Counts []float64
	// Instructions is the per-run dynamic instruction count (last run).
	Instructions int64
}

// Run executes the experiment.
func Run(spec Spec) (*Result, error) {
	if spec.Trials <= 0 {
		return nil, fmt.Errorf("montecarlo: non-positive trials")
	}
	if len(spec.Cond) == 0 {
		return nil, fmt.Errorf("montecarlo: no scenarios")
	}
	cfgCPU := spec.CPUConfig
	if cfgCPU.MemWords == 0 {
		cfgCPU = cpu.DefaultConfig()
	}
	rng := numeric.NewRNG(spec.Seed)
	res := &Result{Counts: make([]float64, spec.Trials)}
	for t := 0; t < spec.Trials; t++ {
		errors, insts, err := runTrial(spec, cfgCPU, t, rng)
		if err != nil {
			return nil, err
		}
		res.Counts[t] = errors
		res.Instructions = insts
	}
	return res, nil
}

// runTrial simulates one execution for global trial index t (which fixes the
// scenario as t mod len(Cond)) and returns the sampled error count and the
// dynamic instruction count. It is shared by the serial Run loop and the
// sharded chunk workers; the caller owns the RNG, so a chunk's stream is
// whatever generator it hands in.
func runTrial(spec Spec, cfgCPU cpu.Config, t int, rng *numeric.RNG) (float64, int64, error) {
	s := t % len(spec.Cond)
	cond := spec.Cond[s]
	machine, err := cpu.New(spec.Prog, cfgCPU)
	if err != nil {
		return 0, 0, err
	}
	defer machine.Release()
	if spec.Setup != nil {
		if err := spec.Setup(machine, s); err != nil {
			return 0, 0, err
		}
	}
	errors := 0.0
	errState := true // the processor starts flushed: p^in = 1
	st, err := machine.Run(func(d *cpu.DynInst) {
		p := cond.PC[d.Index]
		if errState {
			p = cond.PE[d.Index]
		}
		if rng.Float64() < p {
			errors++
			errState = true
		} else {
			errState = false
		}
	})
	if err != nil {
		return 0, 0, err
	}
	return errors, st.Instructions, nil
}

// CDF returns the empirical CDF of the sampled counts.
func (r *Result) CDF() func(float64) float64 {
	s := make([]float64, len(r.Counts))
	copy(s, r.Counts)
	sort.Float64s(s)
	n := float64(len(s))
	return func(x float64) float64 {
		i := sort.SearchFloat64s(s, x+0.5) // counts are integers
		return float64(i) / n
	}
}

// Mean returns the sample mean error count.
func (r *Result) Mean() float64 { return numeric.Mean(r.Counts) }

// Std returns the sample standard deviation.
func (r *Result) Std() float64 { return numeric.StdDev(r.Counts) }
