package montecarlo_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"tsperr/internal/errormodel"
	"tsperr/internal/isa"
	"tsperr/internal/montecarlo"
)

// TestShardedDeterminismAcrossWorkers pins the tentpole invariant: the
// sharded run is bit-reproducible regardless of completion order. Running the
// same spec with 1 worker (the serial chunk-ordered path) and with many
// workers must produce identical counts and identical merged statistics.
func TestShardedDeterminismAcrossWorkers(t *testing.T) {
	p, _, _, conds := fixture(t, 0.02, 0.05, 3)
	spec := montecarlo.Spec{Prog: p, Cond: conds, Trials: 700, Seed: 21}
	opts := montecarlo.ShardOpts{ChunkSize: 64}

	serial, err := montecarlo.RunSharded(context.Background(), spec, montecarlo.ShardOpts{ChunkSize: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		opts.Workers = workers
		par, err := montecarlo.RunSharded(context.Background(), spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		if par.Chunks != serial.Chunks {
			t.Fatalf("workers=%d: %d chunks vs %d serial", workers, par.Chunks, serial.Chunks)
		}
		for i := range par.Counts {
			//tsperrlint:ignore floatcmp determinism is asserted bit-identical, not approximate
			if par.Counts[i] != serial.Counts[i] {
				t.Fatalf("workers=%d: count[%d] = %v, serial %v", workers, i, par.Counts[i], serial.Counts[i])
			}
		}
		//tsperrlint:ignore floatcmp merged statistics are asserted bit-identical, not approximate
		if par.Stats != serial.Stats {
			t.Fatalf("workers=%d: stats %+v, serial %+v", workers, par.Stats, serial.Stats)
		}
		if par.Instructions != serial.Instructions {
			t.Fatalf("workers=%d: instructions %d vs %d", workers, par.Instructions, serial.Instructions)
		}
	}
}

// TestShardedStatsMatchCounts checks the streaming accumulator against the
// raw sample moments and that the sharded sampler agrees statistically with
// the monolithic serial Run (different RNG streams, same law).
func TestShardedStatsMatchCounts(t *testing.T) {
	p, _, _, conds := fixture(t, 0.02, 0.05, 2)
	spec := montecarlo.Spec{Prog: p, Cond: conds, Trials: 2000, Seed: 5}
	sharded, err := montecarlo.RunSharded(context.Background(), spec, montecarlo.ShardOpts{ChunkSize: 128, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Chunks != (2000+127)/128 {
		t.Fatalf("chunks = %d", sharded.Chunks)
	}
	if sharded.Stats.N != int64(spec.Trials) {
		t.Fatalf("stats N = %d, want %d", sharded.Stats.N, spec.Trials)
	}
	if d := math.Abs(sharded.Stats.Mean - sharded.Mean()); d > 1e-9 {
		t.Errorf("streaming mean %v vs sample mean %v", sharded.Stats.Mean, sharded.Mean())
	}
	if d := math.Abs(sharded.Stats.Std() - sharded.Std()); d > 1e-9 {
		t.Errorf("streaming std %v vs sample std %v", sharded.Stats.Std(), sharded.Std())
	}

	serial, err := montecarlo.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	se := serial.Std() / math.Sqrt(float64(spec.Trials))
	if d := math.Abs(sharded.Mean() - serial.Mean()); d > 6*se+0.05 {
		t.Errorf("sharded mean %v vs serial mean %v (se %v)", sharded.Mean(), serial.Mean(), se)
	}
}

func TestShardedValidation(t *testing.T) {
	p, _ := isa.Assemble("h", "halt\n")
	ctx := context.Background()
	if _, err := montecarlo.RunSharded(ctx, montecarlo.Spec{Prog: p, Trials: 0, Cond: []*errormodel.Conditionals{{}}}, montecarlo.ShardOpts{}); err == nil {
		t.Error("zero trials should fail")
	}
	if _, err := montecarlo.RunSharded(ctx, montecarlo.Spec{Prog: p, Trials: 1}, montecarlo.ShardOpts{}); err == nil {
		t.Error("no scenarios should fail")
	}
}

func TestShardedCancellation(t *testing.T) {
	p, _, _, conds := fixture(t, 0.02, 0.05, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := montecarlo.RunSharded(ctx, montecarlo.Spec{Prog: p, Cond: conds, Trials: 4000, Seed: 1}, montecarlo.ShardOpts{ChunkSize: 16, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestChunkSeedsDiffer(t *testing.T) {
	// Adjacent chunks must not receive adjacent SplitMix64 states: the derived
	// seeds go through the output mix, so consecutive chunk streams do not
	// overlap as shifted copies of one another.
	seen := map[uint64]int{}
	for c := 0; c < 1000; c++ {
		s := montecarlo.ChunkSeed(42, c)
		if prev, dup := seen[s]; dup {
			t.Fatalf("chunk %d and %d share seed %#x", prev, c, s)
		}
		seen[s] = c
	}
	if montecarlo.ChunkSeed(1, 0) == montecarlo.ChunkSeed(2, 0) {
		t.Error("different base seeds should derive different chunk seeds")
	}
	// A shifted-stream relationship would make seed(c+1) - seed(c) constant.
	d0 := montecarlo.ChunkSeed(9, 1) - montecarlo.ChunkSeed(9, 0)
	d1 := montecarlo.ChunkSeed(9, 2) - montecarlo.ChunkSeed(9, 1)
	if d0 == d1 {
		t.Error("chunk seeds look like an arithmetic progression; streams would overlap")
	}
}

// TestChunkAssembleMatchesSharded pins the cluster-layer invariant: running
// every chunk individually through RunChunk — in any order, even shipped
// through a JSON round trip as the worker wire format does — and assembling
// must be bit-identical to RunSharded.
func TestChunkAssembleMatchesSharded(t *testing.T) {
	p, _, _, conds := fixture(t, 0.02, 0.05, 3)
	spec := montecarlo.Spec{Prog: p, Cond: conds, Trials: 500, Seed: 99}
	const chunkSize = 64

	serial, err := montecarlo.RunSharded(context.Background(), spec, montecarlo.ShardOpts{ChunkSize: chunkSize, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := montecarlo.NumChunks(spec.Trials, chunkSize)
	if n != serial.Chunks {
		t.Fatalf("NumChunks = %d, RunSharded used %d", n, serial.Chunks)
	}
	chunks := make([]montecarlo.ChunkResult, 0, n)
	// Reverse order: assembly must not care who produced which chunk when.
	for c := n - 1; c >= 0; c-- {
		r, err := montecarlo.RunChunk(context.Background(), spec, chunkSize, c)
		if err != nil {
			t.Fatal(err)
		}
		// The cluster worker ships chunks as JSON; the round trip must be
		// bit-exact for the distributed result to stay bit-identical.
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var rt montecarlo.ChunkResult
		if err := json.Unmarshal(b, &rt); err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, rt)
	}
	got, err := montecarlo.Assemble(spec.Trials, chunkSize, chunks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Counts {
		//tsperrlint:ignore floatcmp determinism is asserted bit-identical, not approximate
		if got.Counts[i] != serial.Counts[i] {
			t.Fatalf("count[%d] = %v, serial %v", i, got.Counts[i], serial.Counts[i])
		}
	}
	//tsperrlint:ignore floatcmp merged statistics are asserted bit-identical, not approximate
	if got.Stats != serial.Stats {
		t.Fatalf("stats %+v, serial %+v", got.Stats, serial.Stats)
	}
	if got.Instructions != serial.Instructions || got.Chunks != serial.Chunks {
		t.Fatalf("instructions/chunks %d/%d vs serial %d/%d",
			got.Instructions, got.Chunks, serial.Instructions, serial.Chunks)
	}
}

func TestAssembleRejectsIncompleteSets(t *testing.T) {
	p, _, _, conds := fixture(t, 0.02, 0.05, 1)
	spec := montecarlo.Spec{Prog: p, Cond: conds, Trials: 100, Seed: 1}
	const chunkSize = 32
	n := montecarlo.NumChunks(spec.Trials, chunkSize)
	chunks := make([]montecarlo.ChunkResult, 0, n)
	for c := 0; c < n; c++ {
		r, err := montecarlo.RunChunk(context.Background(), spec, chunkSize, c)
		if err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, r)
	}
	if _, err := montecarlo.Assemble(spec.Trials, chunkSize, chunks[:n-1]); err == nil {
		t.Error("missing chunk must fail assembly")
	}
	dup := append(append([]montecarlo.ChunkResult{}, chunks[:n-1]...), chunks[0])
	if _, err := montecarlo.Assemble(spec.Trials, chunkSize, dup); err == nil {
		t.Error("duplicate chunk must fail assembly")
	}
	short := append([]montecarlo.ChunkResult{}, chunks...)
	short[1].Counts = short[1].Counts[:len(short[1].Counts)-1]
	if _, err := montecarlo.Assemble(spec.Trials, chunkSize, short); err == nil {
		t.Error("truncated chunk (a partial remote response) must fail assembly")
	}
	oob := append([]montecarlo.ChunkResult{}, chunks...)
	oob[0].Index = n + 3
	if _, err := montecarlo.Assemble(spec.Trials, chunkSize, oob); err == nil {
		t.Error("out-of-range chunk index must fail assembly")
	}
}

func TestRunChunkValidation(t *testing.T) {
	p, _, _, conds := fixture(t, 0.02, 0.05, 1)
	spec := montecarlo.Spec{Prog: p, Cond: conds, Trials: 100, Seed: 1}
	if _, err := montecarlo.RunChunk(context.Background(), spec, 32, -1); err == nil {
		t.Error("negative chunk index must fail")
	}
	if _, err := montecarlo.RunChunk(context.Background(), spec, 32, 4); err == nil {
		t.Error("chunk index past the budget must fail")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := montecarlo.RunChunk(ctx, spec, 32, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled chunk: err = %v, want Canceled", err)
	}
}

func TestInFlightChunksReturnsToZero(t *testing.T) {
	p, _, _, conds := fixture(t, 0.02, 0.05, 1)
	if _, err := montecarlo.RunSharded(context.Background(), montecarlo.Spec{Prog: p, Cond: conds, Trials: 300, Seed: 2},
		montecarlo.ShardOpts{ChunkSize: 32, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if n := montecarlo.InFlightChunks(); n != 0 {
		t.Fatalf("chunks still in flight after run: %d", n)
	}
}
