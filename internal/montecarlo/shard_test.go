package montecarlo_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"tsperr/internal/errormodel"
	"tsperr/internal/isa"
	"tsperr/internal/montecarlo"
)

// TestShardedDeterminismAcrossWorkers pins the tentpole invariant: the
// sharded run is bit-reproducible regardless of completion order. Running the
// same spec with 1 worker (the serial chunk-ordered path) and with many
// workers must produce identical counts and identical merged statistics.
func TestShardedDeterminismAcrossWorkers(t *testing.T) {
	p, _, _, conds := fixture(t, 0.02, 0.05, 3)
	spec := montecarlo.Spec{Prog: p, Cond: conds, Trials: 700, Seed: 21}
	opts := montecarlo.ShardOpts{ChunkSize: 64}

	serial, err := montecarlo.RunSharded(context.Background(), spec, montecarlo.ShardOpts{ChunkSize: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		opts.Workers = workers
		par, err := montecarlo.RunSharded(context.Background(), spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		if par.Chunks != serial.Chunks {
			t.Fatalf("workers=%d: %d chunks vs %d serial", workers, par.Chunks, serial.Chunks)
		}
		for i := range par.Counts {
			//tsperrlint:ignore floatcmp determinism is asserted bit-identical, not approximate
			if par.Counts[i] != serial.Counts[i] {
				t.Fatalf("workers=%d: count[%d] = %v, serial %v", workers, i, par.Counts[i], serial.Counts[i])
			}
		}
		//tsperrlint:ignore floatcmp merged statistics are asserted bit-identical, not approximate
		if par.Stats != serial.Stats {
			t.Fatalf("workers=%d: stats %+v, serial %+v", workers, par.Stats, serial.Stats)
		}
		if par.Instructions != serial.Instructions {
			t.Fatalf("workers=%d: instructions %d vs %d", workers, par.Instructions, serial.Instructions)
		}
	}
}

// TestShardedStatsMatchCounts checks the streaming accumulator against the
// raw sample moments and that the sharded sampler agrees statistically with
// the monolithic serial Run (different RNG streams, same law).
func TestShardedStatsMatchCounts(t *testing.T) {
	p, _, _, conds := fixture(t, 0.02, 0.05, 2)
	spec := montecarlo.Spec{Prog: p, Cond: conds, Trials: 2000, Seed: 5}
	sharded, err := montecarlo.RunSharded(context.Background(), spec, montecarlo.ShardOpts{ChunkSize: 128, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Chunks != (2000+127)/128 {
		t.Fatalf("chunks = %d", sharded.Chunks)
	}
	if sharded.Stats.N != int64(spec.Trials) {
		t.Fatalf("stats N = %d, want %d", sharded.Stats.N, spec.Trials)
	}
	if d := math.Abs(sharded.Stats.Mean - sharded.Mean()); d > 1e-9 {
		t.Errorf("streaming mean %v vs sample mean %v", sharded.Stats.Mean, sharded.Mean())
	}
	if d := math.Abs(sharded.Stats.Std() - sharded.Std()); d > 1e-9 {
		t.Errorf("streaming std %v vs sample std %v", sharded.Stats.Std(), sharded.Std())
	}

	serial, err := montecarlo.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	se := serial.Std() / math.Sqrt(float64(spec.Trials))
	if d := math.Abs(sharded.Mean() - serial.Mean()); d > 6*se+0.05 {
		t.Errorf("sharded mean %v vs serial mean %v (se %v)", sharded.Mean(), serial.Mean(), se)
	}
}

func TestShardedValidation(t *testing.T) {
	p, _ := isa.Assemble("h", "halt\n")
	ctx := context.Background()
	if _, err := montecarlo.RunSharded(ctx, montecarlo.Spec{Prog: p, Trials: 0, Cond: []*errormodel.Conditionals{{}}}, montecarlo.ShardOpts{}); err == nil {
		t.Error("zero trials should fail")
	}
	if _, err := montecarlo.RunSharded(ctx, montecarlo.Spec{Prog: p, Trials: 1}, montecarlo.ShardOpts{}); err == nil {
		t.Error("no scenarios should fail")
	}
}

func TestShardedCancellation(t *testing.T) {
	p, _, _, conds := fixture(t, 0.02, 0.05, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := montecarlo.RunSharded(ctx, montecarlo.Spec{Prog: p, Cond: conds, Trials: 4000, Seed: 1}, montecarlo.ShardOpts{ChunkSize: 16, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestChunkSeedsDiffer(t *testing.T) {
	// Adjacent chunks must not receive adjacent SplitMix64 states: the derived
	// seeds go through the output mix, so consecutive chunk streams do not
	// overlap as shifted copies of one another.
	seen := map[uint64]int{}
	for c := 0; c < 1000; c++ {
		s := montecarlo.ChunkSeed(42, c)
		if prev, dup := seen[s]; dup {
			t.Fatalf("chunk %d and %d share seed %#x", prev, c, s)
		}
		seen[s] = c
	}
	if montecarlo.ChunkSeed(1, 0) == montecarlo.ChunkSeed(2, 0) {
		t.Error("different base seeds should derive different chunk seeds")
	}
	// A shifted-stream relationship would make seed(c+1) - seed(c) constant.
	d0 := montecarlo.ChunkSeed(9, 1) - montecarlo.ChunkSeed(9, 0)
	d1 := montecarlo.ChunkSeed(9, 2) - montecarlo.ChunkSeed(9, 1)
	if d0 == d1 {
		t.Error("chunk seeds look like an arithmetic progression; streams would overlap")
	}
}

func TestInFlightChunksReturnsToZero(t *testing.T) {
	p, _, _, conds := fixture(t, 0.02, 0.05, 1)
	if _, err := montecarlo.RunSharded(context.Background(), montecarlo.Spec{Prog: p, Cond: conds, Trials: 300, Seed: 2},
		montecarlo.ShardOpts{ChunkSize: 32, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if n := montecarlo.InFlightChunks(); n != 0 {
		t.Fatalf("chunks still in flight after run: %d", n)
	}
}
