package montecarlo

import (
	"context"
	"fmt"
	"sync/atomic"

	"tsperr/internal/cpu"
	"tsperr/internal/numeric"
	"tsperr/internal/pool"
)

// DefaultChunkSize is the trial count per shard when ShardOpts.ChunkSize is
// zero. Small enough that a 1500-trial validation run spreads across several
// workers, large enough that per-chunk machine setup is amortized.
const DefaultChunkSize = 256

// inFlightChunks counts Monte Carlo chunks currently executing in this
// process — local shards and chunks run on behalf of cluster peers alike.
// tsperrd samples it for the tsperrd_mc_chunks_inflight gauge.
var inFlightChunks atomic.Int64

// InFlightChunks reports the number of Monte Carlo chunks executing right
// now, process-wide.
func InFlightChunks() int64 { return inFlightChunks.Load() }

// ShardOpts controls how RunSharded splits the trial budget.
type ShardOpts struct {
	// ChunkSize is the number of trials per shard (0 = DefaultChunkSize).
	ChunkSize int
	// Workers bounds concurrent chunks (<= 0 selects GOMAXPROCS).
	Workers int
}

// ShardedResult extends Result with the streaming statistics merged from the
// per-chunk accumulators.
type ShardedResult struct {
	*Result
	// Stats is the pairwise-merged Welford accumulator over all trials. It is
	// bit-identical across worker counts because chunks are merged in index
	// order, never completion order.
	Stats numeric.StreamStats
	// Chunks is the number of shards the trial budget was split into.
	Chunks int
}

// ChunkResult is one chunk's contribution to a sharded run: the per-trial
// error counts for the chunk's global trial range, plus the dynamic
// instruction count of its last trial. It contains only integers and
// integral-valued float64 samples, and Go's JSON encoding round-trips
// float64 exactly, so a ChunkResult computed by a cluster worker and shipped
// back over HTTP/JSON assembles into bits identical to a locally computed
// one.
type ChunkResult struct {
	// Index is the chunk's position in the fixed split of the trial budget.
	Index int `json:"index"`
	// Counts holds the sampled error counts for trials
	// [Index*chunkSize, Index*chunkSize+len(Counts)) in global trial order.
	Counts []float64 `json:"counts"`
	// Instructions is the dynamic instruction count of the chunk's last
	// trial.
	Instructions int64 `json:"instructions"`
}

// NumChunks returns how many chunks a trial budget splits into.
func NumChunks(trials, chunkSize int) int {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if trials <= 0 {
		return 0
	}
	return (trials + chunkSize - 1) / chunkSize
}

// chunkBounds returns the global trial range [lo, hi) of chunk c.
func chunkBounds(trials, chunkSize, c int) (lo, hi int) {
	lo = c * chunkSize
	hi = lo + chunkSize
	if hi > trials {
		hi = trials
	}
	return lo, hi
}

// validateSpec normalizes the spec's CPU configuration and rejects empty
// experiments, shared by every chunk-producing entry point.
func validateSpec(spec Spec) (cpu.Config, error) {
	if spec.Trials <= 0 {
		return cpu.Config{}, fmt.Errorf("montecarlo: non-positive trials")
	}
	if len(spec.Cond) == 0 {
		return cpu.Config{}, fmt.Errorf("montecarlo: no scenarios")
	}
	cfgCPU := spec.CPUConfig
	if cfgCPU.MemWords == 0 {
		cfgCPU = cpu.DefaultConfig()
	}
	return cfgCPU, nil
}

// RunChunk executes exactly one chunk of the sharded experiment: trials
// [c*chunkSize, min((c+1)*chunkSize, Trials)) with the chunk's own derived
// RNG stream. The result depends only on (spec, chunkSize, c) — never on
// where or when the chunk runs — which is the invariant that lets the
// cluster layer re-dispatch, hedge, and steal chunks freely without
// perturbing the assembled statistics.
func RunChunk(ctx context.Context, spec Spec, chunkSize, c int) (ChunkResult, error) {
	cfgCPU, err := validateSpec(spec)
	if err != nil {
		return ChunkResult{}, err
	}
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if n := NumChunks(spec.Trials, chunkSize); c < 0 || c >= n {
		return ChunkResult{}, fmt.Errorf("montecarlo: chunk %d out of range [0, %d)", c, n)
	}
	inFlightChunks.Add(1)
	defer inFlightChunks.Add(-1)
	lo, hi := chunkBounds(spec.Trials, chunkSize, c)
	res := ChunkResult{Index: c, Counts: make([]float64, 0, hi-lo)}
	rng := numeric.NewRNG(chunkSeed(spec.Seed, c))
	for t := lo; t < hi; t++ {
		if err := ctx.Err(); err != nil {
			return ChunkResult{}, err
		}
		errors, n, err := runTrial(spec, cfgCPU, t, rng)
		if err != nil {
			return ChunkResult{}, err
		}
		res.Counts = append(res.Counts, errors)
		res.Instructions = n
	}
	return res, nil
}

// Assemble merges a complete set of chunk results into the sharded result.
// Every chunk of the budget must be present exactly once (order does not
// matter — chunks land at their global indices, and the per-chunk statistics
// are folded in index order through the fixed pairwise tree), so the output
// is bit-identical no matter which mix of local and remote executors
// produced the chunks.
func Assemble(trials, chunkSize int, chunks []ChunkResult) (*ShardedResult, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	n := NumChunks(trials, chunkSize)
	if n == 0 {
		return nil, fmt.Errorf("montecarlo: non-positive trials")
	}
	if len(chunks) != n {
		return nil, fmt.Errorf("montecarlo: assemble got %d chunks, want %d", len(chunks), n)
	}
	res := &Result{Counts: make([]float64, trials)}
	stats := make([]numeric.StreamStats, n)
	seen := make([]bool, n)
	var last ChunkResult
	for _, ch := range chunks {
		if ch.Index < 0 || ch.Index >= n {
			return nil, fmt.Errorf("montecarlo: assemble chunk %d out of range [0, %d)", ch.Index, n)
		}
		if seen[ch.Index] {
			return nil, fmt.Errorf("montecarlo: assemble got chunk %d twice", ch.Index)
		}
		seen[ch.Index] = true
		lo, hi := chunkBounds(trials, chunkSize, ch.Index)
		if len(ch.Counts) != hi-lo {
			return nil, fmt.Errorf("montecarlo: chunk %d carries %d counts, want %d", ch.Index, len(ch.Counts), hi-lo)
		}
		for i, v := range ch.Counts {
			res.Counts[lo+i] = v
			stats[ch.Index].Add(v)
		}
		if ch.Index == n-1 {
			last = ch
		}
	}
	res.Instructions = last.Instructions
	return &ShardedResult{
		Result: res,
		Stats:  numeric.MergeStats(stats),
		Chunks: n,
	}, nil
}

// RunSharded executes the experiment with the trial budget split into
// fixed-size chunks distributed over a bounded worker pool. Each chunk owns
// an independent RNG whose seed is derived from (Seed, chunk index) through
// the SplitMix64 output function, so chunk streams are decorrelated and the
// sampled counts depend only on the spec — not on worker count or completion
// order. Counts land at their global trial index and per-chunk statistics are
// merged with a fixed pairwise tree, making the whole result bit-reproducible:
// RunSharded with N workers equals RunSharded with 1 worker exactly, and
// equals any mix of local and cluster-remote chunk execution assembled
// through Assemble.
func RunSharded(ctx context.Context, spec Spec, opts ShardOpts) (*ShardedResult, error) {
	if _, err := validateSpec(spec); err != nil {
		return nil, err
	}
	chunkSize := opts.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	chunks := NumChunks(spec.Trials, chunkSize)
	results := make([]ChunkResult, chunks)
	errs := make([]error, chunks)
	pool.Run(ctx, chunks, opts.Workers, true, errs, func(ctx context.Context, c int) error {
		r, err := RunChunk(ctx, spec, chunkSize, c)
		if err != nil {
			return err
		}
		results[c] = r
		return nil
	})
	if err := pool.FirstError(errs); err != nil {
		return nil, err
	}
	return Assemble(spec.Trials, chunkSize, results)
}

// chunkSeed derives the RNG seed for one chunk by pushing (seed, chunk)
// through the SplitMix64 output function. Seeding chunk c with seed+c
// directly would hand every chunk the chunk-0 stream shifted by c draws
// (SplitMix64 state advances by a fixed increment per draw); hashing through
// the output mix scatters the per-chunk states across the full 64-bit space
// instead.
func chunkSeed(seed uint64, chunk int) uint64 {
	return numeric.NewRNG(seed ^ (uint64(chunk)+1)*0x9E3779B97F4A7C15).Uint64()
}
