package montecarlo

import (
	"context"
	"fmt"
	"sync/atomic"

	"tsperr/internal/cpu"
	"tsperr/internal/numeric"
	"tsperr/internal/pool"
)

// DefaultChunkSize is the trial count per shard when ShardOpts.ChunkSize is
// zero. Small enough that a 1500-trial validation run spreads across several
// workers, large enough that per-chunk machine setup is amortized.
const DefaultChunkSize = 256

// inFlightChunks counts Monte Carlo chunks currently executing across all
// sharded runs in the process. tsperrd samples it for the
// tsperrd_mc_chunks_inflight gauge.
var inFlightChunks atomic.Int64

// InFlightChunks reports the number of Monte Carlo chunks executing right
// now, process-wide.
func InFlightChunks() int64 { return inFlightChunks.Load() }

// ShardOpts controls how RunSharded splits the trial budget.
type ShardOpts struct {
	// ChunkSize is the number of trials per shard (0 = DefaultChunkSize).
	ChunkSize int
	// Workers bounds concurrent chunks (<= 0 selects GOMAXPROCS).
	Workers int
}

// ShardedResult extends Result with the streaming statistics merged from the
// per-chunk accumulators.
type ShardedResult struct {
	*Result
	// Stats is the pairwise-merged Welford accumulator over all trials. It is
	// bit-identical across worker counts because chunks are merged in index
	// order, never completion order.
	Stats numeric.StreamStats
	// Chunks is the number of shards the trial budget was split into.
	Chunks int
}

// RunSharded executes the experiment with the trial budget split into
// fixed-size chunks distributed over a bounded worker pool. Each chunk owns
// an independent RNG whose seed is derived from (Seed, chunk index) through
// the SplitMix64 output function, so chunk streams are decorrelated and the
// sampled counts depend only on the spec — not on worker count or completion
// order. Counts land at their global trial index and per-chunk statistics are
// merged with a fixed pairwise tree, making the whole result bit-reproducible:
// RunSharded with N workers equals RunSharded with 1 worker exactly.
func RunSharded(ctx context.Context, spec Spec, opts ShardOpts) (*ShardedResult, error) {
	if spec.Trials <= 0 {
		return nil, fmt.Errorf("montecarlo: non-positive trials")
	}
	if len(spec.Cond) == 0 {
		return nil, fmt.Errorf("montecarlo: no scenarios")
	}
	cfgCPU := spec.CPUConfig
	if cfgCPU.MemWords == 0 {
		cfgCPU = cpu.DefaultConfig()
	}
	chunkSize := opts.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	chunks := (spec.Trials + chunkSize - 1) / chunkSize

	res := &Result{Counts: make([]float64, spec.Trials)}
	stats := make([]numeric.StreamStats, chunks)
	insts := make([]int64, chunks)
	errs := make([]error, chunks)
	pool.Run(ctx, chunks, opts.Workers, true, errs, func(ctx context.Context, c int) error {
		inFlightChunks.Add(1)
		defer inFlightChunks.Add(-1)
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > spec.Trials {
			hi = spec.Trials
		}
		rng := numeric.NewRNG(chunkSeed(spec.Seed, c))
		for t := lo; t < hi; t++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			errors, n, err := runTrial(spec, cfgCPU, t, rng)
			if err != nil {
				return err
			}
			res.Counts[t] = errors
			stats[c].Add(errors)
			insts[c] = n
		}
		return nil
	})
	if err := pool.FirstError(errs); err != nil {
		return nil, err
	}
	res.Instructions = insts[chunks-1]
	return &ShardedResult{
		Result: res,
		Stats:  numeric.MergeStats(stats),
		Chunks: chunks,
	}, nil
}

// chunkSeed derives the RNG seed for one chunk by pushing (seed, chunk)
// through the SplitMix64 output function. Seeding chunk c with seed+c
// directly would hand every chunk the chunk-0 stream shifted by c draws
// (SplitMix64 state advances by a fixed increment per draw); hashing through
// the output mix scatters the per-chunk states across the full 64-bit space
// instead.
func chunkSeed(seed uint64, chunk int) uint64 {
	return numeric.NewRNG(seed ^ (uint64(chunk)+1)*0x9E3779B97F4A7C15).Uint64()
}
