// The tests live outside the package: they exercise the sampler against the
// analytic estimate from internal/core, which itself imports montecarlo for
// report validation — an in-package test would be an import cycle.
package montecarlo_test

import (
	"context"
	"math"
	"testing"

	"tsperr/internal/cfg"
	"tsperr/internal/core"
	"tsperr/internal/cpu"
	"tsperr/internal/errormodel"
	"tsperr/internal/isa"
	"tsperr/internal/montecarlo"
)

const loopSrc = `
	li r1, 40
	li r2, 0
loop:
	add  r2, r2, r1
	addi r1, r1, -1
	bne  r1, r0, loop
	halt
`

// fixture builds the program, a profile, and synthetic conditionals.
func fixture(t *testing.T, pcVal, peVal float64, scenarios int) (*isa.Program, *cfg.Graph, []core.Scenario, []*errormodel.Conditionals) {
	t.Helper()
	p, err := isa.Assemble("mcloop", loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	var scs []core.Scenario
	var conds []*errormodel.Conditionals
	for s := 0; s < scenarios; s++ {
		pr := cfg.NewProfile(g)
		c, _ := cpu.New(p, cpu.DefaultConfig())
		obs := pr.Observer()
		if _, err := c.Run(obs); err != nil {
			t.Fatal(err)
		}
		n := len(p.Insts)
		cond := &errormodel.Conditionals{PC: make([]float64, n), PE: make([]float64, n)}
		// Scenario-dependent probabilities emulate data variation.
		f := 1 + 0.2*float64(s)
		for i := range cond.PC {
			cond.PC[i] = pcVal * f
			cond.PE[i] = peVal * f
		}
		conds = append(conds, cond)
		scc := cfg.ComputeSCC(g, pr)
		marg, err := errormodel.ComputeMarginals(g, pr, scc, cond)
		if err != nil {
			t.Fatal(err)
		}
		scs = append(scs, core.Scenario{Profile: pr, Marginals: marg, Cond: cond})
	}
	return p, g, scs, conds
}

func TestMonteCarloMatchesMarginalMean(t *testing.T) {
	p, g, scs, conds := fixture(t, 0.02, 0.05, 1)
	est, err := core.NewEstimate(context.Background(), g, scs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := montecarlo.Run(montecarlo.Spec{Prog: p, Cond: conds, Trials: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The analytic lambda must match the simulated mean error count within
	// Monte Carlo noise (a few standard errors).
	se := res.Std() / math.Sqrt(float64(len(res.Counts)))
	if diff := math.Abs(res.Mean() - est.LambdaMean); diff > 5*se+0.05 {
		t.Errorf("MC mean %v vs analytic lambda %v (diff %v, se %v)",
			res.Mean(), est.LambdaMean, diff, se)
	}
}

func TestPoissonApproximationWithinBound(t *testing.T) {
	p, g, scs, conds := fixture(t, 0.01, 0.03, 1)
	est, err := core.NewEstimate(context.Background(), g, scs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := montecarlo.Run(montecarlo.Spec{Prog: p, Cond: conds, Trials: 6000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ecdf := res.CDF()
	// Kolmogorov distance between the empirical law and the Poisson-mixture
	// estimate must respect the Chen-Stein bound (plus sampling slack).
	worst := 0.0
	for k := 0.0; k < est.LambdaMean*4+10; k++ {
		d := math.Abs(ecdf(k) - est.ErrorCountCDF(k))
		if d > worst {
			worst = d
		}
	}
	slack := 2.5 / math.Sqrt(float64(len(res.Counts))) // DKW-style noise term
	if worst > est.DKCount+est.DKLambda+slack {
		t.Errorf("empirical distance %v exceeds bound %v (+%v slack)",
			worst, est.DKCount+est.DKLambda, slack)
	}
}

func TestDependenceRaisesVariance(t *testing.T) {
	// With p^e >> p^c, errors cluster: the count's variance exceeds the
	// Poisson variance (= mean). This is exactly the effect the Chen-Stein
	// b2 term charges for.
	p, _, _, condsDep := fixture(t, 0.01, 0.5, 1)
	_, _, _, condsInd := fixture(t, 0.01, 0.01, 1)
	dep, err := montecarlo.Run(montecarlo.Spec{Prog: p, Cond: condsDep, Trials: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ind, err := montecarlo.Run(montecarlo.Spec{Prog: p, Cond: condsInd, Trials: 4000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	vmrDep := dep.Std() * dep.Std() / dep.Mean()
	vmrInd := ind.Std() * ind.Std() / ind.Mean()
	if vmrDep <= vmrInd {
		t.Errorf("clustered errors should be over-dispersed: VMR %v vs %v", vmrDep, vmrInd)
	}
	if math.Abs(vmrInd-1) > 0.25 {
		t.Errorf("independent-ish errors should be nearly Poisson, VMR = %v", vmrInd)
	}
}

func TestDataVariationWidensSpread(t *testing.T) {
	p, g, scsMulti, condsMulti := fixture(t, 0.02, 0.04, 4)
	_, _, scsOne, condsOne := fixture(t, 0.02, 0.04, 1)
	estMulti, _ := core.NewEstimate(context.Background(), g, scsMulti)
	estOne, _ := core.NewEstimate(context.Background(), g, scsOne)
	if estMulti.LambdaStd <= estOne.LambdaStd {
		t.Errorf("data variation should widen lambda: %v vs %v",
			estMulti.LambdaStd, estOne.LambdaStd)
	}
	mMulti, err := montecarlo.Run(montecarlo.Spec{Prog: p, Cond: condsMulti, Trials: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	mOne, err := montecarlo.Run(montecarlo.Spec{Prog: p, Cond: condsOne, Trials: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if mMulti.Std() <= mOne.Std() {
		t.Errorf("simulated spread should widen with data variation: %v vs %v",
			mMulti.Std(), mOne.Std())
	}
}

func TestRunValidation(t *testing.T) {
	p, _ := isa.Assemble("h", "halt\n")
	if _, err := montecarlo.Run(montecarlo.Spec{Prog: p, Trials: 0, Cond: []*errormodel.Conditionals{{}}}); err == nil {
		t.Error("zero trials should fail")
	}
	if _, err := montecarlo.Run(montecarlo.Spec{Prog: p, Trials: 1}); err == nil {
		t.Error("no scenarios should fail")
	}
}

func TestEmpiricalCDFBehaviour(t *testing.T) {
	r := &montecarlo.Result{Counts: []float64{0, 1, 1, 3}}
	cdf := r.CDF()
	if cdf(-1) != 0 || cdf(0) != 0.25 || cdf(1) != 0.75 || cdf(2) != 0.75 || cdf(3) != 1 {
		t.Errorf("empirical CDF wrong: %v %v %v %v %v",
			cdf(-1), cdf(0), cdf(1), cdf(2), cdf(3))
	}
}
