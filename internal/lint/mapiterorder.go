package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIterOrder flags `for range` loops over maps whose bodies perform
// order-sensitive work: accumulating floating-point values, appending to a
// slice that outlives the loop, or dispatching goroutine/channel work.
// Go randomizes map iteration order, so any of these makes the result (or
// the work schedule) differ between runs — the exact nondeterminism class
// that would break the characterization pipeline's bit-identical
// serial-vs-parallel guarantee (determinism_test.go). Integer counters and
// map-to-map writes are commutative and are deliberately not flagged, and
// an append whose slice is later passed to a sort.*/slices.* call in the
// same function is recognized as the approved collect-sort-range fix
// pattern.
var MapIterOrder = &Analyzer{
	Name: "mapiterorder",
	Doc:  "flag order-sensitive work inside map-range loops (float accumulation, appends, worker dispatch)",
	Run:  runMapIterOrder,
}

func runMapIterOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRangeBody(pass, fn, rs)
				return true
			})
		}
	}
	return nil
}

// checkMapRangeBody reports order-sensitive statements in the body of a
// map-range loop. Nested map-range loops are visited by the outer Inspect
// on their own, so findings inside them are reported there too — that is
// intentional (both loops need the sorted-keys fix).
func checkMapRangeBody(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt) {
	lo, hi := rs.Pos(), rs.End()
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range s.Lhs {
					if isFloat(pass.TypesInfo.TypeOf(lhs)) && !declaredWithin(pass.TypesInfo, lhs, lo, hi) {
						pass.Reportf(s.Pos(),
							"floating-point accumulation inside map-range loop is iteration-order dependent; sort the keys first")
					}
				}
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range s.Rhs {
					if i >= len(s.Lhs) {
						break
					}
					if !isAppendCall(rhs) || declaredWithin(pass.TypesInfo, s.Lhs[i], lo, hi) {
						continue
					}
					if sortedAfter(pass, fn, rs, s.Lhs[i]) {
						continue // collect-sort-range fix pattern
					}
					pass.Reportf(s.Pos(),
						"append to a slice that outlives a map-range loop records iteration order; sort it (or the keys) first")
				}
			}
		case *ast.GoStmt:
			pass.Reportf(s.Pos(),
				"goroutine launched from a map-range loop dispatches work in iteration order; sort the keys first")
		case *ast.SendStmt:
			pass.Reportf(s.Pos(),
				"channel send inside a map-range loop feeds workers in iteration order; sort the keys first")
		case *ast.CallExpr:
			// Accumulator method calls (numeric.KahanSum.Add and friends):
			// compensated summation is order-sensitive even though plain
			// integer addition would not be.
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" && len(s.Args) == 1 {
				if isFloat(pass.TypesInfo.TypeOf(s.Args[0])) && !declaredWithin(pass.TypesInfo, sel.X, lo, hi) {
					pass.Reportf(s.Pos(),
						"float accumulator .Add inside map-range loop is iteration-order dependent; sort the keys first")
				}
			}
		}
		return true
	})
}

func isAppendCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// sortedAfter reports whether the slice assigned by the append is passed
// to a sort.* or slices.* call after the range loop in the same function —
// the second half of the collect-sort-range pattern, which erases the
// recorded iteration order. The sorted value may be the collector itself
// or a one-hop alias taken after the loop (the bucket idiom:
// `s := buckets[b]; sort.Slice(s, ...)` sorts the bucket through s, since
// the alias shares the backing array). An alias taken before the loop does
// not count — appends inside the loop can reallocate away from it, leaving
// the collected slice unsorted.
func sortedAfter(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, lhs ast.Expr) bool {
	root := rootIdent(lhs)
	if root == nil {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(root)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			id := rootIdent(arg)
			if id == nil {
				continue
			}
			if pass.TypesInfo.ObjectOf(id) == obj || aliasOfAfter(pass, fn, id, obj, rs.End()) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

// aliasOfAfter reports whether every definition reaching this use of id was
// taken from obj after pos — a post-loop alias of the collected slice, per
// the function's def-use chains.
func aliasOfAfter(pass *Pass, fn *ast.FuncDecl, id *ast.Ident, obj types.Object, pos token.Pos) bool {
	defs := pass.FlowOf(fn).ReachingDefs(id)
	if len(defs) == 0 {
		return false
	}
	for _, d := range defs {
		if d.RHS == nil || d.Id == nil || d.Id.Pos() < pos {
			return false
		}
		r := rootIdent(d.RHS)
		if r == nil || pass.TypesInfo.ObjectOf(r) != obj {
			return false
		}
	}
	return true
}
