// Package linttest is a minimal analysistest equivalent for the
// internal/lint analyzers: it type-checks a fixture directory, runs one
// analyzer, and diffs its diagnostics against `// want` expectations in
// the fixture source.
//
// Expectation syntax, at the end of the offending line:
//
//	x += v // want `iteration-order dependent`
//
// The backquoted (or double-quoted) string is a regexp matched against
// the diagnostic message; each line may carry one expectation, and every
// diagnostic must be expected and vice versa. Fixtures may import only the
// standard library.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"tsperr/internal/lint"
)

var wantRe = regexp.MustCompile("// want (`([^`]*)`|\"([^\"]*)\")")

// Run type-checks the fixture directory and checks analyzer a against the
// `// want` expectations. pkgPath is the import path the fixture package
// is checked as — scope-sensitive analyzers (ctxflow) switch on it.
func Run(t *testing.T, a *lint.Analyzer, dir, pkgPath string) {
	t.Helper()
	pkg, err := loadFixture(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key]*regexp.Regexp{}
	matched := map[key]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[2]
				if pat == "" {
					pat = m[3]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", pat, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[key{pos.Filename, pos.Line}] = re
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		re, ok := wants[k]
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
			continue
		}
		if !re.MatchString(d.Message) {
			t.Errorf("diagnostic at %s does not match %q: %s", d.Pos, re, d.Message)
			continue
		}
		matched[k] = true
	}
	var missing []string
	for k := range wants {
		if !matched[k] {
			missing = append(missing, fmt.Sprintf("%s:%d", k.file, k.line))
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("expected diagnostic at %s, got none", m)
	}
}

// MustRun loads the fixture and runs the analyzer, returning the package
// and raw diagnostics without diffing them against the want comments. Tests
// use it to assert scope behavior (e.g. an analyzer staying silent on an
// out-of-scope package whose source still carries wants).
func MustRun(t *testing.T, a *lint.Analyzer, dir, pkgPath string) (*lint.Package, []lint.Diagnostic) {
	t.Helper()
	pkg, err := loadFixture(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	return pkg, diags
}

// loadFixture parses and type-checks every .go file of dir as one package
// with import path pkgPath.
func loadFixture(dir, pkgPath string) (*lint.Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &lint.Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
