package lint

// White-box tests for the dataflow engine: CFG shape, reaching
// definitions, def-use chains, dominators, and the taint lattice. Each test
// type-checks a small source snippet and asserts over the FuncFlow built
// for a named function.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFlow type-checks src (a full file without the package clause) and
// returns the FuncFlow of the named function plus the support objects.
func parseFlow(t *testing.T, src, fnName string) (*FuncFlow, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flow.go", "package flowtest\n"+src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("flowtest", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == fnName {
			return BuildFlow(info, fn), info, fset
		}
	}
	t.Fatalf("function %s not found", fnName)
	return nil, nil, nil
}

// findIdent returns the n-th identifier (1-based) with the given name whose
// use is recorded in the flow.
func findUse(t *testing.T, f *FuncFlow, name string, nth int) *ast.Ident {
	t.Helper()
	count := 0
	var hit *ast.Ident
	ast.Inspect(f.Fn.Body, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if _, recorded := f.uses[id]; recorded {
				count++
				if count == nth {
					hit = id
				}
			}
		}
		return true
	})
	if hit == nil {
		t.Fatalf("use %d of %q not found (saw %d)", nth, name, count)
	}
	return hit
}

func TestReachingDefsStraightLine(t *testing.T) {
	f, _, _ := parseFlow(t, `
func f() int {
	x := 1
	x = 2
	return x
}`, "f")
	use := findUse(t, f, "x", 1) // the x in `return x`
	defs := f.ReachingDefs(use)
	if len(defs) != 1 {
		t.Fatalf("got %d reaching defs, want 1 (the x = 2 rebinding kills x := 1)", len(defs))
	}
	if lit, ok := defs[0].RHS.(*ast.BasicLit); !ok || lit.Value != "2" {
		t.Fatalf("reaching def RHS = %v, want the literal 2", defs[0].RHS)
	}
}

func TestReachingDefsBranchMerge(t *testing.T) {
	f, _, _ := parseFlow(t, `
func g(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`, "g")
	use := findUse(t, f, "x", 1)
	defs := f.ReachingDefs(use)
	if len(defs) != 2 {
		t.Fatalf("got %d reaching defs at the merge, want both branches (2)", len(defs))
	}
}

func TestReachingDefsLoopBackEdge(t *testing.T) {
	f, _, _ := parseFlow(t, `
func h(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s = s + i
	}
	return s
}`, "h")
	// The s inside `s + i` must see both the initial def and the loop def
	// (via the back edge).
	var use *ast.Ident
	ast.Inspect(f.Fn.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if id, ok := be.X.(*ast.Ident); ok && id.Name == "s" {
			use = id
		}
		return true
	})
	if use == nil {
		t.Fatal("no s + i expression found")
	}
	defs := f.ReachingDefs(use)
	if len(defs) != 2 {
		t.Fatalf("got %d defs reaching the loop body use, want 2 (init + back edge)", len(defs))
	}
}

func TestDominates(t *testing.T) {
	f, _, _ := parseFlow(t, `
func d(c bool) (int, error) {
	x := 0
	if c {
		x = 1
		return x, nil
	}
	x = 2
	return x, nil
}`, "d")
	var assigns []*ast.AssignStmt
	var returns []*ast.ReturnStmt
	ast.Inspect(f.Fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			assigns = append(assigns, n)
		case *ast.ReturnStmt:
			returns = append(returns, n)
		}
		return true
	})
	if len(assigns) != 3 || len(returns) != 2 {
		t.Fatalf("fixture shape: %d assigns, %d returns", len(assigns), len(returns))
	}
	x0, x1, x2 := assigns[0], assigns[1], assigns[2]
	retThen, retTail := returns[0], returns[1]
	if !f.Dominates(x0, retThen) || !f.Dominates(x0, retTail) {
		t.Error("x := 0 must dominate both returns")
	}
	if !f.Dominates(x1, retThen) {
		t.Error("x = 1 must dominate the then-branch return")
	}
	if f.Dominates(x1, retTail) {
		t.Error("x = 1 must not dominate the tail return")
	}
	if f.Dominates(x2, retThen) {
		t.Error("x = 2 must not dominate the then-branch return")
	}
	if !f.Dominates(retThen, retThen) {
		t.Error("a node dominates itself")
	}
}

func TestDominatesConditionGuard(t *testing.T) {
	// The condition of an if dominates everything after the join — the
	// shape batchonce relies on for `if n > 0 { flush() }` guards.
	f, _, _ := parseFlow(t, `
func c(n int, flush func()) error {
	if n > 0 {
		flush()
	}
	if n > 10 {
		return nil
	}
	return nil
}`, "c")
	var cond ast.Expr
	var rets []*ast.ReturnStmt
	ast.Inspect(f.Fn.Body, func(m ast.Node) bool {
		if ifs, ok := m.(*ast.IfStmt); ok && cond == nil {
			cond = ifs.Cond
		}
		if r, ok := m.(*ast.ReturnStmt); ok {
			rets = append(rets, r)
		}
		return true
	})
	for i, r := range rets {
		if !f.Dominates(cond, r) {
			t.Errorf("guard condition must dominate return %d", i)
		}
	}
}

func TestDeferredRecorded(t *testing.T) {
	f, _, _ := parseFlow(t, `
func d(flush func()) {
	defer flush()
}`, "d")
	if len(f.Deferred) != 1 {
		t.Fatalf("got %d deferred calls, want 1", len(f.Deferred))
	}
}

func TestCFGHandlesControlShapes(t *testing.T) {
	// Smoke: switch/select/labels/goto/range build without panicking and
	// keep every return wired to the exit block.
	f, _, _ := parseFlow(t, `
func m(xs []int, ch chan int) int {
outer:
	for i, x := range xs {
		switch {
		case x > 0:
			continue outer
		case x < 0:
			break outer
		default:
			goto done
		}
		select {
		case v := <-ch:
			_ = v
		default:
		}
		_ = i
	}
done:
	return 0
}`, "m")
	if len(f.Exit.Preds) == 0 {
		t.Fatal("exit block has no predecessors")
	}
}

func TestTaintPropagationAndCopyBreak(t *testing.T) {
	f, info, _ := parseFlow(t, `
func t(get func() []int) ([]int, []int, []int) {
	s := get()
	alias := s[1:]
	fresh := append([]int(nil), s...)
	grown := append(s, 9)
	return alias, fresh, grown
}`, "t")
	seed := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "get"
	}
	taint := NewTaint(f, seed)
	_ = info
	want := map[string]bool{"s": true, "alias": true, "fresh": false, "grown": true}
	for name, wantTainted := range want {
		found := false
		for i, d := range f.Defs {
			if d.Id != nil && d.Id.Name == name {
				found = true
				if taint.tainted.get(i) != wantTainted {
					t.Errorf("%s: tainted = %v, want %v", name, taint.tainted.get(i), wantTainted)
				}
			}
		}
		if !found {
			t.Errorf("no def found for %s", name)
		}
	}
}

func TestTaintFlowSensitiveRebind(t *testing.T) {
	f, _, _ := parseFlow(t, `
func r(get func() []int) []int {
	s := get()
	_ = s
	s = make([]int, 4)
	return s
}`, "r")
	seed := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "get"
	}
	taint := NewTaint(f, seed)
	// The returned s sees only the make() rebinding: not derived.
	var retUse *ast.Ident
	ast.Inspect(f.Fn.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			retUse = r.Results[0].(*ast.Ident)
		}
		return true
	})
	if taint.UseDerives(retUse) {
		t.Error("return after rebinding to make() must not derive (flow-sensitive taint)")
	}
}

func TestTaintStructCarrier(t *testing.T) {
	f, _, _ := parseFlow(t, `
type scratch struct{ buf []int }

func c(get func() *scratch) []int {
	sc := get()
	b := sc.buf
	return b
}`, "c")
	seed := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "get"
	}
	taint := NewTaint(f, seed)
	var retUse *ast.Ident
	ast.Inspect(f.Fn.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			retUse = r.Results[0].(*ast.Ident)
		}
		return true
	})
	if !taint.UseDerives(retUse) {
		t.Error("field of a derived scratch struct must derive")
	}
}

func TestFlowOfMemoizes(t *testing.T) {
	f, info, fset := parseFlow(t, `
func a() { _ = 1 }`, "a")
	pass := &Pass{Fset: fset, TypesInfo: info}
	got1 := pass.FlowOf(f.Fn)
	got2 := pass.FlowOf(f.Fn)
	if got1 != got2 {
		t.Error("FlowOf must memoize per declaration")
	}
}
