package lint

import (
	"go/ast"
	"go/types"
)

// BatchOnce enforces the exactly-once delivery contract of the batched
// retirement stream (cpu.BatchObserver): "every retired instruction is
// delivered exactly once, including ahead of an error return". An error
// path that leaves the loop without flushing the partial batch silently
// truncates the stream the profile and feature accumulators see — the
// serial/parallel bit-identity checks then fail only on errored runs,
// the hardest place to notice.
//
// In any function that invokes a BatchObserver-typed value, every error
// exit (a return whose error result is not the literal nil) must be
// dominated — on the function's CFG — by a flush point:
//
//   - a direct call of the observer value, or
//   - the condition of the innermost if statement guarding such a call
//     (the `if n > 0 { batch(buf[:n]) }` idiom: once the guard has run,
//     the pending batch has either been flushed or was empty), or
//   - a deferred call of the observer, which runs on every exit.
//
// Using the innermost guard is load-bearing: crediting an outer if's
// condition would vacuously bless error returns inside that same outer
// branch that never reach the flush.
var BatchOnce = &Analyzer{
	Name: "batchonce",
	Doc:  "require every error exit in a batch-observer loop to be dominated by a flush of the pending batch",
	Run:  runBatchOnce,
}

func runBatchOnce(pass *Pass) error {
	for _, fn := range packageFuncs(pass) {
		checkBatchOnce(pass, fn)
	}
	return nil
}

// isBatchObserverCall reports whether call invokes a value whose type is a
// named function type called BatchObserver (any package).
func isBatchObserverCall(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call.Fun)
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "BatchObserver" {
		return false
	}
	_, isSig := named.Underlying().(*types.Signature)
	return isSig
}

// errorExits collects the returns in fn (outside closures) whose error
// result is not the literal nil. A bare return with named results is
// treated as a success exit; returns forwarding a call's results are
// treated as potential error exits.
func errorExits(pass *Pass, fn *ast.FuncDecl) []*ast.ReturnStmt {
	results := fn.Type.Results
	if results == nil || len(results.List) == 0 {
		return nil
	}
	last := pass.TypesInfo.TypeOf(results.List[len(results.List)-1].Type)
	errType := types.Universe.Lookup("error").Type()
	if last == nil || !types.Identical(last, errType) {
		return nil
	}
	var exits []*ast.ReturnStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		r, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(r.Results) == 0 {
			return true // bare return: named results, success path by idiom
		}
		e := ast.Unparen(r.Results[len(r.Results)-1])
		if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
			return true
		}
		exits = append(exits, r)
		return true
	})
	return exits
}

func checkBatchOnce(pass *Pass, fn *ast.FuncDecl) {
	// Flush points: direct observer calls plus the innermost if-conditions
	// guarding them. Collected with an explicit if-stack so "innermost" is
	// exact; closures are opaque (a flush inside one may never run).
	var flushNodes []ast.Node
	deferredFlush := false
	var ifStack []*ast.IfStmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt:
			ifStack = append(ifStack, n)
			if n.Init != nil {
				ast.Inspect(n.Init, walk)
			}
			ast.Inspect(n.Cond, walk)
			ast.Inspect(n.Body, walk)
			if n.Else != nil {
				ast.Inspect(n.Else, walk)
			}
			ifStack = ifStack[:len(ifStack)-1]
			return false
		case *ast.CallExpr:
			if isBatchObserverCall(pass.TypesInfo, n) {
				flushNodes = append(flushNodes, n)
				if len(ifStack) > 0 {
					flushNodes = append(flushNodes, ifStack[len(ifStack)-1].Cond)
				}
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
	if len(flushNodes) == 0 {
		return // not a batch-observer loop
	}

	flow := pass.FlowOf(fn)
	for _, d := range flow.Deferred {
		if isBatchObserverCall(pass.TypesInfo, d) {
			deferredFlush = true
		}
	}
	if deferredFlush {
		return // a deferred flush covers every exit
	}

	for _, exit := range errorExits(pass, fn) {
		covered := false
		for _, fl := range flushNodes {
			if flow.Dominates(fl, exit) {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(exit.Pos(),
				"error exit is not dominated by a batch flush: pending instructions in the partial batch are dropped; flush with `if n > 0 { batch(buf[:n]) }` before returning (exactly-once delivery, DESIGN.md §14)")
		}
	}
}
