package lint

// The escape/retention lattice: per-definition taint propagation over the
// def-use chains a FuncFlow provides. An analyzer names the expressions
// that introduce a tracked value (a sync.Pool.Get result, a provider call),
// and Taint answers whether any given expression may alias it. The lattice
// is two-point (fresh | derived) but flow-sensitive: a variable rebound to
// a fresh value stops being derived at that definition, because derivation
// is judged per reaching definition, not per object.
//
// Aliasing rules (the §13 scratch-slab contract, DESIGN.md §14):
//
//   - assignment, slicing, *p, &x, parenthesization and type conversion
//     preserve derivation;
//   - selecting a field of a derived struct, or indexing a derived
//     container whose elements are themselves reference-like (slice, map,
//     pointer, chan), preserves derivation — a scratch struct carries its
//     slabs, and a row of a derived [][]T aliases the pool;
//   - indexing out a plain element value (uint32 from []uint32) is fresh;
//   - append(derived, ...) stays derived (same backing array on the no-grow
//     path), but append onto a fresh base — append([]T(nil), d...) — is the
//     approved deep-copy idiom and is fresh;
//   - copy, make, new and ordinary function calls produce fresh values
//     unless the analyzer's seed function claims them.

import (
	"go/ast"
	"go/types"
)

// Taint tracks which definitions of a function may alias a seeded value.
type Taint struct {
	flow    *FuncFlow
	seed    func(ast.Expr) bool
	tainted *bitset
}

// NewTaint builds the taint state for flow, seeding every expression for
// which seed returns true, and propagates to a fixpoint over the def-use
// chains.
func NewTaint(flow *FuncFlow, seed func(ast.Expr) bool) *Taint {
	t := &Taint{flow: flow, seed: seed, tainted: newBitset(len(flow.Defs))}
	for changed := true; changed; {
		changed = false
		for i, d := range flow.Defs {
			if t.tainted.get(i) {
				continue
			}
			derived := false
			if d.RHS != nil {
				derived = t.ExprDerives(d.RHS)
			} else if rs, ok := d.Node.(*ast.RangeStmt); ok {
				// Range variables alias the container's elements.
				derived = t.ExprDerives(rs.X) && refLike(d.Obj.Type())
			}
			if derived {
				t.tainted.set(i)
				changed = true
			}
		}
	}
	return t
}

// ExprDerives reports whether e may alias a seeded value, per the aliasing
// rules above.
func (t *Taint) ExprDerives(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if t.seed(e) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		bs := t.flow.reachingIndices(e)
		if bs == nil {
			return false
		}
		for i := range t.flow.Defs {
			if bs.get(i) && t.tainted.get(i) {
				return true
			}
		}
		return false
	case *ast.ParenExpr:
		return t.ExprDerives(e.X)
	case *ast.StarExpr:
		return t.ExprDerives(e.X)
	case *ast.UnaryExpr:
		return t.ExprDerives(e.X)
	case *ast.SelectorExpr:
		// A field of a derived struct carries its slabs. (Selections on
		// fresh package/objects fall out naturally: X won't derive.)
		return t.ExprDerives(e.X)
	case *ast.SliceExpr:
		return t.ExprDerives(e.X)
	case *ast.IndexExpr:
		if !t.ExprDerives(e.X) {
			return false
		}
		return refLike(typeOf(t.flow.info, e))
	case *ast.TypeAssertExpr:
		return t.ExprDerives(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if t.ExprDerives(v) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if tv, ok := t.flow.info.Types[e.Fun]; ok && tv.IsType() {
			// Type conversion: []byte(d) etc. aliases for slice kinds,
			// and conservatively derives in general.
			if len(e.Args) == 1 {
				return t.ExprDerives(e.Args[0])
			}
			return false
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			// append onto a derived base keeps the backing array; append
			// onto a fresh base is the approved copy idiom, fresh even
			// when the appended elements derive.
			return t.ExprDerives(e.Args[0])
		}
		return false
	}
	return false
}

// UseDerives reports whether this identifier use may read a seeded value.
func (t *Taint) UseDerives(id *ast.Ident) bool { return t.ExprDerives(id) }

// TaintedDefs returns the definitions judged derived, for diagnostics.
func (t *Taint) TaintedDefs() []Def {
	var out []Def
	for i := range t.flow.Defs {
		if t.tainted.get(i) {
			out = append(out, t.flow.Defs[i])
		}
	}
	return out
}

// refLike reports whether values of type t alias underlying storage:
// slices, maps, pointers, and channels do; plain scalars, strings, structs
// and arrays (which copy) do not.
func refLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	}
	return false
}

// typeOf is TypesInfo.TypeOf against a bare *types.Info.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
