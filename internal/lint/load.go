package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// loader resolves and type-checks packages of a single module without the
// go/packages machinery: module-local imports are resolved from source by
// module-path prefix, and standard-library imports go through the
// compiler-independent "source" importer (which needs no export data and
// therefore no network or pre-built GOROOT/pkg tree).
type loader struct {
	root    string // absolute module root
	module  string // module path from go.mod
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // import path -> loaded package (no test files)
	loading map[string]bool     // import cycle guard
}

// Load type-checks the packages matched by patterns ("./...", "./dir",
// "dir/...") under the module rooted at root, plus their module-local
// dependencies, and returns only the matched packages. includeTests adds
// in-package _test.go files; external (package foo_test) test packages are
// skipped, as are testdata and hidden directories.
func Load(root string, patterns []string, includeTests bool) ([]*Package, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(absRoot)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		root:    absRoot,
		module:  module,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(absRoot, dir)
		if err != nil {
			return nil, err
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		var pkg *Package
		if includeTests {
			// Test files are only added to the packages the caller asked
			// for; dependencies always load without them. In-package test
			// files may import packages that import this one back — legal
			// in Go (tests sit outside the import graph), so treating them
			// uniformly would manufacture phantom import cycles.
			pkg, err = l.loadOne(path, true)
		} else {
			pkg, err = l.load(path)
		}
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// modulePath reads the module declaration of root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s/go.mod", root)
}

// expand resolves package patterns to directories containing Go files.
func (l *loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	addIfPkg := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, p := range patterns {
		recursive := false
		if strings.HasSuffix(p, "/...") || p == "..." {
			recursive = true
			p = strings.TrimSuffix(strings.TrimSuffix(p, "..."), "/")
			if p == "" {
				p = "."
			}
		}
		if !filepath.IsAbs(p) {
			p = filepath.Join(l.root, p)
		}
		if !recursive {
			addIfPkg(p)
			continue
		}
		err := filepath.WalkDir(p, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != p && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			addIfPkg(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), "_") && !strings.HasPrefix(e.Name(), ".") {
			return true
		}
	}
	return false
}

// Import implements types.Importer: module-local paths load from source,
// everything else is delegated to the standard-library source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module-local package without test files
// (memoized). It returns (nil, nil) for directories with no buildable Go
// files.
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	pkg, err := l.loadOne(path, false)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loadOne parses and type-checks one module-local package, optionally with
// its in-package test files. Not memoized; dependency imports resolve
// through load (and therefore never see test files).
func (l *loader) loadOne(path string, tests bool) (*Package, error) {
	dir := l.root
	if path != l.module {
		dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
	}
	files, err := l.parseDir(dir, tests)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
	}
	return &Package{
		PkgPath: path,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// parseDir parses the buildable Go files of one directory: non-test files
// always, in-package test files when tests is set. External test packages
// (package foo_test) are never included — they would form a second package
// in the same directory.
func (l *loader) parseDir(dir string, tests bool) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, "_") || strings.HasPrefix(n, ".") {
			continue
		}
		if strings.HasSuffix(n, "_test.go") && !tests {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	pkgName := ""
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		name := f.Name.Name
		if strings.HasSuffix(n, "_test.go") && strings.HasSuffix(name, "_test") {
			continue // external test package
		}
		if pkgName == "" {
			pkgName = name
		}
		if name != pkgName {
			return nil, fmt.Errorf("lint: %s: mixed packages %q and %q", dir, pkgName, name)
		}
		files = append(files, f)
	}
	return files, nil
}
