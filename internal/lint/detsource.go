package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// DetSource enforces the determinism contract of the result-determining
// packages (DESIGN.md §14): every bit of an estimate must be a function of
// the request and the model fingerprint, never of the wall clock, the
// process, or the scheduler. In the packages listed in DetSourceScope it
// reports, in non-test files:
//
//  1. any call of time.Now — wall-clock input makes reports irreproducible
//     and breaks the cluster's bit-identity contract;
//  2. any call of a package-level math/rand (or math/rand/v2) function —
//     the global generator is shared, racy, and (v2) nondeterministically
//     seeded; all sampling goes through numeric.RNG;
//  3. a NewRNG seed that does not flow from configuration: the argument
//     must derive — through the function's def-use chains — only from
//     constants, parameters, struct fields, package-level variables, and
//     seed-derivation helpers (functions whose name mentions seed, mix,
//     hash, splitmix, or fingerprint, e.g. montecarlo.chunkSeed). Ad-hoc
//     seeds (loop indices, lengths, clocks) decorrelate chunk streams or
//     break reproducibility;
//  4. map-keyed nondeterminism feeding results: returning from inside a
//     map-range loop an expression involving the iteration variables, or
//     assigning an iteration variable to a longer-lived "picked" slot —
//     both select a value by map iteration order.
//
// Tests are exempt (they assert results rather than produce them, and
// deterministic local generators in oracles are fine); the analyzer skips
// _test.go files.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc:  "flag wall-clock, global math/rand, ad-hoc RNG seeds and map-order value selection in result-determining packages",
	Run:  runDetSource,
}

// DetSourceScope lists the result-determining packages: everything whose
// output lands bit-for-bit in a report, a cached model, or a cluster chunk.
var DetSourceScope = []string{
	"tsperr/internal/dta",
	"tsperr/internal/montecarlo",
	"tsperr/internal/numeric",
	"tsperr/internal/cpu",
	"tsperr/internal/cfg",
	"tsperr/internal/errormodel",
	"tsperr/internal/dist",
	"tsperr/internal/mlpred",
	"tsperr/internal/surrogate",
}

// seedHelperRe recognizes seed-derivation helpers by name: chunkSeed,
// SplitMix64, hashSpec, Fingerprint and friends.
var seedHelperRe = regexp.MustCompile(`(?i)seed|splitmix|mix|hash|fingerprint`)

func runDetSource(pass *Pass) error {
	inScope := false
	for _, p := range DetSourceScope {
		if pass.Pkg.Path() == p {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDetSourceFunc(pass, fn)
		}
	}
	return nil
}

func checkDetSourceFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkDetCall(pass, fn, n)
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					checkMapOrderSelection(pass, n)
				}
			}
		}
		return true
	})
}

func checkDetCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	// time.Now and package-level math/rand functions.
	if obj := calleeObject(pass.TypesInfo, call); obj != nil {
		if f, ok := obj.(*types.Func); ok && f.Pkg() != nil {
			sig, _ := f.Type().(*types.Signature)
			pkgLevel := sig != nil && sig.Recv() == nil
			switch f.Pkg().Path() {
			case "time":
				if pkgLevel && f.Name() == "Now" {
					pass.Reportf(call.Pos(),
						"time.Now in a result-determining package: wall-clock input makes estimates irreproducible (determinism contract, DESIGN.md §14)")
				}
			case "math/rand", "math/rand/v2":
				if pkgLevel {
					pass.Reportf(call.Pos(),
						"global math/rand.%s in a result-determining package: shared, nondeterministically scheduled stream; use numeric.NewRNG with an explicitly derived seed", f.Name())
				}
			}
		}
	}

	// NewRNG seed provenance.
	if calleeName(call) != "NewRNG" || len(call.Args) != 1 {
		return
	}
	flow := pass.FlowOf(fn)
	if !seedOK(pass, flow, fn, call.Args[0], 0) {
		pass.Reportf(call.Args[0].Pos(),
			"RNG seed does not flow from configuration or a seed-derivation helper; derive per-chunk seeds through the SplitMix64 mix (chunkSeed pattern), not ad-hoc expressions")
	}
}

// seedOK reports whether the seed expression bottoms out only in approved
// provenance: constants, parameters/receivers, struct fields, package-level
// variables, and calls to seed-derivation helpers. Local variables are
// resolved through their reaching definitions.
func seedOK(pass *Pass, flow *FuncFlow, fn *ast.FuncDecl, e ast.Expr, depth int) bool {
	if depth > 12 {
		return false // cyclic or pathological chain: refuse to vouch
	}
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return true // compile-time constant
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return seedOK(pass, flow, fn, e.X, depth)
	case *ast.UnaryExpr:
		return seedOK(pass, flow, fn, e.X, depth)
	case *ast.BinaryExpr:
		// Mixing arithmetic is fine when the operands themselves are
		// approved — that is what a derivation helper's body looks like.
		return seedOK(pass, flow, fn, e.X, depth) && seedOK(pass, flow, fn, e.Y, depth)
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok {
			return sel.Kind() == types.FieldVal // spec.Seed-style configuration
		}
		// Qualified identifier: package-level var or const.
		if obj := pass.TypesInfo.Uses[e.Sel]; obj != nil {
			switch obj.(type) {
			case *types.Const, *types.Var:
				return true
			}
		}
		return false
	case *ast.Ident:
		obj, ok := pass.TypesInfo.Uses[e].(*types.Var)
		if !ok {
			return false
		}
		if isParamOf(fn, pass.TypesInfo, obj) {
			return true // the caller derived it; provenance is theirs
		}
		if obj.Parent() == pass.Pkg.Scope() {
			return true // package-level variable: configuration
		}
		defs := flow.ReachingDefs(e)
		if len(defs) == 0 {
			// Not a tracked local: package-level variable (configuration).
			if _, tracked := flow.defsOf[obj]; !tracked {
				return true
			}
			return false
		}
		for _, d := range defs {
			if d.Node == nil {
				return true // synthetic param def
			}
			if d.RHS == nil {
				return false // range variable or bare decl: index-like
			}
			if !seedOK(pass, flow, fn, d.RHS, depth+1) {
				return false
			}
		}
		return true
	case *ast.CallExpr:
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			if len(e.Args) == 1 {
				return seedOK(pass, flow, fn, e.Args[0], depth)
			}
			return false
		}
		return seedHelperRe.MatchString(calleeName(e))
	}
	return false
}

// isParamOf reports whether obj is a parameter, receiver, or named result
// of fn.
func isParamOf(fn *ast.FuncDecl, info *types.Info, obj *types.Var) bool {
	var fields []*ast.Field
	if fn.Recv != nil {
		fields = append(fields, fn.Recv.List...)
	}
	if fn.Type.Params != nil {
		fields = append(fields, fn.Type.Params.List...)
	}
	if fn.Type.Results != nil {
		fields = append(fields, fn.Type.Results.List...)
	}
	for _, field := range fields {
		for _, name := range field.Names {
			if info.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}

// checkMapOrderSelection flags returns and pick-one assignments that let
// map iteration order choose a result.
func checkMapOrderSelection(pass *Pass, rs *ast.RangeStmt) {
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			loopVars[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			loopVars[obj] = true
		}
	}
	if len(loopVars) == 0 {
		return
	}
	usesLoopVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[pass.TypesInfo.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	lo, hi := rs.Pos(), rs.End()
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // a closure's returns are its own
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if usesLoopVar(res) {
					pass.Reportf(s.Pos(),
						"return inside a map-range loop selects a value by map iteration order; iterate sorted keys (or collect and reduce deterministically)")
					break
				}
			}
		case *ast.AssignStmt:
			if s.Tok != token.ASSIGN {
				return true
			}
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) {
					break
				}
				root := rootIdent(ast.Unparen(rhs))
				if root == nil || !loopVars[pass.TypesInfo.Uses[root]] {
					continue
				}
				lhs := s.Lhs[i]
				if declaredWithin(pass.TypesInfo, lhs, lo, hi) {
					continue
				}
				// Keyed writes (out[k] = v, arr[k] = v) are set-semantics.
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if usesLoopVar(ix.Index) {
						continue
					}
				}
				pass.Reportf(s.Pos(),
					"assigning a map iteration variable to a longer-lived slot picks a value by iteration order; iterate sorted keys instead")
			}
		}
		return true
	})
}

// calleeObject resolves the object a call invokes, through selectors and
// parens.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// calleeName is the terminal name of a call's function expression.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
