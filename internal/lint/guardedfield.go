package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// GuardedField checks "guarded by" annotations: a struct field or
// package-level variable whose doc or line comment contains
//
//	guarded by <mutexName>
//
// may only be read or written in functions that also lock that mutex
// (<something>.<mutexName>.Lock(), <mutexName>.RLock(), ...). This is a
// flow-insensitive check — it catches the "forgot the lock entirely"
// class of memo-map races before the race detector ever sees an
// interleaving, not lock/access ordering bugs within a function.
//
// Composite-literal keys are exempt: constructors initialize guarded
// fields on objects no other goroutine can reach yet.
var GuardedField = &Analyzer{
	Name: "guardedfield",
	Doc:  "flag access to 'guarded by <mu>' fields and vars in functions that never lock <mu>",
	Run:  runGuardedField,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// guardTarget couples a guarded object with the name of its mutex.
type guardTarget struct {
	obj types.Object
	mu  string
}

func runGuardedField(pass *Pass) error {
	targets := collectGuardTargets(pass)
	if len(targets) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			locked := lockedMutexNames(fn.Body)
			checkGuardedUses(pass, fn, targets, locked)
		}
	}
	return nil
}

// collectGuardTargets finds annotated struct fields and package-level vars.
func collectGuardTargets(pass *Pass) map[types.Object]string {
	targets := map[types.Object]string{}
	addNames := func(names []*ast.Ident, comments ...*ast.CommentGroup) {
		mu := ""
		for _, cg := range comments {
			if cg == nil {
				continue
			}
			if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
				mu = m[1]
				break
			}
		}
		if mu == "" {
			return
		}
		for _, name := range names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				targets[obj] = mu
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch s := spec.(type) {
				case *ast.ValueSpec: // package-level (or any) var annotation
					// An unparenthesized single-spec declaration hangs its
					// doc comment on the GenDecl, not the spec.
					specDocs := []*ast.CommentGroup{s.Doc, s.Comment}
					if len(gd.Specs) == 1 {
						specDocs = append(specDocs, gd.Doc)
					}
					addNames(s.Names, specDocs...)
				case *ast.TypeSpec:
					st, ok := s.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						addNames(field.Names, field.Doc, field.Comment)
					}
				}
			}
		}
	}
	return targets
}

// lockedMutexNames returns the set of terminal selector names on which a
// Lock/RLock call appears anywhere in body: m.stimMu.Lock() -> "stimMu",
// fwMu.RLock() -> "fwMu". Matching is by mutex name, not full selector
// chain; the annotation names the mutex, so one name per guarded object is
// the contract.
func lockedMutexNames(body *ast.BlockStmt) map[string]bool {
	locked := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch recv := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			locked[recv.Name] = true
		case *ast.SelectorExpr:
			locked[recv.Sel.Name] = true
		}
		return true
	})
	return locked
}

// checkGuardedUses reports guarded-object uses in fn when fn never locks
// the guarding mutex.
func checkGuardedUses(pass *Pass, fn *ast.FuncDecl, targets map[types.Object]string, locked map[string]bool) {
	// Track composite-literal key identifiers, which are initialization,
	// not shared access.
	litKeys := map[*ast.Ident]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if kv, ok := n.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				litKeys[id] = true
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || litKeys[id] {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		mu, guarded := targets[obj]
		if !guarded || locked[mu] {
			return true
		}
		pass.Reportf(id.Pos(),
			"%s is guarded by %s, but %s never locks %s",
			id.Name, mu, fn.Name.Name, mu)
		return true
	})
}
