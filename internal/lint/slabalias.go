package lint

import (
	"go/ast"
	"go/types"
)

// SlabAlias machine-checks the scratch-slab aliasing rules of DESIGN.md
// §13/§14: a value taken from a recycling pool (cpu data-memory slabs, the
// activity simulator's scratch slices) is owned by the pool and is recycled
// — and rewritten — as soon as the owner's Release runs. Any alias that
// survives Release reads torn data from an unrelated later run.
//
// A value is slab-derived when it flows (per the escape lattice in
// escape.go) from a (*sync.Pool).Get call, or from a call to a same-package
// provider — a function that itself returns a slab-derived value (computed
// as an intra-package fixpoint, so getMem/getScratch-style accessors are
// recognized without annotation). Functions that touch the sync.Pool
// directly (Get or Put) ARE the pool layer and are exempt: they mint and
// retire slabs by definition.
//
// Everywhere else, a slab-derived value must not
//
//   - be returned, unless the returned type carries a Release method (the
//     owner object — CPU, Simulator — whose lifecycle ends at Release);
//   - be stored into a field of a type without a Release method, into a
//     package-level variable, or into a composite literal of a type
//     without Release;
//   - be sent on a channel, or
//   - be captured by a closure that escapes the function (returned, stored
//     into a field/global, or launched as a goroutine). A closure passed
//     as a plain call argument is treated as synchronous and is allowed.
//
// Copying first is the approved fix and is recognized: append onto a fresh
// base (append([]T(nil), s...)) and copy into a fresh slice produce clean
// values (see escape.go's copy-breaking rules).
var SlabAlias = &Analyzer{
	Name: "slabalias",
	Doc:  "flag pool-derived scratch values that escape past their owner's Release (field stores, returns, escaping closures)",
	Run:  runSlabAlias,
}

func runSlabAlias(pass *Pass) error {
	fns := packageFuncs(pass)
	if len(fns) == 0 {
		return nil
	}
	poolLayer := map[*ast.FuncDecl]bool{}
	for _, fn := range fns {
		if touchesSyncPool(pass, fn) {
			poolLayer[fn] = true
		}
	}

	// Provider fixpoint: a provider returns a slab-derived value. Seeds are
	// sync.Pool.Get results and calls to already-known providers.
	providers := map[types.Object]bool{}
	declOf := map[types.Object]*ast.FuncDecl{}
	for _, fn := range fns {
		if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
			declOf[obj] = fn
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			obj := pass.TypesInfo.Defs[fn.Name]
			if obj == nil || providers[obj] {
				continue
			}
			taint := slabTaint(pass, fn, providers)
			returnsSlab := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				r, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range r.Results {
					if taint.ExprDerives(res) {
						returnsSlab = true
					}
				}
				return true
			})
			if returnsSlab {
				providers[obj] = true
				changed = true
			}
		}
	}

	for _, fn := range fns {
		if poolLayer[fn] {
			continue
		}
		checkSlabEscapes(pass, fn, slabTaint(pass, fn, providers))
	}
	return nil
}

func packageFuncs(pass *Pass) []*ast.FuncDecl {
	var fns []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				fns = append(fns, fn)
			}
		}
	}
	return fns
}

// touchesSyncPool reports whether fn directly calls Get or Put on a
// sync.Pool — the defining property of the pool layer.
func touchesSyncPool(pass *Pass, fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if isSyncPoolCall(pass.TypesInfo, call, "Get") || isSyncPoolCall(pass.TypesInfo, call, "Put") {
			found = true
		}
		return !found
	})
	return found
}

func isSyncPoolCall(info *types.Info, call *ast.CallExpr, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Pool" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}

// slabTaint builds the taint state for fn with slab seeds: sync.Pool.Get
// calls and calls to provider functions.
func slabTaint(pass *Pass, fn *ast.FuncDecl, providers map[types.Object]bool) *Taint {
	flow := pass.FlowOf(fn)
	return NewTaint(flow, func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		if isSyncPoolCall(pass.TypesInfo, call, "Get") {
			return true
		}
		obj := calleeObject(pass.TypesInfo, call)
		return obj != nil && providers[obj]
	})
}

// hasReleaseMethod reports whether t (or *t) has a Release method — the
// marker of a pool-owner type whose lifecycle the §13 contract covers.
func hasReleaseMethod(pkg *types.Package, t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		t = types.NewPointer(t)
	}
	obj, _, _ := types.LookupFieldOrMethod(t, false, pkg, "Release")
	_, ok := obj.(*types.Func)
	return ok
}

func checkSlabEscapes(pass *Pass, fn *ast.FuncDecl, taint *Taint) {
	info := pass.TypesInfo
	// Collect objects with at least one tainted def, for capture checks.
	taintedObjs := map[types.Object]bool{}
	for _, d := range taint.TaintedDefs() {
		taintedObjs[d.Obj] = true
	}

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // handled at the escape site below
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				reportEscapingClosure(pass, res, taintedObjs, "returned")
				e := ast.Unparen(res)
				if u, ok := e.(*ast.UnaryExpr); ok {
					e = ast.Unparen(u.X)
				}
				if _, isLit := e.(*ast.CompositeLit); isLit {
					continue // the composite-literal check owns this site
				}
				if taint.ExprDerives(res) && !hasReleaseMethod(pass.Pkg, info.TypeOf(res)) {
					pass.Reportf(res.Pos(),
						"slab-derived value returned: the pool rewrites it after Release; copy it first (append([]T(nil), s...)) or return the owning object (slab aliasing rules, DESIGN.md §14)")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				reportEscapingClosure(pass, rhs, taintedObjs, escapeKindOfLHS(pass, n.Lhs[i]))
				if !taint.ExprDerives(rhs) {
					continue
				}
				checkSlabStore(pass, n.Lhs[i], rhs)
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil || hasReleaseMethod(pass.Pkg, t) {
				return true
			}
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if taint.ExprDerives(v) && !hasReleaseMethod(pass.Pkg, info.TypeOf(v)) {
					pass.Reportf(v.Pos(),
						"slab-derived value stored into a %s literal, which has no Release method; the alias outlives the pool's recycle (copy it first)", typeName(t))
				}
			}
		case *ast.SendStmt:
			if taint.ExprDerives(n.Value) {
				pass.Reportf(n.Value.Pos(),
					"slab-derived value sent on a channel escapes to another goroutine past Release; send a copy")
			}
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				if id := capturedTainted(info, lit, taintedObjs); id != nil {
					pass.Reportf(lit.Pos(),
						"goroutine closure captures slab-derived %q and may outlive Release; pass a copy instead", id.Name)
				}
			}
			for _, arg := range n.Call.Args {
				if taint.ExprDerives(arg) {
					pass.Reportf(arg.Pos(),
						"slab-derived value handed to a goroutine may outlive Release; pass a copy instead")
				}
			}
			return false
		}
		return true
	}
	ast.Inspect(fn.Body, visit)
}

// checkSlabStore reports stores of slab-derived values to locations that
// outlive the function: fields of non-owner types and package-level
// variables. Stores through local aliases stay intra-procedural and are
// covered by the return/closure checks instead.
func checkSlabStore(pass *Pass, lhs, rhs ast.Expr) {
	e := ast.Unparen(lhs)
	for {
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = ast.Unparen(ix.X)
			continue
		}
		if st, ok := e.(*ast.StarExpr); ok {
			e = ast.Unparen(st.X)
			continue
		}
		break
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			recv := pass.TypesInfo.TypeOf(e.X)
			if !hasReleaseMethod(pass.Pkg, recv) {
				pass.Reportf(rhs.Pos(),
					"slab-derived value stored to field %s of a type without a Release method; the alias outlives the pool's recycle (copy it, or give %s the Release lifecycle)",
					e.Sel.Name, typeName(recv))
			}
		}
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && obj.Parent() == pass.Pkg.Scope() {
			pass.Reportf(rhs.Pos(),
				"slab-derived value stored to package-level %s escapes every Release; copy it first", e.Name)
		}
	}
}

// escapeKindOfLHS classifies an assignment target for closure-escape
// reporting: "" when storing there keeps the closure local.
func escapeKindOfLHS(pass *Pass, lhs ast.Expr) string {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return "stored to a field"
		}
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && obj.Parent() == pass.Pkg.Scope() {
			return "stored to a package-level variable"
		}
	}
	return ""
}

// reportEscapingClosure flags a func literal at an escape site (return or
// field/global store) that captures a slab-derived variable.
func reportEscapingClosure(pass *Pass, e ast.Expr, taintedObjs map[types.Object]bool, how string) {
	if how == "" {
		return
	}
	lit, ok := ast.Unparen(e).(*ast.FuncLit)
	if !ok {
		return
	}
	if id := capturedTainted(pass.TypesInfo, lit, taintedObjs); id != nil {
		pass.Reportf(lit.Pos(),
			"closure %s captures slab-derived %q and outlives the pool's Release; copy before capturing", how, id.Name)
	}
}

// capturedTainted returns an identifier inside lit that reads a variable
// with a slab-derived definition, or nil.
func capturedTainted(info *types.Info, lit *ast.FuncLit, taintedObjs map[types.Object]bool) *ast.Ident {
	var hit *ast.Ident
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && taintedObjs[obj] {
				hit = id
			}
		}
		return true
	})
	return hit
}

// typeName renders a type compactly for diagnostics.
func typeName(t types.Type) string {
	if t == nil {
		return "unknown"
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
