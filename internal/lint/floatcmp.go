package lint

import (
	"go/ast"
	"go/token"
	"regexp"
)

// FloatCmp flags == and != between floating-point expressions. Exact
// float equality is almost always a latent bug in SSTA/estimation math —
// two algebraically equal delay or probability expressions differ in the
// last ulp as soon as evaluation order changes, which is exactly what the
// parallel characterization pipeline does. Allowed:
//
//   - comparisons where either operand is a compile-time constant
//     (x == 0 sentinel and division guards are idiomatic and exact);
//   - comparisons inside tolerance helpers, recognized by function names
//     matching approx/almost/within/tol(erance);
//   - lines carrying a //tsperrlint:ignore floatcmp directive with a
//     reason.
//
// Everything else should go through numeric.ApproxEq or restructure into
// ordered comparisons.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= between floating-point expressions outside approved tolerance helpers",
	Run:  runFloatCmp,
}

// toleranceFuncRe recognizes approved tolerance-helper functions by name.
var toleranceFuncRe = regexp.MustCompile(`(?i)approx|almost|within|tol`)

func runFloatCmp(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if toleranceFuncRe.MatchString(fn.Name.Name) {
				continue
			}
			checkFloatCmps(pass, fn.Body)
		}
	}
	return nil
}

func checkFloatCmps(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		xt := pass.TypesInfo.Types[be.X]
		yt := pass.TypesInfo.Types[be.Y]
		if !isFloat(xt.Type) || !isFloat(yt.Type) {
			return true
		}
		if xt.Value != nil || yt.Value != nil {
			return true // constant sentinel comparison: exact by construction
		}
		pass.Reportf(be.OpPos,
			"%s between floating-point expressions; use numeric.ApproxEq (or ordered comparisons) — exact equality breaks under reassociation",
			be.Op)
		return true
	})
}
