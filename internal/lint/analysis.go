// Package lint implements the repository's custom static-analysis passes
// and the minimal driver framework they run on. The repo has two machine-
// checked contracts that ordinary `go vet` cannot see: parallel
// characterization must stay bit-identical to serial execution (no
// map-iteration-order-dependent accumulation, no unguarded memo access),
// and context cancellation must thread through every long-running
// scenario/instruction/cycle loop. The analyzers here enforce both, plus
// the float-equality hygiene the estimation math depends on.
//
// The framework mirrors the golang.org/x/tools/go/analysis API surface
// (Analyzer, Pass, Diagnostic) but is built purely on the standard library
// (go/ast, go/types, go/importer), because this module is dependency-free
// by policy. cmd/tsperrlint is the multichecker driver; it runs both
// standalone over package patterns and as a `go vet -vettool`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the conventional file:line:col form used by vet tools.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	flows map[*ast.FuncDecl]*FuncFlow // FlowOf memo (dataflow.go)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one static-analysis pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// All returns the full pass suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{MapIterOrder, CtxFlow, GuardedField, FloatCmp, DetSource, SlabAlias, BatchOnce}
}

// ByName resolves a comma-separated analyzer selection; an empty selection
// means all analyzers.
func ByName(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunAnalyzers applies the analyzers to one loaded package and returns the
// surviving diagnostics sorted by position. Findings on lines carrying a
// matching //tsperrlint:ignore directive are dropped; directive-hygiene
// findings (ignores.go) are appended after the filter, so a malformed or
// stale directive cannot suppress its own report.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	dirs := ParseDirectives(pkg.Fset, pkg.Files)
	sup := suppressionMap(dirs)
	var kept []Diagnostic
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if s := sup[key]; s != nil && s[d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	kept = append(kept, checkDirectives(dirs, analyzers, diags)...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

// ---- shared type and syntax helpers used by several analyzers ----

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootIdent returns the leftmost identifier of a selector/index chain
// (x in x.f[i].g), or nil when the chain does not start at an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the object bound to the leftmost
// identifier of lhs was declared inside [lo, hi) — i.e. the variable is
// local to that region (typically a loop body) rather than an accumulator
// that outlives it.
func declaredWithin(info *types.Info, lhs ast.Expr, lo, hi token.Pos) bool {
	id := rootIdent(lhs)
	if id == nil {
		return false
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= lo && obj.Pos() < hi
}
