package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces the cancellation contract of the resilient estimation
// pipeline (DESIGN.md §7): long-running work must be abortable. In the
// packages listed in CtxFlowScope it reports
//
//  1. exported functions that run a scenario/instruction/cycle loop
//     (recognized by the domain vocabulary in the loop header) but neither
//     accept a context.Context nor consult one, and
//  2. any non-trivial function without a context parameter that
//     manufactures context.Background()/context.TODO() — laundering the
//     contract by handing uncancellable contexts to workers.
//
// Thin delegating wrappers (at most two statements, no loops — the
// conventional Run/RunContext pairing) are exempt from the second check,
// since a Background() fallback at the outermost convenience layer is the
// standard library's own idiom.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flag scenario/instruction/cycle loops and Background() laundering outside the context-threading contract",
	Run:  runCtxFlow,
}

// CtxFlowScope lists the import paths whose packages carry the
// cancellation contract. Loops elsewhere (generators, pure math) finish in
// microseconds and are deliberately out of scope.
var CtxFlowScope = []string{
	"tsperr/internal/core",
	"tsperr/internal/harness",
	"tsperr/internal/errormodel",
	"tsperr/internal/cpu",
	"tsperr/internal/server",
}

// ctxLoopTokens is the domain vocabulary marking a loop as long-running:
// iterating scenarios, instructions, or clock cycles.
var ctxLoopTokens = []string{"scenario", "cycle", "inst"}

func runCtxFlow(pass *Pass) error {
	inScope := false
	for _, p := range CtxFlowScope {
		if pass.Pkg.Path() == p {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCtxFlowFunc(pass, fn)
		}
	}
	return nil
}

func checkCtxFlowFunc(pass *Pass, fn *ast.FuncDecl) {
	if hasCtxParam(pass.TypesInfo, fn) {
		return // the contract is satisfied at the signature
	}
	if isTestEntry(pass.TypesInfo, fn) {
		return // test entry points are where root contexts legitimately begin
	}
	consults := consultsContext(pass.TypesInfo, fn.Body)

	if fn.Name.IsExported() && !consults {
		if loop := findDomainLoop(fn.Body); loop != nil {
			pass.Reportf(loop.Pos(),
				"exported %s runs a scenario/instruction/cycle loop but neither accepts a context.Context nor checks one (cancellation contract, DESIGN.md §7)",
				fn.Name.Name)
		}
	}

	if isThinWrapper(fn) {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := contextFactory(call); name != "" {
			pass.Reportf(call.Pos(),
				"%s manufactures context.%s instead of accepting a context.Context; callers cannot cancel this work (add a ctx parameter or delegate from a thin wrapper)",
				fn.Name.Name, name)
		}
		return true
	})
}

// isTestEntry reports whether fn is a go-test entry point — TestXxx,
// BenchmarkXxx, or FuzzXxx taking the corresponding *testing parameter.
// Tests own their run and are the one place a root context is correct, so
// both ctxflow checks skip them.
func isTestEntry(info *types.Info, fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	if !strings.HasPrefix(name, "Test") && !strings.HasPrefix(name, "Benchmark") && !strings.HasPrefix(name, "Fuzz") {
		return false
	}
	if fn.Recv != nil || fn.Type.Params == nil || len(fn.Type.Params.List) != 1 {
		return false
	}
	t := info.TypeOf(fn.Type.Params.List[0].Type)
	if t == nil {
		return false
	}
	switch t.String() {
	case "*testing.T", "*testing.B", "*testing.F":
		return true
	}
	return false
}

// hasCtxParam reports whether any parameter of fn has type context.Context.
func hasCtxParam(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if t := info.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// consultsContext reports whether the body references a context-typed
// variable (a struct field or captured ctx being checked), which satisfies
// the "checks one" half of the contract. Results of context.Background()
// calls are not variables and do not count.
func consultsContext(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := info.ObjectOf(id)
		if v, ok := obj.(*types.Var); ok && isContextType(v.Type()) {
			found = true
		}
		return !found
	})
	return found
}

// findDomainLoop returns the first for/range statement whose header
// mentions the scenario/instruction/cycle vocabulary, or nil.
func findDomainLoop(body *ast.BlockStmt) ast.Stmt {
	var hit ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		switch s := n.(type) {
		case *ast.ForStmt:
			if headerHasToken(s.Init) || headerHasToken(s.Cond) || headerHasToken(s.Post) {
				hit = s
			}
		case *ast.RangeStmt:
			if headerHasToken(s.X) {
				hit = s
			}
		}
		return hit == nil
	})
	return hit
}

// headerHasToken scans the identifiers of a loop-header node for the
// domain vocabulary.
func headerHasToken(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || found {
			return !found
		}
		lower := strings.ToLower(id.Name)
		for _, tok := range ctxLoopTokens {
			if strings.Contains(lower, tok) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

// isThinWrapper reports whether fn is a small delegating convenience
// wrapper: at most two top-level statements and no loops anywhere.
func isThinWrapper(fn *ast.FuncDecl) bool {
	if len(fn.Body.List) > 2 {
		return false
	}
	hasLoop := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			hasLoop = true
		}
		return !hasLoop
	})
	return !hasLoop
}

// contextFactory returns "Background" or "TODO" when call is
// context.Background() or context.TODO(), and "" otherwise.
func contextFactory(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "context" {
		return ""
	}
	if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
		return sel.Sel.Name
	}
	return ""
}
