package lint_test

import (
	"path/filepath"
	"testing"

	"tsperr/internal/lint"
	"tsperr/internal/lint/linttest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestMapIterOrder(t *testing.T) {
	linttest.Run(t, lint.MapIterOrder, fixture("mapiterorder"), "fixture/mapiterorder")
}

func TestCtxFlow(t *testing.T) {
	// The fixture is checked under a core import path so it falls inside
	// CtxFlowScope.
	linttest.Run(t, lint.CtxFlow, fixture("ctxflow"), "tsperr/internal/core")
}

func TestCtxFlowOutOfScope(t *testing.T) {
	// The same fixture outside the scoped packages must produce nothing:
	// wants are only honored when the analyzer reports, so run directly.
	pkg, diags := linttest.MustRun(t, lint.CtxFlow, fixture("ctxflow"), "fixture/ctxflow")
	if len(diags) != 0 {
		t.Fatalf("ctxflow out of scope reported %d diagnostics in %s, want 0: %v", len(diags), pkg.PkgPath, diags)
	}
}

func TestGuardedField(t *testing.T) {
	linttest.Run(t, lint.GuardedField, fixture("guardedfield"), "fixture/guardedfield")
}

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, lint.FloatCmp, fixture("floatcmp"), "fixture/floatcmp")
}

func TestByName(t *testing.T) {
	all, err := lint.ByName("")
	if err != nil || len(all) != 4 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 4, nil", len(all), err)
	}
	two, err := lint.ByName("floatcmp, ctxflow")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName(subset) = %v, err %v; want [floatcmp ctxflow]", two, err)
	}
	if _, err := lint.ByName("nosuch"); err == nil {
		t.Fatal("ByName(\"nosuch\") succeeded, want error")
	}
}
