package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"tsperr/internal/lint"
	"tsperr/internal/lint/linttest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestMapIterOrder(t *testing.T) {
	linttest.Run(t, lint.MapIterOrder, fixture("mapiterorder"), "fixture/mapiterorder")
}

func TestCtxFlow(t *testing.T) {
	// The fixture is checked under a core import path so it falls inside
	// CtxFlowScope.
	linttest.Run(t, lint.CtxFlow, fixture("ctxflow"), "tsperr/internal/core")
}

func TestCtxFlowOutOfScope(t *testing.T) {
	// The same fixture outside the scoped packages must produce nothing:
	// wants are only honored when the analyzer reports, so run directly.
	pkg, diags := linttest.MustRun(t, lint.CtxFlow, fixture("ctxflow"), "fixture/ctxflow")
	if len(diags) != 0 {
		t.Fatalf("ctxflow out of scope reported %d diagnostics in %s, want 0: %v", len(diags), pkg.PkgPath, diags)
	}
}

func TestGuardedField(t *testing.T) {
	linttest.Run(t, lint.GuardedField, fixture("guardedfield"), "fixture/guardedfield")
}

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, lint.FloatCmp, fixture("floatcmp"), "fixture/floatcmp")
}

func TestDetSource(t *testing.T) {
	// The fixture is checked under a montecarlo import path so it falls
	// inside DetSourceScope.
	linttest.Run(t, lint.DetSource, fixture("detsource"), "tsperr/internal/montecarlo")
}

func TestDetSourceOutOfScope(t *testing.T) {
	pkg, diags := linttest.MustRun(t, lint.DetSource, fixture("detsource"), "fixture/detsource")
	if len(diags) != 0 {
		t.Fatalf("detsource out of scope reported %d diagnostics in %s, want 0: %v", len(diags), pkg.PkgPath, diags)
	}
}

func TestSlabAlias(t *testing.T) {
	linttest.Run(t, lint.SlabAlias, fixture("slabalias"), "fixture/slabalias")
}

func TestBatchOnce(t *testing.T) {
	linttest.Run(t, lint.BatchOnce, fixture("batchonce"), "fixture/batchonce")
}

// TestIgnoreHygiene pins the directive hygiene: malformed, unknown and
// stale suppressions are findings under the "ignore" pseudo-analyzer, and
// a broken directive suppresses nothing, so the underlying finding
// surfaces alongside it. Expectations are explicit (not `// want`) because
// a want comment cannot share a line with the directive it describes.
func TestIgnoreHygiene(t *testing.T) {
	_, diags := linttest.MustRun(t, lint.FloatCmp, fixture("ignores"), "fixture/ignores")
	want := []struct {
		line     int
		analyzer string
		substr   string
	}{
		{20, "ignore", "has no reason"},
		{21, "floatcmp", "between floating-point expressions"},
		{27, "ignore", `unknown analyzer "floatcompare"`},
		{28, "floatcmp", "between floating-point expressions"},
		{34, "ignore", "stale directive"},
		{43, "floatcmp", "between floating-point expressions"},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(want), diags)
	}
	for i, w := range want {
		d := diags[i]
		if d.Pos.Line != w.line || d.Analyzer != w.analyzer || !strings.Contains(d.Message, w.substr) {
			t.Errorf("diag %d = %s:%d [%s] %q; want line %d [%s] containing %q",
				i, d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message, w.line, w.analyzer, w.substr)
		}
	}
}

func TestByName(t *testing.T) {
	all, err := lint.ByName("")
	if err != nil || len(all) != 7 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 7, nil", len(all), err)
	}
	two, err := lint.ByName("floatcmp, ctxflow")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName(subset) = %v, err %v; want [floatcmp ctxflow]", two, err)
	}
	if _, err := lint.ByName("nosuch"); err == nil {
		t.Fatal("ByName(\"nosuch\") succeeded, want error")
	}
}
