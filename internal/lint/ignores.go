package lint

// Suppression directives and their hygiene. A directive
//
//	//tsperrlint:ignore floatcmp exact tie-break is intentional
//
// names one or more analyzers (comma-separated) and carries a mandatory
// free-text reason; it suppresses matching findings on its own line and
// the line below. Because every directive is debt against a machine-checked
// contract, the directives themselves are machine-checked: a malformed
// directive, an unknown analyzer name, or a stale directive (suppressing
// nothing) is a lint finding in its own right, reported under the
// pseudo-analyzer name "ignore" after suppression filtering — so hygiene
// findings cannot themselves be suppressed. cmd/tsperrlint's -ignores mode
// inventories the directives and enforces the checked-in budget
// (lint.budget), which only ever ratchets down.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// IgnoreName is the pseudo-analyzer under which directive-hygiene findings
// are reported.
const IgnoreName = "ignore"

const ignorePrefix = "//tsperrlint:ignore"

// Directive is one parsed //tsperrlint:ignore comment.
type Directive struct {
	Pos    token.Position
	Names  []string // analyzer names the directive suppresses
	Reason string   // mandatory justification
	Err    string   // non-empty when the directive is malformed
}

// ParseDirectives extracts every suppression directive (including malformed
// ones) from the files, in position order.
func ParseDirectives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				d := Directive{Pos: fset.Position(c.Pos())}
				rest := c.Text[len(ignorePrefix):]
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					// //tsperrlint:ignorefloatcmp — a typo, not a new verb.
					d.Err = "malformed directive: expected `//tsperrlint:ignore <analyzers> <reason>`"
					out = append(out, d)
					continue
				}
				names, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				reason = strings.TrimSpace(reason)
				if names == "" {
					d.Err = "directive names no analyzer: write `//tsperrlint:ignore <analyzers> <reason>`"
				} else if reason == "" {
					d.Err = fmt.Sprintf("directive suppressing %q has no reason; every suppression must say why", names)
				}
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						d.Names = append(d.Names, n)
					}
				}
				d.Reason = reason
				out = append(out, d)
			}
		}
	}
	return out
}

// suppressionMap maps file:line to the analyzer names suppressed on that
// line. Only well-formed directives suppress anything; a directive covers
// its own line and the one below, so it works both trailing and preceding.
func suppressionMap(dirs []Directive) map[string]map[string]bool {
	sup := map[string]map[string]bool{}
	for _, d := range dirs {
		if d.Err != "" {
			continue
		}
		for _, line := range []int{d.Pos.Line, d.Pos.Line + 1} {
			key := fmt.Sprintf("%s:%d", d.Pos.Filename, line)
			if sup[key] == nil {
				sup[key] = map[string]bool{}
			}
			for _, n := range d.Names {
				sup[key][n] = true
			}
		}
	}
	return sup
}

// checkDirectives produces the hygiene findings for dirs: malformed
// directives, unknown analyzer names, and — for analyzers that actually ran
// — stale directives whose lines carry no matching raw finding. Staleness
// is only judged for analyzers in the run set; a floatcmp directive is not
// stale merely because this invocation ran only ctxflow.
func checkDirectives(dirs []Directive, ran []*Analyzer, raw []Diagnostic) []Diagnostic {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	inRun := map[string]bool{}
	for _, a := range ran {
		inRun[a.Name] = true
	}
	rawAt := map[string]bool{} // "file:line:analyzer"
	for _, d := range raw {
		rawAt[fmt.Sprintf("%s:%d:%s", d.Pos.Filename, d.Pos.Line, d.Analyzer)] = true
	}
	var out []Diagnostic
	report := func(d Directive, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:      d.Pos,
			Analyzer: IgnoreName,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, d := range dirs {
		if d.Err != "" {
			report(d, "%s", d.Err)
			continue
		}
		for _, n := range d.Names {
			if !known[n] {
				report(d, "directive suppresses unknown analyzer %q; known analyzers: %s", n, analyzerNames())
				continue
			}
			if !inRun[n] {
				continue
			}
			stale := true
			for _, line := range []int{d.Pos.Line, d.Pos.Line + 1} {
				if rawAt[fmt.Sprintf("%s:%d:%s", d.Pos.Filename, line, n)] {
					stale = false
					break
				}
			}
			if stale {
				report(d, "stale directive: %s reports nothing on this line or the next; delete the suppression", n)
			}
		}
	}
	return out
}

// analyzerNames renders the registered analyzer names for diagnostics.
func analyzerNames() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
