package lint

// This file is the flow-sensitive layer of the lint framework: a
// lightweight intra-procedural dataflow engine built directly on go/ast and
// go/types (no x/tools dependency, per the module's stdlib-only policy).
// It lifts a control-flow graph from a function body, runs classic
// reaching-definitions over it, derives per-use def-use chains, and
// computes dominator sets — the primitives the detsource, slabalias and
// batchonce analyzers (and mapiterorder's alias resolution) are written
// against. Analyzers obtain it through Pass.FlowOf, which memoizes one
// FuncFlow per declaration, so syntactic analyzers keep running unchanged
// and pay nothing.
//
// Granularity: a FlowBlock holds "simple" nodes only — plain statements
// plus the condition/header expressions of compound statements. Compound
// statements themselves (if/for/range/switch/select) are decomposed into
// blocks and edges, so inspecting a block's nodes never descends into a
// nested branch. Function literals are NOT decomposed: identifiers inside a
// closure body are recorded as uses at the point the literal is built,
// which is the conservative reading for capture analysis (the closure may
// run at any later time).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FlowBlock is one basic block of a function's control-flow graph.
type FlowBlock struct {
	Index int
	Nodes []ast.Node // simple statements and header expressions, in order
	Succs []*FlowBlock
	Preds []*FlowBlock

	gen, kill, in, out *bitset
}

// Def is one definition (binding or store) of a local variable.
type Def struct {
	Obj  *types.Var // the variable being defined
	Id   *ast.Ident // the defining identifier; nil for parameters/receivers
	RHS  ast.Expr   // defining expression; nil for params and range vars
	Node ast.Node   // the statement carrying the definition (nil for params)
}

// FuncFlow is the dataflow summary of one function declaration.
type FuncFlow struct {
	Fn     *ast.FuncDecl
	Entry  *FlowBlock
	Exit   *FlowBlock // every return (and the fall-off end) feeds this block
	Blocks []*FlowBlock
	Defs   []Def
	// Deferred lists the call expressions of defer statements; they run on
	// every exit path, so path-sensitive checks (batchonce) treat them as
	// dominating all returns.
	Deferred []*ast.CallExpr

	info      *types.Info
	defsOf    map[*types.Var][]int
	defIdent  map[*ast.Ident]int
	uses      map[*ast.Ident]*bitset // use site -> reaching def indices
	nodeBlock map[ast.Node]*FlowBlock
	nodeIndex map[ast.Node]int
	dom       []*bitset // per-block dominator sets
	reachable []bool
}

// FlowOf returns the memoized dataflow summary for fn, building it on first
// use. It is the one entry point analyzers use, keeping the engine behind
// the existing Pass API.
func (p *Pass) FlowOf(fn *ast.FuncDecl) *FuncFlow {
	if p.flows == nil {
		p.flows = map[*ast.FuncDecl]*FuncFlow{}
	}
	if f, ok := p.flows[fn]; ok {
		return f
	}
	f := BuildFlow(p.TypesInfo, fn)
	p.flows[fn] = f
	return f
}

// BuildFlow constructs the CFG for fn, solves reaching definitions, and
// resolves every identifier use to the definitions that may reach it.
func BuildFlow(info *types.Info, fn *ast.FuncDecl) *FuncFlow {
	f := &FuncFlow{
		Fn:        fn,
		info:      info,
		defsOf:    map[*types.Var][]int{},
		defIdent:  map[*ast.Ident]int{},
		uses:      map[*ast.Ident]*bitset{},
		nodeBlock: map[ast.Node]*FlowBlock{},
		nodeIndex: map[ast.Node]int{},
	}
	b := &flowBuilder{f: f, labels: map[string]*labelTarget{}}
	f.Entry = b.newBlock()
	f.Exit = &FlowBlock{Index: -1} // assigned a real index below
	b.cur = f.Entry
	if fn.Body != nil {
		b.stmts(fn.Body.List)
	}
	b.edge(b.cur, f.Exit)
	f.Exit.Index = len(f.Blocks)
	f.Blocks = append(f.Blocks, f.Exit)
	b.resolveGotos()

	f.collectDefs()
	f.solveReaching()
	f.resolveUses()
	f.computeReachable()
	return f
}

// ---- CFG construction ----

type labelTarget struct {
	brk, cont *FlowBlock
	start     *FlowBlock // target block for goto
}

type gotoFixup struct {
	from  *FlowBlock
	label string
}

type flowBuilder struct {
	f         *FuncFlow
	cur       *FlowBlock
	breaks    []*FlowBlock
	continues []*FlowBlock
	labels    map[string]*labelTarget
	gotos     []gotoFixup
}

func (b *flowBuilder) newBlock() *FlowBlock {
	blk := &FlowBlock{Index: len(b.f.Blocks)}
	b.f.Blocks = append(b.f.Blocks, blk)
	return blk
}

func (b *flowBuilder) edge(from, to *FlowBlock) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add records a simple node in the current block.
func (b *flowBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	b.f.nodeBlock[n] = b.cur
	b.f.nodeIndex[n] = len(b.cur.Nodes)
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *flowBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement; label is the pending label when the
// statement was wrapped in a LabeledStmt.
func (b *flowBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.LabeledStmt:
		start := b.newBlock()
		b.edge(b.cur, start)
		b.cur = start
		b.labels[s.Label.Name] = &labelTarget{start: start}
		b.stmt(s.Stmt, s.Label.Name)
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Cond)
		condBlk := b.cur
		after := b.newBlock()
		thenBlk := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmts(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else, "")
			b.edge(b.cur, after)
		} else {
			b.edge(condBlk, after)
		}
		b.cur = after
	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		header := b.newBlock()
		b.edge(b.cur, header)
		b.cur = header
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		after := b.newBlock()
		post := b.newBlock()
		b.edge(header, body)
		if s.Cond != nil {
			b.edge(header, after)
		}
		b.pushLoop(label, after, post)
		b.cur = body
		b.stmts(s.Body.List)
		b.popLoop()
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post, "")
		}
		b.edge(b.cur, header)
		b.cur = after
	case *ast.RangeStmt:
		header := b.newBlock()
		b.edge(b.cur, header)
		b.cur = header
		b.add(s) // the range header: defines Key/Value, uses X
		body := b.newBlock()
		after := b.newBlock()
		b.edge(header, body)
		b.edge(header, after)
		b.pushLoop(label, after, header)
		b.cur = body
		b.stmts(s.Body.List)
		b.popLoop()
		b.edge(b.cur, header)
		b.cur = after
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.branchingStmt(s, label)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.f.Exit)
		b.cur = b.newBlock() // unreachable continuation
	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			b.edge(b.cur, b.branchTarget(s, true))
		case token.CONTINUE:
			b.edge(b.cur, b.branchTarget(s, false))
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, gotoFixup{from: b.cur, label: s.Label.Name})
			}
		case token.FALLTHROUGH:
			// handled by branchingStmt's sequential case wiring
		}
		if s.Tok != token.FALLTHROUGH {
			b.cur = b.newBlock() // unreachable continuation
		}
	case *ast.DeferStmt:
		b.add(s)
		b.f.Deferred = append(b.f.Deferred, s.Call)
	default:
		// Assign, Decl, Expr, Send, Go, IncDec, Empty: simple nodes.
		b.add(s)
	}
}

// branchingStmt wires switch/type-switch/select statements: every clause is
// its own block branching from the header and joining after; fallthrough
// adds an edge to the next clause.
func (b *flowBuilder) branchingStmt(s ast.Stmt, label string) {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Assign)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	header := b.cur
	after := b.newBlock()
	if label != "" {
		b.labels[label].brk = after
	}
	b.breaks = append(b.breaks, after)
	var blocks []*FlowBlock
	var bodies [][]ast.Stmt
	for _, c := range clauses {
		blk := b.newBlock()
		b.edge(header, blk)
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			blocks, bodies = append(blocks, blk), append(bodies, c.Body)
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			blocks, bodies = append(blocks, blk), append(bodies, c.Body)
			if c.Comm != nil {
				// the communication op executes in the clause block
				prev := b.cur
				b.cur = blk
				b.stmt(c.Comm, "")
				blk = b.cur
				blocks[len(blocks)-1] = blk
				b.cur = prev
			}
		}
	}
	for i, blk := range blocks {
		b.cur = blk
		fallsThrough := false
		for _, st := range bodies[i] {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
			b.stmt(st, "")
		}
		if fallsThrough && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
		}
		b.edge(b.cur, after)
	}
	if !hasDefault {
		b.edge(header, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func (b *flowBuilder) pushLoop(label string, brk, cont *FlowBlock) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if label != "" {
		t := b.labels[label]
		t.brk, t.cont = brk, cont
	}
}

func (b *flowBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *flowBuilder) branchTarget(s *ast.BranchStmt, isBreak bool) *FlowBlock {
	if s.Label != nil {
		if t := b.labels[s.Label.Name]; t != nil {
			if isBreak {
				return t.brk
			}
			return t.cont
		}
		return nil
	}
	stack := b.continues
	if isBreak {
		stack = b.breaks
	}
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

func (b *flowBuilder) resolveGotos() {
	for _, g := range b.gotos {
		if t := b.labels[g.label]; t != nil {
			b.edge(g.from, t.start)
		}
	}
}

// ---- definitions ----

// collectDefs numbers every definition: parameters, receivers and named
// results (synthetic entry defs), then each binding/store in block order.
func (f *FuncFlow) collectDefs() {
	addDef := func(obj *types.Var, id *ast.Ident, rhs ast.Expr, node ast.Node) {
		if obj == nil {
			return
		}
		idx := len(f.Defs)
		f.Defs = append(f.Defs, Def{Obj: obj, Id: id, RHS: rhs, Node: node})
		f.defsOf[obj] = append(f.defsOf[obj], idx)
		if id != nil {
			f.defIdent[id] = idx
		}
	}
	declObj := func(id *ast.Ident) *types.Var {
		if obj, ok := f.info.Defs[id].(*types.Var); ok {
			return obj
		}
		return nil
	}
	useObj := func(id *ast.Ident) *types.Var {
		if obj, ok := f.info.Uses[id].(*types.Var); ok {
			return obj
		}
		return nil
	}

	// Synthetic entry definitions for receiver, params, named results.
	var fields []*ast.Field
	if f.Fn.Recv != nil {
		fields = append(fields, f.Fn.Recv.List...)
	}
	if f.Fn.Type.Params != nil {
		fields = append(fields, f.Fn.Type.Params.List...)
	}
	if f.Fn.Type.Results != nil {
		fields = append(fields, f.Fn.Type.Results.List...)
	}
	for _, field := range fields {
		for _, name := range field.Names {
			addDef(declObj(name), nil, nil, nil)
		}
	}
	f.Entry.gen = nil // gen/kill assigned in solveReaching

	for _, blk := range f.Blocks {
		for _, n := range blk.Nodes {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0] // multi-value call/comma-ok
					}
					if n.Tok == token.DEFINE {
						addDef(declObj(id), id, rhs, n)
					} else {
						// Includes op-assigns (+= etc.): a store to the var.
						addDef(useObj(id), id, rhs, n)
					}
				}
			case *ast.IncDecStmt:
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					addDef(useObj(id), id, nil, n)
				}
			case *ast.DeclStmt:
				gd, ok := n.Decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						var rhs ast.Expr
						if len(vs.Values) == len(vs.Names) {
							rhs = vs.Values[i]
						} else if len(vs.Values) == 1 {
							rhs = vs.Values[0]
						}
						addDef(declObj(name), name, rhs, n)
					}
				}
			case *ast.RangeStmt:
				for _, e := range []ast.Expr{n.Key, n.Value} {
					id, ok := e.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					if n.Tok == token.DEFINE {
						addDef(declObj(id), id, nil, n)
					} else {
						addDef(useObj(id), id, nil, n)
					}
				}
			}
		}
	}
}

// nodeDefs returns the def indices produced by node n (in source order).
func (f *FuncFlow) nodeDefs(n ast.Node) []int {
	var out []int
	shallowIdents(n, func(id *ast.Ident) {
		if idx, ok := f.defIdent[id]; ok && f.Defs[idx].Node == n {
			out = append(out, idx)
		}
	})
	return out
}

// shallowIdents visits the identifiers of a simple node. Range headers only
// expose Key/Value/X; everything else is fully inspected (closure bodies
// included, by design — see the package comment).
func shallowIdents(n ast.Node, fn func(*ast.Ident)) {
	visit := func(m ast.Node) {
		if m == nil {
			return
		}
		ast.Inspect(m, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok {
				fn(id)
			}
			return true
		})
	}
	if rs, ok := n.(*ast.RangeStmt); ok {
		visit(rs.Key)
		visit(rs.Value)
		visit(rs.X)
		return
	}
	visit(n)
}

// ---- reaching definitions ----

func (f *FuncFlow) solveReaching() {
	nd := len(f.Defs)
	for _, blk := range f.Blocks {
		blk.gen = newBitset(nd)
		blk.kill = newBitset(nd)
		blk.in = newBitset(nd)
		blk.out = newBitset(nd)
		cur := map[*types.Var]int{}
		for _, n := range blk.Nodes {
			for _, d := range f.nodeDefs(n) {
				cur[f.Defs[d].Obj] = d
			}
		}
		for obj, d := range cur {
			blk.gen.set(d)
			for _, other := range f.defsOf[obj] {
				if other != d {
					blk.kill.set(other)
				}
			}
		}
	}
	// Entry generates the synthetic parameter defs.
	for i, d := range f.Defs {
		if d.Node == nil {
			f.Entry.gen.set(i)
		}
	}

	changed := true
	for changed {
		changed = false
		for _, blk := range f.Blocks {
			blk.in.clearAll()
			for _, p := range blk.Preds {
				blk.in.orWith(p.out)
			}
			if blk == f.Entry {
				// nothing flows in; gen carries the params
			}
			newOut := blk.in.clone()
			newOut.andNot(blk.kill)
			newOut.orWith(blk.gen)
			if !newOut.equal(blk.out) {
				blk.out = newOut
				changed = true
			}
		}
	}
}

// resolveUses walks each block in order, tracking the live definition
// overlay, and records for every identifier use the set of defs reaching it.
func (f *FuncFlow) resolveUses() {
	for _, blk := range f.Blocks {
		cur := blk.in.clone()
		for _, n := range blk.Nodes {
			defs := f.nodeDefs(n)
			defSet := map[*ast.Ident]bool{}
			for _, d := range defs {
				if id := f.Defs[d].Id; id != nil {
					defSet[id] = true
				}
			}
			shallowIdents(n, func(id *ast.Ident) {
				if defSet[id] {
					return // a pure binding position, not a use
				}
				obj, ok := f.info.Uses[id].(*types.Var)
				if !ok {
					return
				}
				all, tracked := f.defsOf[obj]
				if !tracked {
					return
				}
				r := newBitset(len(f.Defs))
				for _, d := range all {
					if cur.get(d) {
						r.set(d)
					}
				}
				f.uses[id] = r
			})
			// Apply the node's definitions after its uses resolve, so
			// `x = x + 1` sees the incoming def on the right-hand side.
			for _, d := range defs {
				obj := f.Defs[d].Obj
				for _, other := range f.defsOf[obj] {
					cur.clear(other)
				}
				cur.set(d)
			}
		}
	}
}

// ReachingDefs returns the definitions that may reach the given identifier
// use, or nil when the identifier is not a tracked local use.
func (f *FuncFlow) ReachingDefs(id *ast.Ident) []Def {
	bs, ok := f.uses[id]
	if !ok {
		return nil
	}
	var out []Def
	for i := range f.Defs {
		if bs.get(i) {
			out = append(out, f.Defs[i])
		}
	}
	return out
}

// reachingIndices is ReachingDefs in index form, for the taint engine.
func (f *FuncFlow) reachingIndices(id *ast.Ident) *bitset { return f.uses[id] }

// DefsOf returns every definition of obj in the function.
func (f *FuncFlow) DefsOf(obj *types.Var) []Def {
	var out []Def
	for _, i := range f.defsOf[obj] {
		out = append(out, f.Defs[i])
	}
	return out
}

// ---- dominators ----

func (f *FuncFlow) computeReachable() {
	f.reachable = make([]bool, len(f.Blocks))
	var visit func(b *FlowBlock)
	visit = func(b *FlowBlock) {
		if f.reachable[b.Index] {
			return
		}
		f.reachable[b.Index] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(f.Entry)
}

// dominators lazily computes the per-block dominator sets with the classic
// iterative intersection; block counts are small enough that bitset
// iteration converges in a handful of passes.
func (f *FuncFlow) dominators() []*bitset {
	if f.dom != nil {
		return f.dom
	}
	n := len(f.Blocks)
	dom := make([]*bitset, n)
	for i := range dom {
		dom[i] = newBitset(n)
		if i == f.Entry.Index {
			dom[i].set(i)
		} else {
			dom[i].setAll()
		}
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range f.Blocks {
			if blk == f.Entry || !f.reachable[blk.Index] {
				continue
			}
			nd := newBitset(n)
			nd.setAll()
			any := false
			for _, p := range blk.Preds {
				if !f.reachable[p.Index] {
					continue
				}
				nd.and(dom[p.Index])
				any = true
			}
			if !any {
				nd.clearAll()
			}
			nd.set(blk.Index)
			if !nd.equal(dom[blk.Index]) {
				dom[blk.Index] = nd
				changed = true
			}
		}
	}
	f.dom = dom
	return dom
}

// Dominates reports whether node a executes on every path reaching node b.
// Both must be nodes recorded in the CFG (simple statements or header
// expressions). Nodes in unreachable code are vacuously dominated.
func (f *FuncFlow) Dominates(a, b ast.Node) bool {
	ba, oka := f.nodeBlock[a]
	bb, okb := f.nodeBlock[b]
	if !oka || !okb {
		return false
	}
	if !f.reachable[bb.Index] {
		return true
	}
	if ba == bb {
		return f.nodeIndex[a] <= f.nodeIndex[b]
	}
	return f.dominators()[bb.Index].get(ba.Index)
}

// ---- bitset ----

type bitset struct {
	words []uint64
	n     int
}

func newBitset(n int) *bitset {
	return &bitset{words: make([]uint64, (n+63)/64), n: n}
}

func (b *bitset) set(i int)      { b.words[i/64] |= 1 << (uint(i) % 64) }
func (b *bitset) clear(i int)    { b.words[i/64] &^= 1 << (uint(i) % 64) }
func (b *bitset) get(i int) bool { return b.words[i/64]&(1<<(uint(i)%64)) != 0 }

func (b *bitset) setAll() {
	for i := 0; i < b.n; i++ {
		b.set(i)
	}
}

func (b *bitset) clearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

func (b *bitset) clone() *bitset {
	c := newBitset(b.n)
	copy(c.words, b.words)
	return c
}

func (b *bitset) orWith(o *bitset) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

func (b *bitset) and(o *bitset) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

func (b *bitset) andNot(o *bitset) {
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
}

func (b *bitset) equal(o *bitset) bool {
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}
