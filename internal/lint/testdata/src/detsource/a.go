// Package detsource fixtures: nondeterministic inputs in result-determining
// code. Checked under the import path tsperr/internal/montecarlo so the
// scope rule fires; the out-of-scope test loads the same files under
// fixture/detsource and expects silence.
package detsource

import (
	"math/rand"
	"time"
)

// rng stands in for numeric.RNG: detsource keys on the constructor name.
type rng struct{ s uint64 }

func NewRNG(seed uint64) *rng { return &rng{s: seed} }

// chunkSeed mirrors montecarlo's SplitMix64 per-chunk derivation; seedOK
// recognizes it by name.
func chunkSeed(seed uint64, chunk int) uint64 {
	return seed ^ (uint64(chunk)+1)*0x9E3779B97F4A7C15
}

type spec struct{ Seed uint64 }

func wallClock() int64 {
	return time.Now().UnixNano() // want `time.Now in a result-determining package`
}

func globalRand() uint64 {
	return rand.Uint64() // want `global math/rand`
}

func localRandMethodIsFine(r *rand.Rand) int64 {
	return r.Int63() // deterministic local generator: clean
}

func goodSeeds(sp spec, seed uint64, chunks int) []*rng {
	out := make([]*rng, 0, chunks)
	out = append(out, NewRNG(sp.Seed))        // configuration field: clean
	out = append(out, NewRNG(seed^0xDEADBEEF)) // parameter arithmetic: clean
	derived := sp.Seed ^ 0x9E3779B97F4A7C15
	out = append(out, NewRNG(derived)) // flows from configuration: clean
	for i := 0; i < chunks; i++ {
		out = append(out, NewRNG(chunkSeed(seed, i))) // derivation helper: clean
	}
	return out
}

func badSeeds(xs []uint64) []*rng {
	var out []*rng
	for i := range xs {
		out = append(out, NewRNG(uint64(i))) // want `seed does not flow from configuration`
	}
	s := uint64(len(xs))
	out = append(out, NewRNG(s)) // want `seed does not flow from configuration`
	return out
}

func pickByIteration(m map[string]int) (string, int) {
	for k, v := range m {
		return k, v // want `map iteration order`
	}
	return "", 0
}

func lastWins(m map[string]int) string {
	best := ""
	for k := range m {
		best = k // want `iteration order`
	}
	return best
}

func keyedWritesAreFine(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v // set semantics: clean
	}
	return out
}

func collectThenReduce(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect for sorting: clean
	}
	return keys
}
