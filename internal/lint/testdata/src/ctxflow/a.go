// Fixture for the ctxflow analyzer. The test loads this package under the
// import path tsperr/internal/core so it falls inside CtxFlowScope.
package fixture

import (
	"context"
	"testing"
)

// RunScenarios is the core violation: exported, runs a scenario loop, and
// has no way to be cancelled.
func RunScenarios(n int) float64 {
	var total float64
	for scenario := 0; scenario < n; scenario++ { // want `neither accepts a context.Context nor checks one`
		total += float64(scenario)
	}
	return total
}

// RunScenariosContext satisfies the contract at the signature.
func RunScenariosContext(ctx context.Context, n int) (float64, error) {
	var total float64
	for scenario := 0; scenario < n; scenario++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += float64(scenario)
	}
	return total, nil
}

// engine carries its context as a field; methods consulting it are fine.
type engine struct {
	ctx context.Context
	n   int
}

// CycleAll has no ctx parameter but checks the stored one each cycle.
func (e *engine) CycleAll() error {
	for cycle := 0; cycle < e.n; cycle++ {
		if err := e.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Run is the conventional thin wrapper; a Background() here is the stdlib's
// own convenience idiom and is exempt.
func Run(n int) float64 {
	v, _ := RunScenariosContext(context.Background(), n)
	return v
}

// RunInstBatch launders the contract: it is not a thin wrapper, yet it
// manufactures an uncancellable context for the real work.
func RunInstBatch(insts []int) float64 {
	var total float64
	weight := 0.5
	if len(insts) > 100 {
		weight = 1.0
	}
	v, _ := RunScenariosContext(context.Background(), len(insts)) // want `manufactures context.Background`
	total = v * weight
	return total
}

// sumInst is unexported: the domain-loop check only binds the exported API,
// so this stays clean (callers reach it through a ctx-accepting entry).
func sumInst(insts []float64) float64 {
	var total float64
	for _, inst := range insts {
		total += inst
	}
	return total
}

// Tally loops, but over plain indices with no domain vocabulary — short
// bounded math that the contract deliberately leaves alone.
func Tally(xs []float64) float64 {
	var t float64
	for i := 0; i < len(xs); i++ {
		t += xs[i]
	}
	return t
}

// TestScenarioSweep is a go-test entry point: it both runs a scenario loop
// and manufactures a root context, and both are correct here — the test owns
// its run.
func TestScenarioSweep(t *testing.T) {
	for scenario := 0; scenario < 4; scenario++ {
		if _, err := RunScenariosContext(context.Background(), scenario); err != nil {
			t.Fatal(err)
		}
	}
}

// BenchmarkScenarioSweep gets the same exemption for *testing.B.
func BenchmarkScenarioSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RunScenariosContext(context.Background(), 3)
	}
}
