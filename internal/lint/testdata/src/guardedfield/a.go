// Fixture for the guardedfield analyzer: access to fields and package vars
// annotated "guarded by <mu>" must happen in functions that lock <mu>.
package fixture

import "sync"

type store struct {
	mu sync.Mutex
	// cache memoizes lookups; guarded by mu.
	cache map[string]int
	hits  int // guarded by mu
}

// newStore initializes guarded fields through composite-literal keys, which
// is construction, not shared access — clean.
func newStore() *store {
	return &store{cache: map[string]int{}}
}

// Get locks the annotated mutex before touching cache and hits — clean.
func (s *store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits++
	return s.cache[k]
}

// Peek reads cache without the lock.
func (s *store) Peek(k string) int {
	return s.cache[k] // want `never locks mu`
}

// Reset writes cache without the lock.
func (s *store) Reset() {
	s.cache = nil // want `never locks mu`
}

// RGet uses a reader lock, which also satisfies the annotation.
type rwstore struct {
	rw    sync.RWMutex
	table map[string]int // guarded by rw
}

func (s *rwstore) RGet(k string) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.table[k]
}

// Package-level state with a package-level guard.
var regMu sync.Mutex

// registry maps unit names to handlers; guarded by regMu.
var registry = map[string]func(){}

// Register locks the guard — clean.
func Register(name string, fn func()) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = fn
}

// Lookup forgets the guard entirely.
func Lookup(name string) func() {
	return registry[name] // want `never locks regMu`
}

// unguarded has no annotation, so lock-free access is fine.
var unguarded = map[string]int{}

func Bump(k string) {
	unguarded[k]++
}
