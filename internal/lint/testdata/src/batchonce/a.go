// Package batchonce fixtures: error exits in batch-observer loops that
// drop the pending partial batch. The local BatchObserver mirrors
// cpu.BatchObserver — the analyzer keys on the named type, not the
// package.
package batchonce

import "errors"

type BatchObserver func([]int)

// bad returns on the error path without flushing what accumulated.
func bad(batch BatchObserver, xs []int) error {
	buf := make([]int, 0, 4)
	for _, x := range xs {
		buf = append(buf, x)
		if x < 0 {
			return errors.New("negative input") // want `error exit is not dominated by a batch flush`
		}
		if len(buf) == 4 {
			batch(buf)
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		batch(buf)
	}
	return nil
}

// good flushes the partial batch before every error return; the guard
// condition dominates the exit, so an empty batch is fine too.
func good(batch BatchObserver, xs []int) error {
	buf := make([]int, 0, 4)
	for _, x := range xs {
		if x < 0 {
			if len(buf) > 0 {
				batch(buf)
			}
			return errors.New("negative input") // guarded flush dominates: clean
		}
		buf = append(buf, x)
		if len(buf) == 4 {
			batch(buf)
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		batch(buf)
	}
	return nil
}

// deferredFlush delivers the tail batch on every exit path via defer.
func deferredFlush(batch BatchObserver, xs []int) error {
	buf := append([]int(nil), xs...)
	defer batch(buf)
	if len(xs) == 0 {
		return errors.New("empty") // deferred flush covers this: clean
	}
	return nil
}

// outerGuardDoesNotCount: the flush is guarded by the inner condition;
// the *outer* if's condition must not be credited, or the error return in
// the second branch would be blessed without any flush on its path.
func outerGuardDoesNotCount(batch BatchObserver, buf []int, c bool) error {
	if c {
		if len(buf) > 0 {
			batch(buf)
		}
		buf = buf[:0]
	}
	if !c {
		return errors.New("unflushed path") // want `error exit is not dominated by a batch flush`
	}
	return nil
}

// successExitsAreFree: only error returns need the flush guarantee.
func successExitsAreFree(batch BatchObserver, xs []int) error {
	if len(xs) == 0 {
		return nil // success exit: clean
	}
	batch(xs)
	return nil
}
