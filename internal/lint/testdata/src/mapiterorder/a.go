// Fixture for the mapiterorder analyzer: order-sensitive work inside
// map-range loops must be flagged; sorted-key iteration and commutative
// updates must not.
package fixture

import "sort"

// acc mimics numeric.KahanSum: a float accumulator with an Add method.
type acc struct{ sum, c float64 }

func (a *acc) Add(v float64) { a.sum += v }

func floatAccumulation(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `iteration-order dependent`
	}
	return total
}

func kahanAccumulation(m map[string]float64) float64 {
	var k acc
	for _, v := range m {
		k.Add(v) // want `accumulator .Add inside map-range loop`
	}
	return k.sum
}

func appendCollection(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to a slice that outlives`
	}
	return keys
}

func workerDispatch(m map[string]func(), done chan string) {
	for k, f := range m {
		go f()    // want `goroutine launched from a map-range loop`
		done <- k // want `channel send inside a map-range loop`
	}
}

// sortedKeys is the approved fix pattern: collect, sort, then range the
// slice — no diagnostics, including on the collection append.
func sortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// bucketSort collects into buckets inside the loop and sorts each bucket
// afterwards through a one-hop alias — the cfg.Profile.IncomingEdges
// idiom. The alias shares the bucket's backing array, so sorting it erases
// the recorded iteration order: clean.
func bucketSort(m map[int]int) [][]int {
	buckets := make([][]int, 4)
	for k := range m {
		buckets[k%4] = append(buckets[k%4], k)
	}
	for b := range buckets {
		s := buckets[b]
		sort.Ints(s)
	}
	return buckets
}

// staleAlias takes the alias before the loop: the appends inside the loop
// can reallocate away from it, so sorting the stale alias fixes nothing.
func staleAlias(m map[int]int) []int {
	var vals []int
	s := vals
	for k := range m {
		vals = append(vals, k) // want `append to a slice that outlives`
	}
	sort.Ints(s)
	return vals
}

// intCounting is commutative and must not be flagged.
func intCounting(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// localAccumulator only lives inside the loop body; order cannot leak.
func localAccumulator(m map[string][]float64) {
	for _, vs := range m {
		var rowSum float64
		for _, v := range vs {
			rowSum += v
		}
		_ = rowSum
	}
}

// mapToMap writes are set-semantics, not order-sensitive.
func mapToMap(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}
