// Package slabalias fixtures: pool-derived scratch values escaping their
// owner's Release. The pool layer (getBuf/putBuf) touches sync.Pool
// directly and is exempt; everything downstream must copy before letting
// a slab outlive the function.
package slabalias

import "sync"

var pool = sync.Pool{New: func() any { return make([]int, 0, 64) }}

// getBuf and putBuf are the pool layer: they call Pool.Get/Put directly,
// so minting and retiring slabs here is their job, not a finding.
func getBuf() []int  { return pool.Get().([]int)[:0] }
func putBuf(s []int) { pool.Put(s) }

// owner carries a slab through its documented lifecycle: storing into it
// is fine because Release returns the slab to the pool.
type owner struct{ buf []int }

func (o *owner) Release() { putBuf(o.buf) }

// holder has no Release: it cannot own a slab.
type holder struct{ buf []int }

var global []int

func returnsSlab() []int {
	s := getBuf()
	return s // want `slab-derived value returned`
}

func returnsCopy() []int {
	s := getBuf()
	defer putBuf(s)
	return append([]int(nil), s...) // copy first: clean
}

func storesToField(h *holder) {
	s := getBuf()
	h.buf = s // want `stored to field buf of a type without a Release method`
}

func storesToOwner() *owner {
	s := getBuf()
	return &owner{buf: s} // owner has Release: clean
}

func storesToHolderLit() *holder {
	s := getBuf()
	return &holder{buf: s} // want `stored into a holder literal`
}

func storesToGlobal() {
	s := getBuf()
	global = s // want `stored to package-level global`
}

func sendsOnChannel(ch chan []int) {
	s := getBuf()
	ch <- s // want `sent on a channel`
}

func launchesGoroutine(done chan struct{}) {
	s := getBuf()
	go func() { // want `goroutine closure captures slab-derived "s"`
		_ = s[0]
		close(done)
	}()
}

func returnsClosure() func() int {
	s := getBuf()
	return func() int { return len(s) } // want `closure returned captures slab-derived "s"`
}

func synchronousClosureIsFine(apply func(func())) int {
	s := getBuf()
	defer putBuf(s)
	total := 0
	apply(func() { total += len(s) }) // plain call argument: clean
	return total
}

func rebindingClearsTaint() []int {
	s := getBuf()
	putBuf(s)
	s = make([]int, 8)
	return s // rebound to a fresh slice: clean (flow-sensitive)
}
