// Fixture for the floatcmp analyzer: exact ==/!= between float expressions
// is flagged unless a constant is involved, the enclosing function is a
// tolerance helper, or the line carries an ignore directive.
package fixture

func sameDelay(a, b float64) bool {
	return a == b // want `between floating-point expressions`
}

func changedDelay(a, b float32) bool {
	return a != b // want `between floating-point expressions`
}

// zeroGuard compares against a compile-time constant — the idiomatic exact
// sentinel, clean.
func zeroGuard(x float64) bool {
	return x == 0
}

// approxEq is a tolerance helper by name; its internal exact comparisons
// are the implementation of the approved pattern.
func approxEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// withinUlp is likewise exempt by name.
func withinUlp(a, b float64) bool {
	return a == b
}

// intCompare involves no floats — clean.
func intCompare(a, b int) bool {
	return a == b
}

// tieBreak documents a deliberate exact comparison with the suppression
// directive, which must silence the finding.
func tieBreak(a, b float64) bool {
	//tsperrlint:ignore floatcmp exact tie on bit-identical inputs is intended
	return a == b
}
