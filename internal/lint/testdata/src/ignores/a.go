// Fixture for suppression-directive hygiene, run with the floatcmp
// analyzer: a valid directive suppresses its finding silently; malformed,
// unknown-analyzer, and stale directives are findings themselves, reported
// under the "ignore" pseudo-analyzer. Expectations live in
// TestIgnoreHygiene (lint_test.go) rather than `// want` comments, because
// a want comment cannot share a line with the directive comment it
// describes.
package fixture

// validSuppression: well-formed, names a real analyzer, and covers a real
// finding — no hygiene report, no floatcmp report.
func validSuppression(a, b float64) bool {
	//tsperrlint:ignore floatcmp exact tie on bit-identical inputs is intended
	return a == b
}

// missingReason: the justification is mandatory, and the
// unsuppressed finding surfaces too.
func missingReason(a, b float64) bool {
	//tsperrlint:ignore floatcmp
	return a == b
}

// unknownAnalyzer: directives must name analyzers that exist;
// the misspelled name suppresses nothing, so the comparison below reports as well.
func unknownAnalyzer(a, b float64) bool {
	//tsperrlint:ignore floatcompare exact tie is intended
	return a == b
}

// staleSuppression: the directive covers a line where floatcmp
// reports nothing, so it is dead weight that would mask a regression.
func staleSuppression(a, b int) bool {
	//tsperrlint:ignore floatcmp integers were floats once
	return a == b
}

// outOfRunSet: ctxflow is real but not in this invocation's run
// set, so its staleness is not judged; the floatcmp finding below
// still surfaces because the directive does not name floatcmp.
func outOfRunSet(a, b float64) bool {
	//tsperrlint:ignore ctxflow the loop below is bounded by the spec
	return a == b
}
