package mibench

import (
	"testing"

	"tsperr/internal/cfg"
	"tsperr/internal/cpu"
)

func TestAllBenchmarksRunAndCheck(t *testing.T) {
	bs := All()
	if len(bs) != 12 {
		t.Fatalf("expected 12 benchmarks, got %d", len(bs))
	}
	for _, b := range bs {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for scenario := 0; scenario < 3; scenario++ {
				c, err := cpu.New(b.Prog, cpu.DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				if err := b.Setup(c, scenario); err != nil {
					t.Fatal(err)
				}
				st, err := c.Run(nil)
				if err != nil {
					t.Fatalf("scenario %d: %v", scenario, err)
				}
				if !st.Halted {
					t.Fatalf("scenario %d: did not halt", scenario)
				}
				if st.Instructions < 500 {
					t.Errorf("scenario %d: suspiciously short run (%d insts)",
						scenario, st.Instructions)
				}
				if st.Instructions > 5_000_000 {
					t.Errorf("scenario %d: run too long for testing (%d insts)",
						scenario, st.Instructions)
				}
				if err := b.Check(c, scenario); err != nil {
					t.Errorf("scenario %d: %v", scenario, err)
				}
			}
		})
	}
}

func TestScenariosDiffer(t *testing.T) {
	// Different scenarios must present different inputs (data variation).
	for _, b := range All() {
		c0, _ := cpu.New(b.Prog, cpu.DefaultConfig())
		c1, _ := cpu.New(b.Prog, cpu.DefaultConfig())
		if err := b.Setup(c0, 0); err != nil {
			t.Fatal(err)
		}
		if err := b.Setup(c1, 1); err != nil {
			t.Fatal(err)
		}
		same := true
		for a := uint32(1024); a < 3000; a++ {
			if c0.Mem(a) != c1.Mem(a) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: scenarios 0 and 1 have identical inputs", b.Name)
		}
	}
}

func TestBenchmarkCFGsAreInteresting(t *testing.T) {
	for _, b := range All() {
		g, err := cfg.Build(b.Prog)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if len(g.Blocks) < 5 {
			t.Errorf("%s: only %d basic blocks", b.Name, len(g.Blocks))
		}
		// Every benchmark loops: its CFG must contain a nontrivial SCC or a
		// self loop.
		scc := cfg.ComputeSCC(g, nil)
		hasCycle := false
		for _, comp := range scc.Comps {
			if len(comp) > 1 {
				hasCycle = true
			}
		}
		if !hasCycle {
			for bi := range g.Blocks {
				for _, s := range g.Blocks[bi].Succs {
					if s == bi {
						hasCycle = true
					}
				}
			}
		}
		if !hasCycle {
			t.Errorf("%s: CFG has no cycle — not a real kernel", b.Name)
		}
	}
}

func TestBlockCountRegression(t *testing.T) {
	// Guard the kernels' CFG sizes: refactors should not silently collapse
	// the multi-phase structure (Table 2's Blocks column depends on it).
	want := map[string]int{
		"basicmath": 30, "bitcount": 14, "dijkstra": 35, "patricia": 15,
		"pgp.encode": 18, "pgp.decode": 17, "tiff2bw": 28, "typeset": 18,
		"ghostscript": 40, "stringsearch": 18, "gsm.encode": 30, "gsm.decode": 30,
	}
	for _, b := range All() {
		g, err := cfg.Build(b.Prog)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Blocks) < want[b.Name] {
			t.Errorf("%s: %d blocks, expected at least %d", b.Name, len(g.Blocks), want[b.Name])
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("dijkstra")
	if err != nil || b.Name != "dijkstra" {
		t.Fatalf("ByName failed: %v", err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestCategoriesCoverMiBench(t *testing.T) {
	counts := map[string]int{}
	for _, b := range All() {
		counts[b.Category]++
	}
	for _, cat := range []string{"automotive", "network", "security", "consumer", "office", "telecomm"} {
		if counts[cat] != 2 {
			t.Errorf("category %s has %d benchmarks, want 2", cat, counts[cat])
		}
	}
}

func TestScaleTargetsMatchPaper(t *testing.T) {
	want := map[string]int64{
		"basicmath": 1_487_629_739, "bitcount": 589_809_283,
		"dijkstra": 254_491_123, "patricia": 1_167_201,
		"pgp.encode": 782_002_182, "pgp.decode": 212_201_598,
		"tiff2bw": 670_620_091, "typeset": 66_490_215,
		"ghostscript": 743_108_760, "stringsearch": 27_984_283,
		"gsm.encode": 473_017_210, "gsm.decode": 497_219_812,
	}
	var total int64
	for _, b := range All() {
		if b.ScaleTo != want[b.Name] {
			t.Errorf("%s ScaleTo = %d, want %d", b.Name, b.ScaleTo, want[b.Name])
		}
		total += b.ScaleTo
	}
	if total != 5_805_741_497 {
		t.Errorf("total = %d, want the paper's 5,805,741,497", total)
	}
}
