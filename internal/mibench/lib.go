package mibench

// Shared assembly library routines. TS-V8, like early SPARC V8
// implementations, has no divide instruction, so programs link a software
// divide; the shift-subtract loop's compare chain is a classic source of
// deep carry activations. Routines use a leaf calling convention: jal r31,
// <routine>; arguments and results in low registers as documented; r1..r6
// are caller-saved.
//
// Labels are file-scope per program, so each routine may be appended to any
// kernel exactly once.

// libDivu: unsigned restoring division, r1 / r2 -> quotient r1, remainder
// r2. Preconditions: 0 < r2 < 2^30 and r1 < 2^31 (signed compares are then
// equivalent to unsigned).
const libDivu = `
divu:                       # r1/r2 -> q in r1, rem in r2
	li   r3, 0              # remainder accumulator
	li   r4, 0              # quotient
	li   r5, 32             # bit counter
divu_loop:
	beq  r5, r0, divu_done
	slli r3, r3, 1
	srli r6, r1, 31
	or   r3, r3, r6
	slli r1, r1, 1
	slli r4, r4, 1
	blt  r3, r2, divu_skip
	sub  r3, r3, r2
	ori  r4, r4, 1
divu_skip:
	addi r5, r5, -1
	j    divu_loop
divu_done:
	mv   r1, r4
	mv   r2, r3
	jr   r31
`

// libSort: insertion sort of words, base address r1, length r2. Clobbers
// r3..r8. Signed comparison order.
const libSort = `
sort:                       # insertion sort mem[r1 .. r1+r2)
	li   r3, 1              # i
sort_outer:
	bge  r3, r2, sort_done
	add  r4, r1, r3
	lw   r5, 0(r4)          # key
	mv   r6, r3             # j
sort_inner:
	beq  r6, r0, sort_place
	addi r7, r6, -1
	add  r4, r1, r7
	lw   r8, 0(r4)
	bge  r5, r8, sort_place # while key < mem[j-1]
	add  r4, r1, r6
	sw   r8, 0(r4)
	mv   r6, r7
	j    sort_inner
sort_place:
	add  r4, r1, r6
	sw   r5, 0(r4)
	addi r3, r3, 1
	j    sort_outer
sort_done:
	jr   r31
`

// libAbs: r1 = |r1| (two's complement). Clobbers nothing else.
const libAbs = `
absv:
	bge  r1, r0, absv_done
	sub  r1, r0, r1
absv_done:
	jr   r31
`

// withLib appends library routines to a kernel source. The kernel must halt
// on every path so control never falls into the library code.
func withLib(src string, libs ...string) string {
	out := src
	for _, l := range libs {
		out += "\n" + l
	}
	return out
}

// goDivu mirrors libDivu for the Check functions.
func goDivu(a, b uint32) (q, r uint32) {
	return a / b, a % b
}
