// Package mibench provides the twelve benchmark kernels of Table 2 — two per
// MiBench category, carrying the original names — written in TS-V8 assembly.
// Each is a genuine implementation of the algorithm family the MiBench
// program represents (integer square roots, bit counting, Dijkstra, radix
// trie walks, stream ciphering, grayscale conversion, line breaking,
// rasterization, substring search, fixed-point speech coding), with
// scenario-seeded input generators standing in for the MiBench datasets.
// The ScaleTo targets are the paper's dynamic instruction counts, which the
// framework uses to extrapolate execution counts to the published workload
// sizes.
package mibench

import (
	"fmt"
	"sync"

	"tsperr/internal/cpu"
	"tsperr/internal/isa"
	"tsperr/internal/numeric"
)

// Benchmark is one Table 2 program.
type Benchmark struct {
	Name     string
	Category string
	// Prog is the assembled kernel.
	Prog *isa.Program
	// Setup seeds machine memory for an input scenario.
	Setup func(c *cpu.CPU, scenario int) error
	// ScaleTo is the paper's dynamic instruction count for this program.
	ScaleTo int64
	// Check validates the kernel's functional output after a run (used by
	// tests); it returns an error when the computation is wrong.
	Check func(c *cpu.CPU, scenario int) error
}

// Memory layout shared by the kernels.
const (
	hdrBase  = 1024 // header: element counts, seeds, parameters
	patBase  = 1536 // secondary input (patterns, coefficients)
	inBase   = 2048 // primary input array
	auxBase  = 3072 // scratch / secondary output
	outBase  = 4096 // results
	bmpBase  = 8192 // bitmaps
	rowWords = 64
)

func rngFor(name string, scenario int) *numeric.RNG {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return numeric.NewRNG(h ^ uint64(scenario)*0x9E3779B97F4A7C15)
}

// The benchmark table assembles once: the kernels are constants and assembly
// is pure, so per-request lookups must not re-parse twelve programs. The
// cached Benchmark values share their (immutable after assembly) *isa.Program
// and their stateless Setup/gen closures.
var (
	allOnce  sync.Once
	allTable []Benchmark
)

func allCached() []Benchmark {
	allOnce.Do(func() {
		allTable = []Benchmark{
			basicmath(), bitcount(), dijkstra(), patricia(),
			pgpEncode(), pgpDecode(), tiff2bw(), typeset(),
			ghostscript(), stringsearch(), gsmEncode(), gsmDecode(),
		}
	})
	return allTable
}

// All returns the twelve benchmarks in Table 2 order. The returned slice is
// the caller's to reorder; the elements share the cached immutable programs.
func All() []Benchmark {
	cached := allCached()
	out := make([]Benchmark, len(cached))
	copy(out, cached)
	return out
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range allCached() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("mibench: unknown benchmark %q", name)
}

// ---------------------------------------------------------------- basicmath

func basicmath() Benchmark {
	src := `
	# basicmath: integer square roots (bitwise Newton digit method) over an
	# array, followed by a subtractive GCD of the first two elements.
	li   r30, 1024
	lw   r29, 0(r30)        # n
	li   r28, 0             # sum of isqrt
	li   r27, 0             # i
outer:
	bge  r27, r29, gcdphase
	add  r26, r30, r27
	lw   r10, 1(r26)        # x
	li   r11, 0             # res
	li   r12, 0x40000000    # bit
shrink:
	bge  r10, r12, sqrtloop
	srli r12, r12, 2
	bne  r12, r0, shrink
	j    sqrtdone
sqrtloop:
	beq  r12, r0, sqrtdone
	add  r13, r11, r12
	blt  r10, r13, smaller
	sub  r10, r10, r13
	srli r11, r11, 1
	add  r11, r11, r12
	j    next
smaller:
	srli r11, r11, 1
next:
	srli r12, r12, 2
	j    sqrtloop
sqrtdone:
	add  r28, r28, r11
	addi r27, r27, 1
	j    outer
gcdphase:
	lw   r10, 1(r30)
	lw   r11, 2(r30)
	addi r10, r10, 1
	addi r11, r11, 1
gcd:
	beq  r10, r11, done
	blt  r10, r11, less
	sub  r10, r10, r11
	j    gcd
less:
	sub  r11, r11, r10
	j    gcd
done:
	li   r20, 4096
	sw   r28, 0(r20)
	sw   r10, 1(r20)
	# --- integer cube roots by binary search over the array ---
	li   r27, 0
	li   r22, 0             # cbrt sum
cbrt:
	bge  r27, r29, cbrtdone
	add  r1, r30, r27
	lw   r10, 1(r1)         # x
	li   r11, 0             # lo
	li   r12, 1290          # hi (cbrt of 2^31)
cbloop:
	sub  r13, r12, r11
	slti r14, r13, 2
	bne  r14, r0, cbfix
	add  r13, r11, r12
	srli r13, r13, 1        # mid
	mul  r14, r13, r13
	mul  r14, r14, r13      # mid^3
	bge  r10, r14, cblo
	addi r12, r13, -1
	j    cbloop
cblo:
	mv   r11, r13
	j    cbloop
cbfix:
	# lo or hi could be the answer; take the larger cube <= x
	mul  r14, r12, r12
	mul  r14, r14, r12
	bge  r10, r14, cbhi
	mv   r12, r11
cbhi:
	add  r22, r22, r12
	addi r27, r27, 1
	j    cbrt
cbrtdone:
	sw   r22, 2(r20)
	# --- degree -> radian conversion in Q12 fixed point:
	# rad = deg * 25736 / 360 / 4096 scaled; keep (deg*25736)/360 via divu ---
	li   r27, 0
	li   r21, 0             # radian checksum
deg:
	bge  r27, r29, degdone
	add  r1, r30, r27
	lw   r1, 1(r1)
	andi r1, r1, 511        # degrees 0..511
	li   r2, 25736          # 2*pi in Q12
	mul  r1, r1, r2
	li   r2, 360
	jal  r31, divu
	add  r21, r21, r1
	addi r27, r27, 1
	j    deg
degdone:
	sw   r21, 3(r20)
	halt
`
	const n = 96
	gen := func(scenario int) []uint32 {
		rng := rngFor("basicmath", scenario)
		// Datasets differ in magnitude (256..16384), which changes both the
		// isqrt iteration profile and the adder carry-chain statistics —
		// the data-variation axis of the paper.
		bound := 1 << uint(8+scenario%7)
		xs := make([]uint32, n)
		for i := range xs {
			xs[i] = uint32(rng.Intn(bound))
		}
		return xs
	}
	return Benchmark{
		Name: "basicmath", Category: "automotive",
		Prog:    isa.MustAssemble("basicmath", withLib(src, libDivu)),
		ScaleTo: 1_487_629_739,
		Setup: func(c *cpu.CPU, scenario int) error {
			xs := gen(scenario)
			c.SetMem(hdrBase, uint32(len(xs)))
			c.LoadWords(hdrBase+1, xs)
			return nil
		},
		Check: func(c *cpu.CPU, scenario int) error {
			xs := gen(scenario)
			var want uint32
			for _, x := range xs {
				want += isqrt(x)
			}
			if got := c.Mem(outBase); got != want {
				return fmt.Errorf("isqrt sum = %d, want %d", got, want)
			}
			if got := c.Mem(outBase + 1); got != gcd(xs[0]+1, xs[1]+1) {
				return fmt.Errorf("gcd = %d, want %d", got, gcd(xs[0]+1, xs[1]+1))
			}
			var cb, rad uint32
			for _, x := range xs {
				cb += icbrt(x)
				q, _ := goDivu((x&511)*25736, 360)
				rad += q
			}
			if got := c.Mem(outBase + 2); got != cb {
				return fmt.Errorf("cbrt sum = %d, want %d", got, cb)
			}
			if got := c.Mem(outBase + 3); got != rad {
				return fmt.Errorf("radian checksum = %d, want %d", got, rad)
			}
			return nil
		},
	}
}

func isqrt(x uint32) uint32 {
	var res uint32
	bit := uint32(1) << 30
	for bit > x {
		bit >>= 2
	}
	for bit != 0 {
		if x >= res+bit {
			x -= res + bit
			res = res>>1 + bit
		} else {
			res >>= 1
		}
		bit >>= 2
	}
	return res
}

// icbrt mirrors the kernel's binary-search integer cube root.
func icbrt(x uint32) uint32 {
	lo, hi := uint32(0), uint32(1290)
	for hi-lo >= 2 {
		mid := (lo + hi) / 2
		if mid*mid*mid <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if hi*hi*hi <= x {
		return hi
	}
	return lo
}

func gcd(a, b uint32) uint32 {
	for a != b {
		if a > b {
			a -= b
		} else {
			b -= a
		}
	}
	return a
}

// ----------------------------------------------------------------- bitcount

func bitcount() Benchmark {
	src := `
	# bitcount: population count of an array by four methods, as the
	# MiBench program does — Kernighan's clear-lowest-bit loop, a
	# shift-and-mask sweep, the SWAR recursive-halving reduction, and a
	# program-built 16-entry nibble table — with all totals cross-checking.
	# --- build the nibble popcount table at 3584: t[i] = t[i>>1] + (i&1) ---
	li   r9, 3584
	sw   r0, 0(r9)
	li   r1, 1
tbl:
	li   r2, 16
	bge  r1, r2, tbldone
	srli r3, r1, 1
	add  r4, r9, r3
	lw   r5, 0(r4)
	andi r6, r1, 1
	add  r5, r5, r6
	add  r4, r9, r1
	sw   r5, 0(r4)
	addi r1, r1, 1
	j    tbl
tbldone:
	li   r30, 1024
	lw   r29, 0(r30)
	li   r28, 0            # kernighan total
	li   r26, 0            # shift total
	li   r25, 0            # SWAR total
	li   r24, 0            # table total
	li   r8, 0x55555555
	li   r7, 0x33333333
	li   r6, 0x0F0F0F0F
	li   r5, 0x01010101
	li   r27, 0
loop:
	bge  r27, r29, done
	add  r1, r30, r27
	lw   r10, 1(r1)
kern:
	beq  r10, r0, kdone
	addi r11, r10, -1
	and  r10, r10, r11
	addi r28, r28, 1
	j    kern
kdone:
	lw   r10, 1(r1)
shiftm:
	beq  r10, r0, sdone
	andi r13, r10, 1
	add  r26, r26, r13
	srli r10, r10, 1
	j    shiftm
sdone:
	# SWAR: v -= (v>>1)&0x5555...; pairwise, nibble, byte sums
	lw   r10, 1(r1)
	srli r11, r10, 1
	and  r11, r11, r8
	sub  r10, r10, r11
	srli r11, r10, 2
	and  r11, r11, r7
	and  r10, r10, r7
	add  r10, r10, r11
	srli r11, r10, 4
	add  r10, r10, r11
	and  r10, r10, r6
	mul  r10, r10, r5
	srli r10, r10, 24
	add  r25, r25, r10
	# nibble table: 8 lookups
	lw   r10, 1(r1)
	li   r12, 8
nib:
	beq  r12, r0, nibdone
	andi r13, r10, 15
	add  r13, r13, r9
	lw   r14, 0(r13)
	add  r24, r24, r14
	srli r10, r10, 4
	addi r12, r12, -1
	j    nib
nibdone:
	addi r27, r27, 1
	j    loop
done:
	li   r20, 4096
	sw   r28, 0(r20)
	sw   r26, 1(r20)
	sw   r25, 2(r20)
	sw   r24, 3(r20)
	halt
`
	const n = 160
	gen := func(scenario int) []uint32 {
		rng := rngFor("bitcount", scenario)
		// Bit density varies across datasets: sparse words shorten the
		// Kernighan loop, dense words lengthen it.
		xs := make([]uint32, n)
		for i := range xs {
			v := uint32(rng.Uint64())
			switch scenario % 3 {
			case 1:
				v &= uint32(rng.Uint64()) // sparse
			case 2:
				v |= uint32(rng.Uint64()) // dense
			}
			xs[i] = v
		}
		return xs
	}
	return Benchmark{
		Name: "bitcount", Category: "automotive",
		Prog:    isa.MustAssemble("bitcount", src),
		ScaleTo: 589_809_283,
		Setup: func(c *cpu.CPU, scenario int) error {
			xs := gen(scenario)
			c.SetMem(hdrBase, uint32(len(xs)))
			c.LoadWords(hdrBase+1, xs)
			return nil
		},
		Check: func(c *cpu.CPU, scenario int) error {
			xs := gen(scenario)
			var want uint32
			for _, x := range xs {
				for ; x != 0; x &= x - 1 {
					want++
				}
			}
			for i := 0; i < 4; i++ {
				if got := c.Mem(uint32(outBase + i)); got != want {
					return fmt.Errorf("method %d count = %d, want %d", i, got, want)
				}
			}
			return nil
		},
	}
}

// ----------------------------------------------------------------- dijkstra

func dijkstra() Benchmark {
	src := withLib(`
	# dijkstra: single-source shortest paths on a dense adjacency matrix
	# (weight 0 = no edge), O(n^2) scan-and-relax, with predecessor
	# tracking, a route walk-back from the last node, and a sorted-distance
	# report (insertion sort) as the route-table printout phase.
	li   r28, 1024
	lw   r29, 0(r28)        # n
	li   r27, 3072          # dist
	li   r26, 3584          # visited
	li   r25, 0x3FFFFFFF    # INF
	li   r1, 0
init:
	bge  r1, r29, initdone
	add  r2, r27, r1
	sw   r25, 0(r2)
	add  r2, r26, r1
	sw   r0, 0(r2)
	addi r1, r1, 1
	j    init
initdone:
	sw   r0, 0(r27)
	li   r24, 0
iter:
	bge  r24, r29, done
	li   r10, -1
	mv   r11, r25
	li   r1, 0
scan:
	bge  r1, r29, scandone
	add  r2, r26, r1
	lw   r3, 0(r2)
	bne  r3, r0, scannext
	add  r2, r27, r1
	lw   r3, 0(r2)
	bge  r3, r11, scannext
	mv   r11, r3
	mv   r10, r1
scannext:
	addi r1, r1, 1
	j    scan
scandone:
	blt  r10, r0, done
	add  r2, r26, r10
	li   r3, 1
	sw   r3, 0(r2)
	mul  r12, r10, r29
	li   r13, 2048
	add  r12, r12, r13
	li   r1, 0
relax:
	bge  r1, r29, relaxdone
	add  r2, r12, r1
	lw   r3, 0(r2)
	beq  r3, r0, relaxnext
	add  r4, r11, r3
	add  r5, r27, r1
	lw   r6, 0(r5)
	bge  r4, r6, relaxnext
	sw   r4, 0(r5)
	li   r6, 3840           # pred[v] = u
	add  r6, r6, r1
	sw   r10, 0(r6)
relaxnext:
	addi r1, r1, 1
	j    relax
relaxdone:
	addi r24, r24, 1
	j    iter
done:
	li   r1, 0
	li   r7, 0
sum:
	bge  r1, r29, out
	add  r2, r27, r1
	lw   r3, 0(r2)
	bge  r3, r25, sumnext
	add  r7, r7, r3
sumnext:
	addi r1, r1, 1
	j    sum
out:
	li   r20, 4096
	sw   r7, 0(r20)
	# --- route walk-back from node n-1 via predecessors ---
	addi r10, r29, -1       # cur = n-1
	li   r11, 0             # hops
	add  r2, r27, r10
	lw   r3, 0(r2)
	bge  r3, r25, walkdone  # unreachable: 0 hops
walk:
	beq  r10, r0, walkdone
	bge  r11, r29, walkdone # cycle guard
	li   r2, 3840
	add  r2, r2, r10
	lw   r10, 0(r2)
	addi r11, r11, 1
	j    walk
walkdone:
	sw   r11, 1(r20)
	# --- route-table report: sort a copy of the distances, take median ---
	li   r1, 0
copyd:
	bge  r1, r29, copydone
	add  r2, r27, r1
	lw   r3, 0(r2)
	li   r4, 3968
	add  r4, r4, r1
	sw   r3, 0(r4)
	addi r1, r1, 1
	j    copyd
copydone:
	li   r1, 3968
	mv   r2, r29
	jal  r31, sort
	srli r1, r29, 1
	li   r2, 3968
	add  r2, r2, r1
	lw   r3, 0(r2)
	sw   r3, 2(r20)
	halt
`, libSort)
	const n = 18
	gen := func(scenario int) [][]uint32 {
		rng := rngFor("dijkstra", scenario)
		// Graph density and weight magnitude vary across datasets.
		density := 0.15 + 0.06*float64(scenario%6)
		wmax := 8 << uint(scenario%5)
		adj := make([][]uint32, n)
		for i := range adj {
			adj[i] = make([]uint32, n)
			for j := range adj[i] {
				if i != j && rng.Float64() < density {
					adj[i][j] = uint32(1 + rng.Intn(wmax))
				}
			}
		}
		return adj
	}
	return Benchmark{
		Name: "dijkstra", Category: "network",
		Prog:    isa.MustAssemble("dijkstra", src),
		ScaleTo: 254_491_123,
		Setup: func(c *cpu.CPU, scenario int) error {
			adj := gen(scenario)
			c.SetMem(hdrBase, uint32(len(adj)))
			for i, row := range adj {
				c.LoadWords(uint32(inBase+i*len(adj)), row)
			}
			return nil
		},
		Check: func(c *cpu.CPU, scenario int) error {
			adj := gen(scenario)
			const inf = 0x3FFFFFFF
			nn := len(adj)
			dist := make([]uint32, nn)
			pred := make([]uint32, nn)
			visited := make([]bool, nn)
			for i := range dist {
				dist[i] = inf
			}
			dist[0] = 0
			for range adj {
				u, best := -1, uint32(inf)
				for i := range adj {
					if !visited[i] && dist[i] < best {
						best, u = dist[i], i
					}
				}
				if u < 0 {
					break
				}
				visited[u] = true
				for v, w := range adj[u] {
					if w != 0 && dist[u]+w < dist[v] {
						dist[v] = dist[u] + w
						pred[v] = uint32(u)
					}
				}
			}
			var want uint32
			for _, d := range dist {
				if d < inf {
					want += d
				}
			}
			if got := c.Mem(outBase); got != want {
				return fmt.Errorf("dijkstra checksum = %d, want %d", got, want)
			}
			// Route walk-back.
			var hops uint32
			if dist[nn-1] < inf {
				cur := uint32(nn - 1)
				for cur != 0 && hops < uint32(nn) {
					cur = pred[cur]
					hops++
				}
			}
			if got := c.Mem(outBase + 1); got != hops {
				return fmt.Errorf("hops = %d, want %d", got, hops)
			}
			// Sorted-distance median.
			sorted := make([]uint32, nn)
			copy(sorted, dist)
			for i := 1; i < nn; i++ { // insertion sort, same as the kernel
				key := sorted[i]
				j := i
				for j > 0 && key < sorted[j-1] {
					sorted[j] = sorted[j-1]
					j--
				}
				sorted[j] = key
			}
			if got := c.Mem(outBase + 2); got != sorted[nn/2] {
				return fmt.Errorf("median = %d, want %d", got, sorted[nn/2])
			}
			return nil
		},
	}
}

// ----------------------------------------------------------------- patricia

func patricia() Benchmark {
	src := `
	# patricia: radix (bit-trie) walks — each key descends a complete
	# depth-10 binary trie choosing children by successive key bits — plus
	# a longest-prefix-match phase over an 8-entry route table (prefix,
	# length pairs at 1536), the core patricia routing operation.
	li   r28, 1024
	lw   r29, 0(r28)
	li   r27, 0
	li   r26, 0
keys:
	bge  r27, r29, lpm
	add  r1, r28, r27
	lw   r10, 1(r1)
	li   r11, 0
	li   r12, 0
walk:
	slti r13, r11, 1023
	beq  r13, r0, leaf
	srl  r14, r10, r12
	andi r14, r14, 1
	slli r15, r11, 1
	addi r15, r15, 1
	add  r11, r15, r14
	addi r12, r12, 1
	j    walk
leaf:
	add  r26, r26, r11
	addi r27, r27, 1
	j    keys
lpm:
	li   r22, 0             # LPM checksum
	li   r21, 0             # default-route count
	li   r27, 0
lpmk:
	bge  r27, r29, done
	add  r1, r28, r27
	lw   r10, 1(r1)         # key
	li   r12, 0             # route index
	li   r13, 0             # best match length
lpmr:
	li   r1, 8
	bge  r12, r1, lpmrec
	slli r2, r12, 1
	li   r3, 1536
	add  r2, r2, r3
	lw   r4, 0(r2)          # route prefix
	lw   r5, 1(r2)          # prefix length (1..24)
	xor  r6, r10, r4
	li   r7, 32
	sub  r7, r7, r5
	srl  r6, r6, r7
	bne  r6, r0, lpmnext    # top bits differ
	bge  r13, r5, lpmnext   # not longer than current best
	mv   r13, r5
lpmnext:
	addi r12, r12, 1
	j    lpmr
lpmrec:
	add  r22, r22, r13
	bne  r13, r0, lpmhit
	addi r21, r21, 1        # no route: default
lpmhit:
	addi r27, r27, 1
	j    lpmk
done:
	li   r20, 4096
	sw   r26, 0(r20)
	sw   r22, 1(r20)
	sw   r21, 2(r20)
	halt
`
	const n = 64
	gen := func(scenario int) (keys []uint32, routes [][2]uint32) {
		rng := rngFor("patricia", scenario)
		// Address-bit bias varies (routing tables cluster prefixes).
		ones := 0.25 + 0.1*float64(scenario%6)
		keys = make([]uint32, n)
		for i := range keys {
			var v uint32
			for b := 0; b < 32; b++ {
				if rng.Float64() < ones {
					v |= 1 << uint(b)
				}
			}
			keys[i] = v
		}
		// Route table: prefixes derived from actual keys so lookups hit.
		routes = make([][2]uint32, 8)
		for i := range routes {
			l := uint32(4 + rng.Intn(21)) // 4..24
			base := keys[rng.Intn(n)]
			routes[i] = [2]uint32{base &^ ((1 << (32 - l)) - 1), l}
		}
		return keys, routes
	}
	return Benchmark{
		Name: "patricia", Category: "network",
		Prog:    isa.MustAssemble("patricia", src),
		ScaleTo: 1_167_201,
		Setup: func(c *cpu.CPU, scenario int) error {
			keys, routes := gen(scenario)
			c.SetMem(hdrBase, uint32(len(keys)))
			c.LoadWords(hdrBase+1, keys)
			for i, r := range routes {
				c.SetMem(uint32(patBase+2*i), r[0])
				c.SetMem(uint32(patBase+2*i+1), r[1])
			}
			return nil
		},
		Check: func(c *cpu.CPU, scenario int) error {
			keys, routes := gen(scenario)
			var want, lpm, defaults uint32
			for _, key := range keys {
				node := uint32(0)
				for depth := uint32(0); node < 1023; depth++ {
					bit := (key >> depth) & 1
					node = 2*node + 1 + bit
				}
				want += node
				var best uint32
				for _, r := range routes {
					if (key^r[0])>>(32-r[1]) == 0 && r[1] > best {
						best = r[1]
					}
				}
				lpm += best
				if best == 0 {
					defaults++
				}
			}
			if got := c.Mem(outBase); got != want {
				return fmt.Errorf("trie checksum = %d, want %d", got, want)
			}
			if got := c.Mem(outBase + 1); got != lpm {
				return fmt.Errorf("LPM checksum = %d, want %d", got, lpm)
			}
			if got := c.Mem(outBase + 2); got != defaults {
				return fmt.Errorf("default routes = %d, want %d", got, defaults)
			}
			return nil
		},
	}
}

// --------------------------------------------------------------- pgp encode

const pgpLCGA = 1103515245
const pgpLCGC = 12345

func pgpKeystream(seed uint32, n int) []uint32 {
	ks := make([]uint32, n)
	s := seed
	for i := range ks {
		s = s*pgpLCGA + pgpLCGC
		ks[i] = s >> 8
	}
	return ks
}

// pgpEncKeystream models pgp.encode's schedule+whitening variant.
func pgpEncKeystream(seed uint32, n int) []uint32 {
	s := seed
	for i := 0; i < 16; i++ {
		s = s*pgpLCGA + pgpLCGC
		s ^= s >> 13
		s ^= s << 7
	}
	ks := make([]uint32, n)
	for i := range ks {
		s = s*pgpLCGA + pgpLCGC
		k := s >> 8
		if i%2 == 1 {
			k = (k >> 5) ^ (k << 3)
		}
		ks[i] = k
	}
	return ks
}

func pgpEncode() Benchmark {
	src := `
	# pgp.encode: key schedule (16 mixing rounds), stream-cipher encryption
	# (LCG keystream XOR, with an extra whitening step on odd words), and a
	# running MAC over the ciphertext.
	li   r28, 1024
	lw   r29, 0(r28)        # n
	lw   r27, 1(r28)        # key
	li   r26, 2048          # plaintext
	li   r25, 3072          # ciphertext
	li   r22, 1103515245
	li   r21, 12345
	# --- key schedule: 16 avalanche rounds ---
	li   r24, 0
ksched:
	li   r1, 16
	bge  r24, r1, kdone
	mul  r27, r27, r22
	add  r27, r27, r21
	srli r2, r27, 13
	xor  r27, r27, r2
	slli r2, r27, 7
	xor  r27, r27, r2
	addi r24, r24, 1
	j    ksched
kdone:
	li   r24, 0
	li   r23, 0             # mac
loop:
	bge  r24, r29, done
	mul  r27, r27, r22
	add  r27, r27, r21
	srli r10, r27, 8
	andi r2, r24, 1
	beq  r2, r0, even
	# odd words get a whitening rotation of the keystream
	srli r3, r10, 5
	slli r4, r10, 3
	xor  r10, r3, r4
even:
	add  r1, r26, r24
	lw   r11, 0(r1)
	xor  r12, r11, r10
	add  r2, r25, r24
	sw   r12, 0(r2)
	add  r23, r23, r12
	xor  r23, r23, r24
	addi r24, r24, 1
	j    loop
done:
	li   r20, 4096
	sw   r23, 0(r20)
	# --- radix-64 armor: split the low 24 bits of each ciphertext word
	# into four 6-bit symbols, fold them into a rotating checksum ---
	li   r24, 0
	li   r19, 0             # armor checksum
armor:
	bge  r24, r29, crc
	add  r1, r25, r24
	lw   r10, 0(r1)
	li   r11, 4             # symbols per word
sym:
	beq  r11, r0, symdone
	andi r12, r10, 63
	srli r10, r10, 6
	slli r13, r19, 1
	srli r14, r19, 31
	or   r13, r13, r14      # rotate left 1
	add  r19, r13, r12
	addi r11, r11, -1
	j    sym
symdone:
	addi r24, r24, 1
	j    armor
crc:
	# --- CRC-24 (OpenPGP, poly 0x864CFB, init 0xB704CE) over the low byte
	# of each ciphertext word ---
	li   r18, 0xB704CE
	li   r17, 0x864CFB
	li   r16, 0x1000000
	li   r24, 0
crcloop:
	bge  r24, r29, crcdone
	add  r1, r25, r24
	lw   r10, 0(r1)
	andi r10, r10, 255
	slli r10, r10, 16
	xor  r18, r18, r10
	li   r11, 8
crcbit:
	beq  r11, r0, crcnext
	slli r18, r18, 1
	and  r12, r18, r16
	beq  r12, r0, crcskip
	xor  r18, r18, r17
crcskip:
	addi r11, r11, -1
	j    crcbit
crcnext:
	addi r24, r24, 1
	j    crcloop
crcdone:
	li   r1, 0xFFFFFF
	and  r18, r18, r1
	sw   r19, 1(r20)
	sw   r18, 2(r20)
	halt
`
	const n = 256
	gen := func(scenario int) (msg []uint32, key uint32) {
		rng := rngFor("pgp", scenario)
		// Message entropy varies: text-like narrow bytes vs wide binary.
		width := 8 + 2*(scenario%9)
		msg = make([]uint32, n)
		for i := range msg {
			msg[i] = uint32(rng.Intn(1 << uint(width)))
		}
		return msg, uint32(rng.Uint64())
	}
	return Benchmark{
		Name: "pgp.encode", Category: "security",
		Prog:    isa.MustAssemble("pgp.encode", src),
		ScaleTo: 782_002_182,
		Setup: func(c *cpu.CPU, scenario int) error {
			msg, key := gen(scenario)
			c.SetMem(hdrBase, uint32(len(msg)))
			c.SetMem(hdrBase+1, key)
			c.LoadWords(inBase, msg)
			return nil
		},
		Check: func(c *cpu.CPU, scenario int) error {
			msg, key := gen(scenario)
			ks := pgpEncKeystream(key, len(msg))
			var mac, armor uint32
			crc := uint32(0xB704CE)
			for i, m := range msg {
				ct := m ^ ks[i]
				if got := c.Mem(uint32(auxBase + i)); got != ct {
					return fmt.Errorf("ciphertext[%d] = %x, want %x", i, got, ct)
				}
				mac += ct
				mac ^= uint32(i)
				w := ct
				for s := 0; s < 4; s++ {
					armor = (armor<<1 | armor>>31) + (w & 63)
					w >>= 6
				}
				crc ^= (ct & 255) << 16
				for b := 0; b < 8; b++ {
					crc <<= 1
					if crc&0x1000000 != 0 {
						crc ^= 0x864CFB
					}
				}
			}
			crc &= 0xFFFFFF
			if got := c.Mem(outBase); got != mac {
				return fmt.Errorf("mac = %x, want %x", got, mac)
			}
			if got := c.Mem(outBase + 1); got != armor {
				return fmt.Errorf("armor checksum = %x, want %x", got, armor)
			}
			if got := c.Mem(outBase + 2); got != crc {
				return fmt.Errorf("crc24 = %x, want %x", got, crc)
			}
			return nil
		},
	}
}

func pgpDecode() Benchmark {
	src := `
	# pgp.decode: stream-cipher decryption followed by a verification pass
	# that parity-checks the recovered plaintext.
	li   r28, 1024
	lw   r29, 0(r28)
	lw   r27, 1(r28)
	li   r26, 2048          # ciphertext
	li   r25, 3072          # plaintext out
	li   r24, 0
	li   r22, 1103515245
	li   r21, 12345
loop:
	bge  r24, r29, verify
	mul  r27, r27, r22
	add  r27, r27, r21
	srli r10, r27, 8
	add  r1, r26, r24
	lw   r11, 0(r1)
	xor  r12, r11, r10
	add  r2, r25, r24
	sw   r12, 0(r2)
	addi r24, r24, 1
	j    loop
verify:
	li   r24, 0
	li   r23, 0             # parity accumulator
vloop:
	bge  r24, r29, done
	add  r1, r25, r24
	lw   r10, 0(r1)
parity:
	beq  r10, r0, pdone
	addi r11, r10, -1
	and  r10, r10, r11
	xori r23, r23, 1
	j    parity
pdone:
	addi r24, r24, 1
	j    vloop
done:
	li   r20, 4096
	sw   r23, 0(r20)
	# --- entropy screen: longest run of identical bits across the
	# recovered plaintext stream (a sanity check real decoders run to
	# detect wrong keys: random-looking output has short runs) ---
	li   r24, 0
	li   r22, 0             # current run
	li   r21, 0             # longest run
	li   r19, 2             # previous bit (invalid marker)
eloop:
	bge  r24, r29, edone
	add  r1, r25, r24
	lw   r10, 0(r1)
	li   r11, 32
ebits:
	beq  r11, r0, enext
	andi r12, r10, 1
	srli r10, r10, 1
	beq  r12, r19, esame
	mv   r19, r12
	li   r22, 1
	j    echeck
esame:
	addi r22, r22, 1
echeck:
	bge  r21, r22, ebnext
	mv   r21, r22
ebnext:
	addi r11, r11, -1
	j    ebits
enext:
	addi r24, r24, 1
	j    eloop
edone:
	sw   r21, 1(r20)
	halt
`
	const n = 192
	gen := func(scenario int) (ct []uint32, key uint32) {
		rng := rngFor("pgp.decode", scenario)
		width := 10 + 2*(scenario%8)
		msg := make([]uint32, n)
		for i := range msg {
			msg[i] = uint32(rng.Intn(1 << uint(width)))
		}
		key = uint32(rng.Uint64())
		ks := pgpKeystream(key, n)
		ct = make([]uint32, n)
		for i := range ct {
			ct[i] = msg[i] ^ ks[i]
		}
		return ct, key
	}
	return Benchmark{
		Name: "pgp.decode", Category: "security",
		Prog:    isa.MustAssemble("pgp.decode", src),
		ScaleTo: 212_201_598,
		Setup: func(c *cpu.CPU, scenario int) error {
			ct, key := gen(scenario)
			c.SetMem(hdrBase, uint32(len(ct)))
			c.SetMem(hdrBase+1, key)
			c.LoadWords(inBase, ct)
			return nil
		},
		Check: func(c *cpu.CPU, scenario int) error {
			ct, key := gen(scenario)
			ks := pgpKeystream(key, len(ct))
			var parity uint32
			for i := range ct {
				pt := ct[i] ^ ks[i]
				for x := pt; x != 0; x &= x - 1 {
					parity ^= 1
				}
			}
			if got := c.Mem(outBase); got != parity {
				return fmt.Errorf("parity = %d, want %d", got, parity)
			}
			// Longest identical-bit run across the plaintext stream.
			var longest, run uint32
			prev := uint32(2)
			for i := range ct {
				pt := ct[i] ^ ks[i]
				for b := 0; b < 32; b++ {
					bit := (pt >> uint(b)) & 1
					if bit == prev {
						run++
					} else {
						prev = bit
						run = 1
					}
					if run > longest {
						longest = run
					}
				}
			}
			if got := c.Mem(outBase + 1); got != longest {
				return fmt.Errorf("longest run = %d, want %d", got, longest)
			}
			return nil
		},
	}
}

// ------------------------------------------------------------------ tiff2bw

func tiff2bw() Benchmark {
	src := withLib(`
	# tiff2bw: packed-RGB to grayscale conversion with the ITU-style
	# fixed-point weights (77, 150, 29), a brightness threshold count, a
	# 16-bin histogram, min/max scan, contrast stretch (software divide),
	# and a 2x2 ordered-dither pass to 1-bit, as a real tiff2bw pipeline
	# performs before writing the bilevel image.
	li   r28, 1024
	lw   r29, 0(r28)
	li   r27, 2048
	li   r26, 3072
	li   r25, 0             # i
	li   r24, 0             # sum of gray
	li   r23, 0             # bright count
	li   r9, 77
	li   r8, 150
	li   r7, 29
loop:
	bge  r25, r29, histinit
	add  r1, r27, r25
	lw   r10, 0(r1)
	srli r11, r10, 16
	andi r11, r11, 255
	srli r12, r10, 8
	andi r12, r12, 255
	andi r13, r10, 255
	mul  r11, r11, r9
	mul  r12, r12, r8
	mul  r13, r13, r7
	add  r11, r11, r12
	add  r11, r11, r13
	srli r11, r11, 8
	add  r2, r26, r25
	sw   r11, 0(r2)
	add  r24, r24, r11
	slti r3, r11, 128
	bne  r3, r0, dim
	addi r23, r23, 1
dim:
	# histogram bin = gray >> 4 at 3584+bin
	srli r3, r11, 4
	li   r4, 3584
	add  r3, r3, r4
	lw   r5, 0(r3)
	addi r5, r5, 1
	sw   r5, 0(r3)
	addi r25, r25, 1
	j    loop
histinit:
	# min/max scan over the gray plane
	li   r22, 255           # min
	li   r21, 0             # max
	li   r25, 0
mmscan:
	bge  r25, r29, stretch
	add  r1, r26, r25
	lw   r10, 0(r1)
	bge  r10, r22, mm1
	mv   r22, r10
mm1:
	bge  r21, r10, mm2
	mv   r21, r10
mm2:
	addi r25, r25, 1
	j    mmscan
stretch:
	# out = (gray-min)*255 / (max-min+1), via the software divide
	sub  r20, r21, r22
	addi r20, r20, 1        # range
	li   r25, 0
	li   r19, 0             # stretched checksum
sloop:
	bge  r25, r29, dither
	add  r1, r26, r25
	lw   r10, 0(r1)
	sub  r1, r10, r22
	li   r2, 255
	mul  r1, r1, r2
	mv   r2, r20
	jal  r31, divu
	add  r2, r26, r25
	sw   r1, 0(r2)
	add  r19, r19, r1
	addi r25, r25, 1
	j    sloop
dither:
	# 2x2 ordered dither (Bayer thresholds 32,160,224,96 scaled to 0..255)
	li   r25, 0
	li   r18, 0             # black pixel count
dloop:
	bge  r25, r29, out
	add  r1, r26, r25
	lw   r10, 0(r1)
	andi r3, r25, 3
	li   r4, 32
	beq  r3, r0, dth
	li   r4, 160
	addi r5, r3, -1
	beq  r5, r0, dth
	li   r4, 224
	addi r5, r3, -2
	beq  r5, r0, dth
	li   r4, 96
dth:
	bge  r10, r4, dwhite
	addi r18, r18, 1
dwhite:
	addi r25, r25, 1
	j    dloop
out:
	li   r20, 4096
	sw   r24, 0(r20)
	sw   r23, 1(r20)
	sw   r19, 2(r20)
	sw   r18, 3(r20)
	# histogram checksum: sum of bin*index
	li   r25, 0
	li   r17, 0
hsum:
	li   r1, 16
	bge  r25, r1, fin
	li   r2, 3584
	add  r2, r2, r25
	lw   r3, 0(r2)
	mul  r3, r3, r25
	add  r17, r17, r3
	addi r25, r25, 1
	j    hsum
fin:
	sw   r17, 4(r20)
	halt
`, libDivu)
	const n = 300
	gen := func(scenario int) []uint32 {
		rng := rngFor("tiff2bw", scenario)
		// Images differ in brightness and contrast.
		base := 16 * (scenario % 9)
		span := 256 - base
		px := make([]uint32, n)
		for i := range px {
			r := uint32(base + rng.Intn(span))
			g := uint32(base + rng.Intn(span))
			b := uint32(base + rng.Intn(span))
			px[i] = r<<16 | g<<8 | b
		}
		return px
	}
	return Benchmark{
		Name: "tiff2bw", Category: "consumer",
		Prog:    isa.MustAssemble("tiff2bw", src),
		ScaleTo: 670_620_091,
		Setup: func(c *cpu.CPU, scenario int) error {
			px := gen(scenario)
			c.SetMem(hdrBase, uint32(len(px)))
			c.LoadWords(inBase, px)
			return nil
		},
		Check: func(c *cpu.CPU, scenario int) error {
			px := gen(scenario)
			var sum, bright, hist uint32
			grays := make([]uint32, len(px))
			bins := make([]uint32, 16)
			min, max := uint32(255), uint32(0)
			for i, p := range px {
				r, g, b := (p>>16)&255, (p>>8)&255, p&255
				gray := (77*r + 150*g + 29*b) >> 8
				grays[i] = gray
				sum += gray
				if gray >= 128 {
					bright++
				}
				bins[gray>>4]++
				if gray < min {
					min = gray
				}
				if gray > max {
					max = gray
				}
			}
			for i, n := range bins {
				hist += n * uint32(i)
			}
			rng := max - min + 1
			var stretched, black uint32
			thresholds := []uint32{32, 160, 224, 96}
			for i, g := range grays {
				s, _ := goDivu((g-min)*255, rng)
				stretched += s
				if s < thresholds[i&3] {
					black++
				}
			}
			for i, want := range []uint32{sum, bright, stretched, black, hist} {
				if got := c.Mem(uint32(outBase + i)); got != want {
					return fmt.Errorf("output %d = %d, want %d", i, got, want)
				}
			}
			return nil
		},
	}
}

// ------------------------------------------------------------------ typeset

func typeset() Benchmark {
	src := withLib(`
	# typeset: greedy line breaking over word widths with quadratic badness
	# (the classic paragraph-filling cost) at a 72-column measure, followed
	# by a justification pass that distributes each line's slack across its
	# inter-word gaps with the software divide, as a justifying typesetter
	# does. Per-line word counts and natural widths are recorded at 3072/
	# 3584 during breaking.
	li   r28, 1024
	lw   r29, 0(r28)
	li   r27, 2048
	li   r26, 0             # i
	li   r25, 0             # current line length
	li   r24, 0             # line index
	li   r23, 0             # badness
	li   r22, 0             # words on current line
	li   r9, 72
loop:
	bge  r26, r29, flush
	add  r1, r27, r26
	lw   r10, 0(r1)
	beq  r25, r0, first
	addi r11, r25, 1
	add  r11, r11, r10
	bge  r9, r11, fits
	# close the line: record words and width
	li   r1, 3072
	add  r1, r1, r24
	sw   r22, 0(r1)
	li   r1, 3584
	add  r1, r1, r24
	sw   r25, 0(r1)
	sub  r12, r9, r25       # slack
	mul  r13, r12, r12
	add  r23, r23, r13
	addi r24, r24, 1
	mv   r25, r10
	li   r22, 1
	j    next
fits:
	mv   r25, r11
	addi r22, r22, 1
	j    next
first:
	mv   r25, r10
	li   r22, 1
next:
	addi r26, r26, 1
	j    loop
flush:
	li   r1, 3072
	add  r1, r1, r24
	sw   r22, 0(r1)
	li   r1, 3584
	add  r1, r1, r24
	sw   r25, 0(r1)
	sub  r12, r9, r25
	mul  r13, r12, r12
	add  r23, r23, r13
	addi r24, r24, 1        # total lines
	li   r20, 4096
	sw   r24, 0(r20)
	sw   r23, 1(r20)
	# --- justification pass ---
	li   r26, 0             # line index
	li   r21, 0             # gap checksum
	li   r19, 0             # ragged count (lines that cannot justify)
just:
	bge  r26, r24, jdone
	li   r1, 3072
	add  r1, r1, r26
	lw   r10, 0(r1)         # words
	li   r1, 3584
	add  r1, r1, r26
	lw   r11, 0(r1)         # natural width
	addi r12, r10, -1       # gaps
	bne  r12, r0, canjust
	addi r19, r19, 1
	j    jnext
canjust:
	sub  r1, r9, r11        # extra columns
	mv   r2, r12
	jal  r31, divu          # per-gap extra in r1, remainder r2
	mul  r3, r1, r12
	add  r3, r3, r2         # distributed total must equal extra
	add  r21, r21, r3
	add  r21, r21, r1       # and fold the gap width itself
just_back:
jnext:
	addi r26, r26, 1
	j    just
jdone:
	sw   r21, 2(r20)
	sw   r19, 3(r20)
	halt
`, libDivu)
	const n = 220
	gen := func(scenario int) []uint32 {
		rng := rngFor("typeset", scenario)
		// Documents differ in vocabulary: short chat-like words vs long
		// technical ones change the lines/badness mix.
		maxw := 6 + 3*(scenario%8)
		ws := make([]uint32, n)
		for i := range ws {
			ws[i] = uint32(1 + rng.Intn(maxw))
		}
		return ws
	}
	return Benchmark{
		Name: "typeset", Category: "consumer",
		Prog:    isa.MustAssemble("typeset", src),
		ScaleTo: 66_490_215,
		Setup: func(c *cpu.CPU, scenario int) error {
			ws := gen(scenario)
			c.SetMem(hdrBase, uint32(len(ws)))
			c.LoadWords(inBase, ws)
			return nil
		},
		Check: func(c *cpu.CPU, scenario int) error {
			ws := gen(scenario)
			const measure = 72
			type line struct{ words, width uint32 }
			var lines []line
			cur, words, badness := uint32(0), uint32(0), uint32(0)
			for _, w := range ws {
				switch {
				case cur == 0:
					cur, words = w, 1
				case cur+1+w <= measure:
					cur += 1 + w
					words++
				default:
					lines = append(lines, line{words, cur})
					slack := measure - cur
					badness += slack * slack
					cur, words = w, 1
				}
			}
			lines = append(lines, line{words, cur})
			slack := measure - cur
			badness += slack * slack
			var gapSum, ragged uint32
			for _, l := range lines {
				gaps := l.words - 1
				if gaps == 0 {
					ragged++
					continue
				}
				per, rem := goDivu(measure-l.width, gaps)
				gapSum += per*gaps + rem + per
			}
			for i, want := range []uint32{uint32(len(lines)), badness, gapSum, ragged} {
				if got := c.Mem(uint32(outBase + i)); got != want {
					return fmt.Errorf("output %d = %d, want %d", i, got, want)
				}
			}
			return nil
		},
	}
}

// -------------------------------------------------------------- ghostscript

func ghostscript() Benchmark {
	src := `
	# ghostscript: rasterize a display list into a 64x64 bitmap — Bresenham
	# lines, midpoint circles (8-fold octant symmetry via the plot
	# subroutine), then a scanline pass counting horizontal edges, the
	# run-length structure a compositor consumes. Counts newly lit pixels.
	j    start
pixel:                      # pixel (r1, r2) wrapped to the 64x64 canvas
	andi r1, r1, 63
	andi r2, r2, 63
	slli r3, r2, 6
	add  r3, r3, r1
	li   r4, 8192
	add  r3, r3, r4
	lw   r5, 0(r3)
	bne  r5, r0, plotted
	addi r23, r23, 1
	li   r5, 1
	sw   r5, 0(r3)
plotted:
	jr   r26
start:
	li   r28, 1024
	lw   r29, 0(r28)        # number of lines
	li   r27, 0
	li   r23, 0             # pixels lit
lineloop:
	bge  r27, r29, done
	slli r1, r27, 2
	li   r2, 2048
	add  r1, r1, r2
	lw   r10, 0(r1)
	lw   r11, 1(r1)
	lw   r12, 2(r1)
	lw   r13, 3(r1)
	sub  r14, r12, r10
	bge  r14, r0, dxpos
	sub  r14, r0, r14
	li   r15, -1
	j    dy
dxpos:
	li   r15, 1
dy:
	sub  r16, r13, r11
	bge  r16, r0, dypos
	sub  r16, r0, r16
	li   r17, -1
	j    errinit
dypos:
	li   r17, 1
errinit:
	sub  r18, r14, r16
plot:
	slli r2, r11, 6
	add  r2, r2, r10
	li   r3, 8192
	add  r2, r2, r3
	lw   r4, 0(r2)
	bne  r4, r0, lit
	addi r23, r23, 1
lit:
	li   r4, 1
	sw   r4, 0(r2)
	bne  r10, r12, step
	beq  r11, r13, lnext
step:
	slli r5, r18, 1
	sub  r6, r0, r16
	bge  r6, r5, skipx
	sub  r18, r18, r16
	add  r10, r10, r15
skipx:
	bge  r5, r14, skipy
	add  r18, r18, r14
	add  r11, r11, r17
skipy:
	j    plot
lnext:
	addi r27, r27, 1
	j    lineloop
done:
	# --- midpoint circles ---
	lw   r9, 1(r28)         # number of circles
	li   r22, 0
circloop:
	bge  r22, r9, rowscan
	li   r1, 3
	mul  r2, r22, r1
	li   r3, 1792
	add  r2, r2, r3
	lw   r19, 0(r2)         # cx
	lw   r18, 1(r2)         # cy
	lw   r17, 2(r2)         # radius
	mv   r16, r17           # x = r
	li   r15, 0             # y = 0
	li   r14, 1
	sub  r14, r14, r17      # d = 1 - r
oct:
	blt  r16, r15, cnext    # run while y <= x
	add  r1, r19, r16
	add  r2, r18, r15
	jal  r26, pixel
	sub  r1, r19, r16
	add  r2, r18, r15
	jal  r26, pixel
	add  r1, r19, r16
	sub  r2, r18, r15
	jal  r26, pixel
	sub  r1, r19, r16
	sub  r2, r18, r15
	jal  r26, pixel
	add  r1, r19, r15
	add  r2, r18, r16
	jal  r26, pixel
	sub  r1, r19, r15
	add  r2, r18, r16
	jal  r26, pixel
	add  r1, r19, r15
	sub  r2, r18, r16
	jal  r26, pixel
	sub  r1, r19, r15
	sub  r2, r18, r16
	jal  r26, pixel
	addi r15, r15, 1
	bge  r14, r0, dpos
	slli r3, r15, 1
	addi r3, r3, 1
	add  r14, r14, r3
	j    oct
dpos:
	addi r16, r16, -1
	sub  r3, r15, r16
	slli r3, r3, 1
	addi r3, r3, 1
	add  r14, r14, r3
	j    oct
cnext:
	addi r22, r22, 1
	j    circloop
rowscan:
	# --- horizontal edge count per scanline ---
	li   r22, 0             # transitions
	li   r15, 0             # y
rowy:
	li   r1, 64
	bge  r15, r1, gdone
	li   r14, 0             # previous pixel
	li   r16, 0             # x
rowx:
	li   r1, 64
	bge  r16, r1, rownext
	slli r2, r15, 6
	add  r2, r2, r16
	li   r3, 8192
	add  r2, r2, r3
	lw   r4, 0(r2)
	beq  r4, r14, rsame
	addi r22, r22, 1
	mv   r14, r4
rsame:
	addi r16, r16, 1
	j    rowx
rownext:
	addi r15, r15, 1
	j    rowy
gdone:
	li   r20, 4096
	sw   r23, 0(r20)
	sw   r22, 1(r20)
	halt
`
	const (
		lines   = 40
		circles = 10
	)
	gen := func(scenario int) (ls [][4]uint32, cs [][3]uint32) {
		rng := rngFor("ghostscript", scenario)
		// Display lists differ in stroke length: detail work vs long rules.
		box := 8 << uint(scenario%4) // 8..64
		if box > 64 {
			box = 64
		}
		ls = make([][4]uint32, lines)
		for i := range ls {
			x := rng.Intn(64 - box + 1)
			y := rng.Intn(64 - box + 1)
			ls[i][0] = uint32(x + rng.Intn(box))
			ls[i][1] = uint32(y + rng.Intn(box))
			ls[i][2] = uint32(x + rng.Intn(box))
			ls[i][3] = uint32(y + rng.Intn(box))
		}
		cs = make([][3]uint32, circles)
		for i := range cs {
			cs[i][0] = uint32(8 + rng.Intn(48))
			cs[i][1] = uint32(8 + rng.Intn(48))
			cs[i][2] = uint32(2 + rng.Intn(6))
		}
		return ls, cs
	}
	return Benchmark{
		Name: "ghostscript", Category: "office",
		Prog:    isa.MustAssemble("ghostscript", src),
		ScaleTo: 743_108_760,
		Setup: func(c *cpu.CPU, scenario int) error {
			ls, cs := gen(scenario)
			c.SetMem(hdrBase, uint32(len(ls)))
			c.SetMem(hdrBase+1, uint32(len(cs)))
			for i, l := range ls {
				c.LoadWords(uint32(inBase+4*i), l[:])
			}
			for i, cc := range cs {
				c.LoadWords(uint32(1792+3*i), cc[:])
			}
			return nil
		},
		Check: func(c *cpu.CPU, scenario int) error {
			ls, cs := gen(scenario)
			var bmp [64][64]bool
			var lit uint32
			plot := func(x, y int) {
				x &= 63
				y &= 63
				if !bmp[y][x] {
					bmp[y][x] = true
					lit++
				}
			}
			for _, l := range ls {
				x0, y0, x1, y1 := int(l[0]), int(l[1]), int(l[2]), int(l[3])
				dx, sx := abs(x1-x0), sign(x1-x0)
				dy, sy := abs(y1-y0), sign(y1-y0)
				err := dx - dy
				for {
					plot(x0, y0)
					if x0 == x1 && y0 == y1 {
						break
					}
					e2 := 2 * err
					if e2 > -dy {
						err -= dy
						x0 += sx
					}
					if e2 < dx {
						err += dx
						y0 += sy
					}
				}
			}
			for _, cc := range cs {
				cx, cy, r := int(cc[0]), int(cc[1]), int(cc[2])
				x, y, d := r, 0, 1-r
				for y <= x {
					plot(cx+x, cy+y)
					plot(cx-x, cy+y)
					plot(cx+x, cy-y)
					plot(cx-x, cy-y)
					plot(cx+y, cy+x)
					plot(cx-y, cy+x)
					plot(cx+y, cy-x)
					plot(cx-y, cy-x)
					y++
					if d < 0 {
						d += 2*y + 1
					} else {
						x--
						d += 2*(y-x) + 1
					}
				}
			}
			var edges uint32
			for y := 0; y < 64; y++ {
				prev := false
				for x := 0; x < 64; x++ {
					if bmp[y][x] != prev {
						edges++
						prev = bmp[y][x]
					}
				}
			}
			if got := c.Mem(outBase); got != lit {
				return fmt.Errorf("lit pixels = %d, want %d", got, lit)
			}
			if got := c.Mem(outBase + 1); got != edges {
				return fmt.Errorf("edges = %d, want %d", got, edges)
			}
			return nil
		},
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sign(x int) int {
	if x < 0 {
		return -1
	}
	return 1
}

// ------------------------------------------------------------- stringsearch

func stringsearch() Benchmark {
	src := `
	# stringsearch: count pattern occurrences twice — a naive
	# character-compare scan, then a Boyer-Moore-Horspool search with a
	# bad-character skip table (built at 3584) — and store both counts so
	# they cross-check. One character per word.
	li   r28, 1024
	lw   r29, 0(r28)        # text length
	lw   r27, 1(r28)        # pattern length
	li   r26, 0
	li   r25, 0
	sub  r24, r29, r27
	addi r24, r24, 1
outer:
	bge  r26, r24, hbuild
	li   r1, 0
inner:
	bge  r1, r27, match
	add  r2, r26, r1
	li   r3, 2048
	add  r2, r2, r3
	lw   r4, 0(r2)
	li   r3, 1536
	add  r5, r3, r1
	lw   r6, 0(r5)
	bne  r4, r6, nomatch
	addi r1, r1, 1
	j    inner
match:
	addi r25, r25, 1
nomatch:
	addi r26, r26, 1
	j    outer
hbuild:
	# skip table: default = patlen for 128 character slots
	li   r1, 0
	li   r2, 3584
hinit:
	li   r3, 128
	bge  r1, r3, hfill
	add  r3, r2, r1
	sw   r27, 0(r3)
	addi r1, r1, 1
	j    hinit
hfill:
	# for j in 0..patlen-2: skip[pat[j]] = patlen-1-j
	li   r1, 0
	addi r4, r27, -1        # patlen-1
hfloop:
	bge  r1, r4, hsearch
	li   r3, 1536
	add  r3, r3, r1
	lw   r5, 0(r3)          # pat[j]
	sub  r6, r4, r1         # patlen-1-j
	add  r3, r2, r5
	sw   r6, 0(r3)
	addi r1, r1, 1
	j    hfloop
hsearch:
	li   r23, 0             # horspool match count
	li   r26, 0             # window start
	sub  r24, r29, r27      # last valid start
hloop:
	blt  r24, r26, hdone
	# compare window right-to-left
	addi r1, r27, -1
hcmp:
	blt  r1, r0, hmatch
	add  r2, r26, r1
	li   r3, 2048
	add  r2, r2, r3
	lw   r4, 0(r2)
	li   r3, 1536
	add  r5, r3, r1
	lw   r6, 0(r5)
	bne  r4, r6, hshift
	addi r1, r1, -1
	j    hcmp
hmatch:
	addi r23, r23, 1
	addi r26, r26, 1
	j    hloop
hshift:
	# shift by skip[text[start+patlen-1]]
	addi r1, r27, -1
	add  r2, r26, r1
	li   r3, 2048
	add  r2, r2, r3
	lw   r4, 0(r2)
	li   r3, 3584
	add  r3, r3, r4
	lw   r5, 0(r3)
	add  r26, r26, r5
	j    hloop
hdone:
	li   r20, 4096
	sw   r25, 0(r20)
	sw   r23, 1(r20)
	halt
`
	const (
		textLen = 360
		patLen  = 3
	)
	gen := func(scenario int) (text, pat []uint32) {
		rng := rngFor("stringsearch", scenario)
		// Alphabet size controls match/mismatch ratios across datasets.
		alpha := 2 + scenario%6
		text = make([]uint32, textLen)
		for i := range text {
			text[i] = uint32(97 + rng.Intn(alpha))
		}
		pat = make([]uint32, patLen)
		for i := range pat {
			pat[i] = uint32(97 + rng.Intn(alpha))
		}
		return text, pat
	}
	return Benchmark{
		Name: "stringsearch", Category: "office",
		Prog:    isa.MustAssemble("stringsearch", src),
		ScaleTo: 27_984_283,
		Setup: func(c *cpu.CPU, scenario int) error {
			text, pat := gen(scenario)
			c.SetMem(hdrBase, uint32(len(text)))
			c.SetMem(hdrBase+1, uint32(len(pat)))
			c.LoadWords(inBase, text)
			c.LoadWords(patBase, pat)
			return nil
		},
		Check: func(c *cpu.CPU, scenario int) error {
			text, pat := gen(scenario)
			var want uint32
			for i := 0; i+len(pat) <= len(text); i++ {
				ok := true
				for j := range pat {
					if text[i+j] != pat[j] {
						ok = false
						break
					}
				}
				if ok {
					want++
				}
			}
			if got := c.Mem(outBase); got != want {
				return fmt.Errorf("naive matches = %d, want %d", got, want)
			}
			if got := c.Mem(outBase + 1); got != want {
				return fmt.Errorf("horspool matches = %d, want %d (naive agrees)", got, want)
			}
			return nil
		},
	}
}

// --------------------------------------------------------------- gsm encode

func gsmEncode() Benchmark {
	src := `
	# gsm.encode: fixed-point short-term analysis — preemphasis filter
	# (s[i] = x[i] - 28180*x[i-1] >> 15, GSM 06.10), autocorrelation lags
	# 0..3 with Q10 scaling, logarithmic reflection-coefficient quantization
	# into a packed code word, and per-subframe RPE grid selection (the
	# 3-phase max-energy search over 40-sample subframes).
	li   r28, 1024
	lw   r29, 0(r28)        # samples
	li   r27, 2048
	# --- preemphasis, in place ---
	li   r9, 28180
	li   r26, 0
	li   r10, 0             # x[i-1]
pre:
	bge  r26, r29, preDone
	add  r1, r27, r26
	lw   r11, 0(r1)
	mul  r12, r10, r9
	srai r12, r12, 15
	sub  r13, r11, r12
	sw   r13, 0(r1)
	mv   r10, r11
	addi r26, r26, 1
	j    pre
preDone:
	li   r26, 0             # lag k
	li   r25, 3072
acfk:
	li   r1, 4
	bge  r26, r1, quant
	li   r10, 0
	li   r11, 0
	sub  r12, r29, r26
acfi:
	bge  r11, r12, acfdone
	add  r2, r27, r11
	lw   r3, 0(r2)
	add  r4, r11, r26
	add  r4, r27, r4
	lw   r5, 0(r4)
	mul  r6, r3, r5
	srai r6, r6, 10
	add  r10, r10, r6
	addi r11, r11, 1
	j    acfi
acfdone:
	add  r2, r25, r26
	sw   r10, 0(r2)
	addi r26, r26, 1
	j    acfk
quant:
	lw   r10, 0(r25)
	addi r10, r10, 1
	li   r26, 1
	li   r24, 0
qloop:
	li   r1, 4
	bge  r26, r1, done
	add  r2, r25, r26
	lw   r11, 0(r2)
	bge  r11, r0, qpos
	sub  r11, r0, r11
qpos:
	li   r12, 0
qshift:
	bge  r11, r10, qdone
	li   r1, 7
	bge  r12, r1, qdone
	slli r11, r11, 1
	addi r12, r12, 1
	j    qshift
qdone:
	slli r24, r24, 3
	add  r24, r24, r12
	addi r26, r26, 1
	j    qloop
done:
	li   r20, 4096
	sw   r24, 0(r20)
	# --- RPE grid selection: 4 subframes of 40 samples; per subframe pick
	# the decimation phase (0..2) whose 13-tap grid has the most energy ---
	li   r23, 0             # subframe index
	li   r22, 0             # packed grid selections
	li   r21, 0             # Vmax accumulator
sub4:
	li   r1, 4
	bge  r23, r1, gridDone
	li   r19, 40
	mul  r18, r23, r19      # subframe base offset
	li   r17, 0             # best energy
	li   r16, 0             # best phase
	li   r15, 0             # phase
phase3:
	li   r1, 3
	bge  r15, r1, phDone
	li   r14, 0             # energy
	mv   r13, r15           # sample index = phase
grid:
	bge  r13, r19, gridSum
	add  r1, r18, r13
	add  r1, r27, r1
	lw   r2, 0(r1)
	srai r3, r2, 3
	mul  r3, r3, r3
	srai r3, r3, 4
	add  r14, r14, r3
	addi r13, r13, 3
	j    grid
gridSum:
	bge  r17, r14, phNext   # keep best
	mv   r17, r14
	mv   r16, r15
phNext:
	addi r15, r15, 1
	j    phase3
phDone:
	slli r22, r22, 2
	add  r22, r22, r16
	# Vmax of the chosen grid
	li   r12, 0             # vmax
	mv   r13, r16
vmax:
	bge  r13, r19, vDone
	add  r1, r18, r13
	add  r1, r27, r1
	lw   r2, 0(r1)
	bge  r2, r0, vpos
	sub  r2, r0, r2
vpos:
	bge  r12, r2, vNext
	mv   r12, r2
vNext:
	addi r13, r13, 3
	j    vmax
vDone:
	add  r21, r21, r12
	addi r23, r23, 1
	j    sub4
gridDone:
	sw   r22, 1(r20)
	sw   r21, 2(r20)
	halt
`
	const n = 160 // one GSM frame
	gen := func(scenario int) []uint32 {
		rng := rngFor("gsm.encode", scenario)
		xs := make([]uint32, n)
		// Smooth-ish waveform: random walk clamped to +-2047 (13-bit PCM),
		// with loudness varying across datasets (whisper to shout).
		step := 50 << uint(scenario%4)
		v := 0
		for i := range xs {
			v += rng.Intn(2*step+1) - step
			if v > 2047 {
				v = 2047
			}
			if v < -2047 {
				v = -2047
			}
			xs[i] = uint32(int32(v))
		}
		return xs
	}
	acf := func(xs []int32, k int) int32 {
		var acc int32
		for i := 0; i+k < len(xs); i++ {
			acc += xs[i] * xs[i+k] >> 10
		}
		return acc
	}
	preemph := func(raw []uint32) []int32 {
		out := make([]int32, len(raw))
		var prev int32
		for i, v := range raw {
			x := int32(v)
			out[i] = x - (prev*28180)>>15
			prev = x
		}
		return out
	}
	return Benchmark{
		Name: "gsm.encode", Category: "telecomm",
		Prog:    isa.MustAssemble("gsm.encode", src),
		ScaleTo: 473_017_210,
		Setup: func(c *cpu.CPU, scenario int) error {
			xs := gen(scenario)
			c.SetMem(hdrBase, uint32(len(xs)))
			c.LoadWords(inBase, xs)
			return nil
		},
		Check: func(c *cpu.CPU, scenario int) error {
			s := preemph(gen(scenario))
			a0 := acf(s, 0) + 1
			var code uint32
			for k := 1; k < 4; k++ {
				ak := acf(s, k)
				if ak < 0 {
					ak = -ak
				}
				level := uint32(0)
				for ak < a0 && level < 7 {
					ak <<= 1
					level++
				}
				code = code<<3 + level
			}
			if got := c.Mem(outBase); got != code {
				return fmt.Errorf("code = %d, want %d", got, code)
			}
			// RPE grid selection per 40-sample subframe.
			var grids, vsum uint32
			for sf := 0; sf < 4; sf++ {
				base := 40 * sf
				bestE, bestP := int32(-1), 0
				for ph := 0; ph < 3; ph++ {
					var energy int32
					for i := ph; i < 40; i += 3 {
						v := s[base+i] >> 3
						energy += (v * v) >> 4
					}
					if energy > bestE {
						bestE, bestP = energy, ph
					}
				}
				grids = grids<<2 + uint32(bestP)
				var vmax int32
				for i := bestP; i < 40; i += 3 {
					v := s[base+i]
					if v < 0 {
						v = -v
					}
					if v > vmax {
						vmax = v
					}
				}
				vsum += uint32(vmax)
			}
			if got := c.Mem(outBase + 1); got != grids {
				return fmt.Errorf("grid selections = %d, want %d", got, grids)
			}
			if got := c.Mem(outBase + 2); got != vsum {
				return fmt.Errorf("vmax sum = %d, want %d", got, vsum)
			}
			return nil
		},
	}
}

// --------------------------------------------------------------- gsm decode

func gsmDecode() Benchmark {
	src := `
	# gsm.decode: APCM block dequantization (per-16-sample xmax gain),
	# fixed-point short-term synthesis y[i] = sat13((y[i-1]*coef >> 8) +
	# e[i]) with 13-bit saturation, de-emphasis filtering, and
	# zero-crossing counting — the back half of a GSM 06.10 decoder.
	li   r28, 1024
	lw   r29, 0(r28)        # residual samples
	lw   r9, 1(r28)         # coefficient (Q8)
	li   r27, 2048          # residual
	li   r25, 3072          # output
	# --- APCM dequantization: per 16-sample block, gain = xmax>>4 + 1,
	# v = (v*gain)>>4 ---
	li   r26, 0             # block start
	li   r22, 0             # gain checksum
dq:
	bge  r26, r29, dqdone
	li   r10, 0             # xmax
	mv   r11, r26
	addi r12, r26, 16
	blt  r12, r29, dqm
	mv   r12, r29
dqm:
	bge  r11, r12, dqg
	add  r1, r27, r11
	lw   r2, 0(r1)
	bge  r2, r0, dqp
	sub  r2, r0, r2
dqp:
	bge  r10, r2, dqn
	mv   r10, r2
dqn:
	addi r11, r11, 1
	j    dqm
dqg:
	srai r13, r10, 4
	addi r13, r13, 1        # gain
	add  r22, r22, r13
	mv   r11, r26
dqs:
	bge  r11, r12, dqnext
	add  r1, r27, r11
	lw   r2, 0(r1)
	mul  r2, r2, r13
	srai r2, r2, 4
	sw   r2, 0(r1)
	addi r11, r11, 1
	j    dqs
dqnext:
	addi r26, r26, 16
	j    dq
dqdone:
	# --- short-term synthesis with saturation ---
	li   r26, 0
	li   r10, 0             # y[i-1]
	li   r23, 0             # energy
	li   r8, 2047           # +saturation
	li   r7, -2047          # -saturation
synth:
	bge  r26, r29, deemph
	mul  r11, r10, r9
	srai r11, r11, 8
	add  r2, r27, r26
	lw   r12, 0(r2)
	add  r10, r11, r12
	blt  r10, r8, nosatp    # saturate above
	mv   r10, r8
nosatp:
	bge  r10, r7, nosatn    # saturate below
	mv   r10, r7
nosatn:
	add  r2, r25, r26
	sw   r10, 0(r2)
	bge  r10, r0, posy
	sub  r13, r0, r10
	j    acc
posy:
	mv   r13, r10
acc:
	srai r14, r13, 4
	mul  r14, r14, r14
	srai r14, r14, 6
	add  r23, r23, r14
	addi r26, r26, 1
	j    synth
deemph:
	# --- de-emphasis y[i] += (28180*y[i-1])>>15, with zero-crossing count ---
	li   r26, 0
	li   r21, 0             # zero crossings
	li   r19, 0             # previous de-emphasized sample
	li   r18, 0             # previous sign (0 = non-negative)
	li   r6, 28180
dloop:
	bge  r26, r29, ddone
	add  r2, r25, r26
	lw   r10, 0(r2)
	mul  r11, r19, r6
	srai r11, r11, 15
	add  r10, r10, r11
	blt  r10, r8, dns1
	mv   r10, r8
dns1:
	bge  r10, r7, dns2
	mv   r10, r7
dns2:
	sw   r10, 0(r2)
	mv   r19, r10
	# sign tracking: crossing when sign changes
	li   r12, 0
	bge  r10, r0, dsg
	li   r12, 1
dsg:
	beq  r12, r18, dnx
	addi r21, r21, 1
	mv   r18, r12
dnx:
	addi r26, r26, 1
	j    dloop
ddone:
	li   r20, 4096
	sw   r23, 0(r20)
	sw   r19, 1(r20)
	sw   r22, 2(r20)
	sw   r21, 3(r20)
	halt
`
	const n = 160
	gen := func(scenario int) (res []uint32, coef uint32) {
		rng := rngFor("gsm.decode", scenario)
		// Residual energy and filter pole vary across utterances; loud
		// frames drive the filter into saturation regularly.
		amp := 200 << uint(scenario%4)
		res = make([]uint32, n)
		for i := range res {
			res[i] = uint32(int32(rng.Intn(2*amp+1) - amp))
		}
		return res, uint32(160 + rng.Intn(80))
	}
	return Benchmark{
		Name: "gsm.decode", Category: "telecomm",
		Prog:    isa.MustAssemble("gsm.decode", src),
		ScaleTo: 497_219_812,
		Setup: func(c *cpu.CPU, scenario int) error {
			res, coef := gen(scenario)
			c.SetMem(hdrBase, uint32(len(res)))
			c.SetMem(hdrBase+1, coef)
			c.LoadWords(inBase, res)
			return nil
		},
		Check: func(c *cpu.CPU, scenario int) error {
			res, coef := gen(scenario)
			sat := func(v int32) int32 {
				if v > 2047 {
					return 2047
				}
				if v < -2047 {
					return -2047
				}
				return v
			}
			// APCM dequantization.
			deq := make([]int32, len(res))
			var gains uint32
			for b := 0; b < len(res); b += 16 {
				end := b + 16
				if end > len(res) {
					end = len(res)
				}
				var xmax int32
				for i := b; i < end; i++ {
					v := int32(res[i])
					if v < 0 {
						v = -v
					}
					if v > xmax {
						xmax = v
					}
				}
				gain := xmax>>4 + 1
				gains += uint32(gain)
				for i := b; i < end; i++ {
					deq[i] = (int32(res[i]) * gain) >> 4
				}
			}
			// Synthesis.
			var y, energy int32
			out := make([]int32, len(res))
			for i, e := range deq {
				y = sat((y*int32(coef))>>8 + e)
				out[i] = y
				a := y
				if a < 0 {
					a = -a
				}
				q := a >> 4
				energy += (q * q) >> 6
			}
			// De-emphasis and zero crossings.
			var prev int32
			prevSign := false
			var zc uint32
			for i := range out {
				v := sat(out[i] + (prev*28180)>>15)
				out[i] = v
				prev = v
				sign := v < 0
				if sign != prevSign {
					zc++
					prevSign = sign
				}
			}
			if got := c.Mem(outBase); got != uint32(energy) {
				return fmt.Errorf("energy = %d, want %d", int32(got), energy)
			}
			if got := c.Mem(outBase + 1); got != uint32(prev) {
				return fmt.Errorf("final sample = %d, want %d", int32(got), prev)
			}
			if got := c.Mem(outBase + 2); got != gains {
				return fmt.Errorf("gain checksum = %d, want %d", got, gains)
			}
			if got := c.Mem(outBase + 3); got != zc {
				return fmt.Errorf("zero crossings = %d, want %d", got, zc)
			}
			return nil
		},
	}
}
