package gen

import (
	"testing"

	"tsperr/internal/activity"
	"tsperr/internal/cell"
	"tsperr/internal/cpu"
	"tsperr/internal/isa"
	"tsperr/internal/netlist"
	"tsperr/internal/sta"
	"tsperr/internal/variation"
)

func TestControlValidatesAndHasEndpoints(t *testing.T) {
	c := Control()
	if err := c.N.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := 0; s < cpu.NumStages; s++ {
		eps := c.N.Endpoints(s)
		if len(eps) == 0 {
			t.Errorf("stage %d has no endpoints", s)
		}
		total += len(eps)
		for _, ep := range eps {
			if c.N.Gate(ep).Data {
				t.Errorf("control network endpoint %q marked as data", c.N.Gate(ep).Name)
			}
		}
	}
	if total < 60 {
		t.Errorf("control network suspiciously small: %d endpoints", total)
	}
	if c.N.NumGates() < 400 {
		t.Errorf("control network has only %d gates", c.N.NumGates())
	}
}

// setWord drives 32 input gates with the bits of w.
func setWord(in map[netlist.GateID]bool, gates [32]netlist.GateID, w uint32) {
	for i := 0; i < 32; i++ {
		in[gates[i]] = (w>>uint(i))&1 == 1
	}
}

func findGate(n *netlist.Netlist, name string) netlist.GateID {
	for i := range n.Gates() {
		if n.Gates()[i].Name == name {
			return netlist.GateID(i)
		}
	}
	panic("gate not found: " + name)
}

func TestControlDecodeLogic(t *testing.T) {
	c := Control()
	sim, err := activity.NewSimulator(c.N)
	if err != nil {
		t.Fatal(err)
	}
	addWord := isa.Inst{Op: isa.OpAdd, Rd: 3, Rs1: 1, Rs2: 2}.Encode()
	lwWord := isa.Inst{Op: isa.OpLw, Rd: 4, Rs1: 3, Imm: 8}.Encode()

	in := map[netlist.GateID]bool{}
	setWord(in, c.Instr, addWord)
	sim.Cycle(in) // cycle 1: add enters IR inputs
	sim.Cycle(in) // cycle 2: IR holds add, decode settles

	isRFF := findGate(c.N, "dec_isR_ff")
	isLdFF := findGate(c.N, "dec_isLd_ff")
	// The decoded value is at the FF's D pin now; after one more edge it is
	// captured. Check the combinational decode directly via the FF's fanin.
	dR := c.N.Gate(isRFF).Fanin[0]
	dLd := c.N.Gate(isLdFF).Fanin[0]
	if !sim.Value(dR) {
		t.Error("add should decode as R-type")
	}
	if sim.Value(dLd) {
		t.Error("add should not decode as load")
	}

	setWord(in, c.Instr, lwWord)
	sim.Cycle(in)
	sim.Cycle(in)
	if sim.Value(dR) {
		t.Error("lw should not decode as R-type")
	}
	if !sim.Value(dLd) {
		t.Error("lw should decode as load")
	}
}

func TestControlActivityDependsOnInstructionSequence(t *testing.T) {
	c := Control()
	sim, _ := activity.NewSimulator(c.N)
	in := map[netlist.GateID]bool{}
	// Alternate two very different instructions: lots of decode activity.
	w1 := isa.Inst{Op: isa.OpAdd, Rd: 3, Rs1: 1, Rs2: 2}.Encode()
	w2 := isa.Inst{Op: isa.OpBeq, Rs1: 7, Rs2: 9, Imm: -4}.Encode()
	busy := 0
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			setWord(in, c.Instr, w1)
		} else {
			setWord(in, c.Instr, w2)
		}
		busy += sim.Cycle(in).Count()
	}
	sim.Reset()
	// Repeat one instruction: after warmup little should toggle.
	quiet := 0
	setWord(in, c.Instr, w1)
	for i := 0; i < 10; i++ {
		s := sim.Cycle(in)
		if i >= 3 {
			quiet += s.Count()
		}
	}
	if quiet*3 >= busy {
		t.Errorf("steady instruction stream should activate far fewer gates: busy=%d quiet=%d", busy, quiet)
	}
}

func TestAdderFunctional(t *testing.T) {
	ad := Adder()
	if err := ad.N.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, _ := activity.NewSimulator(ad.N)
	cases := []struct{ a, b uint32 }{
		{0, 0}, {1, 1}, {0xFFFFFFFF, 1}, {12345, 67890}, {0x80000000, 0x80000000},
	}
	for _, tc := range cases {
		in := map[netlist.GateID]bool{}
		setWord(in, ad.A, tc.a)
		setWord(in, ad.B, tc.b)
		sim.Cycle(in)
		var got uint32
		for i := 0; i < 32; i++ {
			if sim.Value(ad.N.Gate(ad.Sum[i]).Fanin[0]) {
				got |= 1 << uint(i)
			}
		}
		if got != tc.a+tc.b {
			t.Errorf("adder(%x,%x) = %x, want %x", tc.a, tc.b, got, tc.a+tc.b)
		}
	}
}

func TestAdderActivationTracksCarryChain(t *testing.T) {
	ad := Adder()
	sim, _ := activity.NewSimulator(ad.N)
	in := map[netlist.GateID]bool{}
	setWord(in, ad.A, 0)
	setWord(in, ad.B, 0)
	sim.Cycle(in)
	sim.Cycle(in)
	// Short carry: 1+1 toggles only the low bits.
	setWord(in, ad.A, 1)
	setWord(in, ad.B, 1)
	short := sim.Cycle(in).Count()
	// Reset to zero, settle, then a full-length carry chain.
	setWord(in, ad.A, 0)
	setWord(in, ad.B, 0)
	sim.Cycle(in)
	setWord(in, ad.A, 0xFFFFFFFF)
	setWord(in, ad.B, 1)
	long := sim.Cycle(in).Count()
	if long <= short {
		t.Errorf("long carry chain should activate more gates: short=%d long=%d", short, long)
	}
}

func TestShifterFunctional(t *testing.T) {
	sh := Shifter()
	if err := sh.N.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, _ := activity.NewSimulator(sh.N)
	cases := []struct {
		v   uint32
		amt uint32
	}{
		{0xDEADBEEF, 0}, {0xDEADBEEF, 1}, {0xDEADBEEF, 13}, {0xDEADBEEF, 31},
	}
	for _, tc := range cases {
		in := map[netlist.GateID]bool{}
		setWord(in, sh.In, tc.v)
		for i := 0; i < 5; i++ {
			in[sh.Amt[i]] = (tc.amt>>uint(i))&1 == 1
		}
		sim.Cycle(in)
		var got uint32
		for i := 0; i < 32; i++ {
			if sim.Value(sh.N.Gate(sh.Out[i]).Fanin[0]) {
				got |= 1 << uint(i)
			}
		}
		if got != tc.v>>tc.amt {
			t.Errorf("shift(%x,%d) = %x, want %x", tc.v, tc.amt, got, tc.v>>tc.amt)
		}
	}
}

func TestLogicFunctional(t *testing.T) {
	l := Logic()
	sim, _ := activity.NewSimulator(l.N)
	a, b := uint32(0xF0F0A5A5), uint32(0x0FF0FFFF)
	for sel, want := range map[uint32]uint32{0: a & b, 1: a | b, 2: a ^ b, 3: a ^ b} {
		in := map[netlist.GateID]bool{}
		setWord(in, l.A, a)
		setWord(in, l.B, b)
		in[l.Sel[0]] = sel&1 == 1
		in[l.Sel[1]] = sel&2 == 2
		sim.Cycle(in)
		var got uint32
		for i := 0; i < 32; i++ {
			if sim.Value(l.N.Gate(l.Out[i]).Fanin[0]) {
				got |= 1 << uint(i)
			}
		}
		if got != want {
			t.Errorf("logic sel=%d = %x, want %x", sel, got, want)
		}
	}
}

func TestDataEndpointsMarked(t *testing.T) {
	ad := Adder()
	data := ad.N.DataEndpoints(0)
	if len(data) != 33 { // 32 sum + carry out
		t.Errorf("adder data endpoints = %d, want 33", len(data))
	}
	if len(ad.N.ControlEndpoints(0)) != 0 {
		t.Error("adder should have no control endpoints")
	}
}

func TestPlacementWithinDie(t *testing.T) {
	c := Control()
	for i := range c.N.Gates() {
		g := &c.N.Gates()[i]
		if g.X < 0 || g.X >= 1 || g.Y < 0 || g.Y >= 1 {
			t.Fatalf("gate %q placed at (%v,%v) outside the die", g.Name, g.X, g.Y)
		}
	}
	// Same-stage gates should occupy the same column band.
	g0 := c.N.Gates()[0]
	for i := range c.N.Gates() {
		g := &c.N.Gates()[i]
		if g.Stage == g0.Stage {
			continue
		}
	}
}

func TestCalibrateScale(t *testing.T) {
	model, err := variation.NewModel(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ad := Adder()
	target := 1392.8 // period of 718 MHz in ps
	scale, err := CalibrateScale([]*netlist.Netlist{ad.N}, model, cell.SigmaRel, target, 0.99, 4)
	if err != nil {
		t.Fatal(err)
	}
	if scale <= 0 {
		t.Fatalf("scale = %v", scale)
	}
	e, err := sta.NewEngine(ad.N, model, target, cell.SigmaRel, scale)
	if err != nil {
		t.Fatal(err)
	}
	got := e.MaxDelayPercentile(0.99, 4)
	if got < target*0.98 || got > target*1.02 {
		t.Errorf("calibrated p99 max delay = %v, want ~%v", got, target)
	}
}

func TestCalibrateScaleEmpty(t *testing.T) {
	model, _ := variation.NewModel(1, 0.5)
	n := netlist.New("empty", 1)
	n.Add(cell.INPUT, "a", 0)
	if _, err := CalibrateScale([]*netlist.Netlist{n}, model, 0.05, 1000, 0.99, 4); err == nil {
		t.Error("expected error for netlist without paths")
	}
}
