package gen

import (
	"testing"
	"testing/quick"

	"tsperr/internal/activity"
	"tsperr/internal/cell"
	"tsperr/internal/dta"
	"tsperr/internal/netlist"
	"tsperr/internal/sta"
	"tsperr/internal/variation"
)

func newTestEngine(n *netlist.Netlist, m *variation.Model) (*sta.Engine, error) {
	return sta.NewEngine(n, m, 2000, cell.SigmaRel, 1)
}

func claSum(t *testing.T, sim *activity.Simulator, ad *AdderNet, a, b uint32, cin bool) uint32 {
	t.Helper()
	in := map[netlist.GateID]bool{}
	setWord(in, ad.A, a)
	setWord(in, ad.B, b)
	in[ad.Cin] = cin
	sim.Cycle(in)
	var got uint32
	for i := 0; i < 32; i++ {
		if sim.Value(ad.N.Gate(ad.Sum[i]).Fanin[0]) {
			got |= 1 << uint(i)
		}
	}
	return got
}

func TestCLAAdderFunctional(t *testing.T) {
	ad := CLAAdder()
	if err := ad.N.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, _ := activity.NewSimulator(ad.N)
	cases := []struct {
		a, b uint32
		cin  bool
	}{
		{0, 0, false}, {1, 1, false}, {0xFFFFFFFF, 1, false},
		{0xFFFFFFFF, 0xFFFFFFFF, true}, {12345, 67890, false},
		{0x80000000, 0x7FFFFFFF, true},
	}
	for _, c := range cases {
		want := c.a + c.b
		if c.cin {
			want++
		}
		if got := claSum(t, sim, ad, c.a, c.b, c.cin); got != want {
			t.Errorf("cla(%x,%x,%v) = %x, want %x", c.a, c.b, c.cin, got, want)
		}
	}
}

func TestCLAAdderProperty(t *testing.T) {
	ad := CLAAdder()
	sim, _ := activity.NewSimulator(ad.N)
	f := func(a, b uint32) bool {
		return claSum(t, sim, ad, a, b, false) == a+b
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCLAShorterCriticalPath(t *testing.T) {
	model, err := variation.NewModel(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ripple := Adder()
	cla := CLAAdder()
	eR, err := newTestEngine(ripple.N, model)
	if err != nil {
		t.Fatal(err)
	}
	eC, err := newTestEngine(cla.N, model)
	if err != nil {
		t.Fatal(err)
	}
	dR := eR.MaxDelayNominal()
	dC := eC.MaxDelayNominal()
	if dC >= dR/2 {
		t.Errorf("CLA critical path %v should be well under half the ripple's %v", dC, dR)
	}
}

func TestCLALessOperandDependentDelay(t *testing.T) {
	// The activated critical-path *delay* of a CLA varies much less between
	// short-carry and full-carry operands than the ripple adder's: the
	// lookahead network bounds the carry depth. This is the depth-delay
	// profile ablation DESIGN.md calls out.
	model, err := variation.NewModel(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	const period = 2600.0
	spread := func(ad *AdderNet) float64 {
		e, err := sta.NewEngine(ad.N, model, period, cell.SigmaRel, 1)
		if err != nil {
			t.Fatal(err)
		}
		an := dta.New(e, 8)
		sim, _ := activity.NewSimulator(ad.N)
		tr := &activity.Trace{NumGates: ad.N.NumGates()}
		for _, op := range [][2]uint32{{0, 0}, {1, 1}, {0, 0}, {0xFFFFFFFF, 1}} {
			in := map[netlist.GateID]bool{}
			setWord(in, ad.A, op[0])
			setWord(in, ad.B, op[1])
			tr.Sets = append(tr.Sets, sim.Cycle(in))
		}
		eps := ad.N.Endpoints(0)
		shortDTS, ok1 := an.StageDTS(eps, 1, tr)
		longDTS, ok2 := an.StageDTS(eps, 3, tr)
		if !ok1 || !ok2 {
			t.Fatal("expected activated paths in both cycles")
		}
		// Activated path delay = period - DTS.
		return (period - longDTS.Mean) / (period - shortDTS.Mean)
	}
	r := spread(Adder())
	c := spread(CLAAdder())
	if c >= r {
		t.Errorf("CLA delay spread %v should be below ripple's %v", c, r)
	}
	if c > 8 {
		t.Errorf("CLA activated delay spread implausibly wide: %v", c)
	}
}
