package gen

import (
	"fmt"

	"tsperr/internal/cell"
	"tsperr/internal/netlist"
)

// CLAAdder builds a 32-bit two-level carry-lookahead adder: 4-bit groups
// with generate/propagate logic and a group-carry chain. Its critical path
// is roughly a third of the ripple adder's and far less operand-dependent —
// the classic synthesis trade-off. The ablation benchmarks use it to show
// how the datapath's depth-delay profile shapes the program error rate:
// with a CLA the failure probability concentrates on a narrow delay band
// instead of scaling with carry-chain length.
func CLAAdder() *AdderNet {
	n := netlist.New("cla", 1)
	a := &AdderNet{N: n}
	b := &builder{n: n}
	for i := 0; i < 32; i++ {
		a.A[i] = b.add(cell.INPUT, fmt.Sprintf("a%d", i))
		a.B[i] = b.add(cell.INPUT, fmt.Sprintf("b%d", i))
	}
	a.Cin = b.add(cell.INPUT, "cin")

	// Per-bit propagate/generate.
	var p, g [32]netlist.GateID
	for i := 0; i < 32; i++ {
		p[i] = b.add(cell.XOR2, fmt.Sprintf("p%d", i), a.A[i], a.B[i])
		g[i] = b.add(cell.AND2, fmt.Sprintf("g%d", i), a.A[i], a.B[i])
	}

	// Group P and G over 4-bit groups:
	// P = p3 p2 p1 p0;  G = g3 + p3 g2 + p3 p2 g1 + p3 p2 p1 g0.
	const groups = 8
	var gp, gg [groups]netlist.GateID
	for gr := 0; gr < groups; gr++ {
		o := 4 * gr
		p01 := b.add(cell.AND2, fmt.Sprintf("gp%d_01", gr), p[o], p[o+1])
		p23 := b.add(cell.AND2, fmt.Sprintf("gp%d_23", gr), p[o+2], p[o+3])
		gp[gr] = b.add(cell.AND2, fmt.Sprintf("gp%d", gr), p01, p23)
		t2 := b.add(cell.AND2, fmt.Sprintf("gg%d_t2", gr), p[o+3], g[o+2])
		p32 := b.add(cell.AND2, fmt.Sprintf("gg%d_p32", gr), p[o+3], p[o+2])
		t1 := b.add(cell.AND2, fmt.Sprintf("gg%d_t1", gr), p32, g[o+1])
		p321 := b.add(cell.AND2, fmt.Sprintf("gg%d_p321", gr), p32, p[o+1])
		t0 := b.add(cell.AND2, fmt.Sprintf("gg%d_t0", gr), p321, g[o])
		or1 := b.add(cell.OR2, fmt.Sprintf("gg%d_or1", gr), g[o+3], t2)
		or2 := b.add(cell.OR2, fmt.Sprintf("gg%d_or2", gr), t1, t0)
		gg[gr] = b.add(cell.OR2, fmt.Sprintf("gg%d", gr), or1, or2)
	}

	// Group-carry chain: c[gr+1] = G[gr] + P[gr] c[gr].
	var gc [groups + 1]netlist.GateID
	gc[0] = a.Cin
	for gr := 0; gr < groups; gr++ {
		t := b.add(cell.AND2, fmt.Sprintf("gc%d_t", gr), gp[gr], gc[gr])
		gc[gr+1] = b.add(cell.OR2, fmt.Sprintf("gc%d", gr+1), gg[gr], t)
	}

	// Intra-group ripple from the group carry-in, and sum bits.
	for gr := 0; gr < groups; gr++ {
		o := 4 * gr
		carry := gc[gr]
		for i := o; i < o+4; i++ {
			s := b.add(cell.XOR2, fmt.Sprintf("s%d", i), p[i], carry)
			if i < o+3 {
				t := b.add(cell.AND2, fmt.Sprintf("ic%d_t", i), p[i], carry)
				carry = b.add(cell.OR2, fmt.Sprintf("ic%d", i), g[i], t)
			}
			ff := b.add(cell.DFF, fmt.Sprintf("sum%d", i), s)
			n.MarkData(ff)
			a.Sum[i] = ff
		}
	}
	cff := b.add(cell.DFF, "cout", gc[groups])
	n.MarkData(cff)
	a.Cout = cff
	Place(n)
	return a
}
