package gen

import (
	"testing"

	"tsperr/internal/netlist"
)

// TestGeneratedNetlistsLintClean pins the contract behind `tsperrlint
// -netlist`: every netlist the generators produce passes the structural
// linter with zero findings — dangling outputs are either consumed or
// explicitly declared Unused, stages are monotone, placement is on-die,
// and all cells carry delay annotations.
func TestGeneratedNetlistsLintClean(t *testing.T) {
	nets := map[string]*netlist.Netlist{
		"control":    Control().N,
		"adder":      Adder().N,
		"shifter":    Shifter().N,
		"logic":      Logic().N,
		"multiplier": Multiplier().N,
	}
	for name, n := range nets {
		fs := n.Lint(netlist.StdLibrary{})
		for _, f := range fs {
			t.Errorf("%s: %s", name, f)
		}
	}
}
