package gen

import (
	"fmt"

	"tsperr/internal/cell"
	"tsperr/internal/netlist"
)

// MultiplierNet is a 16x16 array multiplier producing the low 16 product
// bits (the paper's integer unit truncates the multiplier's critical
// low-half array in the EX stage; the high half completes a stage later and
// is not timing-critical here). Partial products are ANDed and reduced with
// ripple carry-save rows of full adders, so the activated depth grows with
// the magnitude of the smaller operand — exactly the feature the simulator
// extracts for mul instructions.
type MultiplierNet struct {
	N    *netlist.Netlist
	A, B [16]netlist.GateID
	P    [16]netlist.GateID // DFF endpoints, low product bits
}

// fullAdder builds sum and carry for (a, b, cin).
func fullAdder(b *builder, name string, a, bb, cin netlist.GateID) (sum, carry netlist.GateID) {
	p := b.add(cell.XOR2, name+"_p", a, bb)
	sum = b.add(cell.XOR2, name+"_s", p, cin)
	g1 := b.add(cell.AND2, name+"_g1", a, bb)
	g2 := b.add(cell.AND2, name+"_g2", p, cin)
	carry = b.add(cell.OR2, name+"_c", g1, g2)
	return sum, carry
}

// Multiplier builds the array multiplier.
func Multiplier() *MultiplierNet {
	n := netlist.New("multiplier", 1)
	m := &MultiplierNet{N: n}
	b := &builder{n: n}
	for i := 0; i < 16; i++ {
		m.A[i] = b.add(cell.INPUT, fmt.Sprintf("a%d", i))
		m.B[i] = b.add(cell.INPUT, fmt.Sprintf("b%d", i))
	}
	zero := b.add(cell.CONST0, "zero")

	// Row 0: partial product of b0.
	acc := make([]netlist.GateID, 16)
	for i := 0; i < 16; i++ {
		acc[i] = b.add(cell.AND2, fmt.Sprintf("pp0_%d", i), m.A[i], m.B[0])
	}
	// Rows 1..15: shift-add with ripple carry within each row (only bits
	// below 16 matter for the low product).
	for r := 1; r < 16; r++ {
		carry := zero
		next := make([]netlist.GateID, 16)
		copy(next, acc[:r]) // bits below the row's shift are finalized
		for i := r; i < 16; i++ {
			pp := b.add(cell.AND2, fmt.Sprintf("pp%d_%d", r, i), m.A[i-r], m.B[r])
			s, c := fullAdder(b, fmt.Sprintf("fa%d_%d", r, i), acc[i], pp, carry)
			next[i] = s
			carry = c
		}
		// The product truncates at bit 15, so each row's final carry-out
		// ripples into the discarded high half and drives nothing here.
		n.MarkUnused(carry)
		acc = next
	}
	for i := 0; i < 16; i++ {
		ff := b.add(cell.DFF, fmt.Sprintf("p%d", i), acc[i])
		n.MarkData(ff)
		m.P[i] = ff
	}
	Place(n)
	return m
}
