// Package gen generates the synthetic-but-functional gate-level netlists the
// reproduction uses in place of the paper's synthesized LEON3 integer unit:
// a 6-stage control network whose decode logic is derived from the real
// TS-V8 opcode table, and gate-level datapath units (ripple-carry adder,
// barrel shifter, logic unit, equality comparator) whose activated timing
// paths depend on operand values exactly as Algorithm 1 expects. It also
// places gates on the die for the spatial variation model and calibrates the
// global delay scale to the paper's operating points (Section 6.1).
package gen

import (
	"fmt"

	"tsperr/internal/cell"
	"tsperr/internal/cpu"
	"tsperr/internal/isa"
	"tsperr/internal/netlist"
	"tsperr/internal/sta"
	"tsperr/internal/variation"
)

// builder wraps netlist construction with tree helpers.
type builder struct {
	n     *netlist.Netlist
	stage int
}

func (b *builder) add(kind cell.Kind, name string, fanin ...netlist.GateID) netlist.GateID {
	return b.n.Add(kind, name, b.stage, fanin...)
}

// tree reduces inputs with a balanced binary tree of the given 2-input kind.
func (b *builder) tree(kind cell.Kind, name string, in []netlist.GateID) netlist.GateID {
	if len(in) == 0 {
		panic("gen: empty tree")
	}
	level := 0
	for len(in) > 1 {
		var next []netlist.GateID
		for i := 0; i+1 < len(in); i += 2 {
			next = append(next, b.add(kind, fmt.Sprintf("%s_l%d_%d", name, level, i/2), in[i], in[i+1]))
		}
		if len(in)%2 == 1 {
			next = append(next, in[len(in)-1])
		}
		in = next
		level++
	}
	return in[0]
}

// ControlNet is the control network of the 6-stage pipeline together with
// its external input handles. All its flip-flops are control endpoints.
type ControlNet struct {
	N *netlist.Netlist
	// Instr are the 32 fetched-instruction bit inputs (bit 0 = LSB).
	Instr [32]netlist.GateID
	// ExResult are the EX-stage result bits observed by the branch-resolution
	// zero detector.
	ExResult [32]netlist.GateID
	// Stall and Flush are the external hazard inputs.
	Stall, Flush netlist.GateID
	// IR are the instruction-register flip-flops (stage IF).
	IR [32]netlist.GateID
}

// Control builds the control network. The decode logic is generated from the
// TS-V8 opcode table: one AND-tree matcher per opcode and OR-trees for each
// derived control signal, so the set of activated decode paths genuinely
// depends on the instruction sequence, which is what makes per-basic-block
// control DTS characterization meaningful.
func Control() *ControlNet {
	n := netlist.New("control", cpu.NumStages)
	c := &ControlNet{N: n}
	b := &builder{n: n}

	// ---- Stage IF: instruction register + PC increment chain. ----
	b.stage = cpu.StageIF
	for i := 0; i < 32; i++ {
		c.Instr[i] = b.add(cell.INPUT, fmt.Sprintf("instr%d", i))
	}
	c.Stall = b.add(cell.INPUT, "stall")
	c.Flush = b.add(cell.INPUT, "flush")
	for i := 0; i < 32; i++ {
		// IR captures the fetched word unless stalled (hold) or flushed
		// (clear): d = flush ? 0 : (stall ? q : instr).
		ir := b.add(cell.DFF, fmt.Sprintf("ir%d", i), c.Instr[i]) // placeholder fanin
		hold := b.add(cell.MUX2, fmt.Sprintf("ir_hold%d", i), c.Instr[i], ir, c.Stall)
		nflush := b.add(cell.INV, fmt.Sprintf("ir_nfl%d", i), c.Flush)
		d := b.add(cell.AND2, fmt.Sprintf("ir_d%d", i), hold, nflush)
		n.Gate(ir).Fanin[0] = d
		c.IR[i] = ir
	}
	// PC: an 12-bit counter with ripple-carry increment (a classic control
	// critical path).
	var pc [12]netlist.GateID
	for i := range pc {
		pc[i] = b.add(cell.DFF, fmt.Sprintf("pc%d", i), c.Stall) // patched below
	}
	carry := b.add(cell.INV, "pc_cin", c.Stall) // increment when not stalled
	for i := range pc {
		sum := b.add(cell.XOR2, fmt.Sprintf("pc_sum%d", i), pc[i], carry)
		carry = b.add(cell.AND2, fmt.Sprintf("pc_c%d", i), pc[i], carry)
		n.Gate(pc[i]).Fanin[0] = sum
	}
	n.MarkUnused(carry) // the counter wraps: the final carry-out has no consumer

	// ---- Stage ID: opcode matchers and control-signal OR trees. ----
	b.stage = cpu.StageID
	opBits := c.IR[26:32] // opcode field [31:26]
	inv := make([]netlist.GateID, 6)
	for i, g := range opBits {
		inv[i] = b.add(cell.INV, fmt.Sprintf("nop%d", i), g)
	}
	match := make([]netlist.GateID, isa.NumOps)
	for op := isa.Op(0); op < isa.NumOps; op++ {
		var lits []netlist.GateID
		for bit := 0; bit < 6; bit++ {
			if (uint32(op)>>uint(bit))&1 == 1 {
				lits = append(lits, opBits[bit])
			} else {
				lits = append(lits, inv[bit])
			}
		}
		match[op] = b.tree(cell.AND2, fmt.Sprintf("match_%s", op), lits)
	}
	// Every opcode gets a matcher so decode timing covers the full table,
	// but NOP and HALT assert no control signal; their outputs dangle by
	// design.
	n.MarkUnused(match[isa.OpNop])
	n.MarkUnused(match[isa.OpHalt])
	orOf := func(name string, ops ...isa.Op) netlist.GateID {
		in := make([]netlist.GateID, len(ops))
		for i, op := range ops {
			in[i] = match[op]
		}
		return b.tree(cell.OR2, name, in)
	}
	isR := orOf("isR", isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSlt, isa.OpMul)
	isI := orOf("isI", isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpSlti, isa.OpLui)
	isLd := match[isa.OpLw]
	isSt := match[isa.OpSw]
	isBr := orOf("isBr", isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge)
	isJmp := orOf("isJmp", isa.OpJal, isa.OpJr)
	wrRd := b.tree(cell.OR2, "wrRd", []netlist.GateID{isR, isI, isLd, match[isa.OpJal]})
	useImm := b.tree(cell.OR2, "useImm", []netlist.GateID{isI, isLd, isSt})
	aluSub := orOf("aluSub", isa.OpSub, isa.OpSlt, isa.OpSlti,
		isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge)
	aluShift := orOf("aluShift", isa.OpSll, isa.OpSrl, isa.OpSra,
		isa.OpSlli, isa.OpSrli, isa.OpSrai)
	aluLogic := orOf("aluLogic", isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpAndi, isa.OpOri, isa.OpXori)

	ctlSignals := map[string]netlist.GateID{
		"dec_isR": isR, "dec_isI": isI, "dec_isLd": isLd, "dec_isSt": isSt,
		"dec_isBr": isBr, "dec_isJmp": isJmp, "dec_wrRd": wrRd,
		"dec_useImm": useImm, "dec_aluSub": aluSub, "dec_aluShift": aluShift,
		"dec_aluLogic": aluLogic,
	}
	decFF := map[string]netlist.GateID{}
	for _, name := range []string{"dec_isR", "dec_isI", "dec_isLd", "dec_isSt",
		"dec_isBr", "dec_isJmp", "dec_wrRd", "dec_useImm", "dec_aluSub",
		"dec_aluShift", "dec_aluLogic"} {
		decFF[name] = b.add(cell.DFF, name+"_ff", ctlSignals[name])
	}
	// Register fields latched for the hazard unit.
	var rdFF, rs1FF, rs2FF [5]netlist.GateID
	for i := 0; i < 5; i++ {
		rdFF[i] = b.add(cell.DFF, fmt.Sprintf("rd_ff%d", i), c.IR[21+i])
		rs1FF[i] = b.add(cell.DFF, fmt.Sprintf("rs1_ff%d", i), c.IR[16+i])
		rs2FF[i] = b.add(cell.DFF, fmt.Sprintf("rs2_ff%d", i), c.IR[11+i])
	}

	// ---- Stage RA: hazard comparators and forwarding selects. ----
	b.stage = cpu.StageRA
	// Previous destination register (pipelined copy of rd).
	var exRd [5]netlist.GateID
	for i := 0; i < 5; i++ {
		exRd[i] = b.add(cell.DFF, fmt.Sprintf("exrd_ff%d", i), rdFF[i])
	}
	eq := func(name string, a, bb [5]netlist.GateID) netlist.GateID {
		bitsEq := make([]netlist.GateID, 5)
		for i := 0; i < 5; i++ {
			bitsEq[i] = b.add(cell.XNOR2, fmt.Sprintf("%s_x%d", name, i), a[i], bb[i])
		}
		return b.tree(cell.AND2, name+"_and", bitsEq)
	}
	rawA := eq("hazA", rs1FF, exRd)
	rawB := eq("hazB", rs2FF, exRd)
	ldUse := b.add(cell.AND2, "ldUse", decFF["dec_isLd"], rawA)
	fwdA := b.add(cell.AND2, "fwdA_sig", rawA, decFF["dec_wrRd"])
	fwdB := b.add(cell.AND2, "fwdB_sig", rawB, decFF["dec_wrRd"])
	b.add(cell.DFF, "ldUse_ff", ldUse)
	b.add(cell.DFF, "fwdA_ff", fwdA)
	b.add(cell.DFF, "fwdB_ff", fwdB)
	// Register-file address decoders: one-hot 5-to-32 decode of the read
	// port (rs1) and the write port (rd), gated by the write enable — the
	// classic RA-stage control structure whose activation pattern tracks
	// which architectural registers the instruction stream touches.
	invRs1 := make([]netlist.GateID, 5)
	invRd := make([]netlist.GateID, 5)
	for i := 0; i < 5; i++ {
		invRs1[i] = b.add(cell.INV, fmt.Sprintf("nrs1_%d", i), rs1FF[i])
		invRd[i] = b.add(cell.INV, fmt.Sprintf("nrd_%d", i), rdFF[i])
	}
	for r := 0; r < 32; r++ {
		litsR := make([]netlist.GateID, 5)
		litsW := make([]netlist.GateID, 5)
		for i := 0; i < 5; i++ {
			if (r>>uint(i))&1 == 1 {
				litsR[i] = rs1FF[i]
				litsW[i] = rdFF[i]
			} else {
				litsR[i] = invRs1[i]
				litsW[i] = invRd[i]
			}
		}
		rdEn := b.tree(cell.AND2, fmt.Sprintf("rfr%d", r), litsR)
		b.add(cell.DFF, fmt.Sprintf("rfr%d_ff", r), rdEn)
		wrHot := b.tree(cell.AND2, fmt.Sprintf("rfw%d", r), litsW)
		wrEn := b.add(cell.AND2, fmt.Sprintf("rfw%d_en", r), wrHot, decFF["dec_wrRd"])
		b.add(cell.DFF, fmt.Sprintf("rfw%d_ff", r), wrEn)
	}
	isBrRA := b.add(cell.DFF, "isBr_ra", decFF["dec_isBr"])
	aluSubRA := b.add(cell.DFF, "aluSub_ra", decFF["dec_aluSub"])
	b.add(cell.DFF, "aluShift_ra", decFF["dec_aluShift"])
	b.add(cell.DFF, "aluLogic_ra", decFF["dec_aluLogic"])

	// ---- Stage EX: branch resolution over the datapath result. ----
	b.stage = cpu.StageEX
	for i := 0; i < 32; i++ {
		c.ExResult[i] = b.add(cell.INPUT, fmt.Sprintf("exres%d", i))
	}
	zero := b.add(cell.INV, "zeroDet",
		b.tree(cell.OR2, "resOr", c.ExResult[:]))
	sign := c.ExResult[31]
	condTrue := b.add(cell.OR2, "condTrue",
		b.add(cell.AND2, "condZero", zero, aluSubRA),
		b.add(cell.AND2, "condNeg", sign, aluSubRA))
	taken := b.add(cell.AND2, "brTaken", condTrue, isBrRA)
	redirect := b.add(cell.OR2, "redirect", taken, c.Flush)
	takenFF := b.add(cell.DFF, "brTaken_ff", taken)
	b.add(cell.DFF, "redirect_ff", redirect)

	// ---- Stage ME: memory handshake. ----
	b.stage = cpu.StageME
	isLdME := b.add(cell.DFF, "isLd_me", decFF["dec_isLd"])
	isStME := b.add(cell.DFF, "isSt_me", decFF["dec_isSt"])
	memEn := b.add(cell.OR2, "memEn", isLdME, isStME)
	nredir := b.add(cell.INV, "nredir", takenFF)
	memGo := b.add(cell.AND2, "memGo", memEn, nredir)
	b.add(cell.DFF, "memGo_ff", memGo)

	// ---- Stage WB: write-back enable. ----
	b.stage = cpu.StageWB
	wrWB := b.add(cell.DFF, "wrRd_wb", decFF["dec_wrRd"])
	stallN := b.add(cell.INV, "nstall_wb", c.Stall)
	wbEn := b.add(cell.AND2, "wbEn", wrWB, stallN)
	b.add(cell.DFF, "wbEn_ff", wbEn)

	Place(n)
	return c
}

// AdderNet is a 32-bit ripple-carry adder netlist. Its sum flip-flops are
// data endpoints; the activated carry chain depends on the operands.
type AdderNet struct {
	N    *netlist.Netlist
	A, B [32]netlist.GateID
	Cin  netlist.GateID
	Sum  [32]netlist.GateID // DFF endpoints
	Cout netlist.GateID     // DFF endpoint
}

// Adder builds the ripple-carry adder.
func Adder() *AdderNet {
	n := netlist.New("adder", 1)
	a := &AdderNet{N: n}
	b := &builder{n: n}
	for i := 0; i < 32; i++ {
		a.A[i] = b.add(cell.INPUT, fmt.Sprintf("a%d", i))
		a.B[i] = b.add(cell.INPUT, fmt.Sprintf("b%d", i))
	}
	a.Cin = b.add(cell.INPUT, "cin")
	carry := a.Cin
	for i := 0; i < 32; i++ {
		p := b.add(cell.XOR2, fmt.Sprintf("p%d", i), a.A[i], a.B[i])
		g := b.add(cell.AND2, fmt.Sprintf("g%d", i), a.A[i], a.B[i])
		s := b.add(cell.XOR2, fmt.Sprintf("s%d", i), p, carry)
		pc := b.add(cell.AND2, fmt.Sprintf("pc%d", i), p, carry)
		carry = b.add(cell.OR2, fmt.Sprintf("c%d", i), g, pc)
		ff := b.add(cell.DFF, fmt.Sprintf("sum%d", i), s)
		n.MarkData(ff)
		a.Sum[i] = ff
	}
	cff := b.add(cell.DFF, "cout", carry)
	n.MarkData(cff)
	a.Cout = cff
	Place(n)
	return a
}

// ShifterNet is a 32-bit logarithmic right barrel shifter (zero fill).
type ShifterNet struct {
	N   *netlist.Netlist
	In  [32]netlist.GateID
	Amt [5]netlist.GateID
	Out [32]netlist.GateID // DFF endpoints
}

// Shifter builds the barrel shifter.
func Shifter() *ShifterNet {
	n := netlist.New("shifter", 1)
	s := &ShifterNet{N: n}
	b := &builder{n: n}
	for i := 0; i < 32; i++ {
		s.In[i] = b.add(cell.INPUT, fmt.Sprintf("in%d", i))
	}
	for i := 0; i < 5; i++ {
		s.Amt[i] = b.add(cell.INPUT, fmt.Sprintf("amt%d", i))
	}
	zero := b.add(cell.CONST0, "zero")
	cur := s.In[:]
	for layer := 0; layer < 5; layer++ {
		shift := 1 << uint(layer)
		next := make([]netlist.GateID, 32)
		for i := 0; i < 32; i++ {
			from := zero
			if i+shift < 32 {
				from = cur[i+shift]
			}
			next[i] = b.add(cell.MUX2, fmt.Sprintf("m%d_%d", layer, i), cur[i], from, s.Amt[layer])
		}
		cur = next
	}
	for i := 0; i < 32; i++ {
		ff := b.add(cell.DFF, fmt.Sprintf("out%d", i), cur[i])
		n.MarkData(ff)
		s.Out[i] = ff
	}
	Place(n)
	return s
}

// LogicNet is a 32-bit logic unit computing AND/OR/XOR selected by 2 bits.
type LogicNet struct {
	N    *netlist.Netlist
	A, B [32]netlist.GateID
	Sel  [2]netlist.GateID // 00=and 01=or 1x=xor
	Out  [32]netlist.GateID
}

// Logic builds the logic unit.
func Logic() *LogicNet {
	n := netlist.New("logic", 1)
	l := &LogicNet{N: n}
	b := &builder{n: n}
	for i := 0; i < 32; i++ {
		l.A[i] = b.add(cell.INPUT, fmt.Sprintf("a%d", i))
		l.B[i] = b.add(cell.INPUT, fmt.Sprintf("b%d", i))
	}
	l.Sel[0] = b.add(cell.INPUT, "sel0")
	l.Sel[1] = b.add(cell.INPUT, "sel1")
	for i := 0; i < 32; i++ {
		and := b.add(cell.AND2, fmt.Sprintf("and%d", i), l.A[i], l.B[i])
		or := b.add(cell.OR2, fmt.Sprintf("or%d", i), l.A[i], l.B[i])
		xor := b.add(cell.XOR2, fmt.Sprintf("xor%d", i), l.A[i], l.B[i])
		m0 := b.add(cell.MUX2, fmt.Sprintf("m0_%d", i), and, or, l.Sel[0])
		m1 := b.add(cell.MUX2, fmt.Sprintf("m1_%d", i), m0, xor, l.Sel[1])
		ff := b.add(cell.DFF, fmt.Sprintf("out%d", i), m1)
		n.MarkData(ff)
		l.Out[i] = ff
	}
	Place(n)
	return l
}

// Place assigns die coordinates: gates are laid out in per-stage columns
// with a deterministic pseudo-random vertical spread, so the spatial
// variation model sees realistic proximity (same-stage gates correlate more).
func Place(n *netlist.Netlist) {
	stages := n.Stages
	if stages < 1 {
		stages = 1
	}
	for i := range n.Gates() {
		g := &n.Gates()[i]
		h := hashName(g.Name)
		colW := 1.0 / float64(stages)
		x := (float64(g.Stage) + 0.15 + 0.7*float64(h&0xFFFF)/65536.0) * colW
		y := float64((h>>16)&0xFFFF) / 65536.0
		n.SetPlacement(netlist.GateID(i), x, y)
	}
}

func hashName(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// CalibrateScale returns the delay scale that places the given percentile of
// the design's statistical maximum delay at targetPeriodPs. Because delays
// are linear in the scale, a single measurement at scale 1 suffices.
func CalibrateScale(nets []*netlist.Netlist, model *variation.Model, sigmaRel, targetPeriodPs, percentile float64, kPaths int) (float64, error) {
	worst := 0.0
	for _, n := range nets {
		e, err := sta.NewEngine(n, model, targetPeriodPs, sigmaRel, 1)
		if err != nil {
			return 0, err
		}
		if d := e.MaxDelayPercentile(percentile, kPaths); d > worst {
			worst = d
		}
	}
	if worst <= 0 {
		return 0, fmt.Errorf("gen: calibration found no paths")
	}
	return targetPeriodPs / worst, nil
}
