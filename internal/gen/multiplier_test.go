package gen

import (
	"testing"
	"testing/quick"

	"tsperr/internal/activity"
	"tsperr/internal/netlist"
)

func mulOut(t *testing.T, sim *activity.Simulator, m *MultiplierNet, a, b uint32) uint32 {
	t.Helper()
	in := map[netlist.GateID]bool{}
	for i := 0; i < 16; i++ {
		in[m.A[i]] = (a>>uint(i))&1 == 1
		in[m.B[i]] = (b>>uint(i))&1 == 1
	}
	sim.Cycle(in)
	var got uint32
	for i := 0; i < 16; i++ {
		if sim.Value(m.N.Gate(m.P[i]).Fanin[0]) {
			got |= 1 << uint(i)
		}
	}
	return got
}

func TestMultiplierFunctional(t *testing.T) {
	m := Multiplier()
	if err := m.N.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, _ := activity.NewSimulator(m.N)
	cases := [][2]uint32{
		{0, 0}, {1, 1}, {3, 5}, {255, 255}, {0xFFFF, 0xFFFF},
		{12345, 2}, {0x8000, 2}, {100, 100},
	}
	for _, c := range cases {
		want := (c[0] * c[1]) & 0xFFFF
		if got := mulOut(t, sim, m, c[0], c[1]); got != want {
			t.Errorf("mul(%d,%d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

func TestMultiplierProperty(t *testing.T) {
	m := Multiplier()
	sim, _ := activity.NewSimulator(m.N)
	f := func(a, b uint16) bool {
		return mulOut(t, sim, m, uint32(a), uint32(b)) == uint32(a)*uint32(b)&0xFFFF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMultiplierActivationGrowsWithMagnitude(t *testing.T) {
	m := Multiplier()
	sim, _ := activity.NewSimulator(m.N)
	quiet := func() {
		in := map[netlist.GateID]bool{}
		sim.Cycle(in)
		sim.Cycle(in)
	}
	quiet()
	in := map[netlist.GateID]bool{}
	for i := 0; i < 16; i++ {
		in[m.A[i]] = (uint32(3)>>uint(i))&1 == 1
		in[m.B[i]] = i == 0
	}
	small := sim.Cycle(in).Count()
	quiet()
	for i := 0; i < 16; i++ {
		in[m.A[i]] = true
		in[m.B[i]] = true
	}
	large := sim.Cycle(in).Count()
	if large <= small*2 {
		t.Errorf("large operands should activate far more of the array: %d vs %d", large, small)
	}
}
