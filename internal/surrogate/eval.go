package surrogate

import (
	"fmt"
	"math"
	"sort"

	"tsperr/internal/mlpred"
	"tsperr/internal/numeric"
)

// Offline evaluation of the coverage-vs-accuracy tradeoff: train on one
// split of labeled samples, sweep the confidence bound over the held-out
// split, and report, per bound, how much traffic the gate would serve and
// how accurate the served answers would be. This is what
// `tsperr -surrogate-eval` prints and what the acceptance test pins
// (held-out MAE within the documented budget).

// EvalSample is one labeled request: its features and the exact pipeline's
// log10 mean error rate, tagged with the request identity for reporting.
type EvalSample struct {
	Name      string
	Scenarios int
	Features  []float64
	Log10Rate float64
}

// CurvePoint is one bound on the coverage-vs-accuracy curve.
type CurvePoint struct {
	// Bound is the gate's MaxStd setting being evaluated.
	Bound float64
	// Coverage is the fraction of held-out requests the gate would serve.
	Coverage float64
	// MAE is the mean absolute log10 error over the served requests
	// (0 when none are served).
	MAE float64
	// MaxErr is the worst served absolute log10 error.
	MaxErr float64
	// Served counts the held-out requests under the bound.
	Served int
}

// EvalResult is the outcome of one train/held-out evaluation.
type EvalResult struct {
	// TrainN/TestN are the split sizes.
	TrainN, TestN int
	// MAE is the mean absolute log10 error over ALL held-out samples,
	// ungated — the raw model accuracy.
	MAE float64
	// GatedMAE and GatedCoverage evaluate the configured MaxStd bound.
	GatedMAE      float64
	GatedCoverage float64
	// Curve sweeps the supplied bounds, ascending.
	Curve []CurvePoint
}

// Eval trains a forest on a deterministic (seed-driven) shuffle-split of
// the samples and evaluates the held-out fraction. holdout is the test
// fraction (0 selects 0.3); bounds may be nil to skip the curve.
func Eval(samples []EvalSample, cfg Config, bounds []float64, holdout float64, seed uint64) (*EvalResult, error) {
	cfg = cfg.withDefaults()
	if holdout <= 0 {
		holdout = 0.3
	}
	if holdout >= 1 {
		return nil, fmt.Errorf("surrogate: holdout fraction %g must be < 1", holdout)
	}
	n := len(samples)
	testN := int(math.Round(float64(n) * holdout))
	if testN < 1 {
		testN = 1
	}
	if n-testN < 2 {
		return nil, fmt.Errorf("surrogate: %d samples leave no training split at holdout %g", n, holdout)
	}

	// Deterministic shuffle: the split depends only on (samples, seed).
	perm := numeric.NewRNG(seed).Perm(n)
	shuffled := make([]EvalSample, n)
	for i, p := range perm {
		shuffled[i] = samples[p]
	}
	test, train := shuffled[:testN], shuffled[testN:]

	regs := make([]mlpred.RegSample, len(train))
	for i, s := range train {
		regs[i] = mlpred.RegSample{Features: s.Features, Target: s.Log10Rate}
	}
	forest, err := mlpred.TrainRegForest(regs, cfg.Trees,
		mlpred.Config{MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf}, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("surrogate: eval training: %w", err)
	}

	res := &EvalResult{TrainN: len(train), TestN: len(test)}
	type scored struct{ std, absErr float64 }
	preds := make([]scored, len(test))
	var sumAbs numeric.KahanSum
	for i, s := range test {
		mean, std := forest.Predict(s.Features)
		e := math.Abs(mean - s.Log10Rate)
		preds[i] = scored{std: std, absErr: e}
		sumAbs.Add(e)
	}
	res.MAE = sumAbs.Value() / float64(len(test))

	pointAt := func(bound float64) CurvePoint {
		pt := CurvePoint{Bound: bound}
		var sum numeric.KahanSum
		for _, p := range preds {
			if !(p.std <= bound) {
				continue
			}
			pt.Served++
			sum.Add(p.absErr)
			if p.absErr > pt.MaxErr {
				pt.MaxErr = p.absErr
			}
		}
		if pt.Served > 0 {
			pt.Coverage = float64(pt.Served) / float64(len(test))
			pt.MAE = sum.Value() / float64(pt.Served)
		}
		return pt
	}

	gated := pointAt(cfg.MaxStd)
	res.GatedMAE, res.GatedCoverage = gated.MAE, gated.Coverage

	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	for _, b := range sorted {
		res.Curve = append(res.Curve, pointAt(b))
	}
	return res, nil
}
