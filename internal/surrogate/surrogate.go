// Package surrogate implements the ML fast tier of the two-tier estimation
// service: a regression random forest (internal/mlpred) that predicts the
// log10 error rate of a request directly from cheap static features, orders
// of magnitude faster than the exact simulate → activity → DTA → Eq.(14)
// pipeline — the FATE-style learned predictor, but wrapped in a confidence
// gate so it never silently replaces the exact answer where it cannot be
// trusted.
//
// The contract has three parts:
//
//   - Calibrated uncertainty. Every prediction carries a standard deviation
//     combining within-leaf training spread with across-tree disagreement
//     (mlpred.RegForest.Predict). The gate serves a prediction only when
//     that std is within the configured bound AND the prediction does not
//     land inside the guard band around a caller-supplied error-rate
//     threshold — near a decision boundary, being wrong matters most, so
//     those requests always escalate to the exact tier.
//
//   - Online learning. Every exact result is fed back through Observe into
//     a bounded ring buffer; once enough new observations accumulate the
//     tier retrains in the background and atomically swaps the model.
//     Serving never blocks on training.
//
//   - Fingerprint isolation. The tier is keyed on the model fingerprint
//     (errormodel options + cell library). Snapshots persisted through
//     internal/modelcache embed the fingerprint and are rejected on
//     mismatch, so a surrogate never answers for a different characterized
//     machine.
//
// Determinism: this package is in the detsource lint scope. Training is a
// pure function of (buffer contents, config seed); retraining cadence is
// counted in observations, never wall-clock time. The predictions
// themselves are approximate by design — the exact tier alone carries the
// bit-reproducibility contract (DESIGN.md §15).
package surrogate

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"tsperr/internal/mlpred"
	"tsperr/internal/modelcache"
)

// Escalation reasons, exported so metrics and responses use one vocabulary.
const (
	// ReasonServed marks a prediction the gate accepted.
	ReasonServed = "served"
	// ReasonUntrained: no model yet (or a feature-schema mismatch).
	ReasonUntrained = "untrained"
	// ReasonUncertain: prediction std exceeded Config.MaxStd.
	ReasonUncertain = "uncertain"
	// ReasonNearThreshold: the prediction landed within Config.GuardBand of
	// the caller's error-rate threshold.
	ReasonNearThreshold = "near_threshold"
)

// Config assembles a Tier. Zero fields select the documented defaults.
type Config struct {
	// Fingerprint is the model content address the training labels come
	// from (required). It keys persistence and guards snapshot loads.
	Fingerprint string
	// Dir is the snapshot directory ("" disables persistence).
	Dir string
	// MinTrain is the buffer size below which the tier stays untrained
	// (default 32).
	MinTrain int
	// RetrainEvery triggers a background retrain after this many new
	// observations since the last training (default 16).
	RetrainEvery int
	// BufferCap bounds the training ring buffer (default 4096 samples);
	// the oldest observations fall out first.
	BufferCap int
	// Trees/MaxDepth/MinLeaf shape the forest (defaults 24/8/2).
	Trees    int
	MaxDepth int
	MinLeaf  int
	// Seed determines the forest's bootstrap resampling (default 1).
	Seed uint64
	// MaxStd is the confidence bound in log10 units: predictions with a
	// larger uncertainty escalate (default 0.25, i.e. ~1.8x in rate).
	MaxStd float64
	// GuardBand escalates predictions within this log10 distance of a
	// caller-supplied error-rate threshold (default 0.15).
	GuardBand float64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MinTrain <= 0 {
		c.MinTrain = 32
	}
	if c.RetrainEvery <= 0 {
		c.RetrainEvery = 16
	}
	if c.BufferCap <= 0 {
		c.BufferCap = 4096
	}
	if c.Trees <= 0 {
		c.Trees = 24
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxStd <= 0 {
		c.MaxStd = 0.25
	}
	if c.GuardBand <= 0 {
		c.GuardBand = 0.15
	}
	return c
}

// Sample is one training observation: the request's feature vector and the
// exact tier's log10 mean error rate.
type Sample struct {
	Features  []float64
	Log10Rate float64
}

// Prediction is one fast-tier answer with its calibrated uncertainty.
type Prediction struct {
	// Log10Rate is the predicted log10 mean error rate; Rate is 10^Log10Rate.
	Log10Rate float64
	Rate      float64
	// Std is the prediction's standard deviation in log10 units.
	Std float64
	// ModelVersion and TrainSize identify the model that answered.
	ModelVersion int
	TrainSize    int
}

// Decision is the gate's verdict on one request.
type Decision struct {
	// Serve is true when the prediction is confident enough to answer
	// without the exact pipeline.
	Serve bool
	// Reason is ReasonServed, or the escalation reason when !Serve.
	Reason string
	// Pred is the prediction that was evaluated (nil when untrained).
	Pred *Prediction
}

// model is the immutable trained state swapped atomically under serving.
type model struct {
	forest    *mlpred.RegForest
	version   int
	trainSize int
}

// Stats is a point-in-time snapshot of the tier's learning state.
type Stats struct {
	// ModelVersion is 0 before the first training; TrainSize is the buffer
	// size the current model was fitted on.
	ModelVersion int
	TrainSize    int
	// Buffered is the current training-buffer occupancy; Trainings counts
	// completed (re)trainings, including one restored from a snapshot.
	Buffered  int
	Trainings uint64
}

// Tier is the surrogate fast tier. All methods are safe for concurrent use:
// Predict/Decide are lock-free on an atomic model pointer, Observe takes a
// short buffer lock and hands training to a single background goroutine.
type Tier struct {
	cfg Config

	model atomic.Pointer[model]

	mu sync.Mutex
	// buf is a ring of the last BufferCap observations; start indexes the
	// oldest, n counts the occupancy. Guarded by mu.
	buf   []Sample
	start int
	n     int
	// sinceTrain counts observations since the last training trigger;
	// guarded by mu.
	sinceTrain int

	trainings  atomic.Uint64
	retraining atomic.Bool
	wg         sync.WaitGroup
}

// New builds a Tier and, when persistence is configured, restores the
// snapshot saved for this model fingerprint (a snapshot for any other
// fingerprint is never loaded — modelcache.LoadSurrogate validates the
// embedded fingerprint and schema).
func New(cfg Config) (*Tier, error) {
	if cfg.Fingerprint == "" {
		return nil, errors.New("surrogate: Config.Fingerprint is required")
	}
	cfg = cfg.withDefaults()
	t := &Tier{cfg: cfg, buf: make([]Sample, cfg.BufferCap)}
	if cfg.Dir != "" {
		if snap, ok := modelcache.LoadSurrogate(cfg.Dir, cfg.Fingerprint); ok {
			for _, s := range snap.Samples {
				t.push(Sample{Features: s.Features, Log10Rate: s.Log10Rate})
			}
			if snap.Forest != nil {
				t.model.Store(&model{forest: snap.Forest, version: snap.Version, trainSize: len(snap.Samples)})
				t.trainings.Store(uint64(snap.Version))
			}
		}
	}
	return t, nil
}

// Predict evaluates the current model on a feature vector. ok is false
// while the tier is untrained or when the vector length disagrees with the
// trained schema (a stale model after a feature change must not answer).
func (t *Tier) Predict(features []float64) (Prediction, bool) {
	m := t.model.Load()
	if m == nil || len(features) != m.forest.NumFeatures {
		return Prediction{}, false
	}
	mean, std := m.forest.Predict(features)
	return Prediction{
		Log10Rate:    mean,
		Rate:         math.Pow(10, mean),
		Std:          std,
		ModelVersion: m.version,
		TrainSize:    m.trainSize,
	}, true
}

// Decide runs the confidence gate: predict, then serve only when the
// uncertainty is within bound and the prediction is not inside the guard
// band around threshold (a caller-supplied error rate, 0 = no threshold).
// The comparisons are written so a NaN std or prediction always escalates.
func (t *Tier) Decide(features []float64, threshold float64) Decision {
	pred, ok := t.Predict(features)
	if !ok {
		return Decision{Reason: ReasonUntrained}
	}
	d := Decision{Pred: &pred}
	if !(pred.Std <= t.cfg.MaxStd) || math.IsNaN(pred.Log10Rate) {
		d.Reason = ReasonUncertain
		return d
	}
	if threshold > 0 {
		if dist := math.Abs(pred.Log10Rate - math.Log10(threshold)); !(dist > t.cfg.GuardBand) {
			d.Reason = ReasonNearThreshold
			return d
		}
	}
	d.Serve = true
	d.Reason = ReasonServed
	return d
}

// Observe feeds one exact result back as training data and returns the
// current model's shadow residual |predicted − actual| in log10 units
// (ok == false while untrained). The residual is computed against the model
// as it stood BEFORE this observation, which is what makes it an honest
// out-of-sample accuracy measurement. Non-finite labels and features are
// dropped. When enough new observations have accumulated, a background
// retrain is triggered; Observe itself never blocks on training.
func (t *Tier) Observe(features []float64, log10Rate float64) (residual float64, ok bool) {
	if math.IsNaN(log10Rate) || math.IsInf(log10Rate, 0) {
		return 0, false
	}
	for _, f := range features {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, false
		}
	}
	if pred, predOK := t.Predict(features); predOK {
		residual = math.Abs(pred.Log10Rate - log10Rate)
		ok = true
	}

	// The tier owns its copy: callers may reuse the feature slice.
	s := Sample{Features: append([]float64(nil), features...), Log10Rate: log10Rate}
	t.mu.Lock()
	t.push(s)
	t.sinceTrain++
	var train []Sample
	if t.n >= t.cfg.MinTrain && t.sinceTrain >= t.cfg.RetrainEvery &&
		t.retraining.CompareAndSwap(false, true) {
		train = t.snapshotLocked()
		t.sinceTrain = 0
	}
	t.mu.Unlock()

	if train != nil {
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer t.retraining.Store(false)
			// A failed training (degenerate buffer) keeps the old model; the
			// next RetrainEvery observations trigger another attempt.
			_ = t.train(train)
		}()
	}
	return residual, ok
}

// push appends one sample to the ring, dropping the oldest at capacity.
// Callers hold mu (or have exclusive access during New).
func (t *Tier) push(s Sample) {
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = s
		t.n++
		return
	}
	t.buf[t.start] = s
	t.start = (t.start + 1) % len(t.buf)
}

// snapshotLocked copies the buffer oldest-first; callers hold mu.
func (t *Tier) snapshotLocked() []Sample {
	out := make([]Sample, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// Retrain trains synchronously on the current buffer (primarily for tests
// and the eval harness; production retraining rides Observe).
func (t *Tier) Retrain() error {
	t.mu.Lock()
	if t.n < 1 {
		t.mu.Unlock()
		return errors.New("surrogate: no observations to train on")
	}
	train := t.snapshotLocked()
	t.sinceTrain = 0
	t.mu.Unlock()
	return t.train(train)
}

// train fits a forest on the samples and atomically swaps it in, then
// persists the snapshot (best-effort: a failed write never disturbs
// serving).
func (t *Tier) train(samples []Sample) error {
	regs := make([]mlpred.RegSample, len(samples))
	for i, s := range samples {
		regs[i] = mlpred.RegSample{Features: s.Features, Target: s.Log10Rate}
	}
	forest, err := mlpred.TrainRegForest(regs, t.cfg.Trees,
		mlpred.Config{MaxDepth: t.cfg.MaxDepth, MinLeaf: t.cfg.MinLeaf}, t.cfg.Seed)
	if err != nil {
		return fmt.Errorf("surrogate: training: %w", err)
	}
	version := int(t.trainings.Add(1))
	t.model.Store(&model{forest: forest, version: version, trainSize: len(samples)})
	if t.cfg.Dir != "" {
		persisted := make([]modelcache.SurrogateSample, len(samples))
		for i, s := range samples {
			persisted[i] = modelcache.SurrogateSample{Features: s.Features, Log10Rate: s.Log10Rate}
		}
		_ = modelcache.SaveSurrogate(t.cfg.Dir, t.cfg.Fingerprint, &modelcache.SurrogateSnapshot{
			Version: version,
			Forest:  forest,
			Samples: persisted,
		})
	}
	return nil
}

// Quiesce waits for any in-flight background retrain to finish (tests and
// orderly shutdown).
func (t *Tier) Quiesce() { t.wg.Wait() }

// Stats snapshots the learning state for /metrics.
func (t *Tier) Stats() Stats {
	st := Stats{Trainings: t.trainings.Load()}
	if m := t.model.Load(); m != nil {
		st.ModelVersion = m.version
		st.TrainSize = m.trainSize
	}
	t.mu.Lock()
	st.Buffered = t.n
	t.mu.Unlock()
	return st
}

// Bound returns the configured confidence bound (log10 units), echoed into
// response metadata so clients can see the gate the answer passed.
func (t *Tier) Bound() float64 { return t.cfg.MaxStd }
