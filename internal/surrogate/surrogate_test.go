package surrogate

import (
	"math"
	"testing"

	"tsperr/internal/numeric"
)

// synthSamples builds a deterministic labeled set: log10 rate is a smooth
// function of two features plus small noise, roughly spanning [-6, -1] the
// way real benchmark sweeps do.
func synthSamples(n int, seed uint64) []Sample {
	rng := numeric.NewRNG(seed)
	out := make([]Sample, n)
	for i := range out {
		x0 := rng.Float64() * 4 // ~log10 instruction count
		x1 := rng.Float64()     // ~working ratio
		y := -6 + x0 + 1.5*x1 + (rng.Float64()-0.5)*0.1
		out[i] = Sample{Features: []float64{x0, x1}, Log10Rate: y}
	}
	return out
}

func testConfig() Config {
	return Config{
		Fingerprint:  "test-fp",
		MinTrain:     16,
		RetrainEvery: 8,
		Trees:        12,
		MaxDepth:     6,
		MinLeaf:      2,
	}
}

func TestUntrainedAlwaysEscalates(t *testing.T) {
	tier, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := tier.Decide([]float64{1, 0.5}, 0)
	if d.Serve || d.Reason != ReasonUntrained || d.Pred != nil {
		t.Fatalf("untrained tier decision = %+v, want escalate/untrained", d)
	}
	if _, ok := tier.Predict([]float64{1, 0.5}); ok {
		t.Error("untrained tier produced a prediction")
	}
	if st := tier.Stats(); st.ModelVersion != 0 || st.Trainings != 0 {
		t.Errorf("untrained stats = %+v", st)
	}
}

// TestGateHonesty is the acceptance property: after training, EVERY decision
// whose prediction uncertainty exceeds the bound refuses to serve, and every
// served decision's std is within the bound. No exceptions, including NaN.
func TestGateHonesty(t *testing.T) {
	cfg := testConfig()
	cfg.MaxStd = 0.2
	tier, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range synthSamples(200, 3) {
		tier.Observe(s.Features, s.Log10Rate)
	}
	tier.Quiesce()
	if _, ok := tier.Predict([]float64{1, 0.5}); !ok {
		t.Fatal("tier did not train")
	}

	rng := numeric.NewRNG(99)
	served, escalated := 0, 0
	for i := 0; i < 500; i++ {
		// Half in-distribution, half far outside the training support.
		f := []float64{rng.Float64() * 4, rng.Float64()}
		if i%2 == 1 {
			f[0] += 20
			f[1] -= 5
		}
		d := tier.Decide(f, 0)
		pred, ok := tier.Predict(f)
		if !ok {
			t.Fatal("Predict disagreed with Decide about trained state")
		}
		if d.Serve {
			served++
			if !(pred.Std <= cfg.MaxStd) {
				t.Fatalf("served with std %g > bound %g", pred.Std, cfg.MaxStd)
			}
		} else {
			escalated++
			if d.Reason != ReasonUncertain {
				t.Fatalf("escalation reason %q, want %q", d.Reason, ReasonUncertain)
			}
			if pred.Std <= cfg.MaxStd && !math.IsNaN(pred.Log10Rate) {
				t.Fatalf("escalated with std %g <= bound %g", pred.Std, cfg.MaxStd)
			}
		}
	}
	if served == 0 {
		t.Error("gate served nothing in-distribution; bound miscalibrated")
	}
	if escalated == 0 {
		t.Error("gate escalated nothing out-of-distribution; uncertainty is not discriminating")
	}
}

func TestGuardBandEscalatesNearThreshold(t *testing.T) {
	cfg := testConfig()
	cfg.MaxStd = 10 // effectively disable the uncertainty arm
	cfg.GuardBand = 0.5
	tier, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range synthSamples(200, 3) {
		tier.Observe(s.Features, s.Log10Rate)
	}
	tier.Quiesce()

	f := []float64{2, 0.5}
	pred, ok := tier.Predict(f)
	if !ok {
		t.Fatal("tier did not train")
	}
	// A threshold right at the prediction: inside the guard band, escalate.
	at := math.Pow(10, pred.Log10Rate)
	if d := tier.Decide(f, at); d.Serve || d.Reason != ReasonNearThreshold {
		t.Fatalf("decision at threshold = %+v, want near_threshold escalation", d)
	}
	// A threshold 2 decades away: well outside the band, serve.
	far := math.Pow(10, pred.Log10Rate+2)
	if d := tier.Decide(f, far); !d.Serve || d.Reason != ReasonServed {
		t.Fatalf("decision far from threshold = %+v, want served", d)
	}
	// No threshold at all: the guard band does not apply.
	if d := tier.Decide(f, 0); !d.Serve {
		t.Fatalf("decision without threshold = %+v, want served", d)
	}
}

func TestObserveTriggersBackgroundRetrain(t *testing.T) {
	cfg := testConfig()
	cfg.MinTrain = 8
	cfg.RetrainEvery = 8
	tier, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := synthSamples(64, 5)
	for _, s := range samples[:8] {
		if _, ok := tier.Observe(s.Features, s.Log10Rate); ok {
			t.Fatal("untrained tier reported a shadow residual")
		}
	}
	tier.Quiesce()
	st := tier.Stats()
	if st.Trainings != 1 || st.ModelVersion != 1 {
		t.Fatalf("after first batch: %+v, want one training", st)
	}

	// Subsequent observations produce honest shadow residuals against the
	// model as it stood before the observation landed.
	sawResidual := false
	for _, s := range samples[8:] {
		if r, ok := tier.Observe(s.Features, s.Log10Rate); ok {
			sawResidual = true
			if math.IsNaN(r) || r < 0 {
				t.Fatalf("bad residual %g", r)
			}
		}
	}
	tier.Quiesce()
	if !sawResidual {
		t.Error("no shadow residuals after training")
	}
	st = tier.Stats()
	if st.Trainings < 2 {
		t.Errorf("trainings = %d, want retrains after %d more observations", st.Trainings, len(samples)-8)
	}
	if st.ModelVersion != int(st.Trainings) {
		t.Errorf("model version %d != trainings %d: swap not atomic with counter", st.ModelVersion, st.Trainings)
	}
}

func TestObserveDropsNonFinite(t *testing.T) {
	tier, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tier.Observe([]float64{1, 2}, math.Inf(-1))
	tier.Observe([]float64{1, 2}, math.NaN())
	tier.Observe([]float64{math.NaN(), 2}, -3)
	tier.Observe([]float64{1, math.Inf(1)}, -3)
	if st := tier.Stats(); st.Buffered != 0 {
		t.Errorf("non-finite observations buffered: %+v", st)
	}
}

func TestBufferBounded(t *testing.T) {
	cfg := testConfig()
	cfg.BufferCap = 32
	cfg.MinTrain = 1000000 // never train; isolate the ring
	tier, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tier.Observe([]float64{float64(i), 0}, -3)
	}
	if st := tier.Stats(); st.Buffered != 32 {
		t.Fatalf("buffered = %d, want cap 32", st.Buffered)
	}
	// The ring keeps the newest 32: features 68..99 oldest-first.
	tier.mu.Lock()
	snap := tier.snapshotLocked()
	tier.mu.Unlock()
	for i, s := range snap {
		// The features were stored verbatim; integer-valued floats this small
		// compare exactly, so use the bit pattern.
		if want := float64(68 + i); math.Float64bits(s.Features[0]) != math.Float64bits(want) {
			t.Fatalf("ring[%d] = %g, want %g (drop-oldest)", i, s.Features[0], want)
		}
	}
}

func TestFeatureLengthMismatchEscalates(t *testing.T) {
	tier, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range synthSamples(64, 5) {
		tier.Observe(s.Features, s.Log10Rate)
	}
	tier.Quiesce()
	if _, ok := tier.Predict([]float64{1, 0.5}); !ok {
		t.Fatal("tier did not train")
	}
	if _, ok := tier.Predict([]float64{1, 0.5, 9}); ok {
		t.Error("stale-schema prediction served: 3 features against a 2-feature model")
	}
	if d := tier.Decide([]float64{1}, 0); d.Serve || d.Reason != ReasonUntrained {
		t.Errorf("schema-mismatch decision = %+v, want untrained escalation", d)
	}
}

func TestPersistenceRestoreAndFingerprintIsolation(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.Dir = dir
	tier, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range synthSamples(64, 5) {
		tier.Observe(s.Features, s.Log10Rate)
	}
	tier.Quiesce()
	want, ok := tier.Predict([]float64{2, 0.5})
	if !ok {
		t.Fatal("tier did not train")
	}

	// Same fingerprint: a fresh Tier restores the model and the buffer.
	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := restored.Predict([]float64{2, 0.5})
	if !ok {
		t.Fatal("restored tier is untrained")
	}
	// Restore is a bit-identity contract, so compare the raw bits.
	if math.Float64bits(got.Log10Rate) != math.Float64bits(want.Log10Rate) ||
		math.Float64bits(got.Std) != math.Float64bits(want.Std) {
		t.Errorf("restored prediction (%g,%g) != original (%g,%g)",
			got.Log10Rate, got.Std, want.Log10Rate, want.Std)
	}
	if st := restored.Stats(); st.Buffered == 0 || st.Trainings == 0 {
		t.Errorf("restored stats = %+v, want buffer and training count back", st)
	}

	// Different fingerprint, same directory: starts untrained. The snapshot
	// belongs to another characterized machine and must never answer here.
	other := cfg
	other.Fingerprint = "other-machine"
	alien, err := New(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := alien.Predict([]float64{2, 0.5}); ok {
		t.Fatal("tier answered from another fingerprint's snapshot")
	}
	if st := alien.Stats(); st.Buffered != 0 {
		t.Errorf("alien tier inherited a buffer: %+v", st)
	}
}

func TestNewRequiresFingerprint(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty fingerprint")
	}
}

func TestEvalCurve(t *testing.T) {
	var samples []EvalSample
	for i, s := range synthSamples(300, 11) {
		samples = append(samples, EvalSample{
			Name:      "synth",
			Scenarios: i % 8,
			Features:  s.Features,
			Log10Rate: s.Log10Rate,
		})
	}
	cfg := testConfig()
	bounds := []float64{0.05, 0.15, 0.3, 1}
	res, err := Eval(samples, cfg, bounds, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainN+res.TestN != len(samples) || res.TestN < 80 {
		t.Fatalf("split %d/%d", res.TrainN, res.TestN)
	}
	if res.MAE <= 0 || res.MAE > 0.3 {
		t.Errorf("held-out MAE = %g, want (0, 0.3]", res.MAE)
	}
	if len(res.Curve) != len(bounds) {
		t.Fatalf("curve has %d points, want %d", len(res.Curve), len(bounds))
	}
	prev := -1.0
	for _, pt := range res.Curve {
		if pt.Coverage < prev {
			t.Errorf("coverage not monotone in bound: %+v", res.Curve)
		}
		prev = pt.Coverage
		if pt.Served > 0 && pt.MAE < 0 {
			t.Errorf("negative MAE at bound %g", pt.Bound)
		}
	}
	if last := res.Curve[len(res.Curve)-1]; last.Coverage < 0.9 {
		t.Errorf("loosest bound covers %g, want ~1", last.Coverage)
	}

	// Determinism: same inputs, same result.
	res2, err := Eval(samples, cfg, bounds, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res2.MAE) != math.Float64bits(res.MAE) ||
		math.Float64bits(res2.GatedCoverage) != math.Float64bits(res.GatedCoverage) {
		t.Error("Eval is not deterministic for a fixed seed")
	}

	// Too few samples to split is an error, not a panic.
	if _, err := Eval(samples[:2], cfg, nil, 0.5, 1); err == nil {
		t.Error("Eval accepted a 2-sample split")
	}
}
