package numeric

import "math"

// RNG is a small, fast, deterministic random number generator (SplitMix64)
// used for Monte Carlo sampling. It is reproducible across platforms, which
// the project relies on to regenerate tables and figures deterministically.
type RNG struct {
	state uint64
	// spare holds a cached second normal deviate from Box-Muller.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("numeric: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a uniformly random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Norm returns a standard normal deviate via the Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Poisson returns a Poisson(lambda) deviate. For small lambda it uses Knuth's
// product method; for large lambda the PTRS-like normal-based rejection is
// replaced by a simple normal approximation with continuity correction, which
// is adequate for the validation workloads in this project.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	x := lambda + math.Sqrt(lambda)*r.Norm()
	if x < 0 {
		return 0
	}
	return int(math.Floor(x + 0.5))
}
