// Package numeric provides the low-level numerical routines shared by the
// statistical timing and error-rate estimation packages: Gaussian
// distribution functions, Clark's moment-matching max/min operators,
// quadrature, Cholesky factorization, and numerically stable summation.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// InvSqrt2Pi is 1/sqrt(2*pi), the normalization constant of the standard
// normal density.
const InvSqrt2Pi = 0.3989422804014327

// NormalPDF returns the density of the standard normal distribution at x.
func NormalPDF(x float64) float64 {
	return InvSqrt2Pi * math.Exp(-0.5*x*x)
}

// NormalCDF returns P(Z <= x) for a standard normal variable Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalCDFMeanStd returns P(X <= x) for X ~ N(mean, std^2). A zero or
// negative std degenerates to a step function at mean.
func NormalCDFMeanStd(x, mean, std float64) float64 {
	if std <= 0 {
		if x < mean {
			return 0
		}
		return 1
	}
	return NormalCDF((x - mean) / std)
}

// ErrQuantileDomain reports a quantile probability outside (0, 1).
var ErrQuantileDomain = errors.New("numeric: quantile probability outside (0, 1)")

// NormalQuantileErr is NormalQuantile with the domain check surfaced as a
// returned error instead of a panic: the form to use whenever p derives from
// user input or configuration. p of exactly 0 or 1 yields the infinite
// quantile without error.
func NormalQuantileErr(p float64) (float64, error) {
	switch {
	case p == 0:
		return math.Inf(-1), nil
	case p == 1:
		return math.Inf(1), nil
	case p > 0 && p < 1:
		return NormalQuantile(p), nil
	}
	return math.NaN(), fmt.Errorf("%w: p = %v", ErrQuantileDomain, p)
}

// NormalQuantile returns the x such that NormalCDF(x) = p, using the
// Beasley-Springer-Moro / Acklam rational approximation refined with one
// Halley step. It panics for p outside (0, 1); interior hot paths with
// compile-time-constant p may rely on that, while anything fed from input
// should go through NormalQuantileErr.
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p == 0 {
			return math.Inf(-1)
		}
		if p == 1 {
			return math.Inf(1)
		}
		panic("numeric: NormalQuantile requires 0 < p < 1")
	}
	// Acklam's approximation.
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-2.400758277161838e+00)*q-2.549732539343734e+00)*q+4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((-3.969683028665376e+01*r+2.209460984245205e+02)*r-2.759285104469687e+02)*r+1.383577518672690e+02)*r-3.066479806614716e+01)*r + 2.506628277459239e+00) * q /
			(((((-5.447609879822406e+01*r+1.615858368580409e+02)*r-1.556989798598866e+02)*r+6.680131188771972e+01)*r-1.328068155288572e+01)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-2.400758277161838e+00)*q-2.549732539343734e+00)*q+4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// Gaussian is a one-dimensional Gaussian distribution.
type Gaussian struct {
	Mean float64
	Std  float64
}

// CDF returns P(X <= x).
func (g Gaussian) CDF(x float64) float64 { return NormalCDFMeanStd(x, g.Mean, g.Std) }

// PDF returns the density at x.
func (g Gaussian) PDF(x float64) float64 {
	if g.Std <= 0 {
		return 0
	}
	z := (x - g.Mean) / g.Std
	return NormalPDF(z) / g.Std
}

// Quantile returns the p-th quantile.
func (g Gaussian) Quantile(p float64) float64 {
	return g.Mean + g.Std*NormalQuantile(p)
}

// QuantileErr is Quantile with the domain check surfaced as an error.
func (g Gaussian) QuantileErr(p float64) (float64, error) {
	q, err := NormalQuantileErr(p)
	if err != nil {
		return math.NaN(), err
	}
	return g.Mean + g.Std*q, nil
}

// Var returns the variance.
func (g Gaussian) Var() float64 { return g.Std * g.Std }

// ErrNotPosDef reports that a matrix handed to Cholesky was not (numerically)
// symmetric positive definite.
var ErrNotPosDef = errors.New("numeric: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L of a symmetric positive
// definite matrix a (row-major n x n) such that L L^T = a. The input is not
// modified.
func Cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotPosDef
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}
