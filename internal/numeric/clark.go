package numeric

import "math"

// ClarkResult holds the moment-matched Gaussian approximation of the max (or
// min) of two correlated Gaussians, plus the tightness probability of the
// first argument, i.e. P(A > B) for max and P(A < B) for min.
type ClarkResult struct {
	Mean      float64
	Std       float64
	Tightness float64
}

// ClarkMax approximates max(A, B) of two jointly Gaussian variables with
// correlation rho by a Gaussian, using Clark's classical first- and
// second-moment matching (C. E. Clark, 1961). This is the primitive used by
// block-based SSTA engines; the paper's statistical-minimum step [21] chains
// the dual operator ClarkMin in a greedy order.
func ClarkMax(a, b Gaussian, rho float64) ClarkResult {
	va, vb := a.Var(), b.Var()
	theta2 := va + vb - 2*rho*a.Std*b.Std
	if theta2 <= 1e-300 {
		// Perfectly correlated with equal spread: max is just the larger mean.
		if a.Mean >= b.Mean {
			return ClarkResult{Mean: a.Mean, Std: a.Std, Tightness: 1}
		}
		return ClarkResult{Mean: b.Mean, Std: b.Std, Tightness: 0}
	}
	theta := math.Sqrt(theta2)
	alpha := (a.Mean - b.Mean) / theta
	phi := NormalPDF(alpha)
	cdf := NormalCDF(alpha)
	mean := a.Mean*cdf + b.Mean*(1-cdf) + theta*phi
	second := (va+a.Mean*a.Mean)*cdf + (vb+b.Mean*b.Mean)*(1-cdf) + (a.Mean+b.Mean)*theta*phi
	variance := second - mean*mean
	if variance < 0 {
		variance = 0
	}
	return ClarkResult{Mean: mean, Std: math.Sqrt(variance), Tightness: cdf}
}

// ClarkMin approximates min(A, B) as -max(-A, -B). The returned tightness is
// P(A < B), the probability that A is the minimum.
func ClarkMin(a, b Gaussian, rho float64) ClarkResult {
	r := ClarkMax(Gaussian{-a.Mean, a.Std}, Gaussian{-b.Mean, b.Std}, rho)
	return ClarkResult{Mean: -r.Mean, Std: r.Std, Tightness: r.Tightness}
}
