package numeric

import (
	"math"
	"testing"
)

func TestStreamStatsMatchesBatchMoments(t *testing.T) {
	rng := NewRNG(42)
	xs := make([]float64, 1000)
	var s StreamStats
	for i := range xs {
		xs[i] = 10*rng.Float64() - 3
		s.Add(xs[i])
	}
	if s.N != int64(len(xs)) {
		t.Fatalf("N = %d, want %d", s.N, len(xs))
	}
	if d := math.Abs(s.Mean - Mean(xs)); d > 1e-12 {
		t.Errorf("mean %v vs batch %v", s.Mean, Mean(xs))
	}
	if d := math.Abs(s.Variance() - Variance(xs)); d > 1e-9 {
		t.Errorf("variance %v vs batch %v", s.Variance(), Variance(xs))
	}
	if d := math.Abs(s.Std() - StdDev(xs)); d > 1e-9 {
		t.Errorf("std %v vs batch %v", s.Std(), StdDev(xs))
	}
}

func TestStreamStatsMergeExact(t *testing.T) {
	// Split one sample at every possible cut point: the merged accumulator
	// must agree with the single-stream one within rounding.
	rng := NewRNG(7)
	xs := make([]float64, 257)
	var whole StreamStats
	for i := range xs {
		xs[i] = rng.Norm()
		whole.Add(xs[i])
	}
	for cut := 0; cut <= len(xs); cut += 16 {
		var a, b StreamStats
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		m := a.Merge(b)
		if m.N != whole.N {
			t.Fatalf("cut %d: N = %d, want %d", cut, m.N, whole.N)
		}
		if d := math.Abs(m.Mean - whole.Mean); d > 1e-12 {
			t.Errorf("cut %d: mean off by %v", cut, d)
		}
		if d := math.Abs(m.Variance() - whole.Variance()); d > 1e-10 {
			t.Errorf("cut %d: variance off by %v", cut, d)
		}
	}
}

func TestStreamStatsMergeEmpty(t *testing.T) {
	var empty StreamStats
	var s StreamStats
	s.Add(2)
	s.Add(4)
	if got := empty.Merge(s); got != s {
		t.Errorf("empty.Merge(s) = %+v, want %+v", got, s)
	}
	if got := s.Merge(empty); got != s {
		t.Errorf("s.Merge(empty) = %+v, want %+v", got, s)
	}
	if got := empty.Merge(empty); got != (StreamStats{}) {
		t.Errorf("empty merge = %+v", got)
	}
	if empty.Variance() != 0 || empty.Std() != 0 {
		t.Errorf("empty accumulator should have zero moments")
	}
}

func TestMergeStatsOrderIsFixed(t *testing.T) {
	// MergeStats must be a pure function of the slice contents: the pairwise
	// tree depends only on the index order, so any permutation of chunk
	// *completion* (which never reorders the slice) is irrelevant by
	// construction. What we pin here is that the reduction equals the
	// explicit left-to-right tree evaluated by hand, bit for bit.
	rng := NewRNG(99)
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		chunks := make([]StreamStats, n)
		for c := range chunks {
			for k := 0; k < 10+c; k++ {
				chunks[c].Add(rng.Float64() * 100)
			}
		}
		want := pairwiseRef(chunks)
		got := MergeStats(chunks)
		if got != want {
			t.Errorf("n=%d: MergeStats = %+v, want %+v", n, got, want)
		}
	}
}

// pairwiseRef is an independent recursive implementation of the fixed
// pairwise tree.
func pairwiseRef(stats []StreamStats) StreamStats {
	switch len(stats) {
	case 0:
		return StreamStats{}
	case 1:
		return stats[0]
	}
	var next []StreamStats
	for i := 0; i < len(stats); i += 2 {
		if i+1 < len(stats) {
			next = append(next, stats[i].Merge(stats[i+1]))
		} else {
			next = append(next, stats[i])
		}
	}
	return pairwiseRef(next)
}

func TestMergeStatsDoesNotMutateInput(t *testing.T) {
	var a, b StreamStats
	a.Add(1)
	a.Add(2)
	b.Add(10)
	before := []StreamStats{a, b}
	in := []StreamStats{a, b}
	MergeStats(in)
	if in[0] != before[0] || in[1] != before[1] {
		t.Errorf("MergeStats mutated its input: %+v vs %+v", in, before)
	}
}
