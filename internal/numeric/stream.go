package numeric

import "math"

// StreamStats accumulates count, mean, and the centered second moment of a
// sample in a single pass (Welford's algorithm). Two accumulators can be
// combined exactly with Merge (Chan, Golub & LeVeque), which lets Monte Carlo
// chunks computed on different workers be reduced into the same statistics a
// single serial pass would produce — provided the merge order is fixed, which
// MergeStats guarantees.
type StreamStats struct {
	N    int64
	Mean float64
	// M2 is the sum of squared deviations from the running mean.
	M2 float64
}

// Add folds one observation into the accumulator.
func (s *StreamStats) Add(x float64) {
	s.N++
	delta := x - s.Mean
	s.Mean += delta / float64(s.N)
	s.M2 += delta * (x - s.Mean)
}

// Merge combines two accumulators as if their samples had been observed in
// one stream. The result is exact (not an approximation), so merging is
// associative up to floating-point rounding; for bit-reproducible reductions
// the combine tree must be fixed, which MergeStats provides.
func (s StreamStats) Merge(o StreamStats) StreamStats {
	if s.N == 0 {
		return o
	}
	if o.N == 0 {
		return s
	}
	n := s.N + o.N
	delta := o.Mean - s.Mean
	return StreamStats{
		N:    n,
		Mean: s.Mean + delta*float64(o.N)/float64(n),
		M2:   s.M2 + o.M2 + delta*delta*float64(s.N)*float64(o.N)/float64(n),
	}
}

// Variance returns the population variance, matching Variance on the raw
// sample.
func (s StreamStats) Variance() float64 {
	if s.N == 0 {
		return 0
	}
	return s.M2 / float64(s.N)
}

// Std returns the population standard deviation, matching StdDev on the raw
// sample.
func (s StreamStats) Std() float64 { return math.Sqrt(s.Variance()) }

// MergeStats reduces per-chunk accumulators with a pairwise binary tree in
// index order. The tree shape and traversal depend only on len(stats), never
// on which chunk finished first, so the reduction is bit-reproducible across
// worker counts and scheduling orders. Pairwise reduction also keeps rounding
// error O(log n) rather than O(n) for long chunk lists.
func MergeStats(stats []StreamStats) StreamStats {
	if len(stats) == 0 {
		return StreamStats{}
	}
	level := make([]StreamStats, len(stats))
	copy(level, stats)
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, level[i].Merge(level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}
