package numeric

import (
	"math"
	"testing"
)

// Property tests over seeded randomized inputs. The RNG is the package's own
// SplitMix64, so every run exercises the same cases — failures reproduce.

// NormalQuantile must invert NormalCDF across the usable x range.
func TestNormalQuantileCDFRoundTrip(t *testing.T) {
	rng := NewRNG(0x5eed)
	for i := 0; i < 5000; i++ {
		x := -6 + 12*rng.Float64()
		p := NormalCDF(x)
		got := NormalQuantile(p)
		if math.Abs(got-x) > 1e-6 {
			t.Fatalf("case %d: NormalQuantile(NormalCDF(%v)) = %v (diff %v)",
				i, x, got, got-x)
		}
	}
}

// The inverse must also hold starting from p, including deep tails: the
// Halley refinement drives NormalCDF(NormalQuantile(p)) back onto p to
// near-relative precision.
func TestNormalCDFQuantileRoundTripInP(t *testing.T) {
	rng := NewRNG(0xface)
	for i := 0; i < 5000; i++ {
		// Log-uniform over (1e-12, 0.5], then mirrored to cover (0.5, 1).
		p := math.Pow(10, -12*rng.Float64()) / 2
		for _, q := range []float64{p, 1 - p} {
			x := NormalQuantile(q)
			small := math.Min(q, 1-q)
			if d := math.Abs(NormalCDF(x) - q); d > 1e-6*small+1e-15 {
				t.Fatalf("case %d: NormalCDF(NormalQuantile(%v)) off by %v", i, q, d)
			}
		}
		// Symmetry: Q(1-p) = -Q(p) up to the approximation's own x-space
		// error plus the rounding of 1-p itself: half an ulp of 1.0 (~1e-16
		// of mass) maps through the inverse with slope 1/pdf, which dominates
		// in the deep tails.
		xp := NormalQuantile(p)
		cond := 2e-16 / NormalPDF(xp)
		if d := math.Abs(NormalQuantile(1-p) + xp); d > cond+1e-6 {
			t.Fatalf("case %d: quantile asymmetry %v at p=%v (rounding floor %v)", i, d, p, cond)
		}
	}
}

// NormalCDF must be monotone nondecreasing and bounded to [0, 1].
func TestNormalCDFMonotone(t *testing.T) {
	rng := NewRNG(7)
	for i := 0; i < 5000; i++ {
		a := -40 + 80*rng.Float64()
		b := -40 + 80*rng.Float64()
		if a > b {
			a, b = b, a
		}
		ca, cb := NormalCDF(a), NormalCDF(b)
		if ca < 0 || cb > 1 || ca > cb {
			t.Fatalf("case %d: CDF(%v)=%v, CDF(%v)=%v not monotone in [0,1]", i, a, ca, b, cb)
		}
	}
}

// The mean/std wrapper must reduce to the standard normal via the affine map.
func TestGaussianQuantileCDFRoundTrip(t *testing.T) {
	rng := NewRNG(0xbead)
	for i := 0; i < 2000; i++ {
		g := Gaussian{Mean: -50 + 100*rng.Float64(), Std: 1e-3 + 10*rng.Float64()}
		x := g.Mean + (rng.Float64()*10-5)*g.Std
		p := g.CDF(x)
		if p <= 0 || p >= 1 {
			continue // beyond float resolution of the tail
		}
		got := g.Quantile(p)
		if math.Abs(got-x) > 1e-5*g.Std {
			t.Fatalf("case %d: %+v Quantile(CDF(%v)) = %v", i, g, x, got)
		}
	}
}
