package numeric

import "math"

// Simpson integrates f over [a, b] with n subintervals (rounded up to even)
// using composite Simpson's rule.
func Simpson(f func(float64) float64, a, b float64, n int) float64 {
	//tsperrlint:ignore floatcmp identical bounds are the exact degenerate-interval sentinel; any tolerance would wrongly zero thin intervals
	if a == b {
		return 0
	}
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// KahanSum accumulates float64 values with Neumaier's compensated summation,
// preserving precision when summing many small probabilities.
type KahanSum struct {
	sum float64
	c   float64
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	t := k.sum + v
	if math.Abs(k.sum) >= math.Abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Value returns the compensated sum.
func (k *KahanSum) Value() float64 { return k.sum + k.c }

// Sum returns the compensated sum of xs.
func Sum(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Value()
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than 2 values).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var k KahanSum
	for _, x := range xs {
		d := x - m
		k.Add(d * d)
	}
	return k.Value() / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Clamp returns x limited to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ApproxEq reports whether a and b agree within tol, measured as absolute
// error for small magnitudes and relative error for large ones:
// |a-b| <= tol * max(1, |a|, |b|). This is the approved alternative to
// exact float equality (see the floatcmp analyzer in internal/lint).
func ApproxEq(a, b, tol float64) bool {
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*math.Max(1, m)
}
