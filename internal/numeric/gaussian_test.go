package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		got := NormalCDF(c.x)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for p := 0.0005; p < 1; p += 0.0007 {
		x := NormalQuantile(p)
		back := NormalCDF(x)
		if math.Abs(back-p) > 1e-10 {
			t.Fatalf("roundtrip failed at p=%v: quantile=%v cdf=%v", p, x, back)
		}
	}
}

func TestNormalQuantileTails(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("quantile endpoints should be infinite")
	}
	if x := NormalQuantile(1e-12); x > -6 {
		t.Errorf("deep lower tail quantile too large: %v", x)
	}
}

func TestNormalQuantileSymmetryProperty(t *testing.T) {
	f := func(raw float64) bool {
		p := 0.5 + 0.499*math.Tanh(raw) // map to (0.001, 0.999)
		return math.Abs(NormalQuantile(p)+NormalQuantile(1-p)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGaussianCDFPDFConsistency(t *testing.T) {
	g := Gaussian{Mean: 2, Std: 3}
	// Numerical derivative of CDF should match PDF.
	for _, x := range []float64{-4, 0, 2, 5, 9} {
		h := 1e-5
		d := (g.CDF(x+h) - g.CDF(x-h)) / (2 * h)
		if math.Abs(d-g.PDF(x)) > 1e-6 {
			t.Errorf("dCDF(%v)=%v, PDF=%v", x, d, g.PDF(x))
		}
	}
}

func TestGaussianDegenerate(t *testing.T) {
	g := Gaussian{Mean: 1, Std: 0}
	if g.CDF(0.999) != 0 || g.CDF(1) != 1 {
		t.Error("degenerate Gaussian should be a step at the mean")
	}
	if g.PDF(1) != 0 {
		t.Error("degenerate PDF defined as 0")
	}
}

func TestClarkMaxAgainstMonteCarlo(t *testing.T) {
	rng := NewRNG(7)
	cases := []struct {
		a, b Gaussian
		rho  float64
	}{
		{Gaussian{0, 1}, Gaussian{0, 1}, 0},
		{Gaussian{1, 0.5}, Gaussian{0, 2}, 0.3},
		{Gaussian{-1, 1}, Gaussian{1, 1}, -0.5},
		{Gaussian{3, 0.1}, Gaussian{0, 0.1}, 0.9},
	}
	const n = 200000
	for _, c := range cases {
		res := ClarkMax(c.a, c.b, c.rho)
		var sum, sum2, tight float64
		for i := 0; i < n; i++ {
			z1 := rng.Norm()
			z2 := c.rho*z1 + math.Sqrt(1-c.rho*c.rho)*rng.Norm()
			x := c.a.Mean + c.a.Std*z1
			y := c.b.Mean + c.b.Std*z2
			m := math.Max(x, y)
			sum += m
			sum2 += m * m
			if x > y {
				tight++
			}
		}
		mcMean := sum / n
		mcStd := math.Sqrt(sum2/n - mcMean*mcMean)
		if math.Abs(res.Mean-mcMean) > 0.02 {
			t.Errorf("ClarkMax mean %v vs MC %v (case %+v)", res.Mean, mcMean, c)
		}
		if math.Abs(res.Std-mcStd) > 0.03 {
			t.Errorf("ClarkMax std %v vs MC %v (case %+v)", res.Std, mcStd, c)
		}
		if math.Abs(res.Tightness-tight/n) > 0.01 {
			t.Errorf("ClarkMax tightness %v vs MC %v", res.Tightness, tight/n)
		}
	}
}

func TestClarkMinDuality(t *testing.T) {
	a := Gaussian{1, 0.7}
	b := Gaussian{1.5, 0.4}
	mn := ClarkMin(a, b, 0.2)
	mx := ClarkMax(a, b, 0.2)
	// E[min] + E[max] = E[A] + E[B].
	if math.Abs((mn.Mean+mx.Mean)-(a.Mean+b.Mean)) > 1e-12 {
		t.Errorf("min+max mean identity violated: %v + %v != %v",
			mn.Mean, mx.Mean, a.Mean+b.Mean)
	}
	if mn.Mean > math.Min(a.Mean, b.Mean) {
		t.Errorf("E[min]=%v should not exceed min of means %v", mn.Mean, math.Min(a.Mean, b.Mean))
	}
}

func TestClarkDegenerateEqual(t *testing.T) {
	a := Gaussian{2, 1}
	res := ClarkMax(a, a, 1)
	//tsperrlint:ignore floatcmp the degenerate Clark max is an algebraic identity and must hold exactly
	if res.Mean != a.Mean || res.Std != a.Std {
		t.Errorf("max of identical fully-correlated vars should be unchanged, got %+v", res)
	}
}

func TestCholesky(t *testing.T) {
	a := [][]float64{
		{4, 2, 0.6},
		{2, 5, 1.2},
		{0.6, 1.2, 3},
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	n := len(a)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += l[i][k] * l[j][k]
			}
			if math.Abs(s-a[i][j]) > 1e-10 {
				t.Errorf("LL^T[%d][%d] = %v, want %v", i, j, s, a[i][j])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 1}}
	if _, err := Cholesky(a); err == nil {
		t.Error("expected error for indefinite matrix")
	}
}

func TestSimpson(t *testing.T) {
	got := Simpson(func(x float64) float64 { return x * x }, 0, 3, 100)
	if math.Abs(got-9) > 1e-9 {
		t.Errorf("integral of x^2 over [0,3] = %v, want 9", got)
	}
	got = Simpson(math.Sin, 0, math.Pi, 200)
	if math.Abs(got-2) > 1e-8 {
		t.Errorf("integral of sin over [0,pi] = %v, want 2", got)
	}
	if Simpson(math.Sin, 1, 1, 10) != 0 {
		t.Error("zero-width integral should be 0")
	}
}

func TestSimpsonNormalizesGaussian(t *testing.T) {
	g := Gaussian{Mean: -1, Std: 2.5}
	got := Simpson(g.PDF, g.Mean-10*g.Std, g.Mean+10*g.Std, 2000)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("Gaussian pdf integrates to %v", got)
	}
}

func TestKahanSum(t *testing.T) {
	var k KahanSum
	k.Add(1e16)
	for i := 0; i < 10; i++ {
		k.Add(1)
	}
	k.Add(-1e16)
	if k.Value() != 10 {
		t.Errorf("compensated sum = %v, want 10", k.Value())
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("variance = %v", v)
	}
	if StdDev(xs) != 2 {
		t.Errorf("stddev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/singleton edge cases")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(-1, 0, 1) != 0 || Clamp(2, 0, 1) != 1 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp misbehaves")
	}
}

// Regression: out-of-domain probabilities used to panic; the Err form must
// return ErrQuantileDomain instead, while the endpoints stay infinite.
func TestNormalQuantileErrDomain(t *testing.T) {
	for _, p := range []float64{-0.1, 1.5, math.NaN()} {
		if _, err := NormalQuantileErr(p); err == nil {
			t.Errorf("NormalQuantileErr(%v) should fail", p)
		}
	}
	if x, err := NormalQuantileErr(0); err != nil || !math.IsInf(x, -1) {
		t.Errorf("NormalQuantileErr(0) = %v, %v", x, err)
	}
	if x, err := NormalQuantileErr(1); err != nil || !math.IsInf(x, 1) {
		t.Errorf("NormalQuantileErr(1) = %v, %v", x, err)
	}
	if x, err := NormalQuantileErr(0.975); err != nil || math.Abs(x-1.959964) > 1e-4 {
		t.Errorf("NormalQuantileErr(0.975) = %v, %v", x, err)
	}
}

func TestGaussianQuantileErr(t *testing.T) {
	g := Gaussian{Mean: 10, Std: 2}
	q, err := g.QuantileErr(0.5)
	if err != nil || math.Abs(q-10) > 1e-9 {
		t.Errorf("median = %v, %v", q, err)
	}
	if _, err := g.QuantileErr(2); err == nil {
		t.Error("out-of-domain quantile should fail")
	}
}
