package numeric

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGUniformMoments(t *testing.T) {
	r := NewRNG(3)
	const n = 100000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v", variance)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sum2, sum3 float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
		sum3 += v * v * v
	}
	if m := sum / n; math.Abs(m) > 0.01 {
		t.Errorf("normal mean = %v", m)
	}
	if v := sum2 / n; math.Abs(v-1) > 0.02 {
		t.Errorf("normal variance = %v", v)
	}
	if s := sum3 / n; math.Abs(s) > 0.05 {
		t.Errorf("normal skewness numerator = %v", s)
	}
}

func TestRNGPoissonMoments(t *testing.T) {
	r := NewRNG(11)
	for _, lambda := range []float64{0.5, 3, 12, 80} {
		const n = 60000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(lambda))
			sum += v
			sum2 += v * v
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.08*lambda+0.1 {
			t.Errorf("Poisson(%v) variance = %v", lambda, variance)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("non-positive lambda should give 0")
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(9)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("expected all 7 residues, saw %d", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}
