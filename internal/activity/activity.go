// Package activity performs cycle-accurate logic simulation of a netlist and
// records, for every clock cycle, the set of activated gates per Definition
// 3.2 of the paper: a gate is activated in a cycle if, were the clock period
// sufficiently long, its output net would eventually change value. With a
// zero-delay settling model this is exactly "the settled output at cycle t
// differs from the settled output at cycle t-1". The per-cycle activation
// sets are the VCD(t) input of Algorithm 1.
package activity

import (
	"sync"

	"tsperr/internal/cell"
	"tsperr/internal/netlist"
)

// BitSet is a dense set of gate IDs.
type BitSet []uint64

// NewBitSet returns a set able to hold n elements.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set inserts id.
func (b BitSet) Set(id netlist.GateID) { b[id>>6] |= 1 << (uint(id) & 63) }

// Clear removes id.
func (b BitSet) Clear(id netlist.GateID) { b[id>>6] &^= 1 << (uint(id) & 63) }

// Has reports membership.
func (b BitSet) Has(id netlist.GateID) bool {
	return b[id>>6]&(1<<(uint(id)&63)) != 0
}

// Count returns the number of members.
func (b BitSet) Count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Clone returns a copy.
func (b BitSet) Clone() BitSet {
	c := make(BitSet, len(b))
	copy(c, b)
	return c
}

// Trace records per-cycle activation sets: Sets[t] is VCD(t).
type Trace struct {
	Sets []BitSet
	// NumGates is the size of the simulated netlist, kept for VCD encoding.
	NumGates int
}

// Activated reports whether gate id is activated at cycle t. Cycles outside
// the trace report false.
func (tr *Trace) Activated(t int, id netlist.GateID) bool {
	if t < 0 || t >= len(tr.Sets) {
		return false
	}
	return tr.Sets[t].Has(id)
}

// Cycles returns the trace length.
func (tr *Trace) Cycles() int { return len(tr.Sets) }

// Simulator evaluates a netlist one clock cycle at a time.
type Simulator struct {
	n       *netlist.Netlist
	topo    []netlist.GateID
	values  []bool // settled output values in the current cycle
	prev    []bool // settled output values in the previous cycle
	state   []bool // flip-flop captured states
	inBuf   []bool // scratch for gate input gathering
	inDense []bool // scratch for map-to-dense input conversion
	first   bool
}

// simScratch bundles the per-gate-count working slices of one simulator so
// they recycle as a unit.
type simScratch struct {
	values, prev, state, inDense []bool
	inBuf                        []bool
}

// simPools recycles simulator scratch per gate count. Datapath training and
// control characterization build many short-lived simulators over the same
// handful of netlists, so the dense slices are reused across them (zeroed on
// reuse, matching the power-on state of a fresh allocation) instead of
// reallocated per stimulus.
var simPools sync.Map // map[int]*sync.Pool

func getScratch(m int) *simScratch {
	p, ok := simPools.Load(m)
	if !ok {
		p, _ = simPools.LoadOrStore(m, &sync.Pool{})
	}
	if sc, ok := p.(*sync.Pool).Get().(*simScratch); ok {
		clear(sc.values)
		clear(sc.prev)
		clear(sc.state)
		clear(sc.inDense)
		clear(sc.inBuf)
		return sc
	}
	return &simScratch{
		values:  make([]bool, m),
		prev:    make([]bool, m),
		state:   make([]bool, m),
		inDense: make([]bool, m),
		inBuf:   make([]bool, 3),
	}
}

// NewSimulator builds a simulator; the netlist must validate. The working
// slices come from a per-size slab pool; call Release when the simulator is
// done to recycle them.
func NewSimulator(n *netlist.Netlist) (*Simulator, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	topo, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	sc := getScratch(n.NumGates())
	return &Simulator{
		n:       n,
		topo:    topo,
		values:  sc.values,
		prev:    sc.prev,
		state:   sc.state,
		inBuf:   sc.inBuf,
		inDense: sc.inDense,
		first:   true,
	}, nil
}

// Release returns the simulator's scratch slices to the slab pool. The
// simulator must not be used afterwards; the returned activation BitSets are
// freshly allocated per cycle and remain valid.
func (s *Simulator) Release() {
	if s.values == nil {
		return
	}
	sc := &simScratch{values: s.values, prev: s.prev, state: s.state,
		inDense: s.inDense, inBuf: s.inBuf}
	s.values, s.prev, s.state, s.inDense, s.inBuf = nil, nil, nil, nil, nil
	if p, ok := simPools.Load(len(sc.values)); ok {
		p.(*sync.Pool).Put(sc)
	}
}

// Reset clears all state, returning the simulator to power-on (all zeros).
func (s *Simulator) Reset() {
	for i := range s.values {
		s.values[i] = false
		s.prev[i] = false
		s.state[i] = false
	}
	s.first = true
}

// SetState forces a flip-flop's captured state (used to seed architectural
// state).
func (s *Simulator) SetState(id netlist.GateID, v bool) { s.state[id] = v }

// State reads a flip-flop's captured state.
func (s *Simulator) State(id netlist.GateID) bool { return s.state[id] }

// Value reads a gate's settled output in the last simulated cycle.
func (s *Simulator) Value(id netlist.GateID) bool { return s.values[id] }

// Cycle advances one clock cycle: flip-flops capture the D values settled in
// the previous cycle, primary inputs take the supplied values, combinational
// logic settles, and the set of activated gates is returned. The returned
// BitSet is freshly allocated and safe to retain. Inputs absent from the map
// read as false.
func (s *Simulator) Cycle(inputs map[netlist.GateID]bool) BitSet {
	for i := range s.inDense {
		s.inDense[i] = false
	}
	for id, v := range inputs {
		if v && int(id) < len(s.inDense) {
			s.inDense[id] = true
		}
	}
	return s.CycleDense(s.inDense)
}

// CycleDense is Cycle with the primary-input values supplied as a dense
// slice indexed by GateID (len >= NumGates); only INPUT gates are read. The
// caller may mutate and reuse vals across cycles, which avoids the per-cycle
// map hashing of Cycle on hot characterization paths.
func (s *Simulator) CycleDense(vals []bool) BitSet {
	gates := s.n.Gates()
	// Clock edge: capture D pins from the previous cycle's settled values.
	if !s.first {
		for i := range gates {
			g := &gates[i]
			if g.Kind == cell.DFF {
				s.state[g.ID] = s.values[g.Fanin[0]]
			}
		}
	}
	s.prev, s.values = s.values, s.prev
	// Settle in topological order.
	for _, id := range s.topo {
		g := &gates[id]
		switch g.Kind {
		case cell.INPUT:
			s.values[id] = vals[id]
		case cell.DFF:
			s.values[id] = s.state[id]
		case cell.CONST0:
			s.values[id] = false
		case cell.CONST1:
			s.values[id] = true
		default:
			in := s.inBuf[:len(g.Fanin)]
			for k, f := range g.Fanin {
				in[k] = s.values[f]
			}
			s.values[id] = g.Kind.Eval(in)
		}
	}
	// Activation: settled value changed versus the previous cycle. In the
	// very first cycle everything that settles to 1 is considered activated
	// (transition from the unknown/zero power-on state).
	act := NewBitSet(len(gates))
	for i := range gates {
		id := netlist.GateID(i)
		if s.first {
			if s.values[id] {
				act.Set(id)
			}
		} else if s.values[id] != s.prev[id] {
			act.Set(id)
		}
	}
	s.first = false
	return act
}

// Run simulates len(inputSeq) cycles, applying inputSeq[t] at cycle t, and
// returns the activation trace.
func (s *Simulator) Run(inputSeq []map[netlist.GateID]bool) *Trace {
	tr := &Trace{NumGates: s.n.NumGates()}
	for _, in := range inputSeq {
		tr.Sets = append(tr.Sets, s.Cycle(in))
	}
	return tr
}
