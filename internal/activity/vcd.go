package activity

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tsperr/internal/netlist"
)

// VCD support: the DTA flow of Figure 1 consumes signal activity as a VCD
// file. We implement the subset needed to round-trip activation traces: one
// single-bit wire per gate, scalar value changes, and #<cycle> timestamps.
// A gate appears in a cycle's change list exactly when it is activated in
// that cycle, so activation sets and VCD change records are in bijection
// (starting from the all-zero power-on state).

// idCode converts a gate index into a VCD identifier (printable ASCII 33-126).
func idCode(i int) string {
	var b []byte
	for {
		b = append(b, byte(33+i%94))
		i /= 94
		if i == 0 {
			break
		}
	}
	return string(b)
}

// parseIDCode inverts idCode; ok is false for malformed identifiers.
func parseIDCode(s string) (int, bool) {
	v := 0
	mul := 1
	for i := 0; i < len(s); i++ {
		c := int(s[i])
		if c < 33 || c > 126 {
			return 0, false
		}
		v += (c - 33) * mul
		mul *= 94
	}
	return v, true
}

// WriteVCD serializes an activation trace as a VCD document. Gate values are
// reconstructed by toggling from the all-zero initial state at each
// activation, which reproduces exactly the value stream a zero-delay
// simulator would dump.
func WriteVCD(w io.Writer, tr *Trace, moduleName string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$date tsperr $end\n$version tsperr activity trace $end\n")
	fmt.Fprintf(bw, "$timescale 1ns $end\n$scope module %s $end\n", moduleName)
	for i := 0; i < tr.NumGates; i++ {
		fmt.Fprintf(bw, "$var wire 1 %s g%d $end\n", idCode(i), i)
	}
	fmt.Fprintf(bw, "$upscope $end\n$enddefinitions $end\n")
	vals := make([]bool, tr.NumGates)
	for t, set := range tr.Sets {
		fmt.Fprintf(bw, "#%d\n", t)
		for i := 0; i < tr.NumGates; i++ {
			id := netlist.GateID(i)
			if set.Has(id) {
				vals[i] = !vals[i]
				bit := byte('0')
				if vals[i] {
					bit = '1'
				}
				fmt.Fprintf(bw, "%c%s\n", bit, idCode(i))
			}
		}
	}
	return bw.Flush()
}

// ReadVCD parses a VCD document written by WriteVCD (or any VCD using scalar
// single-bit changes with #cycle timestamps) back into an activation trace.
func ReadVCD(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	tr := &Trace{}
	numGates := 0
	cur := -1
	var set BitSet
	flush := func() {
		if cur >= 0 {
			for len(tr.Sets) < cur {
				tr.Sets = append(tr.Sets, NewBitSet(numGates))
			}
			tr.Sets = append(tr.Sets, set)
		}
	}
	inHeader := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if inHeader {
			if strings.HasPrefix(line, "$var") {
				numGates++
				continue
			}
			if strings.HasPrefix(line, "$enddefinitions") {
				inHeader = false
				tr.NumGates = numGates
			}
			continue
		}
		switch line[0] {
		case '#':
			t, err := strconv.Atoi(line[1:])
			if err != nil {
				return nil, fmt.Errorf("activity: bad timestamp %q", line)
			}
			flush()
			cur = t
			set = NewBitSet(numGates)
		case '0', '1', 'x', 'z':
			idx, ok := parseIDCode(line[1:])
			if !ok || idx >= numGates {
				return nil, fmt.Errorf("activity: bad identifier in %q", line)
			}
			if cur < 0 {
				return nil, fmt.Errorf("activity: value change before first timestamp: %q", line)
			}
			set.Set(netlist.GateID(idx))
		case '$':
			// $dumpvars etc. — ignore.
		default:
			return nil, fmt.Errorf("activity: unrecognized VCD line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return tr, nil
}
