package activity

import (
	"bytes"
	"testing"
)

// FuzzReadVCD is a native fuzz target: the VCD parser must never panic on
// arbitrary bytes. Run with: go test -fuzz FuzzReadVCD ./internal/activity
func FuzzReadVCD(f *testing.F) {
	f.Add([]byte("$var wire 1 ! g0 $end\n$enddefinitions $end\n#0\n1!\n"))
	f.Add([]byte("#0\n0!\n"))
	f.Add([]byte("$enddefinitions $end\n#x\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadVCD(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must round-trip through the writer.
		var buf bytes.Buffer
		if err := WriteVCD(&buf, tr, "fuzz"); err != nil {
			t.Errorf("accepted trace failed to serialize: %v", err)
		}
	})
}
