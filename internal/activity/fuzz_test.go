package activity

import (
	"bytes"
	"testing"

	"tsperr/internal/netlist"
	"tsperr/internal/numeric"
)

// TestReadVCDNeverPanics feeds random byte soup to the VCD parser.
func TestReadVCDNeverPanics(t *testing.T) {
	rng := numeric.NewRNG(2024)
	pieces := []string{
		"$var wire 1 ! g0 $end\n", "$enddefinitions $end\n", "#0\n", "#17\n",
		"0!\n", "1!\n", "x!\n", "$dumpvars\n", "garbage\n", "#-1\n", "0\x7f\n",
		"##\n", "", "1\n",
	}
	for trial := 0; trial < 500; trial++ {
		var buf bytes.Buffer
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			buf.WriteString(pieces[rng.Intn(len(pieces))])
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", buf.String(), r)
				}
			}()
			_, _ = ReadVCD(bytes.NewReader(buf.Bytes()))
		}()
	}
}

// TestVCDRoundTripRandomTraces round-trips randomly generated activation
// traces of varying shapes.
func TestVCDRoundTripRandomTraces(t *testing.T) {
	rng := numeric.NewRNG(77)
	for trial := 0; trial < 100; trial++ {
		gates := 1 + rng.Intn(200)
		cycles := rng.Intn(20)
		tr := &Trace{NumGates: gates}
		for c := 0; c < cycles; c++ {
			set := NewBitSet(gates)
			for g := 0; g < gates; g++ {
				if rng.Float64() < 0.2 {
					set.Set(netlist.GateID(g))
				}
			}
			tr.Sets = append(tr.Sets, set)
		}
		var buf bytes.Buffer
		if err := WriteVCD(&buf, tr, "fuzz"); err != nil {
			t.Fatal(err)
		}
		back, err := ReadVCD(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back.NumGates != gates || back.Cycles() != cycles {
			t.Fatalf("trial %d: shape mismatch", trial)
		}
		for c := 0; c < cycles; c++ {
			for g := 0; g < gates; g++ {
				if tr.Activated(c, netlist.GateID(g)) != back.Activated(c, netlist.GateID(g)) {
					t.Fatalf("trial %d: mismatch at cycle %d gate %d", trial, c, g)
				}
			}
		}
	}
}
