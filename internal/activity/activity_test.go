package activity

import (
	"bytes"
	"testing"
	"testing/quick"

	"tsperr/internal/cell"
	"tsperr/internal/netlist"
)

// buildAdderStage returns a 1-stage netlist computing sum/carry of two input
// bits into two flip-flops.
func buildAdderStage(t *testing.T) (*netlist.Netlist, map[string]netlist.GateID) {
	t.Helper()
	n := netlist.New("halfadder", 1)
	ids := map[string]netlist.GateID{}
	ids["a"] = n.Add(cell.INPUT, "a", 0)
	ids["b"] = n.Add(cell.INPUT, "b", 0)
	ids["sum"] = n.Add(cell.XOR2, "sum", 0, ids["a"], ids["b"])
	ids["carry"] = n.Add(cell.AND2, "carry", 0, ids["a"], ids["b"])
	ids["ffs"] = n.Add(cell.DFF, "ffs", 0, ids["sum"])
	ids["ffc"] = n.Add(cell.DFF, "ffc", 0, ids["carry"])
	return n, ids
}

func TestSimulatorLogic(t *testing.T) {
	n, ids := buildAdderStage(t)
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle 1: a=1 b=0 -> sum=1 carry=0.
	sim.Cycle(map[netlist.GateID]bool{ids["a"]: true})
	if !sim.Value(ids["sum"]) || sim.Value(ids["carry"]) {
		t.Fatal("half adder logic wrong for 1+0")
	}
	// Cycle 2: flip-flops capture previous outputs.
	sim.Cycle(map[netlist.GateID]bool{ids["a"]: true, ids["b"]: true})
	if !sim.State(ids["ffs"]) || sim.State(ids["ffc"]) {
		t.Fatal("FF should have captured sum=1 carry=0")
	}
	if sim.Value(ids["sum"]) || !sim.Value(ids["carry"]) {
		t.Fatal("half adder logic wrong for 1+1")
	}
}

func TestActivationSemantics(t *testing.T) {
	n, ids := buildAdderStage(t)
	sim, _ := NewSimulator(n)
	// Cycle 1: a=1 -> sum toggles to 1 (activated), carry stays 0.
	act := sim.Cycle(map[netlist.GateID]bool{ids["a"]: true})
	if !act.Has(ids["sum"]) {
		t.Error("sum should be activated in cycle 1")
	}
	if act.Has(ids["carry"]) {
		t.Error("carry stayed 0 and should not be activated")
	}
	// Cycle 2: same inputs -> combinational nets unchanged; only the sum FF
	// output changes as it captures the 1.
	act = sim.Cycle(map[netlist.GateID]bool{ids["a"]: true})
	if act.Has(ids["sum"]) || act.Has(ids["carry"]) {
		t.Error("unchanged nets must not be activated")
	}
	if !act.Has(ids["ffs"]) {
		t.Error("ffs output changed 0->1 and should be activated")
	}
	// Cycle 3: a=0 -> sum toggles 1->0.
	act = sim.Cycle(nil)
	if !act.Has(ids["sum"]) {
		t.Error("sum should be activated when input drops")
	}
}

func TestSimulatorReset(t *testing.T) {
	n, ids := buildAdderStage(t)
	sim, _ := NewSimulator(n)
	sim.Cycle(map[netlist.GateID]bool{ids["a"]: true, ids["b"]: true})
	sim.Cycle(nil)
	sim.Reset()
	act := sim.Cycle(map[netlist.GateID]bool{ids["a"]: true})
	if !act.Has(ids["sum"]) {
		t.Error("after reset the first cycle should re-activate rising nets")
	}
	if sim.State(ids["ffc"]) {
		t.Error("reset should clear FF state")
	}
}

func TestBitSet(t *testing.T) {
	b := NewBitSet(130)
	ids := []netlist.GateID{0, 63, 64, 129}
	for _, id := range ids {
		b.Set(id)
	}
	for _, id := range ids {
		if !b.Has(id) {
			t.Errorf("missing %d", id)
		}
	}
	if b.Count() != 4 {
		t.Errorf("count=%d", b.Count())
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 3 {
		t.Error("clear failed")
	}
	c := b.Clone()
	c.Set(64)
	if b.Has(64) {
		t.Error("clone should be independent")
	}
}

func TestTraceAccessors(t *testing.T) {
	tr := &Trace{NumGates: 10, Sets: []BitSet{NewBitSet(10)}}
	tr.Sets[0].Set(3)
	if !tr.Activated(0, 3) || tr.Activated(0, 4) {
		t.Error("activation lookup wrong")
	}
	if tr.Activated(-1, 3) || tr.Activated(5, 3) {
		t.Error("out-of-range cycles must report false")
	}
	if tr.Cycles() != 1 {
		t.Error("cycle count")
	}
}

func TestVCDRoundTrip(t *testing.T) {
	n, ids := buildAdderStage(t)
	sim, _ := NewSimulator(n)
	seq := []map[netlist.GateID]bool{
		{ids["a"]: true},
		{ids["a"]: true, ids["b"]: true},
		{},
		{ids["b"]: true},
	}
	tr := sim.Run(seq)
	var buf bytes.Buffer
	if err := WriteVCD(&buf, tr, "halfadder"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadVCD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumGates != tr.NumGates || back.Cycles() != tr.Cycles() {
		t.Fatalf("shape mismatch: %d/%d gates, %d/%d cycles",
			back.NumGates, tr.NumGates, back.Cycles(), tr.Cycles())
	}
	for c := 0; c < tr.Cycles(); c++ {
		for g := 0; g < tr.NumGates; g++ {
			id := netlist.GateID(g)
			if tr.Activated(c, id) != back.Activated(c, id) {
				t.Errorf("cycle %d gate %d mismatch", c, g)
			}
		}
	}
}

func TestVCDRejectsGarbage(t *testing.T) {
	if _, err := ReadVCD(bytes.NewBufferString("$enddefinitions $end\nnot-a-line\n")); err == nil {
		t.Error("expected parse error")
	}
	if _, err := ReadVCD(bytes.NewBufferString("$enddefinitions $end\n#x\n")); err == nil {
		t.Error("expected timestamp error")
	}
	if _, err := ReadVCD(bytes.NewBufferString("$var wire 1 ! g0 $end\n$enddefinitions $end\n0!\n")); err == nil {
		t.Error("value change before timestamp should fail")
	}
}

func TestIDCodeRoundTripProperty(t *testing.T) {
	f := func(raw uint16) bool {
		i := int(raw)
		got, ok := parseIDCode(idCode(i))
		return ok && got == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
