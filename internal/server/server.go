package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"tsperr/internal/cell"
	"tsperr/internal/cluster"
	"tsperr/internal/core"
	"tsperr/internal/montecarlo"
	"tsperr/internal/pool"
)

// AnalyzeFunc runs one estimation. The daemon wires
// harness.AnalyzeWithOpts; tests substitute fakes. It must honor ctx
// cancellation — that is how client disconnects and shutdown reach the
// pipeline.
type AnalyzeFunc func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error)

// AnalyzeAtFunc runs one estimation at an explicit operating point: a
// (voltage, temperature) condition plus a frequency ratio (0 = the design's
// working ratio). The daemon wires harness.AnalyzeAtPoint; tests substitute
// fakes.
type AnalyzeAtFunc func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts, cond cell.OperatingCondition, ratio float64) (*core.Report, error)

// Config assembles a Server. Zero fields select the documented defaults.
type Config struct {
	// Analyze is the estimation entry point (required).
	Analyze AnalyzeFunc
	// AnalyzeAt, when non-nil, serves requests carrying operating-point
	// overrides (freq_ratio / voltage / temp_c) and enables POST /v1/oppoint.
	// When nil, such requests are rejected at validation.
	AnalyzeAt AnalyzeAtFunc
	// Fingerprint identifies the loaded model (options + cell library); it
	// is folded into every request key so results never leak across
	// operating points. The daemon uses the model-cache content address.
	Fingerprint string
	// Workers is the compute-queue worker count (default 2); QueueDepth is
	// the pending backlog beyond which requests get 503 (default 4x
	// workers).
	Workers    int
	QueueDepth int
	// CacheSize is the LRU result-cache capacity (default 128 reports).
	CacheSize int
	// Limits is the request validation envelope; zero fields default to
	// DefaultScenarios 1, MaxScenarios 64, MaxRetries 8, MaxWorkers 64.
	Limits Limits
	// DefaultTimeout bounds a computation when the request asks for no
	// deadline (0 = none); MaxTimeout caps what a request may ask for.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// JobRetention caps stored async jobs (default 256); when every
	// retained job is still pending, new async requests get 503.
	JobRetention int
	// MaxBatch caps the scenario count of one POST /v1/batch suite
	// (default 32).
	MaxBatch int
	// BatchRetention caps stored batches (default 64); when every retained
	// batch is still running, new batch requests get 503.
	BatchRetention int
	// Cluster, when non-nil, attaches the distributed layer: Monte Carlo
	// validation chunks fan out across the peers and plain estimates route
	// by consistent hash for cluster-wide dedup (coordinator role).
	Cluster Cluster
	// ChunkSource, when non-nil, mounts POST /v1/cluster/chunk so this node
	// executes Monte Carlo chunks for cluster coordinators (worker role).
	// The daemon wires harness.MCSpec.
	ChunkSource cluster.SpecSource
	// Surrogate, when non-nil, attaches the ML fast tier; SurrogateMode
	// selects off (default), shadow (train + residuals, never serve), or
	// serve (confident predictions answer directly). See surrogate.go.
	Surrogate     SurrogateTier
	SurrogateMode string
}

// flight is one deduplicated computation. The first request for a key
// creates it and submits the job; identical concurrent requests join it.
// Sync waiters hold references: when the last one leaves (client
// disconnect), the flight context is cancelled so the pipeline stops doing
// unobserved work. Async jobs ride the flight without a revocable
// reference — an accepted job always runs to completion.
type flight struct {
	cancel context.CancelFunc
	// done is closed after rep and err are set; waiters read them only
	// after <-done, which establishes the happens-before edge.
	done chan struct{}
	rep  *core.Report
	err  error

	// refs counts sync waiters; guarded by mu (the server's).
	refs int
	// hasJob marks an attached async job, which pins the flight even with
	// zero sync waiters; guarded by mu.
	hasJob bool
	// jobs are the async jobs to finish on completion; guarded by mu.
	jobs []*job
}

// job is one async estimation, addressable via GET /v1/jobs/{id}.
type job struct {
	id      string
	created time.Time
	// status is "pending", "done", or "failed"; guarded by mu (the
	// server's), as are rep and errMsg.
	status string
	rep    *core.Report
	errMsg string
}

// Server is the estimation service: admission (validation + canonical
// hashing), the dedup/cache layer, the bounded compute queue, the async job
// store, and the HTTP surface.
type Server struct {
	cfg   Config
	met   *metrics
	queue *pool.Queue
	// lifeCtx parents every computation; cancelling it (via Abort, or the
	// ctx given to New) aborts all in-flight work.
	lifeCtx  context.Context
	lifeStop context.CancelFunc
	start    time.Time

	// ready flips once the model is warm; estimates before that get 503.
	readyMu sync.Mutex
	isReady bool // guarded by readyMu

	mu sync.Mutex
	// flights maps request key to the in-flight computation; guarded by mu.
	flights map[string]*flight
	// cache is the LRU result cache; guarded by mu.
	cache *lru
	// jobs and jobOrder (insertion order, for retention eviction) hold the
	// async job store; guarded by mu.
	jobs     map[string]*job
	jobOrder []string
	// batches and batchOrder hold the batch store; guarded by mu.
	batches    map[string]*batch
	batchOrder []string
	// closed marks the server as draining: no new computations; guarded by
	// mu.
	closed bool
}

// New builds a Server whose computations live under ctx: cancelling it
// aborts everything in flight (the daemon passes a background context and
// uses Close/Abort instead).
func New(ctx context.Context, cfg Config) (*Server, error) {
	if cfg.Analyze == nil {
		return nil, errors.New("server: Config.Analyze is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 128
	}
	if cfg.Limits.DefaultScenarios <= 0 {
		cfg.Limits.DefaultScenarios = 1
	}
	if cfg.Limits.MaxScenarios <= 0 {
		cfg.Limits.MaxScenarios = 64
	}
	if cfg.Limits.MaxRetries <= 0 {
		cfg.Limits.MaxRetries = 8
	}
	if cfg.Limits.MaxWorkers <= 0 {
		cfg.Limits.MaxWorkers = 64
	}
	if cfg.JobRetention <= 0 {
		cfg.JobRetention = 256
	}
	if cfg.Limits.MaxMCTrials <= 0 {
		cfg.Limits.MaxMCTrials = 5000
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.BatchRetention <= 0 {
		cfg.BatchRetention = 64
	}
	if ctx == nil {
		return nil, errors.New("server: nil ctx")
	}
	if err := validateSurrogate(&cfg); err != nil {
		return nil, err
	}
	lifeCtx, lifeStop := context.WithCancel(ctx)
	s := &Server{
		cfg:      cfg,
		met:      &metrics{},
		lifeCtx:  lifeCtx,
		lifeStop: lifeStop,
		start:    time.Now(),
		flights:  make(map[string]*flight),
		cache:    newLRU(cfg.CacheSize),
		jobs:     make(map[string]*job),
		batches:  make(map[string]*batch),
	}
	s.queue = pool.NewQueue(lifeCtx, cfg.Workers, cfg.QueueDepth, func(*pool.PanicError) {
		s.met.panics.Add(1)
	})
	return s, nil
}

// SetReady marks the model warm; until then estimate requests get 503 and
// /healthz reports warming. The daemon calls it after SharedFramework
// returns.
func (s *Server) SetReady() {
	s.readyMu.Lock()
	s.isReady = true
	s.readyMu.Unlock()
}

func (s *Server) ready() bool {
	s.readyMu.Lock()
	defer s.readyMu.Unlock()
	return s.isReady
}

// Close gracefully drains the server: new computations are rejected, every
// queued and in-flight job (sync and async) runs to completion, and only
// then is the lifecycle context released. HTTP handlers waiting on those
// jobs therefore see real results during an http.Server.Shutdown drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.queue.Close()
	s.lifeStop()
}

// Abort is Close without the grace: the lifecycle context is cancelled
// first, so in-flight pipelines stop at their next context poll, then the
// queue drains the (now fast-failing) remainder.
func (s *Server) Abort() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.lifeStop()
	s.queue.Close()
}

// Handler returns the service's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	if s.cfg.AnalyzeAt != nil {
		mux.HandleFunc("POST /v1/oppoint", s.handleOppoint)
	}
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/batches/{id}", s.handleBatchGet)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.ChunkSource != nil {
		mux.HandleFunc("POST /v1/cluster/chunk", s.handleClusterChunk)
	}
	return mux
}

// estimateResponse is the sync success body; asyncResponse acknowledges an
// accepted async job; errorResponse carries every non-2xx body.
type estimateResponse struct {
	Key    string `json:"key"`
	Cached bool   `json:"cached"`
	// Tier says which tier answered: core.TierExact or core.TierSurrogate.
	Tier   string       `json:"tier"`
	Report *core.Report `json:"report"`
}

type asyncResponse struct {
	JobID  string `json:"job_id"`
	Status string `json:"status"`
}

type jobResponse struct {
	JobID  string       `json:"job_id"`
	Status string       `json:"status"`
	Report *core.Report `json:"report,omitempty"`
	Error  string       `json:"error,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body) // the client went away; nothing to do
}

// joinOutcome says how a request was matched to a result source.
type joinOutcome int

const (
	joinCreated  joinOutcome = iota // this request started the computation
	joinJoined                      // deduplicated onto an in-flight computation
	joinCacheHit                    // served from the LRU
	joinRejected                    // backpressure: queue full or draining
)

// join is the dedup/cache core: under one critical section it consults the
// result cache, then the flight table, and only then admits a new
// computation to the bounded queue. j, when non-nil, is an async job to
// attach to whatever flight the request lands on.
func (s *Server) join(req *Request, key string, j *job) (*core.Report, *flight, joinOutcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rep, ok := s.cache.get(key); ok {
		s.met.cacheHits.Add(1)
		return rep, nil, joinCacheHit
	}
	if f, ok := s.flights[key]; ok {
		s.met.dedupJoins.Add(1)
		if j != nil {
			f.hasJob = true
			f.jobs = append(f.jobs, j)
		} else {
			f.refs++
		}
		return nil, f, joinJoined
	}
	if s.closed {
		s.met.queueRejects.Add(1)
		return nil, nil, joinRejected
	}

	var fctx context.Context
	var cancel context.CancelFunc
	if d := req.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout); d > 0 {
		fctx, cancel = context.WithTimeout(s.lifeCtx, d)
	} else {
		fctx, cancel = context.WithCancel(s.lifeCtx)
	}
	f := &flight{cancel: cancel, done: make(chan struct{})}
	if j != nil {
		f.hasJob = true
		f.jobs = []*job{j}
	} else {
		f.refs = 1
	}
	// Copy the request so the computation owns an immutable snapshot — the
	// handler's *Request does not outlive the response.
	reqCopy := *req
	submitted := s.queue.TrySubmit(func(context.Context) {
		// Retire the flight even if the computation panics, so waiters are
		// released instead of blocking on done forever; the repanic lets the
		// queue's recovery account for it (the panics counter).
		defer func() {
			if r := recover(); r != nil {
				s.complete(key, f, nil, fmt.Errorf("internal error: panic in analyze: %v", r))
				panic(r)
			}
		}()
		rep, err := s.execute(fctx, &reqCopy, key)
		if err == nil {
			// Every successful exact result — sync, async, and batch entries
			// alike funnel through this closure — trains the surrogate and
			// updates the shadow-residual histogram.
			s.observeSurrogate(&reqCopy, rep)
		}
		s.complete(key, f, rep, err)
	})
	if !submitted {
		cancel()
		s.met.queueRejects.Add(1)
		return nil, nil, joinRejected
	}
	s.flights[key] = f
	s.met.computations.Add(1)
	return nil, f, joinCreated
}

// complete retires a flight: successful reports enter the cache, attached
// async jobs are finalized, and waiters are released. Failures are not
// cached — the next identical request retries.
func (s *Server) complete(key string, f *flight, rep *core.Report, err error) {
	s.mu.Lock()
	if cur, ok := s.flights[key]; ok && cur == f {
		delete(s.flights, key)
	}
	if err == nil {
		s.cache.add(key, rep)
	} else {
		s.met.failures.Add(1)
	}
	for _, j := range f.jobs {
		if err == nil {
			j.status = "done"
			j.rep = rep
		} else {
			j.status = "failed"
			j.errMsg = err.Error()
		}
	}
	s.mu.Unlock()
	f.rep, f.err = rep, err
	close(f.done)
	f.cancel()
}

// leave drops one sync waiter's reference. When the last observer leaves an
// unfinished flight with no attached async job, the computation is
// cancelled — nobody is left to read the result.
func (s *Server) leave(key string, f *flight) {
	s.mu.Lock()
	abandoned := false
	if cur, ok := s.flights[key]; ok && cur == f {
		f.refs--
		abandoned = f.refs <= 0 && !f.hasJob
	}
	s.mu.Unlock()
	if abandoned {
		f.cancel()
	}
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	s.met.estimateRequests.Add(1)
	start := time.Now()
	if !s.ready() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "model warming up, retry shortly"})
		return
	}
	// A forwarded request carrying a different model fingerprint must not be
	// answered: the coordinator's cache would silently mix operating points.
	if fp := r.Header.Get(cluster.HeaderFingerprint); fp != "" && fp != s.cfg.Fingerprint {
		s.met.fingerprintRejects.Add(1)
		writeJSON(w, http.StatusConflict, errorResponse{Error: "model fingerprint mismatch"})
		return
	}
	req, err := parseRequest(r, s.cfg.Limits)
	if err != nil {
		s.met.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if req.pointOverride() && s.cfg.AnalyzeAt == nil {
		s.met.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "this daemon does not serve operating-point overrides"})
		return
	}
	key := req.Key(s.cfg.Fingerprint)
	if req.Async {
		s.handleEstimateAsync(w, req, key)
		return
	}
	if s.surrogateEligible(req) {
		if rep := s.consultSurrogate(req, key); rep != nil {
			s.met.latency.observe(time.Since(start))
			writeJSON(w, http.StatusOK, estimateResponse{Key: key, Tier: core.TierSurrogate, Report: rep})
			return
		}
	}

	rep, f, outcome := s.join(req, key, nil)
	switch outcome {
	case joinCacheHit:
		s.met.latency.observe(time.Since(start))
		writeJSON(w, http.StatusOK, estimateResponse{Key: key, Cached: true, Tier: core.TierExact, Report: rep})
		return
	case joinRejected:
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "compute queue full, retry later"})
		return
	}

	select {
	case <-f.done:
	case <-r.Context().Done():
		// The client hung up; release our reference so an otherwise
		// unobserved computation is cancelled instead of burning the pool.
		s.leave(key, f)
		s.met.clientCancels.Add(1)
		return
	}
	s.leave(key, f)
	s.met.latency.observe(time.Since(start))
	if f.err != nil {
		code := http.StatusInternalServerError
		if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, errorResponse{Error: f.err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, estimateResponse{Key: key, Cached: false, Tier: core.TierExact, Report: f.rep})
}

// handleEstimateAsync registers a job, attaches it to the flight (or
// finishes it straight from the cache), and acknowledges with 202.
func (s *Server) handleEstimateAsync(w http.ResponseWriter, req *Request, key string) {
	j := &job{id: newJobID(), created: time.Now(), status: "pending"}
	if !s.storeJob(j) {
		s.met.queueRejects.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "job store full, retry later"})
		return
	}
	rep, _, outcome := s.join(req, key, j)
	switch outcome {
	case joinCacheHit:
		s.mu.Lock()
		j.status = "done"
		j.rep = rep
		s.mu.Unlock()
	case joinRejected:
		s.dropJob(j.id)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "compute queue full, retry later"})
		return
	}
	writeJSON(w, http.StatusAccepted, asyncResponse{JobID: j.id, Status: s.jobStatus(j)})
}

// jobStatus reads a job's status under mu (the job may have completed
// between join and the acknowledgement write).
func (s *Server) jobStatus(j *job) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.status
}

// storeJob retains a job, evicting the oldest finished job when over the
// retention cap; it refuses (false) when every retained job is still
// pending — job-store backpressure.
func (s *Server) storeJob(j *job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if len(s.jobs) >= s.cfg.JobRetention {
		evicted := false
		for i, id := range s.jobOrder {
			if old, ok := s.jobs[id]; ok && old.status != "pending" {
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return false
		}
	}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	return true
}

// dropJob removes a job that never got a computation (queue rejection).
func (s *Server) dropJob(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, jid := range s.jobOrder {
		if jid == id {
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			break
		}
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.met.jobRequests.Add(1)
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var resp jobResponse
	if ok {
		resp = jobResponse{JobID: j.id, Status: j.status, Report: j.rep, Error: j.errMsg}
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type healthResponse struct {
	Status    string  `json:"status"`
	UptimeSec float64 `json:"uptime_sec"`
	Inflight  int     `json:"inflight"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.met.healthRequests.Add(1)
	s.mu.Lock()
	inflight := len(s.flights)
	s.mu.Unlock()
	resp := healthResponse{
		Status:    "ok",
		UptimeSec: time.Since(s.start).Seconds(),
		Inflight:  inflight,
	}
	code := http.StatusOK
	if !s.ready() {
		resp.Status = "warming"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.metricsRequests.Add(1)
	s.mu.Lock()
	running := 0
	for _, b := range s.batches {
		if b.remaining > 0 {
			running++
		}
	}
	g := gauges{
		queueDepth:       s.queue.Depth(),
		inflight:         len(s.flights),
		cacheEntries:     s.cache.len(),
		jobsStored:       len(s.jobs),
		batchesStored:    len(s.batches),
		batchesRunning:   running,
		mcChunksInflight: montecarlo.InFlightChunks(),
		ready:            s.ready(),
		uptime:           time.Since(s.start),
	}
	s.mu.Unlock()
	if c := s.cfg.Cluster; c != nil {
		g.cluster = &clusterGauges{
			peers:  c.PeerStatuses(),
			stats:  c.Stats(),
			quorum: c.Quorum(),
		}
	}
	if sg := s.cfg.Surrogate; sg != nil && s.cfg.SurrogateMode != SurrogateOff {
		g.surrogate = &surrogateGauges{mode: s.cfg.SurrogateMode, stats: sg.Stats()}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.render(w, g)
}

// newJobID returns a 16-hex-digit random job handle.
func newJobID() string { return newID("job") }

// newID returns a prefixed 16-hex-digit random handle.
func newID(prefix string) string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero id still
		// works, it is just guessable.
		return prefix + "-0000000000000000"
	}
	return prefix + "-" + hex.EncodeToString(b[:])
}
