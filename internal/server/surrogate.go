package server

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"tsperr/internal/core"
	"tsperr/internal/surrogate"
)

// The surrogate fast tier hooks into the serving path at two points. On the
// way in, serve-mode daemons consult the surrogate BEFORE the dedup/cache
// join: a confident prediction answers the request in microseconds without
// touching the compute queue, and everything else escalates to the exact
// pipeline unchanged. On the way out, every successful exact computation is
// fed back as a training observation, and the shadow residual — the current
// model's |predicted − actual| log10 error measured before the observation
// lands — is recorded in /metrics, so operators can watch surrogate accuracy
// against ground truth continuously in BOTH modes before trusting serve mode.

// Surrogate mode names (Config.SurrogateMode, tsperrd -surrogate).
const (
	// SurrogateOff disables the fast tier entirely ("" means off too).
	SurrogateOff = "off"
	// SurrogateShadow trains and measures residuals on every exact result
	// but never serves a prediction.
	SurrogateShadow = "shadow"
	// SurrogateServe answers confident predictions from the fast tier and
	// escalates the rest; exact results still feed training and residuals.
	SurrogateServe = "serve"
)

// SurrogateDecision is the gate's verdict on one request.
type SurrogateDecision struct {
	// Serve is true when the prediction may answer without the exact
	// pipeline.
	Serve bool
	// Reason is surrogate.ReasonServed or the escalation reason.
	Reason string
	// Meta is the prediction metadata for the response (nil when untrained).
	Meta *core.SurrogateMeta
}

// SurrogateStats is the learning-state snapshot rendered as gauges.
type SurrogateStats struct {
	ModelVersion int
	TrainSize    int
	Buffered     int
	Trainings    uint64
}

// SurrogateTier is the fast-tier surface the server consumes; the daemon
// wires harness.SurrogateAdapter and tests substitute fakes. All methods
// must be safe for concurrent use.
type SurrogateTier interface {
	// Decide runs the confidence gate for a benchmark at a scenario count;
	// threshold is the caller's error-rate decision boundary (0 = none).
	Decide(benchmark string, scenarios int, threshold float64) SurrogateDecision
	// Observe feeds one exact report back as training data, returning the
	// pre-update model's shadow residual (ok == false while untrained).
	Observe(benchmark string, scenarios int, rep *core.Report) (residual float64, ok bool)
	// Stats snapshots the learning state.
	Stats() SurrogateStats
}

// surrogateEligible reports whether a request may be answered by the fast
// tier: serve mode only, and never for async requests (the job contract
// promises an exact pipeline run), Monte Carlo validations (the surrogate
// has no trials to validate), cluster-forwarded requests (the coordinator
// already made the tier decision), or operating-point overrides (the tier
// is trained at the daemon's own serving point and would silently answer
// for the wrong condition).
func (s *Server) surrogateEligible(req *Request) bool {
	return s.cfg.SurrogateMode == SurrogateServe && s.cfg.Surrogate != nil &&
		!req.Async && req.MCTrials == 0 && !req.forwarded && !req.pointOverride()
}

// consultSurrogate runs the gate for an eligible request. A cached exact
// report always wins over a prediction — the cache peek keeps "ask twice,
// get the better answer" monotone. The returned report is nil when the
// request must escalate to the exact pipeline.
func (s *Server) consultSurrogate(req *Request, key string) *core.Report {
	s.mu.Lock()
	_, cached := s.cache.get(key)
	s.mu.Unlock()
	if cached {
		return nil // the join path will serve the exact cached report
	}
	d := s.cfg.Surrogate.Decide(req.Benchmark, req.Scenarios, req.ErrorRateThreshold)
	if !d.Serve {
		s.met.surrogateEscalation(d.Reason)
		return nil
	}
	s.met.surrogateHits.Add(1)
	return &core.Report{
		Name:      req.Benchmark,
		Tier:      core.TierSurrogate,
		Surrogate: d.Meta,
	}
}

// observeSurrogate feeds a finished exact computation back to the tier (both
// shadow and serve modes) and records the shadow residual.
func (s *Server) observeSurrogate(req *Request, rep *core.Report) {
	if s.cfg.Surrogate == nil || s.cfg.SurrogateMode == SurrogateOff || s.cfg.SurrogateMode == "" {
		return
	}
	// A report computed at an overridden operating point is ground truth for
	// THAT point, not the daemon's serving point; feeding it back would teach
	// the tier the wrong condition.
	if req.pointOverride() {
		return
	}
	// Degraded runs carry a survivor-dependent estimate and zero-rate
	// estimates have no log10 label; neither is trainable ground truth.
	if rep == nil || rep.Estimate == nil || rep.Degraded {
		return
	}
	rate := rep.Estimate.MeanErrorRate()
	if !(rate > 0) || math.IsInf(rate, 0) {
		return
	}
	residual, ok := s.cfg.Surrogate.Observe(req.Benchmark, req.Scenarios, rep)
	s.met.surrogateObservations.Add(1)
	if ok {
		s.met.surrogateResidual.observe(residual)
	}
}

// validateSurrogate normalizes and checks the surrogate configuration.
func validateSurrogate(cfg *Config) error {
	switch cfg.SurrogateMode {
	case "", SurrogateOff:
		cfg.SurrogateMode = SurrogateOff
		return nil
	case SurrogateShadow, SurrogateServe:
		if cfg.Surrogate == nil {
			return fmt.Errorf("server: surrogate mode %q needs Config.Surrogate", cfg.SurrogateMode)
		}
		return nil
	default:
		return fmt.Errorf("server: unknown surrogate mode %q (off, shadow, serve)", cfg.SurrogateMode)
	}
}

// surrogateMetrics are the fast-tier counters, grouped so metrics.render can
// keep them out of scrapes on daemons without a surrogate.
type surrogateMetrics struct {
	surrogateHits         atomic.Uint64
	surrogateObservations atomic.Uint64
	// Escalations by fixed reason label set (surrogate.Reason*).
	escUntrained      atomic.Uint64
	escUncertain      atomic.Uint64
	escNearThreshold  atomic.Uint64
	surrogateResidual residualHistogram
}

// surrogateEscalation counts one escalation by reason; unknown reasons fold
// into the uncertain bucket so the label set stays fixed.
func (m *metrics) surrogateEscalation(reason string) {
	switch reason {
	case surrogate.ReasonUntrained:
		m.escUntrained.Add(1)
	case surrogate.ReasonNearThreshold:
		m.escNearThreshold.Add(1)
	default:
		m.escUncertain.Add(1)
	}
}

// residualBounds are the shadow-residual histogram bucket upper bounds in
// absolute log10 error: 0.01 (~2%) resolves a well-trained surrogate, 2
// (100x) catches a badly wrong one.
var residualBounds = [...]float64{0.01, 0.025, 0.05, 0.1, 0.2, 0.3, 0.5, 1, 2}

// residualHistogram is a fixed-bucket histogram over residualBounds (final
// implicit bucket +Inf), mirroring the latency histogram's layout.
type residualHistogram struct {
	buckets [len(residualBounds) + 1]atomic.Uint64
	count   atomic.Uint64
	// sumMilli accumulates residuals in thousandths so the atomic stays
	// integral at well below bucket resolution.
	sumMilli atomic.Uint64
}

// observe records one absolute log10 residual.
func (h *residualHistogram) observe(r float64) {
	i := 0
	for i < len(residualBounds) && r > residualBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumMilli.Add(uint64(math.Round(r * 1000)))
}

// renderResidualHistogram writes the cumulative exposition.
func renderResidualHistogram(w io.Writer, name, help string, h *residualHistogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range residualBounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	cum += h.buckets[len(residualBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumMilli.Load())/1000)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// surrogateGauges is the fast-tier state sampled at render time.
type surrogateGauges struct {
	mode  string
	stats SurrogateStats
}
