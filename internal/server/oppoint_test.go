package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"tsperr/internal/cell"
	"tsperr/internal/core"
)

// fakeAnalyzeAt builds a deterministic operating-point analyzer: the error
// rate grows quadratically in the over-nominal ratio, steeper at lower
// voltage — monotone in ratio at fixed condition, exactly what BisectRatio
// assumes. Reports are marshalable, so the handler's risk summary works.
func fakeAnalyzeAt() AnalyzeAtFunc {
	return func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts, cond cell.OperatingCondition, ratio float64) (*core.Report, error) {
		n := cond.Norm()
		droop := (cell.NominalVoltageV - n.VoltageV) / cell.NominalVoltageV
		x := (ratio - 1) * 10 * (1 + 4*droop)
		if x < 0 {
			x = 0
		}
		rate := x * x / 100
		if rate > 1 {
			rate = 1
		}
		rep := fakeReport(benchmark)
		rep.Estimate.LambdaMean = rate * rep.Estimate.TotalInsts
		return rep, nil
	}
}

// postOppoint posts one oppoint request and returns the status and raw body.
func postOppoint(ctx context.Context, url, body string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/oppoint", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, err
}

// oppointGoldenRequest drives two voltages across a 5-ratio grid. With the
// fake's rate law and target 0.01, both searches settle at ratio 1.05 (the
// 1.1 V probe at 1.1 lands a hair over target in float64) in exactly 4
// evals, and the frontier keeps only the 0.9 V point — same period, lower
// voltage dominates.
const oppointGoldenRequest = `{
	"benchmark": "typeset",
	"target_error_rate": 0.01,
	"voltages": [1.1, 0.9],
	"temps_c": [25],
	"min_ratio": 1.0,
	"max_ratio": 1.2,
	"steps": 4
}`

// TestOppointGolden pins the full POST /v1/oppoint response body — field
// names, point ordering, frontier membership, and the numeric outcomes of
// the deterministic bisection — against a golden literal. A schema or
// semantics drift must be deliberate enough to re-derive these bytes.
func TestOppointGolden(t *testing.T) {
	ctx := context.Background()
	calls := 0
	inner := fakeAnalyzeAt()
	cfg := Config{
		Analyze: func(ctx context.Context, b string, n int, o core.AnalyzeOpts) (*core.Report, error) {
			t.Error("plain Analyze reached for an override sub-request")
			return fakeReport(b), nil
		},
		AnalyzeAt: func(ctx context.Context, b string, n int, o core.AnalyzeOpts, c cell.OperatingCondition, r float64) (*core.Report, error) {
			calls++
			return inner(ctx, b, n, o, c, r)
		},
	}
	_, ts := newTestServer(t, ctx, cfg)

	code, raw, err := postOppoint(ctx, ts.URL, oppointGoldenRequest)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, raw)
	}
	const goldenPath = "testdata/oppoint_golden.json"
	if os.Getenv("TSPERR_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (set TSPERR_UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if string(raw) != string(golden) {
		t.Errorf("response drifted from golden (TSPERR_UPDATE_GOLDEN=1 regenerates):\n got: %s\nwant: %s", raw, golden)
	}
	if calls != 8 {
		t.Errorf("expected 8 exact computations (4 evals x 2 conditions), got %d", calls)
	}

	// A warm re-run must answer every probe from the LRU: identical points
	// and frontier, all 8 sub-requests cache hits, no new computations.
	code, raw2, err := postOppoint(ctx, ts.URL, oppointGoldenRequest)
	if err != nil || code != http.StatusOK {
		t.Fatalf("warm rerun: status %d err %v", code, err)
	}
	var cold, warm OppointResponse
	if err := json.Unmarshal(raw, &cold); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw2, &warm); err != nil {
		t.Fatal(err)
	}
	if calls != 8 {
		t.Errorf("warm rerun recomputed: %d calls", calls)
	}
	if warm.CacheHits != warm.Subrequests || warm.Subrequests != cold.Subrequests {
		t.Errorf("warm rerun: %d/%d cache hits, cold issued %d", warm.CacheHits, warm.Subrequests, cold.Subrequests)
	}
	coldPts, _ := json.Marshal(cold.Points)
	warmPts, _ := json.Marshal(warm.Points)
	if string(coldPts) != string(warmPts) {
		t.Errorf("cache warmth changed the points:\ncold %s\nwarm %s", coldPts, warmPts)
	}

	// Grid-order invariance: reversing the voltage list must not change the
	// points or frontier (conditions are canonicalized before searching).
	rev := strings.Replace(oppointGoldenRequest, "[1.1, 0.9]", "[0.9, 1.1]", 1)
	code, raw3, err := postOppoint(ctx, ts.URL, rev)
	if err != nil || code != http.StatusOK {
		t.Fatalf("reversed grid: status %d err %v", code, err)
	}
	var revResp OppointResponse
	if err := json.Unmarshal(raw3, &revResp); err != nil {
		t.Fatal(err)
	}
	revPts, _ := json.Marshal(revResp.Points)
	if string(revPts) != string(coldPts) {
		t.Errorf("grid order changed the points:\nfwd %s\nrev %s", coldPts, revPts)
	}

	m := scrapeMetrics(t, ts.URL)
	if got := m["tsperrd_oppoint_searches_total"]; got != 6 {
		t.Errorf("oppoint_searches_total = %g, want 6", got)
	}
	if got := m["tsperrd_oppoint_subrequests_total"]; got != 24 {
		t.Errorf("oppoint_subrequests_total = %g, want 24", got)
	}
	if got := m["tsperrd_oppoint_subrequest_cache_hits_total"]; got != 16 {
		t.Errorf("oppoint_subrequest_cache_hits_total = %g, want 16", got)
	}
	if got := m["tsperrd_oppoint_infeasible_total"]; got != 0 {
		t.Errorf("oppoint_infeasible_total = %g, want 0", got)
	}
}

// TestOppointInfeasible pins the infeasible shape: when even the minimum
// ratio exceeds the target, the point reports Feasible=false after exactly
// one eval, stays off the frontier, and bumps the infeasible counter.
func TestOppointInfeasible(t *testing.T) {
	ctx := context.Background()
	cfg := Config{
		Analyze: func(ctx context.Context, b string, n int, o core.AnalyzeOpts) (*core.Report, error) {
			return fakeReport(b), nil
		},
		AnalyzeAt: fakeAnalyzeAt(),
	}
	_, ts := newTestServer(t, ctx, cfg)
	body := `{"benchmark": "typeset", "target_error_rate": 0.001, "voltages": [0.9], "min_ratio": 1.05, "max_ratio": 1.2, "steps": 4}`
	code, raw, err := postOppoint(ctx, ts.URL, body)
	if err != nil || code != http.StatusOK {
		t.Fatalf("status %d err %v body %s", code, err, raw)
	}
	var resp OppointResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 1 || len(resp.Frontier) != 0 {
		t.Fatalf("points %d frontier %d, want 1 and 0", len(resp.Points), len(resp.Frontier))
	}
	p := resp.Points[0]
	if p.Feasible || p.Evals != 1 {
		t.Errorf("infeasible point: feasible=%t evals=%d", p.Feasible, p.Evals)
	}
	m := scrapeMetrics(t, ts.URL)
	if got := m["tsperrd_oppoint_infeasible_total"]; got != 1 {
		t.Errorf("oppoint_infeasible_total = %g, want 1", got)
	}
}

// TestOppointValidation sweeps the request envelope's rejection shapes.
func TestOppointValidation(t *testing.T) {
	ctx := context.Background()
	cfg := Config{
		Analyze: func(ctx context.Context, b string, n int, o core.AnalyzeOpts) (*core.Report, error) {
			return fakeReport(b), nil
		},
		AnalyzeAt: fakeAnalyzeAt(),
	}
	_, ts := newTestServer(t, ctx, cfg)
	for name, body := range map[string]string{
		"no benchmark":   `{"target_error_rate": 0.1}`,
		"bad target":     `{"benchmark": "x", "target_error_rate": 1.5}`,
		"bad voltage":    `{"benchmark": "x", "target_error_rate": 0.1, "voltages": [2.5]}`,
		"inverted range": `{"benchmark": "x", "target_error_rate": 0.1, "min_ratio": 1.3, "max_ratio": 1.1}`,
		"steps cap":      `{"benchmark": "x", "target_error_rate": 0.1, "steps": 100000}`,
		"grid cap":       fmt.Sprintf(`{"benchmark": "x", "target_error_rate": 0.1, "voltages": %s}`, bigVoltageList()),
		"unknown field":  `{"benchmark": "x", "target_error_rate": 0.1, "voltagez": [1.0]}`,
	} {
		code, raw, err := postOppoint(ctx, ts.URL, body)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", name, code, raw)
		}
	}
}

// bigVoltageList renders a voltage list one past the condition-grid cap.
func bigVoltageList() string {
	vs := make([]string, maxOppointConditions+1)
	for i := range vs {
		vs[i] = fmt.Sprintf("%.3f", 0.7+float64(i)*0.01)
	}
	return "[" + strings.Join(vs, ",") + "]"
}

// TestEstimateOverrideRouting pins the /v1/estimate side of operating-point
// overrides: a request with voltage/freq_ratio fields executes through
// AnalyzeAt with those values, and a daemon without AnalyzeAt rejects it at
// validation instead of serving the wrong point.
func TestEstimateOverrideRouting(t *testing.T) {
	ctx := context.Background()
	var gotCond cell.OperatingCondition
	var gotRatio float64
	cfg := Config{
		Analyze: func(ctx context.Context, b string, n int, o core.AnalyzeOpts) (*core.Report, error) {
			t.Error("override request reached the default-point Analyze")
			return fakeReport(b), nil
		},
		AnalyzeAt: func(ctx context.Context, b string, n int, o core.AnalyzeOpts, c cell.OperatingCondition, r float64) (*core.Report, error) {
			gotCond, gotRatio = c, r
			return fakeReport(b), nil
		},
	}
	_, ts := newTestServer(t, ctx, cfg)
	code, m, err := postEstimate(ctx, ts.URL, `{"benchmark": "typeset", "voltage": 0.95, "temp_c": 85, "freq_ratio": 1.1}`)
	if err != nil || code != http.StatusOK {
		t.Fatalf("status %d err %v body %v", code, err, m)
	}
	want := cell.OperatingCondition{VoltageV: 0.95, TempC: 85}
	if !gotCond.Equal(want) || gotRatio != 1.1 {
		t.Errorf("AnalyzeAt saw %v ratio %v, want %v ratio 1.1", gotCond, gotRatio, want)
	}

	// Same override against a daemon without AnalyzeAt: 400, not a silent
	// default-point answer.
	bare := Config{
		Analyze: func(ctx context.Context, b string, n int, o core.AnalyzeOpts) (*core.Report, error) {
			return fakeReport(b), nil
		},
	}
	_, bts := newTestServer(t, ctx, bare)
	code, _, err = postEstimate(ctx, bts.URL, `{"benchmark": "typeset", "voltage": 0.95}`)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusBadRequest {
		t.Errorf("override on bare daemon: status %d, want 400", code)
	}
	// And /v1/oppoint is not even mounted there.
	code, _, err = postOppoint(ctx, bts.URL, `{"benchmark": "typeset", "target_error_rate": 0.1}`)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusNotFound && code != http.StatusMethodNotAllowed {
		t.Errorf("oppoint on bare daemon: status %d, want unmounted", code)
	}
}
