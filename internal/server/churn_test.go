package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsperr/internal/core"
)

// TestChurnFlightTableAndCache hammers the dedup/cache layer with a seeded
// randomized interleaving of sync requests, async jobs, client
// cancellations, injected failures, and injected panics, with a cache small
// enough to force constant LRU eviction. Run under -race this is the
// regression net for the flight-table locking discipline. The invariants at
// quiesce:
//
//   - no flight leaks (the table is empty once the queue drains);
//   - no flight is double-retired (a second close(f.done) would crash a
//     worker goroutine, and the panics counter must match the injected
//     panics exactly);
//   - every admitted computation ran Analyze exactly once
//     (tsperrd_computations_total == observed Analyze calls);
//   - the LRU never exceeds its capacity;
//   - every stored async job reaches a terminal state.
func TestChurnFlightTableAndCache(t *testing.T) {
	var analyzeCalls, panicCalls atomic.Int64
	const cacheSize = 4
	s, ts := newTestServer(t, context.Background(), Config{
		Workers:    4,
		QueueDepth: 8,
		CacheSize:  cacheSize,
		Analyze: func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
			analyzeCalls.Add(1)
			switch {
			case strings.HasPrefix(benchmark, "panic"):
				panicCalls.Add(1)
				panic("churn: injected panic")
			case strings.HasPrefix(benchmark, "fail"):
				return nil, errors.New("churn: injected failure")
			}
			// Jitter so flights overlap with joins, cancellations, and
			// evictions; the cancellation path must still win promptly.
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Duration(scenarios) * time.Millisecond):
			}
			return fakeReport(benchmark), nil
		},
	})

	const (
		clients     = 8
		opsPerGoro  = 50
		benchmarks  = 10 // distinct names; x3 scenario values >> cacheSize keys
		asyncEvery  = 4  // 1-in-N ops are async
		cancelEvery = 5  // 1-in-N sync ops use a near-immediate client deadline
		faultEvery  = 8  // 1-in-N ops target a panic or failure benchmark
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerGoro; i++ {
				name := fmt.Sprintf("bm-%d", rng.Intn(benchmarks))
				if rng.Intn(faultEvery) == 0 {
					if rng.Intn(2) == 0 {
						name = fmt.Sprintf("panic-%d", rng.Intn(3))
					} else {
						name = fmt.Sprintf("fail-%d", rng.Intn(3))
					}
				}
				scenarios := 1 + rng.Intn(3)
				async := rng.Intn(asyncEvery) == 0
				body := fmt.Sprintf(`{"benchmark":%q,"scenarios":%d,"async":%v}`, name, scenarios, async)

				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if !async && rng.Intn(cancelEvery) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(2))*time.Millisecond)
				}
				code, _, err := postEstimate(ctx, ts.URL, body)
				cancel()
				if err != nil {
					continue // client-side cancellation surfaces as a transport error
				}
				switch code {
				case http.StatusOK, http.StatusAccepted,
					http.StatusInternalServerError, http.StatusServiceUnavailable:
				default:
					t.Errorf("unexpected status %d for %s", code, body)
				}
				if i%16 == 0 {
					if _, err := http.Get(ts.URL + "/metrics"); err != nil {
						t.Errorf("metrics scrape: %v", err)
					}
				}
			}
		}(int64(0xc4c4 + c))
	}
	wg.Wait()

	// Quiesce: abandoned flights retire once their cancelled Analyze returns.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		inflight := len(s.flights)
		s.mu.Unlock()
		if inflight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight table leaked %d entries after churn", inflight)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The scraped metrics are integer-valued counters; compare as ints so the
	// identities are exact.
	m := scrapeMetrics(t, ts.URL)
	if got, want := int64(m["tsperrd_computations_total"]), analyzeCalls.Load(); got != want {
		t.Errorf("computations metric %v != Analyze calls %v (flight ran twice or was lost)", got, want)
	}
	if got, want := int64(m["tsperrd_panics_total"]), panicCalls.Load(); got != want {
		t.Errorf("panics metric %v != injected panics %v (double or dropped retire)", got, want)
	}
	if int(m["tsperrd_inflight"]) != 0 {
		t.Errorf("inflight gauge %v after quiesce", m["tsperrd_inflight"])
	}
	s.mu.Lock()
	cached := s.cache.len()
	pending := 0
	for _, j := range s.jobs {
		if j.status == "pending" {
			pending++
		}
	}
	s.mu.Unlock()
	if cached > cacheSize {
		t.Errorf("LRU holds %d entries, capacity %d", cached, cacheSize)
	}
	if pending != 0 {
		t.Errorf("%d async jobs still pending after quiesce", pending)
	}
	if analyzeCalls.Load() == 0 {
		t.Error("churn never reached Analyze — fixture broken")
	}
}
