package server

import (
	"testing"
	"time"

	"tsperr/internal/core"
)

// The request hash must ignore scheduling knobs (workers, timeout, async)
// and respond to every result-determining field plus the model fingerprint.
func TestRequestKeyCanonicalization(t *testing.T) {
	base := Request{Benchmark: "patricia", Scenarios: 4}
	key := base.Key("fp1")

	same := []Request{
		{Benchmark: "patricia", Scenarios: 4, Workers: 8},
		{Benchmark: "patricia", Scenarios: 4, TimeoutMS: 1500},
		{Benchmark: "patricia", Scenarios: 4, Async: true},
	}
	for _, q := range same {
		if q.Key("fp1") != key {
			t.Errorf("scheduling knob changed the key: %+v", q)
		}
	}

	different := []Request{
		{Benchmark: "dijkstra", Scenarios: 4},
		{Benchmark: "patricia", Scenarios: 5},
		{Benchmark: "patricia", Scenarios: 4, Retries: 1},
		{Benchmark: "patricia", Scenarios: 4, MinScenarios: 2},
		{Benchmark: "patricia", Scenarios: 4, FailFast: true},
	}
	for _, q := range different {
		if q.Key("fp1") == key {
			t.Errorf("result-determining field did not change the key: %+v", q)
		}
	}

	if base.Key("fp2") == key {
		t.Error("model fingerprint did not change the key")
	}
}

func TestRequestTimeoutResolution(t *testing.T) {
	cases := []struct {
		name     string
		ms       int64
		def, max time.Duration
		want     time.Duration
	}{
		{"unset uses default", 0, 2 * time.Second, time.Minute, 2 * time.Second},
		{"unset with no default means none", 0, 0, time.Minute, 0},
		{"explicit within cap", 500, 2 * time.Second, time.Minute, 500 * time.Millisecond},
		{"explicit above cap is clamped", 120000, 2 * time.Second, time.Minute, time.Minute},
		{"no cap passes through", 120000, 0, 0, 2 * time.Minute},
	}
	for _, tc := range cases {
		q := Request{TimeoutMS: tc.ms}
		if got := q.timeout(tc.def, tc.max); got != tc.want {
			t.Errorf("%s: timeout = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRU(2)
	a, b, d := &core.Report{Name: "a"}, &core.Report{Name: "b"}, &core.Report{Name: "d"}
	c.add("a", a)
	c.add("b", b)
	if _, ok := c.get("a"); !ok { // touch a: b becomes the eviction victim
		t.Fatal("a missing after insert")
	}
	c.add("d", d)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if got, ok := c.get("a"); !ok || got != a {
		t.Error("a should have survived (recently used)")
	}
	if got, ok := c.get("d"); !ok || got != d {
		t.Error("d should be present")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}

	// Refreshing an existing key replaces the value without growing.
	a2 := &core.Report{Name: "a2"}
	c.add("a", a2)
	if got, _ := c.get("a"); got != a2 {
		t.Error("refresh did not replace the cached report")
	}
	if c.len() != 2 {
		t.Errorf("len after refresh = %d, want 2", c.len())
	}
}
