package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"tsperr/internal/core"
)

// The batch layer runs a whole suite of estimation scenarios through the
// existing flight table. Every entry goes through the same join path as a
// single request, which is what gives batches request-hash dedup (identical
// entries — and entries identical to anything in flight or cached — share
// one computation), bounded-queue backpressure, and drain semantics for
// free. What the layer adds is pacing: entries are fed to the queue as
// capacity frees up instead of 503ing the tail of a 30-entry suite, and
// per-entry status plus incremental results are addressable at
// GET /v1/batches/{id}.

// BatchRequest is the body of POST /v1/batch: a suite of estimate requests
// sharing the warm framework. Per-entry knobs (scenarios, retries,
// mc_trials, ...) are exactly the single-request ones; Async is meaningless
// inside a batch and rejected.
type BatchRequest struct {
	Scenarios []Request `json:"scenarios"`
}

// batchPollInterval is how often the pacer re-offers an entry rejected by a
// full compute queue. Long enough to stay off the mutex, short enough that a
// freed worker never idles noticeably.
const batchPollInterval = 20 * time.Millisecond

// batchEntry is one suite entry's lifecycle. Fields are guarded by the
// server's mu except key and benchmark, which are immutable after creation.
type batchEntry struct {
	benchmark string
	key       string
	// status is "pending" (not yet admitted), "running", "done", "failed",
	// or "rejected" (server draining before admission); guarded by mu.
	status string
	// dedup marks an entry that shared another computation (within the batch
	// or with outside traffic); cached marks an LRU hit; guarded by mu.
	dedup  bool
	cached bool
	rep    *core.Report // guarded by mu
	errMsg string       // guarded by mu
}

// batch is one stored suite run, addressable via GET /v1/batches/{id}.
type batch struct {
	id      string
	created time.Time
	entries []*batchEntry
	// remaining counts entries not yet in a terminal state; the batch is
	// finished when it reaches zero; guarded by mu.
	remaining int
}

// parseBatchRequest decodes and validates a whole suite upfront, so a batch
// is accepted or rejected atomically — no half-admitted suites.
func parseBatchRequest(r *http.Request, limits Limits, maxBatch int) ([]*Request, error) {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	var br BatchRequest
	if err := dec.Decode(&br); err != nil {
		return nil, fmt.Errorf("invalid request body: %w", err)
	}
	if len(br.Scenarios) == 0 {
		return nil, fmt.Errorf("batch has no scenarios")
	}
	if len(br.Scenarios) > maxBatch {
		return nil, fmt.Errorf("batch of %d scenarios exceeds limit %d", len(br.Scenarios), maxBatch)
	}
	reqs := make([]*Request, len(br.Scenarios))
	for i := range br.Scenarios {
		req := br.Scenarios[i]
		if req.Async {
			return nil, fmt.Errorf("scenario %d: async is not valid inside a batch", i)
		}
		req.normalize(limits)
		if err := req.validate(limits); err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i, err)
		}
		reqs[i] = &req
	}
	return reqs, nil
}

type batchAcceptedResponse struct {
	BatchID   string `json:"batch_id"`
	Scenarios int    `json:"scenarios"`
	Poll      string `json:"poll"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.met.batchRequests.Add(1)
	if !s.ready() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "model warming up, retry shortly"})
		return
	}
	reqs, err := parseBatchRequest(r, s.cfg.Limits, s.cfg.MaxBatch)
	if err != nil {
		s.met.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	b := &batch{
		id:        newID("batch"),
		created:   time.Now(),
		entries:   make([]*batchEntry, len(reqs)),
		remaining: len(reqs),
	}
	for i, req := range reqs {
		b.entries[i] = &batchEntry{
			benchmark: req.Benchmark,
			key:       req.Key(s.cfg.Fingerprint),
			status:    "pending",
		}
	}
	if !s.storeBatch(b) {
		s.met.queueRejects.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "batch store full, retry later"})
		return
	}
	s.met.batchesStarted.Add(1)
	// The pacer owns the suite from here; the response only acknowledges
	// admission. It runs under the server lifecycle, not the HTTP request —
	// a batch is not cancelled by its submitter disconnecting.
	go s.runBatch(b, reqs)
	writeJSON(w, http.StatusAccepted, batchAcceptedResponse{
		BatchID:   b.id,
		Scenarios: len(reqs),
		Poll:      "/v1/batches/" + b.id,
	})
}

// storeBatch retains a batch, evicting the oldest finished batch when over
// the retention cap; it refuses when every retained batch is still running.
func (s *Server) storeBatch(b *batch) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if len(s.batches) >= s.cfg.BatchRetention {
		evicted := false
		for i, id := range s.batchOrder {
			if old, ok := s.batches[id]; ok && old.remaining == 0 {
				delete(s.batches, id)
				s.batchOrder = append(s.batchOrder[:i], s.batchOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return false
		}
	}
	s.batches[b.id] = b
	s.batchOrder = append(s.batchOrder, b.id)
	return true
}

// runBatch is the pacer: it feeds the suite's entries through the join path
// in order, retrying entries the bounded queue rejects until capacity frees
// up (that is the backpressure inheritance — the batch waits, it does not
// 503), and marking everything after the drain point rejected once the
// server starts closing. Entry results land asynchronously via finishEntry,
// so a long head entry never blocks dedup joins or completions further down
// the suite.
func (s *Server) runBatch(b *batch, reqs []*Request) {
	for i, req := range reqs {
		e := b.entries[i]
		for {
			rep, f, outcome := s.join(req, e.key, nil)
			switch outcome {
			case joinCacheHit:
				s.finishEntry(b, e, rep, nil, true, true)
			case joinCreated:
				s.setEntryStatus(e, "running", false)
				go s.awaitEntry(b, e, f, false)
			case joinJoined:
				s.setEntryStatus(e, "running", true)
				go s.awaitEntry(b, e, f, true)
			case joinRejected:
				if s.draining() {
					s.rejectEntries(b, i)
					return
				}
				// Queue full: wait for capacity, then re-offer this entry.
				select {
				case <-time.After(batchPollInterval):
					continue
				case <-s.lifeCtx.Done():
					s.rejectEntries(b, i)
					return
				}
			}
			break
		}
	}
}

func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) setEntryStatus(e *batchEntry, status string, dedup bool) {
	s.mu.Lock()
	e.status = status
	e.dedup = dedup
	s.mu.Unlock()
}

// awaitEntry records one entry's result when its flight lands. The entry
// holds a sync-waiter reference on the flight (taken at join), so an
// admitted batch entry pins its computation the way async jobs do: it always
// runs to completion, drain included.
func (s *Server) awaitEntry(b *batch, e *batchEntry, f *flight, dedup bool) {
	<-f.done
	s.leave(e.key, f)
	s.finishEntry(b, e, f.rep, f.err, false, dedup)
}

// rejectEntries marks entries [from, end) terminally rejected — the server
// began draining before they were admitted.
func (s *Server) rejectEntries(b *batch, from int) {
	s.mu.Lock()
	for _, e := range b.entries[from:] {
		if e.status == "pending" {
			e.status = "rejected"
			e.errMsg = "server draining"
			b.remaining--
		}
	}
	done := b.remaining == 0
	s.mu.Unlock()
	if done {
		s.met.batchesFinished.Add(1)
		s.met.batchLatency.observe(time.Since(b.created))
	}
}

// finishEntry moves one entry to a terminal state and, when it is the last,
// closes out the batch (latency histogram).
func (s *Server) finishEntry(b *batch, e *batchEntry, rep *core.Report, err error, cached, dedup bool) {
	s.mu.Lock()
	e.cached = cached
	e.dedup = dedup
	if err != nil {
		e.status = "failed"
		e.errMsg = err.Error()
	} else {
		e.status = "done"
		e.rep = rep
	}
	b.remaining--
	done := b.remaining == 0
	s.mu.Unlock()
	if done {
		s.met.batchesFinished.Add(1)
		s.met.batchLatency.observe(time.Since(b.created))
	}
}

// batchEntryResponse is the wire form of one entry; Report appears as soon
// as that entry completes, which is what makes GET /v1/batches/{id}
// incremental.
type batchEntryResponse struct {
	Index     int          `json:"index"`
	Benchmark string       `json:"benchmark"`
	Key       string       `json:"key"`
	Status    string       `json:"status"`
	Dedup     bool         `json:"dedup,omitempty"`
	Cached    bool         `json:"cached,omitempty"`
	Report    *core.Report `json:"report,omitempty"`
	Error     string       `json:"error,omitempty"`
}

type batchResponse struct {
	BatchID   string               `json:"batch_id"`
	Status    string               `json:"status"`
	Scenarios []batchEntryResponse `json:"scenarios"`
	Pending   int                  `json:"pending"`
	Done      int                  `json:"done"`
	Failed    int                  `json:"failed"`
}

func (s *Server) handleBatchGet(w http.ResponseWriter, r *http.Request) {
	s.met.batchGetRequests.Add(1)
	id := r.PathValue("id")
	s.mu.Lock()
	b, ok := s.batches[id]
	var resp batchResponse
	if ok {
		resp = batchResponse{BatchID: b.id, Status: "done", Scenarios: make([]batchEntryResponse, len(b.entries))}
		if b.remaining > 0 {
			resp.Status = "running"
		}
		for i, e := range b.entries {
			resp.Scenarios[i] = batchEntryResponse{
				Index: i, Benchmark: e.benchmark, Key: e.key, Status: e.status,
				Dedup: e.dedup, Cached: e.cached, Report: e.rep, Error: e.errMsg,
			}
			switch e.status {
			case "pending", "running":
				resp.Pending++
			case "done":
				resp.Done++
			default:
				resp.Failed++
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown batch %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
