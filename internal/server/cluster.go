package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"tsperr/internal/cluster"
	"tsperr/internal/core"
	"tsperr/internal/montecarlo"
)

// Cluster is the coordinator surface the server consumes;
// *cluster.Coordinator implements it, and tests substitute fakes. All methods
// must be safe for concurrent use.
type Cluster interface {
	// Route returns the healthy peer that owns a request key, or "" for
	// local execution.
	Route(key string) string
	// ProxyEstimate executes an estimate request on a peer and returns its
	// report.
	ProxyEstimate(ctx context.Context, addr string, body []byte) (*core.Report, error)
	// MCRun distributes one Monte Carlo validation job (core.MCRunner).
	MCRun(ctx context.Context, job core.MCJob) (*montecarlo.ShardedResult, error)
	// Ready reports whether a quorum of peers is healthy.
	Ready() bool
	HealthyPeers() int
	Quorum() int
	PeerStatuses() []cluster.PeerStatus
	Stats() cluster.Stats
}

// execute runs one admitted request: every computation — sync, async, and
// batch entries alike — funnels through here from the flight it landed on.
// With a cluster attached, Monte Carlo validations fan their chunks across
// the peers, and plain estimates route by consistent hash to the key's owner
// so identical requests hitting different front-ends dedup cluster-wide. A
// routed request that fails remotely falls back to local execution: the
// cluster can make a request cheaper, never fail it.
func (s *Server) execute(ctx context.Context, req *Request, key string) (*core.Report, error) {
	opts := req.analyzeOpts()
	c := s.cfg.Cluster
	if req.pointOverride() {
		// An operating-point override runs through AnalyzeAt. Routing still
		// applies (the overrides are part of the proxy body and the key, so
		// the owner computes the identical result), but Monte Carlo fan-out
		// does not: peers rebuild chunk specs at their default point, so an
		// override's trials stay local.
		if c != nil && opts.MCTrials == 0 && !req.forwarded {
			if addr := c.Route(key); addr != "" {
				if body, err := json.Marshal(req.proxyBody()); err == nil {
					if rep, err := c.ProxyEstimate(ctx, addr, body); err == nil {
						return rep, nil
					}
				}
			}
		}
		return s.cfg.AnalyzeAt(ctx, req.Benchmark, req.Scenarios, opts, req.cond(), req.FreqRatio)
	}
	if c == nil {
		return s.cfg.Analyze(ctx, req.Benchmark, req.Scenarios, opts)
	}
	if opts.MCTrials > 0 {
		// The analytic phase runs locally (it needs the warm framework
		// anyway); only the trial budget leaves the node.
		opts.MCRun = c.MCRun
		return s.cfg.Analyze(ctx, req.Benchmark, req.Scenarios, opts)
	}
	if !req.forwarded {
		if addr := c.Route(key); addr != "" {
			if body, err := json.Marshal(req.proxyBody()); err == nil {
				if rep, err := c.ProxyEstimate(ctx, addr, body); err == nil {
					return rep, nil
				}
				// Fall through: the peer failed or disagreed; local
				// execution answers the request regardless.
			}
		}
	}
	return s.cfg.Analyze(ctx, req.Benchmark, req.Scenarios, opts)
}

// handleClusterChunk executes one Monte Carlo chunk on behalf of a cluster
// coordinator (POST /v1/cluster/chunk, mounted only on nodes configured with
// a ChunkSource). The spec is rebuilt from the chunk's benchmark identity
// against this node's warm framework — bit-identical to the coordinator's
// own, which the fingerprint check enforces — so the returned counts are the
// same bytes a local execution would have produced.
func (s *Server) handleClusterChunk(w http.ResponseWriter, r *http.Request) {
	s.met.chunkRequests.Add(1)
	if !s.ready() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "model warming up, retry shortly"})
		return
	}
	if fp := r.Header.Get(cluster.HeaderFingerprint); fp != "" && fp != s.cfg.Fingerprint {
		s.met.fingerprintRejects.Add(1)
		writeJSON(w, http.StatusConflict, errorResponse{Error: "model fingerprint mismatch"})
		return
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	var creq cluster.ChunkRequest
	if err := dec.Decode(&creq); err != nil {
		s.met.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid chunk request: " + err.Error()})
		return
	}
	spec, err := s.cfg.ChunkSource(r.Context(), creq.Benchmark, creq.Scenarios)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, errorResponse{Error: err.Error()})
		return
	}
	spec.Trials, spec.Seed = creq.Trials, creq.Seed
	res, err := montecarlo.RunChunk(r.Context(), spec, creq.ChunkSize, creq.Index)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// readyResponse is the GET /readyz body: readiness to serve at full capacity,
// as opposed to /healthz liveness. A coordinator is ready only when the model
// is warm AND a quorum of its peers is healthy; /healthz stays 200 on a warm
// node with a degraded cluster, because the node still answers everything
// locally.
type readyResponse struct {
	Status string `json:"status"`
	Warm   bool   `json:"warm"`
	// HealthyPeers/Quorum/Peers appear only on cluster-configured nodes.
	HealthyPeers int                  `json:"healthy_peers,omitempty"`
	Quorum       int                  `json:"quorum,omitempty"`
	Peers        []cluster.PeerStatus `json:"peers,omitempty"`
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.met.readyRequests.Add(1)
	resp := readyResponse{Warm: s.ready()}
	ready := resp.Warm
	if c := s.cfg.Cluster; c != nil {
		resp.HealthyPeers = c.HealthyPeers()
		resp.Quorum = c.Quorum()
		resp.Peers = c.PeerStatuses()
		ready = ready && c.Ready()
	}
	code := http.StatusOK
	resp.Status = "ready"
	if !ready {
		resp.Status = "unready"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}
