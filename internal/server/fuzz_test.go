package server

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

// toggleFloat returns a value whose %g rendering (the canonical-hash form)
// provably differs from v's — even when v is NaN, infinite, or too large for
// small additions to register.
func toggleFloat(v float64) float64 {
	if fmt.Sprintf("%g", v) == "2" {
		return 3
	}
	return 2
}

// FuzzRequestHash pins the canonical-hashing contract of Request.Key:
//
//   - scheduling knobs (workers, timeout_ms, async) must NOT change the key —
//     requests differing only in how they are scheduled dedup onto one
//     computation;
//   - every result-determining field (benchmark, scenarios, retries,
//     min_scenarios, fail_fast, mc_trials, freq_ratio, voltage, temp_c) and
//     the model fingerprint MUST change the key — two different results must
//     never collide;
//   - JSON field order and whitespace must not matter (the key is computed
//     from the decoded struct, not the wire bytes).
func FuzzRequestHash(f *testing.F) {
	f.Add("typeset", 4, 2, 1, true, 500, "fp-a", 8, int64(1000), true, 1.15, 0.9, 85.0)
	f.Add("dijkstra", 1, 0, 0, false, 0, "", 0, int64(0), false, 0.0, 0.0, 0.0)
	f.Add("pgp.encode", 64, 8, 64, true, 5000, "fp-b", 64, int64(600000), true, 1.3, 1.1, 25.0)
	f.Add("", -3, -1, 99, false, -7, "fp\nwith\nnewlines", -2, int64(-5), false, -1.0, -0.5, -40.0)
	f.Add("bench=1\nscenarios", 2, 1, 1, true, 1, "fp=x", 3, int64(7), false, 0.5, 1.4, 125.0)

	f.Fuzz(func(t *testing.T, benchmark string, scenarios, retries, minScenarios int,
		failFast bool, mcTrials int, fingerprint string,
		workers int, timeoutMS int64, async bool,
		freqRatio, voltageV, tempC float64) {
		q := Request{
			Benchmark:    benchmark,
			Scenarios:    scenarios,
			Retries:      retries,
			MinScenarios: minScenarios,
			FailFast:     failFast,
			MCTrials:     mcTrials,
			Workers:      workers,
			TimeoutMS:    timeoutMS,
			Async:        async,
			FreqRatio:    freqRatio,
			VoltageV:     voltageV,
			TempC:        tempC,
		}
		key := q.Key(fingerprint)
		if len(key) != 64 {
			t.Fatalf("key %q is not a sha256 hex digest", key)
		}

		// Scheduling knobs must collide onto the same key.
		sched := q
		sched.Workers = workers + 17
		sched.TimeoutMS = timeoutMS + 12345
		sched.Async = !async
		if got := sched.Key(fingerprint); got != key {
			t.Errorf("scheduling knobs changed the key: %s vs %s", got, key)
		}

		// A decode round-trip (the wire path) must reproduce the key: the
		// canonical form depends on field values, not encoding accidents.
		// Invalid UTF-8 is exempt — json.Marshal coerces it to U+FFFD, and the
		// real wire path can only ever deliver valid UTF-8 strings. Non-finite
		// floats are exempt too: json.Marshal refuses them, and validation
		// rejects them at the door on the real wire path.
		finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
		if utf8.ValidString(benchmark) && finite(freqRatio) && finite(voltageV) && finite(tempC) {
			buf, err := json.Marshal(q)
			if err != nil {
				t.Fatal(err)
			}
			var rt Request
			if err := json.Unmarshal(buf, &rt); err != nil {
				t.Fatal(err)
			}
			if got := rt.Key(fingerprint); got != key {
				t.Errorf("decode round-trip changed the key: %s vs %s", got, key)
			}
		}

		// Every result-determining mutation must move the key.
		mutations := map[string]func(*Request){
			"benchmark":     func(m *Request) { m.Benchmark += "x" },
			"scenarios":     func(m *Request) { m.Scenarios++ },
			"retries":       func(m *Request) { m.Retries++ },
			"min_scenarios": func(m *Request) { m.MinScenarios++ },
			"fail_fast":     func(m *Request) { m.FailFast = !m.FailFast },
			"mc_trials":     func(m *Request) { m.MCTrials++ },
			// Addition can be absorbed by huge magnitudes (1e300 + ε) or NaN;
			// toggling to a fresh small value always moves the canonical %g
			// rendering instead.
			"freq_ratio": func(m *Request) { m.FreqRatio = toggleFloat(m.FreqRatio) },
			"voltage":    func(m *Request) { m.VoltageV = toggleFloat(m.VoltageV) },
			"temp_c":     func(m *Request) { m.TempC = toggleFloat(m.TempC) },
		}
		for field, mutate := range mutations {
			m := q
			mutate(&m)
			if got := m.Key(fingerprint); got == key {
				t.Errorf("mutating %s did not change the key", field)
			}
		}
		if got := q.Key(fingerprint + "y"); got == key {
			t.Error("mutating the fingerprint did not change the key")
		}

		// The canonical form must be injective across field boundaries: a
		// benchmark name that embeds the serialized form of another field
		// (e.g. "typeset\nscenarios=2") must not produce the same digest as
		// the request that legitimately has those values. Line-based framing
		// with %q-free printf is safe only because every write is
		// newline-terminated and values cannot smuggle a terminator into a
		// *different* field position without shifting every later line; probe
		// the classic collision shape anyway.
		if strings.Contains(benchmark, "\n") {
			alt := q
			alt.Benchmark = strings.ReplaceAll(benchmark, "\n", " ")
			if alt.Benchmark != benchmark && alt.Key(fingerprint) == key {
				t.Error("newline-in-benchmark collided with its flattened form")
			}
		}
	})
}
