package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"

	"tsperr/internal/cell"
	"tsperr/internal/core"
	"tsperr/internal/cpu"
	"tsperr/internal/errormodel"
)

// POST /v1/oppoint: operating-point selection as a service. Given a target
// error rate and a (voltage, temperature) grid, the handler bisects over the
// frequency ratio at each condition — core.BisectRatio's deterministic index
// bisection — and returns the Pareto frontier of fastest (period, voltage)
// points meeting the target. Every bisection probe is an ordinary estimate
// sub-request pushed through the same join machinery as /v1/estimate, so
// probes hit the LRU cache and dedup against concurrent searches and plain
// estimates; the oppoint_* counters in /metrics make that sharing visible.

// Oppoint search envelope: defaults and caps.
const (
	// defaultOppointMinRatio/MaxRatio bound the default search range: from
	// no speculation (1.0) to well past the design's working ratio.
	defaultOppointMinRatio = 1.0
	defaultOppointMaxRatio = 1.3
	// defaultOppointSteps quantizes the default grid to ~2% frequency
	// resolution; maxOppointSteps caps the probe budget a request may ask
	// for (log2(256) + 2 = 10 probes per condition).
	defaultOppointSteps = 16
	maxOppointSteps     = 256
	// maxOppointConditions caps the V/T grid size of one search.
	maxOppointConditions = 16
)

// OppointRequest is the body of POST /v1/oppoint.
type OppointRequest struct {
	// Benchmark names the program to optimize (required).
	Benchmark string `json:"benchmark"`
	// Scenarios is the dataset count per probe (0 = server default).
	Scenarios int `json:"scenarios,omitempty"`
	// TargetErrorRate is the acceptable mean error rate, in [0, 1].
	TargetErrorRate float64 `json:"target_error_rate"`
	// Voltages and Temps span the condition grid (cross product); an empty
	// list means the single nominal value. Zero entries mean nominal too
	// (cell.OperatingCondition semantics).
	Voltages []float64 `json:"voltages,omitempty"`
	Temps    []float64 `json:"temps_c,omitempty"`
	// MinRatio/MaxRatio/Steps define the quantized frequency-ratio grid the
	// bisection searches (zero fields select the defaults above).
	MinRatio float64 `json:"min_ratio,omitempty"`
	MaxRatio float64 `json:"max_ratio,omitempty"`
	Steps    int     `json:"steps,omitempty"`
	// TimeoutMS bounds the whole search, capped by the server's -max-timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// OppointPoint is one condition's search outcome: the fastest grid ratio
// meeting the target (or the infeasible low end), with the period/frequency
// it implies and the speedup/risk summary at that ratio.
type OppointPoint struct {
	VoltageV float64 `json:"voltage"`
	TempC    float64 `json:"temp_c"`
	// Feasible is false when even MinRatio exceeds the target; Ratio and
	// ErrorRate then describe that infeasible low end.
	Feasible  bool    `json:"feasible"`
	Ratio     float64 `json:"ratio"`
	PeriodPs  float64 `json:"period_ps"`
	FreqMHz   float64 `json:"freq_mhz"`
	ErrorRate float64 `json:"error_rate"`
	// Speedup is the expected performance relative to baseline under the
	// replay-at-half-frequency model; CDFBelowBreakEven is the probability
	// speculation stays profitable across chips and inputs (risk measure).
	Speedup           float64 `json:"speedup"`
	CDFBelowBreakEven float64 `json:"cdf_below_break_even"`
	// Evals counts the bisection probes this condition spent.
	Evals int `json:"evals"`
}

// OppointResponse is the POST /v1/oppoint success body.
type OppointResponse struct {
	Benchmark       string  `json:"benchmark"`
	TargetErrorRate float64 `json:"target_error_rate"`
	BaseFreqMHz     float64 `json:"base_freq_mhz"`
	// Points holds one entry per distinct grid condition, sorted by
	// (voltage, temperature) — invariant to the request's grid ordering.
	Points []OppointPoint `json:"points"`
	// Frontier is the Pareto frontier over feasible points — no other
	// feasible point is both faster (shorter period) and lower-voltage —
	// sorted fastest first, so Frontier[0] is the speed-optimal choice.
	Frontier []OppointPoint `json:"frontier"`
	// Subrequests counts the estimate sub-requests this search issued;
	// CacheHits says how many of them the LRU answered without computing.
	Subrequests int `json:"subrequests"`
	CacheHits   int `json:"cache_hits"`
}

// normalize fills defaulted fields in place.
func (q *OppointRequest) normalize(limits Limits) {
	if q.Scenarios <= 0 {
		q.Scenarios = limits.DefaultScenarios
	}
	if q.MinRatio == 0 {
		q.MinRatio = defaultOppointMinRatio
	}
	if q.MaxRatio == 0 {
		q.MaxRatio = defaultOppointMaxRatio
	}
	if q.Steps == 0 {
		q.Steps = defaultOppointSteps
	}
	if len(q.Voltages) == 0 {
		q.Voltages = []float64{0}
	}
	if len(q.Temps) == 0 {
		q.Temps = []float64{0}
	}
}

// validate rejects out-of-envelope searches with client-facing messages.
func (q *OppointRequest) validate(limits Limits) error {
	if q.Benchmark == "" {
		return errors.New("benchmark is required")
	}
	if limits.Lookup != nil {
		if err := limits.Lookup(q.Benchmark); err != nil {
			return fmt.Errorf("unknown benchmark %q", q.Benchmark)
		}
	}
	if q.Scenarios < 1 || q.Scenarios > limits.MaxScenarios {
		return fmt.Errorf("scenarios %d out of range [1, %d]", q.Scenarios, limits.MaxScenarios)
	}
	if !(q.TargetErrorRate >= 0 && q.TargetErrorRate <= 1) {
		return fmt.Errorf("target_error_rate %g out of range [0, 1]", q.TargetErrorRate)
	}
	if !(q.MinRatio >= minFreqRatio && q.MinRatio <= maxFreqRatio) {
		return fmt.Errorf("min_ratio %g out of range [%g, %g]", q.MinRatio, minFreqRatio, maxFreqRatio)
	}
	if !(q.MaxRatio >= q.MinRatio && q.MaxRatio <= maxFreqRatio) {
		return fmt.Errorf("max_ratio %g out of range [min_ratio=%g, %g]", q.MaxRatio, q.MinRatio, maxFreqRatio)
	}
	if q.Steps < 1 || q.Steps > maxOppointSteps {
		return fmt.Errorf("steps %d out of range [1, %d]", q.Steps, maxOppointSteps)
	}
	if n := len(q.Voltages) * len(q.Temps); n > maxOppointConditions {
		return fmt.Errorf("condition grid has %d points, max %d", n, maxOppointConditions)
	}
	for _, v := range q.Voltages {
		for _, t := range q.Temps {
			if err := (cell.OperatingCondition{VoltageV: v, TempC: t}).Validate(); err != nil {
				return err
			}
		}
	}
	if q.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms %d must be >= 0", q.TimeoutMS)
	}
	return nil
}

// conditions expands the grid into normalized, deduplicated conditions in a
// canonical (voltage, temperature) order, so the response — and the probe
// sequence feeding the shared cache — is invariant to the request's list
// ordering.
func (q *OppointRequest) conditions() []cell.OperatingCondition {
	seen := make(map[[2]uint64]bool)
	out := make([]cell.OperatingCondition, 0, len(q.Voltages)*len(q.Temps))
	for _, v := range q.Voltages {
		for _, t := range q.Temps {
			c := cell.OperatingCondition{VoltageV: v, TempC: t}.Norm()
			k := [2]uint64{math.Float64bits(c.VoltageV), math.Float64bits(c.TempC)}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].VoltageV < out[j].VoltageV {
			return true
		}
		if out[i].VoltageV > out[j].VoltageV {
			return false
		}
		return out[i].TempC < out[j].TempC
	})
	return out
}

// errOppointQueueFull signals backpressure from a sub-request's join.
var errOppointQueueFull = errors.New("compute queue full, retry later")

// oppointSub pushes one bisection probe through the estimate join machinery
// and waits for its report; cached says whether the LRU answered directly.
func (s *Server) oppointSub(ctx context.Context, sub *Request) (rep *core.Report, cached bool, err error) {
	s.met.oppointSubrequests.Add(1)
	key := sub.Key(s.cfg.Fingerprint)
	rep, f, outcome := s.join(sub, key, nil)
	switch outcome {
	case joinCacheHit:
		s.met.oppointSubrequestCacheHits.Add(1)
		return rep, true, nil
	case joinRejected:
		return nil, false, errOppointQueueFull
	}
	select {
	case <-f.done:
	case <-ctx.Done():
		s.leave(key, f)
		return nil, false, ctx.Err()
	}
	s.leave(key, f)
	if f.err != nil {
		return nil, false, f.err
	}
	return f.rep, false, nil
}

func (s *Server) handleOppoint(w http.ResponseWriter, r *http.Request) {
	s.met.oppointRequests.Add(1)
	if !s.ready() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "model warming up, retry shortly"})
		return
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	var q OppointRequest
	if err := dec.Decode(&q); err != nil {
		s.met.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid request body: " + err.Error()})
		return
	}
	q.normalize(s.cfg.Limits)
	if err := q.validate(s.cfg.Limits); err != nil {
		s.met.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	ctx := r.Context()
	if d := (&Request{TimeoutMS: q.TimeoutMS}).timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	baseFreq := errormodel.DefaultOptions().BaseFreqMHz
	basePeriod := 1e6 / baseFreq
	resp := OppointResponse{
		Benchmark:       q.Benchmark,
		TargetErrorRate: q.TargetErrorRate,
		BaseFreqMHz:     baseFreq,
		Points:          make([]OppointPoint, 0, maxOppointConditions),
	}
	for _, cond := range q.conditions() {
		cond := cond
		s.met.oppointSearches.Add(1)
		// reports keeps each probed ratio's full report so the chosen
		// point's risk summary comes from the same computation that decided
		// the bisection — no extra probe at the end.
		reports := make(map[uint64]*core.Report)
		eval := func(ctx context.Context, ratio float64) (float64, error) {
			sub := &Request{
				Benchmark: q.Benchmark,
				Scenarios: q.Scenarios,
				FreqRatio: ratio,
				VoltageV:  cond.VoltageV,
				TempC:     cond.TempC,
			}
			rep, cached, err := s.oppointSub(ctx, sub)
			if err != nil {
				return 0, err
			}
			resp.Subrequests++
			if cached {
				resp.CacheHits++
			}
			if rep == nil || rep.Estimate == nil {
				return 0, fmt.Errorf("sub-request at %s ratio %g returned no estimate", cond, ratio)
			}
			reports[math.Float64bits(ratio)] = rep
			return rep.Estimate.MeanErrorRate(), nil
		}
		res, err := core.BisectRatio(ctx, q.MinRatio, q.MaxRatio, q.Steps, q.TargetErrorRate, eval)
		if err != nil {
			code := http.StatusInternalServerError
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, errOppointQueueFull) {
				code = http.StatusServiceUnavailable
			}
			writeJSON(w, code, errorResponse{Error: fmt.Sprintf("search at %s: %v", cond, err)})
			return
		}
		if !res.Feasible {
			s.met.oppointInfeasible.Add(1)
		}
		pm := cpu.PerfModel{FreqRatio: res.Ratio, BaseCPI: 1, Scheme: cpu.ReplayHalfFrequency}
		pt := OppointPoint{
			VoltageV:  cond.VoltageV,
			TempC:     cond.TempC,
			Feasible:  res.Feasible,
			Ratio:     res.Ratio,
			PeriodPs:  basePeriod / res.Ratio,
			FreqMHz:   baseFreq * res.Ratio,
			ErrorRate: res.ErrorRate,
			Speedup:   pm.Speedup(res.ErrorRate),
			Evals:     res.Evals,
		}
		if rep := reports[math.Float64bits(res.Ratio)]; rep != nil && rep.Estimate != nil {
			pt.CDFBelowBreakEven = rep.Estimate.ErrorRateCDF(pm.BreakEvenErrorRate())
		}
		resp.Points = append(resp.Points, pt)
	}
	resp.Frontier = oppointFrontier(resp.Points)
	writeJSON(w, http.StatusOK, resp)
}

// oppointFrontier returns the Pareto frontier over the feasible points: a
// point survives when no other feasible point has both a shorter-or-equal
// period and a lower-or-equal voltage (one strictly). Ties on both axes keep
// the first point in canonical order. Sorted fastest (shortest period) first,
// breaking period ties by lower voltage.
func oppointFrontier(points []OppointPoint) []OppointPoint {
	frontier := make([]OppointPoint, 0, len(points))
	for i, p := range points {
		if !p.Feasible {
			continue
		}
		dominated := false
		for j, o := range points {
			if i == j || !o.Feasible {
				continue
			}
			if o.PeriodPs > p.PeriodPs || o.VoltageV > p.VoltageV {
				continue
			}
			if o.PeriodPs < p.PeriodPs || o.VoltageV < p.VoltageV || j < i {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, p)
		}
	}
	sort.Slice(frontier, func(i, j int) bool {
		if frontier[i].PeriodPs < frontier[j].PeriodPs {
			return true
		}
		if frontier[i].PeriodPs > frontier[j].PeriodPs {
			return false
		}
		return frontier[i].VoltageV < frontier[j].VoltageV
	})
	return frontier
}
