// Package server implements tsperrd, the resident estimation service: one
// warm framework (calibrated machine + trained datapath model, the
// once-per-design work of PAPER.md §3–4) serving error-rate estimates over
// HTTP/JSON. The serving layer adds what a CLI cannot: request
// deduplication (concurrent identical requests share one computation),
// an LRU result cache keyed on the canonical request hash and the model
// fingerprint, bounded-queue backpressure, and graceful drain on shutdown.
// The numerical pipeline itself lives in internal/core; this package never
// touches it beyond the injected analyze function.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"tsperr/internal/cell"
	"tsperr/internal/cluster"
	"tsperr/internal/core"
)

// Request is the body of POST /v1/estimate. The zero value of every field
// except Benchmark selects a server-side default, so the minimal request is
// {"benchmark": "typeset"}.
type Request struct {
	// Benchmark names the program to analyze (mibench.ByName).
	Benchmark string `json:"benchmark"`
	// Scenarios is the number of input datasets (the data-variation axis).
	Scenarios int `json:"scenarios,omitempty"`
	// Workers bounds the per-computation scenario concurrency; it does not
	// change the result (the pipeline is bit-deterministic across worker
	// counts), so it is excluded from the request hash.
	Workers int `json:"workers,omitempty"`
	// Retries / MinScenarios / FailFast are the core.AnalyzeOpts resilience
	// knobs; they can change the report (degraded runs), so they are part
	// of the request hash.
	Retries      int  `json:"retries,omitempty"`
	MinScenarios int  `json:"min_scenarios,omitempty"`
	FailFast     bool `json:"fail_fast,omitempty"`
	// MCTrials, when positive, appends a sharded Monte Carlo validation to
	// the report (core.AnalyzeOpts.MCTrials). It changes the report, so it is
	// part of the request hash.
	MCTrials int `json:"mc_trials,omitempty"`
	// TimeoutMS bounds this computation's wall time, capped by the server's
	// -max-timeout. Zero selects the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Async, when set, returns a job id immediately (202); poll
	// GET /v1/jobs/{id} for the result.
	Async bool `json:"async,omitempty"`
	// ErrorRateThreshold is the caller's decision boundary (a fraction in
	// [0, 1)): on a serve-mode surrogate daemon, predictions landing inside
	// the guard band around it escalate to the exact pipeline. It tunes the
	// confidence gate only — the report is identical either way — so it is
	// excluded from the request hash and requests differing only in it dedup
	// onto one computation.
	ErrorRateThreshold float64 `json:"error_rate_threshold,omitempty"`
	// FreqRatio, VoltageV, and TempC override the operating point for this
	// request: the frequency ratio (speculative over baseline; 0 = the
	// design's working ratio) and the supply/temperature condition (0 = the
	// daemon's configured condition). All three determine the result, so
	// they are part of the request hash; requests carrying any override are
	// served through Config.AnalyzeAt and bypass the surrogate fast tier
	// (the tier is trained at the daemon's own operating point).
	FreqRatio float64 `json:"freq_ratio,omitempty"`
	VoltageV  float64 `json:"voltage,omitempty"`
	TempC     float64 `json:"temp_c,omitempty"`

	// forwarded marks a request a cluster coordinator routed here
	// (cluster.HeaderForwarded): it executes locally and is never re-routed,
	// so a misconfigured mesh cannot bounce a request in circles.
	forwarded bool
}

// maxRequestBody bounds the decode of one request body; estimation requests
// are a few hundred bytes, so anything larger is a client bug.
const maxRequestBody = 1 << 20

// parseRequest decodes, normalizes, and validates one estimate request.
// Unknown fields are rejected so a typoed knob fails loudly instead of
// silently selecting a default.
func parseRequest(r *http.Request, limits Limits) (*Request, error) {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid request body: %w", err)
	}
	req.normalize(limits)
	if err := req.validate(limits); err != nil {
		return nil, err
	}
	req.forwarded = r.Header.Get(cluster.HeaderForwarded) != ""
	return &req, nil
}

// Limits is the validation envelope the server applies to every request.
type Limits struct {
	// DefaultScenarios fills Request.Scenarios == 0; MaxScenarios rejects
	// oversized fan-outs before they reach the compute queue.
	DefaultScenarios int
	MaxScenarios     int
	// MaxRetries bounds per-scenario retry amplification.
	MaxRetries int
	// MaxWorkers bounds per-computation concurrency.
	MaxWorkers int
	// MaxMCTrials bounds the Monte Carlo validation budget a request may ask
	// for.
	MaxMCTrials int
	// Lookup, when non-nil, vets the benchmark name at admission (the
	// daemon wires mibench.ByName); nil accepts any name and lets the
	// analyze function fail it.
	Lookup func(name string) error
}

// normalize fills defaulted fields in place.
func (q *Request) normalize(limits Limits) {
	if q.Scenarios <= 0 {
		q.Scenarios = limits.DefaultScenarios
	}
}

// validate rejects out-of-envelope requests with client-facing messages.
func (q *Request) validate(limits Limits) error {
	if q.Benchmark == "" {
		return errors.New("benchmark is required")
	}
	if limits.Lookup != nil {
		if err := limits.Lookup(q.Benchmark); err != nil {
			return fmt.Errorf("unknown benchmark %q", q.Benchmark)
		}
	}
	if q.Scenarios < 1 || q.Scenarios > limits.MaxScenarios {
		return fmt.Errorf("scenarios %d out of range [1, %d]", q.Scenarios, limits.MaxScenarios)
	}
	if q.Workers < 0 || q.Workers > limits.MaxWorkers {
		return fmt.Errorf("workers %d out of range [0, %d]", q.Workers, limits.MaxWorkers)
	}
	if q.Retries < 0 || q.Retries > limits.MaxRetries {
		return fmt.Errorf("retries %d out of range [0, %d]", q.Retries, limits.MaxRetries)
	}
	if q.MinScenarios < 0 || q.MinScenarios > q.Scenarios {
		return fmt.Errorf("min_scenarios %d out of range [0, scenarios=%d]", q.MinScenarios, q.Scenarios)
	}
	if q.MCTrials < 0 || q.MCTrials > limits.MaxMCTrials {
		return fmt.Errorf("mc_trials %d out of range [0, %d]", q.MCTrials, limits.MaxMCTrials)
	}
	if q.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms %d must be >= 0", q.TimeoutMS)
	}
	if q.ErrorRateThreshold < 0 || q.ErrorRateThreshold >= 1 || math.IsNaN(q.ErrorRateThreshold) {
		return fmt.Errorf("error_rate_threshold %g out of range [0, 1)", q.ErrorRateThreshold)
	}
	if q.FreqRatio != 0 && !(q.FreqRatio >= minFreqRatio && q.FreqRatio <= maxFreqRatio) {
		return fmt.Errorf("freq_ratio %g out of range [%g, %g]", q.FreqRatio, minFreqRatio, maxFreqRatio)
	}
	if err := q.cond().Validate(); err != nil {
		return err
	}
	return nil
}

// minFreqRatio/maxFreqRatio bound a request's frequency-ratio override;
// outside this window the calibrated model has nothing meaningful to say.
const (
	minFreqRatio = 0.5
	maxFreqRatio = 2.0
)

// cond returns the request's operating-condition override; the zero value
// (no override) normalizes to the nominal condition inside internal/cell.
func (q *Request) cond() cell.OperatingCondition {
	return cell.OperatingCondition{VoltageV: q.VoltageV, TempC: q.TempC}
}

// pointOverride reports whether the request asks for an explicit operating
// point instead of the daemon's default serving point.
func (q *Request) pointOverride() bool {
	return q.FreqRatio != 0 || q.VoltageV != 0 || q.TempC != 0
}

// Key is the canonical content address of a request's result: a SHA-256
// over the result-determining fields plus the server's model fingerprint
// (options + cell library), so two daemons at different operating points
// never share entries. Workers, TimeoutMS, and Async are deliberately
// excluded — they shape scheduling, not the report (worker-count
// determinism is pinned by errormodel's determinism tests) — so requests
// differing only in those knobs dedup onto one computation.
func (q *Request) Key(fingerprint string) string {
	h := sha256.New()
	fmt.Fprintf(h, "fp=%s\nbench=%s\nscenarios=%d\nretries=%d\nmin=%d\nfailfast=%t\n",
		fingerprint, q.Benchmark, q.Scenarios, q.Retries, q.MinScenarios, q.FailFast)
	// mc=0 (the overwhelmingly common case) is hashed explicitly rather than
	// omitted, keeping the canonical form total: every result-determining
	// field always contributes exactly one line.
	fmt.Fprintf(h, "mc=%d\n", q.MCTrials)
	// The operating-point overrides determine the result; unset (0) hashes
	// as 0 — "the daemon's default point" — keeping the canonical form total.
	fmt.Fprintf(h, "ratio=%g\nvolt=%g\ntemp=%g\n", q.FreqRatio, q.VoltageV, q.TempC)
	return hex.EncodeToString(h.Sum(nil))
}

// analyzeOpts maps the request's resilience knobs onto the pipeline's
// options.
func (q *Request) analyzeOpts() core.AnalyzeOpts {
	return core.AnalyzeOpts{
		Workers:      q.Workers,
		Retries:      q.Retries,
		MinScenarios: q.MinScenarios,
		FailFast:     q.FailFast,
		MCTrials:     q.MCTrials,
	}
}

// proxyBody is the request as re-marshaled for routing to a peer: the same
// result-determining fields (so the peer computes the identical key and its
// own dedup layer kicks in), forced synchronous — the coordinator's flight is
// the thing being awaited, not a job on the peer.
func (q *Request) proxyBody() Request {
	p := *q
	p.Async = false
	return p
}

// timeout resolves the effective computation deadline: the request's ask
// capped by max, or def when the request leaves it unset. Zero means no
// deadline.
func (q *Request) timeout(def, max time.Duration) time.Duration {
	if q.TimeoutMS <= 0 {
		return def
	}
	d := time.Duration(q.TimeoutMS) * time.Millisecond
	if max > 0 && d > max {
		return max
	}
	return d
}
