package server

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tsperr/internal/cell"
	"tsperr/internal/core"
	"tsperr/internal/surrogate"
)

// stubSurrogate is a scripted SurrogateTier: decide returns the configured
// decision, observations are counted and recorded.
type stubSurrogate struct {
	decision  SurrogateDecision
	decides   atomic.Uint64
	observes  atomic.Uint64
	residual  float64
	residOK   bool
	lastBench atomic.Value // string
}

func (st *stubSurrogate) Decide(benchmark string, scenarios int, threshold float64) SurrogateDecision {
	st.decides.Add(1)
	st.lastBench.Store(benchmark)
	return st.decision
}

func (st *stubSurrogate) Observe(benchmark string, scenarios int, rep *core.Report) (float64, bool) {
	st.observes.Add(1)
	return st.residual, st.residOK
}

func (st *stubSurrogate) Stats() SurrogateStats {
	return SurrogateStats{ModelVersion: 3, TrainSize: 64, Buffered: 70, Trainings: 3}
}

func confidentDecision() SurrogateDecision {
	return SurrogateDecision{
		Serve:  true,
		Reason: surrogate.ReasonServed,
		Meta: &core.SurrogateMeta{
			PredictedErrorRate: 2e-4,
			PredictedLog10:     -3.7,
			StdLog10:           0.08,
			Bound:              0.25,
			ModelVersion:       3,
			TrainSize:          64,
		},
	}
}

// TestSurrogateServesConfidentPrediction pins the fast path: a confident
// prediction answers with tier "surrogate" and the exact pipeline runs zero
// times.
func TestSurrogateServesConfidentPrediction(t *testing.T) {
	var computations atomic.Uint64
	stub := &stubSurrogate{decision: confidentDecision()}
	_, ts := newTestServer(t, context.Background(), Config{
		Analyze: func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
			computations.Add(1)
			return fakeReport(benchmark), nil
		},
		Surrogate:     stub,
		SurrogateMode: SurrogateServe,
	})

	code, body, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"bench-a"}`)
	if err != nil {
		t.Fatal(err)
	}
	if code != 200 {
		t.Fatalf("status %d: %v", code, body)
	}
	if body["tier"] != core.TierSurrogate {
		t.Errorf("response tier = %v, want surrogate", body["tier"])
	}
	rep := body["report"].(map[string]any)
	if rep["tier"] != core.TierSurrogate {
		t.Errorf("report tier = %v, want surrogate", rep["tier"])
	}
	meta, ok := rep["surrogate"].(map[string]any)
	if !ok {
		t.Fatalf("report missing surrogate metadata: %v", rep)
	}
	if meta["predicted_error_rate"].(float64) != 2e-4 || meta["bound"].(float64) != 0.25 {
		t.Errorf("surrogate metadata mangled: %v", meta)
	}
	if got := computations.Load(); got != 0 {
		t.Errorf("exact pipeline ran %d times on a confident prediction", got)
	}

	m := scrapeMetrics(t, ts.URL)
	if m["tsperrd_surrogate_hits_total"] != 1 {
		t.Errorf("surrogate hits = %g, want 1", m["tsperrd_surrogate_hits_total"])
	}
	if m["tsperrd_surrogate_serving"] != 1 {
		t.Errorf("serving gauge = %g, want 1", m["tsperrd_surrogate_serving"])
	}
	if m["tsperrd_surrogate_model_version"] != 3 || m["tsperrd_surrogate_buffer_size"] != 70 {
		t.Errorf("surrogate gauges wrong: version %g buffer %g",
			m["tsperrd_surrogate_model_version"], m["tsperrd_surrogate_buffer_size"])
	}
}

// TestSurrogateEscalatesToExact pins gate honesty at the serving layer: an
// unconfident decision runs the exact pipeline, the response is tier exact,
// the result is observed for training, and the escalation reason is counted.
func TestSurrogateEscalatesToExact(t *testing.T) {
	var computations atomic.Uint64
	stub := &stubSurrogate{
		decision: SurrogateDecision{Reason: surrogate.ReasonUncertain},
		residual: 0.12, residOK: true,
	}
	_, ts := newTestServer(t, context.Background(), Config{
		Analyze: func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
			computations.Add(1)
			return fakeReport(benchmark), nil
		},
		Surrogate:     stub,
		SurrogateMode: SurrogateServe,
	})

	code, body, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"bench-a","error_rate_threshold":0.001}`)
	if err != nil {
		t.Fatal(err)
	}
	if code != 200 {
		t.Fatalf("status %d: %v", code, body)
	}
	if body["tier"] != core.TierExact {
		t.Errorf("response tier = %v, want exact", body["tier"])
	}
	rep := body["report"].(map[string]any)
	if _, leaked := rep["surrogate"]; leaked {
		t.Error("exact report carries surrogate metadata")
	}
	if computations.Load() != 1 {
		t.Errorf("exact pipeline ran %d times, want 1", computations.Load())
	}
	if stub.observes.Load() != 1 {
		t.Errorf("exact result observed %d times, want 1", stub.observes.Load())
	}

	m := scrapeMetrics(t, ts.URL)
	if m["tsperrd_surrogate_hits_total"] != 0 {
		t.Errorf("hits = %g, want 0", m["tsperrd_surrogate_hits_total"])
	}
	// Labeled escalation series accumulate under the bare name.
	if m["tsperrd_surrogate_escalations_total"] != 1 {
		t.Errorf("escalations = %g, want 1", m["tsperrd_surrogate_escalations_total"])
	}
	if m["tsperrd_surrogate_observations_total"] != 1 {
		t.Errorf("observations = %g, want 1", m["tsperrd_surrogate_observations_total"])
	}
	if m["tsperrd_surrogate_residual_log10_count"] != 1 {
		t.Errorf("residual count = %g, want 1", m["tsperrd_surrogate_residual_log10_count"])
	}
}

// TestSurrogateShadowNeverServes pins shadow mode: predictions are never
// consulted for serving, but every exact result records a residual.
func TestSurrogateShadowNeverServes(t *testing.T) {
	stub := &stubSurrogate{decision: confidentDecision(), residual: 0.05, residOK: true}
	_, ts := newTestServer(t, context.Background(), Config{
		Analyze: func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
			return fakeReport(benchmark), nil
		},
		Surrogate:     stub,
		SurrogateMode: SurrogateShadow,
	})

	for _, bench := range []string{"a", "b", "c"} {
		code, body, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"`+bench+`"}`)
		if err != nil {
			t.Fatal(err)
		}
		if code != 200 || body["tier"] != core.TierExact {
			t.Fatalf("shadow response: status %d tier %v", code, body["tier"])
		}
	}
	if stub.decides.Load() != 0 {
		t.Errorf("shadow mode consulted the gate %d times", stub.decides.Load())
	}
	if stub.observes.Load() != 3 {
		t.Errorf("observations = %d, want 3", stub.observes.Load())
	}
	m := scrapeMetrics(t, ts.URL)
	if m["tsperrd_surrogate_residual_log10_count"] != 3 {
		t.Errorf("residual count = %g, want 3", m["tsperrd_surrogate_residual_log10_count"])
	}
	if m["tsperrd_surrogate_serving"] != 0 {
		t.Errorf("serving gauge = %g, want 0 in shadow", m["tsperrd_surrogate_serving"])
	}
}

// TestSurrogateBypassedForMCAndAsync: Monte Carlo validations and async jobs
// must always take the exact pipeline, even with a confident surrogate.
func TestSurrogateBypassedForMCAndAsync(t *testing.T) {
	var computations atomic.Uint64
	stub := &stubSurrogate{decision: confidentDecision()}
	_, ts := newTestServer(t, context.Background(), Config{
		Analyze: func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
			computations.Add(1)
			return fakeReport(benchmark), nil
		},
		Surrogate:     stub,
		SurrogateMode: SurrogateServe,
	})

	code, body, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"a","mc_trials":50}`)
	if err != nil {
		t.Fatal(err)
	}
	if code != 200 || body["tier"] != core.TierExact {
		t.Fatalf("mc_trials response: status %d tier %v", code, body["tier"])
	}

	code, body, err = postEstimate(context.Background(), ts.URL, `{"benchmark":"b","async":true}`)
	if err != nil {
		t.Fatal(err)
	}
	if code != 202 {
		t.Fatalf("async status %d: %v", code, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for computations.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if computations.Load() != 2 {
		t.Errorf("exact pipeline ran %d times, want 2", computations.Load())
	}
	if stub.decides.Load() != 0 {
		t.Errorf("gate consulted %d times for mc/async requests", stub.decides.Load())
	}
}

// TestSurrogateCachedExactWins: a cached exact report beats a confident
// prediction for the identical request.
func TestSurrogateCachedExactWins(t *testing.T) {
	stub := &stubSurrogate{decision: SurrogateDecision{Reason: surrogate.ReasonUncertain}}
	_, ts := newTestServer(t, context.Background(), Config{
		Analyze: func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
			return fakeReport(benchmark), nil
		},
		Surrogate:     stub,
		SurrogateMode: SurrogateServe,
	})

	// First request escalates (uncertain) and caches the exact result.
	if code, _, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"a"}`); err != nil || code != 200 {
		t.Fatalf("seed request: %d %v", code, err)
	}
	// Now the stub turns confident — but the cache must answer first.
	stub.decision = confidentDecision()
	code, body, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"a"}`)
	if err != nil {
		t.Fatal(err)
	}
	if code != 200 || body["cached"] != true || body["tier"] != core.TierExact {
		t.Fatalf("cached=%v tier=%v, want cached exact", body["cached"], body["tier"])
	}
	m := scrapeMetrics(t, ts.URL)
	if m["tsperrd_surrogate_hits_total"] != 0 {
		t.Errorf("surrogate answered over a cached exact report")
	}
}

// TestSurrogateObserveSkipsUntrustworthyReports: degraded and zero-rate
// results never become training labels.
func TestSurrogateObserveSkipsUntrustworthyReports(t *testing.T) {
	stub := &stubSurrogate{}
	degraded := fakeReport("a")
	degraded.Degraded = true
	zero := fakeReport("b")
	zero.Estimate = &core.Estimate{LambdaMean: 0, LambdaStd: 0, TotalInsts: 1e5}
	reports := map[string]*core.Report{"a": degraded, "b": zero, "c": fakeReport("c")}
	_, ts := newTestServer(t, context.Background(), Config{
		Analyze: func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
			return reports[benchmark], nil
		},
		Surrogate:     stub,
		SurrogateMode: SurrogateShadow,
	})
	for _, bench := range []string{"a", "b", "c"} {
		if code, _, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"`+bench+`"}`); err != nil || code != 200 {
			t.Fatalf("%s: %d %v", bench, code, err)
		}
	}
	if stub.observes.Load() != 1 {
		t.Errorf("observed %d reports, want only the clean one", stub.observes.Load())
	}
}

// TestSurrogateBypassedForPointOverrides pins V/T isolation at the serving
// layer: the fast tier is trained from reports at the daemon's own operating
// point, so a request overriding voltage, temperature, or frequency ratio
// must (a) never be answered by the gate — even a confident one — and
// (b) never feed its exact result back as a training observation, which
// would teach the tier the wrong condition.
func TestSurrogateBypassedForPointOverrides(t *testing.T) {
	var exactAt atomic.Uint64
	stub := &stubSurrogate{decision: confidentDecision(), residual: 0.05, residOK: true}
	_, ts := newTestServer(t, context.Background(), Config{
		Analyze: func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
			return fakeReport(benchmark), nil
		},
		AnalyzeAt: func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts, cond cell.OperatingCondition, ratio float64) (*core.Report, error) {
			exactAt.Add(1)
			return fakeReport(benchmark), nil
		},
		Surrogate:     stub,
		SurrogateMode: SurrogateServe,
	})

	for _, body := range []string{
		`{"benchmark":"a","voltage":0.95}`,
		`{"benchmark":"a","temp_c":85}`,
		`{"benchmark":"a","freq_ratio":1.1}`,
	} {
		code, resp, err := postEstimate(context.Background(), ts.URL, body)
		if err != nil {
			t.Fatal(err)
		}
		if code != 200 || resp["tier"] != core.TierExact {
			t.Fatalf("%s: status %d tier %v, want exact", body, code, resp["tier"])
		}
	}
	if got := exactAt.Load(); got != 3 {
		t.Errorf("AnalyzeAt ran %d times, want 3", got)
	}
	if got := stub.decides.Load(); got != 0 {
		t.Errorf("gate consulted %d times for override requests", got)
	}
	if got := stub.observes.Load(); got != 0 {
		t.Errorf("override results observed %d times — they train the wrong condition", got)
	}

	// A default-point request on the same daemon still uses the tier both ways.
	code, resp, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"a"}`)
	if err != nil {
		t.Fatal(err)
	}
	if code != 200 || resp["tier"] != core.TierSurrogate {
		t.Fatalf("default-point request: status %d tier %v, want surrogate", code, resp["tier"])
	}
}

func TestSurrogateConfigValidation(t *testing.T) {
	ctx := context.Background()
	analyze := func(ctx context.Context, b string, sc int, o core.AnalyzeOpts) (*core.Report, error) {
		return fakeReport(b), nil
	}
	if _, err := New(ctx, Config{Analyze: analyze, SurrogateMode: "serve"}); err == nil {
		t.Error("serve mode without a surrogate accepted")
	}
	if _, err := New(ctx, Config{Analyze: analyze, SurrogateMode: "bogus"}); err == nil {
		t.Error("unknown mode accepted")
	}
	s, err := New(ctx, Config{Analyze: analyze})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.SurrogateMode != SurrogateOff {
		t.Errorf("default mode = %q, want off", s.cfg.SurrogateMode)
	}
	s.Abort()
}

func TestErrorRateThresholdValidation(t *testing.T) {
	_, ts := newTestServer(t, context.Background(), Config{
		Analyze: func(ctx context.Context, b string, sc int, o core.AnalyzeOpts) (*core.Report, error) {
			return fakeReport(b), nil
		},
	})
	for _, body := range []string{
		`{"benchmark":"a","error_rate_threshold":-0.1}`,
		`{"benchmark":"a","error_rate_threshold":1}`,
		`{"benchmark":"a","error_rate_threshold":1.5}`,
	} {
		code, resp, err := postEstimate(context.Background(), ts.URL, body)
		if err != nil {
			t.Fatal(err)
		}
		if code != 400 {
			t.Errorf("%s: status %d, want 400", body, code)
		}
		if msg, _ := resp["error"].(string); !strings.Contains(msg, "error_rate_threshold") {
			t.Errorf("%s: error %q does not name the field", body, msg)
		}
	}
	// The threshold tunes the gate, not the result: it must not split the
	// request key.
	a := (&Request{Benchmark: "x", Scenarios: 2}).Key("fp")
	b := (&Request{Benchmark: "x", Scenarios: 2, ErrorRateThreshold: 0.01}).Key("fp")
	if a != b {
		t.Error("error_rate_threshold leaked into the request key")
	}
}
