package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"tsperr/internal/cluster"
	"tsperr/internal/core"
	"tsperr/internal/errormodel"
	"tsperr/internal/isa"
	"tsperr/internal/montecarlo"
)

// fakeCluster scripts the coordinator surface so the server's routing and
// readiness logic is tested without real peers.
type fakeCluster struct {
	route    string
	proxyRep *core.Report
	proxyErr error
	ready    bool
	healthy  int
	quorum   int
	statuses []cluster.PeerStatus
	stats    cluster.Stats

	proxyCalls atomic.Int64
	mcCalls    atomic.Int64
}

func (f *fakeCluster) Route(string) string { return f.route }

func (f *fakeCluster) ProxyEstimate(context.Context, string, []byte) (*core.Report, error) {
	f.proxyCalls.Add(1)
	return f.proxyRep, f.proxyErr
}

func (f *fakeCluster) MCRun(ctx context.Context, job core.MCJob) (*montecarlo.ShardedResult, error) {
	f.mcCalls.Add(1)
	return montecarlo.RunSharded(ctx, job.Spec, job.Shard)
}

func (f *fakeCluster) Ready() bool                        { return f.ready }
func (f *fakeCluster) HealthyPeers() int                  { return f.healthy }
func (f *fakeCluster) Quorum() int                        { return f.quorum }
func (f *fakeCluster) PeerStatuses() []cluster.PeerStatus { return f.statuses }
func (f *fakeCluster) Stats() cluster.Stats               { return f.stats }

func TestReadyzGatesOnWarmthAndQuorum(t *testing.T) {
	ctx := context.Background()
	fc := &fakeCluster{ready: false, healthy: 0, quorum: 1}
	cfg := Config{
		Analyze: func(ctx context.Context, b string, n int, o core.AnalyzeOpts) (*core.Report, error) {
			return fakeReport(b), nil
		},
		Cluster: fc,
	}
	_, ts := newTestServer(t, ctx, cfg)
	get := func() (int, readyResponse) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rr readyResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, rr
	}
	code, rr := get()
	if code != http.StatusServiceUnavailable || rr.Status != "unready" || !rr.Warm {
		t.Fatalf("below quorum: got %d %+v; want 503 unready with warm=true", code, rr)
	}
	fc.ready, fc.healthy = true, 2
	code, rr = get()
	if code != http.StatusOK || rr.Status != "ready" || rr.HealthyPeers != 2 {
		t.Fatalf("at quorum: got %d %+v; want 200 ready", code, rr)
	}
}

func TestReadyzWithoutClusterTracksWarmth(t *testing.T) {
	cfg := Config{
		Analyze: func(ctx context.Context, b string, n int, o core.AnalyzeOpts) (*core.Report, error) {
			return fakeReport(b), nil
		},
	}
	s, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Abort)
	ready := func() int {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		return rec.Code
	}
	if code := ready(); code != http.StatusServiceUnavailable {
		t.Fatalf("cold /readyz: got %d, want 503", code)
	}
	s.SetReady()
	if code := ready(); code != http.StatusOK {
		t.Fatalf("warm /readyz: got %d, want 200", code)
	}
}

func TestEstimateRoutesToOwningPeer(t *testing.T) {
	ctx := context.Background()
	var analyzeCalls atomic.Int64
	fc := &fakeCluster{route: "http://peer-1", proxyRep: fakeReport("routed")}
	cfg := Config{
		Analyze: func(ctx context.Context, b string, n int, o core.AnalyzeOpts) (*core.Report, error) {
			analyzeCalls.Add(1)
			return fakeReport(b), nil
		},
		Cluster: fc,
	}
	_, ts := newTestServer(t, ctx, cfg)
	code, body, err := postEstimate(ctx, ts.URL, `{"benchmark":"typeset"}`)
	if err != nil || code != http.StatusOK {
		t.Fatalf("routed estimate: %d %v", code, err)
	}
	rep := body["report"].(map[string]any)
	if rep["name"] != "routed" {
		t.Fatalf("got report %v, want the peer's", rep["name"])
	}
	if fc.proxyCalls.Load() != 1 || analyzeCalls.Load() != 0 {
		t.Fatalf("proxy=%d analyze=%d; want the peer to answer and local to stay idle",
			fc.proxyCalls.Load(), analyzeCalls.Load())
	}
}

func TestForwardedEstimateNeverReRoutes(t *testing.T) {
	ctx := context.Background()
	fc := &fakeCluster{route: "http://peer-1", proxyRep: fakeReport("routed")}
	cfg := Config{
		Analyze: func(ctx context.Context, b string, n int, o core.AnalyzeOpts) (*core.Report, error) {
			return fakeReport(b), nil
		},
		Cluster: fc,
	}
	_, ts := newTestServer(t, ctx, cfg)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/estimate",
		strings.NewReader(`{"benchmark":"typeset"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.HeaderForwarded, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded estimate: %d %v", resp.StatusCode, body)
	}
	if rep := body["report"].(map[string]any); rep["name"] != "typeset" {
		t.Fatalf("forwarded request answered with %v, want local execution", rep["name"])
	}
	if fc.proxyCalls.Load() != 0 {
		t.Fatal("forwarded request was routed onward; mesh loops are possible")
	}
}

func TestProxyFailureFallsBackToLocal(t *testing.T) {
	ctx := context.Background()
	fc := &fakeCluster{route: "http://peer-1", proxyErr: io.ErrUnexpectedEOF}
	cfg := Config{
		Analyze: func(ctx context.Context, b string, n int, o core.AnalyzeOpts) (*core.Report, error) {
			return fakeReport(b), nil
		},
		Cluster: fc,
	}
	_, ts := newTestServer(t, ctx, cfg)
	code, body, err := postEstimate(ctx, ts.URL, `{"benchmark":"typeset"}`)
	if err != nil || code != http.StatusOK {
		t.Fatalf("fallback estimate: %d %v", code, err)
	}
	if rep := body["report"].(map[string]any); rep["name"] != "typeset" {
		t.Fatalf("fallback answered with %v, want the local report", rep["name"])
	}
	if fc.proxyCalls.Load() != 1 {
		t.Fatalf("proxy attempted %d times, want exactly 1", fc.proxyCalls.Load())
	}
}

func TestMCTrialsFanOutThroughCluster(t *testing.T) {
	ctx := context.Background()
	fc := &fakeCluster{route: "http://peer-1"}
	spec := chunkTestSpec(t)
	cfg := Config{
		Analyze: func(ctx context.Context, b string, n int, o core.AnalyzeOpts) (*core.Report, error) {
			if o.MCRun == nil {
				t.Error("MCTrials request reached Analyze without the cluster runner")
				return fakeReport(b), nil
			}
			job := core.MCJob{Benchmark: b, Scenarios: n, ChunkSize: 16, Spec: spec}
			job.Spec.Trials, job.Spec.Seed = o.MCTrials, 1
			if _, err := o.MCRun(ctx, job); err != nil {
				return nil, err
			}
			return fakeReport(b), nil
		},
		Cluster: fc,
		Limits:  Limits{MaxMCTrials: 64},
	}
	_, ts := newTestServer(t, ctx, cfg)
	code, _, err := postEstimate(ctx, ts.URL, `{"benchmark":"typeset","mc_trials":32}`)
	if err != nil || code != http.StatusOK {
		t.Fatalf("mc estimate: %d %v", code, err)
	}
	if fc.mcCalls.Load() != 1 {
		t.Fatalf("cluster MCRun called %d times, want 1", fc.mcCalls.Load())
	}
	if fc.proxyCalls.Load() != 0 {
		t.Fatal("MCTrials request was proxied whole instead of fanning out chunks")
	}
}

// chunkTestSpec builds a minimal valid Monte Carlo spec for chunk-endpoint
// tests.
func chunkTestSpec(t *testing.T) montecarlo.Spec {
	t.Helper()
	p, err := isa.Assemble("chunkfix", "\tli r1, 2\nloop:\n\taddi r1, r1, -1\n\tbne r1, r0, loop\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	n := len(p.Insts)
	cond := &errormodel.Conditionals{PC: make([]float64, n), PE: make([]float64, n)}
	for i := range cond.PC {
		cond.PC[i] = 0.01
		cond.PE[i] = 0.02
	}
	return montecarlo.Spec{Prog: p, Cond: []*errormodel.Conditionals{cond}}
}

func TestClusterChunkEndpointExecutesChunks(t *testing.T) {
	ctx := context.Background()
	spec := chunkTestSpec(t)
	cfg := Config{
		Analyze: func(ctx context.Context, b string, n int, o core.AnalyzeOpts) (*core.Report, error) {
			return fakeReport(b), nil
		},
		Fingerprint: "model-A",
		ChunkSource: func(ctx context.Context, benchmark string, scenarios int) (montecarlo.Spec, error) {
			if benchmark != "chunkfix" {
				return montecarlo.Spec{}, errors.New("unknown benchmark")
			}
			return spec, nil
		},
	}
	_, ts := newTestServer(t, ctx, cfg)
	post := func(body, fingerprint string) (*http.Response, []byte) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/cluster/chunk", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint != "" {
			req.Header.Set(cluster.HeaderFingerprint, fingerprint)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, raw
	}

	resp, raw := post(`{"benchmark":"chunkfix","scenarios":1,"trials":40,"seed":9,"chunk_size":16,"index":1}`, "model-A")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk request: %d %s", resp.StatusCode, raw)
	}
	var got montecarlo.ChunkResult
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	refSpec := spec
	refSpec.Trials, refSpec.Seed = 40, 9
	want, err := montecarlo.RunChunk(ctx, refSpec, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != want.Index || len(got.Counts) != len(want.Counts) {
		t.Fatalf("chunk shape: got index %d/%d counts, want %d/%d", got.Index, len(got.Counts), want.Index, len(want.Counts))
	}
	for i := range got.Counts {
		//tsperrlint:ignore floatcmp the worker's chunk must be bit-identical to a local execution
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("count %d: got %v, want %v", i, got.Counts[i], want.Counts[i])
		}
	}

	if resp, raw = post(`{"benchmark":"chunkfix","scenarios":1,"trials":40,"seed":9,"chunk_size":16,"index":0}`, "model-B"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("fingerprint mismatch: %d %s, want 409", resp.StatusCode, raw)
	}
	if resp, raw = post(`{"benchmark":"nope","scenarios":1,"trials":40,"seed":9,"chunk_size":16,"index":0}`, "model-A"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown benchmark: %d %s, want 400", resp.StatusCode, raw)
	}
	if resp, raw = post(`{"benchmark":`, "model-A"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d %s, want 400", resp.StatusCode, raw)
	}
	if resp, raw = post(`{"benchmark":"chunkfix","scenarios":1,"trials":0,"seed":9,"chunk_size":16,"index":0}`, "model-A"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid trial budget: %d %s, want 400", resp.StatusCode, raw)
	}
}

func TestChunkEndpointAbsentWithoutSource(t *testing.T) {
	ctx := context.Background()
	cfg := Config{
		Analyze: func(ctx context.Context, b string, n int, o core.AnalyzeOpts) (*core.Report, error) {
			return fakeReport(b), nil
		},
	}
	_, ts := newTestServer(t, ctx, cfg)
	resp, err := http.Post(ts.URL+"/v1/cluster/chunk", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("worker endpoint on a non-worker node: %d, want 404", resp.StatusCode)
	}
}

func TestEstimateRejectsForeignFingerprint(t *testing.T) {
	ctx := context.Background()
	cfg := Config{
		Analyze: func(ctx context.Context, b string, n int, o core.AnalyzeOpts) (*core.Report, error) {
			return fakeReport(b), nil
		},
		Fingerprint: "model-A",
	}
	_, ts := newTestServer(t, ctx, cfg)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/estimate",
		strings.NewReader(`{"benchmark":"typeset"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.HeaderFingerprint, "model-B")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("foreign fingerprint: %d, want 409", resp.StatusCode)
	}
}

func TestMetricsRenderClusterSection(t *testing.T) {
	ctx := context.Background()
	fc := &fakeCluster{
		ready:   true,
		healthy: 1,
		quorum:  1,
		statuses: []cluster.PeerStatus{
			{Addr: "http://peer-1", Healthy: true},
			{Addr: "http://peer-2", Healthy: false},
		},
		stats: cluster.Stats{RemoteChunks: 3, StolenChunks: 1, ProxiedEstimates: 2},
	}
	cfg := Config{
		Analyze: func(ctx context.Context, b string, n int, o core.AnalyzeOpts) (*core.Report, error) {
			return fakeReport(b), nil
		},
		Cluster: fc,
	}
	_, ts := newTestServer(t, ctx, cfg)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"tsperrd_cluster_remote_chunks_total 3",
		"tsperrd_cluster_stolen_chunks_total 1",
		"tsperrd_cluster_proxied_estimates_total 2",
		"tsperrd_cluster_quorum 1",
		`tsperrd_peer_healthy{peer="http://peer-1"} 1`,
		`tsperrd_peer_healthy{peer="http://peer-2"} 0`,
		`tsperrd_requests_total{endpoint="readyz"}`,
		`tsperrd_requests_total{endpoint="cluster_chunk"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
