package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"tsperr/internal/cluster"
)

// metrics holds the service counters, exported in Prometheus text format at
// GET /metrics. Everything is stdlib: plain atomics for counters and a
// fixed-bucket histogram for request latency. Counters only ever increase;
// gauges (queue depth, in-flight computations, cache size) are sampled live
// at render time by the server.
type metrics struct {
	estimateRequests atomic.Uint64
	jobRequests      atomic.Uint64
	batchRequests    atomic.Uint64
	batchGetRequests atomic.Uint64
	healthRequests   atomic.Uint64
	readyRequests    atomic.Uint64
	metricsRequests  atomic.Uint64
	chunkRequests    atomic.Uint64

	computations  atomic.Uint64
	dedupJoins    atomic.Uint64
	cacheHits     atomic.Uint64
	queueRejects  atomic.Uint64
	clientCancels atomic.Uint64
	badRequests   atomic.Uint64
	failures      atomic.Uint64
	panics        atomic.Uint64
	// fingerprintRejects counts cluster requests refused because the caller's
	// model fingerprint disagrees with this node's.
	fingerprintRejects atomic.Uint64

	batchesStarted  atomic.Uint64
	batchesFinished atomic.Uint64

	// Operating-point search counters (POST /v1/oppoint). Sub-requests go
	// through the same join machinery as /v1/estimate, so their cache hits
	// here are the proof that bisection probes dedup instead of recomputing.
	oppointRequests            atomic.Uint64
	oppointSearches            atomic.Uint64
	oppointSubrequests         atomic.Uint64
	oppointSubrequestCacheHits atomic.Uint64
	oppointInfeasible          atomic.Uint64

	// surrogateMetrics are the fast-tier counters and the shadow-residual
	// histogram (surrogate.go); rendered only when a surrogate is attached.
	surrogateMetrics

	latency histogram
	// batchLatency measures whole-suite wall time, admission to last entry.
	batchLatency histogram
}

// latencyBounds are the histogram bucket upper bounds in seconds. The low
// end resolves warm cache hits (microseconds – milliseconds); the high end
// covers cold full-framework computations.
var latencyBounds = [...]float64{
	0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is a fixed-bucket cumulative latency histogram; the final
// implicit bucket is +Inf.
type histogram struct {
	buckets [len(latencyBounds) + 1]atomic.Uint64
	count   atomic.Uint64
	sumUS   atomic.Uint64 // sum in microseconds, so the atomic stays integral
}

// observe records one request duration.
func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latencyBounds) && s > latencyBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(uint64(d.Microseconds()))
}

// gauges are the point-in-time values the server samples under its mu just
// before rendering.
type gauges struct {
	queueDepth   int
	inflight     int
	cacheEntries int
	jobsStored   int
	// batchesStored counts retained batches; batchesRunning those with
	// entries still pending or in flight.
	batchesStored  int
	batchesRunning int
	// mcChunksInflight is the process-wide count of Monte Carlo chunks
	// currently executing (montecarlo.InFlightChunks).
	mcChunksInflight int64
	ready            bool
	uptime           time.Duration
	// cluster is the coordinator snapshot (nil on single-node daemons):
	// per-peer health plus the fan-out counters.
	cluster *clusterGauges
	// surrogate is the fast-tier snapshot (nil when the surrogate is off).
	surrogate *surrogateGauges
}

// clusterGauges is the coordinator state sampled at render time.
type clusterGauges struct {
	peers  []cluster.PeerStatus
	stats  cluster.Stats
	quorum int
}

// render writes the Prometheus text exposition. Order is fixed (no map
// iteration), so scrapes diff cleanly.
func (m *metrics) render(w io.Writer, g gauges) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	fmt.Fprintf(w, "# HELP tsperrd_requests_total HTTP requests by endpoint.\n# TYPE tsperrd_requests_total counter\n")
	fmt.Fprintf(w, "tsperrd_requests_total{endpoint=\"estimate\"} %d\n", m.estimateRequests.Load())
	fmt.Fprintf(w, "tsperrd_requests_total{endpoint=\"jobs\"} %d\n", m.jobRequests.Load())
	fmt.Fprintf(w, "tsperrd_requests_total{endpoint=\"batch\"} %d\n", m.batchRequests.Load())
	fmt.Fprintf(w, "tsperrd_requests_total{endpoint=\"batches\"} %d\n", m.batchGetRequests.Load())
	fmt.Fprintf(w, "tsperrd_requests_total{endpoint=\"healthz\"} %d\n", m.healthRequests.Load())
	fmt.Fprintf(w, "tsperrd_requests_total{endpoint=\"readyz\"} %d\n", m.readyRequests.Load())
	fmt.Fprintf(w, "tsperrd_requests_total{endpoint=\"metrics\"} %d\n", m.metricsRequests.Load())
	fmt.Fprintf(w, "tsperrd_requests_total{endpoint=\"cluster_chunk\"} %d\n", m.chunkRequests.Load())
	fmt.Fprintf(w, "tsperrd_requests_total{endpoint=\"oppoint\"} %d\n", m.oppointRequests.Load())

	counter("tsperrd_computations_total", "Estimations actually executed (after dedup and cache).", m.computations.Load())
	counter("tsperrd_dedup_joins_total", "Requests that joined an identical in-flight computation.", m.dedupJoins.Load())
	counter("tsperrd_cache_hits_total", "Requests served from the LRU result cache.", m.cacheHits.Load())
	counter("tsperrd_queue_rejects_total", "Requests rejected because the compute queue was full or draining.", m.queueRejects.Load())
	counter("tsperrd_client_cancels_total", "Waiters that left before their computation finished.", m.clientCancels.Load())
	counter("tsperrd_bad_requests_total", "Requests rejected by validation.", m.badRequests.Load())
	counter("tsperrd_failures_total", "Computations that finished with an error.", m.failures.Load())
	counter("tsperrd_panics_total", "Worker panics recovered by the compute queue.", m.panics.Load())
	counter("tsperrd_batches_started_total", "Batch suites admitted.", m.batchesStarted.Load())
	counter("tsperrd_batches_finished_total", "Batch suites whose every entry reached a terminal state.", m.batchesFinished.Load())
	counter("tsperrd_fingerprint_rejects_total", "Cluster requests refused for a model fingerprint mismatch.", m.fingerprintRejects.Load())
	counter("tsperrd_oppoint_searches_total", "Per-condition bisection searches run by /v1/oppoint.", m.oppointSearches.Load())
	counter("tsperrd_oppoint_subrequests_total", "Estimate sub-requests issued by oppoint bisections.", m.oppointSubrequests.Load())
	counter("tsperrd_oppoint_subrequest_cache_hits_total", "Oppoint sub-requests served from the LRU result cache.", m.oppointSubrequestCacheHits.Load())
	counter("tsperrd_oppoint_infeasible_total", "Oppoint conditions infeasible even at the minimum ratio.", m.oppointInfeasible.Load())

	gauge("tsperrd_queue_depth", "Jobs pending or running on the compute queue.", float64(g.queueDepth))
	gauge("tsperrd_inflight_computations", "Deduplicated computations currently in flight.", float64(g.inflight))
	gauge("tsperrd_cache_entries", "Reports held by the LRU result cache.", float64(g.cacheEntries))
	gauge("tsperrd_jobs_stored", "Async jobs currently retained.", float64(g.jobsStored))
	gauge("tsperrd_batches_stored", "Batches currently retained.", float64(g.batchesStored))
	gauge("tsperrd_batches_running", "Batches with entries still in flight.", float64(g.batchesRunning))
	gauge("tsperrd_mc_chunks_inflight", "Monte Carlo chunks executing right now.", float64(g.mcChunksInflight))
	ready := 0.0
	if g.ready {
		ready = 1.0
	}
	gauge("tsperrd_ready", "1 once the shared framework is warm.", ready)
	gauge("tsperrd_uptime_seconds", "Seconds since the server started.", g.uptime.Seconds())

	if c := g.cluster; c != nil {
		counter("tsperrd_cluster_remote_chunks_total", "Monte Carlo chunks executed by peers.", c.stats.RemoteChunks)
		counter("tsperrd_cluster_local_chunks_total", "Monte Carlo chunks executed locally under cluster fan-out.", c.stats.LocalChunks)
		counter("tsperrd_cluster_stolen_chunks_total", "Chunks re-queued after a peer failed them mid-run.", c.stats.StolenChunks)
		counter("tsperrd_cluster_hedged_chunks_total", "Chunks hedge-re-dispatched after exceeding the hedge deadline.", c.stats.HedgedChunks)
		counter("tsperrd_cluster_proxied_estimates_total", "Estimate requests answered by the owning peer.", c.stats.ProxiedEstimates)
		counter("tsperrd_cluster_proxy_fallbacks_total", "Routed estimates that fell back to local execution.", c.stats.ProxyFallbacks)
		counter("tsperrd_cluster_fingerprint_mismatches_total", "Peer responses rejected for a model fingerprint mismatch.", c.stats.FingerprintMismatches)
		gauge("tsperrd_cluster_quorum", "Healthy-peer quorum required for readiness.", float64(c.quorum))
		fmt.Fprintf(w, "# HELP tsperrd_peer_healthy Per-peer health (1 healthy, 0 not).\n# TYPE tsperrd_peer_healthy gauge\n")
		// c.peers arrives in configuration order (no map iteration), so
		// scrapes diff cleanly.
		for _, p := range c.peers {
			v := 0
			if p.Healthy {
				v = 1
			}
			fmt.Fprintf(w, "tsperrd_peer_healthy{peer=%q} %d\n", p.Addr, v)
		}
	}

	if sg := g.surrogate; sg != nil {
		counter("tsperrd_surrogate_hits_total", "Requests answered by the surrogate fast tier.", m.surrogateHits.Load())
		fmt.Fprintf(w, "# HELP tsperrd_surrogate_escalations_total Requests the confidence gate escalated to the exact tier, by reason.\n# TYPE tsperrd_surrogate_escalations_total counter\n")
		fmt.Fprintf(w, "tsperrd_surrogate_escalations_total{reason=\"untrained\"} %d\n", m.escUntrained.Load())
		fmt.Fprintf(w, "tsperrd_surrogate_escalations_total{reason=\"uncertain\"} %d\n", m.escUncertain.Load())
		fmt.Fprintf(w, "tsperrd_surrogate_escalations_total{reason=\"near_threshold\"} %d\n", m.escNearThreshold.Load())
		counter("tsperrd_surrogate_observations_total", "Exact results fed back as surrogate training data.", m.surrogateObservations.Load())
		counter("tsperrd_surrogate_trainings_total", "Surrogate (re)trainings completed, including a restored snapshot.", sg.stats.Trainings)
		serve := 0.0
		if sg.mode == SurrogateServe {
			serve = 1.0
		}
		gauge("tsperrd_surrogate_serving", "1 in serve mode, 0 in shadow mode.", serve)
		gauge("tsperrd_surrogate_model_version", "Version of the surrogate model currently answering.", float64(sg.stats.ModelVersion))
		gauge("tsperrd_surrogate_train_size", "Observations the current surrogate model was fitted on.", float64(sg.stats.TrainSize))
		gauge("tsperrd_surrogate_buffer_size", "Observations in the surrogate training buffer.", float64(sg.stats.Buffered))
		renderResidualHistogram(w, "tsperrd_surrogate_residual_log10",
			"Shadow-mode |predicted - actual| log10 error of the surrogate against exact results.", &m.surrogateResidual)
	}

	renderHistogram(w, "tsperrd_request_seconds", "Estimate-request latency.", &m.latency)
	renderHistogram(w, "tsperrd_batch_seconds", "Batch-suite latency, admission to last entry.", &m.batchLatency)
}

// renderHistogram writes one cumulative fixed-bucket histogram.
func renderHistogram(w io.Writer, name, help string, h *histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range latencyBounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	cum += h.buckets[len(latencyBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumUS.Load())/1e6)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}
