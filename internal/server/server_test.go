package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsperr/internal/core"
)

// fakeReport builds a minimal but marshalable report for a benchmark.
func fakeReport(name string) *core.Report {
	return &core.Report{
		Name:         name,
		Instructions: 1000,
		BasicBlocks:  3,
		Scenarios:    make([]core.Scenario, 2),
		Estimate:     &core.Estimate{LambdaMean: 5, LambdaStd: 1, TotalInsts: 1e5},
	}
}

// newTestServer builds a ready Server around analyze and serves it from an
// httptest server. Cleanup drains the server before closing the listener.
func newTestServer(t *testing.T, ctx context.Context, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetReady()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Abort()
	})
	return s, ts
}

// postEstimate posts one estimate request and decodes the response body.
func postEstimate(ctx context.Context, url, body string) (int, map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/estimate", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, m, nil
}

var metricLineRe = regexp.MustCompile(`^(\w+)(?:\{[^}]*\})? ([0-9eE.+-]+)$`)

// scrapeMetrics fetches /metrics and returns a name -> value map; labeled
// series accumulate under their bare name.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		m := metricLineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]] += v
	}
	return out
}

// The acceptance scenario: 16 concurrent identical requests must produce
// exactly one computation; the other 15 either join the in-flight
// computation or hit the result cache, and /metrics proves it.
func TestDedupSixteenConcurrentIdenticalRequests(t *testing.T) {
	var computations atomic.Int64
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		computations.Add(1)
		select {
		case <-time.After(150 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return fakeReport(benchmark), nil
	}
	_, ts := newTestServer(t, context.Background(), Config{Analyze: analyze, Workers: 4})

	const clients = 16
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"patricia","scenarios":3}`)
			if err != nil {
				errs[i] = err
				return
			}
			if code != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %v", code, body)
				return
			}
			rep, _ := body["report"].(map[string]any)
			if rep["name"] != "patricia" {
				errs[i] = fmt.Errorf("report name = %v", rep["name"])
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if got := computations.Load(); got != 1 {
		t.Errorf("analyze ran %d times, want exactly 1", got)
	}
	m := scrapeMetrics(t, ts.URL)
	if m["tsperrd_computations_total"] != 1 {
		t.Errorf("computations_total = %v, want 1", m["tsperrd_computations_total"])
	}
	if joins := m["tsperrd_dedup_joins_total"] + m["tsperrd_cache_hits_total"]; joins != clients-1 {
		t.Errorf("dedup joins + cache hits = %v, want %d", joins, clients-1)
	}
}

// A sequential identical request must come from the LRU, not a recompute.
func TestCacheHitServesRepeatRequest(t *testing.T) {
	var computations atomic.Int64
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		computations.Add(1)
		return fakeReport(benchmark), nil
	}
	_, ts := newTestServer(t, context.Background(), Config{Analyze: analyze})

	for i, wantCached := range []bool{false, true} {
		code, body, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"typeset"}`)
		if err != nil || code != http.StatusOK {
			t.Fatalf("request %d: code %d err %v", i, code, err)
		}
		if body["cached"] != wantCached {
			t.Errorf("request %d cached = %v, want %v", i, body["cached"], wantCached)
		}
	}
	if computations.Load() != 1 {
		t.Errorf("computations = %d, want 1", computations.Load())
	}
	// A different request key computes afresh.
	if _, _, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"typeset","scenarios":5}`); err != nil {
		t.Fatal(err)
	}
	if computations.Load() != 2 {
		t.Errorf("computations = %d after distinct request, want 2", computations.Load())
	}
}

// A client that disconnects mid-computation must cancel the pipeline's
// context when it was the only observer.
func TestClientCancellationPropagates(t *testing.T) {
	started := make(chan struct{})
	observed := make(chan error, 1)
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		close(started)
		<-ctx.Done()
		observed <- ctx.Err()
		return nil, ctx.Err()
	}
	_, ts := newTestServer(t, context.Background(), Config{Analyze: analyze})

	reqCtx, cancel := context.WithCancel(context.Background())
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		_, _, _ = postEstimate(reqCtx, ts.URL, `{"benchmark":"dijkstra"}`)
	}()
	<-started
	cancel()
	select {
	case err := <-observed:
		if err != context.Canceled {
			t.Errorf("pipeline ctx err = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client cancellation never reached the pipeline context")
	}
	<-clientDone
}

// With a second observer still attached, one client leaving must NOT cancel
// the shared computation.
func TestCancellationSparesSharedFlight(t *testing.T) {
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		started <- struct{}{}
		select {
		case <-release:
			return fakeReport(benchmark), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s, ts := newTestServer(t, context.Background(), Config{Analyze: analyze})

	reqCtx, cancelFirst := context.WithCancel(context.Background())
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		_, _, _ = postEstimate(reqCtx, ts.URL, `{"benchmark":"basicmath"}`)
	}()
	<-started

	// Second observer joins the same flight (poll the dedup counter to know
	// it has attached before the first client leaves).
	type result struct {
		code int
		body map[string]any
		err  error
	}
	secondDone := make(chan result, 1)
	go func() {
		code, body, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"basicmath"}`)
		secondDone <- result{code, body, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.met.dedupJoins.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second client never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}

	cancelFirst()
	<-firstDone
	close(release)
	got := <-secondDone
	if got.err != nil || got.code != http.StatusOK {
		t.Fatalf("surviving client: code %d err %v", got.code, got.err)
	}
	rep, _ := got.body["report"].(map[string]any)
	if rep["name"] != "basicmath" {
		t.Errorf("surviving client got report %v", rep["name"])
	}
}

// Graceful drain: Close must block until the in-flight request finishes,
// and that request must receive its real result.
func TestCloseDrainsInFlightRequest(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		close(started)
		<-release
		return fakeReport(benchmark), nil
	}
	s, ts := newTestServer(t, context.Background(), Config{Analyze: analyze})

	type result struct {
		code int
		body map[string]any
		err  error
	}
	reqDone := make(chan result, 1)
	go func() {
		code, body, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"typeset"}`)
		reqDone <- result{code, body, err}
	}()
	<-started

	closeDone := make(chan struct{})
	go func() {
		s.Close()
		close(closeDone)
	}()
	select {
	case <-closeDone:
		t.Fatal("Close returned while a computation was still in flight")
	case <-time.After(50 * time.Millisecond):
	}

	// New work is rejected while draining.
	code, _, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"dijkstra"}`)
	if err != nil || code != http.StatusServiceUnavailable {
		t.Errorf("request during drain: code %d err %v, want 503", code, err)
	}

	close(release)
	got := <-reqDone
	if got.err != nil || got.code != http.StatusOK {
		t.Fatalf("drained request: code %d err %v", got.code, got.err)
	}
	rep, _ := got.body["report"].(map[string]any)
	if rep["name"] != "typeset" {
		t.Errorf("drained request got report %v", rep["name"])
	}
	select {
	case <-closeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the drain")
	}
}

// A full compute queue pushes back with 503 instead of queueing unbounded.
func TestQueueBackpressure(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		started <- struct{}{}
		select {
		case <-release:
			return fakeReport(benchmark), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	defer close(release)
	s, ts := newTestServer(t, context.Background(), Config{Analyze: analyze, Workers: 1, QueueDepth: 1})

	go func() { _, _, _ = postEstimate(context.Background(), ts.URL, `{"benchmark":"a1"}`) }()
	<-started // worker busy; backlog empty

	// Occupies the single backlog slot; poll the queue until it lands there
	// (the worker is blocked, so this request cannot start running).
	go func() { _, _, _ = postEstimate(context.Background(), ts.URL, `{"benchmark":"a2"}`) }()
	deadline := time.Now().Add(5 * time.Second)
	for s.queue.Depth() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the backlog")
		}
		time.Sleep(time.Millisecond)
	}

	code, body, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"a3"}`)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("full-queue request: code %d body %v, want 503", code, body)
	}
	m := scrapeMetrics(t, ts.URL)
	if m["tsperrd_queue_rejects_total"] == 0 {
		t.Error("queue_rejects_total should be nonzero")
	}
}

// Async mode: 202 with a job id, pending until the computation lands, then
// the stored report is served from GET /v1/jobs/{id}.
func TestAsyncJobLifecycle(t *testing.T) {
	release := make(chan struct{})
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		<-release
		return fakeReport(benchmark), nil
	}
	_, ts := newTestServer(t, context.Background(), Config{Analyze: analyze})

	code, body, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"tiff2bw","async":true}`)
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("async submit: code %d err %v", code, err)
	}
	id, _ := body["job_id"].(string)
	if id == "" {
		t.Fatalf("missing job_id in %v", body)
	}
	if body["status"] != "pending" {
		t.Errorf("fresh job status = %v", body["status"])
	}

	getJob := func() (int, map[string]any) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}
	if code, m := getJob(); code != http.StatusOK || m["status"] != "pending" {
		t.Fatalf("pending poll: code %d body %v", code, m)
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, m := getJob()
		if code != http.StatusOK {
			t.Fatalf("poll code %d", code)
		}
		if m["status"] == "done" {
			rep, _ := m["report"].(map[string]any)
			if rep["name"] != "tiff2bw" {
				t.Errorf("job report = %v", rep["name"])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never completed: %v", m)
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/job-doesnotexist0000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: code %d, want 404", resp.StatusCode)
	}
}

// Validation failures are client errors with explanatory bodies, counted in
// the bad-request metric; unknown fields are rejected.
func TestRequestValidation(t *testing.T) {
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		return fakeReport(benchmark), nil
	}
	lookup := func(name string) error {
		if name != "known" {
			return fmt.Errorf("no benchmark %q", name)
		}
		return nil
	}
	_, ts := newTestServer(t, context.Background(), Config{
		Analyze: analyze,
		Limits:  Limits{MaxScenarios: 8, Lookup: lookup},
	})

	cases := []struct {
		name, body, wantFrag string
	}{
		{"missing benchmark", `{}`, "benchmark is required"},
		{"unknown benchmark", `{"benchmark":"nonesuch"}`, "unknown benchmark"},
		{"oversized scenarios", `{"benchmark":"known","scenarios":9}`, "out of range"},
		{"negative retries", `{"benchmark":"known","retries":-1}`, "out of range"},
		{"min_scenarios above scenarios", `{"benchmark":"known","scenarios":2,"min_scenarios":3}`, "out of range"},
		{"unknown field", `{"benchmark":"known","scenarioz":2}`, "scenarioz"},
		{"malformed body", `{`, "invalid request body"},
	}
	for _, tc := range cases {
		code, body, err := postEstimate(context.Background(), ts.URL, tc.body)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", tc.name, code)
		}
		msg, _ := body["error"].(string)
		if !strings.Contains(msg, tc.wantFrag) {
			t.Errorf("%s: error %q missing %q", tc.name, msg, tc.wantFrag)
		}
	}
	if code, _, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"known","scenarios":2}`); err != nil || code != http.StatusOK {
		t.Errorf("valid request: code %d err %v", code, err)
	}
	m := scrapeMetrics(t, ts.URL)
	if got := int(m["tsperrd_bad_requests_total"]); got != len(cases) {
		t.Errorf("bad_requests_total = %d, want %d", got, len(cases))
	}
}

// Before SetReady, estimates and health checks advertise the warm-up.
func TestWarmingGate(t *testing.T) {
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		return fakeReport(benchmark), nil
	}
	s, err := New(context.Background(), Config{Analyze: analyze})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Abort() })

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("warming healthz code %d, want 503", resp.StatusCode)
	}
	code, _, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"x"}`)
	if err != nil || code != http.StatusServiceUnavailable {
		t.Errorf("warming estimate code %d err %v, want 503", code, err)
	}

	s.SetReady()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h["status"] != "ok" {
		t.Errorf("ready healthz = %d %v", resp.StatusCode, h)
	}
}

// A panicking analyze must not kill the daemon: the waiter gets an error
// response and the panic is counted.
func TestAnalyzePanicIsContained(t *testing.T) {
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		panic("pipeline bug")
	}
	_, ts := newTestServer(t, context.Background(), Config{Analyze: analyze})

	code, body, err := postEstimate(context.Background(), ts.URL, `{"benchmark":"typeset"}`)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusInternalServerError {
		t.Errorf("panicking request: code %d body %v, want 500", code, body)
	}
	msg, _ := body["error"].(string)
	if !strings.Contains(msg, "panic in analyze") {
		t.Errorf("panicking request error = %q", msg)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := scrapeMetrics(t, ts.URL)
		if m["tsperrd_panics_total"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("panic never surfaced in metrics")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The server still serves.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic: %d", resp.StatusCode)
	}
}
