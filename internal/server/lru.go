package server

import (
	"container/list"

	"tsperr/internal/core"
)

// lru is a fixed-capacity least-recently-used result cache mapping request
// keys to completed reports. It is not goroutine-safe: the server accesses
// it only under its mu, in the same critical sections that manage the
// flight table, so a cache fill and its flight retirement are atomic.
type lru struct {
	capacity int
	order    *list.List // front = most recently used
	items    map[string]*list.Element
}

// lruEntry is one cached result.
type lruEntry struct {
	key string
	rep *core.Report
}

func newLRU(capacity int) *lru {
	return &lru{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the cached report for key, marking it most recently used.
func (c *lru) get(key string) (*core.Report, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).rep, true
}

// add inserts or refreshes key, evicting the least recently used entry when
// over capacity.
func (c *lru) add(key string, rep *core.Report) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).rep = rep
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, rep: rep})
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len reports the number of cached results (the /metrics gauge).
func (c *lru) len() int { return c.order.Len() }
