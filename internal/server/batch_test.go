package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsperr/internal/core"
)

// postBatch posts one batch request and decodes the response body.
func postBatch(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, m
}

// getBatch polls GET /v1/batches/{id}.
func getBatch(t *testing.T, url, id string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url + "/v1/batches/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, m
}

// waitBatchStatus polls until the batch reaches want ("done") or the deadline
// trips, returning the final body.
func waitBatchStatus(t *testing.T, url, id, want string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, m := getBatch(t, url, id)
		if code != http.StatusOK {
			t.Fatalf("poll code %d: %v", code, m)
		}
		if m["status"] == want {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch never reached %q: %v", want, m)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// entries unpacks the scenarios array of a batch response.
func entries(t *testing.T, m map[string]any) []map[string]any {
	t.Helper()
	raw, ok := m["scenarios"].([]any)
	if !ok {
		t.Fatalf("no scenarios array in %v", m)
	}
	out := make([]map[string]any, len(raw))
	for i, e := range raw {
		out[i], _ = e.(map[string]any)
	}
	return out
}

// The full lifecycle: a mixed suite is accepted with 202, results appear
// incrementally as entries land, and the final document carries per-entry
// reports.
func TestBatchLifecycleIncrementalResults(t *testing.T) {
	// Per-benchmark release gates let the test land entries one at a time.
	gates := map[string]chan struct{}{
		"basicmath": make(chan struct{}),
		"dijkstra":  make(chan struct{}),
	}
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		select {
		case <-gates[benchmark]:
			return fakeReport(benchmark), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	_, ts := newTestServer(t, context.Background(), Config{Analyze: analyze, Workers: 4})

	code, body := postBatch(t, ts.URL, `{"scenarios":[
		{"benchmark":"basicmath"},
		{"benchmark":"dijkstra","scenarios":3,"mc_trials":500}
	]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id, _ := body["batch_id"].(string)
	if id == "" || body["poll"] != "/v1/batches/"+id {
		t.Fatalf("bad acceptance body %v", body)
	}
	if body["scenarios"] != float64(2) {
		t.Errorf("acknowledged scenarios = %v, want 2", body["scenarios"])
	}

	// Land the first entry only; the poll must show its report while the
	// second entry is still running — that is the incremental contract.
	close(gates["basicmath"])
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, m := getBatch(t, ts.URL, id)
		es := entries(t, m)
		if es[0]["status"] == "done" {
			if m["status"] != "running" {
				t.Errorf("batch status = %v with one entry pending, want running", m["status"])
			}
			rep, _ := es[0]["report"].(map[string]any)
			if rep["name"] != "basicmath" {
				t.Errorf("early entry report = %v", rep["name"])
			}
			if es[1]["status"] == "done" {
				t.Errorf("gated entry completed early: %v", es[1])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first entry never landed: %v", m)
		}
		time.Sleep(2 * time.Millisecond)
	}

	close(gates["dijkstra"])
	final := waitBatchStatus(t, ts.URL, id, "done")
	if final["done"] != float64(2) || final["failed"] != float64(0) || final["pending"] != float64(0) {
		t.Fatalf("final tallies: %v", final)
	}
	for i, e := range entries(t, final) {
		if e["status"] != "done" {
			t.Errorf("entry %d status = %v", i, e["status"])
		}
		if e["key"] == "" {
			t.Errorf("entry %d missing key", i)
		}
	}

	m := scrapeMetrics(t, ts.URL)
	if m["tsperrd_batches_started_total"] != 1 || m["tsperrd_batches_finished_total"] != 1 {
		t.Errorf("batch counters: started %v finished %v, want 1/1",
			m["tsperrd_batches_started_total"], m["tsperrd_batches_finished_total"])
	}
	if m["tsperrd_batch_seconds_count"] != 1 {
		t.Errorf("batch_seconds_count = %v, want 1", m["tsperrd_batch_seconds_count"])
	}
}

// The acceptance criterion: a batch of N identical scenarios performs exactly
// one computation, pinned via /metrics.
func TestBatchDedupIdenticalScenarios(t *testing.T) {
	var computations atomic.Int64
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		computations.Add(1)
		select {
		case <-time.After(50 * time.Millisecond):
			return fakeReport(benchmark), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	_, ts := newTestServer(t, context.Background(), Config{Analyze: analyze, Workers: 4})

	const n = 6
	entry := `{"benchmark":"patricia","scenarios":2}`
	doc := `{"scenarios":[` + strings.Repeat(entry+",", n-1) + entry + `]}`
	code, body := postBatch(t, ts.URL, doc)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id, _ := body["batch_id"].(string)
	final := waitBatchStatus(t, ts.URL, id, "done")

	if got := computations.Load(); got != 1 {
		t.Errorf("analyze ran %d times for %d identical entries, want exactly 1", got, n)
	}
	m := scrapeMetrics(t, ts.URL)
	if m["tsperrd_computations_total"] != 1 {
		t.Errorf("computations_total = %v, want 1", m["tsperrd_computations_total"])
	}

	es := entries(t, final)
	key0, _ := es[0]["key"].(string)
	for i, e := range es {
		if e["status"] != "done" {
			t.Fatalf("entry %d status = %v", i, e["status"])
		}
		if e["key"] != key0 {
			t.Errorf("entry %d key diverges from entry 0", i)
		}
		rep, _ := e["report"].(map[string]any)
		if rep["name"] != "patricia" {
			t.Errorf("entry %d report = %v", i, rep["name"])
		}
		// Every entry after the first shared the head computation, either by
		// joining its flight or by hitting the cache it filled.
		if i > 0 && e["dedup"] != true && e["cached"] != true {
			t.Errorf("entry %d neither dedup nor cached: %v", i, e)
		}
	}
}

// A failing entry must not poison the rest of the suite.
func TestBatchPartialFailure(t *testing.T) {
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		if benchmark == "tiff2bw" {
			return nil, fmt.Errorf("scenario blew up")
		}
		return fakeReport(benchmark), nil
	}
	_, ts := newTestServer(t, context.Background(), Config{Analyze: analyze, Workers: 2})

	code, body := postBatch(t, ts.URL, `{"scenarios":[
		{"benchmark":"typeset"},
		{"benchmark":"tiff2bw"},
		{"benchmark":"stringsearch"}
	]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id, _ := body["batch_id"].(string)
	final := waitBatchStatus(t, ts.URL, id, "done")
	if final["done"] != float64(2) || final["failed"] != float64(1) {
		t.Fatalf("tallies: %v", final)
	}
	es := entries(t, final)
	if es[1]["status"] != "failed" || !strings.Contains(es[1]["error"].(string), "blew up") {
		t.Errorf("failed entry: %v", es[1])
	}
	for _, i := range []int{0, 2} {
		if es[i]["status"] != "done" {
			t.Errorf("entry %d should have survived: %v", i, es[i])
		}
	}
}

// Batch admission is atomic: any invalid entry rejects the whole suite with
// 400 before anything is queued.
func TestBatchValidation(t *testing.T) {
	var computations atomic.Int64
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		computations.Add(1)
		return fakeReport(benchmark), nil
	}
	_, ts := newTestServer(t, context.Background(), Config{Analyze: analyze, MaxBatch: 3})

	cases := []struct {
		name, body, wantFrag string
	}{
		{"empty suite", `{"scenarios":[]}`, "no scenarios"},
		{"missing scenarios", `{}`, "no scenarios"},
		{"oversized suite", `{"scenarios":[{"benchmark":"a"},{"benchmark":"b"},{"benchmark":"c"},{"benchmark":"d"}]}`, "exceeds limit"},
		{"async entry", `{"scenarios":[{"benchmark":"a","async":true}]}`, "async"},
		{"invalid entry", `{"scenarios":[{"benchmark":"a"},{"benchmark":"b","retries":-1}]}`, "scenario 1"},
		{"unknown field", `{"scenarios":[{"benchmark":"a","bogus":1}]}`, "invalid request body"},
		{"malformed", `{"scenarios":`, "invalid request body"},
	}
	for _, tc := range cases {
		code, body := postBatch(t, ts.URL, tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: code %d body %v, want 400", tc.name, code, body)
		}
		msg, _ := body["error"].(string)
		if !strings.Contains(msg, tc.wantFrag) {
			t.Errorf("%s: error %q missing %q", tc.name, msg, tc.wantFrag)
		}
	}
	if computations.Load() != 0 {
		t.Errorf("rejected batches still computed %d times", computations.Load())
	}

	code, body := getBatch(t, ts.URL, "batch-doesnotexist00")
	if code != http.StatusNotFound {
		t.Errorf("unknown batch: code %d body %v, want 404", code, body)
	}

	m := scrapeMetrics(t, ts.URL)
	if got := int(m["tsperrd_bad_requests_total"]); got != len(cases) {
		t.Errorf("bad_requests_total = %d, want %d", got, len(cases))
	}
}

// Drain semantics: entries admitted before Close run to completion; entries
// the pacer has not yet admitted become "rejected", and the batch still
// reaches a terminal state.
func TestBatchDrainRejectsUnadmittedEntries(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		started <- struct{}{}
		select {
		case <-release:
			return fakeReport(benchmark), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s, ts := newTestServer(t, context.Background(), Config{Analyze: analyze, Workers: 1, QueueDepth: 1})

	// Three distinct entries against a 1-worker/1-slot queue: the first runs,
	// the second sits in the backlog, the third is stuck in the pacer's
	// capacity-poll loop.
	code, body := postBatch(t, ts.URL, `{"scenarios":[
		{"benchmark":"basicmath"},
		{"benchmark":"dijkstra"},
		{"benchmark":"typeset"}
	]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id, _ := body["batch_id"].(string)
	<-started // worker busy on entry 0
	deadline := time.Now().Add(5 * time.Second)
	for s.queue.Depth() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second entry never reached the backlog")
		}
		time.Sleep(time.Millisecond)
	}

	// Drain. Close blocks until the queue empties, so release the gate once
	// the drain has begun.
	closeDone := make(chan struct{})
	go func() { s.Close(); close(closeDone) }()
	deadline = time.Now().Add(5 * time.Second)
	for !s.draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-closeDone

	final := waitBatchStatus(t, ts.URL, id, "done")
	es := entries(t, final)
	for _, i := range []int{0, 1} {
		if es[i]["status"] != "done" {
			t.Errorf("admitted entry %d = %v, want done (drain must finish it)", i, es[i]["status"])
		}
	}
	if es[2]["status"] != "rejected" || !strings.Contains(es[2]["error"].(string), "draining") {
		t.Errorf("unadmitted entry = %v, want rejected/draining", es[2])
	}
	if final["failed"] != float64(1) || final["done"] != float64(2) {
		t.Errorf("tallies: %v", final)
	}
}

// Backpressure inheritance: a suite wider than the whole queue still
// completes — the pacer waits for capacity instead of 503ing the tail.
func TestBatchWiderThanQueueCompletes(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]bool{}
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		mu.Lock()
		seen[benchmark] = true
		mu.Unlock()
		select {
		case <-time.After(5 * time.Millisecond):
			return fakeReport(benchmark), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	_, ts := newTestServer(t, context.Background(), Config{Analyze: analyze, Workers: 1, QueueDepth: 1})

	names := []string{"basicmath", "bitcount", "dijkstra", "patricia", "typeset", "stringsearch"}
	var sb strings.Builder
	sb.WriteString(`{"scenarios":[`)
	for i, n := range names {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"benchmark":%q}`, n)
	}
	sb.WriteString(`]}`)

	code, body := postBatch(t, ts.URL, sb.String())
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id, _ := body["batch_id"].(string)
	final := waitBatchStatus(t, ts.URL, id, "done")
	if final["done"] != float64(len(names)) {
		t.Fatalf("done = %v, want %d: %v", final["done"], len(names), final)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(names) {
		t.Errorf("computed %d distinct benchmarks, want %d", len(seen), len(names))
	}
}

// Batches are rejected before the model is warm, like single estimates.
func TestBatchWarmingGate(t *testing.T) {
	analyze := func(ctx context.Context, benchmark string, scenarios int, opts core.AnalyzeOpts) (*core.Report, error) {
		return fakeReport(benchmark), nil
	}
	s, err := New(context.Background(), Config{Analyze: analyze})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Abort() })
	code, body := postBatch(t, ts.URL, `{"scenarios":[{"benchmark":"typeset"}]}`)
	if code != http.StatusServiceUnavailable {
		t.Errorf("warming batch: code %d body %v, want 503", code, body)
	}
}
