// Package faultinject provides deterministic fault injection for the
// estimation pipeline. Tests arm an Injector with rules bound to pipeline
// hook points (scenario setup, simulation, marginal computation) and hand
// its hook to core.AnalyzeOpts; the run layer then observes reproducible
// failures — returned errors, panics, or delays — without any randomness
// leaking into production code paths. Probabilistic rules draw from a seeded
// RNG so even "random" fault storms replay identically.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"tsperr/internal/numeric"
)

// ErrInjected is the base cause of every injected (non-panic) failure;
// retry layers treat it like any other transient error.
var ErrInjected = errors.New("faultinject: injected fault")

// Point names a pipeline hook location. The values mirror core.Phase so a
// rule's Point can be compared directly against the phase tag of the
// resulting ScenarioError.
type Point string

const (
	// Setup fires inside per-scenario machine seeding.
	Setup Point = "setup"
	// Simulation fires before the instrumented program run.
	Simulation Point = "simulation"
	// Marginals fires before the per-scenario marginal solve.
	Marginals Point = "marginals"

	// NetRequest fires in the cluster transport before a request leaves the
	// process; NetResponse fires after the response arrives. For both, the
	// rule's Scenario field selects a Monte Carlo chunk index (carried in the
	// request's chunk header; -1 matches every request).
	NetRequest  Point = "net_request"
	NetResponse Point = "net_response"
)

// Mode selects what an armed rule does when it fires.
type Mode int

const (
	// Fail returns an error wrapping ErrInjected (or Rule.Err).
	Fail Mode = iota
	// Panic panics with a PanicValue, exercising worker-pool recovery.
	Panic
	// Delay sleeps for Rule.Delay (context-aware), then proceeds normally;
	// used to hold scenarios in flight while a test cancels the run.
	Delay
	// Truncate, on a NetResponse rule, lets the request complete and then
	// cuts the response body in half — the partial-response fault a worker
	// dying mid-write produces. Only the network Transport interprets it;
	// pipeline hook points treat it as a no-op.
	Truncate
)

func (m Mode) String() string {
	switch m {
	case Fail:
		return "fail"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Truncate:
		return "truncate"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Rule arms one fault at one hook point.
type Rule struct {
	// Point is the hook location the rule listens on.
	Point Point
	// Scenario restricts the rule to one scenario index; -1 matches all.
	Scenario int
	// Mode is the injected behavior.
	Mode Mode
	// Times bounds how often the rule fires before disarming; 0 = always.
	// Times: 1 yields the classic fail-once transient that a retry absorbs.
	Times int
	// Prob, when in (0, 1), fires the rule only with this probability per
	// matching call, drawn from the Injector's seeded RNG; 0 means always.
	Prob float64
	// Delay is the injected latency for Mode Delay.
	Delay time.Duration
	// Err overrides the returned error for Mode Fail.
	Err error
}

// FailOnce returns a transient rule: the first matching call errors, every
// later one succeeds (the canonical retryable fault).
func FailOnce(p Point, scenario int) Rule {
	return Rule{Point: p, Scenario: scenario, Mode: Fail, Times: 1}
}

// FailAlways returns a permanent failure rule.
func FailAlways(p Point, scenario int) Rule {
	return Rule{Point: p, Scenario: scenario, Mode: Fail}
}

// PanicOnce returns a rule whose first matching call panics.
func PanicOnce(p Point, scenario int) Rule {
	return Rule{Point: p, Scenario: scenario, Mode: Panic, Times: 1}
}

// DelayEach returns a rule that delays every matching call by d.
func DelayEach(p Point, scenario int, d time.Duration) Rule {
	return Rule{Point: p, Scenario: scenario, Mode: Delay, Delay: d}
}

// PanicValue is the value an armed Panic rule panics with.
type PanicValue struct {
	Point    Point
	Scenario int
}

func (v PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s scenario %d", v.Point, v.Scenario)
}

// Injector evaluates rules at hook points. It is safe for concurrent use by
// the worker pool.
type Injector struct {
	mu sync.Mutex
	// rng drives probabilistic rules; guarded by mu.
	rng *numeric.RNG
	// fired counts firings per rule index; guarded by mu.
	fired map[int]int
	// calls counts hook evaluations per point; guarded by mu.
	calls map[Point]int
	// rules is the armed rule set; guarded by mu.
	rules []Rule
}

// New arms an injector. The seed only matters for rules with Prob set; any
// fixed seed makes the whole fault schedule deterministic.
func New(seed uint64, rules ...Rule) *Injector {
	return &Injector{
		rng:   numeric.NewRNG(seed),
		rules: rules,
		fired: map[int]int{},
		calls: map[Point]int{},
	}
}

// Match performs the rule-firing bookkeeping for a hook point — first armed
// rule wins, Times budgets and Prob draws consumed — and returns the fired
// rule without executing its behavior. Fire is Match plus the standard
// fail/panic/delay semantics; injection sites with richer behaviors (the
// network Transport's truncation) call Match and act themselves.
func (in *Injector) Match(p Point, scenario int) (Rule, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls[p]++
	for i := range in.rules {
		r := &in.rules[i]
		if r.Point != p || (r.Scenario != -1 && r.Scenario != scenario) {
			continue
		}
		if r.Times > 0 && in.fired[i] >= r.Times {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.rng.Float64() >= r.Prob {
			continue
		}
		in.fired[i]++
		return *r, true
	}
	return Rule{}, false
}

// Fire evaluates the hook point for a scenario: it returns an injected
// error, panics, or delays according to the first matching armed rule, and
// returns nil when nothing fires. Delay respects ctx and surfaces ctx.Err()
// if cancelled mid-sleep.
func (in *Injector) Fire(ctx context.Context, p Point, scenario int) error {
	r, ok := in.Match(p, scenario)
	if !ok {
		return nil
	}
	hit := &r
	switch hit.Mode {
	case Fail:
		if hit.Err != nil {
			return fmt.Errorf("%w at %s scenario %d: %w", ErrInjected, p, scenario, hit.Err)
		}
		return fmt.Errorf("%w at %s scenario %d", ErrInjected, p, scenario)
	case Panic:
		panic(PanicValue{Point: p, Scenario: scenario})
	case Delay:
		if ctx == nil {
			ctx = context.Background()
		}
		t := time.NewTimer(hit.Delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Calls reports how many times a hook point was evaluated (fired or not),
// letting tests assert retry counts and early-abort behavior.
func (in *Injector) Calls(p Point) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[p]
}

// Fired reports the total firings across all rules at a point.
func (in *Injector) Fired(p Point) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for i, r := range in.rules {
		if r.Point == p {
			n += in.fired[i]
		}
	}
	return n
}
