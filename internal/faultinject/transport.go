package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// chunkHeader mirrors cluster.HeaderChunk without importing the cluster
// package (faultinject sits below it in the dependency order).
const chunkHeader = "X-Tsperrd-Chunk"

// Transport wraps an http.RoundTripper with deterministic network faults for
// cluster chaos tests: injected latency, connection resets (before the
// request or after the response), and partial responses. Rules target the
// NetRequest and NetResponse points; the Scenario slot selects a Monte Carlo
// chunk index via the request's chunk header (requests without one — probes,
// proxied estimates — match only Scenario == -1 rules).
type Transport struct {
	// Base performs the real round trip (nil selects
	// http.DefaultTransport).
	Base http.RoundTripper
	// Injector holds the armed fault rules (nil disables injection).
	Injector *Injector
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if t.Injector == nil {
		return base.RoundTrip(req)
	}
	scenario := -2 // matches only Scenario == -1 (wildcard) rules
	if h := req.Header.Get(chunkHeader); h != "" {
		if v, err := strconv.Atoi(h); err == nil {
			scenario = v
		}
	}
	if r, ok := t.Injector.Match(NetRequest, scenario); ok {
		switch r.Mode {
		case Fail:
			return nil, fmt.Errorf("%w: connection reset before %s %s", ErrInjected, req.Method, req.URL.Path)
		case Panic:
			panic(PanicValue{Point: NetRequest, Scenario: scenario})
		case Delay:
			if err := sleepCtx(req, r.Delay); err != nil {
				return nil, err
			}
		}
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if r, ok := t.Injector.Match(NetResponse, scenario); ok {
		switch r.Mode {
		case Fail:
			resp.Body.Close()
			return nil, fmt.Errorf("%w: connection reset during response of %s %s", ErrInjected, req.Method, req.URL.Path)
		case Panic:
			resp.Body.Close()
			panic(PanicValue{Point: NetResponse, Scenario: scenario})
		case Delay:
			if err := sleepCtx(req, r.Delay); err != nil {
				resp.Body.Close()
				return nil, err
			}
		case Truncate:
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				return nil, rerr
			}
			resp.Body = io.NopCloser(bytes.NewReader(body[:len(body)/2]))
			resp.ContentLength = int64(len(body) / 2)
		}
	}
	return resp, nil
}

// sleepCtx delays a round trip, honoring the request's context.
func sleepCtx(req *http.Request, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-req.Context().Done():
		return req.Context().Err()
	}
}
