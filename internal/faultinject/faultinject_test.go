package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFailOnceDisarms(t *testing.T) {
	in := New(1, FailOnce(Setup, 0))
	if err := in.Fire(context.Background(), Setup, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("first call: %v", err)
	}
	if err := in.Fire(context.Background(), Setup, 0); err != nil {
		t.Fatalf("rule should disarm after one firing: %v", err)
	}
	if in.Calls(Setup) != 2 || in.Fired(Setup) != 1 {
		t.Errorf("calls=%d fired=%d", in.Calls(Setup), in.Fired(Setup))
	}
}

func TestRuleMatchesPointAndScenario(t *testing.T) {
	in := New(1, FailAlways(Simulation, 2))
	if err := in.Fire(context.Background(), Setup, 2); err != nil {
		t.Errorf("wrong point fired: %v", err)
	}
	if err := in.Fire(context.Background(), Simulation, 1); err != nil {
		t.Errorf("wrong scenario fired: %v", err)
	}
	if err := in.Fire(context.Background(), Simulation, 2); !errors.Is(err, ErrInjected) {
		t.Errorf("matching call: %v", err)
	}
}

func TestWildcardScenario(t *testing.T) {
	in := New(1, FailAlways(Marginals, -1))
	for s := 0; s < 3; s++ {
		if err := in.Fire(context.Background(), Marginals, s); !errors.Is(err, ErrInjected) {
			t.Errorf("scenario %d: %v", s, err)
		}
	}
}

func TestCustomError(t *testing.T) {
	custom := errors.New("disk on fire")
	in := New(1, Rule{Point: Setup, Scenario: -1, Mode: Fail, Err: custom})
	err := in.Fire(context.Background(), Setup, 0)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, custom) {
		t.Errorf("custom cause lost: %v", err)
	}
}

func TestPanicOnceCarriesValue(t *testing.T) {
	in := New(1, PanicOnce(Simulation, 3))
	func() {
		defer func() {
			v, ok := recover().(PanicValue)
			if !ok || v.Point != Simulation || v.Scenario != 3 {
				t.Errorf("panic value = %v", v)
			}
		}()
		in.Fire(context.Background(), Simulation, 3)
	}()
	if err := in.Fire(context.Background(), Simulation, 3); err != nil {
		t.Errorf("panic rule should disarm: %v", err)
	}
}

func TestDelayHonorsContext(t *testing.T) {
	in := New(1, DelayEach(Simulation, -1, 30*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.Fire(ctx, Simulation, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cancelled delay: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("delay ignored cancellation")
	}
}

func TestDelayElapses(t *testing.T) {
	in := New(1, DelayEach(Setup, -1, time.Millisecond))
	if err := in.Fire(context.Background(), Setup, 0); err != nil {
		t.Errorf("elapsed delay should succeed: %v", err)
	}
}

// Probabilistic rules replay identically for a fixed seed.
func TestProbDeterministic(t *testing.T) {
	schedule := func() []bool {
		in := New(42, Rule{Point: Setup, Scenario: -1, Mode: Fail, Prob: 0.5})
		out := make([]bool, 32)
		for i := range out {
			out[i] = in.Fire(context.Background(), Setup, 0) != nil
		}
		return out
	}
	a, b := schedule(), schedule()
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at call %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Errorf("prob 0.5 fired %d/%d times", fires, len(a))
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	custom := errors.New("first")
	in := New(1,
		Rule{Point: Setup, Scenario: 0, Mode: Fail, Times: 1, Err: custom},
		FailAlways(Setup, -1),
	)
	if err := in.Fire(context.Background(), Setup, 0); !errors.Is(err, custom) {
		t.Errorf("first rule should win: %v", err)
	}
	// After the first disarms, the wildcard takes over.
	if err := in.Fire(context.Background(), Setup, 0); errors.Is(err, custom) || !errors.Is(err, ErrInjected) {
		t.Errorf("fallthrough to second rule: %v", err)
	}
}
