package sta

import (
	"math"

	"tsperr/internal/cell"
	"tsperr/internal/netlist"
	"tsperr/internal/variation"
)

// Block-based SSTA: propagate canonical arrival-time forms through the
// netlist in topological order, merging reconvergent fanin with Clark's max
// operator. This is the sign-off style analysis a tool like PrimeTime runs
// (one pass, no path enumeration); the path-based machinery elsewhere in
// this package exists because Algorithm 1 needs per-path activation tests,
// but both views must agree on the design's overall timing, which the tests
// assert.

// ArrivalSSTA returns the canonical arrival form at every gate's output
// (clock-to-Q included at sources) and a validity mask (false for gates with
// no driven arrival, e.g. floating inputs).
func (e *Engine) ArrivalSSTA() ([]variation.Canon, []bool) {
	gates := e.N.Gates()
	arr := make([]variation.Canon, len(gates))
	valid := make([]bool, len(gates))
	for _, id := range e.topo {
		g := &gates[id]
		if g.Kind.IsSource() {
			arr[id] = e.delays[id]
			valid[id] = true
			continue
		}
		have := false
		var acc variation.Canon
		for _, f := range g.Fanin {
			if !valid[f] {
				continue
			}
			if !have {
				acc = arr[f]
				have = true
			} else {
				acc = acc.Max(arr[f])
			}
		}
		if !have {
			continue
		}
		arr[id] = acc.Add(e.delays[id])
		valid[id] = true
	}
	return arr, valid
}

// SignOffDelay returns the p-th percentile of the design's statistical
// maximum delay (including setup) computed by block-based SSTA: the Clark
// max over every endpoint's data-pin arrival.
func (e *Engine) SignOffDelay(p float64) float64 {
	arr, valid := e.ArrivalSSTA()
	var worst variation.Canon
	found := false
	for s := 0; s < e.N.Stages; s++ {
		for _, ep := range e.N.Endpoints(s) {
			d := e.N.Gate(ep).Fanin[0]
			if !valid[d] {
				continue
			}
			if !found {
				worst = arr[d]
				found = true
			} else {
				worst = worst.Max(arr[d])
			}
		}
	}
	if !found {
		return 0
	}
	// Setup is deterministic, so it shifts the percentile directly.
	return worst.Percentile(p) + cell.Setup
}

// EndpointSlackSSTA returns the block-based canonical slack form for one
// endpoint: T - setup - arrival(driver).
func (e *Engine) EndpointSlackSSTA(ep netlist.GateID) (variation.Canon, bool) {
	arr, valid := e.ArrivalSSTA()
	d := e.N.Gate(ep).Fanin[0]
	if !valid[d] {
		return variation.Canon{}, false
	}
	return arr[d].Neg().AddConst(e.ClockPeriod - cell.Setup), true
}

// CriticalityGap reports, for diagnostics, the largest absolute difference
// between the block-based endpoint slack mean and the statistical minimum of
// the enumerated top-k path slacks, over all endpoints. Small gaps indicate
// the path enumeration captured the timing-relevant structure.
func (e *Engine) CriticalityGap(k int) float64 {
	arr, valid := e.ArrivalSSTA()
	worst := 0.0
	for s := 0; s < e.N.Stages; s++ {
		for _, ep := range e.N.Endpoints(s) {
			d := e.N.Gate(ep).Fanin[0]
			if !valid[d] {
				continue
			}
			blockSlack := arr[d].Neg().AddConst(e.ClockPeriod - cell.Setup)
			paths := e.CriticalPaths(ep, k)
			if len(paths) == 0 {
				continue
			}
			forms := make([]variation.Canon, len(paths))
			for i, p := range paths {
				forms[i] = e.PathSlack(p)
			}
			pathSlack, err := StatMin(forms)
			if err != nil {
				continue
			}
			if gap := math.Abs(blockSlack.Mean - pathSlack.Mean); gap > worst {
				worst = gap
			}
		}
	}
	return worst
}
