package sta

import (
	"errors"
	"math"
	"testing"

	"tsperr/internal/cell"
	"tsperr/internal/netlist"
	"tsperr/internal/variation"
)

func model(t *testing.T) *variation.Model {
	t.Helper()
	m, err := variation.NewModel(2, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// buildChain returns a 1-stage netlist: in -> inv1 -> inv2 -> ... -> invN -> ff,
// plus a short side path in -> buf -> ff2.
func buildChain(n int) (*netlist.Netlist, netlist.GateID, netlist.GateID) {
	nl := netlist.New("chain", 1)
	in := nl.Add(cell.INPUT, "in", 0)
	prev := in
	for i := 0; i < n; i++ {
		prev = nl.Add(cell.INV, "inv", 0, prev)
	}
	ff := nl.Add(cell.DFF, "ff", 0, prev)
	buf := nl.Add(cell.BUF, "buf", 0, in)
	ff2 := nl.Add(cell.DFF, "ff2", 0, buf)
	return nl, ff, ff2
}

func TestMaxDelayNominal(t *testing.T) {
	nl, _, _ := buildChain(5)
	e, err := NewEngine(nl, model(t), 1000, cell.SigmaRel, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 5*cell.INV.Delay() + cell.Setup
	if got := e.MaxDelayNominal(); math.Abs(got-want) > 1e-9 {
		t.Errorf("max delay = %v, want %v", got, want)
	}
}

func TestDelayScale(t *testing.T) {
	nl, _, _ := buildChain(3)
	e, _ := NewEngine(nl, model(t), 1000, cell.SigmaRel, 2)
	want := 2*3*cell.INV.Delay() + cell.Setup
	if got := e.MaxDelayNominal(); math.Abs(got-want) > 1e-9 {
		t.Errorf("scaled max delay = %v, want %v", got, want)
	}
	if _, err := NewEngine(nl, model(t), 1000, cell.SigmaRel, 0); err == nil {
		t.Error("zero delay scale must be rejected")
	}
}

func TestCriticalPathsOrderAndContent(t *testing.T) {
	nl, ff, ff2 := buildChain(4)
	e, _ := NewEngine(nl, model(t), 1000, cell.SigmaRel, 1)
	ps := e.CriticalPaths(ff, 4)
	if len(ps) != 1 {
		t.Fatalf("chain endpoint has exactly one path, got %d", len(ps))
	}
	// Path = in, inv*4 (source first).
	if len(ps[0].Gates) != 5 {
		t.Errorf("path length = %d, want 5", len(ps[0].Gates))
	}
	if nl.Gate(ps[0].Gates[0]).Kind != cell.INPUT {
		t.Error("path must start at a source")
	}
	want := 4*cell.INV.Delay() + cell.Setup
	if math.Abs(ps[0].NominalDelay-want) > 1e-9 {
		t.Errorf("nominal delay = %v, want %v", ps[0].NominalDelay, want)
	}
	short := e.CriticalPaths(ff2, 4)
	if len(short) != 1 || short[0].NominalDelay >= ps[0].NominalDelay {
		t.Error("side path should be shorter")
	}
}

// buildDiamond returns a netlist with two reconvergent paths of different
// length into one endpoint: in -> (xor chain of 3) and (buf) -> or -> ff.
func buildDiamond() (*netlist.Netlist, netlist.GateID) {
	nl := netlist.New("diamond", 1)
	a := nl.Add(cell.INPUT, "a", 0)
	b := nl.Add(cell.INPUT, "b", 0)
	x1 := nl.Add(cell.XOR2, "x1", 0, a, b)
	x2 := nl.Add(cell.XOR2, "x2", 0, x1, b)
	short := nl.Add(cell.BUF, "buf", 0, a)
	or := nl.Add(cell.OR2, "or", 0, x2, short)
	ff := nl.Add(cell.DFF, "ff", 0, or)
	return nl, ff
}

func TestKCriticalEnumeratesInOrder(t *testing.T) {
	nl, ff := buildDiamond()
	e, _ := NewEngine(nl, model(t), 1000, cell.SigmaRel, 1)
	ps := e.CriticalPaths(ff, 10)
	if len(ps) < 3 {
		t.Fatalf("expected at least 3 distinct paths, got %d", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].NominalDelay > ps[i-1].NominalDelay+1e-9 {
			t.Error("paths not in decreasing delay order")
		}
	}
	// Longest: a -> x1 -> x2 -> or (delay 2*XOR+OR) or b -> x1 -> x2 -> or.
	want := 2*cell.XOR2.Delay() + cell.OR2.Delay() + cell.Setup
	if math.Abs(ps[0].NominalDelay-want) > 1e-9 {
		t.Errorf("most critical delay = %v, want %v", ps[0].NominalDelay, want)
	}
}

func TestPathSlackAndDelayForms(t *testing.T) {
	nl, ff := buildDiamond()
	e, _ := NewEngine(nl, model(t), 500, cell.SigmaRel, 1)
	p := e.CriticalPaths(ff, 1)[0]
	d := e.PathDelay(p)
	s := e.PathSlack(p)
	if math.Abs((d.Mean+s.Mean)-500) > 1e-9 {
		t.Errorf("delay+slack should equal clock period: %v + %v", d.Mean, s.Mean)
	}
	if math.Abs(d.Std()-s.Std()) > 1e-12 {
		t.Error("slack spread must equal delay spread")
	}
	if d.Std() == 0 {
		t.Error("path delay should carry variation")
	}
}

func TestStatMinProperties(t *testing.T) {
	m := model(t)
	a := m.Canonical(0.1, 0.1, 100, 0.05)
	b := m.Canonical(0.9, 0.9, 110, 0.05)
	c := m.Canonical(0.5, 0.5, 120, 0.05)
	mn, err := StatMin([]variation.Canon{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if mn.Mean > 100 {
		t.Errorf("min mean %v should be below the smallest operand mean", mn.Mean)
	}
	if mn.Mean < 90 {
		t.Errorf("min mean %v implausibly low", mn.Mean)
	}
	single, err := StatMin([]variation.Canon{a})
	if err != nil {
		t.Fatal(err)
	}
	//tsperrlint:ignore floatcmp the one-element statistical minimum is an identity and must hold exactly
	if single.Mean != a.Mean {
		t.Error("StatMin of one element should be identity")
	}
}

// Regression: an empty set used to panic; it must return ErrEmptySet so
// sparse traces cannot crash the estimation pipeline.
func TestStatMinEmptySetError(t *testing.T) {
	if _, err := StatMin(nil); !errors.Is(err, ErrEmptySet) {
		t.Errorf("StatMin(nil) = %v, want ErrEmptySet", err)
	}
	if _, err := StatMin([]variation.Canon{}); !errors.Is(err, ErrEmptySet) {
		t.Errorf("StatMin(empty) = %v, want ErrEmptySet", err)
	}
}

func TestStatMinOrderInsensitiveApprox(t *testing.T) {
	m := model(t)
	forms := []variation.Canon{
		m.Canonical(0.2, 0.2, 100, 0.06),
		m.Canonical(0.8, 0.8, 105, 0.06),
		m.Canonical(0.2, 0.8, 103, 0.06),
		m.Canonical(0.8, 0.2, 108, 0.06),
	}
	rev := []variation.Canon{forms[3], forms[2], forms[1], forms[0]}
	a, err := StatMin(forms)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StatMin(rev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Mean-b.Mean) > 0.5 || math.Abs(a.Std()-b.Std()) > 0.5 {
		t.Errorf("greedy min should be nearly order-insensitive: %v/%v vs %v/%v",
			a.Mean, a.Std(), b.Mean, b.Std())
	}
}

func TestMaxDelayPercentileOrdering(t *testing.T) {
	nl, _ := buildDiamond()
	e, _ := NewEngine(nl, model(t), 1000, cell.SigmaRel, 1)
	p50 := e.MaxDelayPercentile(0.5, 4)
	p99 := e.MaxDelayPercentile(0.99, 4)
	nom := e.MaxDelayNominal()
	if !(p99 > p50) {
		t.Errorf("p99 %v should exceed p50 %v", p99, p50)
	}
	// The statistical max at median should be at or above the nominal
	// longest path (max of several variables shifts right).
	if p50 < nom-1 {
		t.Errorf("p50 %v unexpectedly far below nominal %v", p50, nom)
	}
}

func TestWorstSlackNominal(t *testing.T) {
	nl, _, _ := buildChain(10)
	period := 10*cell.INV.Delay() + cell.Setup + 25
	e, _ := NewEngine(nl, model(t), period, cell.SigmaRel, 1)
	if got := e.WorstSlackNominal(0); math.Abs(got-25) > 1e-9 {
		t.Errorf("worst slack = %v, want 25", got)
	}
}

func TestEndpointSlackForms(t *testing.T) {
	nl, ff := buildDiamond()
	e, _ := NewEngine(nl, model(t), 400, cell.SigmaRel, 1)
	forms := e.EndpointSlackForms(0, 4)
	if len(forms[ff]) < 3 {
		t.Fatalf("expected several slack forms for the endpoint, got %d", len(forms[ff]))
	}
	// Most critical first: slack of first form must be the smallest mean.
	for i := 1; i < len(forms[ff]); i++ {
		if forms[ff][i].Mean < forms[ff][0].Mean-1e-9 {
			t.Error("slack forms not ordered most-critical first")
		}
	}
}
