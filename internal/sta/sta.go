// Package sta implements static and statistical static timing analysis over
// a netlist. It computes canonical-form gate delays under the process
// variation model, enumerates the k most critical paths per endpoint (under
// worst-case, nominal, and best-case per-gate delays, mirroring the two-pass
// criticality ordering of Algorithm 1), computes path slacks, and reduces
// sets of slack forms with the greedy pairwise statistical minimum of Sinha,
// Zhou, and Shenoy [21].
package sta

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"tsperr/internal/cell"
	"tsperr/internal/netlist"
	"tsperr/internal/variation"
)

// Engine couples a netlist with a variation model and a clock period.
type Engine struct {
	N     *netlist.Netlist
	Model *variation.Model
	// ClockPeriod is the speculative clock period in picoseconds.
	ClockPeriod float64
	// SigmaRel is the per-gate relative delay sigma.
	SigmaRel float64
	// DelayScale multiplies every nominal gate delay; the calibration step
	// uses it to place the design's maximum frequency at a chosen value.
	DelayScale float64
	// Cond is the operating condition the gate delays are evaluated at.
	// Its DelayFactor/SigmaFactor multiply on top of DelayScale/SigmaRel;
	// at the nominal condition both are exactly 1.0 and the engine is
	// bit-identical to a condition-free one.
	Cond cell.OperatingCondition

	delays []variation.Canon
	topo   []netlist.GateID
}

// NewEngine prepares an engine at the nominal operating condition. The
// netlist must validate.
func NewEngine(n *netlist.Netlist, model *variation.Model, clockPeriod, sigmaRel, delayScale float64) (*Engine, error) {
	return NewEngineAt(n, model, clockPeriod, sigmaRel, delayScale, cell.OperatingCondition{})
}

// NewEngineAt prepares an engine with gate delays evaluated at the given
// operating condition: every nominal delay is inflated by the condition's
// DelayFactor and the relative sigma by its SigmaFactor, so the SSTA
// distributions (and everything downstream: DTS, calibrated slacks, error
// rates) shift with voltage and temperature. DelayScale stays a pure design
// property — calibration runs at the nominal condition and the V/T factors
// multiply on top.
func NewEngineAt(n *netlist.Netlist, model *variation.Model, clockPeriod, sigmaRel, delayScale float64, cond cell.OperatingCondition) (*Engine, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	topo, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	if delayScale <= 0 {
		return nil, fmt.Errorf("sta: non-positive delay scale %v", delayScale)
	}
	if err := cond.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		N: n, Model: model, ClockPeriod: clockPeriod,
		SigmaRel: sigmaRel, DelayScale: delayScale, Cond: cond, topo: topo,
	}
	df, sf := cond.DelayFactor(), cond.SigmaFactor()
	e.delays = make([]variation.Canon, n.NumGates())
	for i := range n.Gates() {
		g := &n.Gates()[i]
		e.delays[i] = model.CanonicalScaled(g.X, g.Y, g.Kind.Delay()*delayScale, sigmaRel, df, sf)
	}
	return e, nil
}

// GateDelay returns the canonical delay form of a gate.
func (e *Engine) GateDelay(id netlist.GateID) variation.Canon { return e.delays[id] }

// nominalMetric selects which per-gate scalar delay drives path ranking.
type nominalMetric int

const (
	metricNominal nominalMetric = iota
	metricWorst                 // 99th percentile gate delays
	metricBest                  // 1st percentile gate delays
)

func (e *Engine) scalarDelay(id netlist.GateID, m nominalMetric) float64 {
	d := e.delays[id]
	switch m {
	case metricWorst:
		return d.Mean + 2.3263478740408408*d.Std()
	case metricBest:
		return d.Mean - 2.3263478740408408*d.Std()
	default:
		return d.Mean
	}
}

// maxArrival computes, for the chosen metric, the longest source-to-gate
// (inclusive) combinational arrival for every gate.
func (e *Engine) maxArrival(m nominalMetric) []float64 {
	arr := make([]float64, e.N.NumGates())
	gates := e.N.Gates()
	for _, id := range e.topo {
		g := &gates[id]
		if g.Kind.IsSource() {
			arr[id] = e.scalarDelay(id, m) // clock-to-Q or 0
			continue
		}
		best := math.Inf(-1)
		for _, f := range g.Fanin {
			if arr[f] > best {
				best = arr[f]
			}
		}
		if math.IsInf(best, -1) {
			best = 0
		}
		arr[id] = best + e.scalarDelay(id, m)
	}
	return arr
}

// searchState is a partial path suffix [gate ... endpointDriver] in the
// best-first k-critical-path search.
type searchState struct {
	gate     netlist.GateID
	suffix   []netlist.GateID
	sufDelay float64
	priority float64
}

type stateHeap []*searchState

func (h stateHeap) Len() int            { return len(h) }
func (h stateHeap) Less(i, j int) bool  { return h[i].priority > h[j].priority }
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(*searchState)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// kCriticalTo enumerates up to k complete paths ending at endpoint ep in
// exactly decreasing order of total delay under the chosen metric, using
// best-first (A*) search with the max-arrival upper bound as heuristic.
func (e *Engine) kCriticalTo(ep netlist.GateID, k int, m nominalMetric, arr []float64) []netlist.Path {
	g := e.N.Gate(ep)
	if g.Kind != cell.DFF {
		return nil
	}
	driver := g.Fanin[0]
	h := &stateHeap{}
	start := &searchState{
		gate:     driver,
		suffix:   []netlist.GateID{driver},
		sufDelay: e.scalarDelay(driver, m),
	}
	start.priority = e.prefixBound(driver, arr) + start.sufDelay
	heap.Push(h, start)
	var out []netlist.Path
	for h.Len() > 0 && len(out) < k {
		s := heap.Pop(h).(*searchState)
		sg := e.N.Gate(s.gate)
		if sg.Kind.IsSource() {
			gates := make([]netlist.GateID, len(s.suffix))
			copy(gates, s.suffix)
			out = append(out, netlist.Path{
				Gates:        gates,
				Endpoint:     ep,
				NominalDelay: s.sufDelay + cell.Setup,
			})
			continue
		}
		for _, f := range sg.Fanin {
			suffix := make([]netlist.GateID, 0, len(s.suffix)+1)
			suffix = append(suffix, f)
			suffix = append(suffix, s.suffix...)
			ns := &searchState{
				gate:     f,
				suffix:   suffix,
				sufDelay: s.sufDelay + e.scalarDelay(f, m),
			}
			ns.priority = e.prefixBound(f, arr) + ns.sufDelay
			heap.Push(h, ns)
		}
	}
	return out
}

// prefixBound returns the best possible delay of any source-to-g-exclusive
// prefix, used as the A* heuristic. Sources have no prefix.
func (e *Engine) prefixBound(g netlist.GateID, arr []float64) float64 {
	gate := e.N.Gate(g)
	if gate.Kind.IsSource() {
		return 0
	}
	best := math.Inf(-1)
	for _, f := range gate.Fanin {
		if arr[f] > best {
			best = arr[f]
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}

// CriticalPaths returns up to k paths per ranking metric for endpoint ep,
// deduplicated and sorted by nominal delay (most critical first). Running
// the enumeration under worst-case and best-case gate delays in addition to
// nominal mirrors the paper's double execution of the while-loop in
// Algorithm 1 under SSTA: it guarantees the set contains every path that
// could become the true critical path over process variation.
func (e *Engine) CriticalPaths(ep netlist.GateID, k int) []netlist.Path {
	seen := map[string]bool{}
	var out []netlist.Path
	for _, m := range []nominalMetric{metricNominal, metricWorst, metricBest} {
		arr := e.maxArrival(m)
		for _, p := range e.kCriticalTo(ep, k, m, arr) {
			key := pathKey(p)
			if seen[key] {
				continue
			}
			seen[key] = true
			// Re-express the cached delay under the nominal metric so
			// ordering is consistent across metrics.
			p.NominalDelay = e.nominalPathDelay(p)
			out = append(out, p)
		}
	}
	netlist.SortPathsByDelay(out)
	return out
}

func pathKey(p netlist.Path) string {
	b := make([]byte, 0, 4*len(p.Gates)+4)
	for _, g := range p.Gates {
		b = append(b, byte(g), byte(g>>8), byte(g>>16), byte(g>>24))
	}
	return string(b)
}

func (e *Engine) nominalPathDelay(p netlist.Path) float64 {
	d := cell.Setup
	for _, g := range p.Gates {
		d += e.delays[g].Mean
	}
	return d
}

// PathDelay returns the canonical delay form of a path: the exact sum of its
// gate delay forms plus the endpoint setup time.
func (e *Engine) PathDelay(p netlist.Path) variation.Canon {
	sum := e.Model.Const(cell.Setup)
	for _, g := range p.Gates {
		sum = sum.Add(e.delays[g])
	}
	return sum
}

// PathSlack returns the canonical slack form SL(p) = T_clk - delay(p): the
// maximum reduction in clock period that would not violate the endpoint's
// setup constraint.
func (e *Engine) PathSlack(p netlist.Path) variation.Canon {
	d := e.PathDelay(p)
	return d.Neg().AddConst(e.ClockPeriod)
}

// statMinGreedyLimit bounds the O(n^3) greedy pairing; beyond it StatMin
// falls back to a sorted fold, which loses little accuracy when reducing
// thousands of forms (the greedy order matters most among the few
// near-critical ones, which the sorted fold visits first).
const statMinGreedyLimit = 96

// ErrEmptySet reports a statistical reduction over zero canonical forms,
// which has no defined result.
var ErrEmptySet = errors.New("sta: statistical min of empty set")

// StatMin reduces a set of canonical slack forms to the canonical form of
// their minimum using a greedy sequence of pairwise Clark minimums in the
// order that minimizes approximation error [21]: at each step the pair with
// the highest correlation is merged first, because Clark's approximation is
// exact in the limit of perfectly correlated operands. Very large sets are
// pre-reduced with a sorted fold. An empty set returns ErrEmptySet — the
// condition is reachable from sparse inputs (e.g. a trace that never
// activates a unit), so it must not panic.
func StatMin(forms []variation.Canon) (variation.Canon, error) {
	if len(forms) == 0 {
		return variation.Canon{}, ErrEmptySet
	}
	work := make([]variation.Canon, len(forms))
	copy(work, forms)
	if len(work) > statMinGreedyLimit {
		// Fold smallest means first so the result converges quickly, then
		// finish greedily on the survivors.
		sort.Slice(work, func(i, j int) bool { return work[i].Mean < work[j].Mean })
		acc := work[statMinGreedyLimit-1]
		for _, f := range work[statMinGreedyLimit:] {
			acc = acc.Min(f)
		}
		work = work[:statMinGreedyLimit]
		work[statMinGreedyLimit-1] = acc
	}
	for len(work) > 1 {
		bi, bj := 0, 1
		best := math.Inf(-1)
		for i := 0; i < len(work); i++ {
			for j := i + 1; j < len(work); j++ {
				if r := work[i].Corr(work[j]); r > best {
					best, bi, bj = r, i, j
				}
			}
		}
		merged := work[bi].Min(work[bj])
		work[bj] = work[len(work)-1]
		work = work[:len(work)-1]
		work[bi] = merged
	}
	return work[0], nil
}

// WorstSlackNominal returns the most negative nominal endpoint slack in a
// stage (the classic STA number), used to calibrate operating points.
func (e *Engine) WorstSlackNominal(stage int) float64 {
	arr := e.maxArrival(metricNominal)
	worst := math.Inf(1)
	for _, ep := range e.N.Endpoints(stage) {
		driver := e.N.Gate(ep).Fanin[0]
		slack := e.ClockPeriod - cell.Setup - arr[driver]
		if slack < worst {
			worst = slack
		}
	}
	return worst
}

// MaxDelayNominal returns the longest nominal path delay (including setup)
// across all stages: the minimum clock period of the design under STA.
func (e *Engine) MaxDelayNominal() float64 {
	arr := e.maxArrival(metricNominal)
	worst := 0.0
	for s := 0; s < e.N.Stages; s++ {
		for _, ep := range e.N.Endpoints(s) {
			driver := e.N.Gate(ep).Fanin[0]
			if d := arr[driver] + cell.Setup; d > worst {
				worst = d
			}
		}
	}
	return worst
}

// MaxDelayPercentile returns the p-th percentile of the statistical maximum
// path delay of the design, approximated by the statistical maximum over the
// k most critical paths of every endpoint. SSTA sign-off (the paper's
// 718 MHz with guardband) corresponds to a high percentile of this value.
func (e *Engine) MaxDelayPercentile(p float64, k int) float64 {
	var forms []variation.Canon
	for s := 0; s < e.N.Stages; s++ {
		for _, ep := range e.N.Endpoints(s) {
			for _, path := range e.CriticalPaths(ep, k) {
				forms = append(forms, e.PathDelay(path))
			}
		}
	}
	if len(forms) == 0 {
		return 0
	}
	// Statistical maximum via the dual of StatMin; forms is non-empty here,
	// so the reduction cannot fail.
	neg := make([]variation.Canon, len(forms))
	for i, f := range forms {
		neg[i] = f.Neg()
	}
	mn, err := StatMin(neg)
	if err != nil {
		return 0
	}
	return mn.Neg().Percentile(p)
}

// EndpointSlackForms returns the slack canonical forms of the k most
// critical paths for each endpoint of a stage, keyed by endpoint.
func (e *Engine) EndpointSlackForms(stage int, k int) map[netlist.GateID][]variation.Canon {
	out := map[netlist.GateID][]variation.Canon{}
	eps := e.N.Endpoints(stage)
	sort.Slice(eps, func(i, j int) bool { return eps[i] < eps[j] })
	for _, ep := range eps {
		for _, p := range e.CriticalPaths(ep, k) {
			out[ep] = append(out[ep], e.PathSlack(p))
		}
	}
	return out
}
