package sta

import (
	"math"
	"testing"

	"tsperr/internal/cell"
	"tsperr/internal/netlist"
)

func TestArrivalSSTAChainExact(t *testing.T) {
	// On a pure chain there is no reconvergence, so block-based SSTA is
	// exact: arrival = sum of delays.
	nl, ff, _ := buildChain(6)
	e, err := NewEngine(nl, model(t), 1000, cell.SigmaRel, 1)
	if err != nil {
		t.Fatal(err)
	}
	arr, valid := e.ArrivalSSTA()
	d := nl.Gate(ff).Fanin[0]
	if !valid[d] {
		t.Fatal("chain end should have an arrival")
	}
	want := 6 * cell.INV.Delay()
	if math.Abs(arr[d].Mean-want) > 1e-9 {
		t.Errorf("arrival mean = %v, want %v", arr[d].Mean, want)
	}
	if arr[d].Std() <= 0 {
		t.Error("arrival must carry variation")
	}
}

func TestSignOffDelayMatchesPathView(t *testing.T) {
	nl, _ := buildDiamond()
	e, _ := NewEngine(nl, model(t), 1000, cell.SigmaRel, 1)
	block := e.SignOffDelay(0.99)
	path := e.MaxDelayPercentile(0.99, 8)
	// Both are Clark-based approximations of the same maximum; they must
	// agree within a few picoseconds on this small design.
	if math.Abs(block-path) > 5 {
		t.Errorf("block-based %v vs path-based %v sign-off delay", block, path)
	}
	if block < e.MaxDelayNominal() {
		t.Errorf("p99 sign-off %v below nominal %v", block, e.MaxDelayNominal())
	}
}

func TestEndpointSlackSSTA(t *testing.T) {
	nl, ff := buildDiamond()
	e, _ := NewEngine(nl, model(t), 800, cell.SigmaRel, 1)
	slack, ok := e.EndpointSlackSSTA(ff)
	if !ok {
		t.Fatal("endpoint should have a slack")
	}
	// Slack mean = T - setup - arrival mean; must be below T and positive
	// at this relaxed period.
	if slack.Mean <= 0 || slack.Mean >= 800 {
		t.Errorf("slack mean = %v", slack.Mean)
	}
	// Block-based slack can only be <= the most critical path slack plus
	// Clark wiggle (it sees all paths).
	p := e.CriticalPaths(ff, 8)
	worst := e.PathSlack(p[0])
	if slack.Mean > worst.Mean+5 {
		t.Errorf("block slack %v should not exceed top path slack %v", slack.Mean, worst.Mean)
	}
}

func TestCriticalityGapSmall(t *testing.T) {
	nl, _ := buildDiamond()
	e, _ := NewEngine(nl, model(t), 900, cell.SigmaRel, 1)
	if gap := e.CriticalityGap(8); gap > 10 {
		t.Errorf("criticality gap %v ps too large — path enumeration missed structure", gap)
	}
}

func TestArrivalSSTAFloatingGate(t *testing.T) {
	// A combinational gate fed only by another combinational gate with no
	// source anywhere upstream is impossible in a valid netlist, but a gate
	// whose fanin chain starts at an INPUT is always valid; check validity
	// propagation on a minimal netlist.
	nl := netlist.New("v", 1)
	in := nl.Add(cell.INPUT, "in", 0)
	buf := nl.Add(cell.BUF, "b", 0, in)
	nl.Add(cell.DFF, "ff", 0, buf)
	e, _ := NewEngine(nl, model(t), 500, cell.SigmaRel, 1)
	_, valid := e.ArrivalSSTA()
	for i := range valid {
		if !valid[i] {
			t.Errorf("gate %d should have an arrival", i)
		}
	}
}
