package dist

import (
	"math"
	"testing"

	"tsperr/internal/numeric"
)

// Property tests over seeded randomized inputs (the package RNG is
// deterministic, so failures reproduce).

// Poisson CDFs are stochastically ordered in lambda: for a fixed threshold k,
// raising lambda can only move probability mass upward, so P(X <= k) must be
// nonincreasing. Checked separately in the exact-summation regime and the
// normal-approximation regime (lambda > 5000); across the switchover the two
// evaluators differ by the approximation error, not by a modeling property.
func TestPoissonCDFMonotoneInLambda(t *testing.T) {
	rng := numeric.NewRNG(0xd15c)
	regimes := []struct {
		name   string
		lo, hi float64
	}{
		{"exact", 1e-3, 4999},
		{"normal-approx", 5001, 2e6},
	}
	for _, reg := range regimes {
		for i := 0; i < 2000; i++ {
			l1 := reg.lo + (reg.hi-reg.lo)*rng.Float64()
			l2 := reg.lo + (reg.hi-reg.lo)*rng.Float64()
			if l1 > l2 {
				l1, l2 = l2, l1
			}
			// Thresholds around the interesting region of both distributions.
			k := math.Floor((l1 + l2) / 2 * (0.25 + 1.5*rng.Float64()))
			c1 := Poisson{Lambda: l1}.CDF(k)
			c2 := Poisson{Lambda: l2}.CDF(k)
			if c2 > c1+1e-12 {
				t.Fatalf("%s case %d: CDF not monotone in lambda: P(X<=%v)=%v at l=%v but %v at l=%v",
					reg.name, i, k, c1, l1, c2, l2)
			}
			if c1 < 0 || c1 > 1 || c2 < 0 || c2 > 1 {
				t.Fatalf("%s case %d: CDF out of [0,1]: %v, %v", reg.name, i, c1, c2)
			}
		}
	}
}

// The Le Cam bound (the independent-indicator Chen-Stein specialization) must
// actually dominate the total variation distance between the Poisson binomial
// law and its Poisson approximation, and must be monotone under adding
// indicators — more terms can only add approximation error.
func TestLeCamBoundDominatesAndMonotone(t *testing.T) {
	rng := numeric.NewRNG(0x1eca)
	for i := 0; i < 200; i++ {
		n := 2 + rng.Intn(40)
		ps := make([]float64, n)
		for j := range ps {
			ps[j] = 0.3 * rng.Float64()
		}
		pb := NewPoissonBinomial(ps)
		po := Poisson{Lambda: pb.Mean()}
		tv := TotalVariationInt(pb.PMF, po.PMF, n+60)
		bound := pb.LeCamBound()
		if bound < 0 {
			t.Fatalf("case %d: negative bound %v", i, bound)
		}
		if tv > bound+1e-12 {
			t.Fatalf("case %d: d_TV %v exceeds Le Cam bound %v (n=%d)", i, tv, bound, n)
		}
		// Appending one more indicator adds exactly p^2 to the bound.
		grown := NewPoissonBinomial(append(append([]float64{}, ps...), 0.2))
		if grown.LeCamBound() < bound {
			t.Fatalf("case %d: bound shrank when adding an indicator: %v -> %v",
				i, bound, grown.LeCamBound())
		}
	}
}

// Kolmogorov distance is dominated by total variation for integer-supported
// laws: the CDFs of the Poisson binomial and its Poisson approximation can
// never be farther apart than the PMF mass that moved. This chains with the
// Le Cam test above to give d_K <= sum p_i^2, the form the estimator's
// Chen-Stein bound takes.
func TestKolmogorovDominatedByTotalVariation(t *testing.T) {
	rng := numeric.NewRNG(0xc5)
	for i := 0; i < 200; i++ {
		n := 2 + rng.Intn(30)
		ps := make([]float64, n)
		for j := range ps {
			ps[j] = 0.4 * rng.Float64()
		}
		pb := NewPoissonBinomial(ps)
		po := Poisson{Lambda: pb.Mean()}
		tv := TotalVariationInt(pb.PMF, po.PMF, n+60)
		grid := LinearGrid(0, float64(n+60), n+60)
		dk := Kolmogorov(pb.CDF, po.CDF, grid)
		if dk > tv+1e-12 {
			t.Fatalf("case %d: d_K %v exceeds d_TV %v (n=%d)", i, dk, tv, n)
		}
	}
}

// Kolmogorov distance between a distribution and itself is zero, and the
// Poisson-vs-Poisson distance grows as the rates separate (on a fixed grid
// spanning both).
func TestKolmogorovSeparation(t *testing.T) {
	rng := numeric.NewRNG(0x60d)
	for i := 0; i < 200; i++ {
		base := 1 + 50*rng.Float64()
		grid := LinearGrid(0, 4*base+20, 400)
		p := Poisson{Lambda: base}
		if d := Kolmogorov(p.CDF, p.CDF, grid); d != 0 {
			t.Fatalf("case %d: self-distance %v", i, d)
		}
		near := Poisson{Lambda: base * 1.05}
		far := Poisson{Lambda: base * 1.5}
		dNear := Kolmogorov(p.CDF, near.CDF, grid)
		dFar := Kolmogorov(p.CDF, far.CDF, grid)
		if dFar < dNear {
			t.Fatalf("case %d: distance not separating: near %v, far %v (base %v)",
				i, dNear, dFar, base)
		}
	}
}
