// Package dist provides the probability distributions used by the error-rate
// estimation framework: Normal and Poisson laws, the exact Poisson binomial
// distribution (used as a ground-truth baseline on small problems), discrete
// random variables with moment computation (the representation the paper uses
// for instruction error probabilities under data variation), and the
// Kolmogorov and total-variation metrics of Section 5.
package dist

import (
	"math"
	"sort"

	"tsperr/internal/numeric"
)

// Distribution is a one-dimensional probability distribution described by its
// cumulative distribution function.
type Distribution interface {
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Mean returns the expectation.
	Mean() float64
	// Var returns the variance.
	Var() float64
}

// Normal is a Gaussian distribution.
type Normal struct {
	Mu    float64
	Sigma float64
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 { return numeric.NormalCDFMeanStd(x, n.Mu, n.Sigma) }

// Mean returns mu.
func (n Normal) Mean() float64 { return n.Mu }

// Var returns sigma^2.
func (n Normal) Var() float64 { return n.Sigma * n.Sigma }

// PDF returns the density at x.
func (n Normal) PDF(x float64) float64 {
	return numeric.Gaussian{Mean: n.Mu, Std: n.Sigma}.PDF(x)
}

// Quantile returns the p-th quantile.
func (n Normal) Quantile(p float64) float64 {
	return numeric.Gaussian{Mean: n.Mu, Std: n.Sigma}.Quantile(p)
}

// Poisson is a Poisson distribution with rate Lambda.
type Poisson struct {
	Lambda float64
}

// PMF returns P(X = k).
func (p Poisson) PMF(k int) float64 {
	if k < 0 || p.Lambda < 0 {
		return 0
	}
	if p.Lambda == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(p.Lambda) - p.Lambda - lg)
}

// CDF returns P(X <= floor(x)). For large Lambda it switches to the
// normal approximation with continuity correction, whose error is
// O(1/sqrt(Lambda)) and negligible at the program scales of the paper
// (Lambda in the millions).
func (p Poisson) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	k := math.Floor(x)
	if p.Lambda <= 0 {
		return 1
	}
	if p.Lambda > 5000 {
		return numeric.NormalCDF((k + 0.5 - p.Lambda) / math.Sqrt(p.Lambda))
	}
	// Direct stable summation in the log domain, anchored at the mode.
	var sum numeric.KahanSum
	term := math.Exp(-p.Lambda)
	sum.Add(term)
	for i := 1; i <= int(k); i++ {
		term *= p.Lambda / float64(i)
		sum.Add(term)
	}
	return math.Min(1, sum.Value())
}

// Mean returns Lambda.
func (p Poisson) Mean() float64 { return p.Lambda }

// Var returns Lambda.
func (p Poisson) Var() float64 { return p.Lambda }

// PoissonBinomial is the distribution of a sum of independent Bernoulli
// variables with success probabilities Ps. The paper notes computing it
// exactly is prohibitive at scale; we implement the exact O(n^2) dynamic
// program for use as a ground truth on small instances.
type PoissonBinomial struct {
	Ps []float64

	pmf []float64
}

// NewPoissonBinomial builds the distribution and materializes its PMF.
func NewPoissonBinomial(ps []float64) *PoissonBinomial {
	pb := &PoissonBinomial{Ps: ps}
	pmf := make([]float64, 1, len(ps)+1)
	pmf[0] = 1
	for _, p := range ps {
		next := make([]float64, len(pmf)+1)
		for k, q := range pmf {
			next[k] += q * (1 - p)
			next[k+1] += q * p
		}
		pmf = next
	}
	pb.pmf = pmf
	return pb
}

// PMF returns P(X = k).
func (pb *PoissonBinomial) PMF(k int) float64 {
	if k < 0 || k >= len(pb.pmf) {
		return 0
	}
	return pb.pmf[k]
}

// CDF returns P(X <= floor(x)).
func (pb *PoissonBinomial) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	k := int(math.Floor(x))
	if k >= len(pb.pmf) {
		return 1
	}
	var sum numeric.KahanSum
	for i := 0; i <= k; i++ {
		sum.Add(pb.pmf[i])
	}
	return math.Min(1, sum.Value())
}

// Mean returns the sum of probabilities.
func (pb *PoissonBinomial) Mean() float64 { return numeric.Sum(pb.Ps) }

// Var returns sum p(1-p).
func (pb *PoissonBinomial) Var() float64 {
	var k numeric.KahanSum
	for _, p := range pb.Ps {
		k.Add(p * (1 - p))
	}
	return k.Value()
}

// LeCamBound returns Le Cam's classical bound on the total variation distance
// between this Poisson binomial distribution and Poisson(Mean()):
// d_TV <= sum p_i^2. It is the independent-indicator specialization of the
// Chen-Stein bound the paper uses.
func (pb *PoissonBinomial) LeCamBound() float64 {
	var k numeric.KahanSum
	for _, p := range pb.Ps {
		k.Add(p * p)
	}
	return k.Value()
}

// Discrete is a finitely-supported random variable: value Xs[i] occurs with
// probability Ps[i]. This is the representation the paper uses for
// instruction error probabilities that vary with program input data.
type Discrete struct {
	Xs []float64
	Ps []float64
}

// NewDiscreteUniform builds a Discrete giving each sample equal weight, the
// natural result of recording one error probability per simulated scenario.
func NewDiscreteUniform(samples []float64) Discrete {
	n := len(samples)
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = 1 / float64(n)
	}
	xs := make([]float64, n)
	copy(xs, samples)
	return Discrete{Xs: xs, Ps: ps}
}

// Mean returns E[X].
func (d Discrete) Mean() float64 {
	var k numeric.KahanSum
	for i, x := range d.Xs {
		k.Add(x * d.Ps[i])
	}
	return k.Value()
}

// Moment returns the raw moment E[X^order].
func (d Discrete) Moment(order int) float64 {
	var k numeric.KahanSum
	for i, x := range d.Xs {
		k.Add(math.Pow(x, float64(order)) * d.Ps[i])
	}
	return k.Value()
}

// AbsMoment returns E[|X|^order].
func (d Discrete) AbsMoment(order int) float64 {
	var k numeric.KahanSum
	for i, x := range d.Xs {
		k.Add(math.Pow(math.Abs(x), float64(order)) * d.Ps[i])
	}
	return k.Value()
}

// CentralMoment returns E[(X-mean)^order].
func (d Discrete) CentralMoment(order int) float64 {
	m := d.Mean()
	var k numeric.KahanSum
	for i, x := range d.Xs {
		k.Add(math.Pow(x-m, float64(order)) * d.Ps[i])
	}
	return k.Value()
}

// AbsCentralMoment returns E[|X-mean|^order].
func (d Discrete) AbsCentralMoment(order int) float64 {
	m := d.Mean()
	var k numeric.KahanSum
	for i, x := range d.Xs {
		k.Add(math.Pow(math.Abs(x-m), float64(order)) * d.Ps[i])
	}
	return k.Value()
}

// Var returns the variance.
func (d Discrete) Var() float64 { return d.CentralMoment(2) }

// Std returns the standard deviation.
func (d Discrete) Std() float64 { return math.Sqrt(d.Var()) }

// CDF returns P(X <= x).
func (d Discrete) CDF(x float64) float64 {
	var k numeric.KahanSum
	for i, v := range d.Xs {
		if v <= x {
			k.Add(d.Ps[i])
		}
	}
	return math.Min(1, k.Value())
}

// Scale returns the distribution of c*X.
func (d Discrete) Scale(c float64) Discrete {
	xs := make([]float64, len(d.Xs))
	for i, x := range d.Xs {
		xs[i] = c * x
	}
	ps := make([]float64, len(d.Ps))
	copy(ps, d.Ps)
	return Discrete{Xs: xs, Ps: ps}
}

// Kolmogorov returns the Kolmogorov metric sup_x |F(x) - G(x)| between two
// distributions, evaluated on the supplied grid of points. The grid should
// cover the support of both distributions densely.
func Kolmogorov(f, g func(float64) float64, grid []float64) float64 {
	var worst float64
	for _, x := range grid {
		d := math.Abs(f(x) - g(x))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TotalVariationInt returns the total variation distance between two
// integer-supported PMFs evaluated on 0..n.
func TotalVariationInt(p, q func(int) float64, n int) float64 {
	var k numeric.KahanSum
	for i := 0; i <= n; i++ {
		k.Add(math.Abs(p(i) - q(i)))
	}
	return 0.5 * k.Value()
}

// LinearGrid returns n+1 evenly spaced points spanning [lo, hi].
func LinearGrid(lo, hi float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	g := make([]float64, n+1)
	for i := range g {
		g[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	return g
}

// EmpiricalCDF returns a CDF function built from samples.
func EmpiricalCDF(samples []float64) func(float64) float64 {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	n := float64(len(s))
	return func(x float64) float64 {
		if len(s) == 0 {
			return 0
		}
		idx := sort.SearchFloat64s(s, math.Nextafter(x, math.Inf(1)))
		return float64(idx) / n
	}
}
